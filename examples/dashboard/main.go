// Dashboard — the full SPJ surface: a filtered 4-way join whose results
// feed tumbling-window aggregates (the Select <agg-func-list> of the
// paper's Figure 2 template), all on top of the self-tuning AMRI states.
//
//	go run ./examples/dashboard
package main

import (
	"fmt"

	"amri"
)

func main() {
	run := amri.DefaultRunConfig()
	run.Profile.LambdaD = 20
	run.MaxTicks = 600
	run.WarmupTicks = 120
	run.Seed = 4
	// Bursty market: arrival rate swings ±50% every 2 virtual minutes.
	run.Profile.RateAmplitude = 0.5
	run.Profile.RatePeriod = 120

	// WHERE: only "high priority" stream-A tuples join (attribute 0 small).
	q := amri.FourWayQuery(60)
	if err := q.AddFilter(amri.Filter{Stream: 0, Attr: 0, Op: amri.OpLt, Value: 20}); err != nil {
		panic(err)
	}
	run.Query = q

	// SELECT count(*), avg(B.a0), max(C.a1) ... GROUP BY nothing,
	// tumbling 60-tick windows.
	aggr, err := amri.NewAggregator([]amri.AggSpec{
		{Func: amri.AggCount},
		{Func: amri.AggAvg, Arg: amri.AggRef{Stream: 1, Attr: 0}},
		{Func: amri.AggMax, Arg: amri.AggRef{Stream: 2, Attr: 1}},
	}, nil, 60)
	if err != nil {
		panic(err)
	}
	run.OnResult = func(c *amri.Composite, tick int64) { aggr.Observe(c, tick) }

	eng, err := amri.NewEngine(run, amri.AMRISystem(amri.AssessCDIAHighest))
	if err != nil {
		panic(err)
	}
	r := eng.Run()

	fmt.Println(r.Summary())
	fmt.Println(r.Latency.String())
	fmt.Println()
	fmt.Printf("%-10s %10s %14s %14s\n", "window", "count(*)", "avg(B.a0)", "max(C.a1)")
	for _, w := range aggr.Flush() {
		fmt.Printf("%5d-%-5d %10.0f %14.2f %14.0f\n",
			w.WindowStart, w.WindowStart+60, w.Values[0], w.Values[1], w.Values[2])
	}
	fmt.Println("\nfinal index configurations after drift:")
	for _, c := range r.FinalConfigs {
		fmt.Println(" ", c)
	}
}
