// Trace replay — record a workload, replay it through the engine, and
// verify the replay is indistinguishable from the live run. This is how a
// recorded production stream (any CSV in the cmd/amrigen format) would be
// fed through AMRI for offline index-tuning studies.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"

	"amri"
	"amri/internal/stream"
)

func main() {
	run := amri.DefaultRunConfig()
	run.Profile.LambdaD = 15
	run.MaxTicks = 300
	run.WarmupTicks = 60
	run.Seed = 11

	// Live run from the synthetic generator.
	live, err := amri.NewEngine(run, amri.AMRISystem(amri.AssessCDIAHighest))
	if err != nil {
		panic(err)
	}
	liveRes := live.Run()

	// Record the identical workload to CSV (what `amrigen` would emit).
	gen, err := stream.New(amri.FourWayQuery(60), run.Profile, run.Seed)
	if err != nil {
		panic(err)
	}
	var csv bytes.Buffer
	fmt.Fprintln(&csv, "tick,stream,seq,attr0,attr1,attr2")
	rows := 0
	for tick := int64(0); tick < run.MaxTicks; tick++ {
		for _, t := range gen.Tick(tick) {
			fmt.Fprintf(&csv, "%d,%d,%d,%d,%d,%d\n",
				tick, t.Stream, t.Seq, t.Attrs[0], t.Attrs[1], t.Attrs[2])
			rows++
		}
	}
	fmt.Printf("recorded %d tuples (%d bytes of CSV)\n", rows, csv.Len())

	// Replay it.
	trace, err := amri.ParseTrace(&csv, run.Profile.PayloadBytes)
	if err != nil {
		panic(err)
	}
	run.Source = trace
	replayEng, err := amri.NewEngine(run, amri.AMRISystem(amri.AssessCDIAHighest))
	if err != nil {
		panic(err)
	}
	replayRes := replayEng.Run()

	fmt.Printf("live run:   %d results, %d retunes\n", liveRes.TotalResults, liveRes.Retunes)
	fmt.Printf("trace run:  %d results, %d retunes\n", replayRes.TotalResults, replayRes.Retunes)
	if liveRes.TotalResults == replayRes.TotalResults {
		fmt.Println("replay is exact — recorded workloads drive the engine unchanged")
	} else {
		fmt.Println("MISMATCH — this should never happen")
	}
}
