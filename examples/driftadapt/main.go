// Drift adaptation — watch the index tuner follow a drifting workload.
//
// The engine runs the paper's four-way join with drifting selectivities;
// every assessment interval each state may migrate its index configuration.
// This example plots the throughput trajectory of the adaptive system
// against a frozen copy of itself, making the cost of *not* adapting
// visible tick by tick.
//
//	go run ./examples/driftadapt
package main

import (
	"fmt"

	"amri"
)

func main() {
	run := amri.DefaultRunConfig()
	run.MaxTicks = 900
	run.Seed = 3

	adaptive, err := amri.NewEngine(run, amri.AMRISystem(amri.AssessCDIAHighest))
	if err != nil {
		panic(err)
	}
	frozen, err := amri.NewEngine(run, amri.StaticBitmapSystem())
	if err != nil {
		panic(err)
	}

	fmt.Println("drift epochs every", run.Profile.EpochTicks, "ticks; warmup", run.WarmupTicks,
		"ticks; assessment every", run.AssessInterval, "ticks")

	a := adaptive.Run()
	f := frozen.Run()

	fmt.Println()
	fmt.Println(amri.ResultsTable([]*amri.RunResult{a, f}))
	fmt.Println(amri.ResultsChart([]*amri.RunResult{a, f}, 72, 12))

	// Per-epoch deltas: where does the frozen system lose ground?
	fmt.Println("results gained per drift epoch:")
	fmt.Printf("%8s %12s %12s %10s\n", "epoch", "adaptive", "frozen", "ratio")
	epoch := run.Profile.EpochTicks
	for start := int64(0); start < run.MaxTicks; start += epoch {
		end := start + epoch
		da := a.At(end) - a.At(start)
		df := f.At(end) - f.At(start)
		ratio := "-"
		if df > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(da)/float64(df))
		}
		fmt.Printf("%8d %12d %12d %10s\n", start/epoch, da, df, ratio)
	}
	fmt.Printf("\nadaptive migrated %d times; frozen tuned once at warmup and then decayed\n", a.Retunes)
}
