// Package tracking — the paper's Section I-A worked example, live.
//
// A sensor network reports (priority code A1, package id A2, location id
// A3). The state-of-the-art design keeps three hash indices (A1, A1&A2,
// A2&A3). Search request sr1 (A1=2012, A3=47) can use the A1 index; sr2
// (A3=47 alone) fits no index and full-scans the state. A single
// bit-address index serves both with a bounded bucket span — and pays no
// per-index key maintenance.
//
//	go run ./examples/packagetracking
package main

import (
	"fmt"
	"math/rand/v2"

	"amri"
)

func main() {
	const nSensors = 20000

	// The Section I-A access modules: hash indices on A1, A1&A2, A2&A3.
	hashState, err := amri.NewMultiHashIndex(3, nil, []amri.Pattern{
		amri.PatternOf(0),    // A1
		amri.PatternOf(0, 1), // A1 & A2
		amri.PatternOf(1, 2), // A2 & A3
	})
	if err != nil {
		panic(err)
	}

	// The AMRI alternative: one bit-address index, 12 bits, self-tuning.
	amriState, err := amri.NewAdaptiveIndex(amri.IndexOptions{
		NumAttrs: 3, BitBudget: 12, Method: amri.CDIAHighest, Seed: 1,
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewPCG(42, 42))
	var hashInsert, amriInsert amri.IndexStats
	for i := 0; i < nSensors; i++ {
		t := amri.NewTuple(0, uint64(i), 0, []amri.Value{
			amri.Value(2000 + rng.Uint64N(64)), // priority code
			amri.Value(rng.Uint64N(100000)),    // package id
			amri.Value(rng.Uint64N(128)),       // location id
		})
		hashInsert.Add(hashState.Insert(t))
		amriInsert.Add(amriState.Insert(t))
	}
	fmt.Printf("maintenance for %d sensor readings:\n", nSensors)
	fmt.Printf("  3 hash indices: %6d attribute hashes, %6d key entries created\n",
		hashInsert.Hashes, hashInsert.KeyOps)
	fmt.Printf("  AMRI bit index: %6d attribute hashes, %6d key entries created\n\n",
		amriInsert.Hashes, amriInsert.KeyOps)

	probe := func(name string, p amri.Pattern, vals []amri.Value) {
		var hTuples, aTuples int
		hst := hashState.Probe(p, vals, func(*amri.Tuple) bool { hTuples++; return true })
		ast := amriState.Search(p, vals, func(*amri.Tuple) bool { aTuples++; return true })
		best := hashState.BestIndex(p)
		how := "full scan (no suitable index!)"
		if best != 0 {
			how = "via index " + best.StringN(3)
		}
		fmt.Printf("%s — pattern %s\n", name, p.StringN(3))
		fmt.Printf("  hash indices: scanned %6d candidates  (%s)\n", hst.Tuples, how)
		fmt.Printf("  AMRI:         scanned %6d candidates across %d buckets\n",
			ast.Tuples, ast.Buckets)
	}

	// sr1: all packages with priority code 2012 at location 47.
	probe("sr1 (priority=2012, location=47)", amri.PatternOf(0, 2),
		[]amri.Value{2012, 0, 47})
	// sr2: all packages at location 47 — the request that breaks the
	// hash design.
	probe("sr2 (location=47)", amri.PatternOf(2),
		[]amri.Value{0, 0, 47})

	// Let AMRI adapt to a location-heavy workload and probe again.
	for i := 0; i < 5000; i++ {
		amriState.Search(amri.PatternOf(2), []amri.Value{0, 0, amri.Value(rng.Uint64N(128))},
			func(*amri.Tuple) bool { return true })
	}
	migrated, cfg := amriState.Tune()
	fmt.Printf("\nAMRI after observing the location-heavy workload: migrated=%v config=%v\n",
		migrated, cfg)
	probe("sr2 again", amri.PatternOf(2), []amri.Value{0, 0, 47})
}
