// Quickstart: put an Adaptive Multi-Route Index on a state, feed it a
// workload whose access patterns shift, and watch the index configuration
// follow the workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"

	"amri"
)

func main() {
	// A state with three join attributes (think: priority, package id,
	// location id). The index starts with a uniform 12-bit configuration
	// and retunes itself every 2000 search requests using CDIA with
	// highest-count combination — the paper's best assessment method.
	ix, err := amri.NewAdaptiveIndex(amri.IndexOptions{
		NumAttrs:      3,
		BitBudget:     12,
		Method:        amri.CDIAHighest,
		AutoTuneEvery: 2000,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}

	// Store a window's worth of tuples.
	rng := rand.New(rand.NewPCG(7, 7))
	domain := uint64(512)
	for i := 0; i < 5000; i++ {
		ix.Insert(amri.NewTuple(0, uint64(i), 0, []amri.Value{
			amri.Value(rng.Uint64N(domain)),
			amri.Value(rng.Uint64N(domain)),
			amri.Value(rng.Uint64N(domain)),
		}))
	}
	fmt.Printf("fresh index:   %v\n", ix)

	// Phase 1: searches constrain mostly attribute A.
	search := func(p amri.Pattern) int {
		vals := []amri.Value{
			amri.Value(rng.Uint64N(domain)),
			amri.Value(rng.Uint64N(domain)),
			amri.Value(rng.Uint64N(domain)),
		}
		candidates := 0
		ix.Search(p, vals, func(t *amri.Tuple) bool { candidates++; return true })
		return candidates
	}
	for i := 0; i < 4000; i++ {
		p := amri.PatternOf(0) // <A,*,*>
		if i%5 == 0 {
			p = amri.PatternOf(0, 1) // <A,B,*>
		}
		search(p)
	}
	fmt.Printf("after A-heavy phase:  %v\n", ix)
	fmt.Printf("  a 1-attribute search on A now scans ~%d candidates\n",
		search(amri.PatternOf(0)))

	// Phase 2: the query paths change — searches now constrain C.
	for i := 0; i < 4000; i++ {
		p := amri.PatternOf(2) // <*,*,C>
		if i%5 == 0 {
			p = amri.PatternOf(1, 2) // <*,B,C>
		}
		search(p)
	}
	fmt.Printf("after C-heavy phase:  %v\n", ix)
	fmt.Printf("  a 1-attribute search on C now scans ~%d candidates\n",
		search(amri.PatternOf(2)))

	fmt.Printf("\ntotal search requests observed: %d, migrations: %d\n",
		ix.Requests(), ix.Retunes())
	fmt.Println("the bits followed the workload — that is the whole paper in one run")
}
