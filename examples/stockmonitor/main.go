// Stock monitoring — the paper's motivating scenario: an analyst combines
// price/volume ticks with company news, sector feeds and blog mentions.
// Four streams, every pair joined, arrival rates and selectivities that
// drift as market activity shifts. This example runs the full adaptive
// multi-route engine head-to-head: AMRI against the multi-hash-index
// design and a non-adapting bitmap, on the identical workload.
//
//	go run ./examples/stockmonitor
package main

import (
	"fmt"

	"amri"
)

func main() {
	run := amri.DefaultRunConfig()
	run.MaxTicks = 600 // ten virtual minutes keeps the demo snappy
	run.Seed = 7

	systems := []amri.System{
		amri.AMRISystem(amri.AssessCDIAHighest),
		amri.HashSystem(7),
		amri.StaticBitmapSystem(),
	}

	fmt.Println("four streams (ticks, news, sector, blogs), all pairs joined;")
	fmt.Println("selectivities drift every", run.Profile.EpochTicks, "virtual seconds")
	fmt.Println()

	var results []*amri.RunResult
	for _, sys := range systems {
		eng, err := amri.NewEngine(run, sys)
		if err != nil {
			panic(err)
		}
		r := eng.Run()
		results = append(results, r)
		fmt.Println(r.Summary())
	}

	fmt.Println()
	fmt.Println(amri.ResultsTable(results))
	fmt.Println(amri.ResultsChart(results, 72, 12))

	amriRes := float64(results[0].TotalResults)
	fmt.Printf("AMRI vs multi-hash:        %+.0f%%\n", 100*(amriRes/float64(results[1].TotalResults)-1))
	fmt.Printf("AMRI vs static bitmap:     %+.0f%%\n", 100*(amriRes/float64(results[2].TotalResults)-1))
}
