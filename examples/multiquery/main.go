// Multi-query sharing — the paper notes its logic "equally applies to
// multiple SPJ queries". This example runs two queries over shared streams:
// the 4-way clique join plus a 3-way chain joining via different
// attributes. Each stream keeps ONE adaptive index whose configuration is
// tuned from the union of both queries' access patterns, and the demo
// compares that against dedicating an index per (state, query).
//
//	go run ./examples/multiquery
package main

import (
	"fmt"

	"amri"
)

func main() {
	prof := amri.DriftingWorkload()
	prof.LambdaD = 10
	prof.Domains = []uint64{10, 16, 25, 40, 64, 100, 160, 250}

	base := amri.MultiQueryRunConfig{
		Workload: amri.TwoQueryWorkload(),
		Profile:  prof,
		Seed:     7,
		Ticks:    300,
	}

	shared, err := amri.RunMultiQuery(base)
	if err != nil {
		panic(err)
	}
	ded := base
	ded.Dedicated = true
	dedicated, err := amri.RunMultiQuery(ded)
	if err != nil {
		panic(err)
	}

	fmt.Println("two queries over shared streams A,B,C,D:")
	fmt.Println("  Q0: 4-way clique join  (window 60)")
	fmt.Println("  Q1: A-B-C chain via separate attributes (window 30)")
	fmt.Println()
	fmt.Printf("%-10s %16s %16s\n", "query", "shared AMRI", "dedicated idx")
	for q := range shared.PerQueryResults {
		fmt.Printf("Q%-9d %16d %16d\n", q, shared.PerQueryResults[q], dedicated.PerQueryResults[q])
	}
	fmt.Println()
	fmt.Printf("index memory: shared %d B, dedicated %d B (%.0f%% saved by sharing)\n",
		shared.IndexMemBytes, dedicated.IndexMemBytes,
		100*(1-float64(shared.IndexMemBytes)/float64(dedicated.IndexMemBytes)))
	fmt.Printf("shared retunes: %d  dedicated retunes: %d\n", shared.Retunes, dedicated.Retunes)
	fmt.Println("\nshared state configurations (bits serving BOTH queries' patterns):")
	for _, c := range shared.Configs {
		fmt.Println(" ", c)
	}
}
