// Command amrichaos is the chaos-exploration harness: it sweeps workload
// seeds × fault plans × crash points through the durable concurrent
// pipeline, checks the durability invariants after every recovery (result
// digest vs an uncrashed serial reference, conservation, lossless restore,
// WAL/checkpoint audit, goroutine leaks), and on the first failure
// delta-debugs the scenario down to a minimal JSON repro that
// `amripipe -replay` reproduces deterministically.
//
// Usage:
//
//	amrichaos [-seeds 3] [-ticks 24] [-workers 8] [-shards 8]
//	          [-flake-every 0] [-out chaos-repro.json] [-budget 64]
//	          [-expect-fail] [-v]
//
// Exit status: 0 when every scenario passes (or, with -expect-fail, when a
// failure was found and its minimized repro still fails); 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"amri/internal/chaos"
	"amri/internal/fault"
)

func main() {
	var (
		seeds      = flag.Uint64("seeds", 3, "sweep workload seeds 1..N")
		ticks      = flag.Int64("ticks", 24, "run horizon per scenario")
		workers    = flag.Int("workers", 8, "probe workers per scenario")
		shards     = flag.Int("shards", 8, "index shards per scenario (0 = flat)")
		flakeEvery = flag.Int("flake-every", 0, "wrap the store in a lying disk dropping every Nth WAL append (0 = honest store)")
		out        = flag.String("out", "chaos-repro.json", "where to write the minimized repro on failure")
		budget     = flag.Int("budget", 64, "Explore-probe budget for minimization")
		expectFail = flag.Bool("expect-fail", false, "invert the verdict: succeed only if a failure is found and its minimized repro still fails")
		verbose    = flag.Bool("v", false, "print every scenario, not just failures")
	)
	flag.Parse()

	explored := 0
	for seed := uint64(1); seed <= *seeds; seed++ {
		for _, plan := range plans(seed, *ticks) {
			sc := chaos.Scenario{
				Seed:       seed,
				Ticks:      *ticks,
				Workers:    *workers,
				Shards:     *shards,
				Plan:       plan,
				FlakeEvery: *flakeEvery,
			}
			rep := chaos.Explore(sc)
			explored++
			if *verbose || rep.Failed() {
				fmt.Printf("seed %d crashes %v faults(p=%g s=%g a=%g): %s\n",
					seed, plan.CrashTicks, plan.PanicRate, plan.SaturateRate, plan.AbortRate, verdict(rep))
			}
			if rep.Failed() {
				os.Exit(fail(sc, rep, *out, *budget, *expectFail))
			}
		}
	}
	fmt.Printf("amrichaos: %d scenarios explored, every invariant held\n", explored)
	if *expectFail {
		fmt.Fprintln(os.Stderr, "amrichaos: -expect-fail set but no scenario failed")
		os.Exit(1)
	}
}

// plans builds the fault-plan axis of the sweep for one seed: a pure crash
// schedule, light background chaos, and heavy chaos with aborted
// migrations — each paired with seed-staggered crash points.
func plans(seed uint64, ticks int64) []fault.Plan {
	c1 := int64(seed) % ticks
	c2 := (ticks/2 + int64(seed)) % ticks
	if c2 <= c1 {
		c1, c2 = c2, c1+ticks/3+1
		if c2 >= ticks {
			c2 = ticks - 1
		}
	}
	crashes := []int64{c1, c2}
	return []fault.Plan{
		{Seed: seed, CrashTicks: crashes},
		{Seed: seed, PanicRate: 0.002, DelayRate: 0.002, Delay: 10_000, CrashTicks: crashes},
		{Seed: seed, PanicRate: 0.005, SaturateRate: 0.01, AbortRate: 1.0, PressureRate: 0.01, CrashTicks: crashes},
	}
}

func verdict(rep *chaos.Report) string {
	if !rep.Failed() {
		return fmt.Sprintf("ok (%d results, %d recoveries)", rep.Results, rep.Recoveries)
	}
	return fmt.Sprintf("FAIL (%d violations)", len(rep.Violations))
}

// fail minimizes the failing scenario, writes the repro, and returns the
// process exit status honoring -expect-fail.
func fail(sc chaos.Scenario, rep *chaos.Report, out string, budget int, expectFail bool) int {
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	fmt.Printf("minimizing (budget %d probes)...\n", budget)
	min, st := chaos.Minimize(sc, budget)
	minRep := chaos.Explore(min)
	fmt.Printf("minimized after %d probes: seed %d, %d ticks, %d workers, %d shards, crashes %v — %s\n",
		st.Probes, min.Seed, min.Ticks, min.Workers, min.Shards, min.Plan.CrashTicks, verdict(minRep))
	if err := chaos.WriteRepro(out, min); err != nil {
		fmt.Fprintln(os.Stderr, "amrichaos: write repro:", err)
		return 1
	}
	fmt.Printf("repro written to %s (replay with: amripipe -replay %s)\n", out, out)
	if expectFail && minRep.Failed() {
		fmt.Println("amrichaos: failure found and minimized repro still fails, as expected")
		return 0
	}
	return 1
}
