// Command amriquery runs an arbitrary SPJ query (described in JSON) over a
// recorded workload (the cmd/amrigen CSV format) or the synthetic
// generator, printing the run summary and final index configurations.
//
// Usage:
//
//	amriquery -dump-fourway > q.json        # emit a template query spec
//	amrigen -ticks 300 > trace.csv
//	amriquery -query q.json -trace trace.csv -system amri
//	amriquery -query q.json -ticks 300 -system hash-4
//
// Systems: amri (CDIA-highest), amri-sria, amri-csria, static, scan, or
// hash-K for K access modules.
package main

import (
	"flag"
	"fmt"
	"os"

	"amri/internal/engine"
	"amri/internal/metrics"
	"amri/internal/query"
	"amri/internal/stream"
)

func main() {
	var (
		queryPath = flag.String("query", "", "path to the JSON query spec (empty = the paper's 4-way join)")
		tracePath = flag.String("trace", "", "replay this workload CSV instead of generating")
		system    = flag.String("system", "amri", "contender: amri, amri-sria, amri-csria, static, scan, hash-K")
		ticks     = flag.Int64("ticks", 600, "run horizon (generated workloads)")
		seed      = flag.Uint64("seed", 1, "workload seed (generated workloads)")
		dump      = flag.Bool("dump-fourway", false, "print the 4-way join as a JSON spec and exit")
	)
	flag.Parse()

	if *dump {
		b, err := query.FourWay(60).MarshalJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "amriquery:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}

	run := engine.DefaultRunConfig()
	run.Seed = *seed
	run.MaxTicks = *ticks

	if *queryPath != "" {
		f, err := os.Open(*queryPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amriquery:", err)
			os.Exit(1)
		}
		q, err := query.ParseJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "amriquery:", err)
			os.Exit(1)
		}
		run.Query = q
	}

	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amriquery:", err)
			os.Exit(1)
		}
		tr, err := stream.ParseTrace(f, run.Profile.PayloadBytes)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "amriquery:", err)
			os.Exit(1)
		}
		run.Source = tr
		if tr.MaxTick()+1 < run.MaxTicks {
			run.MaxTicks = tr.MaxTick() + 1
		}
		if run.WarmupTicks >= run.MaxTicks {
			run.WarmupTicks = run.MaxTicks / 4
		}
	}

	sys, err := engine.ParseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amriquery:", err)
		os.Exit(2)
	}
	eng, err := engine.New(run, sys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amriquery:", err)
		os.Exit(1)
	}
	r := eng.Run()
	fmt.Println(metrics.Table([]*metrics.RunResult{r}))
	fmt.Println(r.Latency.String())
	fmt.Println("final index configurations:")
	for _, c := range r.FinalConfigs {
		fmt.Println(" ", c)
	}
	if len(r.CostBreakdown) > 0 {
		fmt.Printf("cost breakdown: maintain %.0f%%, search %.0f%%, assess %.0f%%, route %.0f%%\n",
			100*r.CostBreakdown["maintain"], 100*r.CostBreakdown["search"],
			100*r.CostBreakdown["assess"], 100*r.CostBreakdown["route"])
	}
}
