// Command amrigen emits the synthetic workload as CSV, one row per tuple:
//
//	tick,stream,seq,attr0,attr1,...
//
// Useful for inspecting what the generators produce, feeding external
// tools, or diffing workloads across seeds.
//
// Usage:
//
//	amrigen [-ticks 60] [-seed 1] [-profile drift|stable|skewed] [-rate 50]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"amri/internal/query"
	"amri/internal/stream"
)

func main() {
	var (
		ticks   = flag.Int64("ticks", 60, "number of ticks to generate")
		seed    = flag.Uint64("seed", 1, "workload seed")
		profile = flag.String("profile", "drift", "workload profile: drift, stable or skewed")
		rate    = flag.Int("rate", 0, "override tuples per stream per tick (0 = profile default)")
		window  = flag.Int64("window", 60, "query window length in ticks")
	)
	flag.Parse()

	var prof stream.Profile
	switch *profile {
	case "drift":
		prof = stream.DriftProfile()
	case "stable":
		prof = stream.StableProfile()
	case "skewed":
		prof = stream.SkewedProfile()
	default:
		fmt.Fprintf(os.Stderr, "amrigen: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *rate > 0 {
		prof.LambdaD = *rate
	}

	q := query.FourWay(*window)
	gen, err := stream.New(q, prof, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrigen:", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "tick,stream,seq,attr0,attr1,attr2")
	for tick := int64(0); tick < *ticks; tick++ {
		for _, t := range gen.Tick(tick) {
			fmt.Fprintf(w, "%d,%d,%d", tick, t.Stream, t.Seq)
			for _, v := range t.Attrs {
				fmt.Fprintf(w, ",%d", v)
			}
			fmt.Fprintln(w)
		}
	}
}
