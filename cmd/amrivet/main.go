// Command amrivet runs AMRI's project-specific static-analysis suite over
// the module. Five per-package analyzers check lock discipline around
// shared index state (mutexguard), the 64-bit IC budget (bitbudget),
// wall-clock hygiene in hot paths (wallclock), seeded determinism
// (detrand) and consistent atomic access (atomicmix); four interprocedural
// analyzers built on the cross-package facts store and call graph check
// global mutex acquisition order (lockorder), channel ownership protocol
// (chanprotocol), allocation-free probe hot paths (hotalloc) and discarded
// error returns (errdrop). It is the third link in the CI gate chain:
//
//	go build ./...  →  go vet ./...  →  amrivet ./...  →  go test -race ./...
//
// Usage:
//
//	amrivet [-run name,name] [-list] [-json] [packages]
//
// Packages default to ./... relative to the current directory. With -json
// each diagnostic is emitted as one JSON object per line on stdout
// (analyzer, file, line, col, message) for tooling to consume. The exit
// status is exitFindings (1) when any diagnostic survives suppression and
// exitError (2) on usage, load or type-check errors, so CI can distinguish
// "the code has findings" from "the analysis never ran". Findings can be
// suppressed with an in-source directive:
//
//	//amrivet:ignore <reason>            (all analyzers, this/next line)
//	//amrivet:ignore[wallclock] <reason> (one analyzer only)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amri/internal/analysis"
)

// Exit statuses, part of the command's contract with CI.
const (
	exitClean    = 0 // analysis ran, no findings
	exitFindings = 1 // analysis ran, at least one diagnostic survived
	exitError    = 2 // usage, load or type-check failure: analysis did not run
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("amrivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList  = fs.String("run", "", "comma-separated analyzer names to run (default all)")
		listOnly = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: amrivet [-run name,name] [-list] [-json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := analysis.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *runList != "" {
		analyzers = selectAnalyzers(analyzers, *runList)
		if analyzers == nil {
			fmt.Fprintf(stderr, "amrivet: unknown analyzer in -run=%q (use -list)\n", *runList)
			return exitError
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "amrivet: %v\n", err)
		return exitError
	}

	diags, err := analysis.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "amrivet: %v\n", err)
		return exitError
	}

	cwd, _ := os.Getwd()
	enc := json.NewEncoder(stdout)
	total := 0
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "amrivet: encoding diagnostic: %v\n", err)
				return exitError
			}
		} else {
			fmt.Fprintln(stdout, d)
		}
		total++
	}
	if total > 0 {
		fmt.Fprintf(stderr, "amrivet: %d finding(s) in %d package(s)\n", total, len(pkgs))
		return exitFindings
	}
	return exitClean
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil
		}
		picked = append(picked, a)
	}
	return picked
}
