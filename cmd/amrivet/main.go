// Command amrivet runs AMRI's project-specific static-analysis suite over
// the module. Six per-package analyzers check lock discipline around
// shared index state (mutexguard), the 64-bit IC budget (bitbudget),
// wall-clock hygiene in hot paths (wallclock), seeded determinism
// (detrand), consistent atomic access (atomicmix) and references escaping
// critical sections (critescape); seven interprocedural analyzers built on
// the cross-package facts store and call graph check global mutex
// acquisition order (lockorder), channel ownership protocol
// (chanprotocol), allocation-free probe hot paths (hotalloc), discarded
// error returns (errdrop), costly work inside hot-path critical sections
// (lockhold), leaked goroutines blocked forever (waitleak) and
// cache-line-sharing contended fields (falseshare). It is the third link
// in the CI gate chain:
//
//	go build ./...  →  go vet ./...  →  amrivet ./...  →  go test -race ./...
//
// Usage:
//
//	amrivet [-run name,name] [-list] [-json] [-baseline file] [packages]
//
// Packages default to ./... relative to the current directory. With -json
// each diagnostic is emitted as one JSON object per line on stdout
// (analyzer, file, line, col, message) for tooling to consume; the output
// is sorted by (file, line, col, analyzer) after path relativization, so
// two runs over the same tree diff cleanly. With -baseline, findings
// recorded in the given file (itself captured with -json) are suppressed —
// matched by analyzer, file and message, deliberately not line/col, so
// unrelated edits do not invalidate the baseline — and only new findings
// fail the run. The exit status is exitFindings (1) when any diagnostic
// survives suppression and exitError (2) on usage, load or type-check
// errors, so CI can distinguish "the code has findings" from "the
// analysis never ran". Findings can be suppressed with an in-source
// directive:
//
//	//amrivet:ignore <reason>             (all analyzers, this/next line)
//	//amrivet:ignore[wallclock] <reason>  (one analyzer only)
//	//amrivet:lockhold <reason>           (shorthand for ignore[lockhold])
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"amri/internal/analysis"
)

// Exit statuses, part of the command's contract with CI.
const (
	exitClean    = 0 // analysis ran, no findings
	exitFindings = 1 // analysis ran, at least one diagnostic survived
	exitError    = 2 // usage, load or type-check failure: analysis did not run
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("amrivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList  = fs.String("run", "", "comma-separated analyzer names to run (default all)")
		listOnly = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
		baseline = fs.String("baseline", "", "suppress findings recorded in this file (captured with -json); fail only on new ones")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: amrivet [-run name,name] [-list] [-json] [-baseline file] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := analysis.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *runList != "" {
		analyzers = selectAnalyzers(analyzers, *runList)
		if analyzers == nil {
			fmt.Fprintf(stderr, "amrivet: unknown analyzer in -run=%q (use -list)\n", *runList)
			return exitError
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "amrivet: %v\n", err)
		return exitError
	}

	diags, err := analysis.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "amrivet: %v\n", err)
		return exitError
	}

	// Relativize paths first, then re-sort: RunAll's order is by absolute
	// filename, and relativization can reorder (the module root sorts
	// differently from its parents), so the -json stream would not be
	// diff-stable without a second pass.
	cwd, _ := os.Getwd()
	for i := range diags {
		if cwd == "" {
			break
		}
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	var known map[string]int
	if *baseline != "" {
		known, err = loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "amrivet: %v\n", err)
			return exitError
		}
	}

	enc := json.NewEncoder(stdout)
	total := 0
	for _, d := range diags {
		if key := baselineKey(d.Analyzer, d.Pos.Filename, d.Message); known[key] > 0 {
			known[key]--
			continue
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "amrivet: encoding diagnostic: %v\n", err)
				return exitError
			}
		} else {
			fmt.Fprintln(stdout, d)
		}
		total++
	}
	if total > 0 {
		fmt.Fprintf(stderr, "amrivet: %d finding(s) in %d package(s)\n", total, len(pkgs))
		return exitFindings
	}
	return exitClean
}

// baselineKey identifies a finding for baseline matching: analyzer, file
// and message, deliberately not line/col, so edits elsewhere in a file do
// not invalidate its recorded findings.
func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// loadBaseline parses a recorded -json finding stream into a multiset of
// baseline keys: each recorded finding forgives exactly one live finding.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	known := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return nil, fmt.Errorf("baseline %s:%d: %v", path, i+1, err)
		}
		known[baselineKey(d.Analyzer, d.File, d.Message)]++
	}
	return known, nil
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil
		}
		picked = append(picked, a)
	}
	return picked
}
