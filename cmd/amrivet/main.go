// Command amrivet runs AMRI's project-specific static-analysis suite over
// the module. Seventeen analyzers machine-check the invariants the
// concurrent pipeline relies on. Per-package: lock discipline around
// shared index state (mutexguard), the 64-bit IC budget (bitbudget),
// wall-clock hygiene in hot paths (wallclock), seeded determinism
// (detrand), consistent atomic access (atomicmix), references escaping
// critical sections (critescape), map-iteration order reaching
// order-sensitive sinks (maporder), goroutine-written scratch read before
// its barrier (barrierflush) and the WAL durability protocol (walorder).
// Interprocedural, built on the cross-package facts store, the value-flow
// layer and the call graph: global mutex acquisition order (lockorder),
// channel ownership protocol (chanprotocol), allocation-free probe hot
// paths (hotalloc), discarded error returns (errdrop), costly work inside
// hot-path critical sections (lockhold), leaked goroutines blocked forever
// (waitleak), cache-line-sharing contended fields (falseshare) and
// lock-free handshake/republish pairing (atomicproto). It is the third
// link in the CI gate chain:
//
//	go build ./...  →  go vet ./...  →  amrivet ./...  →  go test -race ./...
//
// Usage:
//
//	amrivet [-run name,name] [-list] [-json] [-sarif file] [-baseline file]
//	        [-prune-baseline] [-p n] [-timing] [packages]
//
// Packages default to ./... relative to the current directory. Packages at
// the same import depth analyze concurrently (-p bounds the workers);
// output is byte-identical to a serial run. With -json each diagnostic is
// emitted as one JSON object per line on stdout (analyzer, file, line,
// col, message) for tooling to consume; the output is sorted by (file,
// line, col, analyzer, message) after path relativization, so two runs
// over the same tree diff cleanly. -sarif additionally writes the
// surviving findings as a SARIF 2.1.0 log for code-scanning upload.
//
// With -baseline, findings recorded in the given file (itself captured
// with -json) are suppressed — matched by analyzer, file and message,
// deliberately not line/col, so unrelated edits do not invalidate the
// baseline — and only new findings fail the run. Baseline entries that no
// longer fire are stale: an explicitly named baseline reports them and
// exits exitStaleBaseline (3) so CI notices the debt was paid;
// -prune-baseline instead rewrites the file without them. The default
// -baseline=auto uses ./.amrivet-baseline.json when present in
// suppress-only mode (no stale exit), so partial-tree runs — like the
// lint self-check over ./internal/analysis/... — do not misread
// out-of-tree entries as stale. -baseline=off disables suppression.
//
// The exit status is exitFindings (1) when any diagnostic survives
// suppression, exitError (2) on usage, load or type-check errors, and
// exitStaleBaseline (3) when the only problem is stale baseline entries,
// so CI can distinguish "the code has findings" from "the analysis never
// ran" from "the baseline rotted". Findings can be suppressed with an
// in-source directive:
//
//	//amrivet:ignore <reason>             (all analyzers, this/next line)
//	//amrivet:ignore[wallclock] <reason>  (one analyzer only)
//	//amrivet:lockhold <reason>           (shorthand for ignore[lockhold])
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"amri/internal/analysis"
)

// Exit statuses, part of the command's contract with CI.
const (
	exitClean         = 0 // analysis ran, no findings
	exitFindings      = 1 // analysis ran, at least one diagnostic survived
	exitError         = 2 // usage, load or type-check failure: analysis did not run
	exitStaleBaseline = 3 // clean, but baseline entries no longer fire
)

// autoBaseline is the baseline file the default -baseline=auto mode picks
// up from the working directory, in suppress-only mode.
const autoBaseline = ".amrivet-baseline.json"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("amrivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList  = fs.String("run", "", "comma-separated analyzer names to run (default all)")
		listOnly = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
		baseline = fs.String("baseline", "auto", "suppress findings recorded in this file (captured with -json); 'auto' uses ./"+autoBaseline+" when present without stale detection, 'off' disables")
		prune    = fs.Bool("prune-baseline", false, "rewrite the baseline file keeping only entries that still fire")
		sarifOut = fs.String("sarif", "", "additionally write surviving findings to this file as SARIF 2.1.0")
		workers  = fs.Int("p", runtime.GOMAXPROCS(0), "max packages analyzed concurrently (import-independent packages only)")
		timing   = fs.Bool("timing", false, "report per-package analysis wall time on stderr")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: amrivet [-run name,name] [-list] [-json] [-sarif file] [-baseline file] [-prune-baseline] [-p n] [-timing] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers := analysis.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *runList != "" {
		analyzers = selectAnalyzers(analyzers, *runList)
		if analyzers == nil {
			fmt.Fprintf(stderr, "amrivet: unknown analyzer in -run=%q (use -list)\n", *runList)
			return exitError
		}
	}

	// Resolve the baseline mode before loading anything: auto is
	// suppress-only (partial-tree runs must not misread out-of-tree
	// entries as stale), an explicit path also detects staleness.
	baselinePath, staleDetect := "", false
	switch *baseline {
	case "off", "":
	case "auto":
		if _, err := os.Stat(autoBaseline); err == nil {
			baselinePath = autoBaseline
		}
	default:
		baselinePath = *baseline
		staleDetect = true
	}
	if *prune && baselinePath == "" {
		fmt.Fprintln(stderr, "amrivet: -prune-baseline needs a baseline file (explicit -baseline or ./"+autoBaseline+")")
		return exitError
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "amrivet: %v\n", err)
		return exitError
	}

	opts := analysis.RunOptions{Workers: *workers}
	if *timing {
		var total time.Duration
		opts.Timing = func(path string, d time.Duration) {
			total += d
			fmt.Fprintf(stderr, "amrivet: %8.1fms %s\n", float64(d.Microseconds())/1e3, path)
		}
		defer func() {
			fmt.Fprintf(stderr, "amrivet: %8.1fms total analysis time across %d package(s)\n",
				float64(total.Microseconds())/1e3, len(pkgs))
		}()
	}
	diags, err := analysis.RunAllWith(pkgs, analyzers, opts)
	if err != nil {
		fmt.Fprintf(stderr, "amrivet: %v\n", err)
		return exitError
	}

	// Relativize paths first, then re-sort: RunAll's order is by absolute
	// filename, and relativization can reorder (the module root sorts
	// differently from its parents), so the -json stream would not be
	// diff-stable without a second pass.
	cwd, _ := os.Getwd()
	for i := range diags {
		if cwd == "" {
			break
		}
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	var known, fired map[string]int
	if baselinePath != "" {
		known, err = loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "amrivet: %v\n", err)
			return exitError
		}
		fired = make(map[string]int)
	}

	enc := json.NewEncoder(stdout)
	var surviving []analysis.Diagnostic
	for _, d := range diags {
		if key := baselineKey(d.Analyzer, d.Pos.Filename, d.Message); known[key] > 0 {
			known[key]--
			fired[key]++
			continue
		}
		surviving = append(surviving, d)
		if *jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(stderr, "amrivet: encoding diagnostic: %v\n", err)
				return exitError
			}
		} else {
			fmt.Fprintln(stdout, d)
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, analyzers, surviving); err != nil {
			fmt.Fprintf(stderr, "amrivet: %v\n", err)
			return exitError
		}
	}

	// Stale-baseline accounting: entries with unconsumed forgiveness no
	// longer fire. Explicit baselines report (or prune) them so the
	// recorded debt cannot outlive the code it described.
	stale := 0
	var staleKeys []string
	for key, left := range known {
		if left > 0 {
			stale += left
			staleKeys = append(staleKeys, key)
		}
	}
	sort.Strings(staleKeys)
	if staleDetect && !*prune {
		for _, key := range staleKeys {
			analyzer, file, message := splitBaselineKey(key)
			fmt.Fprintf(stderr, "amrivet: stale baseline entry (no longer fires): %s: %s: %s\n", file, analyzer, message)
		}
	}
	if *prune && stale > 0 {
		kept, err := pruneBaseline(baselinePath, fired)
		if err != nil {
			fmt.Fprintf(stderr, "amrivet: %v\n", err)
			return exitError
		}
		fmt.Fprintf(stderr, "amrivet: pruned %d stale baseline entr%s from %s (%d kept)\n",
			stale, plural(stale, "y", "ies"), baselinePath, kept)
		stale = 0
	}

	if len(surviving) > 0 {
		fmt.Fprintf(stderr, "amrivet: %d finding(s) in %d package(s)\n", len(surviving), len(pkgs))
		return exitFindings
	}
	if staleDetect && stale > 0 {
		fmt.Fprintf(stderr, "amrivet: %d stale baseline entr%s in %s (re-capture with -json or run -prune-baseline)\n",
			stale, plural(stale, "y", "ies"), baselinePath)
		return exitStaleBaseline
	}
	return exitClean
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// baselineKey identifies a finding for baseline matching: analyzer, file
// and message, deliberately not line/col, so edits elsewhere in a file do
// not invalidate its recorded findings.
func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

func splitBaselineKey(key string) (analyzer, file, message string) {
	parts := strings.SplitN(key, "\x00", 3)
	for len(parts) < 3 {
		parts = append(parts, "")
	}
	return parts[0], parts[1], parts[2]
}

// loadBaseline parses a recorded -json finding stream into a multiset of
// baseline keys: each recorded finding forgives exactly one live finding.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	known := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return nil, fmt.Errorf("baseline %s:%d: %v", path, i+1, err)
		}
		known[baselineKey(d.Analyzer, d.File, d.Message)]++
	}
	return known, nil
}

// pruneBaseline rewrites the baseline keeping, per key, only as many
// entries as findings actually fired — original order and formatting of
// the kept lines are preserved. Returns how many entries were kept.
func pruneBaseline(path string, fired map[string]int) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("baseline: %v", err)
	}
	budget := make(map[string]int, len(fired))
	for k, n := range fired {
		budget[k] = n
	}
	var kept []string
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(trimmed), &d); err != nil {
			return 0, fmt.Errorf("baseline %s:%d: %v", path, i+1, err)
		}
		key := baselineKey(d.Analyzer, d.File, d.Message)
		if budget[key] > 0 {
			budget[key]--
			kept = append(kept, line)
		}
	}
	out := strings.Join(kept, "\n")
	if len(kept) > 0 {
		out += "\n"
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return 0, fmt.Errorf("baseline: %v", err)
	}
	return len(kept), nil
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil
		}
		picked = append(picked, a)
	}
	return picked
}
