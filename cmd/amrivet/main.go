// Command amrivet runs AMRI's project-specific static-analysis suite over
// the module: lock discipline around shared index state (mutexguard), the
// 64-bit IC budget (bitbudget), wall-clock hygiene in hot paths
// (wallclock), seeded determinism (detrand) and consistent atomic access
// (atomicmix). It is the third link in the CI gate chain:
//
//	go build ./...  →  go vet ./...  →  amrivet ./...  →  go test -race ./...
//
// Usage:
//
//	amrivet [-run name,name] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 when any diagnostic survives suppression, 2 on usage or
// load errors. Findings can be suppressed with an in-source directive:
//
//	//amrivet:ignore <reason>            (all analyzers, this/next line)
//	//amrivet:ignore[wallclock] <reason> (one analyzer only)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amri/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("amrivet", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated analyzer names to run (default all)")
		listOnly = fs.Bool("list", false, "list analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: amrivet [-run name,name] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		analyzers = selectAnalyzers(analyzers, *runList)
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "amrivet: unknown analyzer in -run=%q (use -list)\n", *runList)
			return 2
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amrivet: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	total := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analyzers) {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			fmt.Println(d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "amrivet: %d finding(s) in %d package(s)\n", total, len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil
		}
		picked = append(picked, a)
	}
	return picked
}
