package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"amri/internal/analysis"
)

// SARIF 2.1.0 output, the subset code-scanning backends consume. One run,
// one rule per analyzer, one result per surviving finding. Structs rather
// than a dependency: the schema slice we need is a dozen fields.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF writes the surviving findings as a SARIF 2.1.0 log. Rules
// cover the full registered suite (not just analyzers that fired) so the
// code-scanning UI can show suite coverage; results reference rules by
// index as the spec recommends.
func writeSARIF(path string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		index[a.Name] = i
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ri, ok := index[d.Analyzer]
		if !ok {
			// Framework diagnostics (analyzer "amrivet") have no rule
			// entry; attach them to a synthetic trailing rule once.
			ri = len(rules)
			index[d.Analyzer] = ri
			rules = append(rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: "amrivet framework diagnostic"},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ri,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/schemas/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "amrivet", Rules: rules}}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return fmt.Errorf("sarif: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("sarif: %v", err)
	}
	return nil
}
