// Command amritune runs one-shot index selection from an access-pattern
// workload description: feed it pattern:percent pairs and a bit budget, and
// it prints what each assessment method reports and the index configuration
// the tuner selects from that report — the Table II exercise on arbitrary
// inputs.
//
// Usage:
//
//	amritune -budget 4 "<A,*,*>:4" "<*,B,*>:10" "<*,*,C>:10" \
//	         "<A,B,*>:4" "<A,*,C>:16" "<*,B,C>:10" "<A,B,C>:46"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"amri/internal/assess"
	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
	"amri/internal/tuner"
)

func main() {
	var (
		budget  = flag.Int("budget", 12, "total IC bits to allocate")
		theta   = flag.Float64("theta", 0.05, "assessment threshold")
		epsilon = flag.Float64("epsilon", 0.001, "assessment error rate")
		reqs    = flag.Int("requests", 10000, "synthetic requests to replay")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, `amritune: need pattern:percent arguments, e.g. "<A,B,*>:4"`)
		os.Exit(2)
	}

	type mix struct {
		p   query.Pattern
		pct int
	}
	var mixes []mix
	numAttrs := 0
	for _, arg := range flag.Args() {
		i := strings.LastIndex(arg, ":")
		if i < 0 {
			fmt.Fprintf(os.Stderr, "amritune: %q is not pattern:percent\n", arg)
			os.Exit(2)
		}
		p, err := query.ParsePattern(arg[:i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "amritune:", err)
			os.Exit(2)
		}
		pct, err := strconv.Atoi(arg[i+1:])
		if err != nil || pct <= 0 {
			fmt.Fprintf(os.Stderr, "amritune: bad percent in %q\n", arg)
			os.Exit(2)
		}
		n := strings.Count(arg[:i], ",") + 1
		if n > numAttrs {
			numAttrs = n
		}
		mixes = append(mixes, mix{p: p, pct: pct})
	}

	cs, err := assess.NewCSRIA(*epsilon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amritune:", err)
		os.Exit(1)
	}
	cdr, _ := assess.NewCDIA(numAttrs, *epsilon, hh.RollupRandom, 1)
	cdh, _ := assess.NewCDIA(numAttrs, *epsilon, hh.RollupHighestCount, 1)
	sria := assess.NewSRIA()
	methods := []assess.Assessor{sria, cs, cdr, cdh}

	total := 0
	for _, m := range mixes {
		total += m.pct
	}
	rounds := *reqs / total
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for _, m := range mixes {
			for i := 0; i < m.pct; i++ {
				for _, a := range methods {
					a.Observe(m.p)
				}
			}
		}
	}

	params := cost.Params{LambdaD: 100, LambdaR: 100, Ch: 0.001, Cc: 1, Window: 60}
	opt := tuner.Options{RequireFullBudget: true}
	for _, a := range methods {
		stats := a.Results(*theta)
		fmt.Printf("%s reports %d patterns:\n", a.Name(), len(stats))
		for _, s := range stats {
			fmt.Printf("  %-12s %6.2f%%\n", s.P.StringN(numAttrs), 100*s.Freq)
		}
		cfg, err := tuner.Exhaustive(numAttrs, *budget, params, stats, opt)
		if err != nil {
			cfg = tuner.Greedy(numAttrs, *budget, params, stats, opt)
		}
		fmt.Printf("  -> tuned %v (C_D = %.1f)\n\n", cfg, cost.CD(params, cfg, stats))
	}
}
