// Command amritune runs one-shot index selection from an access-pattern
// workload description: feed it pattern:percent pairs and a bit budget, and
// it prints what each assessment method reports and the index configuration
// the tuner selects from that report — the Table II exercise on arbitrary
// inputs.
//
// With -current it becomes a what-if console for the v2 controller: the
// proposal is priced against the configuration you are on — migration cost
// from the state size and drain rate, amortization horizon, hysteresis —
// and the printed ledger entry shows exactly why the controller would (or
// would not) migrate.
//
// Usage:
//
//	amritune -budget 4 "<A,*,*>:4" "<*,B,*>:10" "<*,*,C>:10" \
//	         "<A,B,*>:4" "<A,*,C>:16" "<*,B,C>:10" "<A,B,C>:46"
//	amritune -budget 4 -current 4,0,0 -state-size 6000 -horizon 240 \
//	         "<*,B,C>:60" "<A,B,C>:40"
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
	"amri/internal/tuner"
)

func main() {
	var (
		budget    = flag.Int("budget", 12, "total IC bits to allocate")
		theta     = flag.Float64("theta", 0.05, "assessment threshold")
		epsilon   = flag.Float64("epsilon", 0.001, "assessment error rate")
		reqs      = flag.Int("requests", 10000, "synthetic requests to replay")
		current   = flag.String("current", "", "what-if: current configuration as comma-separated bits (e.g. 2,1,1); empty = one-shot selection")
		stateSize = flag.Int("state-size", 0, "what-if: stored tuples the migration would relocate")
		horizon   = flag.Float64("horizon", 0, "what-if: amortization horizon in cost-model time units (0 = don't price migrations)")
		cooldown  = flag.Int("cooldown", 0, "what-if: min tuning passes between migrations")
		drainRate = flag.Float64("drain-rate", 0, "what-if: incremental drain rate in tuples per time unit (0 = stop-the-world)")
		minGain   = flag.Float64("mingain", 0, "what-if: fractional C_D improvement required to migrate")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, `amritune: need pattern:percent arguments, e.g. "<A,B,*>:4"`)
		os.Exit(2)
	}

	type mix struct {
		p   query.Pattern
		pct int
	}
	var mixes []mix
	numAttrs := 0
	for _, arg := range flag.Args() {
		i := strings.LastIndex(arg, ":")
		if i < 0 {
			fmt.Fprintf(os.Stderr, "amritune: %q is not pattern:percent\n", arg)
			os.Exit(2)
		}
		p, err := query.ParsePattern(arg[:i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "amritune:", err)
			os.Exit(2)
		}
		pct, err := strconv.Atoi(arg[i+1:])
		if err != nil || pct <= 0 {
			fmt.Fprintf(os.Stderr, "amritune: bad percent in %q\n", arg)
			os.Exit(2)
		}
		n := strings.Count(arg[:i], ",") + 1
		if n > numAttrs {
			numAttrs = n
		}
		mixes = append(mixes, mix{p: p, pct: pct})
	}

	var curCfg bitindex.Config
	whatIf := *current != ""
	if whatIf {
		cfg, err := parseConfig(*current, numAttrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amritune:", err)
			os.Exit(2)
		}
		curCfg = cfg
	}

	cs, err := assess.NewCSRIA(*epsilon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amritune:", err)
		os.Exit(1)
	}
	cdr, _ := assess.NewCDIA(numAttrs, *epsilon, hh.RollupRandom, 1)
	cdh, _ := assess.NewCDIA(numAttrs, *epsilon, hh.RollupHighestCount, 1)
	sria := assess.NewSRIA()
	methods := []assess.Assessor{sria, cs, cdr, cdh}

	total := 0
	for _, m := range mixes {
		total += m.pct
	}
	rounds := *reqs / total
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for _, m := range mixes {
			for i := 0; i < m.pct; i++ {
				for _, a := range methods {
					a.Observe(m.p)
				}
			}
		}
	}

	params := cost.Params{LambdaD: 100, LambdaR: 100, Ch: 0.001, Cc: 1, Window: 60}
	opt := tuner.Options{RequireFullBudget: !whatIf}
	for _, a := range methods {
		stats := a.Results(*theta)
		fmt.Printf("%s reports %d patterns:\n", a.Name(), len(stats))
		for _, s := range stats {
			fmt.Printf("  %-12s %6.2f%%\n", s.P.StringN(numAttrs), 100*s.Freq)
		}
		if whatIf {
			ctl := &tuner.Controller{
				Params: params, Budget: *budget, MinGain: *minGain,
				Opt: opt, UseExhaustive: true,
				Horizon: *horizon, Cooldown: *cooldown, DrainRate: *drainRate,
			}
			pr, err := ctl.Propose(curCfg, stats, *stateSize)
			if err != nil {
				fmt.Fprintln(os.Stderr, "amritune:", err)
				os.Exit(1)
			}
			printLedgerEntry(pr)
			continue
		}
		cfg, cd, err := tuner.Exhaustive(numAttrs, *budget, params, stats, opt)
		if errors.Is(err, tuner.ErrSpaceTooLarge) {
			cfg, cd = tuner.Greedy(numAttrs, *budget, params, stats, opt)
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "amritune:", err)
			os.Exit(1)
		}
		fmt.Printf("  -> tuned %v (C_D = %.1f)\n\n", cfg, cd)
	}
}

// printLedgerEntry renders one controller proposal the way the what-if
// ledger records it.
func printLedgerEntry(pr tuner.Proposal) {
	fmt.Printf("  -> what-if %v -> %v: C_D %.1f -> %.1f", pr.From, pr.To, pr.CurCD, pr.NextCD)
	if pr.Gain > 0 {
		fmt.Printf(" (gain %.1f/unit)", pr.Gain)
	}
	fmt.Println()
	if pr.MigCost > 0 {
		fmt.Printf("     migration cost %.1f over horizon %.0f (break-even %.1f)\n",
			pr.MigCost, pr.Horizon, pr.Gain*pr.Horizon)
	}
	fmt.Printf("     decision: %s\n\n", pr.Decision)
}

// parseConfig reads a comma-separated bit vector, padding to numAttrs.
func parseConfig(s string, numAttrs int) (bitindex.Config, error) {
	parts := strings.Split(s, ",")
	if len(parts) > numAttrs {
		numAttrs = len(parts)
	}
	bits := make([]uint8, numAttrs)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v > bitindex.MaxTotalBits {
			return bitindex.Config{}, fmt.Errorf("bad -current entry %q", p)
		}
		bits[i] = uint8(v)
	}
	cfg := bitindex.Config{Bits: bits}
	if cfg.TotalBits() > bitindex.MaxTotalBits {
		return bitindex.Config{}, fmt.Errorf("-current spends %d bits, max %d", cfg.TotalBits(), bitindex.MaxTotalBits)
	}
	return cfg, nil
}
