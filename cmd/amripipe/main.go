// Command amripipe runs the concurrent goroutine-per-operator engine on the
// synthetic workload and reports real wall-clock throughput — the live twin
// of the simulation that cmd/amribench measures in virtual time. With
// -chaos-seed it doubles as a fault-injection harness: operators panic and
// restart from checkpoints, deliveries stall or saturate, and migrations
// abort mid-step, all on a reproducible seeded schedule.
//
// With -replay it loads a fault-plan repro emitted by cmd/amrichaos and
// replays it deterministically, re-checking every durability invariant.
//
// Usage:
//
//	amripipe [-ticks 300] [-seed 1] [-method cdia-h] [-rate 50] [-procs N]
//	         [-mailbox-cap 0] [-shed-policy block] [-chaos-seed 0]
//	amripipe -replay repro.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"amri/internal/chaos"
	"amri/internal/core"
	"amri/internal/fault"
	"amri/internal/pipeline"
	"amri/internal/stream"
)

func main() {
	var (
		ticks     = flag.Int64("ticks", 300, "workload ticks to process")
		seed      = flag.Uint64("seed", 1, "workload seed")
		rate      = flag.Int("rate", 0, "override tuples per stream per tick")
		method    = flag.String("method", "cdia-h", "assessment: sria, csria, dia, cdia-r, cdia-h")
		procs     = flag.Int("procs", 0, "GOMAXPROCS override (0 = runtime default)")
		mboxCap   = flag.Int("mailbox-cap", 0, "operator mailbox capacity (0 = unbounded)")
		shedPol   = flag.String("shed-policy", "block", "overload policy: block, drop-newest, drop-oldest")
		chaosSeed = flag.Uint64("chaos-seed", 0, "fault-injection seed (0 = no faults)")
		replay    = flag.String("replay", "", "replay a chaos repro file instead of running the workload")
		legacyTun = flag.Bool("legacy-tuner", false, "use the v1 migrate-on-any-gain tuner (A/B baseline; v2 migration-cost-aware controller is the default)")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	if *replay != "" {
		os.Exit(replayRepro(*replay))
	}

	var m core.Method
	switch *method {
	case "sria":
		m = core.MethodSRIA
	case "csria":
		m = core.MethodCSRIA
	case "dia":
		m = core.MethodDIA
	case "cdia-r":
		m = core.MethodCDIARandom
	case "cdia-h":
		m = core.MethodCDIAHighest
	default:
		fmt.Fprintf(os.Stderr, "amripipe: unknown method %q\n", *method)
		os.Exit(2)
	}

	policy, err := pipeline.ParsePolicy(*shedPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amripipe:", err)
		os.Exit(2)
	}

	plan := fault.None
	if *chaosSeed != 0 {
		plan = fault.Default(*chaosSeed)
	}

	prof := stream.DriftProfile()
	if *rate > 0 {
		prof.LambdaD = *rate
	}

	r, err := pipeline.Run(pipeline.Config{
		Profile:    prof,
		Seed:       *seed,
		Ticks:      *ticks,
		Method:     m,
		MailboxCap:  *mboxCap,
		ShedPolicy:  policy,
		Fault:       plan,
		LegacyTuner: *legacyTun,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "amripipe:", err)
		os.Exit(1)
	}

	fmt.Printf("GOMAXPROCS:      %d\n", runtime.GOMAXPROCS(0))
	fmt.Printf("ticks:           %d (%d tuples)\n", *ticks, r.TuplesIngested)
	fmt.Printf("join results:    %d\n", r.Results)
	fmt.Printf("search requests: %d\n", r.Probes)
	fmt.Printf("index retunes:   %d\n", r.Retunes)
	if s := r.Tuner; s.Passes > 0 {
		fmt.Printf("tuner:           %d passes, %d migrations, holds: %d cooldown, %d flip-flop, %d uneconomical\n",
			s.Passes, s.Migrations, s.CooldownHolds, s.FlipFlopHolds, s.Uneconomical)
		if s.PredictedMigCost > 0 {
			fmt.Printf("what-if ledger:  predicted migration cost %.0f, realized %.0f (%d drains, %d aborted)\n",
				s.PredictedMigCost, s.RealizedMigCost, s.Completed, s.Aborted)
		}
	}
	fmt.Printf("wall time:       %v\n", r.Wall)
	fmt.Printf("throughput:      %.0f tuples/s, %.0f probes/s (wall clock)\n",
		float64(r.TuplesIngested)/r.Wall.Seconds(), float64(r.Probes)/r.Wall.Seconds())
	if *mboxCap > 0 || plan.Enabled() {
		fmt.Printf("sheds:           %d (%d ingest, %d probe; per-op %v)\n",
			r.Sheds, r.IngestShed, r.ProbeShed, r.ShedsPerOp)
	}
	if plan.Enabled() {
		fmt.Printf("chaos:           %d restarts (%d permanent failures), %d lost in flight\n",
			r.Restarts, r.PermanentFailures, r.IngestLost+r.ProbeLost)
		fmt.Printf("checkpoints:     %d tuples replayed, %d lost past checkpoint\n",
			r.Replayed, r.StateLost)
		fmt.Printf("faults:          %d migration aborts, %d delivery stalls, %d pressure events\n",
			r.MigrationAborts, r.InjectedDelays, r.PressureEvents)
	}
}

// replayRepro re-runs a scenario emitted by cmd/amrichaos and reports
// whether the recorded failure still reproduces. Exit status: 0 if every
// invariant now holds, 1 if the repro still fails.
func replayRepro(path string) int {
	sc, err := chaos.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amripipe:", err)
		return 2
	}
	fmt.Printf("replaying %s: seed %d, %d ticks, %d workers, %d shards, crashes %v",
		path, sc.Seed, sc.Ticks, sc.Workers, sc.Shards, sc.Plan.CrashTicks)
	if sc.FlakeEvery > 1 {
		fmt.Printf(", flaky store (drop every %d)", sc.FlakeEvery)
	}
	fmt.Println()
	rep := chaos.Explore(sc)
	fmt.Printf("results:    %d (reference %d), %d recoveries, %d WAL appends dropped\n",
		rep.Results, rep.RefResults, rep.Recoveries, rep.Dropped)
	if !rep.Failed() {
		fmt.Println("verdict:    PASS — every durability invariant holds")
		return 0
	}
	fmt.Printf("verdict:    FAIL — %d invariant violation(s)\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  - %s\n", v)
	}
	return 1
}
