// Command amribench regenerates the paper's tables and figures.
//
// Usage:
//
//	amribench -list
//	amribench -exp fig6 [-quick] [-seeds 1,2,3]
//	amribench -all [-quick]
//
// Each experiment runs the relevant contenders over the calibrated
// synthetic workload and prints the same rows/series the paper reports,
// plus the headline ratios (who wins, by roughly what factor, who runs out
// of memory when). Full-scale runs take tens of seconds per experiment;
// -quick shrinks the horizon five-fold.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"amri/internal/bench"
	"amri/internal/metrics"
)

// writeSeriesCSV re-runs the named figure experiment through its typed API
// and dumps the sampled series for external plotting.
func writeSeriesCSV(exp string, opts bench.Options, path string) error {
	var runs []*metrics.RunResult
	switch exp {
	case "fig6":
		r, err := bench.Fig6(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	case "fig6hash":
		r, err := bench.Fig6Hash(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	case "fig7":
		r, err := bench.Fig7(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	default:
		return fmt.Errorf("-csv supports fig6, fig6hash and fig7, not %q", exp)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteCSV(f, runs)
}

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "shrink the horizon ~5x")
		seeds = flag.String("seeds", "1", "comma-separated workload seeds to average over")
		csv   = flag.String("csv", "", "also write the figure series (fig6/fig6hash/fig7) as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Quick: *quick}
	for _, s := range strings.Split(*seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amribench: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		opts.Seeds = append(opts.Seeds, v)
	}

	run := func(e bench.Experiment) {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "amribench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *csv != "" {
		if err := writeSeriesCSV(*exp, opts, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
	}

	switch {
	case *all:
		for _, e := range bench.Registry() {
			run(e)
		}
	case *exp != "":
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "amribench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
