// Command amribench regenerates the paper's tables and figures.
//
// Usage:
//
//	amribench -list
//	amribench -exp fig6 [-quick] [-seeds 1,2,3]
//	amribench -all [-quick]
//
// Each experiment runs the relevant contenders over the calibrated
// synthetic workload and prints the same rows/series the paper reports,
// plus the headline ratios (who wins, by roughly what factor, who runs out
// of memory when). Full-scale runs take tens of seconds per experiment;
// -quick shrinks the horizon five-fold.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"amri/internal/bench"
	"amri/internal/metrics"
)

// writeSeriesCSV re-runs the named figure experiment through its typed API
// and dumps the sampled series for external plotting.
func writeSeriesCSV(exp string, opts bench.Options, path string) error {
	var runs []*metrics.RunResult
	switch exp {
	case "fig6":
		r, err := bench.Fig6(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	case "fig6hash":
		r, err := bench.Fig6Hash(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	case "fig7":
		r, err := bench.Fig7(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	default:
		return fmt.Errorf("-csv supports fig6, fig6hash and fig7, not %q", exp)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteCSV(f, runs)
}

// runShardBench executes the sharded-index worker sweep (see
// internal/bench/shard.go) and writes the JSON artifact.
func runShardBench(path, workerList string, shards int, quick, check bool) error {
	opts := bench.ShardBenchOptions{Shards: shards, Quick: quick}
	ws, err := parseWorkers(workerList)
	if err != nil {
		return err
	}
	opts.Workers = ws
	r, err := bench.ShardBench(opts)
	if err != nil {
		return err
	}
	r.Summary(os.Stdout)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if check {
		if err := r.Check(2.0); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		fmt.Println("check passed: digests match; speedup and serialization bounds hold")
	}
	return nil
}

// parseWorkers splits a comma-separated pool-size list.
func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// runPipelineBench executes the measured dispatch sweep (see
// internal/bench/pipeline.go), writes the artifact, and optionally gates
// against a committed baseline.
func runPipelineBench(opts bench.PipelineBenchOptions, out, gate string, check bool) error {
	r, err := bench.PipelineBench(opts)
	if err != nil {
		return err
	}
	r.Summary(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if gate != "" {
		f, err := os.Open(gate)
		if err != nil {
			return fmt.Errorf("gate baseline: %w", err)
		}
		baseline, err := bench.ReadPipelineBench(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := r.Gate(baseline, 2.0, 0.10); err != nil {
			return fmt.Errorf("gate failed: %w", err)
		}
		fmt.Println("gate passed: digests match, speedup >= 2x, no >10% regression vs baseline")
		return nil
	}
	if check {
		if err := r.Check(2.0); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		fmt.Println("check passed: digests match and measured speedup holds")
	}
	return nil
}

// runTunerBench executes the retune-under-load suite (see
// internal/bench/tuner.go), writes the artifact, and optionally gates
// against a committed baseline. The acceptance ratio allows v2 p99 tick
// latency up to 1.25x the no-tuning run (best-rep p99s still carry
// single-box noise, and the v2 policy does pay for the migrations it
// keeps); the gate allows up to 10% regression against the committed v2
// point.
func runTunerBench(opts bench.TunerBenchOptions, out, gate string, check bool) error {
	r, err := bench.TunerBench(opts)
	if err != nil {
		return err
	}
	r.Summary(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if gate != "" {
		f, err := os.Open(gate)
		if err != nil {
			return fmt.Errorf("gate baseline: %w", err)
		}
		baseline, err := bench.ReadTunerBench(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := r.Gate(baseline, 1.25, 0.10); err != nil {
			return fmt.Errorf("gate failed: %w", err)
		}
		fmt.Println("gate passed: no thrash, digests match, no >10% p99 regression vs baseline")
		return nil
	}
	if check {
		if err := r.Check(1.25); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		fmt.Println("check passed: no thrash, digests match, p99 within bar")
	}
	return nil
}

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "shrink the horizon ~5x")
		seeds = flag.String("seeds", "1", "comma-separated workload seeds to average over")
		csv   = flag.String("csv", "", "also write the figure series (fig6/fig6hash/fig7) as CSV to this file")

		jsonOut = flag.Bool("json", false, "run the modeled shard bench and write BENCH_shard.json-style output")
		out     = flag.String("out", "", "output path (-json default BENCH_shard.json, -measure default BENCH_pipeline.json)")
		workers = flag.String("workers", "", "comma-separated probe pool sizes (-json default 1,2,4,8; -measure default 1,2,8)")
		shards  = flag.Int("shards", 8, "index shard count (1 = flat serialized index)")
		check   = flag.Bool("check", false, "with -json/-measure: fail unless digests match and the speedup bar holds")

		measure = flag.Bool("measure", false, "run the measured dispatch bench and write BENCH_pipeline.json-style output")
		reps    = flag.Int("reps", 5, "with -measure/-tuner: timed repetitions per point (median reported)")
		warmup  = flag.Int("warmup", 1, "with -measure/-tuner: untimed repetitions before the timed ones")
		gate    = flag.String("gate", "", "with -measure/-tuner: committed baseline JSON to gate against (no >10% regression)")

		tunerBench = flag.Bool("tuner", false, "run the retune-under-load bench and write BENCH_tuner.json-style output")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		mtxprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mtxprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer func() {
			if f, err := os.Create(*mtxprofile); err == nil {
				pprof.Lookup("mutex").WriteTo(f, 0)
				f.Close()
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			if f, err := os.Create(*memprofile); err == nil {
				pprof.Lookup("allocs").WriteTo(f, 0)
				f.Close()
			}
		}()
	}

	if *tunerBench {
		opts := bench.TunerBenchOptions{
			Shards: *shards,
			Reps:   *reps, Warmup: *warmup, Quick: *quick,
		}
		path := *out
		if path == "" && *gate == "" {
			// Default output only outside gate mode: a -gate run must
			// never clobber the committed baseline it compares against.
			path = "BENCH_tuner.json"
		}
		if err := runTunerBench(opts, path, *gate, *check); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
		return
	}

	if *measure {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(2)
		}
		opts := bench.PipelineBenchOptions{
			Shards: *shards, Workers: ws,
			Reps: *reps, Warmup: *warmup, Quick: *quick,
		}
		path := *out
		if path == "" && *gate == "" {
			// Default output only outside gate mode: a -gate run must
			// never clobber the committed baseline it compares against.
			path = "BENCH_pipeline.json"
		}
		if err := runPipelineBench(opts, path, *gate, *check); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		path := *out
		if path == "" {
			path = "BENCH_shard.json"
		}
		wlist := *workers
		if wlist == "" {
			wlist = "1,2,4,8"
		}
		if err := runShardBench(path, wlist, *shards, *quick, *check); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Quick: *quick}
	for _, s := range strings.Split(*seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amribench: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		opts.Seeds = append(opts.Seeds, v)
	}

	run := func(e bench.Experiment) {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "amribench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *csv != "" {
		if err := writeSeriesCSV(*exp, opts, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
	}

	switch {
	case *all:
		for _, e := range bench.Registry() {
			run(e)
		}
	case *exp != "":
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "amribench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
