// Command amribench regenerates the paper's tables and figures.
//
// Usage:
//
//	amribench -list
//	amribench -exp fig6 [-quick] [-seeds 1,2,3]
//	amribench -all [-quick]
//
// Each experiment runs the relevant contenders over the calibrated
// synthetic workload and prints the same rows/series the paper reports,
// plus the headline ratios (who wins, by roughly what factor, who runs out
// of memory when). Full-scale runs take tens of seconds per experiment;
// -quick shrinks the horizon five-fold.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"amri/internal/bench"
	"amri/internal/metrics"
)

// writeSeriesCSV re-runs the named figure experiment through its typed API
// and dumps the sampled series for external plotting.
func writeSeriesCSV(exp string, opts bench.Options, path string) error {
	var runs []*metrics.RunResult
	switch exp {
	case "fig6":
		r, err := bench.Fig6(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	case "fig6hash":
		r, err := bench.Fig6Hash(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	case "fig7":
		r, err := bench.Fig7(opts)
		if err != nil {
			return err
		}
		runs = r.Runs()
	default:
		return fmt.Errorf("-csv supports fig6, fig6hash and fig7, not %q", exp)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteCSV(f, runs)
}

// runShardBench executes the sharded-index worker sweep (see
// internal/bench/shard.go) and writes the JSON artifact.
func runShardBench(path, workerList string, shards int, quick, check bool) error {
	opts := bench.ShardBenchOptions{Shards: shards, Quick: quick}
	for _, s := range strings.Split(workerList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			return fmt.Errorf("bad -workers entry %q", s)
		}
		opts.Workers = append(opts.Workers, w)
	}
	r, err := bench.ShardBench(opts)
	if err != nil {
		return err
	}
	r.Summary(os.Stdout)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if check {
		if err := r.Check(2.0); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		fmt.Println("check passed: digests match; speedup and serialization bounds hold")
	}
	return nil
}

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "shrink the horizon ~5x")
		seeds = flag.String("seeds", "1", "comma-separated workload seeds to average over")
		csv   = flag.String("csv", "", "also write the figure series (fig6/fig6hash/fig7) as CSV to this file")

		jsonOut = flag.Bool("json", false, "run the shard bench and write BENCH_shard.json-style output")
		out     = flag.String("out", "BENCH_shard.json", "output path for -json")
		workers = flag.String("workers", "1,2,4,8", "probe worker pool sizes to sweep for -json")
		shards  = flag.Int("shards", 8, "index shard count for -json (1 = flat serialized index)")
		check   = flag.Bool("check", false, "with -json: fail unless digests match and 8-worker speedup >= 2x")
	)
	flag.Parse()

	if *jsonOut {
		if err := runShardBench(*out, *workers, *shards, *quick, *check); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Quick: *quick}
	for _, s := range strings.Split(*seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amribench: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		opts.Seeds = append(opts.Seeds, v)
	}

	run := func(e bench.Experiment) {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "amribench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *csv != "" {
		if err := writeSeriesCSV(*exp, opts, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "amribench:", err)
			os.Exit(1)
		}
	}

	switch {
	case *all:
		for _, e := range bench.Registry() {
			run(e)
		}
	case *exp != "":
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "amribench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
