// Package amri is the public face of this repository: a Go implementation
// of the Adaptive Multi-Route Index from "Index Tuning for Adaptive
// Multi-Route Data Stream Systems" (Works, Rundensteiner, Agu — IPPS 2010),
// together with the full adaptive multi-route stream system it was
// evaluated in.
//
// Three layers are exposed, smallest first:
//
//   - AdaptiveIndex — the paper's contribution as an embeddable component:
//     a bit-address index over one state's join attributes whose
//     configuration (bits per attribute) is continuously re-selected from
//     compact access-pattern statistics (SRIA / CSRIA / DIA / CDIA) using
//     the Equation 1 cost model. Use this to index your own tuple store.
//
//   - Engine — a complete Eddy-style adaptive multi-route engine on a
//     deterministic simulation substrate: synthetic drifting streams, a
//     selectivity-driven router, STeM states over pluggable index backends
//     (AMRI, multi-hash-index, scan), window expiry, CPU budgets, memory
//     caps. Use this to compare indexing strategies under load.
//
//   - Experiments — regenerators for every table and figure in the paper's
//     evaluation (see cmd/amribench and the root bench_test.go).
//
// The quickest tour is examples/quickstart; the architecture is documented
// in DESIGN.md and the reproduced results in EXPERIMENTS.md.
package amri

import (
	"io"

	"amri/internal/agg"
	"amri/internal/bench"
	"amri/internal/bitindex"
	"amri/internal/core"
	"amri/internal/cost"
	"amri/internal/engine"
	"amri/internal/hashindex"
	"amri/internal/metrics"
	"amri/internal/multiquery"
	"amri/internal/pipeline"
	"amri/internal/query"
	"amri/internal/stream"
	"amri/internal/tuple"
)

// Tuple is one stream element; join attributes are uint64 values.
type Tuple = tuple.Tuple

// Value is a single join attribute value.
type Value = tuple.Value

// NewTuple builds a tuple for the given stream with the attribute values.
func NewTuple(streamID int, seq uint64, ts int64, attrs []Value) *Tuple {
	return tuple.New(streamID, seq, ts, attrs)
}

// Pattern is a search access pattern over a state's join attribute set:
// bit i set means attribute i is constrained, clear means wildcard.
type Pattern = query.Pattern

// PatternOf builds a pattern from attribute positions.
func PatternOf(attrs ...int) Pattern { return query.PatternOf(attrs...) }

// FullPattern constrains all n attributes.
func FullPattern(n int) Pattern { return query.FullPattern(n) }

// ParsePattern parses the paper's vector notation, e.g. "<A,*,C>".
func ParsePattern(s string) (Pattern, error) { return query.ParsePattern(s) }

// IndexConfig is an index configuration (the index key map IC): bits per
// join attribute.
type IndexConfig = bitindex.Config

// NewIndexConfig builds a configuration from per-attribute bit counts.
func NewIndexConfig(bits ...uint8) IndexConfig { return bitindex.NewConfig(bits...) }

// AdaptiveIndex is the paper's contribution: a self-tuning bit-address
// index for one state. See core.Options for every knob.
type AdaptiveIndex = core.AdaptiveIndex

// IndexOptions configure an AdaptiveIndex.
type IndexOptions = core.Options

// Assessment method selectors for IndexOptions.Method.
const (
	CDIAHighest = core.MethodCDIAHighest
	CDIARandom  = core.MethodCDIARandom
	SRIA        = core.MethodSRIA
	CSRIA       = core.MethodCSRIA
	DIA         = core.MethodDIA
)

// NewAdaptiveIndex builds an AdaptiveIndex.
func NewAdaptiveIndex(opts IndexOptions) (*AdaptiveIndex, error) { return core.New(opts) }

// APStat is one assessed access pattern with its frequency.
type APStat = cost.APStat

// MultiHashIndex is the state-of-the-art baseline the paper compares
// against (Raman et al. access modules): several fixed hash indices over
// one tuple store. Exposed so the Section I-A example can be reproduced
// directly; AMRI exists because this design pays one key entry per index
// per stored tuple.
type MultiHashIndex = hashindex.Store

// NewMultiHashIndex builds a multi-hash-index state over numAttrs join
// attributes (attrMap nil = identity) with one hash index per pattern.
func NewMultiHashIndex(numAttrs int, attrMap []int, patterns []Pattern) (*MultiHashIndex, error) {
	if attrMap == nil {
		attrMap = make([]int, numAttrs)
		for i := range attrMap {
			attrMap[i] = i
		}
	}
	return hashindex.New(numAttrs, attrMap, nil, patterns)
}

// IndexStats reports the work one index operation performed (hashes,
// buckets probed, tuples scanned, key entries maintained).
type IndexStats = bitindex.Stats

// CostParams are the Table I workload rates and operation costs.
type CostParams = cost.Params

// Query is a compiled SPJ stream query.
type Query = query.Query

// FourWayQuery is the paper's experimental query: 4 streams, every pair
// joined on its own attribute, windowTicks-long sliding windows.
func FourWayQuery(windowTicks int64) *Query { return query.FourWay(windowTicks) }

// PackageTrackingQuery is the sensor schema of the paper's Section I-A
// example (priority code, package id, location id).
func PackageTrackingQuery(windowTicks int64) *Query { return query.PackageTracking(windowTicks) }

// ChainQuery builds an n-way chain join (each stream joined to the next).
func ChainQuery(n int, windowTicks int64) *Query { return query.Chain(n, windowTicks) }

// StarQuery builds an n-way star join around a hub stream; the hub state
// carries n-1 join attributes and 2^(n-1)-1 possible access patterns.
func StarQuery(n int, windowTicks int64) *Query { return query.Star(n, windowTicks) }

// NewChainQuery is ChainQuery's error-returning form, for stream counts
// that arrive at runtime (flags, request payloads) rather than as
// compile-time constants.
func NewChainQuery(n int, windowTicks int64) (*Query, error) { return query.NewChain(n, windowTicks) }

// NewStarQuery is StarQuery's error-returning form.
func NewStarQuery(n int, windowTicks int64) (*Query, error) { return query.NewStar(n, windowTicks) }

// CompileQuery builds a query from streams and equality join predicates.
func CompileQuery(streams []query.StreamSpec, preds []query.Predicate, windowTicks int64) (*Query, error) {
	return query.Compile(streams, preds, windowTicks)
}

// StreamSpec and Predicate describe a query's FROM and WHERE clauses.
type (
	StreamSpec = query.StreamSpec
	Predicate  = query.Predicate
)

// WorkloadProfile describes a synthetic workload (rates, drift, skew).
type WorkloadProfile = stream.Profile

// DriftingWorkload is the paper's Figure 6/7 synthetic workload.
func DriftingWorkload() WorkloadProfile { return stream.DriftProfile() }

// StableWorkload disables selectivity drift.
func StableWorkload() WorkloadProfile { return stream.StableProfile() }

// SkewedWorkload adds hot keys (the real-data stand-in).
func SkewedWorkload() WorkloadProfile { return stream.SkewedProfile() }

// RunConfig is the shared workload/machine configuration of an engine run.
type RunConfig = engine.RunConfig

// DefaultRunConfig returns the calibrated Figure 6/7 configuration.
func DefaultRunConfig() RunConfig { return engine.DefaultRunConfig() }

// System describes one contender (index backend + assessment + adaptivity).
type System = engine.System

// Contender constructors.
var (
	// AMRISystem is the paper's system with the given assessment method.
	AMRISystem = engine.AMRI
	// HashSystem is the multi-hash-index baseline with k access modules.
	HashSystem = engine.HashSystem
	// StaticBitmapSystem is the non-adapting bitmap baseline.
	StaticBitmapSystem = engine.StaticBitmap
	// ScanSystem is the no-index floor.
	ScanSystem = engine.ScanSystem
)

// Assessment method selectors for System construction.
const (
	AssessSRIA        = engine.AssessSRIA
	AssessCSRIA       = engine.AssessCSRIA
	AssessDIA         = engine.AssessDIA
	AssessCDIARandom  = engine.AssessCDIARandom
	AssessCDIAHighest = engine.AssessCDIAHighest
)

// Engine executes one contender over one workload.
type Engine = engine.Engine

// NewEngine builds an engine; identical RunConfig + seed across systems
// compares them on exactly the same workload.
func NewEngine(run RunConfig, sys System) (*Engine, error) { return engine.New(run, sys) }

// RunResult is a run's sampled throughput series and summary.
type RunResult = metrics.RunResult

// ResultsTable renders a comparison table of several runs.
func ResultsTable(runs []*RunResult) string { return metrics.Table(runs) }

// ResultsChart renders an ASCII cumulative-throughput chart.
func ResultsChart(runs []*RunResult, width, height int) string {
	return metrics.Chart(runs, width, height)
}

// Aggregation over join results (the SPJ template's Select agg-func list):
// attach an Aggregator via RunConfig.OnResult.
type (
	Aggregator      = agg.Aggregator
	AggSpec         = agg.Spec
	AggRef          = agg.Ref
	AggWindowResult = agg.WindowResult
)

// Aggregate function selectors.
const (
	AggCount = agg.Count
	AggSum   = agg.Sum
	AggAvg   = agg.Avg
	AggMin   = agg.Min
	AggMax   = agg.Max
)

// NewAggregator builds a tumbling-window aggregator over join results.
func NewAggregator(specs []AggSpec, groupBy *AggRef, windowTicks int64) (*Aggregator, error) {
	return agg.New(specs, groupBy, windowTicks)
}

// Filter is a WHERE-clause selection predicate, attached via
// Query.AddFilter and applied at ingest.
type Filter = query.Filter

// Comparison operators for filters.
const (
	OpEq = query.OpEq
	OpNe = query.OpNe
	OpLt = query.OpLt
	OpLe = query.OpLe
	OpGt = query.OpGt
	OpGe = query.OpGe
)

// Composite is a (partial or complete) join result; OnResult consumers
// receive complete ones.
type Composite = tuple.Composite

// NewComposite starts a join result around one tuple, sized for nStreams
// streams; Extend adds components.
func NewComposite(nStreams int, t *Tuple) *Composite {
	return tuple.NewComposite(nStreams, t)
}

// Trace is a replayable recorded workload (the cmd/amrigen CSV format).
type Trace = stream.Trace

// ParseTrace loads a workload CSV; replayed tuples carry payloadBytes of
// simulated payload. Assign the result to RunConfig.Source to drive the
// engine from a recording instead of the synthetic generator.
func ParseTrace(r io.Reader, payloadBytes int) (*Trace, error) {
	return stream.ParseTrace(r, payloadBytes)
}

// PipelineConfig configures the concurrent (goroutine-per-operator) engine,
// and PipelineResult is its summary. Unlike the simulation engine, the
// pipeline runs on real goroutines and measures wall-clock time; its result
// set is identical to the simulation engine's on the same workload.
type (
	PipelineConfig = pipeline.Config
	PipelineResult = pipeline.Result
)

// RunPipeline executes the workload on the concurrent engine.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) { return pipeline.Run(cfg) }

// MultiQueryWorkload and friends expose the multiple-SPJ-queries extension:
// shared per-stream states whose single AMRI serves every query's access
// patterns at once.
type (
	MultiQueryWorkload  = multiquery.Workload
	MultiQuerySpec      = multiquery.QuerySpec
	MultiQueryRunConfig = multiquery.RunConfig
	MultiQueryResult    = multiquery.Result
)

// TwoQueryWorkload is the packaged two-query demonstration workload.
func TwoQueryWorkload() MultiQueryWorkload { return multiquery.TwoQueryWorkload() }

// RunMultiQuery executes a multi-query workload over shared AMRI states.
func RunMultiQuery(cfg MultiQueryRunConfig) (*MultiQueryResult, error) { return multiquery.Run(cfg) }

// Experiments returns the registry of paper-artifact regenerators
// (Figure 6, Figure 7, Table II, the cost model, and the ablations).
func Experiments() []bench.Experiment { return bench.Registry() }

// RunExperiment runs one experiment by id, writing its report to w.
func RunExperiment(id string, quick bool, w io.Writer) error {
	exp, ok := bench.Lookup(id)
	if !ok {
		ids := ""
		for _, e := range bench.Registry() {
			ids += " " + e.ID
		}
		return &UnknownExperimentError{ID: id, Known: ids}
	}
	return exp.Run(bench.Options{Quick: quick}, w)
}

// UnknownExperimentError reports a bad experiment id.
type UnknownExperimentError struct {
	ID    string
	Known string
}

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "amri: unknown experiment " + e.ID + "; known:" + e.Known
}
