# The local gate chain mirrors .github/workflows/ci.yml:
#   make ci  =  build → vet → amrivet → race tests
# so a green `make ci` means a green CI run.

GO ?= go
AMRIVET := bin/amrivet

.PHONY: all build vet lint prune-baseline fixtures test race chaos chaos-sweep bench-smoke bench-json bench-contention bench-measure bench-tuner bench-gate profile ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

$(AMRIVET): FORCE
	$(GO) build -o $(AMRIVET) ./cmd/amrivet

# lint runs the repo's own static-analysis suite (see internal/analysis):
# mutexguard, bitbudget, wallclock, detrand, atomicmix, lockorder,
# chanprotocol, hotalloc, errdrop, lockhold, critescape, waitleak,
# falseshare, maporder, barrierflush, walorder, atomicproto. The second
# invocation is the self-check: the analyzers must come up clean over
# their own implementation (auto-baseline is suppress-only, so the
# partial tree does not misread out-of-tree entries as stale).
# (`go build` in the build target warms the export data `go list -export`
# resolves imports from, so the amrivet runs hit the build cache.)
# .amrivet-baseline.json records the accepted findings (captured with
# amrivet -json): allocations the hot path cannot avoid, each justified in
# DESIGN.md §9. Only NEW findings fail the build (exit 1); entries that no
# longer fire are stale debt and fail with exit 3 — run
# `make prune-baseline` to drop them.
lint: vet $(AMRIVET)
	./$(AMRIVET) -baseline .amrivet-baseline.json ./...
	./$(AMRIVET) ./internal/analysis/...

# prune-baseline rewrites .amrivet-baseline.json keeping only entries that
# still fire, clearing a stale-baseline (exit 3) lint failure.
prune-baseline: $(AMRIVET)
	./$(AMRIVET) -baseline .amrivet-baseline.json -prune-baseline ./...

# fixtures runs the analyzer fixture tests: every testdata/src/<name>
# package's `// want` expectations must match the diagnostics exactly, so
# analyzer drift fails the build.
fixtures:
	$(GO) test -count=1 ./internal/analysis/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/... .

# chaos runs the seeded fault-injection sweep under the race detector:
# supervisor restarts, mailbox shedding, migration aborts, goroutine-leak
# checks and the engine's soft-watermark degradation (DESIGN.md §8).
chaos:
	$(GO) test -race -count=1 ./internal/fault
	$(GO) test -race -count=1 \
		-run 'Chaos|Leak|Mailbox|MigrateGate|AbortMigration|Watermark' \
		./internal/pipeline ./internal/bitindex ./internal/core ./internal/engine

# chaos-sweep is the durability gate (DESIGN.md §11): the crash/recover
# exploration harness sweeps seeds × fault plans × crash points under the
# race detector, checking the invariants after every recovery; then the
# lying-disk self-test proves the harness still catches a real failure,
# minimizes it to chaos-repro.json, and the repro replays to a failure
# through `amripipe -replay`.
chaos-sweep:
	$(GO) run -race ./cmd/amrichaos -seeds 3 -ticks 24
	$(GO) run -race ./cmd/amrichaos -seeds 1 -ticks 20 -flake-every 2 \
		-expect-fail -out chaos-repro.json
	$(GO) run -race ./cmd/amripipe -replay chaos-repro.json; test $$? -eq 1

# bench-smoke proves the hot-path benchmarks still run (1 iteration each);
# it is a compile-and-execute gate, not a performance measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/bitindex ./internal/hh ./internal/stem ./internal/assess ./internal/bench

# bench-json regenerates the committed sharded-index worker-sweep artifact
# (full horizon; -check enforces the digest-equality and >=2x-at-8-workers
# acceptance bars plus the "flat never beats sharded" dominance).
bench-json:
	$(GO) run ./cmd/amribench -json -check -out BENCH_shard.json

# bench-contention regenerates the committed operator-lock contention A/B
# (held-lock probe baseline vs the lock-free epoch probe path at 8 workers
# x 8 shards, mutex wait cycles via runtime.SetMutexProfileFraction(1));
# the embedded Check enforces digest equality and a >=50% wait-cycle
# reduction before the artifact is written.
bench-contention:
	$(GO) test -run TestWriteContentionArtifact -count=1 ./internal/bench -contention-out $(CURDIR)/BENCH_contention.json

# bench-measure regenerates the committed measured dispatch artifact: the
# deque work-stealing dispatch timed against the legacy shared-channel
# dispatch on the drift workload (median of 5 in-process reps per point,
# digests checked against the serial reference). The embedded Check
# enforces digest equality and the >=2x dispatch-layer speedup bar.
bench-measure:
	$(GO) run ./cmd/amribench -measure -check -out BENCH_pipeline.json

# bench-tuner regenerates the committed retune-under-load artifact: the
# thrash A/B (legacy vs v2 controller on an oscillating drift pattern) plus
# the measured notune/legacy/v2 sweep on the drift workload (median of 5
# in-process reps per point, digests checked against the no-tuning
# reference). The embedded Check enforces zero v2 flip-flops vs >=2 legacy,
# a v2 retune count at most 2/3 of legacy's, and v2 p99 tick latency within
# 1.25x of the no-tuning run.
bench-tuner:
	$(GO) run ./cmd/amribench -tuner -check -out BENCH_tuner.json

# bench-gate re-measures and gates against the committed artifacts: fails if
# the measured dispatch speedup drops below 2x or the headline point
# regressed >10% vs BENCH_pipeline.json (speedup-ratio compared when host
# core counts differ — see PipelineBenchResult.Gate), then re-runs the
# tuner suite and fails on thrash, digest drift, or a >10% p99 regression
# vs BENCH_tuner.json (same core-count awareness — TunerBenchResult.Gate).
bench-gate:
	$(GO) run ./cmd/amribench -measure -quick -gate BENCH_pipeline.json
	$(GO) run ./cmd/amribench -tuner -quick -gate BENCH_tuner.json

# profile runs the measured bench once with CPU, mutex and allocation
# profiles enabled; inspect with `go tool pprof cpu.prof` etc.
profile:
	$(GO) run ./cmd/amribench -measure -reps 1 -warmup 0 -workers 8 -out /dev/null \
		-cpuprofile cpu.prof -mutexprofile mutex.prof -memprofile mem.prof
	@echo "wrote cpu.prof mutex.prof mem.prof"

ci: build lint test race

clean:
	rm -rf bin

FORCE:
