package amri_test

import (
	"bytes"
	"strings"
	"testing"

	"amri"
)

func TestPatternHelpers(t *testing.T) {
	p := amri.PatternOf(0, 2)
	if !p.Has(0) || p.Has(1) || !p.Has(2) {
		t.Fatalf("PatternOf wrong: %v", p)
	}
	if amri.FullPattern(3) != amri.PatternOf(0, 1, 2) {
		t.Fatal("FullPattern wrong")
	}
	parsed, err := amri.ParsePattern("<A,*,C>")
	if err != nil || parsed != p {
		t.Fatalf("ParsePattern = %v, %v", parsed, err)
	}
}

func TestIndexConfigHelper(t *testing.T) {
	cfg := amri.NewIndexConfig(5, 2, 3)
	if cfg.TotalBits() != 10 {
		t.Fatalf("TotalBits = %d", cfg.TotalBits())
	}
}

func TestAdaptiveIndexRoundTrip(t *testing.T) {
	ix, err := amri.NewAdaptiveIndex(amri.IndexOptions{NumAttrs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp := amri.NewTuple(0, 1, 0, []amri.Value{7, 9})
	ix.Insert(tp)
	found := false
	ix.Search(amri.PatternOf(0), []amri.Value{7, 0}, func(x *amri.Tuple) bool {
		found = found || x == tp
		return true
	})
	if !found {
		t.Fatal("facade index lost a tuple")
	}
}

func TestMultiHashIndexFacade(t *testing.T) {
	h, err := amri.NewMultiHashIndex(3, nil, []amri.Pattern{amri.PatternOf(0)})
	if err != nil {
		t.Fatal(err)
	}
	h.Insert(amri.NewTuple(0, 1, 0, []amri.Value{1, 2, 3}))
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.BestIndex(amri.PatternOf(2)) != 0 {
		t.Fatal("location-only request should have no suitable index")
	}
}

func TestQueryBuilders(t *testing.T) {
	q := amri.FourWayQuery(60)
	if q.NumStreams() != 4 {
		t.Fatalf("FourWayQuery streams = %d", q.NumStreams())
	}
	pt := amri.PackageTrackingQuery(60)
	if pt.States[0].NumAttrs() != 3 {
		t.Fatal("PackageTrackingQuery shape")
	}
	if _, err := amri.CompileQuery(nil, nil, 10); err == nil {
		t.Fatal("CompileQuery must validate")
	}
}

func TestWorkloadBuilders(t *testing.T) {
	if amri.DriftingWorkload().EpochTicks == 0 {
		t.Fatal("drifting workload must drift")
	}
	if amri.StableWorkload().EpochTicks != 0 {
		t.Fatal("stable workload must not drift")
	}
	if amri.SkewedWorkload().HotProb == 0 {
		t.Fatal("skewed workload must skew")
	}
}

func TestEngineFacadeSmoke(t *testing.T) {
	run := amri.DefaultRunConfig()
	run.Profile.LambdaD = 10
	run.Profile.Domains = []uint64{8, 12, 18, 27, 40, 60}
	run.MaxTicks = 100
	run.WarmupTicks = 25
	run.MemCap = 0
	eng, err := amri.NewEngine(run, amri.AMRISystem(amri.AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Run()
	if r.TotalResults == 0 {
		t.Fatal("engine produced nothing")
	}
	tbl := amri.ResultsTable([]*amri.RunResult{r})
	if !strings.Contains(tbl, "AMRI/CDIA-highest") {
		t.Fatalf("table missing system name:\n%s", tbl)
	}
	if amri.ResultsChart([]*amri.RunResult{r}, 40, 8) == "" {
		t.Fatal("chart empty")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	exps := amri.Experiments()
	if len(exps) < 8 {
		t.Fatalf("only %d experiments exposed", len(exps))
	}
	var buf bytes.Buffer
	if err := amri.RunExperiment("table2", true, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatalf("report = %q", buf.String())
	}
	err := amri.RunExperiment("bogus", true, &buf)
	if err == nil {
		t.Fatal("bogus experiment should error")
	}
	if !strings.Contains(err.Error(), "fig6") {
		t.Fatalf("error should list known ids: %v", err)
	}
}

func TestSystemConstructorsFacade(t *testing.T) {
	if amri.AMRISystem(amri.AssessCDIAHighest).Name != "AMRI/CDIA-highest" {
		t.Fatal("AMRISystem name")
	}
	if amri.HashSystem(3).HashIndexCount != 3 {
		t.Fatal("HashSystem count")
	}
	if amri.StaticBitmapSystem().Adaptive {
		t.Fatal("static bitmap must not adapt")
	}
	if amri.ScanSystem().Name != "scan" {
		t.Fatal("ScanSystem name")
	}
}

func TestFacadeTopologyBuilders(t *testing.T) {
	if amri.ChainQuery(4, 60).NumStreams() != 4 {
		t.Fatal("ChainQuery")
	}
	if amri.StarQuery(5, 60).States[0].NumAttrs() != 4 {
		t.Fatal("StarQuery hub")
	}
}

func TestFacadeTraceParse(t *testing.T) {
	tr, err := amri.ParseTrace(strings.NewReader("tick,stream,seq,attr0\n0,0,0,7\n"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Arity() != 1 {
		t.Fatalf("trace shape: %d/%d", tr.Len(), tr.Arity())
	}
}

func TestFacadePipelineSmoke(t *testing.T) {
	prof := amri.DriftingWorkload()
	prof.LambdaD = 5
	prof.Domains = []uint64{6, 9, 14, 20, 30, 45}
	r, err := amri.RunPipeline(amri.PipelineConfig{Profile: prof, Seed: 1, Ticks: 40})
	if err != nil {
		t.Fatal(err)
	}
	if r.TuplesIngested == 0 {
		t.Fatal("pipeline ingested nothing")
	}
}

func TestFacadeMultiQuerySmoke(t *testing.T) {
	prof := amri.DriftingWorkload()
	prof.LambdaD = 5
	prof.Domains = []uint64{8, 12, 18, 27, 40, 60, 90, 130}
	r, err := amri.RunMultiQuery(amri.MultiQueryRunConfig{
		Workload: amri.TwoQueryWorkload(),
		Profile:  prof,
		Seed:     2,
		Ticks:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerQueryResults) != 2 {
		t.Fatal("per-query results missing")
	}
}

func TestFacadeFilters(t *testing.T) {
	q := amri.FourWayQuery(60)
	if err := q.AddFilter(amri.Filter{Stream: 0, Attr: 0, Op: amri.OpGe, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if !q.Accepts(amri.NewTuple(0, 0, 0, []amri.Value{1, 2, 3})) {
		t.Fatal("tautological filter rejected a tuple")
	}
}
