// bench_test.go holds one testing.B entry per paper table/figure plus the
// ablations, as required by DESIGN.md's experiment index. Benchmarks run in
// Quick mode (horizon ÷5) so `go test -bench=.` finishes in minutes; the
// full-scale regenerators live behind cmd/amribench. Headline ratios are
// emitted via b.ReportMetric so benchmark output doubles as a results
// summary.
package amri_test

import (
	"io"
	"testing"

	"amri/internal/bench"
	"amri/internal/bitindex"
	"amri/internal/core"
	"amri/internal/engine"
	"amri/internal/pipeline"
	"amri/internal/stream"
)

func quickOpts() bench.Options {
	return bench.Options{Quick: true}
}

// BenchmarkFig6AssessmentMethods regenerates the assessment-method half of
// Figure 6: SRIA, CSRIA, DIA, CDIA-random and CDIA-highest all driving the
// AMRI bit index over the drifting workload.
func BenchmarkFig6AssessmentMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CDIAHighestOverSRIA, "pct-CDIAh-over-SRIA")
		b.ReportMetric(r.CDIAHighestOverCSRIA, "pct-CDIAh-over-CSRIA")
		if r.Results["AMRI/DIA"] != r.Results["AMRI/SRIA"] {
			b.Fatal("DIA must equal SRIA (shared code base)")
		}
	}
}

// BenchmarkFig6HashIndex regenerates the hash-baseline half of Figure 6:
// the k=1..7 access-module sweep against AMRI.
func BenchmarkFig6HashIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6Hash(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AMRIGainOverBestHash, "pct-AMRI-over-best-hash")
	}
}

// BenchmarkFig7HeadToHead regenerates Figure 7: AMRI vs the best hash
// configuration vs the non-adapting bitmap.
func BenchmarkFig7HeadToHead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig7(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GainOverHash, "pct-AMRI-over-hash")
		b.ReportMetric(r.GainOverBitmap, "pct-AMRI-over-bitmap")
	}
}

// BenchmarkTable2 regenerates the Table II worked example and pins the two
// published index configurations.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table2(10000)
		if err != nil {
			b.Fatal(err)
		}
		if !r.CDIAConfig.Equal(bitindex.NewConfig(1, 1, 2)) {
			b.Fatalf("CDIA IC = %v, want IC[1,1,2]", r.CDIAConfig)
		}
		if !r.CSRIAConfig.Equal(bitindex.NewConfig(0, 1, 3)) {
			b.Fatalf("CSRIA IC = %v, want IC[0,1,3]", r.CSRIAConfig)
		}
	}
}

// BenchmarkCostModel regenerates the Eq. 1 validation: predicted vs
// measured bucket fan-out and scan sizes.
func BenchmarkCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.CostModel(4096, 200, bitindex.NewConfig(5, 3, 4), 7)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range r.Rows {
			if row.MeasuredBuckets != row.PredictedBuckets {
				b.Fatalf("%v: fan-out %g != %g", row.Pattern, row.MeasuredBuckets, row.PredictedBuckets)
			}
			if row.TupleErrorPercent > worst {
				worst = row.TupleErrorPercent
			}
		}
		b.ReportMetric(worst, "pct-worst-tuple-error")
	}
}

// BenchmarkDirectoryAblation runs ablation A1 (dense vs sparse directory).
func BenchmarkDirectoryAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DirectoryAblation(2048, 100, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerAblation runs ablation A2 (greedy vs exhaustive).
func BenchmarkOptimizerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.OptimizerAblation(200, 13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanRatio, "greedy-over-exhaustive-CD")
	}
}

// BenchmarkExplorationAblation runs ablation A3 (exploration rate sweep).
func BenchmarkExplorationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ExploreAblation(quickOpts(), []float64{0, 0.04, 0.25})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkEngineTick measures raw engine throughput (simulated ticks per
// second of wall clock) for the AMRI system — the substrate's own speed.
func BenchmarkEngineTick(b *testing.B) {
	run := engine.DefaultRunConfig()
	run.MaxTicks = 60
	run.WarmupTicks = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
		if err != nil {
			b.Fatal(err)
		}
		r := e.Run()
		if r.TotalResults == 0 && i == 0 {
			b.Log("note: no results in 60-tick window (warmup-dominated)")
		}
	}
}

// BenchmarkReportRendering exercises the full report path of every
// registered experiment in quick mode, discarding the output — a smoke
// benchmark that keeps every regenerator runnable.
func BenchmarkReportRendering(b *testing.B) {
	light := map[string]bool{"table2": true, "costmodel": true, "abl-opt": true, "abl-dir": true}
	for i := 0; i < b.N; i++ {
		for _, e := range bench.Registry() {
			if !light[e.ID] {
				continue // heavy engine experiments have dedicated benchmarks above
			}
			if err := e.Run(quickOpts(), io.Discard); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// BenchmarkPipelineWallClock measures the concurrent engine's real
// throughput (tuples ingested per wall-clock second) on a fixed workload —
// the live-system counterpart of the simulated experiments.
func BenchmarkPipelineWallClock(b *testing.B) {
	prof := stream.DriftProfile()
	prof.LambdaD = 20
	for i := 0; i < b.N; i++ {
		r, err := pipeline.Run(pipeline.Config{
			Profile: prof,
			Seed:    uint64(i + 1),
			Ticks:   60,
			Method:  core.MethodCDIAHighest,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TuplesIngested)/r.Wall.Seconds(), "tuples/s")
	}
}

// BenchmarkMultiQueryShared measures the shared-states extension workload.
func BenchmarkMultiQueryShared(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.MultiQuery(100, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MemSavingPercent, "pct-mem-saved")
	}
}

// BenchmarkMigrationAblation runs ablation A4 in quick mode.
func BenchmarkMigrationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.MigrationAblation(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("mode sweep incomplete")
		}
	}
}
