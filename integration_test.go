package amri_test

import (
	"fmt"
	"testing"

	"amri"
)

// TestIntegrationMatrix sweeps every contender over every packaged topology
// at a small scale through the public facade only — the safety net that the
// whole public surface composes.
func TestIntegrationMatrix(t *testing.T) {
	topologies := []struct {
		name string
		q    *amri.Query
	}{
		{"clique-4", amri.FourWayQuery(40)},
		{"chain-4", amri.ChainQuery(4, 40)},
		{"star-4", amri.StarQuery(4, 40)},
	}
	systems := []amri.System{
		amri.AMRISystem(amri.AssessCDIAHighest),
		amri.AMRISystem(amri.AssessCDIARandom),
		amri.AMRISystem(amri.AssessSRIA),
		amri.AMRISystem(amri.AssessCSRIA),
		amri.AMRISystem(amri.AssessDIA),
		amri.HashSystem(1),
		amri.HashSystem(3),
		amri.StaticBitmapSystem(),
		amri.ScanSystem(),
	}
	for _, topo := range topologies {
		for _, sys := range systems {
			t.Run(fmt.Sprintf("%s/%s", topo.name, sys.Name), func(t *testing.T) {
				run := amri.DefaultRunConfig()
				run.Query = topo.q
				run.Profile.LambdaD = 8
				run.Profile.Domains = []uint64{6, 9, 14, 20, 30, 45}
				run.Profile.EpochTicks = 30
				run.MaxTicks = 90
				run.WarmupTicks = 20
				run.AssessInterval = 15
				run.MemCap = 0
				eng, err := amri.NewEngine(run, sys)
				if err != nil {
					t.Fatal(err)
				}
				r := eng.Run()
				if r.TotalResults == 0 {
					t.Fatalf("%s on %s produced nothing", sys.Name, topo.name)
				}
				if r.Probes == 0 {
					t.Fatal("no probes executed")
				}
				if r.Latency.Count != r.TotalResults {
					t.Fatalf("latency accounting mismatch: %d vs %d",
						r.Latency.Count, r.TotalResults)
				}
			})
		}
	}
}

// TestIntegrationResultParityAcrossIndexes: with unlimited CPU, every index
// backend finds exactly the same result set on the same workload — indexing
// changes cost, never answers.
func TestIntegrationResultParityAcrossIndexes(t *testing.T) {
	for _, topo := range []struct {
		name string
		q    *amri.Query
	}{
		{"clique-4", amri.FourWayQuery(30)},
		{"star-4", amri.StarQuery(4, 30)},
	} {
		run := amri.DefaultRunConfig()
		run.Query = topo.q
		run.Profile.LambdaD = 6
		run.Profile.Domains = []uint64{5, 8, 12, 18, 26, 38}
		run.MaxTicks = 60
		run.WarmupTicks = 15
		run.CPUBudget = 1 << 30
		run.MemCap = 0
		run.Explore = 0.1
		run.ExploreBurst = 0

		var want uint64
		for i, sys := range []amri.System{
			amri.AMRISystem(amri.AssessCDIAHighest),
			amri.HashSystem(2),
			amri.ScanSystem(),
			amri.StaticBitmapSystem(),
		} {
			eng, err := amri.NewEngine(run, sys)
			if err != nil {
				t.Fatal(err)
			}
			got := eng.Run().TotalResults
			if i == 0 {
				want = got
				if want == 0 {
					t.Fatalf("%s: no results at all", topo.name)
				}
				continue
			}
			if got != want {
				t.Fatalf("%s: %s found %d results, others found %d",
					topo.name, sys.Name, got, want)
			}
		}
	}
}

// TestIntegrationAggregation attaches the aggregation layer to an engine
// run through the public facade and checks its windows partition the
// result stream exactly.
func TestIntegrationAggregation(t *testing.T) {
	run := amri.DefaultRunConfig()
	run.Profile.LambdaD = 8
	run.Profile.Domains = []uint64{6, 9, 14, 20, 30, 45}
	run.MaxTicks = 90
	run.WarmupTicks = 20
	run.MemCap = 0

	aggr, err := amri.NewAggregator([]amri.AggSpec{
		{Func: amri.AggCount},
		{Func: amri.AggMax, Arg: amri.AggRef{Stream: 0, Attr: 0}},
	}, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	run.OnResult = func(c *amri.Composite, tick int64) { aggr.Observe(c, tick) }

	eng, err := amri.NewEngine(run, amri.AMRISystem(amri.AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Run()
	windows := aggr.Flush()
	if len(windows) == 0 {
		t.Fatal("no aggregate windows produced")
	}
	var counted uint64
	for _, w := range windows {
		counted += w.Rows
		if w.Rows == 0 {
			t.Fatal("empty window emitted")
		}
	}
	if counted != r.TotalResults {
		t.Fatalf("aggregated %d rows, engine emitted %d", counted, r.TotalResults)
	}
}
