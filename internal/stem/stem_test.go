package stem

import (
	"testing"

	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/query"
	"amri/internal/sim"
	"amri/internal/storage"
	"amri/internal/tuple"
)

// testStem builds a STeM for state 1 (StreamB) of the four-way query with a
// bit-index backend: 4 bits per join attribute.
func testStem(t *testing.T, a assess.Assessor) (*STeM, *query.Query, *sim.Clock) {
	t.Helper()
	q := query.FourWay(60)
	spec := q.States[1]
	attrMap := make([]int, spec.NumAttrs())
	for i, ja := range spec.JAS {
		attrMap[i] = ja.Attr
	}
	ix, err := bitindex.New(bitindex.Uniform(spec.NumAttrs(), 12), attrMap, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock(1000)
	s := New(spec, storage.NewBitStore(ix), a, 60, sim.DefaultCosts(), clock)
	return s, q, clock
}

func TestInsertChargesAndStores(t *testing.T) {
	s, _, clock := testStem(t, nil)
	before := clock.Spent()
	s.Insert(tuple.New(1, 0, 0, []tuple.Value{1, 2, 3}))
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if clock.Spent() <= before {
		t.Fatal("insert must charge the clock")
	}
}

func TestExpireHonorsWindow(t *testing.T) {
	s, _, _ := testStem(t, nil)
	for ts := int64(0); ts < 5; ts++ {
		s.Insert(tuple.New(1, uint64(ts), ts, []tuple.Value{1, 2, 3}))
	}
	// Window 60: at now=62, tuples with TS <= 2 expire.
	if dropped := s.Expire(62); dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Nothing more to expire at the same instant.
	if dropped := s.Expire(62); dropped != 0 {
		t.Fatalf("second expire dropped %d", dropped)
	}
}

func TestProbeMatchesExactly(t *testing.T) {
	s, q, _ := testStem(t, nil)
	spec := q.States[1]
	posA, _ := spec.PosForPartner(0)
	jaA := spec.JAS[posA]

	// Three B tuples; two share the A-join value 7.
	mk := func(seq uint64, vA tuple.Value) *tuple.Tuple {
		attrs := make([]tuple.Value, 3)
		attrs[jaA.Attr] = vA
		for i := range attrs {
			if i != jaA.Attr {
				attrs[i] = tuple.Value(100 + seq)
			}
		}
		return tuple.New(1, seq, 0, attrs)
	}
	s.Insert(mk(1, 7))
	s.Insert(mk(2, 7))
	s.Insert(mk(3, 9))

	// Probe with a lone A tuple whose A-B attribute is 7.
	aSpec := q.States[0]
	aPos, _ := aSpec.PosForPartner(1)
	aJA := aSpec.JAS[aPos]
	aAttrs := make([]tuple.Value, 3)
	aAttrs[aJA.Attr] = 7
	comp := tuple.NewComposite(4, tuple.New(0, 50, 0, aAttrs))

	res := s.Probe(comp)
	if res.Pattern.Count() != 1 || !res.Pattern.Has(posA) {
		t.Fatalf("pattern = %v, want single bit at %d", res.Pattern, posA)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(res.Matches))
	}
	if res.Candidates < 2 {
		t.Fatalf("candidates = %d", res.Candidates)
	}
	if res.Comparisons < res.Candidates {
		t.Fatal("each candidate needs at least one comparison")
	}
}

func TestProbeObservesAssessor(t *testing.T) {
	a := assess.NewSRIA()
	s, q, _ := testStem(t, a)
	s.Insert(tuple.New(1, 0, 0, []tuple.Value{1, 2, 3}))
	comp := tuple.NewComposite(4, tuple.New(0, 1, 0, []tuple.Value{5, 5, 5}))
	s.Probe(comp)
	if a.N() != 1 {
		t.Fatalf("assessor observed %d patterns, want 1", a.N())
	}
	_ = q
}

func TestProbeChargesClock(t *testing.T) {
	s, _, clock := testStem(t, nil)
	for i := 0; i < 50; i++ {
		s.Insert(tuple.New(1, uint64(i), 0, []tuple.Value{tuple.Value(i), 2, 3}))
	}
	before := clock.Spent()
	comp := tuple.NewComposite(4, tuple.New(0, 99, 0, []tuple.Value{1, 1, 1}))
	s.Probe(comp)
	if clock.Spent() <= before {
		t.Fatal("probe must charge the clock")
	}
}

func TestMemBytesIncludesAssessor(t *testing.T) {
	withA, _, _ := testStem(t, assess.NewSRIA())
	withoutA, _, _ := testStem(t, nil)
	withA.Assessor.Observe(query.PatternOf(0))
	if withA.MemBytes() <= withoutA.MemBytes() {
		t.Fatal("assessor memory must be accounted")
	}
}

func TestExpiryBucketsShrink(t *testing.T) {
	s, _, _ := testStem(t, nil)
	for ts := int64(0); ts < 3000; ts++ {
		s.Insert(tuple.New(1, uint64(ts), ts, []tuple.Value{1, 2, 3}))
	}
	// At now=2999 with window 60, tuples with TS > 2939 survive: 60 of them.
	s.Expire(2999)
	if s.Len() != 60 {
		t.Fatalf("Len = %d, want 60 (window worth)", s.Len())
	}
	if s.retained.NumBuckets() != 60 {
		t.Fatalf("expiry left %d timestamp buckets, want 60", s.retained.NumBuckets())
	}
}

// TestOutOfOrderExpiryIsExact: a late tuple (older TS arriving after newer
// ones) still expires at its own TS + window, and younger tuples survive.
func TestOutOfOrderExpiryIsExact(t *testing.T) {
	s, _, _ := testStem(t, nil)
	young := tuple.New(1, 1, 100, []tuple.Value{1, 2, 3})
	s.Insert(young)
	late := tuple.New(1, 2, 30, []tuple.Value{4, 5, 6}) // arrives after, 70 ticks older
	s.Insert(late)
	// Window 60: at now=95, TS <= 35 expires — exactly the late tuple.
	if dropped := s.Expire(95); dropped != 1 {
		t.Fatalf("dropped %d, want the late tuple only", dropped)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The young tuple must still be stored and scannable.
	seen := 0
	s.Store().Probe(0, nil, func(x *tuple.Tuple) bool {
		if x == young {
			seen++
		}
		return true
	})
	if seen != 1 {
		t.Fatal("young tuple lost by out-of-order expiry")
	}
}

// TestShardedStoreMatchesFlat drives two identical STeMs — one over the
// flat BitStore, one over the lock-striped ShardedBitStore — through the
// same inserts, probes and expiries, asserting identical matches,
// candidates, index stats and clock charges. The sharded backend is a
// drop-in for an operator's state: same IC semantics, same cost
// accounting, just concurrency-safe.
func TestShardedStoreMatchesFlat(t *testing.T) {
	q := query.FourWay(60)
	spec := q.States[1]
	attrMap := make([]int, spec.NumAttrs())
	for i, ja := range spec.JAS {
		attrMap[i] = ja.Attr
	}
	flat, err := bitindex.New(bitindex.Uniform(spec.NumAttrs(), 12), attrMap, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := bitindex.NewSharded(bitindex.Uniform(spec.NumAttrs(), 12), attrMap, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	clockF := sim.NewClock(1 << 30)
	clockS := sim.NewClock(1 << 30)
	sf := New(spec, storage.NewBitStore(flat), nil, 60, sim.DefaultCosts(), clockF)
	ss := New(spec, storage.NewShardedBitStore(sharded), nil, 60, sim.DefaultCosts(), clockS)

	mk := func(seq uint64, ts int64) *tuple.Tuple {
		return tuple.New(1, seq, ts, []tuple.Value{
			tuple.Value(seq % 7), tuple.Value(seq % 5), tuple.Value(seq % 3),
		})
	}
	for i := 0; i < 400; i++ {
		tp := mk(uint64(i), int64(i/4))
		sf.Insert(tp)
		ss.Insert(tp)
		if i%37 == 0 {
			sf.Expire(int64(i / 4))
			ss.Expire(int64(i / 4))
		}
	}
	if sf.Len() != ss.Len() {
		t.Fatalf("Len: flat %d, sharded %d", sf.Len(), ss.Len())
	}

	for probe := 0; probe < 50; probe++ {
		attrs := []tuple.Value{
			tuple.Value(probe % 7), tuple.Value(probe % 5), tuple.Value(probe % 3),
		}
		comp := tuple.NewComposite(4, tuple.New(0, uint64(1000+probe), 50, attrs))
		rf := sf.Probe(comp)
		rs := ss.Probe(comp)
		if len(rf.Matches) != len(rs.Matches) {
			t.Fatalf("probe %d: matches flat %d, sharded %d", probe, len(rf.Matches), len(rs.Matches))
		}
		if rf.Candidates != rs.Candidates || rf.Comparisons != rs.Comparisons {
			t.Fatalf("probe %d: candidates/comparisons flat %d/%d, sharded %d/%d",
				probe, rf.Candidates, rf.Comparisons, rs.Candidates, rs.Comparisons)
		}
		if rf.Stats != rs.Stats {
			t.Fatalf("probe %d: stats flat %+v, sharded %+v", probe, rf.Stats, rs.Stats)
		}
	}
	if clockF.Spent() != clockS.Spent() {
		t.Fatalf("clock charges diverge: flat %v, sharded %v", clockF.Spent(), clockS.Spent())
	}
}
