package stem

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"amri/internal/bitindex"
	"amri/internal/hashindex"
	"amri/internal/query"
	"amri/internal/sim"
	"amri/internal/storage"
	"amri/internal/tuple"
)

// differential test: the scan store is the trivially-correct oracle; the
// bit index (dense and sparse, any configuration) and the multi-hash-index
// store must produce exactly the same match sets through a STeM for any
// sequence of inserts, expiries and probes. Candidate counts differ by
// design — match sets may not.
func backendsForSpec(t *testing.T, spec *query.StateSpec, cfgBits []uint8, hashPats []query.Pattern) map[string]*STeM {
	t.Helper()
	clock := sim.NewClock(1000)
	costs := sim.DefaultCosts()
	attrMap := make([]int, spec.NumAttrs())
	for i, ja := range spec.JAS {
		attrMap[i] = ja.Attr
	}
	mk := map[string]storage.Store{
		"scan": storage.NewScanStore(),
	}
	dense, err := bitindex.New(bitindex.NewConfig(cfgBits...), attrMap, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk["bit-dense"] = storage.NewBitStore(dense)
	sparse, err := bitindex.New(bitindex.NewConfig(cfgBits...), attrMap, nil, bitindex.WithDenseLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	mk["bit-sparse"] = storage.NewBitStore(sparse)
	hs, err := hashindex.New(spec.NumAttrs(), attrMap, nil, hashPats)
	if err != nil {
		t.Fatal(err)
	}
	mk["hash"] = hs

	out := map[string]*STeM{}
	for name, store := range mk {
		out[name] = New(spec, store, nil, 1000, costs, clock)
	}
	return out
}

func matchKey(ms []*tuple.Tuple) string {
	seqs := make([]uint64, len(ms))
	for i, m := range ms {
		seqs[i] = m.Seq
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return fmt.Sprint(seqs)
}

func TestBackendsAgreeOnMatches(t *testing.T) {
	q := query.FourWay(1000)
	spec := q.States[2]
	stems := backendsForSpec(t, spec, []uint8{3, 2, 4},
		[]query.Pattern{query.PatternOf(0), query.PatternOf(1, 2)})

	rng := rand.New(rand.NewPCG(21, 21))
	mkTuple := func(stream int, seq uint64) *tuple.Tuple {
		attrs := make([]tuple.Value, 3)
		for i := range attrs {
			attrs[i] = tuple.Value(rng.Uint64N(12))
		}
		tp := tuple.New(stream, seq, 0, attrs)
		tp.Arrival = seq + 1
		return tp
	}

	// Insert 300 tuples into every backend.
	for i := 0; i < 300; i++ {
		tp := mkTuple(2, uint64(i))
		for _, s := range stems {
			s.Insert(tp)
		}
	}

	// Probe with composites of every coverage shape, driven by a tuple
	// newer than everything stored.
	for trial := 0; trial < 200; trial++ {
		coverage := uint32(rng.Uint64N(16)) &^ (1 << 2)
		if coverage == 0 {
			coverage = 1
		}
		var comp *tuple.Composite
		for s := 0; s < 4; s++ {
			if coverage&(1<<uint(s)) == 0 {
				continue
			}
			tp := mkTuple(s, uint64(100000+trial*4+s))
			tp.Arrival = uint64(1000000 + trial)
			if comp == nil {
				comp = tuple.NewComposite(4, tp)
			} else {
				comp = comp.Extend(tp)
			}
		}
		want := ""
		for name, s := range stems {
			got := matchKey(s.Probe(comp).Matches)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("trial %d coverage %04b: backend %s disagrees:\n got %s\nwant %s",
					trial, coverage, name, got, want)
			}
		}
	}
}

func TestBackendsAgreeAfterDeletes(t *testing.T) {
	q := query.FourWay(1000)
	spec := q.States[0]
	stems := backendsForSpec(t, spec, []uint8{4, 4, 0},
		[]query.Pattern{query.PatternOf(0, 1)})

	rng := rand.New(rand.NewPCG(9, 9))
	var live []*tuple.Tuple
	for i := 0; i < 200; i++ {
		attrs := []tuple.Value{tuple.Value(rng.Uint64N(8)), tuple.Value(rng.Uint64N(8)), tuple.Value(rng.Uint64N(8))}
		tp := tuple.New(0, uint64(i), int64(i), attrs)
		tp.Arrival = uint64(i + 1)
		live = append(live, tp)
		for _, s := range stems {
			s.Insert(tp)
		}
	}
	// Expire the first half everywhere (window 1000, now = 1099 expires TS <= 99).
	for name, s := range stems {
		if dropped := s.Expire(1099); dropped != 100 {
			t.Fatalf("%s dropped %d, want 100", name, dropped)
		}
	}

	probe := tuple.New(1, 999999, 2000, []tuple.Value{tuple.Value(3), 0, 0})
	probe.Arrival = 1 << 40
	// Build a composite whose partner attribute hits the state's JAS.
	comp := tuple.NewComposite(4, probe)
	want := ""
	for name, s := range stems {
		got := matchKey(s.Probe(comp).Matches)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("%s disagrees after deletes: %s vs %s", name, got, want)
		}
	}
}

// Property: for random single-attribute probes over random small domains,
// all backends agree with the scan oracle.
func TestBackendAgreementProperty(t *testing.T) {
	q := query.FourWay(1000)
	spec := q.States[3]
	f := func(seed uint64, nIns uint8, domain8 uint8) bool {
		domain := uint64(domain8%20) + 2
		stems := map[string]*STeM{}
		clock := sim.NewClock(1000)
		costs := sim.DefaultCosts()
		attrMap := make([]int, 3)
		for i, ja := range spec.JAS {
			attrMap[i] = ja.Attr
		}
		bi, _ := bitindex.New(bitindex.NewConfig(2, 3, 1), attrMap, nil)
		hs, _ := hashindex.New(3, attrMap, nil, []query.Pattern{query.PatternOf(2)})
		stems["scan"] = New(spec, storage.NewScanStore(), nil, 1000, costs, clock)
		stems["bit"] = New(spec, storage.NewBitStore(bi), nil, 1000, costs, clock)
		stems["hash"] = New(spec, hs, nil, 1000, costs, clock)

		rng := rand.New(rand.NewPCG(seed, seed^5))
		for i := 0; i < int(nIns); i++ {
			attrs := []tuple.Value{
				tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain))}
			tp := tuple.New(3, uint64(i), 0, attrs)
			tp.Arrival = uint64(i + 1)
			for _, s := range stems {
				s.Insert(tp)
			}
		}
		// Probe from a lone partner-stream tuple.
		partner := spec.JAS[rng.IntN(3)].Partner
		pt := tuple.New(partner, 1<<20, 0, []tuple.Value{
			tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain))})
		pt.Arrival = 1 << 30
		comp := tuple.NewComposite(4, pt)
		want := ""
		for _, s := range stems {
			got := matchKey(s.Probe(comp).Matches)
			if want == "" {
				want = got
			} else if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
