// Package stem implements the STeM operator (Raman et al.): the unary join
// state module each stream owns. A STeM stores its stream's recent tuples
// in a pluggable storage backend (bit-address index, multi-hash-index, or
// plain scan), expires them as the sliding window advances, answers probe
// (search) requests from composites routed to it, and feeds every probe's
// access pattern to the state's assessor. All work is charged to the
// simulation clock at the configured cost table.
package stem

import (
	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/query"
	"amri/internal/sim"
	"amri/internal/storage"
	"amri/internal/tuple"
	"amri/internal/window"
)

// STeM is one state module.
type STeM struct {
	// Spec is the state's compiled view of the query (its JAS).
	Spec *query.StateSpec
	// Assessor collects access-pattern statistics; nil disables assessment
	// (the non-adapting contenders after warmup).
	Assessor assess.Assessor

	store storage.Store
	costs sim.CostTable
	clock *sim.Clock

	// retained buckets stored tuples by logical timestamp so expiry is
	// exact even when arrivals are out of order.
	retained *window.Buckets

	valsBuf  []tuple.Value  // scratch for probe values
	matchBuf []*tuple.Tuple // scratch for probe matches, reused across probes
}

// ProbeResult reports one probe (search request) against the state.
type ProbeResult struct {
	// Pattern is the access pattern the composite's coverage induced.
	Pattern query.Pattern
	// Matches are the stored tuples satisfying every constrained
	// predicate.
	Matches []*tuple.Tuple
	// Candidates is how many stored tuples the index surfaced for
	// comparison; Comparisons is the attribute equality checks performed.
	Candidates  int
	Comparisons int
	// Stats is the raw index work (hashes, buckets, tuples).
	Stats bitindex.Stats
}

// New builds a STeM over the given backend. window is the sliding-window
// length in ticks; clock receives every operation's cost.
func New(spec *query.StateSpec, store storage.Store, a assess.Assessor, windowTicks int64, costs sim.CostTable, clock *sim.Clock) *STeM {
	return &STeM{
		Spec:     spec,
		Assessor: a,
		store:    store,
		costs:    costs,
		clock:    clock,
		retained: window.New(windowTicks, 0),
		valsBuf:  make([]tuple.Value, spec.NumAttrs()),
	}
}

// SetSlack sets the watermark lag: tuples are retained slack ticks beyond
// the window so that drivers arriving up to slack ticks late still see
// every event-time match. The probe-side event-time filter keeps the
// window semantics exact.
func (s *STeM) SetSlack(slack int64) { s.retained.SetSlack(slack) }

// Store exposes the backend (the tuner migrates it directly).
func (s *STeM) Store() storage.Store { return s.store }

// EachRetained visits the state's retained tuples in ascending timestamp
// order — the deterministic snapshot order the durability layer encodes
// checkpoints in.
func (s *STeM) EachRetained(visit func(*tuple.Tuple)) { s.retained.EachOrdered(visit) }

// Len returns the number of stored tuples.
func (s *STeM) Len() int { return s.store.Len() }

// Insert stores an arriving tuple and charges maintenance.
func (s *STeM) Insert(t *tuple.Tuple) {
	st := s.store.Insert(t)
	s.clock.ChargeCat(sim.CatMaintain,
		s.costs.Insert+sim.Units(st.Hashes)*s.costs.Hash+sim.Units(st.KeyOps)*s.costs.KeyMaint)
	s.retained.Add(t)
}

// Expire removes every tuple whose timestamp has aged out of the window,
// returning how many were dropped. Expiry walks timestamp buckets, so it is
// exact regardless of the arrival order the tuples came in.
func (s *STeM) Expire(now int64) int {
	return s.retained.Expire(now, func(t *tuple.Tuple) {
		st, ok := s.store.Delete(t)
		if ok {
			s.clock.ChargeCat(sim.CatMaintain,
				s.costs.Insert+sim.Units(st.Hashes)*s.costs.Hash+sim.Units(st.KeyOps)*s.costs.KeyMaint)
		}
	})
}

// Probe executes one search request: the composite's coverage determines
// the access pattern and the probe values; candidates surfaced by the
// backend are verified against every constrained attribute. The assessor
// observes the pattern, and all index and comparison work is charged.
// The returned Matches slice aliases receiver-attached scratch storage
// and is valid only until the next Probe on this state.
//
//amrivet:hotpath per-probe search path, one call per routed composite
func (s *STeM) Probe(c *tuple.Composite) ProbeResult {
	p := s.Spec.PatternForDone(c.Done)
	for i, ja := range s.Spec.JAS {
		if p.Has(i) {
			s.valsBuf[i] = c.Parts[ja.Partner].Attrs[ja.PartnerAttr]
		} else {
			s.valsBuf[i] = 0
		}
	}

	if s.Assessor != nil {
		s.Assessor.Observe(p)
		s.clock.ChargeCat(sim.CatAssess, s.costs.Observe)
	}

	res := ProbeResult{Pattern: p}
	s.matchBuf = s.matchBuf[:0]
	drv := c.Driver()
	driver := drv.Arrival
	st := s.store.Probe(p, s.valsBuf, func(x *tuple.Tuple) bool {
		res.Candidates++
		// Exactly-once results: a cascade driven by tuple t only matches
		// tuples that arrived before t, so every k-way result is produced
		// solely by its newest member. Unstamped drivers (Arrival 0) skip
		// the filter.
		if driver != 0 && x.Arrival >= driver {
			res.Comparisons++
			return true
		}
		// Event-time window: the driver only joins tuples within its own
		// window, regardless of how late either side arrived (the slack
		// retention guarantees such tuples are still stored).
		if driver != 0 && x.TS <= drv.TS-s.retained.Window() {
			res.Comparisons++
			return true
		}
		match := true
		for i, ja := range s.Spec.JAS {
			if !p.Has(i) {
				continue
			}
			res.Comparisons++
			if x.Attrs[ja.Attr] != s.valsBuf[i] {
				match = false
				break
			}
		}
		if match {
			s.matchBuf = append(s.matchBuf, x)
		}
		return true
	})
	res.Matches = s.matchBuf
	res.Stats = st
	s.clock.ChargeCat(sim.CatSearch, sim.Units(st.Hashes)*s.costs.Hash+
		sim.Units(st.Buckets)*s.costs.Bucket+
		sim.Units(st.DirScans)*s.costs.DirScan+
		sim.Units(res.Comparisons)*s.costs.Compare)
	return res
}

// MemBytes returns the simulated resident size of the state: backend,
// expiry buckets, and assessor statistics.
func (s *STeM) MemBytes() int {
	m := s.store.MemBytes() + s.retained.MemBytes()
	if s.Assessor != nil {
		m += s.Assessor.MemBytes()
	}
	return m
}
