// Package agg implements the projection/aggregation surface of the paper's
// SPJ template (Figure 2: "Select <agg-func-list>"): tumbling-window
// aggregates computed over the join results an engine emits, optionally
// grouped by one attribute of one component stream. It consumes composites
// through a sink callback, so it composes with the simulation engine, the
// concurrent pipeline, or any other result producer.
package agg

import (
	"fmt"
	"sort"

	"amri/internal/tuple"
)

// Func is an aggregate function.
type Func int

// Aggregate functions of the SPJ template.
const (
	Count Func = iota
	Sum
	Avg
	Min
	Max
)

// String implements fmt.Stringer.
func (f Func) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// ParseFunc parses the lower-case function names.
func ParseFunc(s string) (Func, error) {
	switch s {
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	default:
		return 0, fmt.Errorf("agg: unknown function %q", s)
	}
}

// Ref addresses one attribute of one component stream within a result.
type Ref struct {
	Stream int
	Attr   int
}

// Spec is one aggregate column: Func over Arg (Arg ignored for Count).
type Spec struct {
	Func Func
	Arg  Ref
}

// String renders like "sum(S1.a0)".
func (s Spec) String() string {
	if s.Func == Count {
		return "count(*)"
	}
	return fmt.Sprintf("%s(S%d.a%d)", s.Func, s.Arg.Stream, s.Arg.Attr)
}

// WindowResult is one closed window's output for one group.
type WindowResult struct {
	// WindowStart is the tick the tumbling window began at.
	WindowStart int64
	// Group is the grouping key value (0 when ungrouped).
	Group tuple.Value
	// Values holds one value per Spec, in spec order. Avg is reported as
	// a float; everything else as its natural integer widened to float64.
	Values []float64
	// Rows is the number of results that fell into the window/group.
	Rows uint64
}

// Aggregator computes tumbling-window aggregates over join results.
type Aggregator struct {
	specs   []Spec
	groupBy *Ref // nil = a single global group
	window  int64

	curStart int64
	groups   map[tuple.Value]*groupState
	closed   []WindowResult
}

type groupState struct {
	rows  uint64
	sum   []float64
	min   []tuple.Value
	max   []tuple.Value
	first bool
}

// New builds an aggregator with the given tumbling window length (ticks).
// groupBy may be nil for a single global group.
func New(specs []Spec, groupBy *Ref, windowTicks int64) (*Aggregator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("agg: no aggregate columns")
	}
	if windowTicks <= 0 {
		return nil, fmt.Errorf("agg: window must be positive")
	}
	return &Aggregator{
		specs:   specs,
		groupBy: groupBy,
		window:  windowTicks,
		groups:  make(map[tuple.Value]*groupState),
	}, nil
}

// Observe feeds one join result produced at the given tick. Windows close
// automatically as the tick advances (ticks must be non-decreasing).
func (a *Aggregator) Observe(c *tuple.Composite, tick int64) {
	a.advance(tick)
	var key tuple.Value
	if a.groupBy != nil {
		part := c.Parts[a.groupBy.Stream]
		if part == nil {
			return // result lacks the grouping stream; skip defensively
		}
		key = part.Attrs[a.groupBy.Attr]
	}
	g := a.groups[key]
	if g == nil {
		g = &groupState{
			sum:   make([]float64, len(a.specs)),
			min:   make([]tuple.Value, len(a.specs)),
			max:   make([]tuple.Value, len(a.specs)),
			first: true,
		}
		a.groups[key] = g
	}
	g.rows++
	for i, sp := range a.specs {
		if sp.Func == Count {
			continue
		}
		part := c.Parts[sp.Arg.Stream]
		if part == nil {
			continue
		}
		v := part.Attrs[sp.Arg.Attr]
		g.sum[i] += float64(v)
		if g.first || v < g.min[i] {
			g.min[i] = v
		}
		if g.first || v > g.max[i] {
			g.max[i] = v
		}
	}
	g.first = false
}

// advance closes every window boundary crossed up to the tick.
func (a *Aggregator) advance(tick int64) {
	for tick >= a.curStart+a.window {
		a.closeWindow()
		a.curStart += a.window
	}
}

func (a *Aggregator) closeWindow() {
	if len(a.groups) == 0 {
		return
	}
	keys := make([]tuple.Value, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		g := a.groups[k]
		out := WindowResult{WindowStart: a.curStart, Group: k, Rows: g.rows,
			Values: make([]float64, len(a.specs))}
		for i, sp := range a.specs {
			switch sp.Func {
			case Count:
				out.Values[i] = float64(g.rows)
			case Sum:
				out.Values[i] = g.sum[i]
			case Avg:
				if g.rows > 0 {
					out.Values[i] = g.sum[i] / float64(g.rows)
				}
			case Min:
				out.Values[i] = float64(g.min[i])
			case Max:
				out.Values[i] = float64(g.max[i])
			}
		}
		a.closed = append(a.closed, out)
	}
	a.groups = make(map[tuple.Value]*groupState)
}

// Flush closes the current window regardless of tick progress and returns
// every closed window so far, clearing the output buffer.
func (a *Aggregator) Flush() []WindowResult {
	a.closeWindow()
	out := a.closed
	a.closed = nil
	return out
}

// Drain returns windows closed so far by tick advancement without forcing
// the current window shut.
func (a *Aggregator) Drain() []WindowResult {
	out := a.closed
	a.closed = nil
	return out
}

// Specs returns the aggregate column specs.
func (a *Aggregator) Specs() []Spec { return a.specs }
