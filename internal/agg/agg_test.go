package agg

import (
	"testing"
	"testing/quick"

	"amri/internal/tuple"
)

func result(ts int64, vals ...tuple.Value) *tuple.Composite {
	c := tuple.NewComposite(len(vals), tuple.New(0, 0, ts, []tuple.Value{vals[0]}))
	for s := 1; s < len(vals); s++ {
		c = c.Extend(tuple.New(s, 0, ts, []tuple.Value{vals[s]}))
	}
	return c
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, nil, 10); err == nil {
		t.Error("no specs should fail")
	}
	if _, err := New([]Spec{{Func: Count}}, nil, 0); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := New([]Spec{{Func: Count}}, nil, 10); err != nil {
		t.Error(err)
	}
}

func TestFuncStringsAndParse(t *testing.T) {
	for _, f := range []Func{Count, Sum, Avg, Min, Max} {
		back, err := ParseFunc(f.String())
		if err != nil || back != f {
			t.Errorf("round trip %v failed", f)
		}
	}
	if _, err := ParseFunc("median"); err == nil {
		t.Error("unknown func should fail")
	}
	if (Spec{Func: Count}).String() != "count(*)" {
		t.Error("count spec string")
	}
	if (Spec{Func: Sum, Arg: Ref{1, 0}}).String() != "sum(S1.a0)" {
		t.Error("sum spec string")
	}
}

func TestSingleWindowAggregates(t *testing.T) {
	a, _ := New([]Spec{
		{Func: Count},
		{Func: Sum, Arg: Ref{Stream: 1, Attr: 0}},
		{Func: Avg, Arg: Ref{Stream: 1, Attr: 0}},
		{Func: Min, Arg: Ref{Stream: 1, Attr: 0}},
		{Func: Max, Arg: Ref{Stream: 1, Attr: 0}},
	}, nil, 100)
	for _, v := range []tuple.Value{5, 9, 1, 9} {
		a.Observe(result(10, 0, v), 10)
	}
	out := a.Flush()
	if len(out) != 1 {
		t.Fatalf("windows = %d", len(out))
	}
	w := out[0]
	if w.Rows != 4 {
		t.Fatalf("rows = %d", w.Rows)
	}
	want := []float64{4, 24, 6, 1, 9}
	for i, v := range want {
		if w.Values[i] != v {
			t.Errorf("col %d = %g, want %g", i, w.Values[i], v)
		}
	}
}

func TestTumblingWindowsClose(t *testing.T) {
	a, _ := New([]Spec{{Func: Count}}, nil, 10)
	a.Observe(result(3, 0, 0), 3)
	a.Observe(result(7, 0, 0), 7)
	// Crossing into the next window closes the first.
	a.Observe(result(12, 0, 0), 12)
	got := a.Drain()
	if len(got) != 1 {
		t.Fatalf("closed windows = %d", len(got))
	}
	if got[0].WindowStart != 0 || got[0].Rows != 2 {
		t.Fatalf("first window = %+v", got[0])
	}
	rest := a.Flush()
	if len(rest) != 1 || rest[0].WindowStart != 10 || rest[0].Rows != 1 {
		t.Fatalf("second window = %+v", rest)
	}
}

func TestEmptyWindowsProduceNothing(t *testing.T) {
	a, _ := New([]Spec{{Func: Count}}, nil, 5)
	a.Observe(result(2, 0, 0), 2)
	// Jump several windows ahead: only the non-empty one closes.
	a.Observe(result(23, 0, 0), 23)
	got := a.Drain()
	if len(got) != 1 {
		t.Fatalf("closed windows = %d, want only the non-empty one", len(got))
	}
}

func TestGroupBy(t *testing.T) {
	gb := &Ref{Stream: 0, Attr: 0}
	a, _ := New([]Spec{{Func: Count}, {Func: Sum, Arg: Ref{Stream: 1, Attr: 0}}}, gb, 100)
	a.Observe(result(1, 7, 10), 1)
	a.Observe(result(2, 7, 20), 2)
	a.Observe(result(3, 8, 5), 3)
	out := a.Flush()
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	// Sorted by group key.
	if out[0].Group != 7 || out[0].Rows != 2 || out[0].Values[1] != 30 {
		t.Fatalf("group 7 = %+v", out[0])
	}
	if out[1].Group != 8 || out[1].Rows != 1 || out[1].Values[1] != 5 {
		t.Fatalf("group 8 = %+v", out[1])
	}
}

func TestMissingStreamsAreSkipped(t *testing.T) {
	gb := &Ref{Stream: 2, Attr: 0}
	a, _ := New([]Spec{{Func: Count}}, gb, 100)
	// Composite without stream 2: must not panic, must not count.
	c := tuple.NewComposite(3, tuple.New(0, 0, 0, []tuple.Value{1}))
	a.Observe(c, 0)
	if got := a.Flush(); len(got) != 0 {
		t.Fatalf("grouping on a missing stream counted: %+v", got)
	}
}

// Property: count equals the number of observations per window; sum equals
// an independently computed total.
func TestAggregationMatchesDirectComputation(t *testing.T) {
	f := func(vals []uint16) bool {
		a, _ := New([]Spec{{Func: Count}, {Func: Sum, Arg: Ref{Stream: 1, Attr: 0}}}, nil, 1<<40)
		var sum float64
		for _, v := range vals {
			a.Observe(result(1, 0, tuple.Value(v)), 1)
			sum += float64(v)
		}
		out := a.Flush()
		if len(vals) == 0 {
			return len(out) == 0
		}
		return len(out) == 1 &&
			out[0].Rows == uint64(len(vals)) &&
			out[0].Values[0] == float64(len(vals)) &&
			out[0].Values[1] == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
