package assess

import (
	"math/rand/v2"
	"testing"

	"amri/internal/hh"
	"amri/internal/query"
)

func benchPatterns(n int) []query.Pattern {
	rng := rand.New(rand.NewPCG(1, 1))
	out := make([]query.Pattern, n)
	for i := range out {
		out[i] = query.Pattern(rng.Uint32N(8))
	}
	return out
}

func BenchmarkSRIAObserve(b *testing.B) {
	s := NewSRIA()
	pats := benchPatterns(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(pats[i%len(pats)])
	}
}

func BenchmarkCSRIAObserve(b *testing.B) {
	c, _ := NewCSRIA(0.005)
	pats := benchPatterns(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(pats[i%len(pats)])
	}
}

func BenchmarkCDIAObserve(b *testing.B) {
	c, _ := NewCDIA(3, 0.005, hh.RollupHighestCount, 1)
	pats := benchPatterns(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(pats[i%len(pats)])
	}
}

func BenchmarkCDIAResults(b *testing.B) {
	c, _ := NewCDIA(3, 0.005, hh.RollupHighestCount, 1)
	for _, p := range benchPatterns(50000) {
		c.Observe(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.Results(0.04); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}
