// Package assess implements the paper's Section IV index assessment
// methods. Each assessor tracks, for one state, how often every access
// pattern is used by incoming search requests, and reports the statistics
// the tuner ranks configurations by:
//
//   - SRIA  — exact counts, every observed pattern reported (no reduction).
//   - CSRIA — SRIA + lossy counting; only patterns above the threshold are
//     reported, and the mass of everything below it is lost.
//   - DIA   — the lattice-organized twin of SRIA; per the paper they share
//     a code base and report identical results.
//   - CDIA  — DIA + hierarchical heavy hitters; sub-threshold patterns roll
//     their counts into lattice ancestors (random or highest-count parent),
//     so their mass survives in generalized form.
//
// The tuning consequences are exactly the paper's: SRIA/DIA hand the
// optimizer every low-frequency exploration pattern (bits get spent on
// noise), CSRIA hides them entirely (bits miss real shared demand), CDIA
// concentrates them into the ancestors that an index can actually serve.
package assess

import (
	"fmt"
	"sort"

	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
)

// Assessor is the contract every assessment method satisfies.
type Assessor interface {
	// Observe records one search request's access pattern.
	Observe(p query.Pattern)
	// Results reports the assessed pattern frequencies for the threshold.
	// The live statistics are not modified.
	Results(theta float64) []cost.APStat
	// N returns the number of observations.
	N() uint64
	// Len returns the number of patterns currently tracked.
	Len() int
	// MemBytes returns the simulated resident size of the statistics.
	MemBytes() int
	// Reset clears the statistics for a new assessment window.
	Reset()
	// Name identifies the method in reports ("SRIA", "CDIA-highest", ...).
	Name() string
}

// PatternHierarchy is the access-pattern search-benefit lattice over a JAS
// of numAttrs attributes, in the shape hh.HierarchicalCounter consumes.
func PatternHierarchy(numAttrs int) hh.Hierarchy[query.Pattern] {
	_ = numAttrs // the subset lattice needs no width; kept for clarity of intent
	return hh.Hierarchy[query.Pattern]{
		Parents: func(p query.Pattern, dst []query.Pattern) []query.Pattern {
			return p.Parents(dst)
		},
		Ancestor: func(a, b query.Pattern) bool { return a.Benefits(b) },
		Level:    func(p query.Pattern) int { return p.Count() },
		Order:    func(p query.Pattern) uint64 { return uint64(p.BR()) },
	}
}

// SRIA is the basic Self Reliant Index Assessment: an exact count per
// observed pattern, keyed by the binary representation BR(ap).
type SRIA struct {
	counts map[query.Pattern]uint64
	n      uint64
	name   string
}

// NewSRIA returns an empty SRIA table.
func NewSRIA() *SRIA {
	return &SRIA{counts: make(map[query.Pattern]uint64), name: "SRIA"}
}

// Observe increments the pattern's count.
func (s *SRIA) Observe(p query.Pattern) {
	s.counts[p]++
	s.n++
}

// Results reports every tracked pattern's frequency. Basic SRIA performs no
// reduction: the threshold is ignored, which is precisely why exploration
// noise leaks into the tuner.
func (s *SRIA) Results(theta float64) []cost.APStat {
	_ = theta
	if s.n == 0 {
		return nil
	}
	out := make([]cost.APStat, 0, len(s.counts))
	for p, c := range s.counts {
		out = append(out, cost.APStat{P: p, Freq: float64(c) / float64(s.n)})
	}
	sortStats(out)
	return out
}

// N returns the number of observations.
func (s *SRIA) N() uint64 { return s.n }

// Len returns the number of tracked patterns.
func (s *SRIA) Len() int { return len(s.counts) }

// MemBytes returns the simulated resident size of the table.
func (s *SRIA) MemBytes() int { return 96 + 48*len(s.counts) }

// Reset clears the table.
//
//amrivet:coldpath per-window maintenance: runs once per assessment window, not per probe; the fresh map is the reset
func (s *SRIA) Reset() {
	s.counts = make(map[query.Pattern]uint64)
	s.n = 0
}

// Name identifies the method.
func (s *SRIA) Name() string { return s.name }

// NewDIA returns the Dependent Index Assessment twin of SRIA: the paper
// stores DIA nodes in the same SRIA table and notes their results are equal
// ("both approaches share the same code base ... and do not reduce any
// nodes"); the lattice structure only becomes load-bearing in CDIA.
func NewDIA() *SRIA {
	d := NewSRIA()
	d.name = "DIA"
	return d
}

// CSRIA is Compact SRIA: SRIA with Manku–Motwani lossy counting. Patterns
// whose frequency cannot reach the error bar are evicted each segment, and
// Results reports only patterns clearing θ−ε — the mass of everything else
// is simply gone.
type CSRIA struct {
	lc *hh.LossyCounter[query.Pattern]
}

// NewCSRIA returns a CSRIA assessor with error rate epsilon.
func NewCSRIA(epsilon float64) (*CSRIA, error) {
	lc, err := hh.NewLossyCounter[query.Pattern](epsilon)
	if err != nil {
		return nil, err
	}
	return &CSRIA{lc: lc}, nil
}

// Observe records the pattern, compressing at segment boundaries.
func (c *CSRIA) Observe(p query.Pattern) { c.lc.Observe(p) }

// Results reports the heavy-hitter patterns for the threshold.
func (c *CSRIA) Results(theta float64) []cost.APStat {
	n := c.lc.N()
	if n == 0 {
		return nil
	}
	var out []cost.APStat
	for _, r := range c.lc.Result(theta) {
		out = append(out, cost.APStat{P: r.Key, Freq: r.Freq(n)})
	}
	sortStats(out)
	return out
}

// N returns the number of observations.
func (c *CSRIA) N() uint64 { return c.lc.N() }

// Len returns the number of tracked patterns.
func (c *CSRIA) Len() int { return c.lc.Len() }

// MemBytes returns the simulated resident size.
func (c *CSRIA) MemBytes() int { return c.lc.MemBytes() }

// Reset clears the statistics.
func (c *CSRIA) Reset() { c.lc.Reset() }

// Name identifies the method.
func (c *CSRIA) Name() string { return "CSRIA" }

// Epsilon returns the configured error rate.
func (c *CSRIA) Epsilon() float64 { return c.lc.Epsilon() }

// CDIA is Compact DIA: the lattice-aware compact assessor. Eviction rolls a
// pattern's count into a lattice parent instead of deleting it, and the
// final-results walk promotes sub-threshold counts upward before reporting,
// so shared demand always surfaces on some servable ancestor.
type CDIA struct {
	hc     *hh.HierarchicalCounter[query.Pattern]
	rollup hh.Rollup
}

// NewCDIA returns a CDIA assessor over a JAS of numAttrs attributes with
// the given error rate, combination method, and RNG seed (used only by the
// random combination).
func NewCDIA(numAttrs int, epsilon float64, rollup hh.Rollup, seed uint64) (*CDIA, error) {
	hc, err := hh.NewHierarchicalCounter(epsilon, PatternHierarchy(numAttrs), rollup, seed)
	if err != nil {
		return nil, err
	}
	return &CDIA{hc: hc, rollup: rollup}, nil
}

// Observe records the pattern, compressing at segment boundaries.
func (c *CDIA) Observe(p query.Pattern) { c.hc.Observe(p) }

// Results reports the hierarchical heavy hitters for the threshold.
func (c *CDIA) Results(theta float64) []cost.APStat {
	n := c.hc.N()
	if n == 0 {
		return nil
	}
	var out []cost.APStat
	for _, r := range c.hc.Result(theta) {
		out = append(out, cost.APStat{P: r.Key, Freq: r.Freq(n)})
	}
	sortStats(out)
	return out
}

// N returns the number of observations.
func (c *CDIA) N() uint64 { return c.hc.N() }

// Len returns the number of tracked patterns.
func (c *CDIA) Len() int { return c.hc.Len() }

// MemBytes returns the simulated resident size.
func (c *CDIA) MemBytes() int { return c.hc.MemBytes() }

// Reset clears the statistics (RNG position is retained).
func (c *CDIA) Reset() { c.hc.Reset() }

// Name identifies the method including the combination strategy.
func (c *CDIA) Name() string { return fmt.Sprintf("CDIA-%s", c.rollup) }

// sortStats orders by descending frequency, then ascending BR, for
// deterministic reports.
func sortStats(stats []cost.APStat) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Freq != stats[j].Freq {
			return stats[i].Freq > stats[j].Freq
		}
		return stats[i].P < stats[j].P
	})
}

var (
	_ Assessor = (*SRIA)(nil)
	_ Assessor = (*CSRIA)(nil)
	_ Assessor = (*CDIA)(nil)
)
