package assess

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
	"amri/internal/tuner"
)

// feedTable2 replays the paper's Table II workload: 10000 requests in the
// exact published proportions, interleaved so every segment sees the same
// mix (frequencies are stationary in the example).
func feedTable2(a Assessor) {
	mix := []struct {
		p     query.Pattern
		count int
	}{
		{query.PatternOf(0), 4},        // <A,*,*> 4%
		{query.PatternOf(1), 10},       // <*,B,*> 10%
		{query.PatternOf(2), 10},       // <*,*,C> 10%
		{query.PatternOf(0, 1), 4},     // <A,B,*> 4%
		{query.PatternOf(0, 2), 16},    // <A,*,C> 16%
		{query.PatternOf(1, 2), 10},    // <*,B,C> 10%
		{query.PatternOf(0, 1, 2), 46}, // <A,B,C> 46%
	}
	for round := 0; round < 100; round++ {
		for _, m := range mix {
			for i := 0; i < m.count; i++ {
				a.Observe(m.p)
			}
		}
	}
}

func statFor(stats []cost.APStat, p query.Pattern) (cost.APStat, bool) {
	for _, s := range stats {
		if s.P == p {
			return s, true
		}
	}
	return cost.APStat{}, false
}

func TestSRIAExactCounts(t *testing.T) {
	s := NewSRIA()
	feedTable2(s)
	if s.N() != 10000 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7 patterns", s.Len())
	}
	stats := s.Results(0.1)
	// Basic SRIA reports everything, threshold notwithstanding.
	if len(stats) != 7 {
		t.Fatalf("SRIA reported %d patterns, want all 7", len(stats))
	}
	a, _ := statFor(stats, query.PatternOf(0))
	if math.Abs(a.Freq-0.04) > 1e-12 {
		t.Fatalf("<A,*,*> freq = %g, want 0.04", a.Freq)
	}
	// Sorted by descending frequency: ABC first.
	if stats[0].P != query.PatternOf(0, 1, 2) {
		t.Fatalf("top pattern = %v", stats[0].P)
	}
}

func TestDIAEqualsSRIA(t *testing.T) {
	s, d := NewSRIA(), NewDIA()
	feedTable2(s)
	feedTable2(d)
	if d.Name() != "DIA" {
		t.Fatalf("Name = %q", d.Name())
	}
	ss, ds := s.Results(0.1), d.Results(0.1)
	if len(ss) != len(ds) {
		t.Fatalf("SRIA %d vs DIA %d results", len(ss), len(ds))
	}
	for i := range ss {
		if ss[i] != ds[i] {
			t.Fatalf("result %d differs: %v vs %v", i, ss[i], ds[i])
		}
	}
}

// TestTable2WorkedExample is experiment T2: with θ=5% and ε=0.1%, CSRIA
// fails to report <A,*,*> and <A,B,*> (both 4%), while CDIA with random
// combination folds <A,B,*> into <A,*,*> and reports the combined 8%.
func TestTable2WorkedExample(t *testing.T) {
	const theta = 0.05
	const epsilon = 0.001

	cs, err := NewCSRIA(epsilon)
	if err != nil {
		t.Fatal(err)
	}
	feedTable2(cs)
	csStats := cs.Results(theta)
	if _, found := statFor(csStats, query.PatternOf(0)); found {
		t.Fatal("CSRIA should not report <A,*,*> (4% < θ)")
	}
	if _, found := statFor(csStats, query.PatternOf(0, 1)); found {
		t.Fatal("CSRIA should not report <A,B,*> (4% < θ)")
	}
	if len(csStats) != 5 {
		t.Fatalf("CSRIA reported %d patterns, want the 5 heavy ones", len(csStats))
	}

	cd, err := NewCDIA(3, epsilon, hh.RollupRandom, 1)
	if err != nil {
		t.Fatal(err)
	}
	feedTable2(cd)
	cdStats := cd.Results(theta)
	a, found := statFor(cdStats, query.PatternOf(0))
	if !found {
		t.Fatalf("CDIA-random must report <A,*,*>; got %v", cdStats)
	}
	if math.Abs(a.Freq-0.08) > 0.005 {
		t.Fatalf("<A,*,*> combined freq = %g, want ~0.08 (4%%+4%%)", a.Freq)
	}
	if _, found := statFor(cdStats, query.PatternOf(0, 1)); found {
		t.Fatal("<A,B,*> should have been folded away, not reported")
	}
}

// TestTable2EndToEndTuning chains assessment into the optimizer: CDIA's
// statistics yield the paper's true optimal IC[1,1,2]; CSRIA's reduced
// statistics yield the suboptimal IC[0,1,3].
func TestTable2EndToEndTuning(t *testing.T) {
	const theta = 0.05
	params := cost.Params{LambdaD: 100, LambdaR: 100, Ch: 0.001, Cc: 1, Window: 60}
	opt := tuner.Options{RequireFullBudget: true}

	cd, _ := NewCDIA(3, 0.001, hh.RollupRandom, 1)
	feedTable2(cd)
	cdCfg, _, err := tuner.Exhaustive(3, 4, params, cd.Results(theta), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cdCfg.Equal(bitindex.NewConfig(1, 1, 2)) {
		t.Fatalf("CDIA-tuned IC = %v, want IC[1,1,2]", cdCfg)
	}

	cs, _ := NewCSRIA(0.001)
	feedTable2(cs)
	csCfg, _, err := tuner.Exhaustive(3, 4, params, cs.Results(theta), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !csCfg.Equal(bitindex.NewConfig(0, 1, 3)) {
		t.Fatalf("CSRIA-tuned IC = %v, want IC[0,1,3]", csCfg)
	}
}

func TestCDIAHighestCountFoldsTowardHeavyParent(t *testing.T) {
	cd, _ := NewCDIA(3, 0.001, hh.RollupHighestCount, 1)
	feedTable2(cd)
	stats := cd.Results(0.05)
	// Highest-count combination folds <A,B,*> into <*,B,*> (10% > 4%),
	// and <A,*,*> itself (4%) then rolls to the top unreported.
	b, found := statFor(stats, query.PatternOf(1))
	if !found {
		t.Fatalf("<*,B,*> missing from %v", stats)
	}
	if b.Freq < 0.13 {
		t.Fatalf("<*,B,*> should have absorbed <A,B,*>: freq %g", b.Freq)
	}
}

func TestCSRIAEvictsTrueNoise(t *testing.T) {
	cs, _ := NewCSRIA(0.01)
	// 99% one pattern, occasional one-off noise patterns.
	for i := 0; i < 5000; i++ {
		cs.Observe(query.PatternOf(0, 1, 2))
		if i%500 == 0 {
			cs.Observe(query.Pattern(uint32(i/500) % 7))
		}
	}
	if cs.Len() > 3 {
		t.Fatalf("CSRIA tracks %d patterns; noise should be evicted", cs.Len())
	}
}

// TestCSRIAWithinErrorBoundOfSRIA drives CSRIA and exact SRIA with the
// same skewed pattern stream and checks the Manku–Motwani contract pattern
// by pattern: every pattern SRIA puts at or above θ appears in CSRIA's
// report, nothing below θ−ε does, and each reported frequency undercounts
// the exact one by at most ε (and never overcounts). The skew matters —
// a long tail of sub-ε patterns is what the segment eviction actually
// works on, so this is where a wrong eviction segment id shows up as a
// blown bound.
func TestCSRIAWithinErrorBoundOfSRIA(t *testing.T) {
	const (
		epsilon = 0.01
		theta   = 0.05
		n       = 30000
	)
	sria := NewSRIA()
	cs, err := NewCSRIA(epsilon)
	if err != nil {
		t.Fatal(err)
	}
	full := query.FullPattern(8) // 255 non-empty patterns
	rng := rand.New(rand.NewPCG(17, 17))
	for i := 0; i < n; i++ {
		// Zipf-ish skew: a handful of heavy patterns over a long tail.
		p := query.Pattern(uint32(math.Floor(math.Pow(rng.Float64(), 4)*float64(full)))) & full
		sria.Observe(p)
		cs.Observe(p)
	}
	exact := map[query.Pattern]float64{}
	for _, st := range sria.Results(0) {
		exact[st.P] = st.Freq
	}
	reported := map[query.Pattern]float64{}
	for _, st := range cs.Results(theta) {
		reported[st.P] = st.Freq
	}
	if len(reported) == 0 || len(reported) >= len(exact) {
		t.Fatalf("reduction not exercised: CSRIA reported %d of %d patterns",
			len(reported), len(exact))
	}
	for p, f := range exact {
		if f >= theta {
			if _, ok := reported[p]; !ok {
				t.Errorf("pattern %v with exact freq %.4f >= θ missing from CSRIA", p, f)
			}
		}
		if f < theta-epsilon {
			if _, ok := reported[p]; ok {
				t.Errorf("pattern %v with exact freq %.4f < θ−ε reported by CSRIA", p, f)
			}
		}
	}
	for p, f := range reported {
		ex := exact[p]
		if f > ex+1e-9 {
			t.Errorf("pattern %v overcounted: CSRIA %.5f > exact %.5f", p, f, ex)
		}
		if ex-f > epsilon+1.0/float64(n) {
			t.Errorf("pattern %v undercounted beyond ε: CSRIA %.5f, exact %.5f", p, f, ex)
		}
	}
}

func TestNamesAndValidation(t *testing.T) {
	if NewSRIA().Name() != "SRIA" {
		t.Fatal("SRIA name")
	}
	if _, err := NewCSRIA(0); err == nil {
		t.Fatal("CSRIA epsilon 0 should fail")
	}
	if _, err := NewCDIA(3, 2, hh.RollupRandom, 1); err == nil {
		t.Fatal("CDIA epsilon 2 should fail")
	}
	cd, _ := NewCDIA(3, 0.1, hh.RollupHighestCount, 1)
	if cd.Name() != "CDIA-highest-count" {
		t.Fatalf("CDIA name = %q", cd.Name())
	}
	cs, _ := NewCSRIA(0.25)
	if cs.Epsilon() != 0.25 {
		t.Fatalf("Epsilon = %g", cs.Epsilon())
	}
}

func TestResetAll(t *testing.T) {
	cs, _ := NewCSRIA(0.1)
	cd, _ := NewCDIA(3, 0.1, hh.RollupRandom, 1)
	for _, a := range []Assessor{NewSRIA(), cs, cd} {
		a.Observe(query.PatternOf(0))
		a.Reset()
		if a.N() != 0 || a.Len() != 0 {
			t.Errorf("%s Reset left N=%d Len=%d", a.Name(), a.N(), a.Len())
		}
		if got := a.Results(0.1); got != nil {
			t.Errorf("%s Results after reset = %v", a.Name(), got)
		}
	}
}

func TestMemBytesOrdering(t *testing.T) {
	// On a wide pattern space with heavy noise, compact assessors must use
	// less memory than SRIA.
	sria := NewSRIA()
	cs, _ := NewCSRIA(0.02)
	cd, _ := NewCDIA(10, 0.02, hh.RollupHighestCount, 1)
	full := query.FullPattern(10)
	for i := 0; i < 20000; i++ {
		p := query.Pattern(uint32(i*2654435761) % uint32(full+1))
		sria.Observe(p)
		cs.Observe(p)
		cd.Observe(p)
	}
	if !(cs.MemBytes() < sria.MemBytes() && cd.MemBytes() < sria.MemBytes()) {
		t.Fatalf("compact assessors should be smaller: SRIA=%d CSRIA=%d CDIA=%d",
			sria.MemBytes(), cs.MemBytes(), cd.MemBytes())
	}
}

// Property: SRIA frequencies over any observation sequence sum to 1.
func TestSRIAFrequenciesSumToOne(t *testing.T) {
	f := func(seq []uint8) bool {
		if len(seq) == 0 {
			return true
		}
		s := NewSRIA()
		for _, x := range seq {
			s.Observe(query.Pattern(x) & query.FullPattern(3))
		}
		var sum float64
		for _, st := range s.Results(0) {
			sum += st.Freq
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every pattern CDIA reports is either observed or a lattice
// ancestor of an observed pattern, and reported frequencies never exceed 1.
func TestCDIAReportsOnlyAncestors(t *testing.T) {
	f := func(seq []uint8, rollupBit bool) bool {
		if len(seq) == 0 {
			return true
		}
		roll := hh.RollupRandom
		if rollupBit {
			roll = hh.RollupHighestCount
		}
		cd, _ := NewCDIA(3, 0.1, roll, 7)
		observed := map[query.Pattern]bool{}
		for _, x := range seq {
			p := query.Pattern(x) & query.FullPattern(3)
			observed[p] = true
			cd.Observe(p)
		}
		for _, st := range cd.Results(0.2) {
			if st.Freq > 1+1e-9 {
				return false
			}
			anyDescendant := false
			for o := range observed {
				if st.P.Benefits(o) {
					anyDescendant = true
					break
				}
			}
			if !anyDescendant {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
