package bench

import (
	"fmt"
	"io"
	"math/rand/v2"

	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/query"
	"amri/internal/tuple"
)

// CostModelRow compares Equation 1's per-request predictions against the
// measured behaviour of a populated bit-address index for one access
// pattern.
type CostModelRow struct {
	Pattern           query.Pattern
	PredictedBuckets  float64
	MeasuredBuckets   float64
	PredictedTuples   float64
	MeasuredTuples    float64
	TupleErrorPercent float64
}

// CostModelResult is the full validation table.
type CostModelResult struct {
	Config bitindex.Config
	States int
	Rows   []CostModelRow
}

// CostModel populates a 3-attribute bit index with uniformly distributed
// tuples and measures, for every access pattern, the buckets probed and
// tuples scanned per search, against the Eq. 1 predictions 2^(B-B_ap) and
// n/2^B_ap.
func CostModel(stateSize, probes int, cfg bitindex.Config, seed uint64) (*CostModelResult, error) {
	ix, err := bitindex.New(cfg, []int{0, 1, 2}, nil)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^77))
	const domain = 1 << 16 // large domain: even spread, negligible duplicates
	for i := 0; i < stateSize; i++ {
		ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain))}))
	}

	res := &CostModelResult{Config: cfg.Clone(), States: stateSize}
	query.AllPatterns(3, func(p query.Pattern) bool {
		var bSum, tSum float64
		for k := 0; k < probes; k++ {
			vals := []tuple.Value{
				tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain)), tuple.Value(rng.Uint64N(domain))}
			st := ix.Search(p, vals, func(*tuple.Tuple) bool { return true })
			bSum += float64(st.Buckets)
			tSum += float64(st.Tuples)
		}
		row := CostModelRow{
			Pattern:          p,
			PredictedBuckets: cost.ExpectedBucketsProbed(cfg, p),
			MeasuredBuckets:  bSum / float64(probes),
			PredictedTuples:  cost.ExpectedTuplesScanned(cfg, p, stateSize),
			MeasuredTuples:   tSum / float64(probes),
		}
		if row.PredictedTuples > 0 {
			row.TupleErrorPercent = 100 * (row.MeasuredTuples - row.PredictedTuples) / row.PredictedTuples
		}
		res.Rows = append(res.Rows, row)
		return true
	})
	return res, nil
}

// RunCostModel regenerates the cost-model validation table.
func RunCostModel(o Options, w io.Writer) error {
	stateSize, probes := 4096, 400
	if o.Quick {
		stateSize, probes = 1024, 100
	}
	cfg := bitindex.NewConfig(5, 3, 4)
	r, err := CostModel(stateSize, probes, cfg, 7)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Eq. 1 cost model vs measurement — %v, %d stored tuples ==\n", r.Config, r.States)
	fmt.Fprintf(w, "%-9s %14s %14s %14s %14s %8s\n",
		"pattern", "pred.buckets", "meas.buckets", "pred.tuples", "meas.tuples", "err%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9s %14.1f %14.1f %14.1f %14.1f %7.1f%%\n",
			row.Pattern.StringN(3), row.PredictedBuckets, row.MeasuredBuckets,
			row.PredictedTuples, row.MeasuredTuples, row.TupleErrorPercent)
	}
	fmt.Fprintln(w, "expected shape: bucket fan-out exact; tuple scans within sampling noise")
	return nil
}
