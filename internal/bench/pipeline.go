package bench

// Pipeline bench: the MEASURED wall-clock companion to the modeled shard
// bench. Where shard.go schedules a traced run under an idealized LPT model
// (reproducible on any machine, but a model), this file times the real
// pipeline: the deque work-stealing dispatch against the legacy
// shared-channel dispatch it replaced, on the same drift workload, with the
// digest of every measured configuration checked against the serial
// reference. BENCH_pipeline.json commits both kinds of rows side by side —
// "modeled/..." and "measured/..." entries in one github-action-benchmark
// compatible list — so the model-vs-reality gap is itself a tracked number.
//
// Honesty notes, in the artifact as fields rather than buried here:
//
//   - NumCPU/GOMAXPROCS are recorded per run. On a single-core host the
//     measured 8-worker and 1-worker configurations are the same machine
//     time-slicing, so the headline measured ratio is dispatch-layer
//     improvement (deque dispatch at W workers vs the legacy channel
//     dispatch at 1 worker — the seed's real configuration), NOT parallel
//     scaling. ScalingVs1W is reported separately and is expected to be
//     ~1x at NumCPU=1 and to approach the modeled speedup as cores appear.
//   - Every measured point is the median of Reps timed repetitions after
//     Warmup discarded ones, all in-process: this box's run-to-run noise is
//     ~±8%, well above the effects being compared.
//   - The probe COUNT varies a fraction of a percent between repetitions
//     (exploration draws are consumed in scheduling order); the result SET
//     does not, which is what the digests verify.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"amri/internal/pipeline"
)

// PipelineBenchOptions configure the measured sweep.
type PipelineBenchOptions struct {
	// Seed fixes the workload (default 1).
	Seed uint64
	// Ticks is the horizon (default 300; Quick shrinks to 60).
	Ticks int64
	// Shards is the index sharding degree of every measured configuration
	// (default 8).
	Shards int
	// Workers are the deque-dispatch pool sizes to measure (default 1, 2, 8).
	Workers []int
	// Reps is how many timed repetitions the median is taken over
	// (default 5; Quick halves it, min 3).
	Reps int
	// Warmup is how many untimed repetitions precede them (0 is valid —
	// profiling runs want it; the amribench flag defaults to 1).
	Warmup int
	// Quick shrinks the horizon ~5x and the rep count.
	Quick bool
}

func (o PipelineBenchOptions) fill() PipelineBenchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Ticks == 0 {
		o.Ticks = 300
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 8}
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	// Warmup 0 is meaningful (profiling runs); the CLI owns the default of 1.
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Quick {
		o.Ticks /= 5
		if o.Reps > 3 {
			o.Reps = 3
		}
	}
	return o
}

// PipelinePoint is one measured configuration.
type PipelinePoint struct {
	// Dispatch is "deque" (the work-stealing dispatch) or "legacy" (the
	// shared-channel dispatch it replaced).
	Dispatch string `json:"dispatch"`
	Workers  int    `json:"workers"`
	// TuplesPerSec and ProbesPerSec are medians over the timed reps.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	ProbesPerSec float64 `json:"probes_per_sec"`
	WallMS       float64 `json:"wall_ms_median"`
	// RepTuplesPerSec is every timed rep, slowest first — the artifact
	// shows its own spread.
	RepTuplesPerSec []float64 `json:"rep_tuples_per_sec"`
	Digest          string    `json:"digest"`
	Match           bool      `json:"digest_matches_serial"`
	// SpeedupVsLegacy1W is this point over the measured legacy 1-worker
	// baseline — the dispatch-layer headline.
	SpeedupVsLegacy1W float64 `json:"speedup_vs_legacy_1w"`
	// ScalingVs1W is this point over the same dispatch's 1-worker point —
	// actual parallel scaling, honest about NumCPU.
	ScalingVs1W float64 `json:"scaling_vs_1w"`
}

// BenchEntry is one github-action-benchmark data point
// (customBiggerIsBetter format: name/unit/value, free-form extra).
type BenchEntry struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	Extra string  `json:"extra,omitempty"`
}

// PipelineBenchResult is the committed BENCH_pipeline.json payload. Entries
// is the github-action-benchmark consumable list (`jq .entries` in CI);
// the structured fields around it are what the bench gate compares.
type PipelineBenchResult struct {
	Schema     string        `json:"schema"`
	Workload   ShardWorkload `json:"workload"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Warmup     int           `json:"warmup"`

	SerialDigest string             `json:"serial_digest"`
	Measured     []PipelinePoint    `json:"measured"`
	Modeled      []ShardWorkerPoint `json:"modeled"`
	Entries      []BenchEntry       `json:"entries"`
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// measureOne times Warmup+Reps runs of one configuration and returns its
// point (speedups filled in by the caller).
func measureOne(o PipelineBenchOptions, dispatch string, workers int, ref string) (PipelinePoint, error) {
	pt := PipelinePoint{Dispatch: dispatch, Workers: workers}
	so := ShardBenchOptions{Seed: o.Seed, Ticks: o.Ticks, Shards: o.Shards}
	var walls, tps, pps []float64
	for rep := 0; rep < o.Warmup+o.Reps; rep++ {
		var d shardDigest
		cfg := so.pipelineConfig(workers, o.Shards, false)
		cfg.Ticks = o.Ticks
		cfg.OnResult = d.add
		if dispatch == "legacy" {
			cfg.LegacyDispatch = true
		}
		start := time.Now()
		res, err := pipeline.Run(cfg)
		if err != nil {
			return pt, fmt.Errorf("bench: pipeline %s/%dw rep %d: %w", dispatch, workers, rep, err)
		}
		wall := time.Since(start)
		pt.Digest = d.String()
		pt.Match = pt.Digest == ref
		if !pt.Match {
			return pt, fmt.Errorf("bench: pipeline %s/%dw rep %d: digest %s != serial %s",
				dispatch, workers, rep, pt.Digest, ref)
		}
		if rep < o.Warmup {
			continue
		}
		walls = append(walls, float64(wall.Microseconds())/1e3)
		tps = append(tps, float64(res.TuplesIngested)/wall.Seconds())
		pps = append(pps, float64(res.Probes)/wall.Seconds())
	}
	sort.Float64s(tps)
	pt.RepTuplesPerSec = tps
	pt.TuplesPerSec = median(tps)
	pt.ProbesPerSec = median(pps)
	pt.WallMS = median(walls)
	return pt, nil
}

// PipelineBench runs the measured sweep plus the modeled one, and packs
// both into github-action-benchmark entries.
func PipelineBench(o PipelineBenchOptions) (*PipelineBenchResult, error) {
	o = o.fill()

	// Serial reference: 1 worker, flat index — the same ground truth the
	// shard bench uses — with probe costs collected for the modeled rows.
	so := ShardBenchOptions{Seed: o.Seed, Ticks: o.Ticks, Shards: o.Shards}
	var ref shardDigest
	refCfg := so.pipelineConfig(1, 0, true)
	refCfg.Ticks = o.Ticks
	refCfg.OnResult = ref.add
	refRes, err := pipeline.Run(refCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: pipeline reference run: %w", err)
	}
	probes := 0
	for _, tick := range refRes.ProbeCosts {
		probes += len(tick)
	}
	out := &PipelineBenchResult{
		Schema: "entries: github-action-benchmark customBiggerIsBetter",
		Workload: ShardWorkload{
			Query:   "4-way equi-join, 60-tick window",
			Profile: "drift (Figure 6/7 workload)",
			Seed:    o.Seed,
			Ticks:   o.Ticks,
			Shards:  o.Shards,
			Tuples:  refRes.TuplesIngested,
			Probes:  probes,
			Results: refRes.Results,
		},
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Reps:         o.Reps,
		Warmup:       o.Warmup,
		SerialDigest: ref.String(),
	}

	// Modeled rows over the reference trace (the shard bench's model).
	for _, w := range o.Workers {
		out.Modeled = append(out.Modeled,
			modelWorkers(refRes.ProbeCosts, w, refRes.TuplesIngested, false))
	}
	if base := out.Modeled[0]; base.Workers == 1 && base.TuplesPerSec > 0 {
		for i := range out.Modeled {
			out.Modeled[i].Speedup = out.Modeled[i].TuplesPerSec / base.TuplesPerSec
		}
	}

	// Measured rows: the legacy dispatch baseline first (1 worker — the
	// seed's configuration — and the widest pool, showing the old path
	// does not scale), then the deque dispatch across the sweep.
	widest := o.Workers[len(o.Workers)-1]
	legacyWorkers := []int{1}
	if widest > 1 {
		legacyWorkers = append(legacyWorkers, widest)
	}
	for _, w := range legacyWorkers {
		pt, err := measureOne(o, "legacy", w, out.SerialDigest)
		if err != nil {
			return nil, err
		}
		out.Measured = append(out.Measured, pt)
	}
	for _, w := range o.Workers {
		pt, err := measureOne(o, "deque", w, out.SerialDigest)
		if err != nil {
			return nil, err
		}
		out.Measured = append(out.Measured, pt)
	}

	base1w := map[string]float64{}
	for _, pt := range out.Measured {
		if pt.Workers == 1 {
			base1w[pt.Dispatch] = pt.TuplesPerSec
		}
	}
	legacy1 := base1w["legacy"]
	for i := range out.Measured {
		pt := &out.Measured[i]
		if legacy1 > 0 {
			pt.SpeedupVsLegacy1W = pt.TuplesPerSec / legacy1
		}
		if b := base1w[pt.Dispatch]; b > 0 {
			pt.ScalingVs1W = pt.TuplesPerSec / b
		}
	}

	out.Entries = out.buildEntries()
	return out, nil
}

// buildEntries renders every modeled and measured row as one
// github-action-benchmark point.
func (r *PipelineBenchResult) buildEntries() []BenchEntry {
	var es []BenchEntry
	for _, p := range r.Modeled {
		es = append(es, BenchEntry{
			Name:  fmt.Sprintf("modeled/deque/workers=%d/tuples_per_sec", p.Workers),
			Unit:  "tuples/sec",
			Value: p.TuplesPerSec,
			Extra: fmt.Sprintf("LPT schedule over traced probe costs; speedup_vs_1w=%.2fx", p.Speedup),
		})
	}
	for _, p := range r.Measured {
		es = append(es, BenchEntry{
			Name:  fmt.Sprintf("measured/%s/workers=%d/tuples_per_sec", p.Dispatch, p.Workers),
			Unit:  "tuples/sec",
			Value: p.TuplesPerSec,
			Extra: fmt.Sprintf("median of %d reps, num_cpu=%d, vs_legacy_1w=%.2fx, scaling_vs_1w=%.2fx, digest=%s",
				r.Reps, r.NumCPU, p.SpeedupVsLegacy1W, p.ScalingVs1W, p.Digest),
		})
	}
	return es
}

// Point returns the measured point for one configuration, if present.
func (r *PipelineBenchResult) Point(dispatch string, workers int) *PipelinePoint {
	for i := range r.Measured {
		if r.Measured[i].Dispatch == dispatch && r.Measured[i].Workers == workers {
			return &r.Measured[i]
		}
	}
	return nil
}

// Check enforces the measured acceptance bars: every digest matched the
// serial reference, and the widest deque pool beat the legacy 1-worker
// baseline by at least minSpeedup. The speedup bar only applies on the
// dispatch-layer comparison — it is parallelism-independent, so it holds on
// a single-core runner too.
func (r *PipelineBenchResult) Check(minSpeedup float64) error {
	if len(r.Measured) == 0 {
		return fmt.Errorf("no measured points")
	}
	for _, p := range r.Measured {
		if !p.Match {
			return fmt.Errorf("digest mismatch at %s/%d workers: %s != serial %s",
				p.Dispatch, p.Workers, p.Digest, r.SerialDigest)
		}
	}
	widest := r.Measured[len(r.Measured)-1]
	if widest.SpeedupVsLegacy1W < minSpeedup {
		return fmt.Errorf("measured speedup at %s/%d workers is %.2fx vs legacy 1w, below the %.1fx bar",
			widest.Dispatch, widest.Workers, widest.SpeedupVsLegacy1W, minSpeedup)
	}
	return nil
}

// Gate compares a fresh result against a committed baseline: the fresh run
// must pass Check(minSpeedup), and the headline point must not have
// regressed by more than maxRegression (fractional, e.g. 0.10) relative to
// the committed value — AFTER normalizing for host parallelism: a baseline
// measured with more CPUs than the gating host would fail spuriously, so
// regression is only enforced when the committed NumCPU does not exceed the
// fresh one.
func (r *PipelineBenchResult) Gate(baseline *PipelineBenchResult, minSpeedup, maxRegression float64) error {
	if err := r.Check(minSpeedup); err != nil {
		return err
	}
	if baseline == nil {
		return nil
	}
	fresh := r.Measured[len(r.Measured)-1]
	committed := baseline.Point(fresh.Dispatch, fresh.Workers)
	if committed == nil {
		return fmt.Errorf("committed baseline has no %s/%d-worker point", fresh.Dispatch, fresh.Workers)
	}
	sameSetup := baseline.NumCPU <= r.NumCPU &&
		baseline.Workload.Ticks == r.Workload.Ticks &&
		baseline.Workload.Seed == r.Workload.Seed &&
		baseline.Workload.Shards == r.Workload.Shards
	if !sameSetup {
		// Different host parallelism or workload horizon: absolute
		// throughput is not comparable, but the dispatch-layer speedup
		// ratio (deque vs legacy on the SAME fresh run) still is. The
		// ratio compounds the noise of two fresh measurements, so it gets
		// double the allowance; Check's absolute minSpeedup floor above is
		// what actually bounds a real regression.
		if committed.SpeedupVsLegacy1W > 0 &&
			fresh.SpeedupVsLegacy1W < committed.SpeedupVsLegacy1W*(1-2*maxRegression) {
			return fmt.Errorf("measured speedup regressed: %.2fx vs committed %.2fx (-%.0f%% bar; setups differ, ratio compared)",
				fresh.SpeedupVsLegacy1W, committed.SpeedupVsLegacy1W, 2*maxRegression*100)
		}
		return nil
	}
	if fresh.TuplesPerSec < committed.TuplesPerSec*(1-maxRegression) {
		return fmt.Errorf("measured throughput regressed: %.0f tuples/sec vs committed %.0f (-%.0f%% bar)",
			fresh.TuplesPerSec, committed.TuplesPerSec, maxRegression*100)
	}
	return nil
}

// WriteJSON writes the result as indented JSON.
func (r *PipelineBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadPipelineBench parses a committed BENCH_pipeline.json.
func ReadPipelineBench(rd io.Reader) (*PipelineBenchResult, error) {
	var r PipelineBenchResult
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing pipeline baseline: %w", err)
	}
	return &r, nil
}

// Summary renders the human-readable table.
func (r *PipelineBenchResult) Summary(w io.Writer) {
	fmt.Fprintf(w, "pipeline bench: %s, seed %d, %d ticks, %d shards, num_cpu=%d, median of %d reps\n",
		r.Workload.Query, r.Workload.Seed, r.Workload.Ticks, r.Workload.Shards, r.NumCPU, r.Reps)
	fmt.Fprintf(w, "%8s %8s %14s %14s %10s %12s %12s  %s\n",
		"dispatch", "workers", "tuples/sec", "probes/sec", "wall ms", "vs leg 1w", "scaling", "digest")
	for _, p := range r.Measured {
		status := "MATCH"
		if !p.Match {
			status = "MISMATCH"
		}
		fmt.Fprintf(w, "%8s %8d %14.0f %14.0f %10.1f %11.2fx %11.2fx  %s (%s)\n",
			p.Dispatch, p.Workers, p.TuplesPerSec, p.ProbesPerSec, p.WallMS,
			p.SpeedupVsLegacy1W, p.ScalingVs1W, p.Digest, status)
	}
	fmt.Fprintf(w, "modeled (LPT over traced costs):")
	for _, p := range r.Modeled {
		fmt.Fprintf(w, "  %dw=%.2fx", p.Workers, p.Speedup)
	}
	fmt.Fprintln(w)
}
