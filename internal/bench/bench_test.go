package bench

import (
	"bytes"
	"strings"
	"testing"

	"amri/internal/bitindex"
	"amri/internal/engine"
	"amri/internal/stream"
)

// fastOptions keeps bench tests quick: tiny workload, short horizon.
func fastOptions() Options {
	run := engine.DefaultRunConfig()
	run.Profile = stream.Profile{
		LambdaD:      10,
		PayloadBytes: 40,
		EpochTicks:   40,
		Domains:      []uint64{8, 12, 18, 27, 40, 60},
	}
	run.MaxTicks = 150
	run.WarmupTicks = 30
	run.AssessInterval = 15
	run.CPUBudget = 30000
	run.MemCap = 0
	return Options{Run: run}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) < 8 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("fig7"); !ok {
		t.Fatal("fig7 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestQuickOptionShrinksHorizon(t *testing.T) {
	o := Options{Quick: true}
	run := o.runConfig()
	def := engine.DefaultRunConfig()
	if run.MaxTicks >= def.MaxTicks {
		t.Fatalf("quick horizon %d not shrunk from %d", run.MaxTicks, def.MaxTicks)
	}
	if run.WarmupTicks >= run.MaxTicks {
		t.Fatal("quick warmup exceeds horizon")
	}
}

func TestFig6ProducesAllMethods(t *testing.T) {
	r, err := Fig6(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"AMRI/SRIA", "AMRI/CSRIA", "AMRI/DIA", "AMRI/CDIA-random", "AMRI/CDIA-highest"} {
		if _, ok := r.Results[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
	// DIA and SRIA share a code base: identical results.
	if r.Results["AMRI/DIA"] != r.Results["AMRI/SRIA"] {
		t.Fatalf("DIA %f != SRIA %f", r.Results["AMRI/DIA"], r.Results["AMRI/SRIA"])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r, err := Table2(10000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CDIAConfig.Equal(bitindex.NewConfig(1, 1, 2)) {
		t.Fatalf("CDIA IC = %v, want IC[1,1,2]", r.CDIAConfig)
	}
	if !r.CSRIAConfig.Equal(bitindex.NewConfig(0, 1, 3)) {
		t.Fatalf("CSRIA IC = %v, want IC[0,1,3]", r.CSRIAConfig)
	}
	if len(r.CSRIAStats) != 5 {
		t.Fatalf("CSRIA reported %d patterns, want 5", len(r.CSRIAStats))
	}
	if len(r.CDIAStats) != 6 {
		t.Fatalf("CDIA reported %d patterns, want 6", len(r.CDIAStats))
	}
}

func TestCostModelPredictsMeasurement(t *testing.T) {
	cfg := bitindex.NewConfig(5, 3, 4)
	r, err := CostModel(4096, 200, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8 patterns", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MeasuredBuckets != row.PredictedBuckets {
			t.Errorf("%v: bucket fan-out %g != predicted %g",
				row.Pattern, row.MeasuredBuckets, row.PredictedBuckets)
		}
		// Tuple scans are stochastic; within 25% at this sample size.
		if row.PredictedTuples > 0 {
			rel := (row.MeasuredTuples - row.PredictedTuples) / row.PredictedTuples
			if rel < -0.25 || rel > 0.25 {
				t.Errorf("%v: tuples %g vs predicted %g (%.0f%% off)",
					row.Pattern, row.MeasuredTuples, row.PredictedTuples, 100*rel)
			}
		}
	}
}

func TestDirectoryAblationShape(t *testing.T) {
	rows, err := DirectoryAblation(1024, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Dense memory grows with bits; sparse stays bounded by occupancy.
	var dense6, dense18, sparse24, sparse64 int
	for _, r := range rows {
		switch {
		case r.Dense && r.TotalBits == 6:
			dense6 = r.MemBytes
		case r.Dense && r.TotalBits == 18:
			dense18 = r.MemBytes
		case !r.Dense && r.TotalBits == 24:
			sparse24 = r.MemBytes
		case !r.Dense && r.TotalBits == 64:
			sparse64 = r.MemBytes
		}
	}
	if dense18 <= dense6 {
		t.Fatal("dense memory should grow with bits")
	}
	if sparse64 > 2*sparse24 {
		t.Fatalf("sparse memory should track occupancy, got %d vs %d", sparse64, sparse24)
	}
}

func TestOptimizerAblationBounds(t *testing.T) {
	r, err := OptimizerAblation(150, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanRatio < 1 || r.MeanRatio > 1.1 {
		t.Fatalf("mean greedy/exhaustive ratio %g out of expected band", r.MeanRatio)
	}
	if r.GreedyFails > r.Instances/20 {
		t.Fatalf("greedy failed badly on %d/%d instances", r.GreedyFails, r.Instances)
	}
}

func TestExploreAblationRuns(t *testing.T) {
	rows, err := ExploreAblation(fastOptions(), []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Results == 0 && rows[1].Results == 0 {
		t.Fatal("no results in either configuration")
	}
}

func TestRunnersRenderReports(t *testing.T) {
	o := fastOptions()
	cases := []struct {
		run  func(Options, *bytes.Buffer) error
		want string
	}{
		{func(o Options, b *bytes.Buffer) error { return RunTable2(o, b) }, "Table II"},
		{func(o Options, b *bytes.Buffer) error { return RunCostModel(o, b) }, "cost model"},
		{func(o Options, b *bytes.Buffer) error { return RunOptimizerAblation(o, b) }, "greedy"},
		{func(o Options, b *bytes.Buffer) error { return RunDirectoryAblation(o, b) }, "dense"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		oo := o
		oo.Quick = true
		if err := c.run(oo, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(strings.ToLower(buf.String()), strings.ToLower(c.want)) {
			t.Errorf("report missing %q:\n%s", c.want, buf.String())
		}
	}
}

func TestFig7Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig7(fastOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Figure 7", "AMRI", "hash-7", "static-bitmap"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("fig7 report missing %q", frag)
		}
	}
}

func TestFig6HashRunsOnTinyWorkload(t *testing.T) {
	r, err := Fig6Hash(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 8 { // AMRI + hash-1..7
		t.Fatalf("contenders = %d", len(r.Results))
	}
	if r.AMRIResults == 0 {
		t.Fatal("AMRI reference produced nothing")
	}
}

func TestMigrationAblationModes(t *testing.T) {
	rows, err := MigrationAblation(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("modes = %d, want 5 (incl. bursty variants)", len(rows))
	}
	for _, r := range rows {
		if r.Results == 0 {
			t.Fatalf("mode %s produced nothing", r.Mode)
		}
	}
}

func TestWindowAblationPolicies(t *testing.T) {
	rows, err := WindowAblation(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("policies = %d", len(rows))
	}
}

func TestContentAblationCells(t *testing.T) {
	rows, err := ContentAblation(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("cells = %d", len(rows))
	}
}

func TestTopologyExperimentCells(t *testing.T) {
	rows, err := TopologyExperiment(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("cells = %d", len(rows))
	}
	for _, r := range rows {
		if r.Results == 0 {
			t.Fatalf("%s/%s produced nothing", r.Topology, r.System)
		}
	}
}

func TestMultiQueryExperiment(t *testing.T) {
	r, err := MultiQuery(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemSavingPercent <= 0 {
		t.Fatalf("sharing saved nothing: %+v", r)
	}
	for q := range r.SharedResults {
		if r.SharedResults[q] != r.DedicatedResults[q] {
			t.Fatalf("query %d results diverge", q)
		}
	}
}
