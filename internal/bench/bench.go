// Package bench regenerates the paper's tables and figures: each experiment
// runs the relevant contenders over the synthetic workload and prints the
// same rows/series the paper reports, plus the headline ratios (who wins,
// by what factor, who dies when). cmd/amribench exposes them on the command
// line; the root bench_test.go wires them into testing.B.
package bench

import (
	"fmt"
	"io"
	"sort"

	"amri/internal/engine"
	"amri/internal/metrics"
)

// Options control an experiment run.
type Options struct {
	// Run is the base workload/machine configuration; zero value means
	// engine.DefaultRunConfig().
	Run engine.RunConfig
	// Seeds are the workload seeds to average over (default {1}).
	Seeds []uint64
	// Quick shrinks the horizon (~1/5) for use inside testing.B loops.
	Quick bool
}

func (o Options) runConfig() engine.RunConfig {
	run := o.Run
	if run.MaxTicks == 0 {
		run = engine.DefaultRunConfig()
	}
	if o.Quick {
		run.MaxTicks /= 5
		if run.WarmupTicks >= run.MaxTicks {
			run.WarmupTicks = run.MaxTicks / 4
		}
	}
	return run
}

func (o Options) seeds() []uint64 {
	if len(o.Seeds) == 0 {
		return []uint64{1}
	}
	return o.Seeds
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the flag value ("fig6", "table2", ...).
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment and writes its report.
	Run func(o Options, w io.Writer) error
}

// Registry lists every experiment in a stable order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig6", Title: "Figure 6: index assessment methods (SRIA, CSRIA, DIA, CDIA)", Run: RunFig6},
		{ID: "fig6hash", Title: "Figure 6: state-of-the-art multi-hash-index AMR states (k=1..7)", Run: RunFig6Hash},
		{ID: "fig7", Title: "Figure 7: AMRI vs best hash configuration vs non-adapting bitmap", Run: RunFig7},
		{ID: "table2", Title: "Table II: CSRIA vs CDIA worked example and tuned ICs", Run: RunTable2},
		{ID: "costmodel", Title: "Table I / Eq. 1: cost model predictions vs measured index work", Run: RunCostModel},
		{ID: "abl-dir", Title: "Ablation A1: dense vs sparse directory across bit budgets", Run: RunDirectoryAblation},
		{ID: "abl-opt", Title: "Ablation A2: greedy vs exhaustive bit allocation", Run: RunOptimizerAblation},
		{ID: "abl-explore", Title: "Ablation A3: router exploration rate vs throughput", Run: RunExploreAblation},
		{ID: "abl-mig", Title: "Ablation A4: stop-the-world vs incremental index migration", Run: RunMigrationAblation},
		{ID: "abl-window", Title: "Ablation A5: assessment window policy (reset vs cumulative)", Run: RunWindowAblation},
		{ID: "abl-content", Title: "Ablation A6: aggregate vs content-based routing", Run: RunContentAblation},
		{ID: "abl-budget", Title: "Ablation A7: fixed vs adaptive IC bit budget", Run: RunBudgetAblation},
		{ID: "multiquery", Title: "Extension: multiple SPJ queries over shared AMRI states", Run: RunMultiQuery},
		{ID: "topology", Title: "Extension: join topologies (clique, chain, star)", Run: RunTopologyExperiment},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// comparison runs a set of systems over the options' seeds and returns the
// per-system mean results plus the individual runs.
type comparison struct {
	systems []engine.System
	totals  map[string]float64 // mean cumulative results
	endTick map[string]float64 // mean end tick
	ooms    map[string]int     // runs that died of memory
	runs    map[string][]*runRecord
}

type runRecord struct {
	seed uint64
	res  *metrics.RunResult
}

func compare(o Options, systems []engine.System) (*comparison, error) {
	c := &comparison{
		systems: systems,
		totals:  map[string]float64{},
		endTick: map[string]float64{},
		ooms:    map[string]int{},
		runs:    map[string][]*runRecord{},
	}
	for _, sys := range systems {
		for _, seed := range o.seeds() {
			run := o.runConfig()
			run.Seed = seed
			e, err := engine.New(run, sys)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", sys.Name, err)
			}
			r := e.Run()
			c.totals[sys.Name] += float64(r.TotalResults)
			c.endTick[sys.Name] += float64(r.EndTick)
			if r.End == metrics.EndOOM {
				c.ooms[sys.Name]++
			}
			c.runs[sys.Name] = append(c.runs[sys.Name], &runRecord{seed: seed, res: r})
		}
		n := float64(len(o.seeds()))
		c.totals[sys.Name] /= n
		c.endTick[sys.Name] /= n
	}
	return c, nil
}

// best returns the system (among names) with the highest mean results.
func (c *comparison) best(names []string) string {
	sort.Strings(names)
	bestName, bestVal := "", -1.0
	for _, n := range names {
		if c.totals[n] > bestVal {
			bestName, bestVal = n, c.totals[n]
		}
	}
	return bestName
}

// gain returns the percentage by which a's mean results exceed b's.
func (c *comparison) gain(a, b string) float64 {
	if c.totals[b] == 0 {
		return 0
	}
	return 100 * (c.totals[a] - c.totals[b]) / c.totals[b]
}
