package bench

// Contention bench: the measured A/B behind BENCH_contention.json. Unlike
// the shard bench, which models throughput in deterministic cost units,
// this one measures a quantity the runtime meters exactly: mutex wait
// cycles from the contention profile (runtime.SetMutexProfileFraction(1) +
// runtime.MutexProfile). The same workload runs twice at full fan-out —
// once with Config.HeldLockProbes (the pre-epoch baseline that takes the
// operator lock around every sharded probe) and once on the default
// lock-free epoch probe path — and the report compares wait cycles
// attributed to operator-lock frames (amri/internal/pipeline.(*operator)).
//
// Why this is robust enough to commit: the profile counts cycles
// goroutines spent BLOCKED on a sync primitive, attributed at the
// contended Unlock, and both runs share one process, one profile fraction
// and one seed, so the comparison is cycles to cycles on identical work
// (the digest equality in Check proves the work identical). The fault plan
// drives the contention: seeded MemoryPressure events make shed
// assessments hold the operator write lock for Plan.AssessCost — the
// reclamation stall — while probes are in flight. That convoy is real
// blocking on any core count, including the single-CPU runner case where
// short uncontended critical sections never overlap at all: the stalled
// writer parks, the scheduler runs the probe workers, and in the held-lock
// mode every one of them parks behind the write lock and is metered. The
// epoch probe path never touches the lock, so its probes sail past the
// same stalls — exactly the pathology the tentpole removed.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"amri/internal/core"
	"amri/internal/fault"
	"amri/internal/pipeline"
)

// ContentionOptions size the A/B measurement.
type ContentionOptions struct {
	// Seed fixes the workload and the fault schedule (default 23).
	Seed uint64
	// Ticks is the horizon (default 300).
	Ticks int64
	// Workers is the probe pool width (default 8 — the acceptance point).
	Workers int
	// Shards is the index sharding degree (default 8). Must be > 0: with a
	// flat index both modes take the same exclusive lock and the A/B is
	// vacuous.
	Shards int
	// PressureRate is the seeded MemoryPressure probability that forces
	// shed assessments (operator write locks) into the probe phase
	// (default 0.002).
	PressureRate float64
	// AssessCost is the simulated reclamation stall each shed assessment
	// holds the operator write lock for (default 150µs). Without it a
	// single-CPU runner never parks a goroutine inside the short critical
	// sections and the profile records nothing; with it the baseline's
	// probe convoy behind the stalled writer is real blocking on any core
	// count.
	AssessCost time.Duration
}

func (o ContentionOptions) fill() ContentionOptions {
	if o.Seed == 0 {
		o.Seed = 23
	}
	if o.Ticks == 0 {
		o.Ticks = 300
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.PressureRate == 0 {
		o.PressureRate = 0.002
	}
	if o.AssessCost == 0 {
		o.AssessCost = 150 * time.Microsecond
	}
	return o
}

func (o ContentionOptions) config(heldLock bool) pipeline.Config {
	return pipeline.Config{
		Seed:           o.Seed,
		Ticks:          o.Ticks,
		Method:         core.MethodCDIAHighest,
		AutoTuneEvery:  2000,
		Explore:        0.1,
		MailboxCap:     64,
		ShedPolicy:     pipeline.PolicyBlock,
		ProbeWorkers:   o.Workers,
		Shards:         o.Shards,
		HeldLockProbes: heldLock,
		Fault: fault.Plan{
			Seed:         o.Seed,
			PressureRate: o.PressureRate,
			AssessCost:   o.AssessCost,
		},
	}
}

// ContentionSample is one mode's measurement.
type ContentionSample struct {
	Mode string `json:"mode"`
	// OperatorWaitCycles is the contention-profile cycle delta over stacks
	// passing through amri/internal/pipeline.(*operator) — the operator
	// lock by construction, since every o.mu site is an operator method.
	OperatorWaitCycles int64 `json:"operator_lock_wait_cycles"`
	// OperatorWaitEvents is the matching contended-event count.
	OperatorWaitEvents int64 `json:"operator_lock_wait_events"`
	// ModuleWaitCycles widens the filter to any amri frame (mailboxes,
	// router, index stripes) for context; the bars compare only the
	// operator numbers.
	ModuleWaitCycles int64 `json:"module_wait_cycles"`
	// Digest fingerprints the result set; both modes must agree.
	Digest  string `json:"digest"`
	Results uint64 `json:"results"`
	// WallMS is advisory only: scheduler noise on shared runners makes it
	// unfit for a bar, unlike the blocked-cycle counts.
	WallMS float64 `json:"wall_ms_advisory"`
}

// ContentionResult is the committed BENCH_contention.json payload.
type ContentionResult struct {
	Workers      int              `json:"workers"`
	Shards       int              `json:"shards"`
	Ticks        int64            `json:"ticks"`
	Seed         uint64           `json:"seed"`
	PressureRate float64          `json:"pressure_rate"`
	AssessCostUS float64          `json:"assess_cost_us"`
	HeldLock     ContentionSample `json:"held_lock_baseline"`
	Epoch        ContentionSample `json:"epoch_probes"`
	// Reduction is 1 - epoch/baseline over operator wait cycles.
	Reduction float64 `json:"operator_lock_cycle_reduction"`
	Note      string  `json:"note"`
}

// amriMutexWait reads the cumulative mutex-contention profile and sums
// wait cycles over stacks that pass through this module, separating
// operator-lock frames. Cycles are cputicks exactly as runtime.MutexProfile
// reports them; every bar compares cycles to cycles within one process, so
// the tick rate never matters. Callers take before/after snapshots — the
// profile is cumulative — and must have the profile fraction set first.
func amriMutexWait() (opCycles, opEvents, modCycles int64) {
	var recs []runtime.BlockProfileRecord
	n, _ := runtime.MutexProfile(nil)
	for {
		recs = make([]runtime.BlockProfileRecord, n+64)
		var ok bool
		n, ok = runtime.MutexProfile(recs)
		if ok {
			recs = recs[:n]
			break
		}
	}
	for _, r := range recs {
		var inModule, inOperator bool
		frames := runtime.CallersFrames(r.Stack())
		for {
			f, more := frames.Next()
			if strings.HasPrefix(f.Function, "amri/") {
				inModule = true
				if strings.Contains(f.Function, "pipeline.(*operator)") {
					inOperator = true
				}
			}
			if !more {
				break
			}
		}
		if inModule {
			modCycles += r.Cycles
		}
		if inOperator {
			opCycles += r.Cycles
			opEvents += r.Count
		}
	}
	return opCycles, opEvents, modCycles
}

// runContention executes one measured pipeline run and returns the
// profile deltas it induced.
func runContention(mode string, cfg pipeline.Config) (ContentionSample, error) {
	var d shardDigest
	cfg.OnResult = d.add
	runtime.GC() // keep GC assists out of the measured window where possible
	opC0, opE0, modC0 := amriMutexWait()
	start := time.Now()
	res, err := pipeline.Run(cfg)
	wall := time.Since(start)
	opC1, opE1, modC1 := amriMutexWait()
	if err != nil {
		return ContentionSample{}, fmt.Errorf("bench: contention %s run: %w", mode, err)
	}
	return ContentionSample{
		Mode:               mode,
		OperatorWaitCycles: opC1 - opC0,
		OperatorWaitEvents: opE1 - opE0,
		ModuleWaitCycles:   modC1 - modC0,
		Digest:             d.String(),
		Results:            res.Results,
		WallMS:             float64(wall.Microseconds()) / 1e3,
	}, nil
}

// ContentionBench runs the held-lock baseline and the epoch path under the
// mutex-contention profile and reports the operator-lock wait-cycle A/B.
func ContentionBench(o ContentionOptions) (*ContentionResult, error) {
	o = o.fill()
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	// Unmeasured warm-up run so first-touch costs (page faults, cache
	// build-out, scheduler ramp) land outside both measured windows.
	warm := o.config(false)
	warm.Ticks = o.Ticks / 4
	if warm.Ticks < 10 {
		warm.Ticks = 10
	}
	if _, err := pipeline.Run(warm); err != nil {
		return nil, fmt.Errorf("bench: contention warm-up run: %w", err)
	}

	held, err := runContention("held-lock probes (HeldLockProbes baseline)", o.config(true))
	if err != nil {
		return nil, err
	}
	epoch, err := runContention("epoch probes (default)", o.config(false))
	if err != nil {
		return nil, err
	}

	r := &ContentionResult{
		Workers:      o.Workers,
		Shards:       o.Shards,
		Ticks:        o.Ticks,
		Seed:         o.Seed,
		PressureRate: o.PressureRate,
		AssessCostUS: float64(o.AssessCost.Nanoseconds()) / 1e3,
		HeldLock:     held,
		Epoch:        epoch,
		Note: "wait cycles from runtime.MutexProfile at fraction 1, delta over one run, " +
			"filtered to stacks through amri/internal/pipeline.(*operator); identical seeded " +
			"workload both modes (digests must match)",
	}
	if held.OperatorWaitCycles > 0 {
		r.Reduction = 1 - float64(epoch.OperatorWaitCycles)/float64(held.OperatorWaitCycles)
	}
	return r, nil
}

// WriteJSON writes the result as indented JSON.
func (r *ContentionResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check enforces the committed artifact's bars: both modes did the same
// work (digest and result-count equality — otherwise the cycle comparison
// is meaningless), the baseline actually exhibited operator-lock
// contention (a zero baseline means the workload failed to drive the lock
// and proves nothing), and the epoch path cut the operator-lock wait
// cycles by at least minReduction.
func (r *ContentionResult) Check(minReduction float64) error {
	if r.HeldLock.Digest != r.Epoch.Digest || r.HeldLock.Results != r.Epoch.Results {
		return fmt.Errorf("modes diverged: held-lock %s (%d results) vs epoch %s (%d results)",
			r.HeldLock.Digest, r.HeldLock.Results, r.Epoch.Digest, r.Epoch.Results)
	}
	if r.HeldLock.OperatorWaitCycles <= 0 {
		return fmt.Errorf("held-lock baseline recorded no operator-lock contention; workload did not drive the lock")
	}
	if r.Reduction < minReduction {
		return fmt.Errorf("operator-lock wait cycles reduced %.1f%% (held-lock %d -> epoch %d), below the %.0f%% bar",
			r.Reduction*100, r.HeldLock.OperatorWaitCycles, r.Epoch.OperatorWaitCycles, minReduction*100)
	}
	return nil
}

// Summary renders the human-readable comparison.
func (r *ContentionResult) Summary(w io.Writer) {
	fmt.Fprintf(w, "contention bench: %d workers x %d shards, %d ticks, seed %d, pressure %.3g @ %.0fus stalls\n",
		r.Workers, r.Shards, r.Ticks, r.Seed, r.PressureRate, r.AssessCostUS)
	for _, s := range []ContentionSample{r.HeldLock, r.Epoch} {
		fmt.Fprintf(w, "%-45s op-lock wait %12d cycles (%d events), module %12d, %d results, %.1fms\n",
			s.Mode, s.OperatorWaitCycles, s.OperatorWaitEvents, s.ModuleWaitCycles, s.Results, s.WallMS)
	}
	fmt.Fprintf(w, "operator-lock wait-cycle reduction: %.1f%%\n", r.Reduction*100)
}
