package bench

import (
	"fmt"
	"io"

	"amri/internal/assess"
	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/hh"
	"amri/internal/query"
	"amri/internal/tuner"
)

// Table2Mix is the exact access-pattern workload of the paper's Table II.
var Table2Mix = []struct {
	P       query.Pattern
	Percent int
}{
	{query.PatternOf(0), 4},        // <A,*,*>
	{query.PatternOf(1), 10},       // <*,B,*>
	{query.PatternOf(2), 10},       // <*,*,C>
	{query.PatternOf(0, 1), 4},     // <A,B,*>
	{query.PatternOf(0, 2), 16},    // <A,*,C>
	{query.PatternOf(1, 2), 10},    // <*,B,C>
	{query.PatternOf(0, 1, 2), 46}, // <A,B,C>
}

// Table2Result is the regenerated worked example.
type Table2Result struct {
	// CSRIAStats / CDIAStats are the frequencies each method reports at
	// θ=5%, ε=0.1% over the Table II workload.
	CSRIAStats []cost.APStat
	CDIAStats  []cost.APStat
	// CSRIAConfig / CDIAConfig are the 4-bit ICs tuned from those stats.
	// The paper: CSRIA lands on {B:1,C:3}; CDIA finds the true optimum
	// {A:1,B:1,C:2}.
	CSRIAConfig bitindex.Config
	CDIAConfig  bitindex.Config
}

// Table2 replays the Table II workload through CSRIA and CDIA (random
// combination, as in the paper's Figure 5 walk-through) and tunes a 4-bit
// index configuration from each method's report.
func Table2(requests int) (*Table2Result, error) {
	const theta, epsilon = 0.05, 0.001
	cs, err := assess.NewCSRIA(epsilon)
	if err != nil {
		return nil, err
	}
	cd, err := assess.NewCDIA(3, epsilon, hh.RollupRandom, 1)
	if err != nil {
		return nil, err
	}
	rounds := requests / 100
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for _, m := range Table2Mix {
			for i := 0; i < m.Percent; i++ {
				cs.Observe(m.P)
				cd.Observe(m.P)
			}
		}
	}

	out := &Table2Result{
		CSRIAStats: cs.Results(theta),
		CDIAStats:  cd.Results(theta),
	}
	// The discussion examples weigh configurations by scan cost; cheap
	// hashing keeps the hash terms from tie-breaking the allocation.
	params := cost.Params{LambdaD: 100, LambdaR: 100, Ch: 0.001, Cc: 1, Window: 60}
	opt := tuner.Options{RequireFullBudget: true}
	out.CSRIAConfig, _, err = tuner.Exhaustive(3, 4, params, out.CSRIAStats, opt)
	if err != nil {
		return nil, err
	}
	out.CDIAConfig, _, err = tuner.Exhaustive(3, 4, params, out.CDIAStats, opt)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunTable2 regenerates the Table II worked example.
func RunTable2(o Options, w io.Writer) error {
	requests := 10000
	if o.Quick {
		requests = 1000
	}
	r, err := Table2(requests)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table II — worked example (θ=5%, ε=0.1%, 4-bit IC) ==")
	fmt.Fprintln(w, "workload:")
	for _, m := range Table2Mix {
		fmt.Fprintf(w, "  %-9s %3d%%\n", m.P.StringN(3), m.Percent)
	}
	printStats := func(name string, stats []cost.APStat) {
		fmt.Fprintf(w, "%s reports:\n", name)
		for _, s := range stats {
			fmt.Fprintf(w, "  %-9s %5.1f%%\n", s.P.StringN(3), 100*s.Freq)
		}
	}
	printStats("CSRIA", r.CSRIAStats)
	printStats("CDIA (random combination)", r.CDIAStats)
	fmt.Fprintf(w, "CSRIA-tuned IC: %v   (paper: IC[0,1,3] — B:1 bit, C:3 bits)\n", r.CSRIAConfig)
	fmt.Fprintf(w, "CDIA-tuned IC:  %v   (paper: IC[1,1,2] — the true optimum)\n", r.CDIAConfig)
	return nil
}
