package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"amri/internal/pipeline"
)

// contentionOut enables the artifact writer: `make bench-contention` runs
// TestWriteContentionArtifact with this flag pointed at the repo root's
// BENCH_contention.json.
var contentionOut = flag.String("contention-out", "",
	"write the full-scale contention artifact to this path and enforce its bars")

// TestContentionBenchQuick exercises the measurement machinery at test
// scale: both modes must run, do identical work, and produce a
// round-trippable report. It deliberately does NOT assert a contention
// reduction — at 60 ticks on an arbitrary CI runner the baseline may
// sample too few contended events for a ratio to be meaningful; the
// committed artifact (full scale, Check-enforced) owns that bar.
func TestContentionBenchQuick(t *testing.T) {
	r, err := ContentionBench(ContentionOptions{Ticks: 60, Workers: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.HeldLock.Digest != r.Epoch.Digest || r.HeldLock.Results != r.Epoch.Results {
		t.Fatalf("modes diverged: held-lock %s (%d) vs epoch %s (%d)",
			r.HeldLock.Digest, r.HeldLock.Results, r.Epoch.Digest, r.Epoch.Results)
	}
	if r.HeldLock.Results == 0 {
		t.Fatal("no results produced; workload broken")
	}
	if r.HeldLock.OperatorWaitCycles < 0 || r.Epoch.OperatorWaitCycles < 0 {
		t.Fatalf("negative wait-cycle delta: held-lock %d, epoch %d",
			r.HeldLock.OperatorWaitCycles, r.Epoch.OperatorWaitCycles)
	}
	t.Logf("op-lock wait cycles: held-lock %d (%d events) vs epoch %d (%d events)",
		r.HeldLock.OperatorWaitCycles, r.HeldLock.OperatorWaitEvents,
		r.Epoch.OperatorWaitCycles, r.Epoch.OperatorWaitEvents)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ContentionResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.HeldLock.OperatorWaitCycles != r.HeldLock.OperatorWaitCycles {
		t.Fatalf("round-trip lost cycles: %d != %d",
			back.HeldLock.OperatorWaitCycles, r.HeldLock.OperatorWaitCycles)
	}
}

// TestWriteContentionArtifact regenerates BENCH_contention.json at full
// scale (8 workers x 8 shards) and enforces the acceptance bars via Check.
// Gated behind -contention-out so `go test ./...` stays fast.
func TestWriteContentionArtifact(t *testing.T) {
	if *contentionOut == "" {
		t.Skip("artifact regeneration only: run via `make bench-contention`")
	}
	r, err := ContentionBench(ContentionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(0.5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(*contentionOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Summary(&buf)
	t.Log("\n" + buf.String())
}

// benchProbePath is the shared body of the two probe-path benchmarks: one
// seeded pipeline run per iteration under the contention profile, with the
// operator-lock wait cycles reported per op alongside wall time.
func benchProbePath(b *testing.B, heldLock bool) {
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	opts := ContentionOptions{Ticks: 60, Workers: 8, Shards: 8}.fill()
	cfg := opts.config(heldLock)
	opC0, _, _ := amriMutexWait()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	opC1, _, _ := amriMutexWait()
	b.ReportMetric(float64(opC1-opC0)/float64(b.N), "oplock-wait-cycles/op")
}

func BenchmarkProbePathHeldLock(b *testing.B) { benchProbePath(b, true) }

func BenchmarkProbePathEpoch(b *testing.B) { benchProbePath(b, false) }
