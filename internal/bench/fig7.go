package bench

import (
	"fmt"
	"io"

	"amri/internal/engine"
	"amri/internal/metrics"
)

// Fig7Result is the head-to-head of the paper's Figure 7.
type Fig7Result struct {
	AMRI, BestHash, StaticBitmap float64
	// GainOverHash is the paper's +93% analogue, GainOverBitmap the +75%.
	GainOverHash   float64
	GainOverBitmap float64
	// BitmapDied reports whether the non-adapting bitmap hit the memory
	// cap (the paper: after 15.5 of 30 minutes).
	BitmapDied   bool
	BitmapEnd    float64
	BestHashName string
	runs         []*metrics.RunResult
}

// Runs returns the seed-1 run series per contender (for CSV export).
func (r *Fig7Result) Runs() []*metrics.RunResult { return r.runs }

// Fig7 runs AMRI (CDIA-highest) against the best hash configuration and the
// non-adapting bitmap index, all started from the same warmup protocol.
func Fig7(o Options) (*Fig7Result, error) {
	// The paper picks the best hash configuration from the Figure 6 sweep;
	// k=7 (every pattern indexed) is the strongest at probe time and is
	// what "best hash configuration" converges to here. A full sweep is
	// available via Fig6Hash; this keeps the head-to-head affordable.
	systems := []engine.System{
		engine.AMRI(engine.AssessCDIAHighest),
		engine.HashSystem(7),
		engine.StaticBitmap(),
	}
	c, err := compare(o, systems)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{
		AMRI:         c.totals["AMRI/CDIA-highest"],
		BestHash:     c.totals["hash-7"],
		StaticBitmap: c.totals["static-bitmap"],
		BestHashName: "hash-7",
	}
	out.GainOverHash = c.gain("AMRI/CDIA-highest", "hash-7")
	out.GainOverBitmap = c.gain("AMRI/CDIA-highest", "static-bitmap")
	out.BitmapDied = c.ooms["static-bitmap"] == len(o.seeds())
	out.BitmapEnd = c.endTick["static-bitmap"]
	for _, sys := range systems {
		out.runs = append(out.runs, c.runs[sys.Name][0].res)
	}
	return out, nil
}

// RunFig7 regenerates Figure 7.
func RunFig7(o Options, w io.Writer) error {
	r, err := Fig7(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 7 — AMRI vs best hash configuration vs non-adapting bitmap ==")
	fmt.Fprintln(w, metrics.Table(r.runs))
	fmt.Fprintln(w, metrics.Chart(r.runs, 72, 14))
	fmt.Fprintf(w, "AMRI vs best hash (%s):     %+.1f%%   (paper: +93%%)\n", r.BestHashName, r.GainOverHash)
	fmt.Fprintf(w, "AMRI vs non-adapting bitmap: %+.1f%%   (paper: +75%%)\n", r.GainOverBitmap)
	if r.BitmapDied {
		fmt.Fprintf(w, "non-adapting bitmap ran out of memory at tick %.0f (paper: 15.5 of 30 min)\n", r.BitmapEnd)
	}
	return nil
}
