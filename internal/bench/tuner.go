package bench

// Tuner bench: the retune-under-load companion to the dispatch bench. Two
// kinds of rows land in BENCH_tuner.json:
//
//   - "thrash/..." rows are DETERMINISTIC controller-level runs: the v1
//     gain-only policy against the v2 migration-cost-aware controller on a
//     synthetic oscillating access-pattern mix (the workload drift flips
//     which attribute is hot every assessment window). The v1 policy chases
//     the flip every window; the v2 controller adopts an index once and
//     then holds — cooldown, the flip-flop guard and drift-shrunken
//     amortization horizons each block a class of churn. These values are
//     exact and machine-independent.
//
//   - "measured/..." rows time the real pipeline on the drift workload
//     with aggressive live tuning, sampling per-tick wall latency through
//     Config.OnTickEnd. The headline is p99 tick latency with v2 retuning
//     active versus the same run with tuning effectively off: retuning
//     under live traffic must not dent tail latency. Join-result digests
//     are checked across every policy — the tuner moves access structures,
//     never results.
//
// Honesty notes, mirrored in the artifact:
//
//   - The headline p99 is the BEST timed rep's p99 (every rep's p99 is
//     recorded alongside). On a small shared box, interference — another
//     process, GC of a neighbour, a scheduler hiccup — only ever adds
//     latency, so the fastest rep is the closest estimate of the intrinsic
//     tail; medians and pooled quantiles both let one contaminated rep
//     swing the ratio ±25% run to run. The acceptance ratio (MaxP99Ratio)
//     is still deliberately generous, and the thrash rows — which carry
//     the PR's actual claim — are exact counts.
//   - NumCPU/GOMAXPROCS are recorded; the gate only compares absolute
//     latencies against a baseline from a host with no more CPUs.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/pipeline"
	"amri/internal/query"
	"amri/internal/tuner"
)

// TunerBenchOptions configure the suite.
type TunerBenchOptions struct {
	// Seed fixes the workload (default 1).
	Seed uint64
	// Ticks is the measured horizon (default 300; Quick shrinks to 60).
	Ticks int64
	// Shards stripes every state's index so migrations drain incrementally
	// (default 8).
	Shards int
	// Workers sizes the probe pool (default 4).
	Workers int
	// AutoTuneEvery is the live-tuning cadence in probes for the tuning
	// policies (default 2000, the production cadence).
	AutoTuneEvery uint64
	// Reps / Warmup: timed and discarded repetitions (defaults 5 / CLI 1).
	Reps   int
	Warmup int
	// Quick shrinks the horizon ~5x and the rep count.
	Quick bool
}

func (o TunerBenchOptions) fill() TunerBenchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Ticks == 0 {
		o.Ticks = 300
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.AutoTuneEvery == 0 {
		o.AutoTuneEvery = 2000
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Quick {
		o.Ticks /= 5
		if o.Reps > 3 {
			o.Reps = 3
		}
	}
	return o
}

// TunerThrashPoint is one deterministic oscillation run.
type TunerThrashPoint struct {
	// Policy is "legacy" (v1 gain-only) or "v2" (migration-cost-aware).
	Policy string `json:"policy"`
	// Passes is how many tuning passes the oscillating mix drove.
	Passes int `json:"passes"`
	// Migrations counts adopted proposals; FlipFlops the migrations after
	// the first adoption — pure churn, since the mix only oscillates.
	Migrations int `json:"migrations"`
	FlipFlops  int `json:"flip_flops"`
	// Holds breaks down why the v2 controller kept the configuration.
	CooldownHolds int `json:"cooldown_holds"`
	FlipFlopHolds int `json:"flip_flop_holds"`
	Uneconomical  int `json:"uneconomical"`
}

// TunerLoadPoint is one measured pipeline configuration.
type TunerLoadPoint struct {
	// Policy is "notune" (tuning cadence beyond the horizon), "legacy"
	// (v1 controller) or "v2".
	Policy string `json:"policy"`
	// P99TickMicros / MeanTickMicros come from the best timed rep: on a
	// shared box interference is strictly additive, so the fastest rep is
	// the closest estimate of the intrinsic per-tick latency distribution.
	P99TickMicros  float64 `json:"p99_tick_us"`
	MeanTickMicros float64 `json:"mean_tick_us"`
	// RepP99Micros is every timed rep's own p99, sorted ascending (the
	// spread documents the interference the best-rep statistic sheds).
	RepP99Micros []float64 `json:"rep_p99_us"`
	// Retunes and the tuner counters come from the last timed rep (they
	// are identical across reps up to probe-scheduling noise).
	Retunes    int `json:"retunes"`
	TunerHolds int `json:"tuner_holds"`
	// PredictedMigCost / RealizedMigCost audit the what-if ledger end to
	// end on a live run.
	PredictedMigCost float64 `json:"predicted_mig_cost"`
	RealizedMigCost  float64 `json:"realized_mig_cost"`
	Digest           string  `json:"digest"`
	Match            bool    `json:"digest_matches_ref"`
}

// TunerBenchResult is the committed BENCH_tuner.json payload; Entries is
// the github-action-benchmark consumable list.
type TunerBenchResult struct {
	Schema     string        `json:"schema"`
	Workload   ShardWorkload `json:"workload"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Warmup     int           `json:"warmup"`

	RefDigest string             `json:"ref_digest"`
	Thrash    []TunerThrashPoint `json:"thrash"`
	Measured  []TunerLoadPoint   `json:"measured"`
	Entries   []BenchEntry       `json:"entries"`
}

// thrashRun drives one controller through an oscillating mix and counts
// what it does. The regime is probe-sparse (searches rare relative to the
// stored state), where chasing the oscillation costs more than it earns —
// exactly where the v1 policy thrashes.
func thrashRun(ctl *tuner.Controller, passes int) TunerThrashPoint {
	statsA := []cost.APStat{{P: query.PatternOf(0), Freq: 0.9}, {P: query.PatternOf(1), Freq: 0.1}}
	statsB := []cost.APStat{{P: query.PatternOf(1), Freq: 0.9}, {P: query.PatternOf(0), Freq: 0.1}}
	cur := bitindex.NewConfig(0, 0)
	pt := TunerThrashPoint{Passes: passes}
	for i := 0; i < passes; i++ {
		stats := statsA
		if i%2 == 1 {
			stats = statsB
		}
		pr, err := ctl.Propose(cur, stats, 8000)
		if err != nil {
			// Unreachable with these fixed inputs; surface loudly if the
			// optimizer ever starts rejecting them.
			panic(fmt.Sprintf("bench: thrash propose: %v", err))
		}
		if pr.Migrate() {
			if pt.Migrations > 0 {
				pt.FlipFlops++
			}
			pt.Migrations++
			cur = pr.To
			// The drain completes before the next assessment window.
			ctl.RecordDrain(8000, 16000, true)
		}
	}
	sum := ctl.Summary()
	pt.CooldownHolds = sum.CooldownHolds
	pt.FlipFlopHolds = sum.FlipFlopHolds
	pt.Uneconomical = sum.Uneconomical
	return pt
}

// thrashParams is the probe-sparse cost table the oscillation runs under.
func thrashParams() cost.Params {
	return cost.Params{LambdaD: 100, LambdaR: 0.1, Ch: 0.001, Cc: 1, Window: 60}
}

// measureTunerLoad times Warmup+Reps pipeline runs of one tuner policy,
// sampling per-tick wall latency.
func measureTunerLoad(o TunerBenchOptions, policy, ref string) (TunerLoadPoint, string, error) {
	pt := TunerLoadPoint{Policy: policy}
	so := ShardBenchOptions{Seed: o.Seed, Ticks: o.Ticks, Shards: o.Shards}
	var p99s, means []float64
	for rep := 0; rep < o.Warmup+o.Reps; rep++ {
		cfg := so.pipelineConfig(o.Workers, o.Shards, false)
		cfg.Ticks = o.Ticks
		cfg.AutoTuneEvery = o.AutoTuneEvery
		switch policy {
		case "notune":
			// Cadence past any plausible probe count: live tuning never
			// fires (AutoTuneEvery 0 means "default", not "off").
			cfg.AutoTuneEvery = 1 << 62
		case "legacy":
			cfg.LegacyTuner = true
		}
		var d shardDigest
		cfg.OnResult = d.add
		ticks := make([]float64, 0, o.Ticks)
		last := time.Now()
		cfg.OnTickEnd = func(int64) {
			now := time.Now()
			ticks = append(ticks, float64(now.Sub(last).Nanoseconds())/1e3)
			last = now
		}
		last = time.Now()
		res, err := pipeline.Run(cfg)
		if err != nil {
			return pt, "", fmt.Errorf("bench: tuner %s rep %d: %w", policy, rep, err)
		}
		pt.Digest = d.String()
		if ref == "" {
			ref = pt.Digest
		}
		pt.Match = pt.Digest == ref
		if !pt.Match {
			return pt, ref, fmt.Errorf("bench: tuner %s rep %d: digest %s != ref %s",
				policy, rep, pt.Digest, ref)
		}
		if rep < o.Warmup {
			continue
		}
		sort.Float64s(ticks)
		if len(ticks) > 0 {
			var sum float64
			for _, v := range ticks {
				sum += v
			}
			means = append(means, sum/float64(len(ticks)))
			p99s = append(p99s, ticks[int(0.99*float64(len(ticks)-1))])
		}
		pt.Retunes = res.Retunes
		pt.TunerHolds = res.Tuner.Holds()
		pt.PredictedMigCost = res.Tuner.PredictedMigCost
		pt.RealizedMigCost = res.Tuner.RealizedMigCost
	}
	sort.Float64s(p99s)
	sort.Float64s(means)
	pt.RepP99Micros = append([]float64(nil), p99s...)
	if len(p99s) > 0 {
		pt.P99TickMicros = p99s[0]
		pt.MeanTickMicros = means[0]
	}
	return pt, ref, nil
}

// TunerBench runs the deterministic thrash A/B plus the measured
// retune-under-load sweep.
func TunerBench(o TunerBenchOptions) (*TunerBenchResult, error) {
	o = o.fill()
	out := &TunerBenchResult{
		Schema: "entries: github-action-benchmark customBiggerIsBetter",
		Workload: ShardWorkload{
			Query:   "4-way equi-join, 60-tick window",
			Profile: "drift (Figure 6/7 workload)",
			Seed:    o.Seed,
			Ticks:   o.Ticks,
			Shards:  o.Shards,
		},
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       o.Reps,
		Warmup:     o.Warmup,
	}

	// Deterministic thrash A/B. The v2 knobs use the core's DriftSense
	// default (4) on a horizon of four assessment windows, with Cooldown 1
	// — one pass, half the oscillation period — so every hold past the
	// first is earned by economics or the flip-flop guard, not by waiting.
	const passes = 24
	p := thrashParams()
	legacy := &tuner.Controller{Params: p, Budget: 4, MinGain: 0.02, UseExhaustive: true}
	v2 := &tuner.Controller{Params: p, Budget: 4, MinGain: 0.02, UseExhaustive: true,
		Horizon: 40, DriftSense: 4, Cooldown: 1, DrainRate: 64}
	lp := thrashRun(legacy, passes)
	lp.Policy = "legacy"
	vp := thrashRun(v2, passes)
	vp.Policy = "v2"
	out.Thrash = []TunerThrashPoint{lp, vp}

	// Measured retune-under-load sweep. The notune run defines the digest
	// reference: tuner policy must never change the result set.
	ref := ""
	for _, policy := range []string{"notune", "legacy", "v2"} {
		pt, r, err := measureTunerLoad(o, policy, ref)
		if err != nil {
			return nil, err
		}
		ref = r
		out.Measured = append(out.Measured, pt)
	}
	out.RefDigest = ref

	out.Entries = out.buildEntries()
	return out, nil
}

// buildEntries renders every row as one github-action-benchmark point.
// Thrash counts are encoded as "clean passes" (passes without a flip-flop
// migration) so bigger stays better for the chart.
func (r *TunerBenchResult) buildEntries() []BenchEntry {
	var es []BenchEntry
	for _, t := range r.Thrash {
		es = append(es, BenchEntry{
			Name:  fmt.Sprintf("thrash/%s/clean_passes", t.Policy),
			Unit:  "passes",
			Value: float64(t.Passes - t.FlipFlops),
			Extra: fmt.Sprintf("migrations=%d flip_flops=%d holds: cooldown=%d flipflop=%d uneconomical=%d (deterministic)",
				t.Migrations, t.FlipFlops, t.CooldownHolds, t.FlipFlopHolds, t.Uneconomical),
		})
	}
	for _, m := range r.Measured {
		es = append(es, BenchEntry{
			Name:  fmt.Sprintf("measured/%s/ticks_per_sec_p99", m.Policy),
			Unit:  "ticks/sec",
			Value: ticksPerSec(m.P99TickMicros),
			Extra: fmt.Sprintf("p99_tick_us=%.0f mean_tick_us=%.0f retunes=%d holds=%d num_cpu=%d digest=%s",
				m.P99TickMicros, m.MeanTickMicros, m.Retunes, m.TunerHolds, r.NumCPU, m.Digest),
		})
	}
	return es
}

func ticksPerSec(tickMicros float64) float64 {
	if tickMicros <= 0 {
		return 0
	}
	return 1e6 / tickMicros
}

// Point returns the measured point for one policy, if present.
func (r *TunerBenchResult) Point(policy string) *TunerLoadPoint {
	for i := range r.Measured {
		if r.Measured[i].Policy == policy {
			return &r.Measured[i]
		}
	}
	return nil
}

// Check enforces the acceptance bars:
//
//   - the legacy policy thrashes on the oscillating mix (>= 2 flip-flop
//     migrations) and the v2 controller does not (exactly 0 after its
//     first adoption) — the PR's structural claim, on exact counts;
//   - every measured digest matched the reference (retuning never changes
//     the result set);
//   - under live traffic the v2 controller migrates at most 2/3 as often
//     as the legacy policy on the same drifting workload — enforced only
//     when legacy retuned >= 10 times, i.e. the horizon was long enough
//     for churn to accumulate (a quick run retunes a handful of times
//     before the first drift epoch, genuine adoptions both policies make);
//   - v2 retuning under load keeps p99 tick latency within maxP99Ratio of
//     the no-tuning run.
func (r *TunerBenchResult) Check(maxP99Ratio float64) error {
	var lp, vp *TunerThrashPoint
	for i := range r.Thrash {
		switch r.Thrash[i].Policy {
		case "legacy":
			lp = &r.Thrash[i]
		case "v2":
			vp = &r.Thrash[i]
		}
	}
	if lp == nil || vp == nil {
		return fmt.Errorf("thrash rows missing")
	}
	if lp.FlipFlops < 2 {
		return fmt.Errorf("legacy policy flip-flopped only %d times on the oscillating mix; the A/B baseline lost its thrash", lp.FlipFlops)
	}
	if vp.FlipFlops != 0 {
		return fmt.Errorf("v2 controller flip-flopped %d times on the oscillating mix, want 0", vp.FlipFlops)
	}
	for _, m := range r.Measured {
		if !m.Match {
			return fmt.Errorf("digest mismatch at policy %s: %s != ref %s", m.Policy, m.Digest, r.RefDigest)
		}
	}
	base, leg, v2 := r.Point("notune"), r.Point("legacy"), r.Point("v2")
	if base == nil || leg == nil || v2 == nil {
		return fmt.Errorf("measured rows missing")
	}
	if leg.Retunes >= 10 && float64(v2.Retunes) > float64(leg.Retunes)*2/3 {
		return fmt.Errorf("v2 migrated %d times vs legacy's %d on the drifting workload; cost-aware retuning lost its damping",
			v2.Retunes, leg.Retunes)
	}
	if base.P99TickMicros > 0 && v2.P99TickMicros > base.P99TickMicros*maxP99Ratio {
		return fmt.Errorf("v2 retuning dents p99 tick latency: %.0fus vs %.0fus without tuning (%.2fx > %.2fx bar)",
			v2.P99TickMicros, base.P99TickMicros, v2.P99TickMicros/base.P99TickMicros, maxP99Ratio)
	}
	return nil
}

// Gate compares a fresh result against the committed baseline: the fresh
// run must pass Check(maxP99Ratio), and v2 p99 tick latency must not have
// regressed by more than maxRegression relative to the committed value.
// Absolute latencies are only compared when the committed baseline came
// from a host with no more CPUs and the same workload shape; otherwise the
// tuning-on/tuning-off ratio is compared, with double the allowance (it
// compounds two fresh measurements' noise).
func (r *TunerBenchResult) Gate(baseline *TunerBenchResult, maxP99Ratio, maxRegression float64) error {
	if err := r.Check(maxP99Ratio); err != nil {
		return err
	}
	if baseline == nil {
		return nil
	}
	fresh := r.Point("v2")
	committed := baseline.Point("v2")
	if committed == nil {
		return fmt.Errorf("committed baseline has no v2 point")
	}
	sameSetup := baseline.NumCPU <= r.NumCPU &&
		baseline.Workload.Ticks == r.Workload.Ticks &&
		baseline.Workload.Seed == r.Workload.Seed &&
		baseline.Workload.Shards == r.Workload.Shards
	if !sameSetup {
		freshBase, commBase := r.Point("notune"), baseline.Point("notune")
		if freshBase == nil || commBase == nil || freshBase.P99TickMicros <= 0 || commBase.P99TickMicros <= 0 {
			return nil
		}
		freshRatio := fresh.P99TickMicros / freshBase.P99TickMicros
		commRatio := committed.P99TickMicros / commBase.P99TickMicros
		if commRatio > 0 && freshRatio > commRatio*(1+2*maxRegression) {
			return fmt.Errorf("v2/notune p99 ratio regressed: %.2fx vs committed %.2fx (+%.0f%% bar; setups differ, ratio compared)",
				freshRatio, commRatio, 2*maxRegression*100)
		}
		return nil
	}
	if fresh.P99TickMicros > committed.P99TickMicros*(1+maxRegression) {
		return fmt.Errorf("v2 p99 tick latency regressed: %.0fus vs committed %.0fus (+%.0f%% bar)",
			fresh.P99TickMicros, committed.P99TickMicros, maxRegression*100)
	}
	return nil
}

// WriteJSON writes the result as indented JSON.
func (r *TunerBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadTunerBench parses a committed BENCH_tuner.json.
func ReadTunerBench(rd io.Reader) (*TunerBenchResult, error) {
	var r TunerBenchResult
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing tuner baseline: %w", err)
	}
	return &r, nil
}

// Summary renders the human-readable table.
func (r *TunerBenchResult) Summary(w io.Writer) {
	fmt.Fprintf(w, "tuner bench: %s, seed %d, %d ticks, %d shards, num_cpu=%d, best of %d reps\n",
		r.Workload.Query, r.Workload.Seed, r.Workload.Ticks, r.Workload.Shards, r.NumCPU, r.Reps)
	fmt.Fprintf(w, "thrash (oscillating mix, %d passes, deterministic):\n", passesOf(r.Thrash))
	for _, t := range r.Thrash {
		fmt.Fprintf(w, "  %-7s migrations=%d flip_flops=%d holds: cooldown=%d flipflop=%d uneconomical=%d\n",
			t.Policy, t.Migrations, t.FlipFlops, t.CooldownHolds, t.FlipFlopHolds, t.Uneconomical)
	}
	fmt.Fprintf(w, "measured (per-tick wall latency under live traffic):\n")
	fmt.Fprintf(w, "  %-7s %12s %12s %8s %8s %10s %10s  %s\n",
		"policy", "p99 us", "mean us", "retunes", "holds", "predCost", "realCost", "digest")
	for _, m := range r.Measured {
		status := "MATCH"
		if !m.Match {
			status = "MISMATCH"
		}
		fmt.Fprintf(w, "  %-7s %12.0f %12.0f %8d %8d %10.0f %10.0f  %s (%s)\n",
			m.Policy, m.P99TickMicros, m.MeanTickMicros, m.Retunes, m.TunerHolds,
			m.PredictedMigCost, m.RealizedMigCost, m.Digest, status)
	}
}

func passesOf(ts []TunerThrashPoint) int {
	if len(ts) == 0 {
		return 0
	}
	return ts[0].Passes
}
