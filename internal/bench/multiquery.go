package bench

import (
	"fmt"
	"io"

	"amri/internal/multiquery"
	"amri/internal/stream"
)

// MultiQueryResult compares the shared-state design against dedicated
// per-query indexes on the packaged two-query workload.
type MultiQueryResult struct {
	SharedResults    []uint64
	DedicatedResults []uint64
	SharedMemBytes   int
	DedicatedMem     int
	MemSavingPercent float64
}

// MultiQuery runs the extension experiment: one AMRI per shared state
// serving two queries, versus one index per (state, query).
func MultiQuery(ticks int64, seed uint64) (*MultiQueryResult, error) {
	prof := stream.Profile{
		LambdaD:      10,
		PayloadBytes: 60,
		EpochTicks:   60,
		Domains:      []uint64{10, 16, 25, 40, 64, 100, 160, 250},
	}
	base := multiquery.RunConfig{
		Workload: multiquery.TwoQueryWorkload(),
		Profile:  prof,
		Seed:     seed,
		Ticks:    ticks,
	}
	shared, err := multiquery.Run(base)
	if err != nil {
		return nil, err
	}
	ded := base
	ded.Dedicated = true
	dedicated, err := multiquery.Run(ded)
	if err != nil {
		return nil, err
	}
	out := &MultiQueryResult{
		SharedResults:    shared.PerQueryResults,
		DedicatedResults: dedicated.PerQueryResults,
		SharedMemBytes:   shared.IndexMemBytes,
		DedicatedMem:     dedicated.IndexMemBytes,
	}
	if dedicated.IndexMemBytes > 0 {
		out.MemSavingPercent = 100 * (1 - float64(shared.IndexMemBytes)/float64(dedicated.IndexMemBytes))
	}
	return out, nil
}

// RunMultiQuery prints the multi-query extension experiment.
func RunMultiQuery(o Options, w io.Writer) error {
	ticks := int64(300)
	if o.Quick {
		ticks = 100
	}
	r, err := MultiQuery(ticks, o.seeds()[0])
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Extension — multiple SPJ queries over shared AMRI states ==")
	fmt.Fprintf(w, "%-12s %14s %14s\n", "query", "shared-AMRI", "dedicated")
	for q := range r.SharedResults {
		fmt.Fprintf(w, "Q%-11d %14d %14d\n", q, r.SharedResults[q], r.DedicatedResults[q])
	}
	fmt.Fprintf(w, "index memory: shared %d bytes vs dedicated %d bytes (%.0f%% saved)\n",
		r.SharedMemBytes, r.DedicatedMem, r.MemSavingPercent)
	fmt.Fprintln(w, "expected shape: identical per-query results (indexes are lossless),")
	fmt.Fprintln(w, "with the shared design paying for one index per state instead of one")
	fmt.Fprintln(w, "per (state, query)")
	return nil
}
