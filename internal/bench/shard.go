package bench

// Shard bench: the tuples/sec and probe-latency numbers behind
// BENCH_shard.json. The pipeline is run ONCE on the Figure 6 drift
// workload with probe-cost collection on; the worker sweep is then an
// offline scheduling model over that trace, and separate real runs at each
// worker count verify that every configuration reproduces the serial
// result set bit for bit.
//
// Why a model instead of wall-clock timings: per-probe work in this
// codebase is metered in the same deterministic cost units the simulation
// charges (sim.DefaultCosts — hashes, bucket probes, directory scans,
// candidate comparisons), and a worker pool's throughput on that trace is
// a scheduling question, not a measurement question. Modeling makes the
// committed numbers reproducible on any machine — including single-core CI
// runners, where measured "8 workers" and "1 worker" are the same machine
// time-slicing — while the verification runs still exercise the real
// concurrent code paths.
//
// The model: within one tick the probe phase is a set of independent jobs
// (the collected per-probe costs). With a sharded index, any worker can run
// any probe, so W workers execute the tick in the makespan of an LPT
// (longest-processing-time greedy) schedule. With the flat index, probes of
// the same operator serialize on its exclusive lock, so jobs of one
// operator form a chain; the serial makespan is the LPT schedule over the
// per-operator chains, floored by the unconstrained makespan so the extra
// constraint can never *help* — which is what makes the "-shards 1 never
// beats -shards 8" CI sanity structural rather than empirical. Throughput
// is tuples ingested divided by the summed makespans; probe latency is a
// job's completion offset from its tick's phase start.
//
// One honesty note: the traced probe COUNT varies by a fraction of a
// percent between runs of the same seed. The router's exploration draws
// and selectivity estimates are consumed in whatever order goroutines
// reach it, so the probe fan-out differs slightly even though the result
// set provably does not (that invariance is what the digests verify). The
// committed artifact is one sample of that distribution; every Check bar
// holds for any sample because the bars compare schedules of the SAME
// trace, never traces across runs.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"amri/internal/core"
	"amri/internal/pipeline"
	"amri/internal/tuple"
)

// unitNanos is the nominal wall cost of one simulation cost unit (one
// attribute hash), used only to express modeled latencies and throughput
// on human scales. Every ratio in the report is independent of it.
const unitNanos = 50.0

// ShardBenchOptions configure the sweep.
type ShardBenchOptions struct {
	// Seed fixes the workload (default 1).
	Seed uint64
	// Ticks is the horizon (default 300; Quick shrinks to 60).
	Ticks int64
	// Shards is the sharding degree of the modeled/verified parallel
	// configuration (default 8).
	Shards int
	// Workers are the pool sizes to sweep (default 1, 2, 4, 8).
	Workers []int
	// Quick shrinks the horizon ~5x and verifies fewer worker counts.
	Quick bool
}

func (o ShardBenchOptions) fill() ShardBenchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Ticks == 0 {
		o.Ticks = 300
	}
	if o.Quick {
		o.Ticks /= 5
	}
	if o.Shards == 0 {
		o.Shards = 8
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	return o
}

// ShardWorkload identifies the traced run.
type ShardWorkload struct {
	Query   string `json:"query"`
	Profile string `json:"profile"`
	Seed    uint64 `json:"seed"`
	Ticks   int64  `json:"ticks"`
	Shards  int    `json:"shards"`
	Tuples  uint64 `json:"tuples_ingested"`
	Probes  int    `json:"probes_traced"`
	Results uint64 `json:"results"`
}

// ShardWorkerPoint is one modeled sweep point.
type ShardWorkerPoint struct {
	Workers int `json:"workers"`
	// TuplesPerSec is the modeled ingest throughput: tuples over the
	// summed per-tick probe-phase makespans at unitNanos per cost unit.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// SerialTuplesPerSec is the same trace scheduled under the flat
	// index's per-operator serialization (the -shards 1 model).
	SerialTuplesPerSec float64 `json:"serial_tuples_per_sec"`
	// P99ProbeMicros is the 99th-percentile probe completion offset from
	// its tick's probe-phase start, in microseconds at unitNanos/unit.
	P99ProbeMicros float64 `json:"p99_probe_us"`
	// Speedup is TuplesPerSec over the 1-worker point's.
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// ShardVerifyRun is one real pipeline execution checked against the serial
// reference digest.
type ShardVerifyRun struct {
	Workers int     `json:"workers"`
	Shards  int     `json:"shards"`
	Digest  string  `json:"digest"`
	Results uint64  `json:"results"`
	WallMS  float64 `json:"wall_ms"`
	Match   bool    `json:"digest_matches_serial"`
}

// ShardBenchResult is the committed BENCH_shard.json payload.
type ShardBenchResult struct {
	Workload  ShardWorkload      `json:"workload"`
	Model     string             `json:"model"`
	UnitNanos float64            `json:"unit_nanos"`
	Sweep     []ShardWorkerPoint `json:"sweep"`
	// SerialDigest is the reference result-set fingerprint (1 worker,
	// flat index); every verify run must reproduce it.
	SerialDigest string           `json:"serial_digest"`
	Verify       []ShardVerifyRun `json:"verify"`
}

// shardDigest folds a result set into an order-independent fingerprint,
// mirroring the determinism tests in internal/pipeline.
type shardDigest struct {
	mu  sync.Mutex
	xor uint64
	n   uint64
}

func (d *shardDigest) add(c *tuple.Composite) {
	var h uint64 = 0x9e3779b97f4a7c15
	for i, part := range c.Parts {
		if part == nil {
			continue
		}
		x := uint64(i+1)*0xbf58476d1ce4e5b9 ^ part.Seq ^ uint64(part.TS)<<32 ^ uint64(part.Stream)<<56
		x = (x ^ (x >> 30)) * 0x94d049bb133111eb
		h ^= x + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	d.mu.Lock()
	d.xor ^= h
	d.n++
	d.mu.Unlock()
}

func (d *shardDigest) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fmt.Sprintf("%016x-%d", d.xor, d.n)
}

func (o ShardBenchOptions) pipelineConfig(workers, shards int, collect bool) pipeline.Config {
	return pipeline.Config{
		Seed:              o.Seed,
		Ticks:             o.Ticks,
		Method:            core.MethodCDIAHighest,
		AutoTuneEvery:     2000,
		Explore:           0.1,
		MailboxCap:        64,
		ShedPolicy:        pipeline.PolicyBlock,
		ProbeWorkers:      workers,
		Shards:            shards,
		CollectProbeCosts: collect,
	}
}

// lptSchedule assigns jobs to w workers longest-first onto the least-loaded
// worker and returns the makespan plus each job's completion offset (in the
// jobs slice's order). A classic 4/3-approximation of the optimal makespan;
// deterministic given the job order tie-breaks below.
func lptSchedule(jobs []float64, w int) (makespan float64, completions []float64) {
	if len(jobs) == 0 || w <= 0 {
		return 0, nil
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]] > jobs[order[b]] })
	load := make([]float64, w)
	completions = make([]float64, len(jobs))
	for _, j := range order {
		least := 0
		for k := 1; k < w; k++ {
			if load[k] < load[least] {
				least = k
			}
		}
		load[least] += jobs[j]
		completions[j] = load[least]
	}
	for _, l := range load {
		if l > makespan {
			makespan = l
		}
	}
	return makespan, completions
}

// serializedSchedule models the flat index: jobs of one operator chain on
// its exclusive lock, so the schedulable units are the per-operator totals
// and a probe completes at its chain's start plus its prefix within the
// chain. The makespan is floored by the unconstrained one — adding a
// constraint cannot shorten the schedule, and the floor makes that
// monotonicity exact even where the two greedy schedules' approximation
// errors would say otherwise.
func serializedSchedule(tick []pipeline.ProbeCost, w int, unconstrained float64) (makespan float64, completions []float64) {
	totals := map[int]float64{}
	var ops []int
	for _, pc := range tick {
		if _, seen := totals[pc.Op]; !seen {
			ops = append(ops, pc.Op)
		}
		totals[pc.Op] += pc.Units
	}
	sort.Ints(ops)
	chains := make([]float64, len(ops))
	for i, op := range ops {
		chains[i] = totals[op]
	}
	m, chainDone := lptSchedule(chains, w)
	if m < unconstrained {
		m = unconstrained
	}
	// Per-probe completion: chain start + running prefix within the chain.
	prefix := map[int]float64{}
	start := map[int]float64{}
	for i, op := range ops {
		start[op] = chainDone[i] - chains[i]
	}
	completions = make([]float64, len(tick))
	for i, pc := range tick {
		prefix[pc.Op] += pc.Units
		completions[i] = start[pc.Op] + prefix[pc.Op]
	}
	return m, completions
}

// modelWorkers runs both scheduling models over the trace for one pool
// size; primarySerial selects which one the headline numbers describe.
func modelWorkers(trace [][]pipeline.ProbeCost, w int, tuples uint64, primarySerial bool) ShardWorkerPoint {
	var shardedTotal, serialTotal float64
	var offsets []float64
	for _, tick := range trace {
		jobs := make([]float64, len(tick))
		for i, pc := range tick {
			jobs[i] = pc.Units
		}
		m, completions := lptSchedule(jobs, w)
		shardedTotal += m
		sm, serialCompletions := serializedSchedule(tick, w, m)
		serialTotal += sm
		if primarySerial {
			offsets = append(offsets, serialCompletions...)
		} else {
			offsets = append(offsets, completions...)
		}
	}
	sort.Float64s(offsets)
	var p99 float64
	if len(offsets) > 0 {
		p99 = offsets[len(offsets)*99/100]
	}
	perSec := func(totalUnits float64) float64 {
		if totalUnits == 0 {
			return 0
		}
		return float64(tuples) / (totalUnits * unitNanos * 1e-9)
	}
	pt := ShardWorkerPoint{
		Workers:            w,
		TuplesPerSec:       perSec(shardedTotal),
		SerialTuplesPerSec: perSec(serialTotal),
		P99ProbeMicros:     p99 * unitNanos / 1e3,
	}
	if primarySerial {
		pt.TuplesPerSec = pt.SerialTuplesPerSec
	}
	return pt
}

// ShardBench runs the trace collection, the worker-sweep model and the
// digest verification runs.
func ShardBench(o ShardBenchOptions) (*ShardBenchResult, error) {
	o = o.fill()

	// Reference run: 1 worker, flat index, costs collected. Its trace
	// feeds the model and its digest is the ground truth for every
	// parallel configuration.
	var ref shardDigest
	refCfg := o.pipelineConfig(1, 0, true)
	refCfg.OnResult = ref.add
	refRes, err := pipeline.Run(refCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: shard reference run: %w", err)
	}
	probes := 0
	for _, tick := range refRes.ProbeCosts {
		probes += len(tick)
	}
	out := &ShardBenchResult{
		Workload: ShardWorkload{
			Query:   "4-way equi-join, 60-tick window",
			Profile: "drift (Figure 6/7 workload)",
			Seed:    o.Seed,
			Ticks:   o.Ticks,
			Shards:  o.Shards,
			Tuples:  refRes.TuplesIngested,
			Probes:  probes,
			Results: refRes.Results,
		},
		Model:        "per-tick LPT over traced probe costs; flat index adds per-operator serialization",
		UnitNanos:    unitNanos,
		SerialDigest: ref.String(),
	}

	// Worker sweep over the shared trace. With -shards 1 the
	// configuration under test IS the serialized one, so the headline
	// numbers come from that model.
	for _, w := range o.Workers {
		out.Sweep = append(out.Sweep,
			modelWorkers(refRes.ProbeCosts, w, refRes.TuplesIngested, o.Shards == 1))
	}
	if base := out.Sweep[0]; base.Workers == 1 && base.TuplesPerSec > 0 {
		for i := range out.Sweep {
			out.Sweep[i].Speedup = out.Sweep[i].TuplesPerSec / base.TuplesPerSec
		}
	}

	// Verification runs: the real concurrent pipeline at each pool size,
	// sharded, must reproduce the serial result set.
	verifyWorkers := o.Workers
	if o.Quick && len(verifyWorkers) > 2 {
		verifyWorkers = []int{verifyWorkers[0], verifyWorkers[len(verifyWorkers)-1]}
	}
	for _, w := range verifyWorkers {
		var d shardDigest
		cfg := o.pipelineConfig(w, o.Shards, false)
		cfg.OnResult = d.add
		start := time.Now()
		res, err := pipeline.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: shard verify run (%d workers): %w", w, err)
		}
		out.Verify = append(out.Verify, ShardVerifyRun{
			Workers: w,
			Shards:  o.Shards,
			Digest:  d.String(),
			Results: res.Results,
			WallMS:  float64(time.Since(start).Microseconds()) / 1e3,
			Match:   d.String() == ref.String(),
		})
	}
	return out, nil
}

// WriteJSON writes the result as indented JSON.
func (r *ShardBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check enforces the acceptance bars: every verify digest matches the
// serial reference, the widest pool models at least the required speedup
// over one worker, and the serialized (flat-index) model never beats the
// sharded one at any pool size.
func (r *ShardBenchResult) Check(minSpeedup float64) error {
	for _, v := range r.Verify {
		if !v.Match {
			return fmt.Errorf("digest mismatch at %d workers: %s != serial %s",
				v.Workers, v.Digest, r.SerialDigest)
		}
	}
	for _, p := range r.Sweep {
		if p.SerialTuplesPerSec > p.TuplesPerSec+1e-9 {
			return fmt.Errorf("serialized model beats sharded at %d workers: %.0f > %.0f tuples/sec",
				p.Workers, p.SerialTuplesPerSec, p.TuplesPerSec)
		}
	}
	widest := r.Sweep[len(r.Sweep)-1]
	if r.Workload.Shards > 1 && widest.Workers > 1 && widest.Speedup < minSpeedup {
		return fmt.Errorf("modeled speedup at %d workers is %.2fx, below the %.1fx bar",
			widest.Workers, widest.Speedup, minSpeedup)
	}
	return nil
}

// Summary renders the human-readable sweep table.
func (r *ShardBenchResult) Summary(w io.Writer) {
	fmt.Fprintf(w, "shard bench: %s, seed %d, %d ticks, %d probes traced, %d shards\n",
		r.Workload.Query, r.Workload.Seed, r.Workload.Ticks, r.Workload.Probes, r.Workload.Shards)
	fmt.Fprintf(w, "%8s %16s %16s %12s %10s\n", "workers", "tuples/sec", "serial t/s", "p99 probe", "speedup")
	for _, p := range r.Sweep {
		fmt.Fprintf(w, "%8d %16.0f %16.0f %9.1fus %9.2fx\n",
			p.Workers, p.TuplesPerSec, p.SerialTuplesPerSec, p.P99ProbeMicros, p.Speedup)
	}
	for _, v := range r.Verify {
		status := "MATCH"
		if !v.Match {
			status = "MISMATCH"
		}
		fmt.Fprintf(w, "verify %d workers x %d shards: digest %s (%s), %.1fms wall\n",
			v.Workers, v.Shards, v.Digest, status, v.WallMS)
	}
}
