package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"amri/internal/pipeline"
)

func TestLPTSchedule(t *testing.T) {
	// 4 jobs on 2 workers: LPT pairs 5 with 2 and 4 with 3 → makespan 7.
	m, done := lptSchedule([]float64{3, 5, 2, 4}, 2)
	if m != 7 {
		t.Fatalf("makespan = %g, want 7", m)
	}
	if len(done) != 4 {
		t.Fatalf("completions %v", done)
	}
	// More workers never lengthen the schedule; one worker sums the jobs.
	if m1, _ := lptSchedule([]float64{3, 5, 2, 4}, 1); m1 != 14 {
		t.Fatalf("1-worker makespan = %g, want 14", m1)
	}
	if m8, _ := lptSchedule([]float64{3, 5, 2, 4}, 8); m8 != 5 {
		t.Fatalf("8-worker makespan = %g, want the longest job", m8)
	}
	if m0, c := lptSchedule(nil, 4); m0 != 0 || c != nil {
		t.Fatal("empty job list must schedule to nothing")
	}
}

func TestSerializedScheduleDominates(t *testing.T) {
	// Two ops with two probes each: unconstrained LPT on 4 jobs of cost 1
	// over 4 workers finishes in 1; per-op chains need 2.
	tick := []pipeline.ProbeCost{{Op: 0, Units: 1}, {Op: 0, Units: 1}, {Op: 1, Units: 1}, {Op: 1, Units: 1}}
	un, _ := lptSchedule([]float64{1, 1, 1, 1}, 4)
	m, done := serializedSchedule(tick, 4, un)
	if m != 2 {
		t.Fatalf("serialized makespan = %g, want 2", m)
	}
	if un != 1 {
		t.Fatalf("unconstrained makespan = %g, want 1", un)
	}
	// Chain completions are prefix sums: each op's second probe at 2.
	if done[1] != 2 || done[3] != 2 {
		t.Fatalf("chain completions %v", done)
	}
}

// TestShardBenchQuick runs the whole artifact pipeline at test scale: the
// sweep must show parallel gain, the serialized model must never exceed
// the sharded one, every verification digest must match the serial
// reference, and the JSON must round-trip.
func TestShardBenchQuick(t *testing.T) {
	r, err := ShardBench(ShardBenchOptions{
		Ticks:   40,
		Workers: []int{1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(1.5); err != nil {
		t.Fatal(err)
	}
	if r.Workload.Probes == 0 || r.Workload.Results == 0 {
		t.Fatalf("workload not exercised: %+v", r.Workload)
	}
	if len(r.Sweep) != 2 || r.Sweep[1].Speedup <= r.Sweep[0].Speedup {
		t.Fatalf("sweep not monotone: %+v", r.Sweep)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ShardBenchResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SerialDigest != r.SerialDigest || len(back.Sweep) != len(r.Sweep) {
		t.Fatal("JSON round-trip lost fields")
	}

	var sum bytes.Buffer
	r.Summary(&sum)
	if !strings.Contains(sum.String(), "MATCH") || !strings.Contains(sum.String(), "tuples/sec") {
		t.Fatalf("summary incomplete:\n%s", sum.String())
	}
}
