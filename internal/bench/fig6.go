package bench

import (
	"fmt"
	"io"

	"amri/internal/engine"
	"amri/internal/metrics"
)

// Fig6Result carries the assessment-method comparison for programmatic use
// (bench_test.go asserts its shape).
type Fig6Result struct {
	// Mean cumulative results per assessment method.
	Results map[string]float64
	// Headline ratios, analogous to the paper's 19% and 30%.
	CDIAHighestOverSRIA  float64
	CDIAHighestOverCSRIA float64
	// Runs for rendering.
	runs []*metrics.RunResult
}

// Runs returns the seed-1 run series per contender (for CSV export).
func (r *Fig6Result) Runs() []*metrics.RunResult { return r.runs }

// Fig6Systems are the paper's Figure 6 assessment contenders: all five
// methods driving the same AMRI bit index.
func Fig6Systems() []engine.System {
	return []engine.System{
		engine.AMRI(engine.AssessSRIA),
		engine.AMRI(engine.AssessCSRIA),
		engine.AMRI(engine.AssessDIA),
		engine.AMRI(engine.AssessCDIARandom),
		engine.AMRI(engine.AssessCDIAHighest),
	}
}

// Fig6 computes the Figure 6 assessment comparison.
func Fig6(o Options) (*Fig6Result, error) {
	systems := Fig6Systems()
	c, err := compare(o, systems)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{Results: map[string]float64{}}
	for _, sys := range systems {
		out.Results[sys.Name] = c.totals[sys.Name]
		out.runs = append(out.runs, c.runs[sys.Name][0].res)
	}
	out.CDIAHighestOverSRIA = c.gain("AMRI/CDIA-highest", "AMRI/SRIA")
	out.CDIAHighestOverCSRIA = c.gain("AMRI/CDIA-highest", "AMRI/CSRIA")
	return out, nil
}

// RunFig6 regenerates the assessment-method half of Figure 6.
func RunFig6(o Options, w io.Writer) error {
	r, err := Fig6(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 6 — index assessment methods (cumulative throughput) ==")
	fmt.Fprintln(w, metrics.Table(r.runs))
	fmt.Fprintln(w, metrics.Chart(r.runs, 72, 14))
	fmt.Fprintf(w, "CDIA-highest vs SRIA/DIA: %+.1f%%   (paper: +19%%)\n", r.CDIAHighestOverSRIA)
	fmt.Fprintf(w, "CDIA-highest vs CSRIA:    %+.1f%%   (paper: +30%%)\n", r.CDIAHighestOverCSRIA)
	fmt.Fprintln(w, "expected shape: CDIA variants lead; DIA == SRIA; CSRIA trails")
	return nil
}

// Fig6HashResult carries the hash-baseline sweep.
type Fig6HashResult struct {
	// Results maps "hash-k" to mean cumulative results.
	Results map[string]float64
	// OOMTick maps "hash-k" to its mean end tick (== horizon when it
	// survived); Died says whether every seeded run hit the memory cap.
	OOMTick map[string]float64
	Died    map[string]bool
	// AMRIResults is the reference AMRI/CDIA-highest mean.
	AMRIResults float64
	// AMRIGainOverBestHash is the paper's 93% analogue.
	AMRIGainOverBestHash float64
	runs                 []*metrics.RunResult
}

// Runs returns the seed-1 run series per contender (for CSV export).
func (r *Fig6HashResult) Runs() []*metrics.RunResult { return r.runs }

// Fig6Hash sweeps the multi-hash-index baseline from 1 to 7 access modules
// against AMRI.
func Fig6Hash(o Options) (*Fig6HashResult, error) {
	systems := []engine.System{engine.AMRI(engine.AssessCDIAHighest)}
	for k := 1; k <= 7; k++ {
		systems = append(systems, engine.HashSystem(k))
	}
	c, err := compare(o, systems)
	if err != nil {
		return nil, err
	}
	out := &Fig6HashResult{
		Results: map[string]float64{},
		OOMTick: map[string]float64{},
		Died:    map[string]bool{},
	}
	var hashNames []string
	for _, sys := range systems {
		out.Results[sys.Name] = c.totals[sys.Name]
		out.OOMTick[sys.Name] = c.endTick[sys.Name]
		out.Died[sys.Name] = c.ooms[sys.Name] == len(o.seeds())
		out.runs = append(out.runs, c.runs[sys.Name][0].res)
		if sys.Index == engine.IndexHash {
			hashNames = append(hashNames, sys.Name)
		}
	}
	best := c.best(hashNames)
	out.AMRIResults = c.totals["AMRI/CDIA-highest"]
	out.AMRIGainOverBestHash = c.gain("AMRI/CDIA-highest", best)
	return out, nil
}

// RunFig6Hash regenerates the hash-baseline half of Figure 6.
func RunFig6Hash(o Options, w io.Writer) error {
	r, err := Fig6Hash(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 6 — multi-hash-index AMR states, k = 1..7 access modules ==")
	fmt.Fprintln(w, metrics.Table(r.runs))
	fmt.Fprintln(w, metrics.Chart(r.runs, 72, 14))
	fmt.Fprintf(w, "AMRI vs best hash configuration: %+.1f%%   (paper: +93%%)\n", r.AMRIGainOverBestHash)
	fmt.Fprintln(w, "expected shape: every hash variant backlogs and dies (paper: none survived")
	fmt.Fprintln(w, "past 12.5 of 30 minutes) or starves on full scans; AMRI runs to the end")
	return nil
}
