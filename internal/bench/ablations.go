package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"amri/internal/bitindex"
	"amri/internal/cost"
	"amri/internal/engine"
	"amri/internal/query"
	"amri/internal/sim"
	"amri/internal/tuner"
	"amri/internal/tuple"
)

// DirectoryAblationRow measures one (bit budget, directory kind) cell.
type DirectoryAblationRow struct {
	TotalBits int
	Dense     bool
	// MemBytes is the index's resident size after the inserts.
	MemBytes int
	// AvgBuckets / AvgTuples are per-single-attribute-search costs.
	AvgBuckets float64
	AvgTuples  float64
}

// DirectoryAblation sweeps the IC width and compares the dense and sparse
// directories on memory and probe work — the design space behind the
// "64-bit IC" reading in DESIGN.md.
func DirectoryAblation(stateSize, probes int, seed uint64) ([]DirectoryAblationRow, error) {
	var rows []DirectoryAblationRow
	for _, totalBits := range []int{6, 9, 12, 15, 18, 24, 36, 64} {
		for _, dense := range []bool{true, false} {
			if dense && totalBits > 18 {
				continue // flat arrays beyond 2^18 slots are not sensible
			}
			limit := 0
			if dense {
				limit = 64
			}
			cfg := bitindex.Uniform(3, totalBits)
			ix, err := bitindex.New(cfg, []int{0, 1, 2}, nil, bitindex.WithDenseLimit(limit))
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewPCG(seed, uint64(totalBits)))
			for i := 0; i < stateSize; i++ {
				ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
					tuple.Value(rng.Uint64()), tuple.Value(rng.Uint64()), tuple.Value(rng.Uint64())}))
			}
			var b, t float64
			for k := 0; k < probes; k++ {
				st := ix.Search(query.PatternOf(0), []tuple.Value{tuple.Value(rng.Uint64()), 0, 0},
					func(*tuple.Tuple) bool { return true })
				b += float64(st.Buckets) + float64(st.DirScans)
				t += float64(st.Tuples)
			}
			rows = append(rows, DirectoryAblationRow{
				TotalBits:  totalBits,
				Dense:      ix.Dense(),
				MemBytes:   ix.MemBytes(),
				AvgBuckets: b / float64(probes),
				AvgTuples:  t / float64(probes),
			})
		}
	}
	return rows, nil
}

// RunDirectoryAblation prints ablation A1.
func RunDirectoryAblation(o Options, w io.Writer) error {
	stateSize, probes := 4096, 200
	if o.Quick {
		stateSize, probes = 1024, 50
	}
	rows, err := DirectoryAblation(stateSize, probes, 11)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Ablation A1 — dense vs sparse directory (%d tuples, 1-attr searches) ==\n", stateSize)
	fmt.Fprintf(w, "%8s %8s %12s %14s %12s\n", "bits", "dir", "memBytes", "avgBucketOps", "avgTuples")
	for _, r := range rows {
		kind := "sparse"
		if r.Dense {
			kind = "dense"
		}
		fmt.Fprintf(w, "%8d %8s %12d %14.1f %12.1f\n", r.TotalBits, kind, r.MemBytes, r.AvgBuckets, r.AvgTuples)
	}
	fmt.Fprintln(w, "expected shape: dense memory grows exponentially in bits while sparse")
	fmt.Fprintln(w, "tracks occupancy; scans shrink with bits until buckets are singletons")
	return nil
}

// OptimizerAblationResult summarizes greedy-vs-exhaustive quality.
type OptimizerAblationResult struct {
	Instances   int
	MeanRatio   float64 // mean greedyCD / exhaustiveCD (≥ 1)
	WorstRatio  float64
	ExactShare  float64 // fraction of instances where greedy matched exactly
	GreedyFails int     // instances where greedy exceeded exhaustive by >25%
}

// OptimizerAblation compares the two allocation searches on random
// instances (experiment A2).
func OptimizerAblation(instances int, seed uint64) (*OptimizerAblationResult, error) {
	rng := rand.New(rand.NewPCG(seed, seed^3))
	res := &OptimizerAblationResult{Instances: instances, WorstRatio: 1}
	var ratioSum float64
	for i := 0; i < instances; i++ {
		p := cost.Params{
			LambdaD: 50 + float64(rng.IntN(200)),
			LambdaR: 10 + float64(rng.IntN(200)),
			Ch:      0.01 + rng.Float64(),
			Cc:      0.05 + rng.Float64()/2,
			Window:  10 + float64(rng.IntN(120)),
		}
		numAttrs := 2 + rng.IntN(3)
		budget := 3 + rng.IntN(10)
		var stats []cost.APStat
		query.AllPatterns(numAttrs, func(ap query.Pattern) bool {
			if ap != 0 && rng.Float64() < 0.7 {
				stats = append(stats, cost.APStat{P: ap, Freq: rng.Float64()})
			}
			return true
		})
		if len(stats) == 0 {
			stats = []cost.APStat{{P: query.PatternOf(0), Freq: 1}}
		}
		g, gcd := tuner.Greedy(numAttrs, budget, p, stats, tuner.Options{})
		e, ecd, err := tuner.Exhaustive(numAttrs, budget, p, stats, tuner.Options{})
		if err != nil {
			return nil, err
		}
		ratio := gcd / ecd
		ratioSum += ratio
		if ratio > res.WorstRatio {
			res.WorstRatio = ratio
		}
		if g.Equal(e) {
			res.ExactShare++
		}
		if ratio > 1.25 {
			res.GreedyFails++
		}
	}
	res.MeanRatio = ratioSum / float64(instances)
	res.ExactShare /= float64(instances)
	return res, nil
}

// RunOptimizerAblation prints ablation A2.
func RunOptimizerAblation(o Options, w io.Writer) error {
	instances := 500
	if o.Quick {
		instances = 100
	}
	r, err := OptimizerAblation(instances, 13)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Ablation A2 — greedy vs exhaustive bit allocation (%d random instances) ==\n", r.Instances)
	fmt.Fprintf(w, "mean C_D ratio (greedy/exhaustive): %.4f\n", r.MeanRatio)
	fmt.Fprintf(w, "worst C_D ratio:                    %.4f\n", r.WorstRatio)
	fmt.Fprintf(w, "exact matches:                      %.1f%%\n", 100*r.ExactShare)
	fmt.Fprintf(w, "instances beyond 1.25x:             %d\n", r.GreedyFails)
	fmt.Fprintln(w, "expected shape: greedy within a few percent of optimal almost always")
	return nil
}

// ExploreAblationRow is one exploration-rate cell of A3.
type ExploreAblationRow struct {
	Explore float64
	Results float64
	Retunes float64
}

// ExploreAblation sweeps the router's baseline exploration rate for the
// AMRI/CDIA-highest system: no exploration starves the statistics (stale
// routes and indices), too much floods the system with expensive
// suboptimal probes — the paper's Section I-B trade-off.
func ExploreAblation(o Options, rates []float64) ([]ExploreAblationRow, error) {
	var rows []ExploreAblationRow
	for _, rate := range rates {
		run := o.runConfig()
		run.Explore = rate
		row := ExploreAblationRow{Explore: rate}
		for _, seed := range o.seeds() {
			run.Seed = seed
			e, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
			if err != nil {
				return nil, err
			}
			r := e.Run()
			row.Results += float64(r.TotalResults)
			row.Retunes += float64(r.Retunes)
		}
		n := float64(len(o.seeds()))
		row.Results /= n
		row.Retunes /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// RunExploreAblation prints ablation A3.
func RunExploreAblation(o Options, w io.Writer) error {
	rates := []float64{0, 0.01, 0.04, 0.1, 0.25, 0.5}
	rows, err := ExploreAblation(o, rates)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Ablation A3 — router exploration rate vs AMRI throughput ==")
	fmt.Fprintf(w, "%10s %12s %10s\n", "explore", "results", "retunes")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.2f %12.0f %10.0f\n", r.Explore, r.Results, r.Retunes)
	}
	fmt.Fprintln(w, "expected shape: throughput peaks at a small positive rate and collapses")
	fmt.Fprintln(w, "as exploration floods the system with suboptimal-route work")
	return nil
}

// MigrationAblationRow is one migration-mode cell of A4.
type MigrationAblationRow struct {
	Mode        string
	Results     float64
	PeakBacklog float64
	Retunes     float64
	P99Latency  float64
	MaxLatency  float64
}

// MigrationAblation compares stop-the-world index migration (the paper's
// BI1->BI2 relocation) against the incremental variant that moves a bounded
// number of tuples per tick while searches cover both directories. The
// stop-the-world spike shows up as a larger peak backlog.
func MigrationAblation(o Options) ([]MigrationAblationRow, error) {
	modes := []struct {
		name        string
		incremental bool
		step        int
		bursty      bool
	}{
		{"stop-the-world", false, 0, false},
		{"incremental-250", true, 250, false},
		{"incremental-1000", true, 1000, false},
		{"stop-the-world/bursty", false, 0, true},
		{"incremental-1000/bursty", true, 1000, true},
	}
	var rows []MigrationAblationRow
	for _, m := range modes {
		row := MigrationAblationRow{Mode: m.name}
		for _, seed := range o.seeds() {
			run := o.runConfig()
			run.Seed = seed
			run.IncrementalMigration = m.incremental
			run.MigrateStepTuples = m.step
			if m.bursty {
				// Arrival bursts: migrations landing on a peak are the
				// worst case for stop-the-world relocation.
				run.Profile.RateAmplitude = 0.6
				run.Profile.RatePeriod = 60
			}
			e, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
			if err != nil {
				return nil, err
			}
			r := e.Run()
			row.Results += float64(r.TotalResults)
			row.Retunes += float64(r.Retunes)
			row.P99Latency += float64(r.Latency.P99Tick)
			row.MaxLatency += float64(r.Latency.MaxTick)
			peak := 0
			for _, p := range r.Points {
				if p.Backlog > peak {
					peak = p.Backlog
				}
			}
			row.PeakBacklog += float64(peak)
		}
		n := float64(len(o.seeds()))
		row.Results /= n
		row.PeakBacklog /= n
		row.Retunes /= n
		row.P99Latency /= n
		row.MaxLatency /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// WindowAblationRow is one assessment-window-policy cell of A5.
type WindowAblationRow struct {
	Policy  string
	Results float64
	Retunes float64
}

// WindowAblation compares per-interval assessment windows (statistics reset
// after every tuning pass, the paper's segment-oriented reading) against
// cumulative statistics that never reset. Under drift, cumulative counts
// keep voting for dead epochs' patterns.
func WindowAblation(o Options) ([]WindowAblationRow, error) {
	var rows []WindowAblationRow
	for _, cumulative := range []bool{false, true} {
		row := WindowAblationRow{Policy: "reset-per-interval"}
		if cumulative {
			row.Policy = "cumulative"
		}
		for _, seed := range o.seeds() {
			run := o.runConfig()
			run.Seed = seed
			run.CumulativeAssessment = cumulative
			e, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
			if err != nil {
				return nil, err
			}
			r := e.Run()
			row.Results += float64(r.TotalResults)
			row.Retunes += float64(r.Retunes)
		}
		n := float64(len(o.seeds()))
		row.Results /= n
		row.Retunes /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// RunWindowAblation prints ablation A5.
func RunWindowAblation(o Options, w io.Writer) error {
	rows, err := WindowAblation(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Ablation A5 — assessment window policy under drift ==")
	fmt.Fprintf(w, "%-20s %12s %10s\n", "policy", "results", "retunes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12.0f %10.0f\n", r.Policy, r.Results, r.Retunes)
	}
	fmt.Fprintln(w, "expected shape: fresh windows adapt to drift; cumulative statistics")
	fmt.Fprintln(w, "keep voting for dead epochs' patterns and slow retuning")
	return nil
}

// RunMigrationAblation prints ablation A4.
func RunMigrationAblation(o Options, w io.Writer) error {
	rows, err := MigrationAblation(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Ablation A4 — stop-the-world vs incremental index migration ==")
	fmt.Fprintf(w, "%-18s %12s %14s %10s %10s %10s\n", "mode", "results", "peakBacklog", "retunes", "p99lat", "maxlat")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12.0f %14.0f %10.0f %10.0f %10.0f\n",
			r.Mode, r.Results, r.PeakBacklog, r.Retunes, r.P99Latency, r.MaxLatency)
	}
	fmt.Fprintln(w, "expected shape: comparable throughput; incremental smooths the")
	fmt.Fprintln(w, "maintenance spikes that stop-the-world migration injects")
	return nil
}

// ContentAblationRow is one (workload, routing policy) cell of A6.
type ContentAblationRow struct {
	Workload string
	Policy   string
	Results  float64
}

// ContentAblation compares aggregate selectivity routing against
// content-based routing (per-value-region estimates) on the uniform and the
// skewed workloads. Content awareness only pays when values differ in how
// explosive their joins are — i.e. under skew.
func ContentAblation(o Options) ([]ContentAblationRow, error) {
	var rows []ContentAblationRow
	for _, wl := range []struct {
		name string
		skew bool
	}{{"uniform", false}, {"pair-skewed", true}} {
		for _, content := range []bool{false, true} {
			run := o.runConfig()
			if wl.skew {
				// Skew only half the predicates: the same value is then
				// explosive on some pairs and ordinary on others, which is
				// the regime content-based routing exists for.
				run.Profile.HotFrac = 0.05
				run.Profile.HotProb = 0.7
				run.Profile.HotPairs = 3
			}
			run.ContentRouting = content
			policy := "aggregate"
			if content {
				policy = "content"
			}
			row := ContentAblationRow{Workload: wl.name, Policy: policy}
			for _, seed := range o.seeds() {
				run.Seed = seed
				e, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
				if err != nil {
					return nil, err
				}
				row.Results += float64(e.Run().TotalResults)
			}
			row.Results /= float64(len(o.seeds()))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunContentAblation prints ablation A6.
func RunContentAblation(o Options, w io.Writer) error {
	rows, err := ContentAblation(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Ablation A6 — aggregate vs content-based routing ==")
	fmt.Fprintf(w, "%-10s %-12s %12s\n", "workload", "policy", "results")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12s %12.0f\n", r.Workload, r.Policy, r.Results)
	}
	fmt.Fprintln(w, "expected shape: content routing wins clearly when skew differs between")
	fmt.Fprintln(w, "pairs (hot values are explosive on some predicates only); on uniform")
	fmt.Fprintln(w, "workloads its per-region estimates learn drift more slowly and it cedes")
	fmt.Fprintln(w, "some throughput — the classic CBR trade-off")
	return nil
}

// TopologyRow is one (topology, system) cell of the topology experiment.
type TopologyRow struct {
	Topology string
	System   string
	Results  float64
	End      string
}

// TopologyExperiment runs AMRI and the hash baseline across join
// topologies: the paper's clique, a chain, and a star whose hub state
// carries four join attributes (15 possible access patterns — the regime
// where compact assessment earns its keep).
func TopologyExperiment(o Options) ([]TopologyRow, error) {
	// Each topology needs its own domain pool: with P predicates and
	// window states of ~3000 tuples, results per driver scale like
	// 3000^(streams-1) / Π(domains), so sparser join graphs need much
	// larger domains to stay at ~1 result per arrival.
	sparse := []uint64{1800, 2400, 3000, 3900, 5000, 6400}
	topos := []struct {
		name    string
		mk      func(int64) *query.Query
		domains []uint64
		budget  float64 // CPU budget scale vs default (sparser graphs need
		// less work per tuple, so pressure requires a tighter machine)
	}{
		{"clique-4", query.FourWay, nil, 1.0},
		{"chain-4", func(w int64) *query.Query { return query.Chain(4, w) }, sparse, 0.30},
		{"star-5", func(w int64) *query.Query { return query.Star(5, w) }, sparse, 0.35},
	}
	systems := []engine.System{
		engine.AMRI(engine.AssessCDIAHighest),
		engine.AMRI(engine.AssessCSRIA),
		engine.HashSystem(3),
	}
	var rows []TopologyRow
	for _, topo := range topos {
		for _, sys := range systems {
			row := TopologyRow{Topology: topo.name, System: sys.Name}
			ends := map[string]bool{}
			for _, seed := range o.seeds() {
				run := o.runConfig()
				run.Query = topo.mk(60)
				if topo.domains != nil {
					run.Profile.Domains = topo.domains
				}
				run.CPUBudget = sim.Units(float64(run.CPUBudget) * topo.budget)
				run.Seed = seed
				e, err := engine.New(run, sys)
				if err != nil {
					return nil, err
				}
				r := e.Run()
				row.Results += float64(r.TotalResults)
				ends[string(r.End)] = true
			}
			row.Results /= float64(len(o.seeds()))
			endNames := make([]string, 0, len(ends))
			for e := range ends {
				endNames = append(endNames, e)
			}
			sort.Strings(endNames)
			if len(endNames) == 1 {
				row.End = endNames[0]
			} else {
				row.End = "mixed"
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunTopologyExperiment prints the topology sweep.
func RunTopologyExperiment(o Options, w io.Writer) error {
	rows, err := TopologyExperiment(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Extension — join topologies (clique, chain, star) ==")
	fmt.Fprintf(w, "%-10s %-22s %12s %16s\n", "topology", "system", "results", "end")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-22s %12.0f %16s\n", r.Topology, r.System, r.Results, r.End)
	}
	fmt.Fprintln(w, "expected shape: on the clique and the star (15-pattern hub) AMRI leads")
	fmt.Fprintln(w, "and the hash baseline collapses or trails; on the chain every method")
	fmt.Fprintln(w, "ties — its states carry only 1-2 join attributes, so there is nothing")
	fmt.Fprintln(w, "for index tuning to get wrong, which is itself the paper's point about")
	fmt.Fprintln(w, "where adaptive indexing matters")
	return nil
}

// BudgetAblationRow is one (policy, rate-shape) cell of A7.
type BudgetAblationRow struct {
	Policy  string
	Results float64
	PeakMem float64
}

// BudgetAblation compares a generously fixed bit budget (18 bits — the
// "more bits are better" intuition) against the adaptive per-state budget
// under steady and bursty arrival rates. Oversized directories are not just
// a memory problem: every search pattern that does not constrain all
// attributes fans out over 2^(unconstrained bits) buckets, so an oversized
// IC buries the system in bucket probes.
func BudgetAblation(o Options) ([]BudgetAblationRow, error) {
	cells := []struct {
		name     string
		adaptive bool
		bursty   bool
	}{
		{"fixed", false, false},
		{"adaptive", true, false},
		{"fixed/bursty", false, true},
		{"adaptive/bursty", true, true},
	}
	var rows []BudgetAblationRow
	for _, cell := range cells {
		row := BudgetAblationRow{Policy: cell.name}
		for _, seed := range o.seeds() {
			run := o.runConfig()
			run.Seed = seed
			run.AdaptiveBudget = cell.adaptive
			// Generous cap: a fixed policy materializes 2^18 dense bucket
			// slots per state whether or not the state needs them; the
			// adaptive policy right-sizes to ~log2(4·len).
			run.BitBudget = 18
			run.DenseLimit = 18
			run.MemCap = 64 << 20 // headroom so the oversized directories
			// show up as memory, not as instant death
			if cell.bursty {
				run.Profile.RateAmplitude = 0.4
				run.Profile.RatePeriod = 90
			}
			e, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
			if err != nil {
				return nil, err
			}
			r := e.Run()
			row.Results += float64(r.TotalResults)
			row.PeakMem += float64(r.PeakMemBytes)
		}
		n := float64(len(o.seeds()))
		row.Results /= n
		row.PeakMem /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// RunBudgetAblation prints ablation A7.
func RunBudgetAblation(o Options, w io.Writer) error {
	rows, err := BudgetAblation(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Ablation A7 — fixed vs adaptive IC bit budget ==")
	fmt.Fprintf(w, "%-18s %12s %14s\n", "policy", "results", "peakMem")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12.0f %14.0f\n", r.Policy, r.Results, r.PeakMem)
	}
	fmt.Fprintln(w, "expected shape: the oversized fixed directory pays 2^wild-bits bucket")
	fmt.Fprintln(w, "probes on every partial-pattern search and buries itself before the")
	fmt.Fprintln(w, "first tuning pass; the adaptive budget right-sizes from the expected")
	fmt.Fprintln(w, "state size and sails through — sizing the IC is part of tuning")
	return nil
}
