// Package router implements the adaptive multi-route (Eddy-style) routing
// operator: for each composite it picks which state to probe next from
// continuously updated join selectivity estimates, and periodically sends
// work along suboptimal routes to keep those estimates fresh — the paper's
// "router sends search requests to suboptimal operators to update system
// statistics", which is also the source of the low-frequency access
// patterns the assessment methods must cope with.
package router

import (
	"fmt"
	"math/rand/v2"
)

// Router routes composites through the join states of one query.
type Router struct {
	n       int
	explore float64
	rng     *rand.Rand

	// sel[i][j] estimates the probability that a tuple pair from streams
	// i and j matches their join predicate (EMA over clean observations).
	sel   [][]float64
	alpha float64

	decisions uint64
	explored  uint64
}

// DefaultAlpha is the EMA smoothing factor for selectivity estimates.
const DefaultAlpha = 0.1

// New builds a router over n streams. explore is the probability a routing
// decision deliberately deviates from the greedy choice; seed fixes the
// exploration schedule.
func New(n int, explore float64, seed uint64) *Router {
	r := &Router{
		n:       n,
		explore: explore,
		rng:     rand.New(rand.NewPCG(seed, seed^0x5bf03635)),
		alpha:   DefaultAlpha,
		sel:     make([][]float64, n),
	}
	for i := range r.sel {
		r.sel[i] = make([]float64, n)
		for j := range r.sel[i] {
			r.sel[i][j] = 0.01 // optimistic prior; refined by observation
		}
	}
	return r
}

// Next picks the state a composite with the given coverage probes next.
// stateLens supplies the current size of every state. The greedy choice
// minimizes expected fan-out — |state_j| × Π selectivities toward j — the
// lottery-style criterion Eddy variants converge to; with probability
// explore a uniformly random remaining state is used instead.
func (r *Router) Next(doneMask uint32, stateLens []int) int {
	r.decisions++
	var remaining []int
	for j := 0; j < r.n; j++ {
		if doneMask&(1<<uint(j)) == 0 {
			remaining = append(remaining, j)
		}
	}
	if len(remaining) == 0 {
		return -1
	}
	if len(remaining) > 1 && r.explore > 0 && r.rng.Float64() < r.explore {
		r.explored++
		return remaining[r.rng.IntN(len(remaining))]
	}
	best, bestScore := remaining[0], 0.0
	for k, j := range remaining {
		score := float64(stateLens[j])
		for i := 0; i < r.n; i++ {
			if doneMask&(1<<uint(i)) != 0 {
				score *= r.sel[i][j]
			}
		}
		if k == 0 || score < bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// ObservePair feeds one clean single-predicate observation: a probe from a
// lone stream-i tuple into state j met stateLen stored tuples and matched
// matches of them.
func (r *Router) ObservePair(i, j int, matches, stateLen int) {
	if stateLen == 0 {
		return
	}
	obs := float64(matches) / float64(stateLen)
	r.sel[i][j] = (1-r.alpha)*r.sel[i][j] + r.alpha*obs
	r.sel[j][i] = r.sel[i][j]
}

// Selectivity returns the current estimate for the (i,j) predicate.
func (r *Router) Selectivity(i, j int) float64 { return r.sel[i][j] }

// SetExplore changes the exploration rate. AMR routers re-explore heavily
// right after the environment shifts (their estimates are stale) and settle
// down once refreshed; the engine drives this per drift epoch.
func (r *Router) SetExplore(rate float64) { r.explore = rate }

// Explore returns the current exploration rate.
func (r *Router) Explore() float64 { return r.explore }

// Decisions returns how many routing choices were made and how many of
// them were exploratory.
func (r *Router) Decisions() (total, explored uint64) { return r.decisions, r.explored }

// String summarizes the estimate matrix.
func (r *Router) String() string {
	s := "Router{"
	for i := 0; i < r.n; i++ {
		for j := i + 1; j < r.n; j++ {
			s += fmt.Sprintf(" σ(%d,%d)=%.2g", i, j, r.sel[i][j])
		}
	}
	return s + " }"
}
