// Package router implements the adaptive multi-route (Eddy-style) routing
// operator: for each composite it picks which state to probe next from
// continuously updated join selectivity estimates, and periodically sends
// work along suboptimal routes to keep those estimates fresh — the paper's
// "router sends search requests to suboptimal operators to update system
// statistics", which is also the source of the low-frequency access
// patterns the assessment methods must cope with.
package router

import (
	"fmt"
	"math/rand/v2"
)

// Router routes composites through the join states of one query.
type Router struct {
	n       int
	explore float64
	rng     *rand.Rand

	// sel[i][j] estimates the probability that a tuple pair from streams
	// i and j matches their join predicate (EMA over clean observations).
	sel   [][]float64
	alpha float64

	decisions uint64
	explored  uint64
}

// DefaultAlpha is the EMA smoothing factor for selectivity estimates.
const DefaultAlpha = 0.1

// New builds a router over n streams. explore is the probability a routing
// decision deliberately deviates from the greedy choice; seed fixes the
// exploration schedule.
func New(n int, explore float64, seed uint64) *Router {
	r := &Router{
		n:       n,
		explore: explore,
		rng:     rand.New(rand.NewPCG(seed, seed^0x5bf03635)),
		alpha:   DefaultAlpha,
		sel:     make([][]float64, n),
	}
	for i := range r.sel {
		r.sel[i] = make([]float64, n)
		for j := range r.sel[i] {
			r.sel[i][j] = 0.01 // optimistic prior; refined by observation
		}
	}
	return r
}

// Next picks the state a composite with the given coverage probes next.
// stateLens supplies the current size of every state. The greedy choice
// minimizes expected fan-out — |state_j| × Π selectivities toward j — the
// lottery-style criterion Eddy variants converge to; with probability
// explore a uniformly random remaining state is used instead.
func (r *Router) Next(doneMask uint32, stateLens []int) int {
	r.decisions++
	next, explored := r.NextWith(doneMask, stateLens, r.rng)
	if explored {
		r.explored++
	}
	return next
}

// NextWith is Next as a pure read: the selectivity matrix is consulted but
// no counter moves and the exploration draw comes from the caller's rng.
// It exists for concurrent dispatchers — estimates only change at their
// tick barrier, so during a probe phase many workers may route off the
// same matrix lock-free, each with its own seeded rng, and report their
// decision counts afterwards via RecordDecisions. The caller owns the
// phase discipline: NextWith must not race with ObservePair/SetExplore.
func (r *Router) NextWith(doneMask uint32, stateLens []int, rng *rand.Rand) (next int, explored bool) {
	// remaining lives in a fixed-size stack buffer: NextWith runs once per
	// probe on the pipeline's hot dispatch path, and a heap append here
	// was one allocation per probe.
	var remBuf [32]int
	remaining := remBuf[:0]
	for j := 0; j < r.n; j++ {
		if doneMask&(1<<uint(j)) == 0 {
			remaining = append(remaining, j)
		}
	}
	if len(remaining) == 0 {
		return -1, false
	}
	if len(remaining) > 1 && r.explore > 0 && rng.Float64() < r.explore {
		return remaining[rng.IntN(len(remaining))], true
	}
	best, bestScore := remaining[0], 0.0
	for k, j := range remaining {
		score := float64(stateLens[j])
		for i := 0; i < r.n; i++ {
			if doneMask&(1<<uint(i)) != 0 {
				score *= r.sel[i][j]
			}
		}
		if k == 0 || score < bestScore {
			best, bestScore = j, score
		}
	}
	return best, false
}

// RecordDecisions folds a batch of NextWith outcomes into the decision
// counters — called at the same barrier that applies ObservePair updates.
func (r *Router) RecordDecisions(total, explored uint64) {
	r.decisions += total
	r.explored += explored
}

// ObservePair feeds one clean single-predicate observation: a probe from a
// lone stream-i tuple into state j met stateLen stored tuples and matched
// matches of them.
func (r *Router) ObservePair(i, j int, matches, stateLen int) {
	if stateLen == 0 {
		return
	}
	obs := float64(matches) / float64(stateLen)
	r.sel[i][j] = (1-r.alpha)*r.sel[i][j] + r.alpha*obs
	r.sel[j][i] = r.sel[i][j]
}

// Selectivity returns the current estimate for the (i,j) predicate.
func (r *Router) Selectivity(i, j int) float64 { return r.sel[i][j] }

// SetExplore changes the exploration rate. AMR routers re-explore heavily
// right after the environment shifts (their estimates are stale) and settle
// down once refreshed; the engine drives this per drift epoch.
func (r *Router) SetExplore(rate float64) { r.explore = rate }

// Explore returns the current exploration rate.
func (r *Router) Explore() float64 { return r.explore }

// Decisions returns how many routing choices were made and how many of
// them were exploratory.
func (r *Router) Decisions() (total, explored uint64) { return r.decisions, r.explored }

// String summarizes the estimate matrix.
func (r *Router) String() string {
	s := "Router{"
	for i := 0; i < r.n; i++ {
		for j := i + 1; j < r.n; j++ {
			s += fmt.Sprintf(" σ(%d,%d)=%.2g", i, j, r.sel[i][j])
		}
	}
	return s + " }"
}
