package router

import "math/rand/v2"

// ContentRouter implements content-based routing (Bizarro et al., VLDB 2005
// — the paper's reference [4]): where the base Router keeps one selectivity
// estimate per stream pair, the content router keeps estimates per *value
// region*, because under skew the same predicate can be cheap for cold
// values and explosive for hot ones. Routing decisions then depend on the
// composite's actual attribute values.
type ContentRouter struct {
	n       int
	buckets int
	explore float64
	rng     *rand.Rand

	// agg[i][j] is the aggregate (value-independent) estimate, the
	// fallback while a value region has little evidence.
	agg [][]float64
	// sel[i][j][b] is the region estimate, weight[i][j][b] its evidence.
	sel    [][][]float64
	weight [][][]float64
	alpha  float64

	decisions uint64
	explored  uint64
}

// shrinkK is the shrinkage prior weight: a value region's estimate is
// blended with the aggregate as (w·region + K·agg)/(w + K), so sparse or
// stale regions lean on the aggregate instead of overriding it with noise.
const shrinkK = 20.0

// NewContent builds a content router over n streams with the given number
// of value regions per pair.
func NewContent(n, buckets int, explore float64, seed uint64) *ContentRouter {
	r := &ContentRouter{
		n:       n,
		buckets: buckets,
		explore: explore,
		rng:     rand.New(rand.NewPCG(seed, seed^0x6c62272e07bb0142)),
		alpha:   DefaultAlpha,
	}
	r.agg = make([][]float64, n)
	r.sel = make([][][]float64, n)
	r.weight = make([][][]float64, n)
	for i := 0; i < n; i++ {
		r.agg[i] = make([]float64, n)
		r.sel[i] = make([][]float64, n)
		r.weight[i] = make([][]float64, n)
		for j := 0; j < n; j++ {
			r.agg[i][j] = 0.01
			r.sel[i][j] = make([]float64, buckets)
			r.weight[i][j] = make([]float64, buckets)
			for b := range r.sel[i][j] {
				r.sel[i][j][b] = 0.01
			}
		}
	}
	return r
}

// region maps a join value to its estimate bucket.
func (r *ContentRouter) region(v uint64) int {
	x := v
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(r.buckets))
}

// selFor returns the best available estimate for probing state j from
// stream i with the given value.
func (r *ContentRouter) selFor(i, j int, v uint64, haveValue bool) float64 {
	if !haveValue {
		return r.agg[i][j]
	}
	b := r.region(v)
	w := r.weight[i][j][b]
	return (w*r.sel[i][j][b] + shrinkK*r.agg[i][j]) / (w + shrinkK)
}

// Next picks the state a composite with the given coverage probes next.
// valueOf supplies, for a covered stream i and candidate state j, the value
// the probe would use on their predicate (ok=false when no predicate links
// them or the value is unknown).
func (r *ContentRouter) Next(doneMask uint32, stateLens []int, valueOf func(i, j int) (uint64, bool)) int {
	r.decisions++
	var remaining []int
	for j := 0; j < r.n; j++ {
		if doneMask&(1<<uint(j)) == 0 {
			remaining = append(remaining, j)
		}
	}
	if len(remaining) == 0 {
		return -1
	}
	if len(remaining) > 1 && r.explore > 0 && r.rng.Float64() < r.explore {
		r.explored++
		return remaining[r.rng.IntN(len(remaining))]
	}
	best, bestScore := remaining[0], 0.0
	for k, j := range remaining {
		score := float64(stateLens[j])
		for i := 0; i < r.n; i++ {
			if doneMask&(1<<uint(i)) == 0 {
				continue
			}
			v, ok := valueOf(i, j)
			score *= r.selFor(i, j, v, ok)
		}
		if k == 0 || score < bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// Observe feeds one clean single-predicate observation with the probing
// value: both the aggregate and the value-region estimates update.
func (r *ContentRouter) Observe(i, j int, v uint64, matches, stateLen int) {
	if stateLen == 0 {
		return
	}
	obs := float64(matches) / float64(stateLen)
	r.agg[i][j] = (1-r.alpha)*r.agg[i][j] + r.alpha*obs
	r.agg[j][i] = r.agg[i][j]
	b := r.region(v)
	r.sel[i][j][b] = (1-r.alpha)*r.sel[i][j][b] + r.alpha*obs
	r.sel[j][i][b] = r.sel[i][j][b]
	// Evidence ages: every observation of the pair slightly decays all of
	// its regions' weights, so regions unvisited since a drift epoch fade
	// back toward the aggregate instead of voting with stale estimates.
	for k := range r.weight[i][j] {
		r.weight[i][j][k] *= 0.995
		r.weight[j][i][k] = r.weight[i][j][k]
	}
	if r.weight[i][j][b] < 200 {
		r.weight[i][j][b]++
		r.weight[j][i][b] = r.weight[i][j][b]
	}
}

// SetExplore changes the exploration rate.
func (r *ContentRouter) SetExplore(rate float64) { r.explore = rate }

// Decisions returns total and exploratory decision counts.
func (r *ContentRouter) Decisions() (total, explored uint64) { return r.decisions, r.explored }
