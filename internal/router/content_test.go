package router

import (
	"testing"
	"testing/quick"
)

func TestContentNextBasics(t *testing.T) {
	r := NewContent(4, 16, 0, 1)
	lens := []int{10, 10, 10, 10}
	noVal := func(i, j int) (uint64, bool) { return 0, false }
	got := r.Next(1<<0, lens, noVal)
	if got < 0 || got == 0 {
		t.Fatalf("Next = %d", got)
	}
	if r.Next(0b1111, lens, noVal) != -1 {
		t.Fatal("full coverage should return -1")
	}
}

func TestContentRoutingUsesValueRegions(t *testing.T) {
	// Pair (0,1) is cheap for cold values but explosive for one hot value;
	// pair (0,2) is uniformly moderate. With enough evidence the router
	// must route hot-valued composites to state 2 first and cold-valued
	// ones to state 1.
	r := NewContent(3, 16, 0, 1)
	const hot = uint64(7)
	// Pick a cold value in a different value region than the hot one (the
	// region hash is an implementation detail; the test needs distinction,
	// not a specific value).
	cold := uint64(1234567)
	for r.region(cold) == r.region(hot) {
		cold++
	}
	for k := 0; k < 200; k++ {
		r.Observe(0, 1, hot, 500, 1000) // hot value: sel 0.5 toward state 1
		r.Observe(0, 1, cold, 1, 1000)  // cold value: sel 0.001
		r.Observe(0, 2, hot, 50, 1000)  // state 2: 0.05 regardless
		r.Observe(0, 2, cold, 50, 1000)
	}
	lens := []int{1000, 1000, 1000}
	mkVal := func(v uint64) func(i, j int) (uint64, bool) {
		return func(i, j int) (uint64, bool) { return v, true }
	}
	if got := r.Next(1<<0, lens, mkVal(hot)); got != 2 {
		t.Fatalf("hot value routed to %d, want 2 (avoid the explosive pair)", got)
	}
	if got := r.Next(1<<0, lens, mkVal(cold)); got != 1 {
		t.Fatalf("cold value routed to %d, want 1 (very selective there)", got)
	}
}

func TestContentFallsBackToAggregate(t *testing.T) {
	r := NewContent(3, 16, 0, 1)
	// Only aggregate-level evidence via a spread of values.
	for k := 0; k < 100; k++ {
		r.Observe(0, 1, uint64(k*7919), 0, 1000) // very selective on average
		r.Observe(0, 2, uint64(k*104729), 200, 1000)
	}
	// A never-seen value should still route by aggregates: state 1 wins.
	val := func(i, j int) (uint64, bool) { return 0xdeadbeefcafe, true }
	if got := r.Next(1<<0, []int{1000, 1000, 1000}, val); got != 1 {
		t.Fatalf("fallback routed to %d, want 1", got)
	}
}

func TestContentExploration(t *testing.T) {
	r := NewContent(4, 8, 0.3, 9)
	lens := []int{5, 5, 5, 5}
	noVal := func(i, j int) (uint64, bool) { return 0, false }
	for k := 0; k < 3000; k++ {
		r.Next(1<<0, lens, noVal)
	}
	total, explored := r.Decisions()
	frac := float64(explored) / float64(total)
	if frac < 0.22 || frac > 0.38 {
		t.Fatalf("explored fraction %g, want ~0.3", frac)
	}
	r.SetExplore(0)
	before := explored
	for k := 0; k < 500; k++ {
		r.Next(1<<0, lens, noVal)
	}
	if _, after := r.Decisions(); after != before {
		t.Fatal("SetExplore(0) should stop exploration")
	}
}

// Property: Next never returns a covered state, and region estimates stay
// symmetric after any observation sequence.
func TestContentProperties(t *testing.T) {
	f := func(mask uint8, vals []uint16) bool {
		r := NewContent(4, 8, 0, 3)
		for k, v := range vals {
			i, j := k%4, (k+1)%4
			r.Observe(i, j, uint64(v), k%10, 100)
			b := r.region(uint64(v))
			if r.sel[i][j][b] != r.sel[j][i][b] {
				return false
			}
		}
		done := uint32(mask) & 0b1111
		got := r.Next(done, []int{9, 9, 9, 9}, func(i, j int) (uint64, bool) { return 1, true })
		if done == 0b1111 {
			return got == -1
		}
		return got >= 0 && done&(1<<uint(got)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
