package router

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNextPrefersSelectiveState(t *testing.T) {
	r := New(4, 0, 1) // no exploration
	lens := []int{1000, 1000, 1000, 1000}
	// Coverage = {0}. Make pair (0,2) far more selective than (0,1),(0,3).
	r.ObservePair(0, 1, 100, 1000) // sel 0.1-ish after EMA
	r.ObservePair(0, 3, 100, 1000)
	for i := 0; i < 50; i++ { // drive (0,2) down hard
		r.ObservePair(0, 2, 0, 1000)
	}
	if got := r.Next(1<<0, lens); got != 2 {
		t.Fatalf("Next = %d, want 2 (most selective)", got)
	}
}

func TestNextSkipsCoveredStates(t *testing.T) {
	r := New(4, 0, 1)
	lens := []int{10, 10, 10, 10}
	done := uint32(1<<0 | 1<<1 | 1<<2)
	if got := r.Next(done, lens); got != 3 {
		t.Fatalf("Next = %d, want the only remaining state 3", got)
	}
	if got := r.Next(0b1111, lens); got != -1 {
		t.Fatalf("Next with full coverage = %d, want -1", got)
	}
}

func TestExplorationHappensAtConfiguredRate(t *testing.T) {
	r := New(4, 0.2, 7)
	lens := []int{100, 100, 100, 100}
	for i := 0; i < 5000; i++ {
		r.Next(1<<0, lens)
	}
	total, explored := r.Decisions()
	if total != 5000 {
		t.Fatalf("decisions = %d", total)
	}
	frac := float64(explored) / float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("explored fraction = %g, want ~0.2", frac)
	}
}

func TestNoExplorationWithSingleCandidate(t *testing.T) {
	r := New(2, 1.0, 3) // explore always — but only one choice exists
	if got := r.Next(1<<0, []int{5, 5}); got != 1 {
		t.Fatalf("Next = %d", got)
	}
	_, explored := r.Decisions()
	if explored != 0 {
		t.Fatal("single-candidate decisions must not count as exploration")
	}
}

func TestObservePairSymmetric(t *testing.T) {
	r := New(3, 0, 1)
	r.ObservePair(0, 2, 500, 1000)
	if r.Selectivity(0, 2) != r.Selectivity(2, 0) {
		t.Fatal("selectivity must be symmetric")
	}
	if r.Selectivity(0, 2) <= 0.01 {
		t.Fatal("EMA should have moved toward the observation")
	}
	// Zero-length state observations are ignored.
	before := r.Selectivity(0, 1)
	r.ObservePair(0, 1, 5, 0)
	if r.Selectivity(0, 1) != before {
		t.Fatal("zero-length observation should be ignored")
	}
}

func TestEMAConvergesAndAdapts(t *testing.T) {
	r := New(2, 0, 1)
	for i := 0; i < 200; i++ {
		r.ObservePair(0, 1, 250, 1000)
	}
	if got := r.Selectivity(0, 1); got < 0.24 || got > 0.26 {
		t.Fatalf("EMA did not converge: %g", got)
	}
	// Drift: selectivity collapses, estimate must follow.
	for i := 0; i < 200; i++ {
		r.ObservePair(0, 1, 1, 1000)
	}
	if got := r.Selectivity(0, 1); got > 0.01 {
		t.Fatalf("EMA did not adapt to drift: %g", got)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		r := New(4, 0.3, 42)
		lens := []int{10, 20, 30, 40}
		var picks []int
		for i := 0; i < 100; i++ {
			picks = append(picks, r.Next(1<<0, lens))
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestStringShowsEstimates(t *testing.T) {
	r := New(3, 0, 1)
	if !strings.Contains(r.String(), "σ(0,1)") {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: Next always returns a state outside the coverage (or -1).
func TestNextOutsideCoverage(t *testing.T) {
	f := func(mask uint8, seed uint64) bool {
		r := New(4, 0.5, seed)
		lens := []int{10, 10, 10, 10}
		done := uint32(mask) & 0b1111
		got := r.Next(done, lens)
		if done == 0b1111 {
			return got == -1
		}
		return got >= 0 && got < 4 && done&(1<<uint(got)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
