// Package stream generates the synthetic workloads of the paper's Section V:
// tuples for every stream of a query at a fixed arrival rate, with join
// selectivities that drift over time. Each joined stream pair shares a value
// domain; both sides draw uniformly from it, so the pair's join selectivity
// is 1/|domain|, and the per-epoch domain schedule is what "causes the
// router to use new query paths which in turn may initiate the selection of
// new indices".
package stream

import (
	"fmt"
	"math"
	"math/rand/v2"

	"amri/internal/query"
	"amri/internal/tuple"
)

// Profile describes a synthetic workload.
type Profile struct {
	// LambdaD is the number of tuples generated per stream per tick
	// (λ_d of Table I; one tick is one virtual second).
	LambdaD int
	// PayloadBytes is the simulated non-join payload per tuple.
	PayloadBytes int
	// EpochTicks is the drift period: the pair→domain assignment changes
	// every EpochTicks ticks. Zero disables drift.
	EpochTicks int64
	// Domains is the pool of pair domain sizes. In epoch e, joined pair k
	// (in canonical order) uses Domains[(k+e) mod len(Domains)], so every
	// epoch reshuffles which joins are selective.
	Domains []uint64
	// HotFrac and HotProb add skew: with probability HotProb a value is
	// drawn from the first HotFrac of its domain (both zero = uniform).
	// Skew stands in for the unpublished real-data experiments: real keys
	// are never uniform, and skew is what stresses bucket balance.
	HotFrac float64
	HotProb float64
	// HotPairs limits the skew to the first HotPairs joined pairs (in
	// canonical order); 0 skews every pair. Pair-selective skew is what
	// makes content-based routing differ from aggregate routing: the same
	// value is explosive on some predicates and ordinary on others.
	HotPairs int
	// RateAmplitude and RatePeriod modulate the arrival rate:
	// λ(t) = LambdaD · (1 + RateAmplitude · sin(2πt/RatePeriod)),
	// rounded per tick. Bursty arrivals are the regime where maintenance
	// spikes (index migrations, retunes) hurt most. Amplitude 0 disables.
	RateAmplitude float64
	RatePeriod    int64
	// MaxDelay makes arrivals out of order: each tuple's logical timestamp
	// is its generation tick minus a uniform delay in [0, MaxDelay]. The
	// operators' timestamp-bucket expiry keeps window semantics exact
	// under any bounded disorder.
	MaxDelay int64
}

// Validate rejects unusable profiles.
func (p Profile) Validate() error {
	if p.LambdaD <= 0 {
		return fmt.Errorf("stream: LambdaD must be positive")
	}
	if len(p.Domains) == 0 {
		return fmt.Errorf("stream: no domains")
	}
	for _, d := range p.Domains {
		if d == 0 {
			return fmt.Errorf("stream: zero domain size")
		}
	}
	if p.HotFrac < 0 || p.HotFrac > 1 || p.HotProb < 0 || p.HotProb > 1 {
		return fmt.Errorf("stream: skew parameters out of range")
	}
	if p.RateAmplitude < 0 || p.RateAmplitude > 1 {
		return fmt.Errorf("stream: RateAmplitude must be in [0,1]")
	}
	if p.RateAmplitude > 0 && p.RatePeriod <= 0 {
		return fmt.Errorf("stream: RateAmplitude needs a positive RatePeriod")
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("stream: MaxDelay must be non-negative")
	}
	return nil
}

// RateAt returns the arrivals per stream the profile generates at a tick.
func (p Profile) RateAt(tick int64) int {
	if p.RateAmplitude == 0 {
		return p.LambdaD
	}
	phase := 2 * math.Pi * float64(tick%p.RatePeriod) / float64(p.RatePeriod)
	n := int(math.Round(float64(p.LambdaD) * (1 + p.RateAmplitude*math.Sin(phase))))
	if n < 0 {
		n = 0
	}
	return n
}

// DriftProfile is the default Figure 6/7 workload: moderate arrival rate
// and a wide selectivity spread reshuffled every epoch.
func DriftProfile() Profile {
	// Domain sizes are calibrated so a complete 4-way result is likely but
	// not explosive: the product of the six pair domains (~3.1e11) sits
	// an order of magnitude above the cube of the window state size
	// (3000³ ≈ 2.7e10), i.e. roughly one result per ten arriving tuples —
	// a steady visible output rate — while the 30→220 spread keeps
	// routes meaningfully different in cost without letting a bad route
	// blow up intermediate counts.
	return Profile{
		LambdaD:      50,
		PayloadBytes: 120,
		EpochTicks:   120,
		Domains:      []uint64{30, 45, 70, 100, 150, 220},
	}
}

// StableProfile disables drift: the same domain assignment forever.
func StableProfile() Profile {
	p := DriftProfile()
	p.EpochTicks = 0
	return p
}

// SkewedProfile is the sensor-like stand-in for the real data set: drifting
// selectivities plus hot keys.
func SkewedProfile() Profile {
	p := DriftProfile()
	p.HotFrac = 0.1
	p.HotProb = 0.8
	return p
}

// Generator produces tuples for every stream of a compiled query.
type Generator struct {
	q       *query.Query
	prof    Profile
	rng     *rand.Rand
	seqs    []uint64
	arrival uint64
	pairIdx map[[2]int]int
	nPairs  int
}

// New builds a deterministic generator for the query and profile.
func New(q *query.Query, prof Profile, seed uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		q:       q,
		prof:    prof,
		rng:     rand.New(rand.NewPCG(seed, seed^0xa5a5a5a5deadbeef)),
		seqs:    make([]uint64, q.NumStreams()),
		pairIdx: make(map[[2]int]int),
	}
	for _, p := range q.Preds {
		a, b := p.Left, p.Right
		if a > b {
			a, b = b, a
		}
		if _, ok := g.pairIdx[[2]int{a, b}]; !ok {
			g.pairIdx[[2]int{a, b}] = g.nPairs
			g.nPairs++
		}
	}
	return g, nil
}

// Epoch returns the drift epoch the tick falls in.
func (g *Generator) Epoch(tick int64) int {
	if g.prof.EpochTicks <= 0 {
		return 0
	}
	return int(tick / g.prof.EpochTicks)
}

// pairIndexOf returns the canonical index of the joined pair (a,b), or -1.
func (g *Generator) pairIndexOf(a, b int) int {
	if a > b {
		a, b = b, a
	}
	k, ok := g.pairIdx[[2]int{a, b}]
	if !ok {
		return -1
	}
	return k
}

// DomainFor returns the value domain of the pair (a,b) at the tick.
func (g *Generator) DomainFor(a, b int, tick int64) uint64 {
	if a > b {
		a, b = b, a
	}
	k, ok := g.pairIdx[[2]int{a, b}]
	if !ok {
		return 1
	}
	return g.prof.Domains[(k+g.Epoch(tick))%len(g.prof.Domains)]
}

// Selectivity returns the expected match probability of one tuple pair
// under the (a,b) predicate at the tick: 1/|domain|.
func (g *Generator) Selectivity(a, b int, tick int64) float64 {
	return 1 / float64(g.DomainFor(a, b, tick))
}

// draw samples one value from a domain, honoring the skew knobs for the
// given pair.
func (g *Generator) draw(pairIdx int, domain uint64) tuple.Value {
	skewed := g.prof.HotProb > 0 && (g.prof.HotPairs == 0 || pairIdx < g.prof.HotPairs)
	if skewed && g.rng.Float64() < g.prof.HotProb {
		hot := uint64(float64(domain) * g.prof.HotFrac)
		if hot == 0 {
			hot = 1
		}
		return g.rng.Uint64N(hot)
	}
	return g.rng.Uint64N(domain)
}

// Tick generates the arrivals of one tick: LambdaD tuples per stream,
// timestamped with the tick, attributes drawn from the epoch's domains.
func (g *Generator) Tick(tick int64) []*tuple.Tuple {
	rate := g.prof.RateAt(tick)
	out := make([]*tuple.Tuple, 0, rate*g.q.NumStreams())
	for s := 0; s < g.q.NumStreams(); s++ {
		spec := g.q.States[s]
		arity := g.q.Streams[s].Arity
		for n := 0; n < rate; n++ {
			attrs := make([]tuple.Value, arity)
			for _, ja := range spec.JAS {
				attrs[ja.Attr] = g.draw(g.pairIndexOf(s, ja.Partner), g.DomainFor(s, ja.Partner, tick))
			}
			ts := tick
			if g.prof.MaxDelay > 0 {
				ts -= int64(g.rng.Uint64N(uint64(g.prof.MaxDelay + 1)))
				if ts < 0 {
					ts = 0
				}
			}
			t := tuple.New(s, g.seqs[s], ts, attrs)
			t.PayloadBytes = g.prof.PayloadBytes
			g.arrival++
			t.Arrival = g.arrival
			g.seqs[s]++
			out = append(out, t)
		}
	}
	return out
}

// NumPairs returns the number of joined stream pairs.
func (g *Generator) NumPairs() int { return g.nPairs }
