package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"amri/internal/tuple"
)

// Source produces the workload arrivals of one tick. Generator implements
// it for synthetic workloads; Trace replays recorded ones — the stand-in
// for the unpublished real-data experiments: any recorded stream (or the
// output of cmd/amrigen) can be fed through the engine unchanged.
type Source interface {
	Tick(tick int64) []*tuple.Tuple
}

var _ Source = (*Generator)(nil)

// Trace is a replayable workload loaded from the CSV format cmd/amrigen
// emits: a "tick,stream,seq,attr0,attr1,..." header followed by one row
// per tuple.
type Trace struct {
	byTick  map[int64][]*tuple.Tuple
	maxTick int64
	count   int
	arity   int
}

// ParseTrace reads a workload CSV. payloadBytes is the simulated payload
// attached to every replayed tuple (the CSV carries only join attributes).
// Arrival stamps are assigned in file order, so a trace replays with the
// same exactly-once join semantics as a live generator.
func ParseTrace(r io.Reader, payloadBytes int) (*Trace, error) {
	tr := &Trace{byTick: make(map[int64][]*tuple.Tuple), arity: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	arrival := uint64(0)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "tick,") {
			continue // header
		}
		fields := strings.Split(text, ",")
		if len(fields) < 4 {
			return nil, fmt.Errorf("stream: trace line %d: want tick,stream,seq,attrs..., got %q", line, text)
		}
		tick, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: bad tick: %v", line, err)
		}
		sid, err := strconv.Atoi(fields[1])
		if err != nil || sid < 0 {
			return nil, fmt.Errorf("stream: trace line %d: bad stream id", line)
		}
		seq, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: bad seq: %v", line, err)
		}
		attrs := make([]tuple.Value, len(fields)-3)
		for i, f := range fields[3:] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: trace line %d: bad attribute %d: %v", line, i, err)
			}
			attrs[i] = v
		}
		if tr.arity == -1 {
			tr.arity = len(attrs)
		} else if tr.arity != len(attrs) {
			return nil, fmt.Errorf("stream: trace line %d: arity %d != %d", line, len(attrs), tr.arity)
		}
		t := tuple.New(sid, seq, tick, attrs)
		t.PayloadBytes = payloadBytes
		arrival++
		t.Arrival = arrival
		tr.byTick[tick] = append(tr.byTick[tick], t)
		if tick > tr.maxTick {
			tr.maxTick = tick
		}
		tr.count++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: trace read: %w", err)
	}
	if tr.count == 0 {
		return nil, fmt.Errorf("stream: empty trace")
	}
	return tr, nil
}

// Tick returns the recorded arrivals of the tick (nil when none).
func (tr *Trace) Tick(tick int64) []*tuple.Tuple { return tr.byTick[tick] }

// MaxTick returns the last tick with recorded arrivals.
func (tr *Trace) MaxTick() int64 { return tr.maxTick }

// Len returns the total number of recorded tuples.
func (tr *Trace) Len() int { return tr.count }

// Arity returns the attribute count of the recorded tuples.
func (tr *Trace) Arity() int { return tr.arity }
