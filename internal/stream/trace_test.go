package stream

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"amri/internal/query"
)

const sampleTrace = `tick,stream,seq,attr0,attr1,attr2
0,0,0,7,29,43
0,1,0,3,7,58
1,0,1,26,10,64
2,3,0,1,2,3
`

func TestParseTraceBasics(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace), 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.MaxTick() != 2 {
		t.Fatalf("MaxTick = %d", tr.MaxTick())
	}
	if tr.Arity() != 3 {
		t.Fatalf("Arity = %d", tr.Arity())
	}
	tick0 := tr.Tick(0)
	if len(tick0) != 2 {
		t.Fatalf("tick 0 has %d tuples", len(tick0))
	}
	if tick0[0].Stream != 0 || tick0[0].Attrs[2] != 43 {
		t.Fatalf("first tuple wrong: %v", tick0[0])
	}
	if tick0[0].PayloadBytes != 100 {
		t.Fatalf("payload = %d", tick0[0].PayloadBytes)
	}
	if tr.Tick(5) != nil {
		t.Fatal("missing tick should be nil")
	}
}

func TestParseTraceArrivalStamps(t *testing.T) {
	tr, _ := ParseTrace(strings.NewReader(sampleTrace), 0)
	var last uint64
	for tick := int64(0); tick <= tr.MaxTick(); tick++ {
		for _, tp := range tr.Tick(tick) {
			if tp.Arrival <= last {
				t.Fatalf("arrival stamps not strictly increasing: %d after %d", tp.Arrival, last)
			}
			last = tp.Arrival
		}
	}
	if last != 4 {
		t.Fatalf("final arrival = %d, want 4", last)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"tick,stream,seq,attr0\n", // header only
		"0,0\n",                   // too few fields
		"x,0,0,1\n",               // bad tick
		"0,-1,0,1\n",              // bad stream
		"0,0,x,1\n",               // bad seq
		"0,0,0,zzz\n",             // bad attr
		"0,0,0,1,2\n0,0,1,1\n",    // mixed arity
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c), 0); err == nil {
			t.Errorf("trace %q should fail to parse", c)
		}
	}
}

// TestTraceRoundTripsGenerator: dumping a generator to CSV and re-parsing
// yields an identical workload.
func TestTraceRoundTripsGenerator(t *testing.T) {
	q := query.FourWay(60)
	prof := DriftProfile()
	prof.LambdaD = 5
	gen, _ := New(q, prof, 11)

	var buf bytes.Buffer
	fmt.Fprintln(&buf, "tick,stream,seq,attr0,attr1,attr2")
	type key struct {
		tick   int64
		stream int
		seq    uint64
	}
	want := map[key][]uint64{}
	for tick := int64(0); tick < 4; tick++ {
		for _, tp := range gen.Tick(tick) {
			fmt.Fprintf(&buf, "%d,%d,%d,%d,%d,%d\n", tick, tp.Stream, tp.Seq,
				tp.Attrs[0], tp.Attrs[1], tp.Attrs[2])
			want[key{tick, tp.Stream, tp.Seq}] = append([]uint64(nil), tp.Attrs...)
		}
	}

	tr, err := ParseTrace(&buf, prof.PayloadBytes)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for tick := int64(0); tick <= tr.MaxTick(); tick++ {
		for _, tp := range tr.Tick(tick) {
			got++
			w, ok := want[key{tick, tp.Stream, tp.Seq}]
			if !ok {
				t.Fatalf("unexpected tuple %v", tp)
			}
			for i := range w {
				if tp.Attrs[i] != w[i] {
					t.Fatalf("attr mismatch on %v", tp)
				}
			}
		}
	}
	if got != len(want) {
		t.Fatalf("replayed %d tuples, want %d", got, len(want))
	}
}
