package stream

import (
	"math"
	"testing"
	"testing/quick"

	"amri/internal/query"
)

func TestProfileValidate(t *testing.T) {
	if err := DriftProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DriftProfile()
	bad.LambdaD = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate should fail")
	}
	bad = DriftProfile()
	bad.Domains = nil
	if err := bad.Validate(); err == nil {
		t.Error("no domains should fail")
	}
	bad = DriftProfile()
	bad.Domains = []uint64{0}
	if err := bad.Validate(); err == nil {
		t.Error("zero domain should fail")
	}
	bad = SkewedProfile()
	bad.HotProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("HotProb > 1 should fail")
	}
}

func TestTickShape(t *testing.T) {
	q := query.FourWay(60)
	g, err := New(q, DriftProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := g.Tick(0)
	if len(batch) != 50*4 {
		t.Fatalf("batch size = %d, want 200", len(batch))
	}
	perStream := map[int]int{}
	for _, tp := range batch {
		perStream[tp.Stream]++
		if tp.TS != 0 {
			t.Fatalf("timestamp = %d", tp.TS)
		}
		if tp.Arity() != 3 {
			t.Fatalf("arity = %d", tp.Arity())
		}
		if tp.PayloadBytes != 120 {
			t.Fatalf("payload = %d", tp.PayloadBytes)
		}
	}
	for s := 0; s < 4; s++ {
		if perStream[s] != 50 {
			t.Fatalf("stream %d got %d tuples", s, perStream[s])
		}
	}
}

func TestSequencesMonotonic(t *testing.T) {
	q := query.FourWay(60)
	g, _ := New(q, DriftProfile(), 1)
	seen := map[int]uint64{}
	for tick := int64(0); tick < 3; tick++ {
		for _, tp := range g.Tick(tick) {
			if prev, ok := seen[tp.Stream]; ok && tp.Seq != prev+1 {
				t.Fatalf("stream %d seq %d after %d", tp.Stream, tp.Seq, prev)
			}
			seen[tp.Stream] = tp.Seq
		}
	}
}

func TestDomainsSymmetricAndDrift(t *testing.T) {
	q := query.FourWay(60)
	g, _ := New(q, DriftProfile(), 1)
	if g.NumPairs() != 6 {
		t.Fatalf("NumPairs = %d", g.NumPairs())
	}
	if g.DomainFor(0, 2, 0) != g.DomainFor(2, 0, 0) {
		t.Fatal("domains must be symmetric")
	}
	// Drift: epoch changes the assignment.
	d0 := g.DomainFor(0, 1, 0)
	d1 := g.DomainFor(0, 1, 120)
	if d0 == d1 {
		t.Fatal("epoch change should reassign domains")
	}
	if g.Epoch(0) != 0 || g.Epoch(119) != 0 || g.Epoch(120) != 1 {
		t.Fatal("epoch arithmetic wrong")
	}
}

func TestStableProfileNoDrift(t *testing.T) {
	q := query.FourWay(60)
	g, _ := New(q, StableProfile(), 1)
	if g.DomainFor(0, 1, 0) != g.DomainFor(0, 1, 100000) {
		t.Fatal("stable profile must not drift")
	}
	if g.Epoch(99999) != 0 {
		t.Fatal("stable profile is a single epoch")
	}
}

func TestSelectivityMatchesEmpirical(t *testing.T) {
	// Two independent draws from the same pair domain collide with
	// probability ~1/|domain|.
	q := query.FourWay(60)
	prof := StableProfile()
	prof.LambdaD = 2000
	g, _ := New(q, prof, 7)
	batch := g.Tick(0)
	spec0 := q.States[0]
	pos, _ := spec0.PosForPartner(1)
	ja := spec0.JAS[pos]
	spec1 := q.States[1]
	pos1, _ := spec1.PosForPartner(0)
	ja1 := spec1.JAS[pos1]

	var aVals, bVals []uint64
	for _, tp := range batch {
		switch tp.Stream {
		case 0:
			aVals = append(aVals, tp.Attrs[ja.Attr])
		case 1:
			bVals = append(bVals, tp.Attrs[ja1.Attr])
		}
	}
	bSet := map[uint64]int{}
	for _, v := range bVals {
		bSet[v]++
	}
	matches := 0
	for _, v := range aVals {
		matches += bSet[v]
	}
	want := float64(len(aVals)) * float64(len(bVals)) * g.Selectivity(0, 1, 0)
	got := float64(matches)
	if math.Abs(got-want)/want > 0.3 {
		t.Fatalf("empirical matches %g vs expected %g (selectivity %g)", got, want, g.Selectivity(0, 1, 0))
	}
}

func TestSkewConcentratesValues(t *testing.T) {
	q := query.FourWay(60)
	prof := SkewedProfile()
	prof.EpochTicks = 0
	prof.LambdaD = 3000
	g, _ := New(q, prof, 3)
	batch := g.Tick(0)
	dom := g.DomainFor(0, 1, 0)
	spec := q.States[0]
	pos, _ := spec.PosForPartner(1)
	attr := spec.JAS[pos].Attr
	hot := uint64(float64(dom) * prof.HotFrac)
	inHot, total := 0, 0
	for _, tp := range batch {
		if tp.Stream != 0 {
			continue
		}
		total++
		if tp.Attrs[attr] < hot {
			inHot++
		}
	}
	frac := float64(inHot) / float64(total)
	if frac < 0.7 {
		t.Fatalf("hot fraction = %g, want >= ~0.8", frac)
	}
}

func TestDeterminism(t *testing.T) {
	q := query.FourWay(60)
	run := func() []uint64 {
		g, _ := New(q, DriftProfile(), 42)
		var vals []uint64
		for tick := int64(0); tick < 2; tick++ {
			for _, tp := range g.Tick(tick) {
				vals = append(vals, tp.Attrs...)
			}
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

// Property: every generated value is inside its pair's domain (uniform
// profiles).
func TestValuesWithinDomain(t *testing.T) {
	q := query.FourWay(60)
	f := func(seed uint64, tick16 uint16) bool {
		g, _ := New(q, DriftProfile(), seed)
		tick := int64(tick16)
		for _, tp := range g.Tick(tick) {
			spec := q.States[tp.Stream]
			for _, ja := range spec.JAS {
				if tp.Attrs[ja.Attr] >= g.DomainFor(tp.Stream, ja.Partner, tick) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstyArrivalRate(t *testing.T) {
	prof := DriftProfile()
	prof.RateAmplitude = 0.5
	prof.RatePeriod = 40
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	// Peak at quarter period, trough at three quarters.
	peak := prof.RateAt(10)
	trough := prof.RateAt(30)
	if peak <= prof.LambdaD || trough >= prof.LambdaD {
		t.Fatalf("modulation wrong: peak %d trough %d base %d", peak, trough, prof.LambdaD)
	}
	// The generator actually emits the modulated counts.
	q := query.FourWay(60)
	g, _ := New(q, prof, 1)
	if got := len(g.Tick(10)); got != peak*4 {
		t.Fatalf("tick 10 emitted %d, want %d", got, peak*4)
	}
	if got := len(g.Tick(30)); got != trough*4 {
		t.Fatalf("tick 30 emitted %d, want %d", got, trough*4)
	}
	// Validation catches bad settings.
	bad := prof
	bad.RatePeriod = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("amplitude without period should fail")
	}
	bad = prof
	bad.RateAmplitude = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("amplitude > 1 should fail")
	}
}

func TestZeroAmplitudeIsConstantRate(t *testing.T) {
	prof := DriftProfile()
	for _, tick := range []int64{0, 7, 100, 9999} {
		if prof.RateAt(tick) != prof.LambdaD {
			t.Fatal("unmodulated profile must emit LambdaD")
		}
	}
}
