package stream

import (
	"strings"
	"testing"
)

// FuzzParseTrace: arbitrary input must never panic; accepted traces must be
// internally consistent (positive count, uniform arity, monotone arrivals).
func FuzzParseTrace(f *testing.F) {
	f.Add("tick,stream,seq,attr0\n0,0,0,5\n")
	f.Add("0,0,0,1,2,3\n1,1,0,4,5,6\n")
	f.Add("garbage")
	f.Add("0,0,0,\n")
	f.Add("-1,0,0,7\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseTrace(strings.NewReader(s), 8)
		if err != nil {
			return
		}
		if tr.Len() <= 0 {
			t.Fatal("accepted trace with no tuples")
		}
		if tr.Arity() <= 0 {
			t.Fatal("accepted trace with no attributes")
		}
		seen := 0
		var lastArrival uint64
		for tick := int64(-2); tick <= tr.MaxTick(); tick++ {
			for _, tp := range tr.Tick(tick) {
				seen++
				if len(tp.Attrs) != tr.Arity() {
					t.Fatalf("tuple arity %d != trace arity %d", len(tp.Attrs), tr.Arity())
				}
				if tick >= 0 && tp.Arrival <= lastArrival && tp.TS >= 0 {
					// Arrivals are file-ordered; within non-negative ticks
					// walked in order they only regress if ticks interleave
					// in the file, which is legal — just check positivity.
					if tp.Arrival == 0 {
						t.Fatal("unstamped tuple in parsed trace")
					}
				}
				lastArrival = tp.Arrival
			}
		}
	})
}
