package window

import (
	"testing"
	"testing/quick"

	"amri/internal/tuple"
)

func mk(ts int64) *tuple.Tuple { return tuple.New(0, uint64(ts), ts, nil) }

func TestAddExpireBasics(t *testing.T) {
	b := New(10, 0)
	for ts := int64(0); ts < 5; ts++ {
		b.Add(mk(ts))
	}
	if b.Len() != 5 || b.NumBuckets() != 5 {
		t.Fatalf("Len=%d buckets=%d", b.Len(), b.NumBuckets())
	}
	var dropped []*tuple.Tuple
	n := b.Expire(12, func(x *tuple.Tuple) { dropped = append(dropped, x) })
	// TS <= 2 expires.
	if n != 3 || len(dropped) != 3 {
		t.Fatalf("dropped %d", n)
	}
	for i, x := range dropped {
		if x.TS != int64(i) {
			t.Fatalf("drop order wrong: %v", dropped)
		}
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Expire(12, func(*tuple.Tuple) {}) != 0 {
		t.Fatal("second expire should drop nothing")
	}
}

func TestSlackDelaysExpiry(t *testing.T) {
	b := New(10, 5)
	b.Add(mk(0))
	if b.Expire(12, func(*tuple.Tuple) {}) != 0 {
		t.Fatal("slack should retain the tuple at now=12")
	}
	if b.Expire(15, func(*tuple.Tuple) {}) != 1 {
		t.Fatal("tuple should expire at now=15 (0 <= 15-10-5)")
	}
	if b.Window() != 10 || b.Slack() != 5 {
		t.Fatal("accessors wrong")
	}
	b.SetSlack(0)
	if b.Slack() != 0 {
		t.Fatal("SetSlack failed")
	}
}

func TestOutOfOrderAdds(t *testing.T) {
	b := New(10, 0)
	b.Add(mk(100))
	b.Add(mk(50)) // late
	if b.Expire(65, func(*tuple.Tuple) {}) != 1 {
		t.Fatal("the late tuple alone should expire")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestEmptyExpire(t *testing.T) {
	b := New(10, 0)
	if b.Expire(1000, func(*tuple.Tuple) {}) != 0 {
		t.Fatal("empty buckets should drop nothing")
	}
}

func TestMemBytesTracksContent(t *testing.T) {
	b := New(10, 0)
	m0 := b.MemBytes()
	b.Add(mk(1))
	if b.MemBytes() <= m0 {
		t.Fatal("MemBytes should grow")
	}
	b.Expire(100, func(*tuple.Tuple) {})
	if b.MemBytes() != m0 {
		t.Fatal("MemBytes should shrink back")
	}
}

// Property: after any add sequence and a full expiry sweep, exactly the
// tuples with TS > now-window-slack remain.
func TestExpiryExactness(t *testing.T) {
	f := func(tss []uint8, now8 uint8, win8, slack8 uint8) bool {
		win := int64(win8%20) + 1
		slack := int64(slack8 % 5)
		now := int64(now8)
		b := New(win, slack)
		for _, ts := range tss {
			b.Add(mk(int64(ts)))
		}
		b.Expire(now, func(*tuple.Tuple) {})
		wantLive := 0
		for _, ts := range tss {
			if int64(ts) > now-win-slack {
				wantLive++
			}
		}
		return b.Len() == wantLive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
