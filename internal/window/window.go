// Package window provides the sliding-window retention structure shared by
// every state implementation: tuples bucketed by logical timestamp, expired
// exactly when their timestamp ages out of the window — correct under any
// bounded arrival disorder, with an optional watermark slack that retains
// tuples long enough for late drivers to find their event-time matches.
package window

import (
	"slices"

	"amri/internal/tuple"
)

// Buckets retains tuples per logical timestamp.
type Buckets struct {
	window int64
	slack  int64

	byTS    map[int64][]*tuple.Tuple
	minTS   int64
	haveMin bool
	count   int
}

// New builds an empty retention structure with the given window length (in
// ticks) and watermark slack (extra retention for out-of-order arrivals).
func New(windowTicks, slack int64) *Buckets {
	return &Buckets{
		window: windowTicks,
		slack:  slack,
		byTS:   make(map[int64][]*tuple.Tuple),
	}
}

// Add records a stored tuple under its timestamp.
func (b *Buckets) Add(t *tuple.Tuple) {
	b.byTS[t.TS] = append(b.byTS[t.TS], t)
	if !b.haveMin || t.TS < b.minTS {
		b.minTS = t.TS
		b.haveMin = true
	}
	b.count++
}

// Expire calls drop for every retained tuple whose timestamp has aged out
// at the given time (TS ≤ now − window − slack) and forgets it, returning
// the number dropped. Buckets are visited in timestamp order.
func (b *Buckets) Expire(now int64, drop func(*tuple.Tuple)) int {
	if !b.haveMin {
		return 0
	}
	dropped := 0
	for ts := b.minTS; ts <= now-b.window-b.slack; ts++ {
		bucket, ok := b.byTS[ts]
		b.minTS = ts + 1
		if !ok {
			continue
		}
		for _, t := range bucket {
			drop(t)
			dropped++
		}
		b.count -= len(bucket)
		delete(b.byTS, ts)
	}
	return dropped
}

// Each visits every retained tuple in unspecified order — the snapshot
// hook checkpointing uses to capture a state's contents for replay.
func (b *Buckets) Each(visit func(*tuple.Tuple)) {
	for _, bucket := range b.byTS {
		for _, t := range bucket {
			visit(t)
		}
	}
}

// EachOrdered visits every retained tuple in ascending timestamp order
// (insertion order within a timestamp) — the deterministic order durable
// checkpoints are encoded in, where Each's map-order walk would make the
// same state serialize differently run to run.
func (b *Buckets) EachOrdered(visit func(*tuple.Tuple)) {
	keys := make([]int64, 0, len(b.byTS))
	for ts := range b.byTS {
		keys = append(keys, ts)
	}
	slices.Sort(keys)
	for _, ts := range keys {
		for _, t := range b.byTS[ts] {
			visit(t)
		}
	}
}

// Len returns the number of retained tuples.
func (b *Buckets) Len() int { return b.count }

// NumBuckets returns the number of distinct retained timestamps.
func (b *Buckets) NumBuckets() int { return len(b.byTS) }

// Window returns the configured window length.
func (b *Buckets) Window() int64 { return b.window }

// Slack returns the configured watermark slack.
func (b *Buckets) Slack() int64 { return b.slack }

// SetSlack adjusts the watermark slack (takes effect on the next Expire).
func (b *Buckets) SetSlack(slack int64) { b.slack = slack }

// MemBytes returns the simulated resident size of the retention metadata
// (the tuples themselves are accounted by their store).
func (b *Buckets) MemBytes() int {
	return 64 + 48*len(b.byTS) + 8*b.count
}
