package pipeline

import (
	"sync"
	"testing"

	"amri/internal/tuple"
)

func TestMailboxDropNewest(t *testing.T) {
	var shed []int
	mb := newBoundedMailbox[int](2, PolicyDropNewest, func(v int, r PushResult) {
		if r != PushShedNewest {
			t.Errorf("onShed reason = %v, want PushShedNewest", r)
		}
		shed = append(shed, v)
	})
	if mb.Push(1) != PushAccepted || mb.Push(2) != PushAccepted {
		t.Fatal("pushes under capacity must be accepted")
	}
	if got := mb.Push(3); got != PushShedNewest {
		t.Fatalf("push past cap = %v, want PushShedNewest", got)
	}
	if mb.Sheds() != 1 || len(shed) != 1 || shed[0] != 3 {
		t.Fatalf("shed accounting wrong: sheds=%d shed=%v", mb.Sheds(), shed)
	}
	// The queue keeps the oldest two, in order.
	for _, want := range []int{1, 2} {
		if v, ok := mb.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestMailboxDropOldest(t *testing.T) {
	var shed []int
	mb := newBoundedMailbox[int](2, PolicyDropOldest, func(v int, r PushResult) {
		if r != PushShedOldest {
			t.Errorf("onShed reason = %v, want PushShedOldest", r)
		}
		shed = append(shed, v)
	})
	mb.Push(1)
	mb.Push(2)
	if got := mb.Push(3); got != PushShedOldest {
		t.Fatalf("push past cap = %v, want PushShedOldest", got)
	}
	if len(shed) != 1 || shed[0] != 1 {
		t.Fatalf("drop-oldest must evict the head, shed %v", shed)
	}
	// The queue keeps the newest two.
	for _, want := range []int{2, 3} {
		if v, ok := mb.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestMailboxBlockSpillsOnPush(t *testing.T) {
	mb := newBoundedMailbox[int](1, PolicyBlock, nil)
	mb.Push(1)
	// Operator-side Push must never block even at capacity: it spills.
	if got := mb.Push(2); got != PushAccepted {
		t.Fatalf("Push under PolicyBlock = %v, want spill-accept", got)
	}
	if mb.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (spilled)", mb.Len())
	}
	if mb.Sheds() != 0 {
		t.Fatal("PolicyBlock must not shed")
	}
}

func TestMailboxPushWaitBackpressure(t *testing.T) {
	mb := newBoundedMailbox[int](1, PolicyBlock, nil)
	mb.Push(1)
	entered := make(chan struct{})
	released := make(chan PushResult)
	go func() {
		close(entered)
		released <- mb.PushWait(2)
	}()
	<-entered
	// The producer is (about to be) parked on a full mailbox; a Pop must
	// release it.
	if v, ok := mb.Pop(); !ok || v != 1 {
		t.Fatal("Pop failed")
	}
	if r := <-released; r != PushAccepted {
		t.Fatalf("PushWait = %v after space freed", r)
	}
	if v, ok := mb.Pop(); !ok || v != 2 {
		t.Fatalf("waited push not delivered: %d,%v", v, ok)
	}
}

// TestMailboxClosePushRace is the close/push semantics contract under
// contention: producers hammer Push/PushWait while the mailbox closes
// mid-stream. Every push must resolve to exactly one of accepted (and then
// be drained) or PushClosed (and then NOT be drained) — no message may be
// both refused and delivered, and none may vanish unaccounted.
func TestMailboxClosePushRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		mb := newBoundedMailbox[int](4, PolicyBlock, nil)
		const producers, per = 4, 100
		var accepted, refused sync.Map
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(base int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					v := base*per + i
					var r PushResult
					if i%2 == 0 {
						r = mb.Push(v)
					} else {
						r = mb.PushWait(v)
					}
					switch r {
					case PushAccepted:
						accepted.Store(v, true)
					case PushClosed:
						refused.Store(v, true)
					default:
						t.Errorf("unexpected push result %v", r)
					}
				}
			}(p)
		}
		// Consumer drains concurrently so PushWait never parks forever,
		// then closes the mailbox mid-stream and drains the tail.
		drained := make(map[int]bool)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				v, ok := mb.Pop()
				if !ok {
					return
				}
				drained[v] = true
				if i == 97 {
					mb.Close()
				}
			}
		}()
		wg.Wait()
		mb.Close() // no-op if the consumer already closed
		<-done

		var nAccepted, nRefused int
		accepted.Range(func(k, _ any) bool {
			nAccepted++
			if !drained[k.(int)] {
				t.Fatalf("iter %d: accepted message %d never drained", iter, k)
			}
			return true
		})
		refused.Range(func(k, _ any) bool {
			nRefused++
			if drained[k.(int)] {
				t.Fatalf("iter %d: refused message %d was delivered anyway", iter, k)
			}
			return true
		})
		if nAccepted+nRefused != producers*per {
			t.Fatalf("iter %d: %d+%d pushes accounted, want %d",
				iter, nAccepted, nRefused, producers*per)
		}
		if len(drained) != nAccepted {
			t.Fatalf("iter %d: drained %d != accepted %d", iter, len(drained), nAccepted)
		}
	}
}

// TestMailboxDropOldestAccountsVictimKind pins the shed-accounting
// contract Run relies on: under drop-oldest the onShed hook receives the
// EVICTED message, so the ingest/probe split is charged to the message
// actually lost — not to whatever the pusher happened to be carrying. A
// full mailbox holding an ingest that a composite pushes past must record
// one ingest shed and zero probe sheds.
func TestMailboxDropOldestAccountsVictimKind(t *testing.T) {
	var ingestShed, probeShed int
	account := func(m message, r PushResult) {
		if r != PushShedOldest {
			t.Errorf("onShed reason = %v, want PushShedOldest", r)
		}
		// Mirrors run.accountShed's kind split.
		if m.ingest != nil {
			ingestShed++
		} else {
			probeShed++
		}
	}
	mb := newBoundedMailbox[message](1, PolicyDropOldest, account)

	queuedIngest := message{ingest: &tuple.Tuple{Seq: 1}}
	pushedComp := message{comp: tuple.NewComposite(4, &tuple.Tuple{Seq: 2})}
	mb.Push(queuedIngest)
	if got := mb.Push(pushedComp); got != PushShedOldest {
		t.Fatalf("push past cap = %v, want PushShedOldest", got)
	}
	if ingestShed != 1 || probeShed != 0 {
		t.Fatalf("shed split = %d ingest / %d probe, want the evicted ingest charged",
			ingestShed, probeShed)
	}
	// The survivor is the pushed composite.
	if v, ok := mb.Pop(); !ok || v.comp == nil || v.comp.Parts[0].Seq != 2 {
		t.Fatalf("survivor = %+v, want the pushed composite", v)
	}

	// And symmetrically: evicting a queued composite with an ingest push
	// charges the probe side.
	ingestShed, probeShed = 0, 0
	mb2 := newBoundedMailbox[message](1, PolicyDropOldest, account)
	mb2.Push(message{comp: tuple.NewComposite(4, &tuple.Tuple{Seq: 3})})
	mb2.Push(message{ingest: &tuple.Tuple{Seq: 4}})
	if ingestShed != 0 || probeShed != 1 {
		t.Fatalf("shed split = %d ingest / %d probe, want the evicted composite charged",
			ingestShed, probeShed)
	}
	if v, ok := mb2.Pop(); !ok || v.ingest == nil || v.ingest.Seq != 4 {
		t.Fatalf("survivor = %+v, want the pushed ingest", v)
	}
}

// TestMailboxDropNewestAccountsPusherKind is the drop-newest twin: the
// shed message IS the pushed one, so its kind is charged even when the
// queue holds the other kind.
func TestMailboxDropNewestAccountsPusherKind(t *testing.T) {
	var ingestShed, probeShed int
	mb := newBoundedMailbox[message](1, PolicyDropNewest, func(m message, r PushResult) {
		if r != PushShedNewest {
			t.Errorf("onShed reason = %v, want PushShedNewest", r)
		}
		if m.ingest != nil {
			ingestShed++
		} else {
			probeShed++
		}
	})
	mb.Push(message{ingest: &tuple.Tuple{Seq: 1}})
	if got := mb.Push(message{comp: tuple.NewComposite(4, &tuple.Tuple{Seq: 2})}); got != PushShedNewest {
		t.Fatalf("push past cap = %v, want PushShedNewest", got)
	}
	if ingestShed != 0 || probeShed != 1 {
		t.Fatalf("shed split = %d ingest / %d probe, want the refused composite charged",
			ingestShed, probeShed)
	}
	// The queued ingest survives untouched.
	if v, ok := mb.Pop(); !ok || v.ingest == nil || v.ingest.Seq != 1 {
		t.Fatalf("survivor = %+v, want the queued ingest", v)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]OverloadPolicy{
		"block": PolicyBlock, "drop-newest": PolicyDropNewest, "drop-oldest": PolicyDropOldest,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v,%v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy must not parse")
	}
}

// TestMailboxCloseMidBatch pins PushWaitBatch's close semantics under a
// racing consumer: when Close lands while the producer is parked mid-batch,
// the results must be a clean bisection — an accepted prefix (every one of
// which the consumer can drain) followed by a PushClosed suffix, nothing
// interleaved, nothing lost, nothing double-owned.
func TestMailboxCloseMidBatch(t *testing.T) {
	const batchLen, cap, popBefore = 100, 4, 20
	for iter := 0; iter < 25; iter++ {
		m := newBoundedMailbox[int](cap, PolicyBlock, nil)
		done := make(chan []PushResult, 1)
		batch := make([]int, batchLen)
		for i := range batch {
			batch[i] = i
		}
		go func() { done <- m.PushWaitBatch(batch) }()

		// Drain a prefix, close mid-batch, then drain whatever landed before
		// the close won the lock.
		popped := 0
		for popped < popBefore {
			v, ok := m.Pop()
			if !ok {
				t.Fatal("mailbox closed before the consumer closed it")
			}
			if v != popped {
				t.Fatalf("FIFO broken: got %d, want %d", v, popped)
			}
			popped++
		}
		m.Close()
		for {
			v, ok := m.Pop()
			if !ok {
				break
			}
			if v != popped {
				t.Fatalf("FIFO broken after close: got %d, want %d", v, popped)
			}
			popped++
		}

		res := <-done
		accepted := 0
		for i, r := range res {
			switch r {
			case PushAccepted:
				if i != accepted {
					t.Fatalf("iter %d: accepts are not a prefix: item %d accepted after a refusal", iter, i)
				}
				accepted++
			case PushClosed:
				// Must stay closed for the rest of the batch; the prefix
				// check above catches any accept that follows.
			default:
				t.Fatalf("iter %d: item %d got unexpected result %d", iter, i, r)
			}
		}
		// Ownership is exact: every accepted item was drained, every refused
		// item was never enqueued.
		if accepted != popped {
			t.Fatalf("iter %d: %d items accepted but %d drained", iter, accepted, popped)
		}
		// The close genuinely bisected the batch: at most cap more items can
		// land between the consumer's last pop and the close.
		if accepted < popBefore || accepted > popBefore+cap {
			t.Fatalf("iter %d: accepted %d, want within [%d, %d]", iter, accepted, popBefore, popBefore+cap)
		}
	}
}
