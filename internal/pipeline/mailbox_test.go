package pipeline

import (
	"sync"
	"testing"
)

func TestMailboxDropNewest(t *testing.T) {
	var shed []int
	mb := newBoundedMailbox[int](2, PolicyDropNewest, func(v int, r PushResult) {
		if r != PushShedNewest {
			t.Errorf("onShed reason = %v, want PushShedNewest", r)
		}
		shed = append(shed, v)
	})
	if mb.Push(1) != PushAccepted || mb.Push(2) != PushAccepted {
		t.Fatal("pushes under capacity must be accepted")
	}
	if got := mb.Push(3); got != PushShedNewest {
		t.Fatalf("push past cap = %v, want PushShedNewest", got)
	}
	if mb.Sheds() != 1 || len(shed) != 1 || shed[0] != 3 {
		t.Fatalf("shed accounting wrong: sheds=%d shed=%v", mb.Sheds(), shed)
	}
	// The queue keeps the oldest two, in order.
	for _, want := range []int{1, 2} {
		if v, ok := mb.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestMailboxDropOldest(t *testing.T) {
	var shed []int
	mb := newBoundedMailbox[int](2, PolicyDropOldest, func(v int, r PushResult) {
		if r != PushShedOldest {
			t.Errorf("onShed reason = %v, want PushShedOldest", r)
		}
		shed = append(shed, v)
	})
	mb.Push(1)
	mb.Push(2)
	if got := mb.Push(3); got != PushShedOldest {
		t.Fatalf("push past cap = %v, want PushShedOldest", got)
	}
	if len(shed) != 1 || shed[0] != 1 {
		t.Fatalf("drop-oldest must evict the head, shed %v", shed)
	}
	// The queue keeps the newest two.
	for _, want := range []int{2, 3} {
		if v, ok := mb.Pop(); !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestMailboxBlockSpillsOnPush(t *testing.T) {
	mb := newBoundedMailbox[int](1, PolicyBlock, nil)
	mb.Push(1)
	// Operator-side Push must never block even at capacity: it spills.
	if got := mb.Push(2); got != PushAccepted {
		t.Fatalf("Push under PolicyBlock = %v, want spill-accept", got)
	}
	if mb.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (spilled)", mb.Len())
	}
	if mb.Sheds() != 0 {
		t.Fatal("PolicyBlock must not shed")
	}
}

func TestMailboxPushWaitBackpressure(t *testing.T) {
	mb := newBoundedMailbox[int](1, PolicyBlock, nil)
	mb.Push(1)
	entered := make(chan struct{})
	released := make(chan PushResult)
	go func() {
		close(entered)
		released <- mb.PushWait(2)
	}()
	<-entered
	// The producer is (about to be) parked on a full mailbox; a Pop must
	// release it.
	if v, ok := mb.Pop(); !ok || v != 1 {
		t.Fatal("Pop failed")
	}
	if r := <-released; r != PushAccepted {
		t.Fatalf("PushWait = %v after space freed", r)
	}
	if v, ok := mb.Pop(); !ok || v != 2 {
		t.Fatalf("waited push not delivered: %d,%v", v, ok)
	}
}

// TestMailboxClosePushRace is the close/push semantics contract under
// contention: producers hammer Push/PushWait while the mailbox closes
// mid-stream. Every push must resolve to exactly one of accepted (and then
// be drained) or PushClosed (and then NOT be drained) — no message may be
// both refused and delivered, and none may vanish unaccounted.
func TestMailboxClosePushRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		mb := newBoundedMailbox[int](4, PolicyBlock, nil)
		const producers, per = 4, 100
		var accepted, refused sync.Map
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(base int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					v := base*per + i
					var r PushResult
					if i%2 == 0 {
						r = mb.Push(v)
					} else {
						r = mb.PushWait(v)
					}
					switch r {
					case PushAccepted:
						accepted.Store(v, true)
					case PushClosed:
						refused.Store(v, true)
					default:
						t.Errorf("unexpected push result %v", r)
					}
				}
			}(p)
		}
		// Consumer drains concurrently so PushWait never parks forever,
		// then closes the mailbox mid-stream and drains the tail.
		drained := make(map[int]bool)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				v, ok := mb.Pop()
				if !ok {
					return
				}
				drained[v] = true
				if i == 97 {
					mb.Close()
				}
			}
		}()
		wg.Wait()
		mb.Close() // no-op if the consumer already closed
		<-done

		var nAccepted, nRefused int
		accepted.Range(func(k, _ any) bool {
			nAccepted++
			if !drained[k.(int)] {
				t.Fatalf("iter %d: accepted message %d never drained", iter, k)
			}
			return true
		})
		refused.Range(func(k, _ any) bool {
			nRefused++
			if drained[k.(int)] {
				t.Fatalf("iter %d: refused message %d was delivered anyway", iter, k)
			}
			return true
		})
		if nAccepted+nRefused != producers*per {
			t.Fatalf("iter %d: %d+%d pushes accounted, want %d",
				iter, nAccepted, nRefused, producers*per)
		}
		if len(drained) != nAccepted {
			t.Fatalf("iter %d: drained %d != accepted %d", iter, len(drained), nAccepted)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]OverloadPolicy{
		"block": PolicyBlock, "drop-newest": PolicyDropNewest, "drop-oldest": PolicyDropOldest,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v,%v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy must not parse")
	}
}
