package pipeline

// Race regression tests for the paper's central concurrency claim: live
// index tuning (the AdaptiveIndex migrating to a new configuration, via
// internal/bitindex's migration path) proceeds concurrently with probe
// traffic against the same state. `go test -race ./internal/pipeline`
// drives the production operator locking protocol from multiple
// goroutines; any regression in the mutex discipline amrivet's mutexguard
// encodes statically shows up here dynamically.

import (
	"sync"
	"testing"

	"amri/internal/core"
	"amri/internal/query"
	"amri/internal/stream"
	"amri/internal/tuple"
	"amri/internal/window"
)

// newTestOperator assembles a real operator for state 0 of the four-way
// join, mirroring Run's construction. shards > 0 builds the lock-striped
// index and the shared-lock probe path.
func newTestOperator(t *testing.T, q *query.Query, autoTuneEvery uint64, seed uint64, shards int) *operator {
	t.Helper()
	spec := q.States[0]
	attrMap := make([]int, spec.NumAttrs())
	for i, ja := range spec.JAS {
		attrMap[i] = ja.Attr
	}
	ix, err := core.New(core.Options{
		NumAttrs:      spec.NumAttrs(),
		AttrMap:       attrMap,
		BitBudget:     12,
		AutoTuneEvery: autoTuneEvery,
		Seed:          seed,
		Shards:        shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := &operator{
		spec:     spec,
		mb:       newMailbox[message](),
		window:   q.WindowTicks,
		sharded:  shards > 0,
		ix:       ix,
		retained: window.New(q.WindowTicks, 0),
	}
	o.cur.Store(ix)
	return o
}

// TestConcurrentProbeRetuneRace hammers one operator from concurrent
// inserter, prober and observer goroutines with live tuning set
// aggressively low, so index migrations interleave with probe traffic on
// the operator's lock. The assertions check that migrations really
// happened mid-traffic (otherwise the test exercises nothing) and that
// the index never loses tuples across them; under -race the run also
// validates the locking protocol itself.
func TestConcurrentProbeRetuneRace(t *testing.T) {
	runConcurrentProbeRetune(t, 0)
}

// TestConcurrentProbeRetuneRaceSharded is the same hammer against the
// lock-striped index: probes hold the operator lock for reading, so they
// genuinely overlap each other AND the incremental migrations the insert
// path advances.
func TestConcurrentProbeRetuneRaceSharded(t *testing.T) {
	runConcurrentProbeRetune(t, 8)
}

func runConcurrentProbeRetune(t *testing.T, shards int) {
	q := query.FourWay(60)
	op := newTestOperator(t, q, 64, 7, shards)

	gen, err := stream.New(q, smallProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 60
	// Pre-generate the workload so the goroutines below only touch the
	// operator: byStream[s] holds stream s's tuples in arrival order.
	byStream := make([][]*tuple.Tuple, q.NumStreams())
	for tick := int64(0); tick < ticks; tick++ {
		for _, tp := range gen.Tick(tick) {
			byStream[tp.Stream] = append(byStream[tp.Stream], tp)
		}
	}

	var workers sync.WaitGroup
	// Inserter: stream 0's arrivals feed the state.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for _, tp := range byStream[0] {
			op.insert(tp)
		}
	}()
	// Probers: each partner stream's arrivals probe the state with its own
	// access pattern; the skew (relative to the uniform starting
	// configuration) is what makes the tuner migrate.
	probed := make([]int, 3)
	for i, s := range []int{1, 2, 3} {
		workers.Add(1)
		go func(slot, src int) {
			defer workers.Done()
			sc := &probeScratch{vals: make([]tuple.Value, op.spec.NumAttrs())}
			for _, tp := range byStream[src] {
				comp := tuple.NewComposite(q.NumStreams(), tp)
				op.probe(comp, sc)
				probed[slot]++
			}
		}(i, s)
	}
	// Observer: the cross-operator surfaces Run reads from other
	// goroutines (atomic length, locked retune count).
	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = op.length.Load()
			_ = op.retunes()
		}
	}()
	workers.Wait()
	close(stop)
	observer.Wait()

	for i, n := range probed {
		if n == 0 {
			t.Fatalf("prober %d issued no probes", i)
		}
	}
	if got := op.retunes(); got == 0 {
		t.Fatal("no migration happened concurrently with probe traffic; lower AutoTuneEvery")
	}
	op.mu.Lock()
	defer op.mu.Unlock()
	if got, want := op.ix.Len(), len(byStream[0]); got != want {
		t.Fatalf("index holds %d tuples after concurrent retunes, want %d (migration lost tuples)", got, want)
	}
}

// TestRunConcurrentRetuneUnderRace runs the whole pipeline with live
// tuning an order of magnitude more aggressive than the default, so the
// full operator graph migrates repeatedly while composites are in flight.
func TestRunConcurrentRetuneUnderRace(t *testing.T) {
	r, err := Run(Config{
		Profile:       smallProfile(),
		Seed:          11,
		Ticks:         120,
		Method:        core.MethodCDIAHighest,
		AutoTuneEvery: 150,
		Explore:       0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Retunes == 0 {
		t.Fatal("aggressive live tuning produced no migrations")
	}
	if r.Results == 0 {
		t.Fatal("no join results under concurrent retuning")
	}
}
