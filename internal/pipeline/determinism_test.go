package pipeline

// Same-seed determinism across the concurrency axes the tentpole added:
// the result SET of a run must not depend on the probe worker count or the
// index shard count — parallel fan-out may reorder result emission, never
// change membership. The digest tests pin that for fault-free runs and for
// a seeded chaos plan (panics, saturation, delays, migration aborts), the
// configuration the acceptance bar "sharded digest == serial digest"
// names.

import (
	"fmt"
	"testing"
	"time"

	"amri/internal/core"
	"amri/internal/fault"
)

// detConfig is the shared base: bounded mailboxes under PolicyBlock (the
// spill-don't-shed policy that keeps the probe path lossless) and live
// tuning aggressive enough that migrations interleave with traffic.
func detConfig(workers, shards int, plan fault.Plan) Config {
	return Config{
		Profile:         smallProfile(),
		Seed:            23,
		Ticks:           100,
		Method:          core.MethodCDIAHighest,
		AutoTuneEvery:   300,
		Explore:         0.1,
		MailboxCap:      64,
		ShedPolicy:      PolicyBlock,
		Fault:           plan,
		CheckpointEvery: 64,
		MaxRestarts:     50,
		RestartBackoff:  50 * time.Microsecond,
		ProbeWorkers:    workers,
		Shards:          shards,
	}
}

func digestRun(t *testing.T, cfg Config) (*Result, *resultDigest) {
	t.Helper()
	d := &resultDigest{}
	cfg.OnResult = d.add
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, d
}

func assertSameResultSet(t *testing.T, label string, serial, got *Result, want, d *resultDigest) {
	t.Helper()
	if got.TuplesIngested != serial.TuplesIngested {
		t.Errorf("%s: ingested %d, serial %d", label, got.TuplesIngested, serial.TuplesIngested)
	}
	if got.Results != serial.Results {
		t.Errorf("%s: results %d, serial %d", label, got.Results, serial.Results)
	}
	if d.n != want.n || d.xor != want.xor {
		t.Errorf("%s: digest (n=%d, %#x) != serial (n=%d, %#x)",
			label, d.n, d.xor, want.n, want.xor)
	}
}

// TestShardedDigestMatchesSerial: the 1-worker flat-index run is the
// reference; every combination of worker pool size and shard count must
// reproduce its exact result set.
func TestShardedDigestMatchesSerial(t *testing.T) {
	serial, want := digestRun(t, detConfig(1, 0, fault.None))
	if serial.Results == 0 {
		t.Fatal("serial run produced no results; workload broken")
	}
	cases := []struct {
		label           string
		workers, shards int
	}{
		{"1 worker, 1 shard", 1, 1},
		{"4 workers, flat index", 4, 0},
		{"4 workers, 8 shards", 4, 8},
		{"8 workers, 8 shards", 8, 8},
	}
	for _, c := range cases {
		got, d := digestRun(t, detConfig(c.workers, c.shards, fault.None))
		assertSameResultSet(t, c.label, serial, got, want, d)
	}
}

// TestEpochProbeMatchesHeldLockBaseline pins the probe-path refactor: the
// lock-free epoch probe (the default) must reproduce the exact result set
// and fault accounting of the held-lock baseline it replaced, with the
// worker pool and shard fan-out at full width, chaos off and on. A digest
// or count mismatch here means the epoch pointer lost the old-or-new
// atomicity the read lock used to provide.
func TestEpochProbeMatchesHeldLockBaseline(t *testing.T) {
	chaos := fault.Plan{
		Seed:         7,
		PanicRate:    0.004,
		SaturateRate: 0.01,
		DelayRate:    0.002,
		Delay:        10 * time.Microsecond,
		AbortRate:    1.0,
		PressureRate: 0.01,
	}
	for _, pc := range []struct {
		label string
		plan  fault.Plan
	}{
		{"fault-free", fault.None},
		{"chaos", chaos},
	} {
		base := detConfig(8, 8, pc.plan)
		base.HeldLockProbes = true
		held, want := digestRun(t, base)
		if held.Results == 0 {
			t.Fatalf("%s: held-lock baseline produced no results; workload broken", pc.label)
		}
		got, d := digestRun(t, detConfig(8, 8, pc.plan))
		assertSameResultSet(t, pc.label+" epoch vs held-lock", held, got, want, d)
		if got.Restarts != held.Restarts {
			t.Errorf("%s: restarts %d, held-lock %d", pc.label, got.Restarts, held.Restarts)
		}
		if got.Sheds != held.Sheds {
			t.Errorf("%s: sheds %d, held-lock %d", pc.label, got.Sheds, held.Sheds)
		}
	}
}

// TestDispatchBatchDeterminism pins the deque-dispatch refactor along its
// new tuning axis: the result set must not depend on the hand-off grain.
// DispatchBatch changes how jobs clump onto deques and therefore how much
// stealing happens — a digest shift at any grain means some statistic or
// result leaked out of the tick-barrier flush order. Swept with chaos off
// and on (grain also reshapes which goroutine trips an injected fault).
func TestDispatchBatchDeterminism(t *testing.T) {
	chaos := fault.Plan{
		Seed:         7,
		PanicRate:    0.004,
		SaturateRate: 0.01,
		DelayRate:    0.002,
		Delay:        10 * time.Microsecond,
		AbortRate:    1.0,
		PressureRate: 0.01,
	}
	for _, pc := range []struct {
		label string
		plan  fault.Plan
	}{
		{"fault-free", fault.None},
		{"chaos", chaos},
	} {
		serial, want := digestRun(t, detConfig(1, 0, pc.plan))
		if serial.Results == 0 {
			t.Fatalf("%s: serial reference produced no results; workload broken", pc.label)
		}
		for _, batch := range []int{1, 16, 256} {
			for _, workers := range []int{1, 2, 8} {
				cfg := detConfig(workers, 8, pc.plan)
				cfg.DispatchBatch = batch
				got, d := digestRun(t, cfg)
				label := fmt.Sprintf("%s batch=%d workers=%d", pc.label, batch, workers)
				assertSameResultSet(t, label, serial, got, want, d)
			}
		}
	}
}

// TestShardedDigestMatchesSerialUnderFaults repeats the digest comparison
// with the chaos plan live: operator panics, forced saturation, delivery
// stalls, every migration aborted mid-step, memory pressure. Fault
// decisions are keyed to per-(kind, actor) event counters whose ingest
// sequences do not depend on probe scheduling, so the loss is identical
// run to run — and therefore so is the surviving result set.
func TestShardedDigestMatchesSerialUnderFaults(t *testing.T) {
	plan := fault.Plan{
		Seed:         7,
		PanicRate:    0.004,
		SaturateRate: 0.01,
		DelayRate:    0.002,
		Delay:        10 * time.Microsecond,
		AbortRate:    1.0,
		PressureRate: 0.01,
	}
	serial, want := digestRun(t, detConfig(1, 0, plan))
	if serial.Results == 0 {
		t.Fatal("serial chaos run produced no results")
	}
	if serial.Restarts == 0 || serial.IngestShed == 0 {
		t.Fatalf("chaos plan not exercised: %+v", serial)
	}
	cases := []struct {
		label           string
		workers, shards int
	}{
		{"1 worker, 8 shards", 1, 8},
		{"4 workers, 8 shards", 4, 8},
		{"8 workers, 8 shards", 8, 8},
	}
	for _, c := range cases {
		got, d := digestRun(t, detConfig(c.workers, c.shards, plan))
		assertSameResultSet(t, c.label, serial, got, want, d)
		// Fault loss accounting must be reproducible too, not just the
		// survivors: same panics, same restarts, same forced sheds.
		if got.Restarts != serial.Restarts {
			t.Errorf("%s: restarts %d, serial %d", c.label, got.Restarts, serial.Restarts)
		}
		if got.IngestShed != serial.IngestShed {
			t.Errorf("%s: ingest sheds %d, serial %d", c.label, got.IngestShed, serial.IngestShed)
		}
		if got.StateLost != serial.StateLost {
			t.Errorf("%s: state lost %d, serial %d", c.label, got.StateLost, serial.StateLost)
		}
	}
}
