package pipeline

// Durability regression suite: WAL-backed checkpoints must make the
// pipeline crash-transparent. The acceptance pin is the crash-point sweep —
// a durable run killed at EVERY tick boundary and resumed by Recover must
// end digest-identical to the uncrashed serial run, with zero state loss
// and exact arrival conservation, at full worker/shard fan-out, chaos on
// and off.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"amri/internal/bitindex"
	"amri/internal/fault"
	"amri/internal/storage"
	"amri/internal/tuple"
)

// sweepChaos is the fault plan the durable tests inject when chaos is on:
// the same storm the epoch-path pin uses (panics, saturation, stalls,
// every migration aborted, memory pressure).
func sweepChaos() fault.Plan {
	return fault.Plan{
		Seed:         7,
		PanicRate:    0.004,
		SaturateRate: 0.01,
		DelayRate:    0.002,
		Delay:        10 * time.Microsecond,
		AbortRate:    1.0,
		PressureRate: 0.01,
	}
}

// arrivals is the post-generator workload size for a detConfig run: the
// small profile has constant per-stream rate LambdaD over 4 streams.
func arrivals(cfg Config) uint64 {
	return uint64(cfg.Ticks) * uint64(cfg.Profile.LambdaD) * 4
}

// runThroughCrashes executes a durable run to completion through every
// scheduled crash point — Run, then Recover until the plan is out of
// crashes — folding all segments' results into one digest. The returned
// Result is the final segment's, whose counters are cumulative.
func runThroughCrashes(t *testing.T, cfg Config) (*Result, *resultDigest) {
	t.Helper()
	d := &resultDigest{}
	cfg.OnResult = d.add
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for res.Crashed {
		res, err = Recover(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	return res, d
}

func assertConserved(t *testing.T, label string, cfg Config, res *Result) {
	t.Helper()
	if got := res.TuplesIngested + res.IngestShed + res.IngestLost; got != arrivals(cfg) {
		t.Errorf("%s: conservation broken: ingested %d + shed %d + lost %d = %d, want %d arrivals",
			label, res.TuplesIngested, res.IngestShed, res.IngestLost, got, arrivals(cfg))
	}
}

// TestDurabilityInvisibleWhenUncrashed: turning on the durable store must
// not perturb the result set — a durable run with no crash schedule is
// digest-identical to the plain in-memory run.
func TestDurabilityInvisibleWhenUncrashed(t *testing.T) {
	serial, want := digestRun(t, detConfig(4, 8, fault.None))
	cfg := detConfig(4, 8, fault.None)
	cfg.Durable = storage.NewMemStore()
	got, d := digestRun(t, cfg)
	assertSameResultSet(t, "durable vs plain", serial, got, want, d)
	if got.Crashed {
		t.Error("uncrashed durable run reports Crashed")
	}
}

// TestCrashPointSweep is the acceptance pin: with durability on, a run
// killed at every tick boundary and recovered ends digest-identical to the
// uncrashed serial reference (Lost == 0, conservation holds) at 8 workers
// × 8 shards, chaos on and off.
func TestCrashPointSweep(t *testing.T) {
	const ticks = 25
	for _, pc := range []struct {
		label string
		plan  fault.Plan
	}{
		{"fault-free", fault.None},
		{"chaos", sweepChaos()},
	} {
		// The serial reference is durable too: durability makes supervisor
		// restores lossless (the tail is replayed), so a chaos run's state
		// evolution only matches across runs that share that semantics.
		ref := detConfig(1, 0, pc.plan)
		ref.Ticks = ticks
		ref.Durable = storage.NewMemStore()
		serial, want := digestRun(t, ref)
		if serial.Results == 0 {
			t.Fatalf("%s: serial reference produced no results; workload broken", pc.label)
		}
		for crash := int64(0); crash < ticks; crash++ {
			plan := pc.plan
			plan.CrashTicks = []int64{crash}
			cfg := detConfig(8, 8, plan)
			cfg.Ticks = ticks
			cfg.Durable = storage.NewMemStore()
			res, d := runThroughCrashes(t, cfg)
			label := pc.label + " crash@" + string(rune('0'+crash/10)) + string(rune('0'+crash%10))
			assertSameResultSet(t, label, serial, res, want, d)
			if res.StateLost != 0 {
				t.Errorf("%s: StateLost = %d, want 0 with durability on", label, res.StateLost)
			}
			assertConserved(t, label, cfg, res)
			if !res.Crashed && res.ResumedTick != crash+1 {
				t.Errorf("%s: final segment resumed at %d, want %d", label, res.ResumedTick, crash+1)
			}
		}
	}
}

// TestCrashSweepAcrossDispatchBatch: the durable crash/recover cycle must
// be grain-independent too — a crash can land while worker deques hold any
// amount of stolen work, and recovery replays from the WAL regardless. A
// few representative crash points at the extreme hand-off grains, chaos on.
func TestCrashSweepAcrossDispatchBatch(t *testing.T) {
	const ticks = 25
	ref := detConfig(1, 0, sweepChaos())
	ref.Ticks = ticks
	ref.Durable = storage.NewMemStore()
	serial, want := digestRun(t, ref)
	if serial.Results == 0 {
		t.Fatal("serial reference produced no results; workload broken")
	}
	for _, batch := range []int{1, 256} {
		for _, crash := range []int64{0, 7, 19} {
			plan := sweepChaos()
			plan.CrashTicks = []int64{crash}
			cfg := detConfig(8, 8, plan)
			cfg.Ticks = ticks
			cfg.DispatchBatch = batch
			cfg.Durable = storage.NewMemStore()
			res, d := runThroughCrashes(t, cfg)
			label := fmt.Sprintf("batch=%d crash@%d", batch, crash)
			assertSameResultSet(t, label, serial, res, want, d)
			if res.StateLost != 0 {
				t.Errorf("%s: StateLost = %d, want 0 with durability on", label, res.StateLost)
			}
			assertConserved(t, label, cfg, res)
		}
	}
}

// TestRecoverThroughRepeatedCrashes: a plan with several crash points is
// survived by chaining Recover, still landing on the serial digest.
func TestRecoverThroughRepeatedCrashes(t *testing.T) {
	const ticks = 40
	plan := sweepChaos()
	ref := detConfig(1, 0, plan)
	ref.Ticks = ticks
	ref.Durable = storage.NewMemStore()
	serial, want := digestRun(t, ref)

	plan.CrashTicks = []int64{3, 11, 12, 29}
	cfg := detConfig(8, 8, plan)
	cfg.Ticks = ticks
	cfg.Durable = storage.NewMemStore()
	res, d := runThroughCrashes(t, cfg)
	assertSameResultSet(t, "multi-crash", serial, res, want, d)
	if res.StateLost != 0 {
		t.Errorf("multi-crash: StateLost = %d, want 0", res.StateLost)
	}
	assertConserved(t, "multi-crash", cfg, res)
}

// TestFileStoreCrashRecoverAcrossReopen is the whole-process restart
// model: the crashed segment's store is closed (the process died), and
// Recover runs against a fresh OpenFileStore of the same directory —
// torn-tail scan, checkpoint reload and WAL replay all through the real
// file path.
func TestFileStoreCrashRecoverAcrossReopen(t *testing.T) {
	const ticks = 20
	dir := t.TempDir()
	ref := detConfig(1, 0, fault.None)
	ref.Ticks = ticks
	ref.Durable = storage.NewMemStore()
	serial, want := digestRun(t, ref)

	fs, err := storage.OpenFileStore(dir, storage.WithSyncEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{CrashTicks: []int64{9}}
	cfg := detConfig(4, 8, plan)
	cfg.Ticks = ticks
	cfg.Durable = fs
	d := &resultDigest{}
	cfg.OnResult = d.add
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed || res.CrashTick != 9 {
		t.Fatalf("Run: Crashed=%v CrashTick=%d, want crash at 9", res.Crashed, res.CrashTick)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := storage.OpenFileStore(dir, storage.WithSyncEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	cfg.Durable = fs2
	res, err = Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("Recover crashed again with no crash scheduled")
	}
	assertSameResultSet(t, "filestore reopen", serial, res, want, d)
	assertConserved(t, "filestore reopen", cfg, res)

	audit, err := AuditStore(fs2, 4)
	if err != nil {
		t.Fatalf("AuditStore: %v", err)
	}
	if audit.IngestRecords != res.TuplesIngested {
		t.Errorf("WAL holds %d ingest records, run ingested %d", audit.IngestRecords, res.TuplesIngested)
	}
	if audit.LastTick != ticks-1 {
		t.Errorf("last durable tick %d, want %d", audit.LastTick, ticks-1)
	}
}

// TestCrashTicksRequireDurable: a crash schedule without a store to
// recover from is a configuration error, not a silent data loss.
func TestCrashTicksRequireDurable(t *testing.T) {
	cfg := detConfig(1, 0, fault.Plan{CrashTicks: []int64{5}})
	if _, err := Run(cfg); err == nil {
		t.Fatal("CrashTicks without Durable accepted")
	}
	cfg = detConfig(1, 0, fault.Plan{CrashTicks: []int64{9, 5}})
	cfg.Durable = storage.NewMemStore()
	if _, err := Run(cfg); err == nil {
		t.Fatal("descending CrashTicks accepted")
	}
	if _, err := Recover(detConfig(1, 0, fault.None)); err == nil {
		t.Fatal("Recover without Durable accepted")
	}
	// Recover against an empty store has nothing to resume.
	cfg = detConfig(1, 0, fault.None)
	cfg.Durable = storage.NewMemStore()
	if _, err := Recover(cfg); err == nil {
		t.Fatal("Recover from empty store accepted")
	}
}

// TestAuditStoreAccountsCleanRun: the audit's WAL accounting matches the
// live run's counters exactly on a clean durable run.
func TestAuditStoreAccountsCleanRun(t *testing.T) {
	st := storage.NewMemStore()
	cfg := detConfig(2, 0, fault.None)
	cfg.Ticks = 30
	cfg.Durable = st
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditStore(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if audit.IngestRecords != res.TuplesIngested {
		t.Errorf("WAL ingest records %d != ingested %d", audit.IngestRecords, res.TuplesIngested)
	}
	if audit.TickRecords != 30 || audit.LastTick != 29 {
		t.Errorf("tick records %d last %d, want 30 through 29", audit.TickRecords, audit.LastTick)
	}
	if len(audit.Checkpoints) == 0 {
		t.Error("no checkpoints persisted over 30 ticks with CheckpointEvery=64")
	}
}

// TestCodecRoundTrips pins the wire formats: tick records, ingest records
// and operator checkpoints decode back to what was encoded.
func TestCodecRoundTrips(t *testing.T) {
	tup := &tuple.Tuple{Stream: 2, Seq: 77, TS: 1234, Arrival: 991, Attrs: []tuple.Value{5, 0, 19}, PayloadBytes: 40}
	ing, tick, err := decodeWALRecord(encodeIngestRecord(3, tup))
	if err != nil || tick != nil {
		t.Fatalf("ingest decode: %v (tick=%v)", err, tick)
	}
	if ing.Op != 3 || !reflect.DeepEqual(ing.Tuple, tup) {
		t.Fatalf("ingest round-trip: %+v", ing)
	}

	tr := &tickRecord{Tick: 41, Inj: []uint64{9, 8, 7}}
	for i := range tr.Counters {
		tr.Counters[i] = uint64(100 + i)
	}
	tr.PerOp = []opTickState{
		{Sheds: 1, Probes: 2, Retunes: 3, Aborts: 4, Restarts: 5, Failed: true},
		{Probes: 9},
	}
	_, tr2, err := decodeWALRecord(tr.encode())
	if err != nil {
		t.Fatalf("tick decode: %v", err)
	}
	if !reflect.DeepEqual(tr, tr2) {
		t.Fatalf("tick round-trip:\n got %+v\nwant %+v", tr2, tr)
	}

	ck := &opCheckpoint{Op: 1, Applied: 512, Cfg: bitindex.Config{Bits: []uint8{4, 0, 3}}, Tuples: []*tuple.Tuple{tup}}
	ck2, err := decodeOpCheckpoint(ck.encode())
	if err != nil {
		t.Fatalf("checkpoint decode: %v", err)
	}
	if !reflect.DeepEqual(ck, ck2) {
		t.Fatalf("checkpoint round-trip:\n got %+v\nwant %+v", ck2, ck)
	}
	if _, err := decodeOpCheckpoint(ck.encode()[:10]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
