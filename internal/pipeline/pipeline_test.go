package pipeline

import (
	"sync"
	"testing"

	"amri/internal/core"
	"amri/internal/engine"
	"amri/internal/query"
	"amri/internal/stream"
)

func TestMailboxFIFO(t *testing.T) {
	mb := newMailbox[int]()
	for i := 0; i < 100; i++ {
		if mb.Push(i) != PushAccepted {
			t.Fatal("push to open mailbox failed")
		}
	}
	if mb.Len() != 100 {
		t.Fatalf("Len = %d", mb.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := mb.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	mb := newMailbox[int]()
	mb.Push(1)
	mb.Push(2)
	mb.Close()
	if mb.Push(3) != PushClosed {
		t.Fatal("push after close should report PushClosed")
	}
	if v, ok := mb.Pop(); !ok || v != 1 {
		t.Fatal("queued items must drain after close")
	}
	if v, ok := mb.Pop(); !ok || v != 2 {
		t.Fatal("queued items must drain after close")
	}
	if _, ok := mb.Pop(); ok {
		t.Fatal("drained closed mailbox must report done")
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	mb := newMailbox[string]()
	done := make(chan string)
	go func() {
		v, _ := mb.Pop()
		done <- v
	}()
	mb.Push("hello")
	if got := <-done; got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	mb := newMailbox[int]()
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				mb.Push(i)
			}
		}()
	}
	wg.Wait()
	if mb.Len() != producers*per {
		t.Fatalf("Len = %d, want %d", mb.Len(), producers*per)
	}
}

func smallProfile() stream.Profile {
	return stream.Profile{
		LambdaD:      10,
		PayloadBytes: 40,
		EpochTicks:   40,
		Domains:      []uint64{8, 12, 18, 27, 40, 60},
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Ticks: 0}); err == nil {
		t.Fatal("zero ticks should fail")
	}
}

func TestRunCompletesAndCounts(t *testing.T) {
	r, err := Run(Config{
		Profile: smallProfile(),
		Seed:    1,
		Ticks:   80,
		Method:  core.MethodCDIAHighest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TuplesIngested != 80*10*4 {
		t.Fatalf("ingested %d, want 3200", r.TuplesIngested)
	}
	if r.Results == 0 {
		t.Fatal("no join results")
	}
	if r.Probes == 0 {
		t.Fatal("no probes recorded")
	}
	if r.Wall <= 0 {
		t.Fatal("no wall time recorded")
	}
}

func TestRunLiveTuningHappens(t *testing.T) {
	r, err := Run(Config{
		Profile:       smallProfile(),
		Seed:          2,
		Ticks:         150,
		Method:        core.MethodCDIAHighest,
		AutoTuneEvery: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Retunes == 0 {
		t.Fatal("live tuning never migrated any state")
	}
}

// TestPipelineMatchesEngine compares the concurrent pipeline's result count
// against the deterministic engine on the same workload. The two-phase tick
// delivery plus the arrival-stamp filter make the result set identical:
// every probe sees exactly the tuples that arrived before its driver and
// have not expired, regardless of operator interleaving.
func TestPipelineMatchesEngine(t *testing.T) {
	prof := smallProfile()
	const ticks = 100

	run := engine.DefaultRunConfig()
	run.Profile = prof
	run.Seed = 5
	run.MaxTicks = ticks
	run.WarmupTicks = 25
	run.CPUBudget = 1 << 30 // never CPU-bound: the engine finds everything
	run.MemCap = 0
	run.Explore = 0
	run.ExploreBurst = 0
	eng, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	exact := eng.Run().TotalResults

	pr, err := Run(Config{
		Profile: prof,
		Seed:    5,
		Ticks:   ticks,
		Method:  core.MethodCDIAHighest,
		Explore: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exact == 0 {
		t.Fatal("engine found nothing; workload broken")
	}
	if pr.Results != exact {
		t.Fatalf("pipeline results %d != engine's %d", pr.Results, exact)
	}
}

// TestPipelineNeverDuplicates: with the arrival filter, the pipeline can
// miss racy results but never exceed the exact count. Run several seeds.
func TestPipelineNeverDuplicates(t *testing.T) {
	prof := smallProfile()
	const ticks = 60
	for seed := uint64(1); seed <= 3; seed++ {
		run := engine.DefaultRunConfig()
		run.Profile = prof
		run.Seed = seed
		run.MaxTicks = ticks
		run.WarmupTicks = 20
		run.CPUBudget = 1 << 30
		run.MemCap = 0
		run.Explore = 0
		run.ExploreBurst = 0
		eng, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
		if err != nil {
			t.Fatal(err)
		}
		exact := eng.Run().TotalResults

		pr, err := Run(Config{Profile: prof, Seed: seed, Ticks: ticks,
			Method: core.MethodCDIAHighest, Explore: 0})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Results > exact {
			t.Fatalf("seed %d: pipeline produced %d > exact %d (duplicates!)",
				seed, pr.Results, exact)
		}
	}
}

// TestPipelineFiltersMatchEngine: filtered queries produce identical result
// sets in both execution modes.
func TestPipelineFiltersMatchEngine(t *testing.T) {
	prof := smallProfile()
	q := query.FourWay(60)
	if err := q.AddFilter(query.Filter{Stream: 0, Attr: 0, Op: query.OpLt, Value: 5}); err != nil {
		t.Fatal(err)
	}
	run := engine.DefaultRunConfig()
	run.Query = q
	run.Profile = prof
	run.Seed = 8
	run.MaxTicks = 80
	run.WarmupTicks = 20
	run.CPUBudget = 1 << 30
	run.MemCap = 0
	run.Explore = 0
	run.ExploreBurst = 0
	eng, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	exact := eng.Run().TotalResults

	pr, err := Run(Config{Query: q, Profile: prof, Seed: 8, Ticks: 80,
		Method: core.MethodCDIAHighest, Explore: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Results != exact {
		t.Fatalf("pipeline %d != engine %d under filters", pr.Results, exact)
	}
	if exact == 0 {
		t.Fatal("filtered workload produced nothing at all")
	}
}
