// Package pipeline is the concurrent twin of internal/engine: the same
// adaptive multi-route system run as a live Go program — one goroutine per
// STeM operator, bounded mailboxes between them, a shared router, and
// self-tuning AMRI states guarded by per-state locks. Where internal/engine
// measures virtual time deterministically for the paper's figures, pipeline
// measures real wall-clock throughput and demonstrates the system working
// under actual parallelism — including under injected faults: every
// operator goroutine runs beneath a supervisor that recovers panics and
// restarts the operator from a checkpoint, and mailboxes can bound their
// capacity with a pluggable overload policy (see DESIGN.md §8).
package pipeline

import (
	"fmt"
	"sync"
)

// OverloadPolicy selects what a bounded mailbox does with a push that finds
// the mailbox full.
type OverloadPolicy int

const (
	// PolicyBlock applies backpressure: PushWait blocks until space frees
	// up. Operator-side Push never blocks even under this policy — hard
	// backpressure inside a cyclic probe graph (A probes B while B probes
	// A) deadlocks — so intra-pipeline pushes spill past the cap and only
	// the source is throttled.
	PolicyBlock OverloadPolicy = iota
	// PolicyDropNewest sheds the incoming message.
	PolicyDropNewest
	// PolicyDropOldest evicts the queue head to admit the incoming
	// message — the freshest data wins, as stream systems usually want.
	PolicyDropOldest
)

// String implements fmt.Stringer.
func (p OverloadPolicy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropNewest:
		return "drop-newest"
	case PolicyDropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// ParsePolicy maps a flag string to its OverloadPolicy.
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "drop-newest":
		return PolicyDropNewest, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	default:
		return 0, fmt.Errorf("pipeline: unknown shed policy %q (want block, drop-newest or drop-oldest)", s)
	}
}

// PushResult reports the fate of one pushed message.
type PushResult int

const (
	// PushAccepted: the message was enqueued.
	PushAccepted PushResult = iota
	// PushClosed: the mailbox was closed; the message was NOT enqueued and
	// the caller still owns its accounting.
	PushClosed
	// PushShedNewest: the mailbox was full under PolicyDropNewest; the
	// pushed message itself was shed (reported to onShed).
	PushShedNewest
	// PushShedOldest: the mailbox was full under PolicyDropOldest; the
	// pushed message was enqueued and the old queue head was shed
	// (reported to onShed).
	PushShedOldest
)

// mailbox is an MPSC queue with an optional capacity bound: producers shed
// or wait per the overload policy, and the owning operator drains it until
// Close. The unbounded form (capacity 0) never sheds and never blocks a
// producer.
type mailbox[T any] struct {
	capacity int            // 0 = unbounded
	policy   OverloadPolicy // overload response when capacity > 0
	// onShed observes every message dropped by a full mailbox (the
	// incoming one under drop-newest, the evicted head under drop-oldest).
	// It runs with the mailbox lock held and must not call back in.
	onShed func(T, PushResult)

	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	items    []T
	head     int
	closed   bool
	sheds    uint64
}

func newMailbox[T any]() *mailbox[T] {
	return newBoundedMailbox[T](0, PolicyBlock, nil)
}

func newBoundedMailbox[T any](capacity int, policy OverloadPolicy, onShed func(T, PushResult)) *mailbox[T] {
	m := &mailbox[T]{capacity: capacity, policy: policy, onShed: onShed}
	m.notEmpty = sync.NewCond(&m.mu)
	m.notFull = sync.NewCond(&m.mu)
	return m
}

// Push enqueues an item without ever blocking. A full mailbox sheds per the
// drop policies; under PolicyBlock the item spills past the cap (see
// PolicyBlock for why). Pushing to a closed mailbox is refused with
// PushClosed and the caller keeps ownership of the item.
func (m *mailbox[T]) Push(v T) PushResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pushLocked(v)
}

// pushLocked is Push's body; the caller holds mu.
func (m *mailbox[T]) pushLocked(v T) PushResult {
	if m.closed {
		return PushClosed
	}
	if m.capacity > 0 && len(m.items)-m.head >= m.capacity {
		switch m.policy {
		case PolicyDropNewest:
			m.sheds++
			if m.onShed != nil {
				m.onShed(v, PushShedNewest)
			}
			return PushShedNewest
		case PolicyDropOldest:
			victim := m.items[m.head]
			var zero T
			m.items[m.head] = zero
			m.head++
			m.sheds++
			if m.onShed != nil {
				m.onShed(victim, PushShedOldest)
			}
			m.items = append(m.items, v)
			m.notEmpty.Signal()
			return PushShedOldest
		}
	}
	m.items = append(m.items, v)
	m.notEmpty.Signal()
	return PushAccepted
}

// PushWait is Push with real backpressure: under PolicyBlock it waits while
// the mailbox is full before pushing. Only the workload source uses it —
// the source sits outside the operator cycle, so blocking it cannot
// deadlock the drain. The wait and the push are separate critical sections,
// so concurrent PushWait callers can overshoot the cap by their own count;
// with the pipeline's single source goroutine the bound is exact.
func (m *mailbox[T]) PushWait(v T) PushResult {
	if m.policy == PolicyBlock {
		m.mu.Lock()
		for m.capacity > 0 && len(m.items)-m.head >= m.capacity && !m.closed {
			m.notFull.Wait()
		}
		m.mu.Unlock()
	}
	return m.Push(v)
}

// PushWaitBatch enqueues a whole batch under one lock acquisition, with
// PushWait's backpressure per item: under PolicyBlock each item waits for
// space before it is enqueued (Cond.Wait releases the lock, so the owner
// drains concurrently). Unlike PushWait's separate wait-then-push critical
// sections, the wait and the push are atomic here, so a batch never
// overshoots the cap. The returned results are positional: a PushClosed
// entry means that item and every later one were refused.
func (m *mailbox[T]) PushWaitBatch(vs []T) []PushResult {
	res := make([]PushResult, len(vs))
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, v := range vs {
		if m.policy == PolicyBlock {
			for m.capacity > 0 && len(m.items)-m.head >= m.capacity && !m.closed {
				m.notFull.Wait()
			}
		}
		res[i] = m.pushLocked(v)
	}
	return res
}

// Pop blocks until an item is available or the mailbox is closed and
// drained; ok=false means the operator should exit.
func (m *mailbox[T]) Pop() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head >= len(m.items) && !m.closed {
		m.notEmpty.Wait()
	}
	if m.head >= len(m.items) {
		return v, false
	}
	v = m.items[m.head]
	var zero T
	m.items[m.head] = zero
	m.head++
	if m.head > 1024 && m.head*2 > len(m.items) {
		m.items = append([]T(nil), m.items[m.head:]...)
		m.head = 0
	}
	m.notFull.Signal()
	return v, true
}

// TryPop is Pop without the wait: it returns the head item if one is
// queued right now and ok=false otherwise (empty OR closed-and-drained —
// callers distinguishing the two keep using Pop). The partitioned ingest
// path uses it to gather everything immediately available into one batch
// without ever blocking behind the source.
func (m *mailbox[T]) TryPop() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.head >= len(m.items) {
		return v, false
	}
	v = m.items[m.head]
	var zero T
	m.items[m.head] = zero
	m.head++
	if m.head > 1024 && m.head*2 > len(m.items) {
		m.items = append([]T(nil), m.items[m.head:]...)
		m.head = 0
	}
	m.notFull.Signal()
	return v, true
}

// Len returns the queued item count.
func (m *mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items) - m.head
}

// Sheds returns how many messages this mailbox dropped at capacity.
func (m *mailbox[T]) Sheds() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sheds
}

// Close wakes all waiters; queued items are still drained by Pop, while new
// pushes are refused with PushClosed.
func (m *mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.notEmpty.Broadcast()
	m.notFull.Broadcast()
}
