// Package pipeline is the concurrent twin of internal/engine: the same
// adaptive multi-route system run as a live Go program — one goroutine per
// STeM operator, unbounded mailboxes between them, a shared router, and
// self-tuning AMRI states guarded by per-state locks. Where internal/engine
// measures virtual time deterministically for the paper's figures, pipeline
// measures real wall-clock throughput and demonstrates the system working
// under actual parallelism.
package pipeline

import "sync"

// mailbox is an unbounded MPSC queue: producers never block (join graphs
// are cyclic — A probes B while B probes A — so bounded channels between
// operators can deadlock), and the owning operator drains it until Close.
type mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newMailbox[T any]() *mailbox[T] {
	m := &mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push enqueues an item. Pushing to a closed mailbox is a no-op (drain is
// in progress; the work is accounted by the caller's in-flight bookkeeping).
func (m *mailbox[T]) Push(v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, v)
	m.cond.Signal()
	return true
}

// Pop blocks until an item is available or the mailbox is closed and
// drained; ok=false means the operator should exit.
func (m *mailbox[T]) Pop() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head >= len(m.items) && !m.closed {
		m.cond.Wait()
	}
	if m.head >= len(m.items) {
		return v, false
	}
	v = m.items[m.head]
	var zero T
	m.items[m.head] = zero
	m.head++
	if m.head > 1024 && m.head*2 > len(m.items) {
		m.items = append([]T(nil), m.items[m.head:]...)
		m.head = 0
	}
	return v, true
}

// Len returns the queued item count.
func (m *mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items) - m.head
}

// Close wakes all waiters; queued items are still drained by Pop.
func (m *mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
