package pipeline

// Unit tests for the work-stealing deque dispatch layer (deque.go), run
// under -race by `make race` / `make chaos`: the owner-pops-tail /
// thief-steals-head split, the pending-count bookkeeping, the lock-free
// push/park wake handshake, and shutdown while thieves are mid-sweep.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"amri/internal/tuple"
)

// mkJobs builds n distinguishable jobs (unique composite pointers).
func mkJobs(n int) []probeJob {
	jobs := make([]probeJob, n)
	for i := range jobs {
		jobs[i] = probeJob{comp: &tuple.Composite{}}
	}
	return jobs
}

// TestWsDequePopPreservesBatchOrder: the owner receives whole batches
// newest-batch-first, order preserved within a batch.
func TestWsDequePopPreservesBatchOrder(t *testing.T) {
	var q wsDeque
	a, b := mkJobs(3), mkJobs(2)
	q.push(a)
	q.push(b)
	var buf []probeJob
	if n := q.pop(2, &buf); n != 2 {
		t.Fatalf("pop = %d jobs, want 2", n)
	}
	for i := range b {
		if buf[i].comp != b[i].comp {
			t.Fatalf("pop[%d] is not the newest batch in order", i)
		}
	}
	if n := q.pop(10, &buf); n != 3 {
		t.Fatalf("second pop = %d jobs, want 3", n)
	}
	for i := range a {
		if buf[i].comp != a[i].comp {
			t.Fatalf("second pop[%d] out of order", i)
		}
	}
	if q.pop(1, &buf) != 0 {
		t.Fatal("drained deque still pops")
	}
}

// TestWsDequeStealTakesHalfFromHead: a thief takes ceil(n/2) of the OLDEST
// jobs, leaving the tail for the owner.
func TestWsDequeStealTakesHalfFromHead(t *testing.T) {
	var q wsDeque
	jobs := mkJobs(5)
	q.push(jobs)
	var loot []probeJob
	if n := q.steal(&loot); n != 3 {
		t.Fatalf("steal = %d jobs, want ceil(5/2) = 3", n)
	}
	for i := 0; i < 3; i++ {
		if loot[i].comp != jobs[i].comp {
			t.Fatalf("steal[%d] is not the head of the queue", i)
		}
	}
	var buf []probeJob
	if n := q.pop(10, &buf); n != 2 {
		t.Fatalf("owner pop after steal = %d jobs, want 2", n)
	}
	if buf[0].comp != jobs[3].comp || buf[1].comp != jobs[4].comp {
		t.Fatal("owner did not keep the tail")
	}
}

// TestWsDequeStealVsPop races one owner popping against three thieves
// stealing while a producer keeps pushing: every job must be consumed
// exactly once. Run under -race this is also the data-race check on the
// deque's internal compaction.
func TestWsDequeStealVsPop(t *testing.T) {
	const total = 20000
	var q wsDeque
	seen := make(map[*tuple.Composite]int, total)
	var mu sync.Mutex
	var consumed atomic.Int64
	record := func(buf []probeJob, n int) {
		mu.Lock()
		for _, j := range buf[:n] {
			seen[j.comp]++
		}
		mu.Unlock()
		consumed.Add(int64(n))
	}

	jobs := mkJobs(total)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer: batches of 16
		defer wg.Done()
		for i := 0; i < total; i += 16 {
			end := i + 16
			if end > total {
				end = total
			}
			q.push(jobs[i:end])
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(owner bool) {
			defer wg.Done()
			var buf []probeJob
			for consumed.Load() < total {
				var n int
				if owner {
					n = q.pop(8, &buf)
				} else {
					n = q.steal(&buf)
				}
				if n > 0 {
					record(buf, n)
				}
			}
		}(w == 0)
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("consumed %d distinct jobs, want %d", len(seen), total)
	}
	for _, c := range seen {
		if c != 1 {
			t.Fatalf("a job was consumed %d times", c)
		}
	}
}

// TestDispatcherWakeHandshake: pushes from one goroutine must never be lost
// to a parking worker — the Dekker-style pending/waiting ordering is the
// only thing preventing a sleep-forever, and this test hammers exactly that
// window. Every pushed job must be consumed and every worker must exit
// after close.
func TestDispatcherWakeHandshake(t *testing.T) {
	const workers, total = 4, 8000
	d := newDispatcher(workers)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []probeJob
			for {
				n := d.popOwn(w, 4, &buf)
				if n == 0 {
					n = d.stealAny(w, &buf)
				}
				if n == 0 {
					if !d.park() {
						return
					}
					continue
				}
				d.wakeSibling()
				consumed.Add(int64(n))
			}
		}(w)
	}
	jobs := mkJobs(total)
	for i := 0; i < total; i++ {
		d.push(i%workers, jobs[i:i+1])
	}
	for consumed.Load() < total {
		runtime.Gosched()
	}
	d.close()
	wg.Wait()
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d jobs, want %d", got, total)
	}
	if got := d.pending.Load(); got != 0 {
		t.Fatalf("pending = %d after drain, want 0", got)
	}
}

// TestDispatcherCloseMidSteal: closing while thieves are mid-sweep must let
// every worker drain what remains and exit — close is a barrier-free
// broadcast, so the test's assertion is simply termination plus exactly-once
// consumption of the leftover jobs.
func TestDispatcherCloseMidSteal(t *testing.T) {
	const workers = 4
	d := newDispatcher(workers)
	// Load only worker 0's deque so everyone else is forced into stealAny.
	jobs := mkJobs(1000)
	d.push(0, jobs)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []probeJob
			for {
				n := d.popOwn(w, 4, &buf)
				if n == 0 {
					n = d.stealAny(w, &buf)
				}
				if n == 0 {
					if !d.park() {
						return
					}
					continue
				}
				consumed.Add(int64(n))
			}
		}(w)
	}
	// Close with the queue still half-full: workers must finish the drain
	// (park returns true while pending > 0) and only then exit.
	d.close()
	wg.Wait()
	if got := consumed.Load(); got != int64(len(jobs)) {
		t.Fatalf("consumed %d jobs through close, want %d", got, len(jobs))
	}
}
