package pipeline

import (
	"encoding/binary"
	"fmt"

	"amri/internal/bitindex"
	"amri/internal/tuple"
)

// WAL record kinds. The write-ahead log interleaves two record types:
// ingest records (one per applied arrival, appended by the operator that
// applied it) and tick records (one per completed tick, appended by the
// source goroutine at the boundary, after both phase barriers, just before
// the store Sync). Recovery = per-op checkpoint + that op's ingest-record
// suffix + the last tick record's counters; see DESIGN.md §11.
const (
	walKindIngest byte = 1
	walKindTick   byte = 2
)

// walIngestRecord is one applied arrival: which operator inserted which
// tuple. Replay re-inserts the suffix past each checkpoint's Applied count.
type walIngestRecord struct {
	Op    int
	Tuple *tuple.Tuple
}

func encodeIngestRecord(op int, t *tuple.Tuple) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, walKindIngest)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(op))
	return tuple.AppendTuple(buf, t)
}

// opTickState is one operator's contribution to a tick record: everything
// the Result aggregation reads per operator, so a recovered run's final
// counts continue the crashed run's instead of restarting from zero.
type opTickState struct {
	Sheds    uint64
	Probes   uint64
	Retunes  int64
	Aborts   int64
	Restarts int64
	Failed   bool
}

// tickRecord marks simulated tick Tick fully processed and durable: both
// phase barriers passed, every applied arrival's ingest record already in
// the WAL. Counters snapshot the run-level accounting; Inj snapshots the
// fault injector so a recovered run resumes the fault schedule exactly
// (fault.Injector.Snapshot).
type tickRecord struct {
	Tick     int64
	Counters [numTickCounters]uint64
	PerOp    []opTickState
	Inj      []uint64
}

// Tick-record counter slots, in wire order. These restore the run struct's
// padded atomics on recovery.
const (
	tcResults = iota
	tcIngested
	tcIngestShed
	tcProbeShed
	tcIngestLost
	tcProbeLost
	tcRestarts
	tcPermFailed
	tcReplayed
	tcStateLost
	tcDelays
	tcPressure
	numTickCounters
)

func (r *tickRecord) encode() []byte {
	buf := make([]byte, 0, 16+8*numTickCounters+48*len(r.PerOp)+8*len(r.Inj))
	buf = append(buf, walKindTick)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Tick))
	for _, c := range r.Counters {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.PerOp)))
	for _, op := range r.PerOp {
		buf = binary.LittleEndian.AppendUint64(buf, op.Sheds)
		buf = binary.LittleEndian.AppendUint64(buf, op.Probes)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Retunes))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Aborts))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.Restarts))
		if op.Failed {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Inj)))
	for _, v := range r.Inj {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

func decodeTickRecord(buf []byte) (*tickRecord, error) {
	if len(buf) < 1+8+8*numTickCounters+4 || buf[0] != walKindTick {
		return nil, fmt.Errorf("pipeline: malformed tick record (%d bytes)", len(buf))
	}
	r := &tickRecord{Tick: int64(binary.LittleEndian.Uint64(buf[1:9]))}
	buf = buf[9:]
	for i := 0; i < numTickCounters; i++ {
		r.Counters[i] = binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
	}
	nops := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < nops*41+4 {
		return nil, fmt.Errorf("pipeline: truncated tick record per-op section")
	}
	r.PerOp = make([]opTickState, nops)
	for i := range r.PerOp {
		r.PerOp[i] = opTickState{
			Sheds:    binary.LittleEndian.Uint64(buf[0:8]),
			Probes:   binary.LittleEndian.Uint64(buf[8:16]),
			Retunes:  int64(binary.LittleEndian.Uint64(buf[16:24])),
			Aborts:   int64(binary.LittleEndian.Uint64(buf[24:32])),
			Restarts: int64(binary.LittleEndian.Uint64(buf[32:40])),
			Failed:   buf[40] != 0,
		}
		buf = buf[41:]
	}
	ninj := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < 8*ninj {
		return nil, fmt.Errorf("pipeline: truncated tick record injector section")
	}
	r.Inj = make([]uint64, ninj)
	for i := range r.Inj {
		r.Inj[i] = binary.LittleEndian.Uint64(buf[8*i : 8*i+8])
	}
	return r, nil
}

// decodeWALRecord dispatches on the record kind.
func decodeWALRecord(buf []byte) (ing *walIngestRecord, tick *tickRecord, err error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("pipeline: empty wal record")
	}
	switch buf[0] {
	case walKindIngest:
		if len(buf) < 5 {
			return nil, nil, fmt.Errorf("pipeline: truncated ingest record")
		}
		op := int(binary.LittleEndian.Uint32(buf[1:5]))
		t, rest, err := tuple.DecodeTuple(buf[5:])
		if err != nil {
			return nil, nil, err
		}
		if len(rest) != 0 {
			return nil, nil, fmt.Errorf("pipeline: %d trailing bytes in ingest record", len(rest))
		}
		return &walIngestRecord{Op: op, Tuple: t}, nil, nil
	case walKindTick:
		r, err := decodeTickRecord(buf)
		return nil, r, err
	default:
		return nil, nil, fmt.Errorf("pipeline: unknown wal record kind %d", buf[0])
	}
}

// opCheckpoint is one operator's durable snapshot: the retained tuples at
// snapshot time, the tuned index configuration they were indexed under,
// and Applied — how many ingest records the snapshot covers, so WAL replay
// knows where this operator's suffix starts.
type opCheckpoint struct {
	Op      int
	Applied uint64
	Cfg     bitindex.Config
	Tuples  []*tuple.Tuple
}

// ckptVersion guards the checkpoint wire format.
const ckptVersion byte = 1

func (c *opCheckpoint) encode() []byte {
	buf := make([]byte, 0, 32+len(c.Cfg.Bits)+64*len(c.Tuples))
	buf = append(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Op))
	buf = binary.LittleEndian.AppendUint64(buf, c.Applied)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Cfg.Bits)))
	buf = append(buf, c.Cfg.Bits...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Tuples)))
	for _, t := range c.Tuples {
		buf = tuple.AppendTuple(buf, t)
	}
	return buf
}

func decodeOpCheckpoint(buf []byte) (*opCheckpoint, error) {
	if len(buf) < 1+4+8+2 || buf[0] != ckptVersion {
		return nil, fmt.Errorf("pipeline: malformed checkpoint (%d bytes)", len(buf))
	}
	c := &opCheckpoint{
		Op:      int(binary.LittleEndian.Uint32(buf[1:5])),
		Applied: binary.LittleEndian.Uint64(buf[5:13]),
	}
	nbits := int(binary.LittleEndian.Uint16(buf[13:15]))
	buf = buf[15:]
	if len(buf) < nbits+4 {
		return nil, fmt.Errorf("pipeline: truncated checkpoint config")
	}
	c.Cfg = bitindex.Config{Bits: append([]uint8(nil), buf[:nbits]...)}
	if err := c.Cfg.Validate(nbits); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint config: %w", err)
	}
	ntuples := int(binary.LittleEndian.Uint32(buf[nbits : nbits+4]))
	buf = buf[nbits+4:]
	c.Tuples = make([]*tuple.Tuple, 0, ntuples)
	for i := 0; i < ntuples; i++ {
		t, rest, err := tuple.DecodeTuple(buf)
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint tuple %d: %w", i, err)
		}
		buf = rest
		c.Tuples = append(c.Tuples, t)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("pipeline: %d trailing bytes in checkpoint", len(buf))
	}
	return c, nil
}
