package pipeline

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amri/internal/bitindex"
	"amri/internal/core"
	"amri/internal/fault"
	"amri/internal/query"
	"amri/internal/router"
	"amri/internal/sim"
	"amri/internal/storage"
	"amri/internal/stream"
	"amri/internal/tuner"
	"amri/internal/tuple"
	"amri/internal/window"
)

// Config describes one concurrent run.
type Config struct {
	// Query is the SPJ query; nil means the paper's 4-way join.
	Query *query.Query
	// Profile is the synthetic workload; zero value means DriftProfile.
	Profile stream.Profile
	// Seed fixes the workload and routing randomness.
	Seed uint64
	// Ticks is how many workload ticks to generate and process.
	Ticks int64
	// Method is the assessment method for every state's AdaptiveIndex.
	Method core.Method
	// BitBudget is the IC bits per state (default 12).
	BitBudget int
	// AutoTuneEvery retunes a state after that many probes (default 2000;
	// 0 disables live tuning).
	AutoTuneEvery uint64
	// LegacyTuner restores the v1 gain-only retune policy: no migration
	// pricing, no cooldown, no drift-adaptive horizon. It exists as the
	// measured A/B baseline for BENCH_tuner.json and the thrash
	// regression; production runs leave it false.
	LegacyTuner bool
	// TuneHorizon, TuneCooldown and DriftSense forward to the v2 retune
	// controller (see core.Options); zero takes the core defaults.
	TuneHorizon  float64
	TuneCooldown int
	DriftSense   float64
	// Explore is the router's suboptimal-route probability.
	Explore float64

	// ProbeWorkers sizes the shared probe worker pool: composite (probe)
	// messages from every operator fan out over this many goroutines,
	// while ingests stay on each operator's own serve goroutine (default
	// runtime.NumCPU()). The result set is identical at any worker count;
	// see the determinism tests.
	ProbeWorkers int
	// Shards, when positive, lock-stripes every operator's bit-index over
	// that many sub-directories (a power of two, at most 256): probes of
	// the same state then proceed concurrently under a read lock, and
	// retune migrations drain incrementally instead of stopping the
	// world. Zero keeps the flat index; probes of a state then serialize
	// on its operator lock even when ProbeWorkers > 1.
	Shards int
	// HeldLockProbes restores the pre-epoch probe path: sharded probes
	// hold the operator lock for reading instead of pinning an index epoch
	// with one atomic pointer load. The contention benchmark uses it as the
	// baseline it measures the epoch path against; production runs leave
	// it false.
	HeldLockProbes bool
	// CollectProbeCosts records every probe's modeled cost units, grouped
	// by tick phase, into Result.ProbeCosts — the raw material for the
	// offline throughput model in internal/bench. Off by default (it
	// allocates per tick).
	CollectProbeCosts bool
	// DispatchBatch is the deque dispatch's hand-off grain: the source and
	// the workers move probe jobs between deques in chunks of this many
	// (default 64), so the dispatch pays one lock acquisition per batch
	// instead of one channel operation per composite. The digest is
	// identical at any batch size; see the determinism tests.
	DispatchBatch int
	// LegacyDispatch restores the shared-channel dispatch this PR's deque
	// path replaced: one probeCh feeding the worker pool, follow-up matches
	// delivered through operator mailboxes, per-probe assessor updates. It
	// exists as the measured A/B baseline for BENCH_pipeline.json and the
	// bench-gate; production runs leave it false.
	LegacyDispatch bool

	// MailboxCap bounds every operator mailbox to that many queued
	// messages (0 = unbounded, the pre-fault-tolerance behaviour).
	MailboxCap int
	// ShedPolicy is the overload response of a full mailbox (default
	// PolicyBlock: backpressure on the source, spill for operators).
	ShedPolicy OverloadPolicy
	// Fault is the seeded fault-injection plan; fault.None (the zero
	// value) injects nothing.
	Fault fault.Plan
	// CheckpointEvery snapshots an operator's retained tuples after that
	// many inserts, bounding replay loss after a panic (default 256; -1
	// disables checkpointing, so a restart loses the whole state).
	CheckpointEvery int
	// MaxRestarts is how many times the supervisor restarts a panicking
	// operator before declaring it permanently failed (default 3).
	MaxRestarts int
	// MaxRestartWindow is the supervisor's wall budget in simulated ticks:
	// an operator that keeps panicking continuously for this many ticks is
	// declared permanently failed even with MaxRestarts remaining — a
	// flapping operator must convert to a verdict by elapsed time too, not
	// only by count. A healthy stretch longer than the window re-arms the
	// budget. Zero disables the wall budget (count-only, the old policy).
	MaxRestartWindow int64
	// RestartBackoff is the supervisor's initial restart delay, doubled
	// per consecutive restart and capped at 8x (default 1ms).
	RestartBackoff time.Duration
	// Durable, when non-nil, turns on crash durability: every applied
	// arrival is appended to this store's WAL, operator checkpoints are
	// persisted (serialized retained tuples + index config + applied
	// count), and each completed tick writes a tick record (run counters +
	// injector snapshot) followed by a store Sync. A run killed at a tick
	// boundary is then resumed by Recover with nothing lost: replay =
	// checkpoint + WAL suffix. Durability also makes supervisor restarts
	// lossless — the since-checkpoint tail is retained and replayed, so
	// StateLost stays zero. Nil (the default) keeps the in-memory-only
	// behaviour.
	Durable storage.CheckpointStore
	// OnResult, when set, receives every complete join result. It is
	// called concurrently from operator goroutines and must be
	// goroutine-safe.
	OnResult func(*tuple.Composite)
	// OnTickEnd, when set, is called from the source goroutine after each
	// tick's both phases have quiesced (and any durable tick record is
	// synced) — a per-tick latency probe point for the retune-under-load
	// benchmark.
	OnTickEnd func(tick int64)
}

// Result summarizes a concurrent run.
type Result struct {
	// Results is the number of complete join results emitted.
	Results uint64
	// Probes is the number of search requests executed.
	Probes uint64
	// Retunes is the number of index migrations across all states.
	Retunes int
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// TuplesIngested counts the arrivals processed.
	TuplesIngested uint64

	// Sheds counts messages dropped before handling, summed over
	// operators: mailbox-overload drops, injected saturation, and the
	// backlog of permanently failed operators.
	Sheds uint64
	// ShedsPerOp is Sheds broken down by operator.
	ShedsPerOp []uint64
	// IngestShed / ProbeShed split Sheds by message kind.
	IngestShed uint64
	ProbeShed  uint64
	// IngestLost / ProbeLost count in-flight messages abandoned by
	// operator panics (the message being handled when the panic hit).
	IngestLost uint64
	ProbeLost  uint64
	// Restarts is how many times supervisors restarted an operator from
	// its checkpoint.
	Restarts int
	// PermanentFailures counts operators that exhausted MaxRestarts.
	PermanentFailures int
	// Replayed is the number of checkpointed tuples re-inserted across
	// all restarts; StateLost the number of tuples inserted after the
	// last checkpoint and therefore unrecoverable.
	Replayed  uint64
	StateLost uint64
	// MigrationAborts counts index migrations rolled back by injected
	// mid-migration faults.
	MigrationAborts int
	// Tuner aggregates the retune controllers' what-if accounting across
	// all operators (and restart incarnations): passes, migrations, holds,
	// predicted vs realized migration cost.
	Tuner tuner.Summary
	// InjectedDelays and PressureEvents count the timing-only fault
	// classes that fired.
	InjectedDelays uint64
	PressureEvents uint64

	// ProbeCosts is the per-tick probe cost trace (one inner slice per
	// tick, one entry per probe executed in that tick's probe phase),
	// populated only when Config.CollectProbeCosts is set. Entries within
	// a tick are in completion order, which varies with scheduling;
	// consumers must treat each tick as an unordered multiset.
	ProbeCosts [][]ProbeCost

	// Crashed reports that the run stopped at a scheduled crash point
	// (Fault.CrashTicks) instead of completing; CrashTick is the last tick
	// fully processed and made durable before the kill. Call Recover with
	// the same Config to resume at CrashTick+1.
	Crashed   bool
	CrashTick int64
	// ResumedTick is the first tick this run segment processed: 0 for Run,
	// the crash point + 1 for Recover.
	ResumedTick int64
	// Recovered is how many tuples this segment's whole-run recovery
	// re-inserted from the durable store (checkpoints + WAL suffixes). It
	// counts only this segment's rebuild, unlike the cumulative counters
	// above, which continue the crashed run's totals.
	Recovered uint64
}

// ProbeCost is one probe's modeled work in simulation cost units, tagged
// with the operator that executed it. Units follow sim.DefaultCosts: the
// same per-hash / per-bucket / per-candidate weights the deterministic
// engine charges its clock.
type ProbeCost struct {
	Op    int
	Units float64
}

// message is one unit of operator work.
type message struct {
	ingest *tuple.Tuple
	comp   *tuple.Composite
	// doPanic pre-decides the OperatorPanic fault at delivery time (one
	// injector decision per surviving ingest, in arrival order — the same
	// per-(kind, actor) sequence the old handle-time decision consumed).
	// Deciding at delivery lets the partitioned ingest path see a batch's
	// panics BEFORE it fans the inserts out, so an injected panic always
	// fires before its tuple reaches the state or the WAL.
	doPanic bool
}

// operator is one STeM running as a goroutine: it owns its state's
// AdaptiveIndex, plus the checkpoint its supervisor restarts it from after
// a panic. Ingests, expiry and restores hold mu exclusively; probes hold
// it for reading when the index is sharded (concurrent probes of one state
// are then safe all the way down the lock-striped directory) and
// exclusively when it is flat.
type operator struct {
	id        int
	spec      *query.StateSpec
	mb        *mailbox[message]
	ckptEvery int
	window    int64 // event-time window, immutable after construction
	sharded   bool  // the index is lock-striped (Config.Shards > 0)
	heldLock  bool  // legacy baseline: sharded probes hold mu (Config.HeldLockProbes)
	// newIx / newRetained rebuild the operator's state from scratch on a
	// supervisor restart.
	newIx       func() (*core.AdaptiveIndex, error)
	newRetained func() *window.Buckets

	// cur is the epoch pointer the lock-free probe path reads: it always
	// names the operator's live index incarnation, and is republished by
	// restore after a checkpoint rebuild. Padded onto its own cache line —
	// every probe worker loads it, so it must not share a line with mu.
	cur atomic.Pointer[core.AdaptiveIndex]
	_   [56]byte

	durable bool // a CheckpointStore backs this operator (Config.Durable)
	// partitioned enables the shard-affine batched ingest path: sharded
	// epoch-probe runs under the deque dispatch with more than one worker.
	partitioned bool

	mu       sync.RWMutex
	ix       *core.AdaptiveIndex
	retained *window.Buckets
	// checkpoint is the retained-tuple snapshot a restart replays;
	// sinceCkpt counts inserts not yet covered by it.
	checkpoint  []*tuple.Tuple
	sinceCkpt   int
	retunesBase int // retunes from pre-restart incarnations
	abortsBase  int // migration aborts from pre-restart incarnations
	// tunerBase accumulates pre-restart incarnations' controller summaries
	// (controller state itself is advisory and restarts fresh).
	tunerBase tuner.Summary
	// applied is the total arrivals this operator has applied across all
	// incarnations — the WAL cursor: a durable checkpoint stores it so
	// recovery knows where this op's WAL suffix begins. tail mirrors that
	// suffix in memory (durable mode only): the tuples inserted since the
	// last checkpoint, replayed by a supervisor restore so nothing is lost.
	applied uint64
	tail    []*tuple.Tuple

	// Routed length, probe count and the failure flag are written from
	// different goroutine contexts (supervisors mutate length on ingest,
	// probe workers bump probes and length, supervisors raise failed), so
	// each lives on its own cache line. restarts is written only by the
	// supervisor but read by the source goroutine when it builds a tick
	// record, hence atomic (it shares a line with supervisor-local state,
	// which is fine — the writers are one goroutine).
	length   padInt64
	probes   padUint64
	failed   padBool
	restarts atomic.Int64

	// Supervisor-goroutine-local state: the message being handled (so a
	// panic's recover can release it), the accumulated-but-unapplied ingest
	// batch (serve resumes it after a restart; drainFailed sheds it), and
	// the per-worker shard-affine insert groups the partitioned path reuses
	// tick to tick.
	inflight  message
	pending   []message
	insGroups [][]*tuple.Tuple
}

// padUint64, padInt64 and padBool are atomic cells padded to a full cache
// line. The pipeline's counters are bumped concurrently from supervisors,
// probe workers and the source goroutine; padding keeps one writer's
// traffic from invalidating an unrelated neighbour's line (false sharing —
// see DESIGN.md §9 and the falseshare analyzer that enforces this).
type padUint64 struct {
	atomic.Uint64
	_ [56]byte
}

type padInt64 struct {
	atomic.Int64
	_ [56]byte
}

type padBool struct {
	atomic.Bool
	_ [60]byte
}

// probeScratch is one probe worker's reusable buffers: probe values and
// match collection live per worker, not per operator, so concurrent
// probes of the same state never share scratch. w is the worker's index
// into the cost collector's slot array. The fields below vals/matches
// serve only the deque dispatch: the inline-filter Matcher and index
// enumeration scratch, the popped-batch and follow-up job buffers, the
// composite freelist (dead driving composites recycled into the next
// extension instead of allocating), and the tick-local statistics (result
// count, per-op probe counts, router observations, per-(op, pattern)
// assessor counts or — when the pattern space is too wide to materialize —
// the claimed tuning ops) that flushWorkers merges at the barrier.
type probeScratch struct {
	w       int
	vals    []tuple.Value
	matches []*tuple.Tuple

	matcher bitindex.Matcher
	ss      bitindex.SearchScratch
	rng     *rand.Rand
	buf     []probeJob
	pend    []probeJob
	free    []*tuple.Composite
	nres    uint64
	ndec    uint64
	nexp    uint64
	nprobes []uint64
	robs    []routerObs
	obs     []uint64
	dueOps  []int
}

// freeCap bounds a worker's composite freelist; composites past it are
// left to the GC (the list only needs to cover one batch's fan-out).
const freeCap = 1024

// takeSpare pops a recycled composite, or nil when the freelist is dry.
func (sc *probeScratch) takeSpare() *tuple.Composite {
	if n := len(sc.free); n > 0 {
		c := sc.free[n-1]
		sc.free[n-1] = nil
		sc.free = sc.free[:n-1]
		return c
	}
	return nil
}

// recycle returns a dead composite to the freelist.
func (sc *probeScratch) recycle(c *tuple.Composite) {
	if len(sc.free) < freeCap {
		sc.free = append(sc.free, c)
	}
}

// routerObs is one deferred router observation (a first-hop probe's match
// feedback), replayed at the tick barrier in a canonical order.
type routerObs struct {
	i, j     int
	matches  int
	stateLen int
}

// insert stores one arrival and reports whether a checkpoint is due.
func (o *operator) insert(t *tuple.Tuple) (ckpt bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ix.Insert(t)
	o.retained.Add(t)
	// Timestamp-bucket expiry with watermark slack: exact under
	// out-of-order arrivals.
	o.retained.Expire(t.TS, func(old *tuple.Tuple) {
		o.ix.Delete(old)
	})
	o.length.Store(int64(o.ix.Len()))
	o.sinceCkpt++
	o.applied++
	if o.durable {
		o.tail = append(o.tail, t)
	}
	return o.ckptEvery > 0 && o.sinceCkpt >= o.ckptEvery
}

// applyArrival is insert's bookkeeping half for the partitioned ingest
// path: the index insert already ran shard-affinely on the workers, so this
// applies everything else — retention, expiry, the WAL cursor — in arrival
// order under the operator lock. Splitting insert this way keeps the final
// state set-identical to the serial path: every batch insert completed
// before the first applyArrival, so each expiry's Delete targets are always
// present, and the (insert set − expired set) the serial path computes is
// computed here too, just with the inserts hoisted ahead of the walk.
func (o *operator) applyArrival(t *tuple.Tuple) (ckpt bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.retained.Add(t)
	o.retained.Expire(t.TS, func(old *tuple.Tuple) {
		o.ix.Delete(old)
	})
	o.length.Store(int64(o.ix.Len()))
	o.sinceCkpt++
	o.applied++
	if o.durable {
		o.tail = append(o.tail, t)
	}
	return o.ckptEvery > 0 && o.sinceCkpt >= o.ckptEvery
}

// snapshot captures the retained tuples as the new checkpoint. In durable
// mode it also returns the serializable form — retained tuples, tuned
// config, WAL cursor — for the caller to persist OUTSIDE the operator lock
// (encode + store I/O must not stall the probe path); non-durable mode
// returns nil. The returned tuples alias the in-memory checkpoint, which
// is safe: tuples are immutable once created.
func (o *operator) snapshot() *opCheckpoint {
	o.mu.Lock()
	defer o.mu.Unlock()
	snap := make([]*tuple.Tuple, 0, o.retained.Len())
	o.retained.Each(func(t *tuple.Tuple) { snap = append(snap, t) })
	o.checkpoint = snap
	o.sinceCkpt = 0
	if !o.durable {
		return nil
	}
	o.tail = nil
	return &opCheckpoint{Op: o.id, Applied: o.applied, Cfg: o.ix.Config(), Tuples: snap}
}

// restore rebuilds the operator's state from its last checkpoint after a
// panic, reporting how many tuples were replayed and how many (inserted
// since that checkpoint) are gone for good. In durable mode the
// since-checkpoint tail is replayed too, so lost is always zero — the WAL
// vouches for those tuples, and the in-memory tail saves re-reading it.
func (o *operator) restore() (replayed, lost uint64, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.retunesBase += o.ix.Retunes()
	o.abortsBase += o.ix.MigrationAborts()
	o.tunerBase.Add(o.ix.TunerSummary())
	ix, err := o.newIx()
	if err != nil {
		return 0, 0, err
	}
	o.ix = ix
	o.retained = o.newRetained()
	for _, t := range o.checkpoint {
		o.ix.Insert(t)
		o.retained.Add(t)
	}
	replayed = uint64(len(o.checkpoint))
	if o.durable {
		// Tail replay runs the full insert path (expiry included), exactly
		// re-deriving the pre-panic retained set. sinceCkpt is unchanged:
		// the tail is still not covered by a checkpoint.
		for _, t := range o.tail {
			o.ix.Insert(t)
			o.retained.Add(t)
			o.retained.Expire(t.TS, func(old *tuple.Tuple) {
				o.ix.Delete(old)
			})
		}
		replayed += uint64(len(o.tail))
	} else {
		lost = uint64(o.sinceCkpt)
		o.sinceCkpt = 0
	}
	o.length.Store(int64(o.ix.Len()))
	// Publish the new incarnation to the lock-free probe path. A probe
	// that already loaded the old pointer finishes against the old index —
	// the same old-or-new atomicity the read lock provided.
	o.cur.Store(o.ix)
	return replayed, lost, nil
}

// retunes reads the state's migration count under the operator lock (the
// index may still be mid-probe when a caller aggregates results), summed
// across restart incarnations.
func (o *operator) retunes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.retunesBase + o.ix.Retunes()
}

// migrationAborts sums rolled-back migrations across incarnations.
func (o *operator) migrationAborts() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.abortsBase + o.ix.MigrationAborts()
}

// tunerSummary sums the controller's decision ledger across incarnations.
func (o *operator) tunerSummary() tuner.Summary {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.tunerBase
	s.Add(o.ix.TunerSummary())
	return s
}

// shedAssessment drops the state's tuning statistics — the memory-pressure
// degradation response (statistics are reconstructible; tuples are not).
// The injected cost, when the fault plan sets one, is charged WHILE the
// write lock is held: a real reclamation walks the state it is shrinking,
// so the stall-under-lock is the faithful model — and it is precisely the
// convoy that the held-lock probe baseline suffers and the epoch probe
// path sidesteps, which is what internal/bench/contention.go measures.
func (o *operator) shedAssessment(cost time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cost > 0 {
		//amrivet:lockhold fault injection: the stall models reclamation walking the locked state; the contention benchmark's A/B depends on it being under the lock
		time.Sleep(cost)
	}
	//amrivet:lockhold reclamation rewrites the assessor state o.mu guards; the epoch probe path never takes this lock, so the hold convoys only other maintenance
	o.ix.ShedAssessment()
}

// probe runs one search request against the state, returning the matches
// and the index work performed. The returned slice aliases the worker's
// scratch and is valid only until that worker's next probe (safe: the
// worker consumes the matches before popping another job). A sharded index
// is probed lock-free against the current epoch pointer, so probes of one
// state fan out across workers without touching the operator lock; a flat
// index demands exclusivity.
//
//amrivet:hotpath per-message probe in the worker pool
func (o *operator) probe(c *tuple.Composite, sc *probeScratch) ([]*tuple.Tuple, bitindex.Stats) {
	if o.sharded && !o.heldLock {
		return o.probeEpoch(c, sc)
	}
	return o.probeLocked(c, sc)
}

// probeEpoch is the lock-free probe path: one atomic load pins the index
// incarnation for the whole search — exactly the old-or-new atomicity the
// read lock gave against a concurrent restore — and the sharded backend
// synchronizes internally all the way down its striped directory. The
// operator lock is never taken, so a retune, checkpoint or restore on the
// serve goroutine cannot stall the probe fan-out behind it.
func (o *operator) probeEpoch(c *tuple.Composite, sc *probeScratch) ([]*tuple.Tuple, bitindex.Stats) {
	ix := o.cur.Load()
	st := o.searchInto(ix, c, sc)
	o.probes.Add(1)
	o.length.Store(int64(ix.Len()))
	return sc.matches, st
}

// probeLocked serves the flat index (which demands exclusivity) and the
// HeldLockProbes baseline (which shares the lock for reading): the whole
// search runs under the operator lock.
func (o *operator) probeLocked(c *tuple.Composite, sc *probeScratch) ([]*tuple.Tuple, bitindex.Stats) {
	if o.sharded {
		o.mu.RLock()
		defer o.mu.RUnlock()
	} else {
		o.mu.Lock()
		defer o.mu.Unlock()
	}
	//amrivet:lockhold flat index demands exclusivity for the whole search; the held-lock sharded form exists only as the contention benchmark's baseline
	st := o.searchInto(o.ix, c, sc)
	o.probes.Add(1)
	o.length.Store(int64(o.ix.Len()))
	return sc.matches, st
}

// searchInto runs one pattern search against the given index incarnation,
// collecting matches into the worker's scratch. Locking (or the absence of
// it) is the caller's business: the body reads only the immutable spec,
// the cached window, and the passed-in index.
func (o *operator) searchInto(ix *core.AdaptiveIndex, c *tuple.Composite, sc *probeScratch) bitindex.Stats {
	p := o.spec.PatternForDone(c.Done)
	vals := sc.vals[:o.spec.NumAttrs()]
	for i, ja := range o.spec.JAS {
		if p.Has(i) {
			vals[i] = c.Parts[ja.Partner].Attrs[ja.PartnerAttr]
		} else {
			vals[i] = 0
		}
	}
	drv := c.Driver()
	driver := drv.Arrival
	sc.matches = sc.matches[:0]
	return ix.Search(p, vals, func(x *tuple.Tuple) bool {
		if driver != 0 && x.Arrival >= driver {
			return true // exactly-once: only the newest member drives a result
		}
		if driver != 0 && x.TS <= drv.TS-o.window {
			return true // outside the driver's event-time window
		}
		ok := true
		for i, ja := range o.spec.JAS {
			if p.Has(i) && x.Attrs[ja.Attr] != vals[i] {
				ok = false
				break
			}
		}
		if ok {
			sc.matches = append(sc.matches, x)
		}
		return true
	})
}

// probeMatch is the deque dispatch's probe: the same search as probe, but
// through the inline-filter SearchMatch path — the candidate filter runs
// inside the bucket scan (no per-candidate closure call), matches land in
// the worker's scratch slice, and the assessor is NOT touched (the worker
// defers the observation to the tick barrier, where flushWorkers batches it
// through ObserveSearches). Sharded epoch probes pin the index incarnation
// with one atomic load; the flat index still demands exclusivity and the
// HeldLockProbes baseline still reads under the operator lock, exactly as
// the legacy path's probeLocked.
//
//amrivet:hotpath batched-dispatch probe: inline-filter search with worker-owned scratch
func (o *operator) probeMatch(c *tuple.Composite, sc *probeScratch) ([]*tuple.Tuple, bitindex.Stats) {
	pt := o.spec.PatternForDone(c.Done)
	vals := sc.vals[:o.spec.NumAttrs()]
	m := &sc.matcher
	m.NEq = 0
	for i, ja := range o.spec.JAS {
		if pt.Has(i) {
			v := c.Parts[ja.Partner].Attrs[ja.PartnerAttr]
			vals[i] = v
			m.EqAttr[m.NEq] = ja.Attr
			m.EqVal[m.NEq] = v
			m.NEq++
		} else {
			vals[i] = 0
		}
	}
	drv := c.Driver()
	m.Driver = drv.Arrival
	m.MinTS = drv.TS - o.window
	sc.matches = sc.matches[:0]
	var st bitindex.Stats
	switch {
	case o.sharded && !o.heldLock:
		ix := o.cur.Load()
		st, sc.matches = ix.SearchMatch(pt, vals, m, &sc.ss, sc.matches)
	case o.sharded:
		o.mu.RLock()
		//amrivet:lockhold HeldLockProbes baseline: the whole search under the read lock is the contention the A/B benchmark measures
		st, sc.matches = o.ix.SearchMatch(pt, vals, m, &sc.ss, sc.matches)
		o.mu.RUnlock()
	default:
		o.mu.Lock()
		//amrivet:lockhold flat index scratch demands exclusivity for the whole search, as in probeLocked
		st, sc.matches = o.ix.SearchMatch(pt, vals, m, &sc.ss, sc.matches)
		o.mu.Unlock()
	}
	sc.nprobes[o.id]++ // flushed to o.probes at the tick barrier
	return sc.matches, st
}

// run bundles one Run invocation's shared machinery: the operator set, the
// fault injector, the in-flight message WaitGroup, and every counter the
// Result aggregates. It is always handled by pointer.
type run struct {
	cfg  Config
	n    int
	q    *query.Query
	prof stream.Profile
	gen  *stream.Generator
	ops  []*operator
	inj  *fault.Injector

	maxAttrs int
	store    storage.CheckpointStore // nil unless Config.Durable

	// wg tracks in-flight messages: every delivered message is Added once
	// and Done exactly once — when handled, shed, or lost to a panic.
	wg sync.WaitGroup

	// probeCh feeds the shared probe worker pool under LegacyDispatch:
	// serve goroutines forward composite messages here, workers execute
	// them. A job's wg slot is released by the worker that handles (or
	// sheds) it.
	probeCh chan probeJob
	costs   sim.CostTable
	collect *costCollector // nil unless Config.CollectProbeCosts

	// Deque dispatch state (nil/zero under LegacyDispatch): the dispatcher
	// and its hand-off grain, the per-worker scratches flushWorkers merges,
	// the materialized (op, pattern) space for deferred assessor counts (0
	// = too wide, workers observe directly), the source's reusable
	// job/router-observation buffers, and the per-tick operator-length
	// snapshot (lengths only change in the ingest phase, so one snapshot
	// taken at probe dispatch serves every routing decision of the tick —
	// no per-hop atomic loads).
	dsp       *dispatcher
	batch     int
	scratches []*probeScratch
	patSpace  int
	jobBuf    []probeJob
	tickLens  []int
	robsBuf   []routerObs
	rt        *router.Router
	srcRng    *rand.Rand
	srcDec    uint64
	srcExp    uint64

	nextHop     func(done uint32) int
	observe     func(i, j, matches, stateLen int)
	recordRoute func(total, explored uint64)

	// storeMu guards storeErr: the first durable-store failure, recorded by
	// whichever goroutine hits it and surfaced as the run's error. Later
	// store calls still run (the run drains normally) but the result is
	// untrusted once any append or save was lost.
	storeMu  sync.Mutex
	storeErr error

	// Every run counter is cache-line padded: results and probeShed are
	// bumped by probe workers, ingested and restarts by supervisors,
	// delays by the source — all concurrently, and unpadded they would
	// pack these hot words into a couple of lines. curTick is published by
	// the source each tick and read by supervisors enforcing the
	// MaxRestartWindow wall budget.
	curTick    padInt64
	results    padUint64
	ingested   padUint64
	sheds      []padUint64
	ingestShed padUint64
	probeShed  padUint64
	ingestLost padUint64
	probeLost  padUint64
	restarts   padUint64
	permFailed padUint64
	replayed   padUint64
	stateLost  padUint64
	delays     padUint64
	pressure   padUint64
	recovered  padUint64
}

// recordStoreErr keeps the first durable-store failure for finish to
// surface.
func (p *run) recordStoreErr(err error) {
	if err == nil {
		return
	}
	p.storeMu.Lock()
	if p.storeErr == nil {
		p.storeErr = err
	}
	p.storeMu.Unlock()
}

// firstStoreErr returns the recorded failure, if any.
func (p *run) firstStoreErr() error {
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	return p.storeErr
}

// probeJob is one unit of worker-pool work: a composite probe, or — on the
// partitioned ingest path — a shard-affine insert batch (ins non-nil): the
// worker inserts every tuple into insIx and signals insDone once. Insert
// jobs are not tracked by run.wg; the serve goroutine that fanned them out
// waits on insDone before it runs the batch's serial bookkeeping.
// probeJob is one unit of deque work: a probe (o+comp) or, rarely, a
// shard-affine insert fan-out (ins != nil). The insert fields live behind a
// pointer deliberately — jobs are copied on every push/pop/steal and zeroed
// on every consume, and at three words the copies compile to plain register
// moves instead of duffcopy (which a 56-byte flat layout put at ~4% of a
// drift-run profile).
type probeJob struct {
	o    *operator
	comp *tuple.Composite
	ins  *insBatch
}

// insBatch carries one worker's slice of an operator's ingest batch.
type insBatch struct {
	tuples []*tuple.Tuple
	ix     *core.AdaptiveIndex
	done   *sync.WaitGroup
}

// costCollector accumulates the per-tick probe cost trace in per-worker
// slots: each worker appends lock-free to its own slot, and the tick loop
// merges them after the phase barrier (p.wg.Wait orders every append
// before the flush, so the merge needs no lock either). Entries within a
// tick were always an unordered multiset — see Result.ProbeCosts — so the
// slot-order merge changes nothing observable.
type costCollector struct {
	slots []costSlot
	ticks [][]ProbeCost
}

// costSlot is one worker's private buffer, padded so neighbouring workers'
// append bookkeeping does not share a cache line.
type costSlot struct {
	buf []ProbeCost
	_   [40]byte
}

func newCostCollector(workers int) *costCollector {
	return &costCollector{slots: make([]costSlot, workers)}
}

// add records one probe's cost in worker w's slot. Only worker w calls it.
func (c *costCollector) add(w int, pc ProbeCost) {
	c.slots[w].buf = append(c.slots[w].buf, pc)
}

// flush merges the slots into one tick entry; callers must have quiesced
// the workers first.
func (c *costCollector) flush() {
	var tick []ProbeCost
	for i := range c.slots {
		tick = append(tick, c.slots[i].buf...)
		c.slots[i].buf = c.slots[i].buf[:0]
	}
	c.ticks = append(c.ticks, tick)
}

func (c *costCollector) trace() [][]ProbeCost {
	return c.ticks
}

// accountShed records one dropped message against its target operator.
func (p *run) accountShed(target int, m message) {
	p.sheds[target].Add(1)
	if m.ingest != nil {
		p.ingestShed.Add(1)
	} else {
		p.probeShed.Add(1)
	}
}

// deliver routes one message to an operator mailbox with full fault and
// overload accounting. fromSource selects blocking semantics (backpressure
// may stall the workload source but never an operator). Every path either
// enqueues the message with wg held, or sheds it with wg released.
func (p *run) deliver(target int, m message, fromSource bool) {
	o := p.ops[target]
	if o.failed.Load() {
		p.accountShed(target, m)
		return
	}
	// Injected saturation: the delivery behaves as if the mailbox were
	// full under a drop policy. Keyed to ingest deliveries only, so the
	// schedule is independent of probe interleaving.
	if m.ingest != nil && p.inj.Decide(fault.MailboxSaturate, target) {
		p.accountShed(target, m)
		return
	}
	if p.inj.Decide(fault.MailboxDelay, target) {
		p.delays.Add(1)
		time.Sleep(p.inj.Delay())
	}
	p.wg.Add(1)
	var r PushResult
	if fromSource {
		r = o.mb.PushWait(m)
	} else {
		r = o.mb.Push(m)
	}
	// Shed results are accounted by the mailbox's onShed hook (which sees
	// the actual dropped message — the victim head under drop-oldest).
	// A closed mailbox refuses the message outright: account it here.
	if r == PushClosed {
		p.accountShed(target, m)
		p.wg.Done()
	}
}

// deliverIngestBatch routes one tick's arrivals for a single operator with
// deliver's per-message fault and overload accounting, but one batched
// mailbox push for the survivors — one lock acquisition per (operator,
// tick) instead of one per tuple. The injector decisions run first, in
// arrival order, so every (kind, actor) decision sequence is exactly the
// per-message schedule; only the lock traffic changes.
func (p *run) deliverIngestBatch(target int, ts []*tuple.Tuple) {
	o := p.ops[target]
	msgs := make([]message, 0, len(ts))
	for _, t := range ts {
		m := message{ingest: t}
		if o.failed.Load() {
			p.accountShed(target, m)
			continue
		}
		if p.inj.Decide(fault.MailboxSaturate, target) {
			p.accountShed(target, m)
			continue
		}
		if p.inj.Decide(fault.MailboxDelay, target) {
			p.delays.Add(1)
			time.Sleep(p.inj.Delay())
		}
		// Pre-decide the handling-time panic (see message.doPanic): one
		// decision per survivor, in arrival order — the sequence the
		// handle-time decision consumed under PolicyBlock.
		m.doPanic = p.inj.Decide(fault.OperatorPanic, target)
		msgs = append(msgs, m)
	}
	if len(msgs) == 0 {
		return
	}
	p.wg.Add(len(msgs))
	for i, r := range o.mb.PushWaitBatch(msgs) {
		// Shed results are accounted by the mailbox's onShed hook, as in
		// deliver; a closed mailbox leaves the refused message to us.
		if r == PushClosed {
			p.accountShed(target, msgs[i])
			p.wg.Done()
		}
	}
}

// handleIngest processes one arrival on the operator's own goroutine.
func (p *run) handleIngest(o *operator, msg message) {
	// The panic fault (pre-decided at delivery, see message.doPanic) fires
	// while an arrival is being handled — after the message left the
	// mailbox, before it reached the state — the worst spot for an
	// unassisted crash. It fires before the insert, so a panic-killed tuple
	// is in neither the state nor the WAL: replay can never resurrect a
	// tuple the live run lost.
	if msg.doPanic {
		panic(fmt.Sprintf("pipeline: injected panic at operator %d", o.id))
	}
	ckptDue := o.insert(msg.ingest)
	if p.store != nil {
		// One WAL record per applied arrival, appended after the insert
		// succeeded; the append runs on the serve goroutine, outside the
		// operator lock, so store latency never stalls the probe path.
		p.recordStoreErr(p.store.AppendWAL(encodeIngestRecord(o.id, msg.ingest)))
	}
	if ckptDue {
		if ck := o.snapshot(); ck != nil {
			// The WAL tail must be durable before the checkpoint that
			// acknowledges it publishes: a checkpoint whose Applied cursor
			// outruns the synced log would make recovery skip records the
			// crash erased. Sync batches at checkpoint cadence, so the
			// cost is amortized over CheckpointEvery arrivals.
			p.recordStoreErr(p.store.Sync())
			p.recordStoreErr(p.store.SaveCheckpoint(ck.Op, ck.encode()))
		}
	}
	p.ingested.Add(1)
}

// handleComp processes one probe on a worker goroutine.
func (p *run) handleComp(o *operator, comp *tuple.Composite, sc *probeScratch) {
	if p.inj.Decide(fault.MemoryPressure, o.id) {
		o.shedAssessment(p.inj.AssessCost())
		p.pressure.Add(1)
	}
	matches, st := o.probe(comp, sc)
	if p.collect != nil {
		p.collect.add(sc.w, ProbeCost{Op: o.id, Units: float64(
			sim.Units(st.Hashes)*p.costs.Hash +
				sim.Units(st.Buckets)*p.costs.Bucket +
				sim.Units(st.DirScans)*p.costs.DirScan +
				sim.Units(st.Tuples)*p.costs.Compare)})
	}
	if comp.Count() == 1 {
		src := bits.TrailingZeros32(comp.Done)
		p.observe(src, o.id, len(matches), int(o.length.Load()))
	}
	for _, m := range matches {
		nc := comp.Extend(m)
		if nc.Complete(p.n) {
			p.results.Add(1)
			if p.cfg.OnResult != nil {
				p.cfg.OnResult(nc)
			}
			continue
		}
		if next := p.nextHop(nc.Done); next >= 0 {
			p.deliver(next, message{comp: nc}, false)
		}
	}
}

// probeWorker drains the shared probe channel until it closes. Follow-up
// deliveries from a worker use the non-blocking mailbox push, so workers
// always make progress and the pool cannot deadlock against the serve
// goroutines feeding it.
func (p *run) probeWorker(sc *probeScratch) {
	for job := range p.probeCh {
		// The target may have failed permanently after the job was
		// dispatched; shed it exactly as a mailbox drain would.
		if job.o.failed.Load() {
			p.accountShed(job.o.id, message{comp: job.comp})
		} else {
			p.handleComp(job.o, job.comp, sc)
		}
		p.wg.Done()
	}
}

// handleCompDeque is handleComp's deque-dispatch twin: the probe runs
// through the inline-filter probeMatch, follow-up composites go to the
// worker's pending batch (one deque push per popped batch, no mailbox in
// the loop), and every statistic that feeds tuning or routing is deferred
// to the worker's tick-local scratch for flushWorkers to merge at the
// barrier. Result emission stays inline: OnResult's concurrency contract is
// unchanged and the digest is order-insensitive.
//
//amrivet:hotpath deque worker probe execution
func (p *run) handleCompDeque(o *operator, comp *tuple.Composite, sc *probeScratch) {
	if p.inj.Decide(fault.MemoryPressure, o.id) {
		o.shedAssessment(p.inj.AssessCost())
		p.pressure.Add(1)
	}
	matches, st := o.probeMatch(comp, sc)
	if p.collect != nil {
		p.collect.add(sc.w, ProbeCost{Op: o.id, Units: float64(
			sim.Units(st.Hashes)*p.costs.Hash +
				sim.Units(st.Buckets)*p.costs.Bucket +
				sim.Units(st.DirScans)*p.costs.DirScan +
				sim.Units(st.Tuples)*p.costs.Compare)})
	}
	if sc.obs != nil {
		sc.obs[o.id*p.patSpace+int(o.spec.PatternForDone(comp.Done))]++
	} else if o.cur.Load().ObserveSearches(o.spec.PatternForDone(comp.Done), 1) {
		sc.dueOps = append(sc.dueOps, o.id) //amrivet:ignore[hotalloc] append into the worker's tick-local scratch, drained and resliced at the barrier
	}
	if comp.Count() == 1 {
		src := bits.TrailingZeros32(comp.Done)
		//amrivet:ignore[hotalloc] append into the worker's tick-local scratch, drained and resliced at the barrier
		sc.robs = append(sc.robs, routerObs{i: src, j: o.id, matches: len(matches), stateLen: p.tickLens[o.id]})
	}
	for _, m := range matches {
		nc := comp.ExtendInto(sc.takeSpare(), m)
		if nc.Complete(p.n) {
			sc.nres++
			if p.cfg.OnResult != nil {
				p.cfg.OnResult(nc) // escapes to the caller; never recycled
			} else {
				sc.recycle(nc)
			}
			continue
		}
		if next := p.routeTick(nc.Done, sc.rng, &sc.ndec, &sc.nexp); next >= 0 {
			// The follow-up's wg slot is taken by the batched Add in
			// dequeWorker, before the parent batch's release.
			//amrivet:ignore[hotalloc] append into the worker's pending-batch scratch, pushed and resliced once per popped batch
			sc.pend = append(sc.pend, probeJob{o: p.ops[next], comp: nc})
		} else {
			sc.recycle(nc)
		}
	}
}

// dequeWorker is one deque-dispatch worker: pop a batch off the own deque,
// steal half a victim's queue when dry, park when the whole dispatcher is
// empty. Follow-up jobs accumulated during a batch are pushed to the own
// deque in one operation (their wg slots were taken at creation, before the
// parent's release, so the tick barrier cannot pass while they are
// pending). Insert jobs from the partitioned ingest path execute here too.
func (p *run) dequeWorker(sc *probeScratch) {
	for {
		n := p.dsp.popOwn(sc.w, p.batch, &sc.buf)
		if n == 0 {
			n = p.dsp.stealAny(sc.w, &sc.buf)
		}
		if n == 0 {
			if !p.dsp.park() {
				return
			}
			continue
		}
		p.dsp.wakeSibling()
		handled := 0
		for i := 0; i < n; i++ {
			job := sc.buf[i]
			sc.buf[i] = probeJob{}
			if job.ins != nil {
				for _, t := range job.ins.tuples {
					job.ins.ix.Insert(t)
				}
				job.ins.done.Done()
				continue
			}
			// The target may have failed permanently after dispatch; shed
			// exactly as a mailbox drain would.
			if job.o.failed.Load() {
				p.accountShed(job.o.id, message{comp: job.comp})
			} else {
				p.handleCompDeque(job.o, job.comp, sc)
			}
			// The driving composite dies with its probe (extensions copy,
			// results escape): recycle it into the worker's freelist.
			sc.recycle(job.comp)
			handled++
		}
		// One wg round-trip per batch, not per job: take the follow-ups'
		// slots first, then release the handled jobs', so the barrier count
		// can never touch zero while this batch's children are pending.
		if len(sc.pend) > 0 {
			p.wg.Add(len(sc.pend))
			p.dsp.push(sc.w, sc.pend)
			for i := range sc.pend {
				sc.pend[i] = probeJob{}
			}
			sc.pend = sc.pend[:0]
		}
		if handled > 0 {
			p.wg.Add(-handled)
		}
	}
}

// serve drains the mailbox until closed-and-empty: arrivals are handled
// inline (state mutation stays on the operator's goroutine, so an injected
// panic is attributable to it), probes are forwarded to the worker pool
// (LegacyDispatch only — the deque dispatch never routes probes through
// mailboxes). A partitioned operator gathers every immediately available
// arrival into one batch and fans the index inserts out shard-affinely;
// batches that are too small to pay for the fan-out, or that contain a
// pre-decided panic, fall back to the per-message path. A panic escapes to
// the recover in superviseOnce, and the interrupted batch remainder is
// resumed by the drain at the top of the loop.
func (p *run) serve(o *operator) {
	for {
		p.drainPendingBatch(o)
		msg, ok := o.mb.Pop()
		if !ok {
			return
		}
		if msg.comp != nil {
			p.probeCh <- probeJob{o: o, comp: msg.comp}
			continue
		}
		if !o.partitioned {
			o.inflight = msg
			p.handleIngest(o, msg)
			o.inflight = message{}
			p.wg.Done()
			continue
		}
		o.pending = append(o.pending, msg)
		hasPanic := msg.doPanic
		for len(o.pending) < partitionMaxBatch {
			m2, ok2 := o.mb.TryPop()
			if !ok2 {
				break
			}
			o.pending = append(o.pending, m2)
			hasPanic = hasPanic || m2.doPanic
		}
		if hasPanic || len(o.pending) < partitionMinBatch {
			p.drainPendingBatch(o)
			continue
		}
		p.ingestPartitioned(o)
	}
}

// partitionMinBatch is the accumulated-batch size below which the
// partitioned ingest path is not worth its fan-out overhead and the
// per-message path runs instead; partitionMaxBatch caps how much one
// accumulation gathers so checkpoint latency stays bounded. The choice of
// path is timing-dependent and deliberately unobservable: both produce the
// same state, the same WAL order and the same counters.
const (
	partitionMinBatch = 16
	partitionMaxBatch = 256
)

// drainPendingBatch applies accumulated arrivals one at a time through the
// full per-message path. It doubles as the panic-resume point: a restarted
// serve finishes the interrupted batch before popping the mailbox again
// (the panicked message itself was already removed here and accounted by
// superviseOnce's recover).
func (p *run) drainPendingBatch(o *operator) {
	for len(o.pending) > 0 {
		msg := o.pending[0]
		o.pending[0] = message{}
		o.pending = o.pending[1:]
		o.inflight = msg
		p.handleIngest(o, msg)
		o.inflight = message{}
		p.wg.Done()
	}
}

// ingestPartitioned applies one accumulated ingest batch in two stages:
// the index inserts fan out over the worker deques grouped by the live
// epoch's shard (tuples of distinct workers touch disjoint lock stripes),
// and after the insDone barrier the serial bookkeeping — retention,
// expiry, WAL, checkpoints — runs in arrival order, so everything the
// durable store or a recovery sees is byte-identical to the per-message
// path.
func (p *run) ingestPartitioned(o *operator) {
	//amrivet:ignore[mutexguard] the serve goroutine owns o.ix between restores (only superviseOnce's restore path swaps it, on this same goroutine); concurrent probes pin o.cur, never o.ix
	ix := o.ix
	nw := len(p.dsp.deques)
	if o.insGroups == nil {
		o.insGroups = make([][]*tuple.Tuple, nw)
	}
	for _, msg := range o.pending {
		w := ix.ShardOf(msg.ingest) % nw
		o.insGroups[w] = append(o.insGroups[w], msg.ingest)
	}
	var insWG sync.WaitGroup
	for w := 0; w < nw; w++ {
		if len(o.insGroups[w]) == 0 {
			continue
		}
		insWG.Add(1)
		p.dsp.push(w, []probeJob{{o: o, ins: &insBatch{tuples: o.insGroups[w], ix: ix, done: &insWG}}})
	}
	//amrivet:ignore[waitleak] the matching Done is job.ins.done.Done() in dequeWorker — the analyzer cannot trace the WaitGroup pointer through the insBatch field
	insWG.Wait()
	for w := 0; w < nw; w++ {
		o.insGroups[w] = o.insGroups[w][:0]
	}
	for i := range o.pending {
		msg := o.pending[i]
		o.pending[i] = message{}
		ckptDue := o.applyArrival(msg.ingest)
		if p.store != nil {
			p.recordStoreErr(p.store.AppendWAL(encodeIngestRecord(o.id, msg.ingest)))
		}
		if ckptDue {
			if ck := o.snapshot(); ck != nil {
				// Same discipline as handleIngest: the WAL tail becomes
				// durable before the checkpoint that covers it publishes.
				p.recordStoreErr(p.store.Sync())
				p.recordStoreErr(p.store.SaveCheckpoint(ck.Op, ck.encode()))
			}
		}
		p.ingested.Add(1)
		p.wg.Done()
	}
	o.pending = o.pending[:0]
}

// superviseOnce runs one operator incarnation, converting a panic into
// done=false after releasing the abandoned in-flight message.
func (p *run) superviseOnce(o *operator) (done bool) {
	defer func() {
		if r := recover(); r == nil {
			return
		}
		done = false
		m := o.inflight
		o.inflight = message{}
		if m.ingest != nil || m.comp != nil {
			if m.ingest != nil {
				p.ingestLost.Add(1)
			} else {
				p.probeLost.Add(1)
			}
			p.wg.Done()
		}
	}()
	p.serve(o)
	return true
}

// supervise wraps one operator goroutine for its whole life: serve until
// clean exit, restart from checkpoint after each panic with capped
// exponential backoff, and declare the operator permanently failed — by
// restart count (MaxRestarts) or by flapping time (MaxRestartWindow) —
// shedding its backlog so the run still drains. An operator already failed
// when supervision starts (a recovered run resuming a pre-crash verdict)
// goes straight to the drain without re-counting the failure.
func (p *run) supervise(o *operator) {
	if o.failed.Load() {
		p.drainFailed(o)
		return
	}
	backoff := p.cfg.RestartBackoff
	// The wall budget tracks one "flap": windowStart is the tick of the
	// first panic in the current unhealthy stretch, lastPanic the most
	// recent. A healthy gap longer than the window re-arms the budget;
	// flapping continuously from windowStart for the whole window converts
	// to a permanent failure even with MaxRestarts remaining.
	windowStart, lastPanic := int64(-1), int64(-1)
	for {
		if p.superviseOnce(o) {
			return
		}
		if w := p.cfg.MaxRestartWindow; w > 0 {
			now := p.curTick.Load()
			if windowStart < 0 || now-lastPanic > w {
				windowStart = now
			} else if now-windowStart >= w {
				p.failOperator(o)
				return
			}
			lastPanic = now
		}
		if o.restarts.Load() >= int64(p.cfg.MaxRestarts) {
			p.failOperator(o)
			return
		}
		o.restarts.Add(1)
		p.restarts.Add(1)
		time.Sleep(backoff)
		if backoff < p.cfg.RestartBackoff*8 {
			backoff *= 2
		}
		replayed, lost, err := o.restore()
		if err != nil {
			p.failOperator(o)
			return
		}
		p.replayed.Add(replayed)
		p.stateLost.Add(lost)
	}
}

// failOperator renders the permanent-failure verdict: the operator stops
// processing, its routed length drops to zero, and its backlog (plus
// anything delivered before producers notice the failed flag) is shed
// until the run closes the mailbox.
func (p *run) failOperator(o *operator) {
	o.failed.Store(true)
	o.length.Store(0)
	p.permFailed.Add(1)
	p.drainFailed(o)
}

// drainFailed sheds a failed operator's backlog — any accumulated batch
// remainder first, then the mailbox until it closes.
func (p *run) drainFailed(o *operator) {
	for _, msg := range o.pending {
		p.accountShed(o.id, msg)
		p.wg.Done()
	}
	o.pending = nil
	for {
		msg, ok := o.mb.Pop()
		if !ok {
			return
		}
		p.accountShed(o.id, msg)
		p.wg.Done()
	}
}

// Run executes the workload concurrently and blocks until every message has
// drained — or, when the fault plan schedules crashes and Config.Durable is
// set, until the first crash point kills the run at a tick boundary (the
// Result then has Crashed set; resume it with Recover).
func Run(cfg Config) (*Result, error) {
	p, err := newRun(cfg)
	if err != nil {
		return nil, err
	}
	return p.execute(0)
}

// newRun validates the configuration and builds the run machinery —
// generator, operators, router, injector — without starting any goroutine.
// Run executes it from tick 0; Recover first reloads state from the
// durable store and executes it from the crash point + 1.
func newRun(cfg Config) (*run, error) {
	q := cfg.Query
	if q == nil {
		q = query.FourWay(60)
	}
	prof := cfg.Profile
	if prof.LambdaD == 0 {
		prof = stream.DriftProfile()
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("pipeline: Ticks must be positive")
	}
	if cfg.MailboxCap < 0 {
		return nil, fmt.Errorf("pipeline: MailboxCap must be >= 0")
	}
	if cfg.ProbeWorkers < 0 {
		return nil, fmt.Errorf("pipeline: ProbeWorkers must be >= 0")
	}
	if cfg.ProbeWorkers == 0 {
		cfg.ProbeWorkers = runtime.NumCPU()
	}
	if cfg.Shards < 0 || cfg.Shards > 256 || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("pipeline: Shards %d must be 0 or a power of two in [1, 256]", cfg.Shards)
	}
	if cfg.MaxRestartWindow < 0 {
		return nil, fmt.Errorf("pipeline: MaxRestartWindow must be >= 0")
	}
	if cfg.DispatchBatch < 0 {
		return nil, fmt.Errorf("pipeline: DispatchBatch must be >= 0")
	}
	if cfg.DispatchBatch == 0 {
		cfg.DispatchBatch = 64
	}
	if len(cfg.Fault.CrashTicks) > 0 {
		if cfg.Durable == nil {
			return nil, fmt.Errorf("pipeline: Fault.CrashTicks requires Config.Durable (nothing to recover from)")
		}
		for i := 1; i < len(cfg.Fault.CrashTicks); i++ {
			if cfg.Fault.CrashTicks[i] < cfg.Fault.CrashTicks[i-1] {
				return nil, fmt.Errorf("pipeline: Fault.CrashTicks must be ascending")
			}
		}
	}
	if cfg.BitBudget == 0 {
		cfg.BitBudget = 12
	}
	if cfg.AutoTuneEvery == 0 {
		cfg.AutoTuneEvery = 2000
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 256
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = time.Millisecond
	}
	gen, err := stream.New(q, prof, cfg.Seed)
	if err != nil {
		return nil, err
	}

	n := q.NumStreams()
	p := &run{
		cfg:     cfg,
		n:       n,
		q:       q,
		prof:    prof,
		gen:     gen,
		ops:     make([]*operator, n),
		inj:     fault.New(cfg.Fault, n),
		store:   cfg.Durable,
		sheds:   make([]padUint64, n),
		probeCh: make(chan probeJob, cfg.ProbeWorkers),
		costs:   sim.DefaultCosts(),
	}
	if cfg.CollectProbeCosts {
		p.collect = newCostCollector(cfg.ProbeWorkers)
	}
	for s := 0; s < n; s++ {
		spec := q.States[s]
		if spec.NumAttrs() > p.maxAttrs {
			p.maxAttrs = spec.NumAttrs()
		}
		attrMap := make([]int, spec.NumAttrs())
		for i, ja := range spec.JAS {
			attrMap[i] = ja.Attr
		}
		opts := core.Options{
			NumAttrs:      spec.NumAttrs(),
			AttrMap:       attrMap,
			BitBudget:     cfg.BitBudget,
			Method:        cfg.Method,
			AutoTuneEvery: cfg.AutoTuneEvery,
			Seed:          cfg.Seed + uint64(s),
			Shards:        cfg.Shards,
			LegacyTuner:   cfg.LegacyTuner,
			TuneHorizon:   cfg.TuneHorizon,
			TuneCooldown:  cfg.TuneCooldown,
			DriftSense:    cfg.DriftSense,
		}
		if p.inj != nil {
			id := s
			opts.MigrateGate = func() bool {
				return !p.inj.Decide(fault.MigrationAbort, id)
			}
		}
		newIx := func() (*core.AdaptiveIndex, error) { return core.New(opts) }
		newRetained := func() *window.Buckets { return window.New(q.WindowTicks, prof.MaxDelay) }
		ix, err := newIx()
		if err != nil {
			return nil, err
		}
		o := &operator{
			id:          s,
			spec:        spec,
			ckptEvery:   cfg.CheckpointEvery,
			window:      q.WindowTicks,
			sharded:     cfg.Shards > 0,
			heldLock:    cfg.HeldLockProbes,
			partitioned: cfg.Shards > 0 && !cfg.HeldLockProbes && !cfg.LegacyDispatch && cfg.ProbeWorkers > 1,
			durable:     cfg.Durable != nil,
			newIx:       newIx,
			newRetained: newRetained,
			ix:          ix,
			retained:    newRetained(),
		}
		o.cur.Store(ix)
		o.mb = newBoundedMailbox[message](cfg.MailboxCap, cfg.ShedPolicy,
			func(m message, _ PushResult) {
				p.accountShed(o.id, m)
				p.wg.Done()
			})
		p.ops[s] = o
	}

	rt := router.New(n, cfg.Explore, cfg.Seed+99)
	var rtMu sync.Mutex
	p.rt = rt
	p.nextHop = func(done uint32) int {
		lens := make([]int, n)
		for i, o := range p.ops {
			lens[i] = int(o.length.Load())
		}
		rtMu.Lock()
		defer rtMu.Unlock()
		return rt.Next(done, lens)
	}
	p.observe = func(i, j, matches, stateLen int) {
		rtMu.Lock()
		defer rtMu.Unlock()
		rt.ObservePair(i, j, matches, stateLen)
	}
	p.recordRoute = func(total, explored uint64) {
		rtMu.Lock()
		defer rtMu.Unlock()
		rt.RecordDecisions(total, explored)
	}
	if !cfg.LegacyDispatch {
		p.dsp = newDispatcher(cfg.ProbeWorkers)
		p.batch = cfg.DispatchBatch
		p.tickLens = make([]int, n)
		p.srcRng = rand.New(rand.NewPCG(cfg.Seed+199, cfg.Seed^0x85ebca6b))
		// Materialize the deferred-observation table only when the (op,
		// pattern) space is small enough; wider queries fall back to
		// direct (mutex-per-probe) observation on the workers.
		if p.maxAttrs <= 16 && n*(1<<uint(p.maxAttrs)) <= 1<<20 {
			p.patSpace = 1 << uint(p.maxAttrs)
		}
		p.scratches = make([]*probeScratch, cfg.ProbeWorkers)
		for w := range p.scratches {
			sc := &probeScratch{w: w, vals: make([]tuple.Value, p.maxAttrs), nprobes: make([]uint64, n)}
			sc.rng = rand.New(rand.NewPCG(cfg.Seed+199+uint64(w+1)*0x9e3779b9, cfg.Seed^uint64(w)*0xc2b2ae35))
			if p.patSpace > 0 {
				sc.obs = make([]uint64, n*p.patSpace)
			}
			p.scratches[w] = sc
		}
	}
	return p, nil
}

// routeTick routes one hop during the probe phase: a lock-free read of the
// router's barrier-stable estimates against the tick's length snapshot,
// with the exploration draw from the caller's own rng and the decision
// counted in the caller's scratch (flushed at the barrier). The routing
// sequence differs per worker count — which probes run where and in what
// order always has — but the verified result set provably does not.
func (p *run) routeTick(done uint32, rng *rand.Rand, ndec, nexp *uint64) int {
	next, explored := p.rt.NextWith(done, p.tickLens, rng)
	*ndec++
	if explored {
		*nexp++
	}
	return next
}

// dispatchProbes builds one tick's root probe jobs (one composite per
// surviving arrival, routed to its first hop) and hands them to the worker
// deques in DispatchBatch chunks, round-robin. It snapshots the operator
// lengths first — the ingest phase is over, so they are constant until the
// next tick's — and all wg slots are taken before the first push so the
// tick barrier cannot pass early.
func (p *run) dispatchProbes(batch []*tuple.Tuple) {
	for i, o := range p.ops {
		p.tickLens[i] = int(o.length.Load())
	}
	jobs := p.jobBuf[:0]
	for _, t := range batch {
		comp := tuple.NewComposite(p.n, t)
		if next := p.routeTick(comp.Done, p.srcRng, &p.srcDec, &p.srcExp); next >= 0 {
			jobs = append(jobs, probeJob{o: p.ops[next], comp: comp})
		}
	}
	p.jobBuf = jobs
	if len(jobs) == 0 {
		return
	}
	p.wg.Add(len(jobs))
	nw := len(p.dsp.deques)
	w := 0
	for off := 0; off < len(jobs); off += p.batch {
		end := off + p.batch
		if end > len(jobs) {
			end = len(jobs)
		}
		p.dsp.push(w, jobs[off:end])
		w = (w + 1) % nw
	}
	for i := range jobs {
		jobs[i] = probeJob{}
	}
}

// flushWorkers merges the workers' tick-local statistics at the probe
// barrier, in a fixed order so the run's adaptive state evolves identically
// at any worker count, batch size or steal schedule: result counts first,
// then router observations (sorted into a canonical order — the multiset
// is deterministic, the per-worker arrival order is not), then assessor
// observations op-major and pattern-ascending through ObserveSearches, and
// finally the tuning passes those observations claimed, in operator order —
// which also fixes the injector's migration-abort decision sequence.
func (p *run) flushWorkers() {
	var due []int
	ndec, nexp := p.srcDec, p.srcExp
	p.srcDec, p.srcExp = 0, 0
	for _, sc := range p.scratches {
		ndec += sc.ndec
		nexp += sc.nexp
		sc.ndec, sc.nexp = 0, 0
		p.results.Add(sc.nres)
		sc.nres = 0
		for opID, np := range sc.nprobes {
			if np > 0 {
				p.ops[opID].probes.Add(np)
				sc.nprobes[opID] = 0
			}
		}
		p.robsBuf = append(p.robsBuf, sc.robs...)
		sc.robs = sc.robs[:0]
		due = append(due, sc.dueOps...)
		sc.dueOps = sc.dueOps[:0]
	}
	if ndec > 0 {
		p.recordRoute(ndec, nexp)
	}
	sort.Slice(p.robsBuf, func(a, b int) bool {
		x, y := p.robsBuf[a], p.robsBuf[b]
		if x.i != y.i {
			return x.i < y.i
		}
		if x.j != y.j {
			return x.j < y.j
		}
		if x.matches != y.matches {
			return x.matches < y.matches
		}
		return x.stateLen < y.stateLen
	})
	for _, ro := range p.robsBuf {
		p.observe(ro.i, ro.j, ro.matches, ro.stateLen)
	}
	p.robsBuf = p.robsBuf[:0]
	if p.patSpace > 0 {
		for opID, o := range p.ops {
			ix := o.cur.Load()
			base := opID * p.patSpace
			for pat := 0; pat < p.patSpace; pat++ {
				var total uint64
				for _, sc := range p.scratches {
					total += sc.obs[base+pat]
					sc.obs[base+pat] = 0
				}
				if total == 0 {
					continue
				}
				if ix.ObserveSearches(query.Pattern(pat), total) {
					due = append(due, opID)
				}
			}
		}
	}
	sort.Ints(due)
	for _, opID := range due {
		p.ops[opID].cur.Load().TuneClaimed()
	}
}

// execute spawns the supervisors and the probe worker pool, then runs the
// source tick loop from startTick, stopping early at the first scheduled
// crash point past startTick-1. It blocks until every message has drained
// and returns the aggregated Result.
func (p *run) execute(startTick int64) (*Result, error) {
	cfg, n := p.cfg, p.n

	// Supervisors: one per operator, each owning its operator's whole
	// lifecycle (serve, restart, permanent failure).
	var opWG sync.WaitGroup
	for s := 0; s < n; s++ {
		opWG.Add(1)
		go func(o *operator) {
			defer opWG.Done()
			p.supervise(o)
		}(p.ops[s])
	}

	// Probe workers: the pool every operator's probes fan out over. Each
	// worker owns its scratch for the life of the run. The deque dispatch
	// gives each worker its own deque plus work stealing; LegacyDispatch
	// restores the shared channel.
	var workerWG sync.WaitGroup
	for w := 0; w < cfg.ProbeWorkers; w++ {
		workerWG.Add(1)
		if p.dsp != nil {
			go func(sc *probeScratch) {
				defer workerWG.Done()
				p.dequeWorker(sc)
			}(p.scratches[w])
			continue
		}
		go func(w int) {
			defer workerWG.Done()
			p.probeWorker(&probeScratch{w: w, vals: make([]tuple.Value, p.maxAttrs)})
		}(w)
	}

	crashTick, crashArmed := cfg.Fault.NextCrash(startTick - 1)
	crashed := false
	start := time.Now()
	// Source: ticks are delivered in two quiesced phases — all of a tick's
	// arrivals are inserted before any of them starts probing, exactly the
	// arrival-order semantics of the deterministic engine. Together with
	// the arrival-stamp filter this makes the concurrent result set equal
	// to the engine's (routing order cannot change a join's result set).
	// Operators still run fully in parallel within each phase.
	perOp := make([][]*tuple.Tuple, n)
	var lastTick int64 = startTick - 1
	for tick := startTick; tick < cfg.Ticks; tick++ {
		p.curTick.Store(tick)
		batch := p.gen.Tick(tick)
		if len(p.q.Filters) > 0 {
			// Selection push-down, same as the simulation engine.
			kept := batch[:0]
			for _, t := range batch {
				if p.q.Accepts(t) {
					kept = append(kept, t)
				}
			}
			batch = kept
		}
		// Group the tick's arrivals per target operator and deliver each
		// group as one batched push: same fault schedule, one mailbox lock
		// acquisition per operator instead of one per tuple.
		for _, t := range batch {
			perOp[t.Stream] = append(perOp[t.Stream], t)
		}
		for s := 0; s < n; s++ {
			if len(perOp[s]) > 0 {
				p.deliverIngestBatch(s, perOp[s])
				perOp[s] = perOp[s][:0]
			}
		}
		p.wg.Wait()
		if p.dsp != nil {
			p.dispatchProbes(batch)
		} else {
			for _, t := range batch {
				comp := tuple.NewComposite(n, t)
				if next := p.nextHop(comp.Done); next >= 0 {
					p.deliver(next, message{comp: comp}, true)
				}
			}
		}
		p.wg.Wait()
		if p.dsp != nil {
			p.flushWorkers()
		}
		if p.collect != nil {
			p.collect.flush()
		}
		lastTick = tick
		if p.store != nil {
			// Tick record + Sync at the boundary: both barriers have
			// passed, so every ingest record for this tick is already
			// appended and the snapshot below is quiescent.
			p.recordStoreErr(p.store.AppendWAL(p.tickRecordNow(tick).encode()))
			p.recordStoreErr(p.store.Sync())
		}
		if cfg.OnTickEnd != nil {
			cfg.OnTickEnd(tick)
		}
		if crashArmed && tick == crashTick {
			// The scheduled kill: stop mid-run at a durable boundary, as
			// if the process died here. The drain below is orderly only
			// because everything past this tick is abandoned — Recover
			// rebuilds from the store, not from this process's memory.
			crashed = true
			break
		}
	}
	for _, o := range p.ops {
		o.mb.Close()
	}
	opWG.Wait()
	close(p.probeCh)
	if p.dsp != nil {
		p.dsp.close()
	}
	workerWG.Wait()

	res := &Result{
		Results:           p.results.Load(),
		Wall:              time.Since(start),
		TuplesIngested:    p.ingested.Load(),
		ShedsPerOp:        make([]uint64, n),
		IngestShed:        p.ingestShed.Load(),
		ProbeShed:         p.probeShed.Load(),
		IngestLost:        p.ingestLost.Load(),
		ProbeLost:         p.probeLost.Load(),
		Restarts:          int(p.restarts.Load()),
		PermanentFailures: int(p.permFailed.Load()),
		Replayed:          p.replayed.Load(),
		StateLost:         p.stateLost.Load(),
		InjectedDelays:    p.delays.Load(),
		PressureEvents:    p.pressure.Load(),
		Crashed:           crashed,
		ResumedTick:       startTick,
		Recovered:         p.recovered.Load(),
	}
	if crashed {
		res.CrashTick = lastTick
	}
	if p.collect != nil {
		res.ProbeCosts = p.collect.trace()
	}
	for i, o := range p.ops {
		res.ShedsPerOp[i] = p.sheds[i].Load()
		res.Sheds += res.ShedsPerOp[i]
		res.Probes += o.probes.Load()
		res.Retunes += o.retunes()
		res.MigrationAborts += o.migrationAborts()
		res.Tuner.Add(o.tunerSummary())
	}
	if err := p.firstStoreErr(); err != nil {
		return nil, fmt.Errorf("pipeline: durable store failed mid-run: %w", err)
	}
	return res, nil
}
