package pipeline

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amri/internal/bitindex"
	"amri/internal/core"
	"amri/internal/fault"
	"amri/internal/query"
	"amri/internal/router"
	"amri/internal/sim"
	"amri/internal/stream"
	"amri/internal/tuple"
	"amri/internal/window"
)

// Config describes one concurrent run.
type Config struct {
	// Query is the SPJ query; nil means the paper's 4-way join.
	Query *query.Query
	// Profile is the synthetic workload; zero value means DriftProfile.
	Profile stream.Profile
	// Seed fixes the workload and routing randomness.
	Seed uint64
	// Ticks is how many workload ticks to generate and process.
	Ticks int64
	// Method is the assessment method for every state's AdaptiveIndex.
	Method core.Method
	// BitBudget is the IC bits per state (default 12).
	BitBudget int
	// AutoTuneEvery retunes a state after that many probes (default 2000;
	// 0 disables live tuning).
	AutoTuneEvery uint64
	// Explore is the router's suboptimal-route probability.
	Explore float64

	// ProbeWorkers sizes the shared probe worker pool: composite (probe)
	// messages from every operator fan out over this many goroutines,
	// while ingests stay on each operator's own serve goroutine (default
	// runtime.NumCPU()). The result set is identical at any worker count;
	// see the determinism tests.
	ProbeWorkers int
	// Shards, when positive, lock-stripes every operator's bit-index over
	// that many sub-directories (a power of two, at most 256): probes of
	// the same state then proceed concurrently under a read lock, and
	// retune migrations drain incrementally instead of stopping the
	// world. Zero keeps the flat index; probes of a state then serialize
	// on its operator lock even when ProbeWorkers > 1.
	Shards int
	// CollectProbeCosts records every probe's modeled cost units, grouped
	// by tick phase, into Result.ProbeCosts — the raw material for the
	// offline throughput model in internal/bench. Off by default (it
	// allocates per tick).
	CollectProbeCosts bool

	// MailboxCap bounds every operator mailbox to that many queued
	// messages (0 = unbounded, the pre-fault-tolerance behaviour).
	MailboxCap int
	// ShedPolicy is the overload response of a full mailbox (default
	// PolicyBlock: backpressure on the source, spill for operators).
	ShedPolicy OverloadPolicy
	// Fault is the seeded fault-injection plan; fault.None (the zero
	// value) injects nothing.
	Fault fault.Plan
	// CheckpointEvery snapshots an operator's retained tuples after that
	// many inserts, bounding replay loss after a panic (default 256; -1
	// disables checkpointing, so a restart loses the whole state).
	CheckpointEvery int
	// MaxRestarts is how many times the supervisor restarts a panicking
	// operator before declaring it permanently failed (default 3).
	MaxRestarts int
	// RestartBackoff is the supervisor's initial restart delay, doubled
	// per consecutive restart and capped at 8x (default 1ms).
	RestartBackoff time.Duration
	// OnResult, when set, receives every complete join result. It is
	// called concurrently from operator goroutines and must be
	// goroutine-safe.
	OnResult func(*tuple.Composite)
}

// Result summarizes a concurrent run.
type Result struct {
	// Results is the number of complete join results emitted.
	Results uint64
	// Probes is the number of search requests executed.
	Probes uint64
	// Retunes is the number of index migrations across all states.
	Retunes int
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// TuplesIngested counts the arrivals processed.
	TuplesIngested uint64

	// Sheds counts messages dropped before handling, summed over
	// operators: mailbox-overload drops, injected saturation, and the
	// backlog of permanently failed operators.
	Sheds uint64
	// ShedsPerOp is Sheds broken down by operator.
	ShedsPerOp []uint64
	// IngestShed / ProbeShed split Sheds by message kind.
	IngestShed uint64
	ProbeShed  uint64
	// IngestLost / ProbeLost count in-flight messages abandoned by
	// operator panics (the message being handled when the panic hit).
	IngestLost uint64
	ProbeLost  uint64
	// Restarts is how many times supervisors restarted an operator from
	// its checkpoint.
	Restarts int
	// PermanentFailures counts operators that exhausted MaxRestarts.
	PermanentFailures int
	// Replayed is the number of checkpointed tuples re-inserted across
	// all restarts; StateLost the number of tuples inserted after the
	// last checkpoint and therefore unrecoverable.
	Replayed  uint64
	StateLost uint64
	// MigrationAborts counts index migrations rolled back by injected
	// mid-migration faults.
	MigrationAborts int
	// InjectedDelays and PressureEvents count the timing-only fault
	// classes that fired.
	InjectedDelays uint64
	PressureEvents uint64

	// ProbeCosts is the per-tick probe cost trace (one inner slice per
	// tick, one entry per probe executed in that tick's probe phase),
	// populated only when Config.CollectProbeCosts is set. Entries within
	// a tick are in completion order, which varies with scheduling;
	// consumers must treat each tick as an unordered multiset.
	ProbeCosts [][]ProbeCost
}

// ProbeCost is one probe's modeled work in simulation cost units, tagged
// with the operator that executed it. Units follow sim.DefaultCosts: the
// same per-hash / per-bucket / per-candidate weights the deterministic
// engine charges its clock.
type ProbeCost struct {
	Op    int
	Units float64
}

// message is one unit of operator work.
type message struct {
	ingest *tuple.Tuple
	comp   *tuple.Composite
}

// operator is one STeM running as a goroutine: it owns its state's
// AdaptiveIndex, plus the checkpoint its supervisor restarts it from after
// a panic. Ingests, expiry and restores hold mu exclusively; probes hold
// it for reading when the index is sharded (concurrent probes of one state
// are then safe all the way down the lock-striped directory) and
// exclusively when it is flat.
type operator struct {
	id        int
	spec      *query.StateSpec
	mb        *mailbox[message]
	ckptEvery int
	sharded   bool // probes may share the lock (Config.Shards > 0)
	// newIx / newRetained rebuild the operator's state from scratch on a
	// supervisor restart.
	newIx       func() (*core.AdaptiveIndex, error)
	newRetained func() *window.Buckets

	mu       sync.RWMutex
	ix       *core.AdaptiveIndex
	retained *window.Buckets
	// checkpoint is the retained-tuple snapshot a restart replays;
	// sinceCkpt counts inserts not yet covered by it.
	checkpoint  []*tuple.Tuple
	sinceCkpt   int
	retunesBase int // retunes from pre-restart incarnations
	abortsBase  int // migration aborts from pre-restart incarnations

	length atomic.Int64
	probes atomic.Uint64
	failed atomic.Bool

	// Supervisor-goroutine-local state: the message being handled (so a
	// panic's recover can release it) and the restart count.
	inflight message
	restarts int
}

// probeScratch is one probe worker's reusable buffers: probe values and
// match collection live per worker, not per operator, so concurrent
// probes of the same state never share scratch.
type probeScratch struct {
	vals    []tuple.Value
	matches []*tuple.Tuple
}

// insert stores one arrival and reports whether a checkpoint is due.
func (o *operator) insert(t *tuple.Tuple) (ckpt bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ix.Insert(t)
	o.retained.Add(t)
	// Timestamp-bucket expiry with watermark slack: exact under
	// out-of-order arrivals.
	o.retained.Expire(t.TS, func(old *tuple.Tuple) {
		o.ix.Delete(old)
	})
	o.length.Store(int64(o.ix.Len()))
	o.sinceCkpt++
	return o.ckptEvery > 0 && o.sinceCkpt >= o.ckptEvery
}

// snapshot captures the retained tuples as the new checkpoint.
func (o *operator) snapshot() {
	o.mu.Lock()
	defer o.mu.Unlock()
	snap := make([]*tuple.Tuple, 0, o.retained.Len())
	o.retained.Each(func(t *tuple.Tuple) { snap = append(snap, t) })
	o.checkpoint = snap
	o.sinceCkpt = 0
}

// restore rebuilds the operator's state from its last checkpoint after a
// panic, reporting how many tuples were replayed and how many (inserted
// since that checkpoint) are gone for good.
func (o *operator) restore() (replayed, lost uint64, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.retunesBase += o.ix.Retunes()
	o.abortsBase += o.ix.MigrationAborts()
	ix, err := o.newIx()
	if err != nil {
		return 0, 0, err
	}
	o.ix = ix
	o.retained = o.newRetained()
	for _, t := range o.checkpoint {
		o.ix.Insert(t)
		o.retained.Add(t)
	}
	lost = uint64(o.sinceCkpt)
	o.sinceCkpt = 0
	o.length.Store(int64(o.ix.Len()))
	return uint64(len(o.checkpoint)), lost, nil
}

// retunes reads the state's migration count under the operator lock (the
// index may still be mid-probe when a caller aggregates results), summed
// across restart incarnations.
func (o *operator) retunes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.retunesBase + o.ix.Retunes()
}

// migrationAborts sums rolled-back migrations across incarnations.
func (o *operator) migrationAborts() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.abortsBase + o.ix.MigrationAborts()
}

// shedAssessment drops the state's tuning statistics — the memory-pressure
// degradation response (statistics are reconstructible; tuples are not).
func (o *operator) shedAssessment() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ix.ShedAssessment()
}

// probe runs one search request against the state, returning the matches
// and the index work performed. The returned slice aliases the worker's
// scratch and is valid only until that worker's next probe (safe: the
// worker consumes the matches before popping another job). With a sharded
// index the state lock is held for reading, so probes of one state fan out
// across workers; a flat index demands exclusivity.
//
//amrivet:hotpath per-message probe in the worker pool
func (o *operator) probe(c *tuple.Composite, sc *probeScratch) ([]*tuple.Tuple, bitindex.Stats) {
	if o.sharded {
		o.mu.RLock()
		defer o.mu.RUnlock()
	} else {
		o.mu.Lock()
		defer o.mu.Unlock()
	}
	p := o.spec.PatternForDone(c.Done)
	vals := sc.vals[:o.spec.NumAttrs()]
	for i, ja := range o.spec.JAS {
		if p.Has(i) {
			vals[i] = c.Parts[ja.Partner].Attrs[ja.PartnerAttr]
		} else {
			vals[i] = 0
		}
	}
	drv := c.Driver()
	driver := drv.Arrival
	sc.matches = sc.matches[:0]
	st := o.ix.Search(p, vals, func(x *tuple.Tuple) bool {
		if driver != 0 && x.Arrival >= driver {
			return true // exactly-once: only the newest member drives a result
		}
		if driver != 0 && x.TS <= drv.TS-o.retained.Window() {
			return true // outside the driver's event-time window
		}
		ok := true
		for i, ja := range o.spec.JAS {
			if p.Has(i) && x.Attrs[ja.Attr] != vals[i] {
				ok = false
				break
			}
		}
		if ok {
			sc.matches = append(sc.matches, x)
		}
		return true
	})
	o.probes.Add(1)
	o.length.Store(int64(o.ix.Len()))
	return sc.matches, st
}

// run bundles one Run invocation's shared machinery: the operator set, the
// fault injector, the in-flight message WaitGroup, and every counter the
// Result aggregates. It is always handled by pointer.
type run struct {
	cfg Config
	n   int
	ops []*operator
	inj *fault.Injector

	// wg tracks in-flight messages: every delivered message is Added once
	// and Done exactly once — when handled, shed, or lost to a panic.
	wg sync.WaitGroup

	// probeCh feeds the shared probe worker pool: serve goroutines forward
	// composite messages here, workers execute them. A job's wg slot is
	// released by the worker that handles (or sheds) it.
	probeCh chan probeJob
	costs   sim.CostTable
	collect *costCollector // nil unless Config.CollectProbeCosts

	nextHop func(done uint32) int
	observe func(i, j, matches, stateLen int)

	results    atomic.Uint64
	ingested   atomic.Uint64
	sheds      []atomic.Uint64
	ingestShed atomic.Uint64
	probeShed  atomic.Uint64
	ingestLost atomic.Uint64
	probeLost  atomic.Uint64
	restarts   atomic.Uint64
	permFailed atomic.Uint64
	replayed   atomic.Uint64
	stateLost  atomic.Uint64
	delays     atomic.Uint64
	pressure   atomic.Uint64
}

// probeJob is one composite dispatched to the probe worker pool.
type probeJob struct {
	o    *operator
	comp *tuple.Composite
}

// costCollector accumulates the per-tick probe cost trace under its own
// lock (workers append concurrently; the tick loop flushes between
// phases).
type costCollector struct {
	mu    sync.Mutex
	tick  []ProbeCost
	ticks [][]ProbeCost
}

func (c *costCollector) add(pc ProbeCost) {
	c.mu.Lock()
	c.tick = append(c.tick, pc)
	c.mu.Unlock()
}

func (c *costCollector) flush() {
	c.mu.Lock()
	c.ticks = append(c.ticks, c.tick)
	c.tick = nil
	c.mu.Unlock()
}

func (c *costCollector) trace() [][]ProbeCost {
	c.mu.Lock()
	t := c.ticks
	c.mu.Unlock()
	return t
}

// accountShed records one dropped message against its target operator.
func (p *run) accountShed(target int, m message) {
	p.sheds[target].Add(1)
	if m.ingest != nil {
		p.ingestShed.Add(1)
	} else {
		p.probeShed.Add(1)
	}
}

// deliver routes one message to an operator mailbox with full fault and
// overload accounting. fromSource selects blocking semantics (backpressure
// may stall the workload source but never an operator). Every path either
// enqueues the message with wg held, or sheds it with wg released.
func (p *run) deliver(target int, m message, fromSource bool) {
	o := p.ops[target]
	if o.failed.Load() {
		p.accountShed(target, m)
		return
	}
	// Injected saturation: the delivery behaves as if the mailbox were
	// full under a drop policy. Keyed to ingest deliveries only, so the
	// schedule is independent of probe interleaving.
	if m.ingest != nil && p.inj.Decide(fault.MailboxSaturate, target) {
		p.accountShed(target, m)
		return
	}
	if p.inj.Decide(fault.MailboxDelay, target) {
		p.delays.Add(1)
		time.Sleep(p.inj.Delay())
	}
	p.wg.Add(1)
	var r PushResult
	if fromSource {
		r = o.mb.PushWait(m)
	} else {
		r = o.mb.Push(m)
	}
	// Shed results are accounted by the mailbox's onShed hook (which sees
	// the actual dropped message — the victim head under drop-oldest).
	// A closed mailbox refuses the message outright: account it here.
	if r == PushClosed {
		p.accountShed(target, m)
		p.wg.Done()
	}
}

// handleIngest processes one arrival on the operator's own goroutine.
func (p *run) handleIngest(o *operator, msg message) {
	// The panic fault fires while an arrival is being handled — after the
	// message left the mailbox, before it reached the state — the worst
	// spot for an unassisted crash.
	if p.inj.Decide(fault.OperatorPanic, o.id) {
		panic(fmt.Sprintf("pipeline: injected panic at operator %d", o.id))
	}
	if o.insert(msg.ingest) {
		o.snapshot()
	}
	p.ingested.Add(1)
}

// handleComp processes one probe on a worker goroutine.
func (p *run) handleComp(o *operator, comp *tuple.Composite, sc *probeScratch) {
	if p.inj.Decide(fault.MemoryPressure, o.id) {
		o.shedAssessment()
		p.pressure.Add(1)
	}
	matches, st := o.probe(comp, sc)
	if p.collect != nil {
		p.collect.add(ProbeCost{Op: o.id, Units: float64(
			sim.Units(st.Hashes)*p.costs.Hash +
				sim.Units(st.Buckets)*p.costs.Bucket +
				sim.Units(st.DirScans)*p.costs.DirScan +
				sim.Units(st.Tuples)*p.costs.Compare)})
	}
	if comp.Count() == 1 {
		src := bits.TrailingZeros32(comp.Done)
		p.observe(src, o.id, len(matches), int(o.length.Load()))
	}
	for _, m := range matches {
		nc := comp.Extend(m)
		if nc.Complete(p.n) {
			p.results.Add(1)
			if p.cfg.OnResult != nil {
				p.cfg.OnResult(nc)
			}
			continue
		}
		if next := p.nextHop(nc.Done); next >= 0 {
			p.deliver(next, message{comp: nc}, false)
		}
	}
}

// probeWorker drains the shared probe channel until it closes. Follow-up
// deliveries from a worker use the non-blocking mailbox push, so workers
// always make progress and the pool cannot deadlock against the serve
// goroutines feeding it.
func (p *run) probeWorker(sc *probeScratch) {
	for job := range p.probeCh {
		// The target may have failed permanently after the job was
		// dispatched; shed it exactly as a mailbox drain would.
		if job.o.failed.Load() {
			p.accountShed(job.o.id, message{comp: job.comp})
		} else {
			p.handleComp(job.o, job.comp, sc)
		}
		p.wg.Done()
	}
}

// serve drains the mailbox until closed-and-empty: arrivals are handled
// inline (state mutation stays on the operator's goroutine, so an injected
// panic is attributable to it), probes are forwarded to the worker pool. A
// panic escapes to the recover in superviseOnce.
func (p *run) serve(o *operator) {
	for {
		msg, ok := o.mb.Pop()
		if !ok {
			return
		}
		if msg.comp != nil {
			p.probeCh <- probeJob{o: o, comp: msg.comp}
			continue
		}
		o.inflight = msg
		p.handleIngest(o, msg)
		o.inflight = message{}
		p.wg.Done()
	}
}

// superviseOnce runs one operator incarnation, converting a panic into
// done=false after releasing the abandoned in-flight message.
func (p *run) superviseOnce(o *operator) (done bool) {
	defer func() {
		if r := recover(); r == nil {
			return
		}
		done = false
		m := o.inflight
		o.inflight = message{}
		if m.ingest != nil || m.comp != nil {
			if m.ingest != nil {
				p.ingestLost.Add(1)
			} else {
				p.probeLost.Add(1)
			}
			p.wg.Done()
		}
	}()
	p.serve(o)
	return true
}

// supervise wraps one operator goroutine for its whole life: serve until
// clean exit, restart from checkpoint after each panic with capped
// exponential backoff, and after MaxRestarts declare the operator
// permanently failed and shed its backlog so the run still drains.
func (p *run) supervise(o *operator) {
	backoff := p.cfg.RestartBackoff
	for {
		if p.superviseOnce(o) {
			return
		}
		if o.restarts >= p.cfg.MaxRestarts {
			p.failOperator(o)
			return
		}
		o.restarts++
		p.restarts.Add(1)
		time.Sleep(backoff)
		if backoff < p.cfg.RestartBackoff*8 {
			backoff *= 2
		}
		replayed, lost, err := o.restore()
		if err != nil {
			p.failOperator(o)
			return
		}
		p.replayed.Add(replayed)
		p.stateLost.Add(lost)
	}
}

// failOperator renders the permanent-failure verdict: the operator stops
// processing, its routed length drops to zero, and its backlog (plus
// anything delivered before producers notice the failed flag) is shed
// until the run closes the mailbox.
func (p *run) failOperator(o *operator) {
	o.failed.Store(true)
	o.length.Store(0)
	p.permFailed.Add(1)
	for {
		msg, ok := o.mb.Pop()
		if !ok {
			return
		}
		p.accountShed(o.id, msg)
		p.wg.Done()
	}
}

// Run executes the workload concurrently and blocks until every message has
// drained.
func Run(cfg Config) (*Result, error) {
	q := cfg.Query
	if q == nil {
		q = query.FourWay(60)
	}
	prof := cfg.Profile
	if prof.LambdaD == 0 {
		prof = stream.DriftProfile()
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("pipeline: Ticks must be positive")
	}
	if cfg.MailboxCap < 0 {
		return nil, fmt.Errorf("pipeline: MailboxCap must be >= 0")
	}
	if cfg.ProbeWorkers < 0 {
		return nil, fmt.Errorf("pipeline: ProbeWorkers must be >= 0")
	}
	if cfg.ProbeWorkers == 0 {
		cfg.ProbeWorkers = runtime.NumCPU()
	}
	if cfg.Shards < 0 || cfg.Shards > 256 || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("pipeline: Shards %d must be 0 or a power of two in [1, 256]", cfg.Shards)
	}
	if cfg.BitBudget == 0 {
		cfg.BitBudget = 12
	}
	if cfg.AutoTuneEvery == 0 {
		cfg.AutoTuneEvery = 2000
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 256
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = time.Millisecond
	}
	gen, err := stream.New(q, prof, cfg.Seed)
	if err != nil {
		return nil, err
	}

	n := q.NumStreams()
	p := &run{
		cfg:     cfg,
		n:       n,
		ops:     make([]*operator, n),
		inj:     fault.New(cfg.Fault, n),
		sheds:   make([]atomic.Uint64, n),
		probeCh: make(chan probeJob, cfg.ProbeWorkers),
		costs:   sim.DefaultCosts(),
	}
	if cfg.CollectProbeCosts {
		p.collect = &costCollector{}
	}
	maxAttrs := 0
	for s := 0; s < n; s++ {
		spec := q.States[s]
		if spec.NumAttrs() > maxAttrs {
			maxAttrs = spec.NumAttrs()
		}
		attrMap := make([]int, spec.NumAttrs())
		for i, ja := range spec.JAS {
			attrMap[i] = ja.Attr
		}
		opts := core.Options{
			NumAttrs:      spec.NumAttrs(),
			AttrMap:       attrMap,
			BitBudget:     cfg.BitBudget,
			Method:        cfg.Method,
			AutoTuneEvery: cfg.AutoTuneEvery,
			Seed:          cfg.Seed + uint64(s),
			Shards:        cfg.Shards,
		}
		if p.inj != nil {
			id := s
			opts.MigrateGate = func() bool {
				return !p.inj.Decide(fault.MigrationAbort, id)
			}
		}
		newIx := func() (*core.AdaptiveIndex, error) { return core.New(opts) }
		newRetained := func() *window.Buckets { return window.New(q.WindowTicks, prof.MaxDelay) }
		ix, err := newIx()
		if err != nil {
			return nil, err
		}
		o := &operator{
			id:          s,
			spec:        spec,
			ckptEvery:   cfg.CheckpointEvery,
			sharded:     cfg.Shards > 0,
			newIx:       newIx,
			newRetained: newRetained,
			ix:          ix,
			retained:    newRetained(),
		}
		o.mb = newBoundedMailbox[message](cfg.MailboxCap, cfg.ShedPolicy,
			func(m message, _ PushResult) {
				p.accountShed(o.id, m)
				p.wg.Done()
			})
		p.ops[s] = o
	}

	rt := router.New(n, cfg.Explore, cfg.Seed+99)
	var rtMu sync.Mutex
	p.nextHop = func(done uint32) int {
		lens := make([]int, n)
		for i, o := range p.ops {
			lens[i] = int(o.length.Load())
		}
		rtMu.Lock()
		defer rtMu.Unlock()
		return rt.Next(done, lens)
	}
	p.observe = func(i, j, matches, stateLen int) {
		rtMu.Lock()
		defer rtMu.Unlock()
		rt.ObservePair(i, j, matches, stateLen)
	}

	// Supervisors: one per operator, each owning its operator's whole
	// lifecycle (serve, restart, permanent failure).
	var opWG sync.WaitGroup
	for s := 0; s < n; s++ {
		opWG.Add(1)
		go func(o *operator) {
			defer opWG.Done()
			p.supervise(o)
		}(p.ops[s])
	}

	// Probe workers: the bounded pool every operator's probes fan out
	// over. Each worker owns its scratch for the life of the run.
	var workerWG sync.WaitGroup
	for w := 0; w < cfg.ProbeWorkers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			p.probeWorker(&probeScratch{vals: make([]tuple.Value, maxAttrs)})
		}()
	}

	start := time.Now()
	// Source: ticks are delivered in two quiesced phases — all of a tick's
	// arrivals are inserted before any of them starts probing, exactly the
	// arrival-order semantics of the deterministic engine. Together with
	// the arrival-stamp filter this makes the concurrent result set equal
	// to the engine's (routing order cannot change a join's result set).
	// Operators still run fully in parallel within each phase.
	for tick := int64(0); tick < cfg.Ticks; tick++ {
		batch := gen.Tick(tick)
		if len(q.Filters) > 0 {
			// Selection push-down, same as the simulation engine.
			kept := batch[:0]
			for _, t := range batch {
				if q.Accepts(t) {
					kept = append(kept, t)
				}
			}
			batch = kept
		}
		for _, t := range batch {
			p.deliver(t.Stream, message{ingest: t}, true)
		}
		p.wg.Wait()
		for _, t := range batch {
			comp := tuple.NewComposite(n, t)
			if next := p.nextHop(comp.Done); next >= 0 {
				p.deliver(next, message{comp: comp}, true)
			}
		}
		p.wg.Wait()
		if p.collect != nil {
			p.collect.flush()
		}
	}
	for _, o := range p.ops {
		o.mb.Close()
	}
	opWG.Wait()
	close(p.probeCh)
	workerWG.Wait()

	res := &Result{
		Results:           p.results.Load(),
		Wall:              time.Since(start),
		TuplesIngested:    p.ingested.Load(),
		ShedsPerOp:        make([]uint64, n),
		IngestShed:        p.ingestShed.Load(),
		ProbeShed:         p.probeShed.Load(),
		IngestLost:        p.ingestLost.Load(),
		ProbeLost:         p.probeLost.Load(),
		Restarts:          int(p.restarts.Load()),
		PermanentFailures: int(p.permFailed.Load()),
		Replayed:          p.replayed.Load(),
		StateLost:         p.stateLost.Load(),
		InjectedDelays:    p.delays.Load(),
		PressureEvents:    p.pressure.Load(),
	}
	if p.collect != nil {
		res.ProbeCosts = p.collect.trace()
	}
	for i, o := range p.ops {
		res.ShedsPerOp[i] = p.sheds[i].Load()
		res.Sheds += res.ShedsPerOp[i]
		res.Probes += o.probes.Load()
		res.Retunes += o.retunes()
		res.MigrationAborts += o.migrationAborts()
	}
	return res, nil
}
