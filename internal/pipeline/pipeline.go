package pipeline

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"amri/internal/core"
	"amri/internal/query"
	"amri/internal/router"
	"amri/internal/stream"
	"amri/internal/tuple"
	"amri/internal/window"
)

// Config describes one concurrent run.
type Config struct {
	// Query is the SPJ query; nil means the paper's 4-way join.
	Query *query.Query
	// Profile is the synthetic workload; zero value means DriftProfile.
	Profile stream.Profile
	// Seed fixes the workload and routing randomness.
	Seed uint64
	// Ticks is how many workload ticks to generate and process.
	Ticks int64
	// Method is the assessment method for every state's AdaptiveIndex.
	Method core.Method
	// BitBudget is the IC bits per state (default 12).
	BitBudget int
	// AutoTuneEvery retunes a state after that many probes (default 2000;
	// 0 disables live tuning).
	AutoTuneEvery uint64
	// Explore is the router's suboptimal-route probability.
	Explore float64
}

// Result summarizes a concurrent run.
type Result struct {
	// Results is the number of complete join results emitted.
	Results uint64
	// Probes is the number of search requests executed.
	Probes uint64
	// Retunes is the number of index migrations across all states.
	Retunes int
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// TuplesIngested counts the arrivals processed.
	TuplesIngested uint64
}

// message is one unit of operator work.
type message struct {
	ingest *tuple.Tuple
	comp   *tuple.Composite
}

// operator is one STeM running as a goroutine: it owns its state's
// AdaptiveIndex (lock-guarded — live tuning migrates it concurrently with
// probes from its own loop only, but Len is read cross-operator).
type operator struct {
	spec *query.StateSpec
	mb   *mailbox[message]

	mu sync.Mutex
	ix *core.AdaptiveIndex

	retained *window.Buckets

	length atomic.Int64
	probes atomic.Uint64

	valsBuf []tuple.Value
}

func (o *operator) insert(t *tuple.Tuple) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ix.Insert(t)
	o.retained.Add(t)
	// Timestamp-bucket expiry with watermark slack: exact under
	// out-of-order arrivals.
	o.retained.Expire(t.TS, func(old *tuple.Tuple) {
		o.ix.Delete(old)
	})
	o.length.Store(int64(o.ix.Len()))
}

// retunes reads the state's migration count under the operator lock (the
// index may still be mid-probe when a caller aggregates results).
func (o *operator) retunes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ix.Retunes()
}

// probe runs one search request against the state, returning the matches.
func (o *operator) probe(c *tuple.Composite) []*tuple.Tuple {
	o.mu.Lock()
	defer o.mu.Unlock()
	p := o.spec.PatternForDone(c.Done)
	for i, ja := range o.spec.JAS {
		if p.Has(i) {
			o.valsBuf[i] = c.Parts[ja.Partner].Attrs[ja.PartnerAttr]
		} else {
			o.valsBuf[i] = 0
		}
	}
	drv := c.Driver()
	driver := drv.Arrival
	var matches []*tuple.Tuple
	o.ix.Search(p, o.valsBuf, func(x *tuple.Tuple) bool {
		if driver != 0 && x.Arrival >= driver {
			return true // exactly-once: only the newest member drives a result
		}
		if driver != 0 && x.TS <= drv.TS-o.retained.Window() {
			return true // outside the driver's event-time window
		}
		ok := true
		for i, ja := range o.spec.JAS {
			if p.Has(i) && x.Attrs[ja.Attr] != o.valsBuf[i] {
				ok = false
				break
			}
		}
		if ok {
			matches = append(matches, x)
		}
		return true
	})
	o.probes.Add(1)
	o.length.Store(int64(o.ix.Len()))
	return matches
}

// Run executes the workload concurrently and blocks until every message has
// drained.
func Run(cfg Config) (*Result, error) {
	q := cfg.Query
	if q == nil {
		q = query.FourWay(60)
	}
	prof := cfg.Profile
	if prof.LambdaD == 0 {
		prof = stream.DriftProfile()
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("pipeline: Ticks must be positive")
	}
	if cfg.BitBudget == 0 {
		cfg.BitBudget = 12
	}
	if cfg.AutoTuneEvery == 0 {
		cfg.AutoTuneEvery = 2000
	}
	gen, err := stream.New(q, prof, cfg.Seed)
	if err != nil {
		return nil, err
	}

	n := q.NumStreams()
	ops := make([]*operator, n)
	for s := 0; s < n; s++ {
		spec := q.States[s]
		attrMap := make([]int, spec.NumAttrs())
		for i, ja := range spec.JAS {
			attrMap[i] = ja.Attr
		}
		ix, err := core.New(core.Options{
			NumAttrs:      spec.NumAttrs(),
			AttrMap:       attrMap,
			BitBudget:     cfg.BitBudget,
			Method:        cfg.Method,
			AutoTuneEvery: cfg.AutoTuneEvery,
			Seed:          cfg.Seed + uint64(s),
		})
		if err != nil {
			return nil, err
		}
		ops[s] = &operator{
			spec:     spec,
			mb:       newMailbox[message](),
			ix:       ix,
			retained: window.New(q.WindowTicks, prof.MaxDelay),
			valsBuf:  make([]tuple.Value, spec.NumAttrs()),
		}
	}

	rt := router.New(n, cfg.Explore, cfg.Seed+99)
	var rtMu sync.Mutex
	nextHop := func(done uint32) int {
		lens := make([]int, n)
		for i, o := range ops {
			lens[i] = int(o.length.Load())
		}
		rtMu.Lock()
		defer rtMu.Unlock()
		return rt.Next(done, lens)
	}
	observe := func(i, j, matches, stateLen int) {
		rtMu.Lock()
		defer rtMu.Unlock()
		rt.ObservePair(i, j, matches, stateLen)
	}

	var (
		wg       sync.WaitGroup
		results  atomic.Uint64
		ingested atomic.Uint64
	)

	// Operators: drain the mailbox; each handled message may fan out more
	// messages (wg accounting keeps the drain exact).
	var opWG sync.WaitGroup
	for s := 0; s < n; s++ {
		opWG.Add(1)
		go func(self int) {
			defer opWG.Done()
			o := ops[self]
			for {
				msg, ok := o.mb.Pop()
				if !ok {
					return
				}
				if msg.ingest != nil {
					o.insert(msg.ingest)
					ingested.Add(1)
					wg.Done()
					continue
				}
				comp := msg.comp
				matches := o.probe(comp)
				if comp.Count() == 1 {
					src := bits.TrailingZeros32(comp.Done)
					observe(src, self, len(matches), int(o.length.Load()))
				}
				for _, m := range matches {
					nc := comp.Extend(m)
					if nc.Complete(n) {
						results.Add(1)
						continue
					}
					if next := nextHop(nc.Done); next >= 0 {
						wg.Add(1)
						ops[next].mb.Push(message{comp: nc})
					}
				}
				wg.Done()
			}
		}(s)
	}

	start := time.Now()
	// Source: ticks are delivered in two quiesced phases — all of a tick's
	// arrivals are inserted before any of them starts probing, exactly the
	// arrival-order semantics of the deterministic engine. Together with
	// the arrival-stamp filter this makes the concurrent result set equal
	// to the engine's (routing order cannot change a join's result set).
	// Operators still run fully in parallel within each phase.
	for tick := int64(0); tick < cfg.Ticks; tick++ {
		batch := gen.Tick(tick)
		if len(q.Filters) > 0 {
			// Selection push-down, same as the simulation engine.
			kept := batch[:0]
			for _, t := range batch {
				if q.Accepts(t) {
					kept = append(kept, t)
				}
			}
			batch = kept
		}
		for _, t := range batch {
			wg.Add(1)
			ops[t.Stream].mb.Push(message{ingest: t})
		}
		wg.Wait()
		for _, t := range batch {
			comp := tuple.NewComposite(n, t)
			if next := nextHop(comp.Done); next >= 0 {
				wg.Add(1)
				ops[next].mb.Push(message{comp: comp})
			}
		}
		wg.Wait()
	}
	for _, o := range ops {
		o.mb.Close()
	}
	opWG.Wait()

	res := &Result{
		Results:        results.Load(),
		Wall:           time.Since(start),
		TuplesIngested: ingested.Load(),
	}
	for _, o := range ops {
		res.Probes += o.probes.Load()
		res.Retunes += o.retunes()
	}
	return res, nil
}
