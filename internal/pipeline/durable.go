package pipeline

import (
	"bytes"
	"fmt"

	"amri/internal/storage"
	"amri/internal/tuple"
)

// tickRecordNow snapshots the run's accounting at a tick boundary. Both
// phase barriers have passed, so no message is in flight; supervisors may
// still be mid-backoff after a late panic, but every counter read here is
// atomic (or lock-guarded, for the per-op retune reads) and the state the
// record describes is exactly what the WAL's ingest records up to this
// point rebuild.
func (p *run) tickRecordNow(tick int64) *tickRecord {
	r := &tickRecord{Tick: tick}
	r.Counters[tcResults] = p.results.Load()
	r.Counters[tcIngested] = p.ingested.Load()
	r.Counters[tcIngestShed] = p.ingestShed.Load()
	r.Counters[tcProbeShed] = p.probeShed.Load()
	r.Counters[tcIngestLost] = p.ingestLost.Load()
	r.Counters[tcProbeLost] = p.probeLost.Load()
	r.Counters[tcRestarts] = p.restarts.Load()
	r.Counters[tcPermFailed] = p.permFailed.Load()
	r.Counters[tcReplayed] = p.replayed.Load()
	r.Counters[tcStateLost] = p.stateLost.Load()
	r.Counters[tcDelays] = p.delays.Load()
	r.Counters[tcPressure] = p.pressure.Load()
	r.PerOp = make([]opTickState, p.n)
	for i, o := range p.ops {
		r.PerOp[i] = opTickState{
			Sheds:    p.sheds[i].Load(),
			Probes:   o.probes.Load(),
			Retunes:  int64(o.retunes()),
			Aborts:   int64(o.migrationAborts()),
			Restarts: o.restarts.Load(),
			Failed:   o.failed.Load(),
		}
	}
	r.Inj = p.inj.Snapshot()
	return r
}

// Recover resumes a crashed durable run: it rebuilds every operator from
// the store (checkpoint + WAL suffix), republishes the epoch pointers,
// restores the run counters and the fault injector's schedule from the
// last tick record, fast-forwards the workload generator, and executes the
// remaining ticks. cfg must be the same Config the crashed Run was given
// (same store included). The returned Result continues the crashed run's
// cumulative accounting — and may itself have Crashed set if the plan
// schedules another crash later; call Recover again until it does not.
func Recover(cfg Config) (*Result, error) {
	if cfg.Durable == nil {
		return nil, fmt.Errorf("pipeline: Recover requires Config.Durable")
	}
	p, err := newRun(cfg)
	if err != nil {
		return nil, err
	}
	resume, err := p.restoreFromStore()
	if err != nil {
		return nil, err
	}
	if resume > cfg.Ticks {
		return nil, fmt.Errorf("pipeline: durable state runs through tick %d but the config stops at %d; wrong store for this config", resume-1, cfg.Ticks)
	}
	// resume == cfg.Ticks is legal: the process died at the final boundary
	// with every tick already durable. execute's loop body never runs; the
	// spawned operators just drain and the restored accounting is returned.
	return p.execute(resume)
}

// restoreFromStore rebuilds the run from the durable store and returns the
// tick to resume at (last durable tick + 1).
func (p *run) restoreFromStore() (int64, error) {
	// One pass over the WAL: per-op ingest tuple lists in append order,
	// plus the newest tick record (the resume point).
	perOp := make([][]*tuple.Tuple, p.n)
	var last *tickRecord
	err := p.store.ReplayWAL(func(rec []byte) error {
		ing, tick, err := decodeWALRecord(rec)
		if err != nil {
			return err
		}
		if tick != nil {
			last = tick
			return nil
		}
		if ing.Op < 0 || ing.Op >= p.n {
			return fmt.Errorf("pipeline: wal ingest record for unknown operator %d", ing.Op)
		}
		perOp[ing.Op] = append(perOp[ing.Op], ing.Tuple)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if last == nil {
		return 0, fmt.Errorf("pipeline: no durable tick record to resume from")
	}
	if len(last.PerOp) != p.n {
		return 0, fmt.Errorf("pipeline: tick record covers %d operators, run has %d", len(last.PerOp), p.n)
	}

	// Run-level counters continue where the crashed run stopped.
	p.results.Store(last.Counters[tcResults])
	p.ingested.Store(last.Counters[tcIngested])
	p.ingestShed.Store(last.Counters[tcIngestShed])
	p.probeShed.Store(last.Counters[tcProbeShed])
	p.ingestLost.Store(last.Counters[tcIngestLost])
	p.probeLost.Store(last.Counters[tcProbeLost])
	p.restarts.Store(last.Counters[tcRestarts])
	p.permFailed.Store(last.Counters[tcPermFailed])
	p.replayed.Store(last.Counters[tcReplayed])
	p.stateLost.Store(last.Counters[tcStateLost])
	p.delays.Store(last.Counters[tcDelays])
	p.pressure.Store(last.Counters[tcPressure])
	if err := p.inj.Restore(last.Inj); err != nil {
		return 0, err
	}

	for i, o := range p.ops {
		st := last.PerOp[i]
		p.sheds[i].Store(st.Sheds)
		o.probes.Store(st.Probes)
		o.restarts.Store(st.Restarts)
		o.mu.Lock()
		o.retunesBase = int(st.Retunes)
		o.abortsBase = int(st.Aborts)
		o.mu.Unlock()
		if st.Failed {
			// A pre-crash permanent failure survives recovery: the verdict
			// was rendered and counted; the operator comes back empty and
			// its supervisor goes straight to the backlog drain.
			o.failed.Store(true)
			o.length.Store(0)
			continue
		}
		if err := p.rebuildOperator(o, perOp[i]); err != nil {
			return 0, err
		}
	}

	// Fast-forward the workload source: the generator is stateful (per
	// stream rngs, sequence numbers, global arrival stamps), so replaying
	// the consumed ticks and discarding them puts it exactly where the
	// crashed run's source stood.
	resume := last.Tick + 1
	for t := int64(0); t < resume; t++ {
		p.gen.Tick(t)
	}
	p.curTick.Store(resume)
	return resume, nil
}

// rebuildOperator reloads one operator's state: force the checkpoint's
// tuned config, re-insert the checkpointed tuples, then replay the WAL
// suffix past the checkpoint's Applied cursor through the full insert path
// (expiry included). The epoch pointer is republished last, so a probe can
// never observe a half-rebuilt incarnation once the run resumes.
func (p *run) rebuildOperator(o *operator, walTuples []*tuple.Tuple) error {
	var ck *opCheckpoint
	if blob, ok, err := p.store.LoadCheckpoint(o.id); err != nil {
		return err
	} else if ok {
		ck, err = decodeOpCheckpoint(blob)
		if err != nil {
			return err
		}
		if ck.Op != o.id {
			return fmt.Errorf("pipeline: checkpoint slot %d holds operator %d's state", o.id, ck.Op)
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	applied := uint64(0)
	if ck != nil {
		applied = ck.Applied
		if err := o.ix.ForceConfig(ck.Cfg); err != nil {
			return err
		}
		for _, t := range ck.Tuples {
			o.ix.Insert(t)
			o.retained.Add(t)
		}
		o.checkpoint = ck.Tuples
	}
	// The suffix: ingest records past the checkpoint cursor. A suffix
	// shorter than the cursor means the store lost acknowledged appends
	// (e.g. the chaos harness's flaky store); recovery proceeds with what
	// is there so the invariant checks can convict the store — the loss
	// shows up as a digest/conservation violation, not a crash here.
	suffix := walTuples[min(int(applied), len(walTuples)):]
	for _, t := range suffix {
		o.ix.Insert(t)
		o.retained.Add(t)
		o.retained.Expire(t.TS, func(old *tuple.Tuple) {
			o.ix.Delete(old)
		})
	}
	o.applied = applied + uint64(len(suffix))
	o.sinceCkpt = len(suffix)
	o.tail = append([]*tuple.Tuple(nil), suffix...)
	o.length.Store(int64(o.ix.Len()))
	// Republish the epoch pointer: the lock-free probe path must see the
	// rebuilt incarnation.
	o.cur.Store(o.ix)
	p.recovered.Add(uint64(len(suffix)) + applied)
	return nil
}

// StoreAudit is AuditStore's accounting of a durable store's contents,
// cross-checked by the chaos harness against the live run's counters.
type StoreAudit struct {
	// IngestRecords is the WAL's total applied-arrival records; PerOp
	// splits it by operator. A healthy store's total equals the run's
	// TuplesIngested exactly (one record per applied arrival).
	IngestRecords uint64
	PerOp         []uint64
	// TickRecords counts boundary records; LastTick is the newest one's
	// tick (-1 when none exists).
	TickRecords int
	LastTick    int64
	// Checkpoints lists the operators with a decodable checkpoint.
	Checkpoints []int
}

// AuditStore re-reads a durable store and verifies round-trip fidelity:
// every WAL record must decode, every checkpoint must decode and re-encode
// byte-identically, and every checkpoint cursor must be covered by the WAL
// (Applied never exceeds that op's ingest records — a violation means the
// store acknowledged appends it lost). It returns the store's accounting
// for the caller to cross-check against the run's.
func AuditStore(store storage.CheckpointStore, numOps int) (*StoreAudit, error) {
	a := &StoreAudit{PerOp: make([]uint64, numOps), LastTick: -1}
	err := store.ReplayWAL(func(rec []byte) error {
		ing, tick, err := decodeWALRecord(rec)
		if err != nil {
			return err
		}
		if tick != nil {
			a.TickRecords++
			if tick.Tick < a.LastTick {
				return fmt.Errorf("pipeline: tick records out of order: %d after %d", tick.Tick, a.LastTick)
			}
			a.LastTick = tick.Tick
			return nil
		}
		if ing.Op < 0 || ing.Op >= numOps {
			return fmt.Errorf("pipeline: wal ingest record for unknown operator %d", ing.Op)
		}
		a.IngestRecords++
		a.PerOp[ing.Op]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for op := 0; op < numOps; op++ {
		blob, ok, err := store.LoadCheckpoint(op)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		ck, err := decodeOpCheckpoint(blob)
		if err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint %d: %w", op, err)
		}
		if again := ck.encode(); !bytes.Equal(again, blob) {
			return nil, fmt.Errorf("pipeline: checkpoint %d does not round-trip: %d bytes re-encode to %d", op, len(blob), len(again))
		}
		if ck.Applied > a.PerOp[op] {
			return nil, fmt.Errorf("pipeline: checkpoint %d covers %d applied arrivals but the WAL holds only %d", op, ck.Applied, a.PerOp[op])
		}
		a.Checkpoints = append(a.Checkpoints, op)
	}
	return a, nil
}
