package pipeline

import (
	"sync"
	"sync/atomic"
)

// This file is the deque dispatch layer: per-worker bounded-batch deques
// with work stealing, replacing the single shared probe channel. The old
// channel serialized every probe hand-off through one runtime queue — one
// channel operation per composite — which the mutex profile showed eating
// the epoch probe path's wins at high worker counts. Here a producer moves
// a whole batch under one deque lock (the PushWaitBatch idiom extended to
// dispatch), workers pop batches off their own deque's tail and steal half
// a victim's queue off the head when dry, and parking goes through one
// condition variable armed by a global pending count.
//
// Determinism is unaffected by stealing: the result set is routing- and
// scheduling-independent (the arrival-stamp exactly-once filter makes any
// execution order of one tick's probes produce the same verified matches),
// and every statistic that feeds tuning or routing is flushed at the tick
// barrier in a fixed order, not at probe completion. See DESIGN.md §10.

// wsDeque is one worker's job queue: the owner pushes follow-up batches and
// pops from the tail; thieves take half the queue from the head. A plain
// mutex-and-slice deque is deliberate — batching makes the lock traffic one
// acquisition per ~DispatchBatch jobs, so a lock-free ring would buy
// nothing measurable while costing the invariant audit.
type wsDeque struct {
	mu   sync.Mutex
	jobs []probeJob
	head int
	_    [24]byte // line-pad: deques sit in one slice, owners are distinct goroutines
}

// push appends a batch at the tail.
func (q *wsDeque) push(jobs []probeJob) {
	q.mu.Lock()
	if q.head > 1024 && q.head*2 > len(q.jobs) {
		q.jobs = append(q.jobs[:0], q.jobs[q.head:]...)
		q.head = 0
	}
	//amrivet:lockhold batched hand-off: one append per ~DispatchBatch jobs is the design (the shared channel this replaces took one lock per job)
	q.jobs = append(q.jobs, jobs...)
	q.mu.Unlock()
}

// pop moves up to max jobs from the tail into buf (newest first batch-wise;
// order within the batch is preserved) and reports how many.
func (q *wsDeque) pop(max int, buf *[]probeJob) int {
	q.mu.Lock()
	n := len(q.jobs) - q.head
	if n == 0 {
		q.jobs = q.jobs[:0]
		q.head = 0
		q.mu.Unlock()
		return 0
	}
	if n > max {
		n = max
	}
	cut := len(q.jobs) - n
	//amrivet:lockhold batched hand-off: one copy per batch replaces n channel operations
	*buf = append((*buf)[:0], q.jobs[cut:]...)
	for i := cut; i < len(q.jobs); i++ {
		q.jobs[i] = probeJob{}
	}
	q.jobs = q.jobs[:cut]
	q.mu.Unlock()
	return n
}

// steal moves half the victim's queue (rounded up) from the HEAD into buf —
// the opposite end from the owner's pop, so a thief and the owner contend
// only on the lock, never on the same jobs.
func (q *wsDeque) steal(buf *[]probeJob) int {
	q.mu.Lock()
	avail := len(q.jobs) - q.head
	if avail == 0 {
		q.mu.Unlock()
		return 0
	}
	n := (avail + 1) / 2
	//amrivet:lockhold batched hand-off: stealing half the queue in one copy is what bounds steal frequency
	*buf = append((*buf)[:0], q.jobs[q.head:q.head+n]...)
	for i := q.head; i < q.head+n; i++ {
		q.jobs[i] = probeJob{}
	}
	q.head += n
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	q.mu.Unlock()
	return n
}

// dispatcher owns the worker deques and the parking protocol. pending
// counts queued jobs across all deques; it is maintained by the push/pop
// wrappers below and lets an idle worker decide to park with one atomic
// load instead of sweeping every deque's lock. waiting counts parked
// workers, atomically, so the push fast path skips the mutex entirely
// when nobody is parked (the common case mid-tick).
type dispatcher struct {
	deques  []wsDeque
	pending atomic.Int64
	// pending is hammered by every push/pop; waiting only flips around
	// park/unpark. Separate cache lines so the per-job pending traffic
	// does not invalidate the line the push fast path reads waiting from.
	_       [64]byte
	waiting atomic.Int32
	_       [64]byte

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
}

func newDispatcher(workers int) *dispatcher {
	d := &dispatcher{deques: make([]wsDeque, workers)}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// push hands a batch to worker w's deque and wakes one parked worker. The
// wake can never be missed: push publishes pending BEFORE loading waiting,
// and park publishes waiting BEFORE re-loading pending (both sequentially
// consistent), so either the pusher sees the parker and signals, or the
// parker sees the new jobs and never sleeps. Waking ONE worker (not all)
// avoids the thundering herd on every push; wakeSibling propagates wakes
// while backlog remains, so a fleet still ramps up to a large batch.
func (d *dispatcher) push(w int, jobs []probeJob) {
	if len(jobs) == 0 {
		return
	}
	d.deques[w].push(jobs)
	d.pending.Add(int64(len(jobs)))
	if d.waiting.Load() > 0 {
		d.mu.Lock()
		d.cond.Signal()
		d.mu.Unlock()
	}
}

// wakeSibling wakes one more parked worker if there is still backlog —
// called by a worker right after it took a batch, chaining wake-ups at the
// rate work is actually being consumed.
func (d *dispatcher) wakeSibling() {
	if d.pending.Load() > 0 && d.waiting.Load() > 0 {
		d.mu.Lock()
		d.cond.Signal()
		d.mu.Unlock()
	}
}

// popOwn takes a batch off worker w's own deque.
func (d *dispatcher) popOwn(w, max int, buf *[]probeJob) int {
	n := d.deques[w].pop(max, buf)
	if n > 0 {
		d.pending.Add(-int64(n))
	}
	return n
}

// stealAny sweeps the other deques from w+1 round-robin and steals from the
// first non-empty victim.
func (d *dispatcher) stealAny(w int, buf *[]probeJob) int {
	nd := len(d.deques)
	for off := 1; off < nd; off++ {
		if n := d.deques[(w+off)%nd].steal(buf); n > 0 {
			d.pending.Add(-int64(n))
			return n
		}
	}
	return 0
}

// park blocks the calling worker until jobs appear or the dispatcher
// closes; it returns false when the worker should exit (closed and
// nothing pending anywhere). waiting is published BEFORE the final
// pending re-check — the other half of push's lock-free wake handshake.
func (d *dispatcher) park() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.pending.Load() > 0 {
			return true
		}
		if d.closed {
			return false
		}
		d.waiting.Add(1)
		if d.pending.Load() > 0 {
			d.waiting.Add(-1)
			return true
		}
		d.cond.Wait()
		d.waiting.Add(-1)
	}
}

// close wakes every parked worker for exit. Callers close only after the
// final tick barrier, so pending is already zero and workers fall straight
// through park.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}
