package pipeline

// Goroutine-leak regression: pipeline.Run must leave zero operator or
// supervisor goroutines behind — on clean runs and on chaos runs with
// restarts and permanent failures alike. A stuck supervisor (e.g. a
// failOperator drain that never sees Close, or a PushWait parked forever)
// shows up here as a count that never returns to baseline.

import (
	"runtime"
	"testing"
	"time"

	"amri/internal/core"
	"amri/internal/storage"
)

// settleGoroutines polls until the goroutine count drops to at most want,
// returning the final count (goroutine teardown is asynchronous after
// WaitGroup release, so one-shot sampling flakes).
func settleGoroutines(want int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func assertNoLeak(t *testing.T, before int) {
	t.Helper()
	if after := settleGoroutines(before); after > before {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked: %d before run, %d after\n%s", before, after, buf)
	}
}

func TestRunLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	if _, err := Run(Config{
		Profile:    smallProfile(),
		Seed:       4,
		Ticks:      60,
		Method:     core.MethodCDIAHighest,
		MailboxCap: 32,
		ShedPolicy: PolicyBlock,
	}); err != nil {
		t.Fatal(err)
	}
	assertNoLeak(t, before)
}

func TestChaosRunLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := chaosConfig(13)
	cfg.Ticks = 80
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Permanent failures park a supervisor in the backlog drain until the
	// run closes the mailboxes; cover that exit path too.
	cfg = chaosConfig(17)
	cfg.Ticks = 80
	cfg.Fault.PanicRate = 0.05
	cfg.MaxRestarts = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	assertNoLeak(t, before)
}

// TestCrashRecoverCyclesLeaveNoGoroutines: repeated crash/recover cycles —
// each one spawning a full set of supervisors and probe workers — must tear
// every one of them down, including the extra segments' worker pools.
func TestCrashRecoverCyclesLeaveNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := chaosConfig(19).Fault
	plan.CrashTicks = []int64{5, 6, 20, 39}
	cfg := chaosConfig(19)
	cfg.Fault = plan
	cfg.Ticks = 40
	cfg.Durable = storage.NewMemStore()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycles := 0
	for res.Crashed {
		if res, err = Recover(cfg); err != nil {
			t.Fatal(err)
		}
		cycles++
	}
	if cycles != len(plan.CrashTicks) {
		t.Fatalf("recovered %d times, want %d", cycles, len(plan.CrashTicks))
	}
	assertNoLeak(t, before)
}
