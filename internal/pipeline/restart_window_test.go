package pipeline

// MaxRestartWindow regression: the wall budget declares a flapping operator
// permanently failed even when the MaxRestarts count budget is nowhere near
// exhausted — and a healthy stretch longer than the window re-arms it.

import (
	"testing"

	"amri/internal/fault"
)

// flapPlan panics often enough that every operator restarts on most ticks,
// which is exactly the crash-loop shape the window budget exists to stop.
func flapPlan() fault.Plan {
	return fault.Plan{Seed: 5, PanicRate: 0.08}
}

func TestMaxRestartWindowTripsUnderFlap(t *testing.T) {
	cfg := detConfig(4, 4, flapPlan())
	cfg.Ticks = 60
	cfg.MaxRestarts = 1 << 20 // count budget unreachable; only the window can trip
	cfg.MaxRestartWindow = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PermanentFailures == 0 {
		t.Fatalf("window of 2 ticks under continuous flapping (restarts=%d) tripped no operator", res.Restarts)
	}
	if got := res.TuplesIngested + res.IngestShed + res.IngestLost; got != arrivals(cfg) {
		t.Errorf("conservation broken after window failures: %d of %d arrivals accounted", got, arrivals(cfg))
	}
}

func TestMaxRestartWindowZeroMeansCountOnly(t *testing.T) {
	cfg := detConfig(4, 4, flapPlan())
	cfg.Ticks = 60
	cfg.MaxRestarts = 1 << 20
	cfg.MaxRestartWindow = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PermanentFailures != 0 {
		t.Fatalf("window disabled and count budget unreachable, yet %d operators failed permanently", res.PermanentFailures)
	}
	if res.Restarts == 0 {
		t.Fatal("flap plan produced no restarts; the window test above is vacuous")
	}
}

func TestMaxRestartWindowValidation(t *testing.T) {
	cfg := detConfig(1, 0, fault.None)
	cfg.MaxRestartWindow = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative MaxRestartWindow accepted")
	}
}
