package pipeline

// Chaos regression suite (`make chaos` runs it under -race): the pipeline
// must be bit-identical to the deterministic engine when no faults are
// injected, and must survive — with exact accounting and reproducible
// counters — when a seeded fault plan crashes operators, saturates
// mailboxes and aborts migrations mid-flight.

import (
	"sync"
	"testing"
	"time"

	"amri/internal/core"
	"amri/internal/engine"
	"amri/internal/fault"
	"amri/internal/tuple"
)

// resultDigest folds a result set into an order-independent fingerprint:
// each composite hashes its member tuples' identities, and the per-result
// hashes XOR together so emission order cannot matter.
type resultDigest struct {
	mu  sync.Mutex
	xor uint64
	n   uint64
}

func (d *resultDigest) add(c *tuple.Composite) {
	var h uint64 = 0x9e3779b97f4a7c15
	for i, part := range c.Parts {
		if part == nil {
			continue
		}
		x := uint64(i+1)*0xbf58476d1ce4e5b9 ^ part.Seq ^ uint64(part.TS)<<32 ^ uint64(part.Stream)<<56
		x = (x ^ (x >> 30)) * 0x94d049bb133111eb
		h ^= x + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	d.mu.Lock()
	d.xor ^= h
	d.n++
	d.mu.Unlock()
}

// TestChaosDisabledMatchesEngine: with bounded mailboxes, checkpointing and
// the supervisor all active but fault.None injected, the pipeline's result
// SET (not just its count) is bit-identical to the deterministic engine's.
// The fault-tolerance machinery must be invisible when nothing fails.
func TestChaosDisabledMatchesEngine(t *testing.T) {
	prof := smallProfile()
	const ticks = 100

	run := engine.DefaultRunConfig()
	run.Profile = prof
	run.Seed = 5
	run.MaxTicks = ticks
	run.WarmupTicks = 25
	run.CPUBudget = 1 << 30 // never CPU-bound: the engine finds everything
	run.MemCap = 0
	run.Explore = 0
	run.ExploreBurst = 0
	var want resultDigest
	run.OnResult = func(c *tuple.Composite, _ int64) { want.add(c) }
	eng, err := engine.New(run, engine.AMRI(engine.AssessCDIAHighest))
	if err != nil {
		t.Fatal(err)
	}
	exact := eng.Run().TotalResults

	var got resultDigest
	pr, err := Run(Config{
		Profile:         prof,
		Seed:            5,
		Ticks:           ticks,
		Method:          core.MethodCDIAHighest,
		Explore:         0,
		MailboxCap:      64,
		ShedPolicy:      PolicyBlock,
		Fault:           fault.None,
		CheckpointEvery: 64,
		OnResult:        got.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exact == 0 {
		t.Fatal("engine found nothing; workload broken")
	}
	if pr.Results != exact {
		t.Fatalf("pipeline results %d != engine's %d", pr.Results, exact)
	}
	if got.n != want.n || got.xor != want.xor {
		t.Fatalf("result sets differ: pipeline (n=%d, digest=%#x) vs engine (n=%d, digest=%#x)",
			got.n, got.xor, want.n, want.xor)
	}
	if pr.Sheds != 0 || pr.Restarts != 0 || pr.IngestLost != 0 || pr.ProbeLost != 0 ||
		pr.MigrationAborts != 0 || pr.PermanentFailures != 0 {
		t.Fatalf("fault.None run reported fault activity: %+v", pr)
	}
}

// chaosConfig is the seeded fault plan the reproducibility tests share:
// frequent operator panics, forced mailbox saturation, delivery stalls,
// every proposed migration aborted, occasional memory pressure.
func chaosConfig(seed uint64) Config {
	return Config{
		Profile:       smallProfile(),
		Seed:          11,
		Ticks:         150,
		Method:        core.MethodCDIAHighest,
		AutoTuneEvery: 300, // aggressive live tuning so migrations are proposed
		Explore:       0,
		MailboxCap:    64,
		ShedPolicy:    PolicyBlock,
		Fault: fault.Plan{
			Seed:         seed,
			PanicRate:    0.004,
			SaturateRate: 0.01,
			DelayRate:    0.002,
			Delay:        10 * time.Microsecond,
			AbortRate:    1.0, // every proposed migration dies mid-step
			PressureRate: 0.01,
		},
		CheckpointEvery: 128,
		MaxRestarts:     50, // keep all operators alive through the storm
		RestartBackoff:  50 * time.Microsecond,
	}
}

// TestChaosSeededRunCompletes: under a fault plan that injects operator
// panics, mailbox saturation and migration aborts, the run must complete
// and the Result must account for every arrival: ingested + shed + lost
// covers exactly the generated post-filter workload.
func TestChaosSeededRunCompletes(t *testing.T) {
	cfg := chaosConfig(99)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must actually have exercised each fault class.
	if r.Restarts == 0 {
		t.Fatal("no operator panics fired; the chaos run exercised nothing")
	}
	if r.IngestShed == 0 {
		t.Fatal("no mailbox saturation fired")
	}
	if r.MigrationAborts == 0 {
		t.Fatal("no migration was aborted; raise tuning aggressiveness")
	}
	if r.Replayed == 0 {
		t.Fatal("restarts never replayed a checkpoint")
	}
	// Accounting identity: every generated arrival is ingested, shed
	// before handling, or lost to a panic mid-handling.
	arrivals := uint64(cfg.Ticks) * uint64(cfg.Profile.LambdaD) * 4
	if got := r.TuplesIngested + r.IngestShed + r.IngestLost; got != arrivals {
		t.Fatalf("arrival accounting: ingested %d + shed %d + lost %d = %d, want %d",
			r.TuplesIngested, r.IngestShed, r.IngestLost, got, arrivals)
	}
	if r.Results == 0 {
		t.Fatal("the degraded run produced no results at all")
	}
	if r.PermanentFailures != 0 {
		t.Fatalf("MaxRestarts=%d was exhausted (%d permanent failures)",
			cfg.MaxRestarts, r.PermanentFailures)
	}
}

// TestChaosSameSeedReproduces: two runs with the same fault seed produce
// identical shed/restart accounting. Panic and saturation faults are keyed
// to per-operator ingest event counters, which the two-phase tick delivery
// makes deterministic; probe-side counters (routing-order dependent) are
// deliberately excluded.
func TestChaosSameSeedReproduces(t *testing.T) {
	a, err := Run(chaosConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Restarts != b.Restarts || a.PermanentFailures != b.PermanentFailures {
		t.Fatalf("restart counts differ: %d/%d vs %d/%d",
			a.Restarts, a.PermanentFailures, b.Restarts, b.PermanentFailures)
	}
	if a.IngestShed != b.IngestShed || a.IngestLost != b.IngestLost {
		t.Fatalf("ingest accounting differs: shed %d lost %d vs shed %d lost %d",
			a.IngestShed, a.IngestLost, b.IngestShed, b.IngestLost)
	}
	if a.Replayed != b.Replayed || a.StateLost != b.StateLost {
		t.Fatalf("checkpoint accounting differs: replayed %d lost %d vs replayed %d lost %d",
			a.Replayed, a.StateLost, b.Replayed, b.StateLost)
	}
	if a.TuplesIngested != b.TuplesIngested {
		t.Fatalf("ingested differs: %d vs %d", a.TuplesIngested, b.TuplesIngested)
	}
	// A different seed must produce a different fault schedule.
	c, err := Run(chaosConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if c.Restarts == a.Restarts && c.IngestShed == a.IngestShed && c.IngestLost == a.IngestLost {
		t.Fatal("changing the fault seed changed nothing (suspicious)")
	}
}

// TestChaosPermanentFailure: an operator that exhausts MaxRestarts is
// declared permanently failed, its backlog is shed, and the run still
// drains and reports the verdict.
func TestChaosPermanentFailure(t *testing.T) {
	cfg := chaosConfig(7)
	cfg.Fault.PanicRate = 0.05 // panic storms that outlast the cap
	cfg.MaxRestarts = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.PermanentFailures == 0 {
		t.Fatal("a 5% panic rate with MaxRestarts=2 should kill an operator for good")
	}
	if r.Restarts == 0 {
		t.Fatal("failures should have gone through restarts first")
	}
	arrivals := uint64(cfg.Ticks) * uint64(cfg.Profile.LambdaD) * 4
	if got := r.TuplesIngested + r.IngestShed + r.IngestLost; got != arrivals {
		t.Fatalf("arrival accounting after permanent failure: %d, want %d", got, arrivals)
	}
}

// TestChaosDropPolicies: natural mailbox overflow (tiny capacity, no
// injected saturation) sheds through each drop policy and is accounted.
func TestChaosDropPolicies(t *testing.T) {
	for _, policy := range []OverloadPolicy{PolicyDropNewest, PolicyDropOldest} {
		r, err := Run(Config{
			Profile:    smallProfile(),
			Seed:       3,
			Ticks:      80,
			Method:     core.MethodCDIAHighest,
			MailboxCap: 2,
			ShedPolicy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Sheds == 0 {
			t.Fatalf("policy %v: capacity 2 never overflowed", policy)
		}
		var perOp uint64
		for _, s := range r.ShedsPerOp {
			perOp += s
		}
		if perOp != r.Sheds {
			t.Fatalf("policy %v: per-op sheds %d != total %d", policy, perOp, r.Sheds)
		}
		arrivals := uint64(80 * 10 * 4)
		if got := r.TuplesIngested + r.IngestShed + r.IngestLost; got != arrivals {
			t.Fatalf("policy %v: arrival accounting %d, want %d", policy, got, arrivals)
		}
	}
}
