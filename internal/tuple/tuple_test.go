package tuple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	tp := New(2, 7, 100, []Value{10, 20, 30})
	if tp.Stream != 2 || tp.Seq != 7 || tp.TS != 100 {
		t.Fatalf("identity fields wrong: %+v", tp)
	}
	if tp.Arity() != 3 {
		t.Fatalf("Arity = %d, want 3", tp.Arity())
	}
	for i, want := range []Value{10, 20, 30} {
		if got := tp.Attr(i); got != want {
			t.Errorf("Attr(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestMemBytes(t *testing.T) {
	tp := New(0, 0, 0, []Value{1, 2})
	tp.PayloadBytes = 100
	want := perTupleOverhead + 16 + 100
	if got := tp.MemBytes(); got != want {
		t.Fatalf("MemBytes = %d, want %d", got, want)
	}
}

func TestMemBytesGrowsWithArity(t *testing.T) {
	small := New(0, 0, 0, []Value{1})
	big := New(0, 0, 0, []Value{1, 2, 3, 4})
	if small.MemBytes() >= big.MemBytes() {
		t.Fatalf("memory should grow with arity: %d vs %d", small.MemBytes(), big.MemBytes())
	}
}

func TestTupleString(t *testing.T) {
	tp := New(1, 5, 42, []Value{9, 8})
	s := tp.String()
	for _, frag := range []string{"s1", "#5", "@42", "9,8"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestCompositeLifecycle(t *testing.T) {
	a := New(0, 1, 0, []Value{1})
	b := New(1, 1, 0, []Value{1})
	c := New(2, 1, 0, []Value{1})

	comp := NewComposite(3, a)
	if !comp.Has(0) || comp.Has(1) || comp.Has(2) {
		t.Fatalf("fresh composite coverage wrong: %b", comp.Done)
	}
	if comp.Count() != 1 {
		t.Fatalf("Count = %d, want 1", comp.Count())
	}
	if comp.Complete(3) {
		t.Fatal("one-part composite should not be complete")
	}

	comp2 := comp.Extend(b)
	if comp.Has(1) {
		t.Fatal("Extend must not mutate the original composite")
	}
	if !comp2.Has(0) || !comp2.Has(1) {
		t.Fatalf("extended composite coverage wrong: %b", comp2.Done)
	}

	comp3 := comp2.Extend(c)
	if !comp3.Complete(3) {
		t.Fatal("three-part composite over 3 streams should be complete")
	}
	if comp3.Count() != 3 {
		t.Fatalf("Count = %d, want 3", comp3.Count())
	}
}

func TestCompositeExtendCopies(t *testing.T) {
	a := New(0, 1, 0, []Value{1})
	b1 := New(1, 1, 0, []Value{1})
	b2 := New(1, 2, 0, []Value{2})
	base := NewComposite(2, a)
	x := base.Extend(b1)
	y := base.Extend(b2)
	if x.Parts[1] == y.Parts[1] {
		t.Fatal("sibling branches alias the same part slot")
	}
	if x.Parts[1].Seq != 1 || y.Parts[1].Seq != 2 {
		t.Fatalf("branch contents wrong: %v / %v", x.Parts[1], y.Parts[1])
	}
}

func TestCompositeString(t *testing.T) {
	a := New(0, 1, 0, []Value{1})
	b := New(1, 1, 0, []Value{2})
	comp := NewComposite(2, a).Extend(b)
	s := comp.String()
	if !strings.Contains(s, "⋈") {
		t.Errorf("composite String() = %q should contain join symbol", s)
	}
}

// Property: Count always equals the number of non-nil parts, no matter the
// order streams are joined in.
func TestCompositeCountMatchesParts(t *testing.T) {
	f := func(order []uint8) bool {
		const n = 6
		comp := NewComposite(n, New(0, 0, 0, nil))
		seen := map[int]bool{0: true}
		for _, o := range order {
			s := int(o) % n
			if seen[s] {
				continue
			}
			seen[s] = true
			comp = comp.Extend(New(s, 0, 0, nil))
		}
		nonNil := 0
		for _, p := range comp.Parts {
			if p != nil {
				nonNil++
			}
		}
		return comp.Count() == nonNil && nonNil == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Complete is equivalent to Count == nStreams.
func TestCompositeCompleteIffAllStreams(t *testing.T) {
	f := func(mask uint8) bool {
		const n = 5
		comp := NewComposite(n, New(0, 0, 0, nil))
		for s := 1; s < n; s++ {
			if mask&(1<<uint(s)) != 0 {
				comp = comp.Extend(New(s, 0, 0, nil))
			}
		}
		return comp.Complete(n) == (comp.Count() == n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
