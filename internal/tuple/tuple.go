// Package tuple defines the stream tuple model shared by every other
// subsystem: fixed-arity tuples whose join attributes are uint64 values,
// composite (joined) tuples, and byte-level memory accounting used by the
// simulation's memory meter.
//
// Tuples are deliberately lean. A data stream management system touches
// every tuple many times (insert, expire, probe, route), so the layout keeps
// the join attributes in a small slice and represents the non-join payload
// only by its size in bytes — the experiments never inspect payload content,
// only its memory footprint.
package tuple

import (
	"fmt"
	"strings"
)

// Value is a single join-attribute value. All join attributes are modelled
// as 64-bit unsigned keys; the synthetic generators draw them from bounded
// domains and real encodings (ids, codes, locations) hash into this space.
type Value = uint64

// Tuple is one stream element. The zero value is a tuple of no attributes.
type Tuple struct {
	// Stream identifies the originating stream (index into the query's
	// stream list).
	Stream int
	// Seq is the per-stream sequence number, assigned by the generator.
	Seq uint64
	// TS is the virtual arrival timestamp in simulation ticks. Window
	// expiry compares against it.
	TS int64
	// Arrival is the 1-based global arrival stamp across all streams,
	// assigned by the workload source. Join operators use it to produce
	// each result exactly once: a probe driven by tuple t matches only
	// stored tuples with a smaller Arrival, so every k-way result is
	// discovered solely by its newest member's cascade. Zero means
	// unstamped — operators then skip the dedup filter.
	Arrival uint64
	// Attrs holds the join attribute values in schema order.
	Attrs []Value
	// PayloadBytes is the simulated size of the non-join payload. It is
	// charged to the memory meter but never materialized.
	PayloadBytes int
}

// New returns a tuple with the given identity and attribute values. The
// tuple owns attrs from here on — callers that reuse buffers must copy
// first. Small arities are copied into storage co-allocated with the tuple
// header: bucket scans deref the header and then Attrs back to back, and
// when both live in one allocation the attribute load hits the line right
// after the header (adjacent-line prefetch) instead of a second dependent
// miss — the probe scan loop is memory-latency-bound, so this is where the
// measured probe throughput largely comes from.
func New(stream int, seq uint64, ts int64, attrs []Value) *Tuple {
	if n := len(attrs); n > 0 && n <= inlineAttrs {
		blk := &tupleBlock{t: Tuple{Stream: stream, Seq: seq, TS: ts}}
		copy(blk.vals[:], attrs)
		blk.t.Attrs = blk.vals[:n:n]
		return &blk.t
	}
	return &Tuple{Stream: stream, Seq: seq, TS: ts, Attrs: attrs}
}

// inlineAttrs is the widest arity stored inline with the header; wider
// tuples keep the caller's slice (and its extra indirection).
const inlineAttrs = 8

// tupleBlock is the co-allocated layout New builds for small arities.
type tupleBlock struct {
	t    Tuple
	vals [inlineAttrs]Value
}

// Attr returns the i-th join attribute value.
func (t *Tuple) Attr(i int) Value { return t.Attrs[i] }

// Arity returns the number of join attributes.
func (t *Tuple) Arity() int { return len(t.Attrs) }

// perTupleOverhead approximates the fixed in-memory footprint of a stored
// tuple: struct header, slice header, bookkeeping pointer in the store.
const perTupleOverhead = 64

// MemBytes returns the simulated resident size of the tuple: fixed
// overhead, 8 bytes per join attribute, plus the payload.
func (t *Tuple) MemBytes() int {
	return perTupleOverhead + 8*len(t.Attrs) + t.PayloadBytes
}

// String renders the tuple compactly for logs and test failures.
func (t *Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t[s%d#%d@%d](", t.Stream, t.Seq, t.TS)
	for i, v := range t.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Composite is a partial or complete join result: one tuple per stream that
// has been joined so far. Parts is indexed by stream id; nil entries mark
// streams not yet joined.
type Composite struct {
	// Parts holds the per-stream component tuples, indexed by stream id.
	Parts []*Tuple
	// Done is the set of stream ids present, as a bitmask (bit i set when
	// Parts[i] != nil). Kept alongside Parts so routing can test coverage
	// without scanning.
	Done uint32
	// Origin is the stream id of the tuple that started this cascade: the
	// driver whose Arrival stamp gates which stored tuples probes may
	// match (see Tuple.Arrival).
	Origin int
}

// NewComposite starts a composite holding a single source tuple, sized for
// a query over nStreams streams.
func NewComposite(nStreams int, t *Tuple) *Composite {
	c := &Composite{Parts: make([]*Tuple, nStreams), Origin: t.Stream}
	c.Parts[t.Stream] = t
	c.Done = 1 << uint(t.Stream)
	return c
}

// Driver returns the cascade's originating tuple.
func (c *Composite) Driver() *Tuple { return c.Parts[c.Origin] }

// Extend returns a new composite with t added. It copies the part list so
// sibling join branches never alias each other.
func (c *Composite) Extend(t *Tuple) *Composite {
	parts := make([]*Tuple, len(c.Parts))
	copy(parts, c.Parts)
	parts[t.Stream] = t
	return &Composite{Parts: parts, Done: c.Done | 1<<uint(t.Stream), Origin: c.Origin}
}

// ExtendInto is Extend writing into a recycled composite of the same
// arity instead of allocating: every Parts entry is overwritten, so a
// spare that once held other tuples carries nothing over. It exists for
// the pipeline's per-worker composite freelists — a probe's driving
// composite dies when its probe completes, and the hot dispatch path
// recycles it into the next extension rather than leaving it to the GC.
// A nil spare (or an arity mismatch) falls back to Extend.
func (c *Composite) ExtendInto(spare *Composite, t *Tuple) *Composite {
	if spare == nil || len(spare.Parts) != len(c.Parts) {
		return c.Extend(t)
	}
	copy(spare.Parts, c.Parts)
	spare.Parts[t.Stream] = t
	spare.Done = c.Done | 1<<uint(t.Stream)
	spare.Origin = c.Origin
	return spare
}

// Has reports whether the composite already contains a tuple from stream s.
func (c *Composite) Has(s int) bool { return c.Done&(1<<uint(s)) != 0 }

// Count returns the number of streams joined so far.
func (c *Composite) Count() int {
	n := 0
	for d := c.Done; d != 0; d &= d - 1 {
		n++
	}
	return n
}

// Complete reports whether all nStreams components are present.
func (c *Composite) Complete(nStreams int) bool {
	return c.Done == (1<<uint(nStreams))-1
}

// MemBytes returns the simulated resident size of the composite shell
// (component tuples are shared and accounted where they are stored).
func (c *Composite) MemBytes() int { return 32 + 8*len(c.Parts) }

// String renders the composite for logs and test failures.
func (c *Composite) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	first := true
	for _, p := range c.Parts {
		if p == nil {
			continue
		}
		if !first {
			b.WriteString(" ⋈ ")
		}
		first = false
		b.WriteString(p.String())
	}
	b.WriteString("⟩")
	return b.String()
}
