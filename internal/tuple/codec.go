package tuple

import (
	"encoding/binary"
	"fmt"
)

// AppendTuple appends t's fixed little-endian wire form to buf and returns
// the extended slice. The layout is
//
//	stream u32 | seq u64 | ts i64 | arrival u64 | payload u32 | nattrs u16 | attrs u64...
//
// — everything a checkpoint or WAL record needs to reconstruct the tuple
// identically, including the Arrival stamp the exactly-once probe filter
// keys on. Both the pipeline's and the engine's durability codecs frame
// their records around this one encoding.
func AppendTuple(buf []byte, t *Tuple) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Stream))
	buf = binary.LittleEndian.AppendUint64(buf, t.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.TS))
	buf = binary.LittleEndian.AppendUint64(buf, t.Arrival)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.PayloadBytes))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Attrs)))
	for _, v := range t.Attrs {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

// DecodeTuple reads one AppendTuple encoding from the front of buf,
// returning the tuple and the remaining bytes.
func DecodeTuple(buf []byte) (*Tuple, []byte, error) {
	const head = 4 + 8 + 8 + 8 + 4 + 2
	if len(buf) < head {
		return nil, nil, fmt.Errorf("tuple: truncated encoding: %d bytes", len(buf))
	}
	t := &Tuple{
		Stream:       int(binary.LittleEndian.Uint32(buf[0:4])),
		Seq:          binary.LittleEndian.Uint64(buf[4:12]),
		TS:           int64(binary.LittleEndian.Uint64(buf[12:20])),
		Arrival:      binary.LittleEndian.Uint64(buf[20:28]),
		PayloadBytes: int(binary.LittleEndian.Uint32(buf[28:32])),
	}
	n := int(binary.LittleEndian.Uint16(buf[32:34]))
	buf = buf[head:]
	if len(buf) < 8*n {
		return nil, nil, fmt.Errorf("tuple: truncated attrs: want %d values, have %d bytes", n, len(buf))
	}
	t.Attrs = make([]Value, n)
	for i := 0; i < n; i++ {
		t.Attrs[i] = binary.LittleEndian.Uint64(buf[8*i : 8*i+8])
	}
	return t, buf[8*n:], nil
}
