package bitindex

import "amri/internal/tuple"

// directory is the bucket container behind an Index. Two implementations:
// a dense flat array for narrow bucket-id spaces and a sparse map for wide
// ones (the practical reading of the paper's 64-bit configurations — 2^64
// materialized buckets cannot exist, so wide ICs must hash occupied ids).
type directory interface {
	put(id uint64, t *tuple.Tuple)
	remove(id uint64, t *tuple.Tuple) bool
	bucket(id uint64) []*tuple.Tuple
	forEach(fn func(id uint64, b []*tuple.Tuple) bool)
	occupied() int
	memBytes() int
}

func newDirectory(cfg Config, denseLimit int) directory {
	return newDirectoryBits(cfg.TotalBits(), denseLimit)
}

// newDirectoryBits builds a directory for an id space of the given width.
// Sharded indexes use it directly: each shard's directory spans only the
// local (low) bits of the bucket id, so a configuration too wide for a
// dense directory as a whole can still get dense shards.
func newDirectoryBits(totalBits, denseLimit int) directory {
	if denseLimit >= MaxTotalBits {
		// A dense directory as wide as the 64-bit bucket id cannot exist
		// (1<<64 overflows the slot count to zero); such configurations
		// must take the sparse path.
		denseLimit = MaxTotalBits - 1
	}
	if totalBits <= denseLimit {
		slots := uint64(1) << uint(totalBits)
		return &denseDir{
			buckets: make([][]*tuple.Tuple, slots),
			occBits: make([]uint64, (slots+63)/64),
		}
	}
	return &sparseDir{buckets: make(map[uint64][]*tuple.Tuple)}
}

// denseDir materializes every bucket slot in a flat array: O(1) addressing,
// 24 bytes of slice header per slot. occBits mirrors per-slot occupancy as a
// bitmap so wildcard enumerations can skip empty buckets with one bit test
// instead of loading the slot's slice header.
type denseDir struct {
	buckets [][]*tuple.Tuple
	occBits []uint64
	occ     int
	stored  int
}

// has reports whether bucket id is non-empty via the occupancy bitmap.
func (d *denseDir) has(id uint64) bool {
	return d.occBits[id>>6]&(1<<(id&63)) != 0
}

func (d *denseDir) put(id uint64, t *tuple.Tuple) {
	if len(d.buckets[id]) == 0 {
		d.occ++
		d.occBits[id>>6] |= 1 << (id & 63)
	}
	d.buckets[id] = append(d.buckets[id], t)
	d.stored++
}

func (d *denseDir) remove(id uint64, t *tuple.Tuple) bool {
	b := d.buckets[id]
	for i, x := range b {
		if x == t {
			b[i] = b[len(b)-1]
			b[len(b)-1] = nil
			d.buckets[id] = b[:len(b)-1]
			d.stored--
			if len(d.buckets[id]) == 0 {
				d.occ--
				d.occBits[id>>6] &^= 1 << (id & 63)
			}
			return true
		}
	}
	return false
}

func (d *denseDir) bucket(id uint64) []*tuple.Tuple { return d.buckets[id] }

func (d *denseDir) forEach(fn func(id uint64, b []*tuple.Tuple) bool) {
	for id, b := range d.buckets {
		if len(b) == 0 {
			continue
		}
		if !fn(uint64(id), b) {
			return
		}
	}
}

func (d *denseDir) occupied() int { return d.occ }

func (d *denseDir) memBytes() int {
	return 24*len(d.buckets) + 16*d.stored
}

// sparseDir keys occupied buckets in a map: memory proportional to
// occupancy, masked iteration for wide wildcard searches. Iteration order
// of forEach is unspecified; callers that need determinism (none of the
// hot paths do — search visits are order-insensitive candidate sets) must
// sort themselves.
type sparseDir struct {
	buckets map[uint64][]*tuple.Tuple
	stored  int
}

func (d *sparseDir) put(id uint64, t *tuple.Tuple) {
	d.buckets[id] = append(d.buckets[id], t)
	d.stored++
}

func (d *sparseDir) remove(id uint64, t *tuple.Tuple) bool {
	b := d.buckets[id]
	for i, x := range b {
		if x == t {
			b[i] = b[len(b)-1]
			b[len(b)-1] = nil
			if len(b) == 1 {
				delete(d.buckets, id)
			} else {
				d.buckets[id] = b[:len(b)-1]
			}
			d.stored--
			return true
		}
	}
	return false
}

func (d *sparseDir) bucket(id uint64) []*tuple.Tuple { return d.buckets[id] }

func (d *sparseDir) forEach(fn func(id uint64, b []*tuple.Tuple) bool) {
	for id, b := range d.buckets {
		if !fn(id, b) {
			return
		}
	}
}

func (d *sparseDir) occupied() int { return len(d.buckets) }

func (d *sparseDir) memBytes() int {
	return 64*len(d.buckets) + 16*d.stored
}
