// Package bitindex implements the paper's Section III physical design: a
// single bit-address index per state. An index configuration (the "index
// key map" IC) assigns a number of bits to each join attribute; the
// concatenation of the low bits of each attribute's hash forms a bucket id,
// and tuples are stored directly in the addressed bucket. One index serves
// every access pattern: attributes a search request does not constrain
// contribute a wildcard span of bucket ids.
//
// Tuples live in the buckets themselves — unlike the multi-hash-index
// approach there are no per-index key links, which is the design's memory
// and maintenance advantage.
package bitindex

import (
	"fmt"
	"strings"

	"amri/internal/query"
)

// MaxTotalBits bounds the bucket-id width. Bucket ids are uint64.
const MaxTotalBits = 64

// Config is an index configuration: Bits[i] is the number of bucket-id bits
// assigned to join attribute i of the state's JAS. A zero entry means the
// attribute is not indexed.
type Config struct {
	Bits []uint8
}

// NewConfig copies bits into a fresh Config.
func NewConfig(bits ...uint8) Config {
	b := make([]uint8, len(bits))
	copy(b, bits)
	return Config{Bits: b}
}

// Uniform spreads totalBits across n attributes as evenly as possible,
// giving earlier attributes the remainder.
func Uniform(n, totalBits int) Config {
	bits := make([]uint8, n)
	for i := 0; i < totalBits; i++ {
		bits[i%n]++
	}
	return Config{Bits: bits}
}

// Validate checks the configuration against a JAS of numAttrs attributes.
func (c Config) Validate(numAttrs int) error {
	if len(c.Bits) != numAttrs {
		return fmt.Errorf("bitindex: config has %d attributes, state has %d", len(c.Bits), numAttrs)
	}
	if c.TotalBits() > MaxTotalBits {
		return fmt.Errorf("bitindex: %d total bits exceeds max %d", c.TotalBits(), MaxTotalBits)
	}
	return nil
}

// NumAttrs returns the number of JAS attributes the config covers.
func (c Config) NumAttrs() int { return len(c.Bits) }

// TotalBits returns the width of the bucket id.
func (c Config) TotalBits() int {
	total := 0
	for _, b := range c.Bits {
		total += int(b)
	}
	return total
}

// NumBuckets returns the size of the bucket-id space, 2^TotalBits.
func (c Config) NumBuckets() uint64 {
	tb := c.TotalBits()
	if tb >= 64 {
		return ^uint64(0) // 2^64-1; the id space saturates the uint64 range
	}
	return 1 << uint(tb)
}

// BitsFor returns B_ap: the number of bits assigned to the attributes the
// pattern constrains. Searches with pattern ap scan 2^(TotalBits-B_ap)
// buckets, i.e. a 2^-B_ap fraction of the id space.
func (c Config) BitsFor(p query.Pattern) int {
	total := 0
	for i, b := range c.Bits {
		if p.Has(i) {
			total += int(b)
		}
	}
	return total
}

// IndexedAttrs returns N_A: the number of attributes with at least one bit.
func (c Config) IndexedAttrs() int {
	n := 0
	for _, b := range c.Bits {
		if b > 0 {
			n++
		}
	}
	return n
}

// IndexedIn returns N_{A,ap}: the number of indexed attributes the pattern
// constrains — the per-request hash computations a search performs.
func (c Config) IndexedIn(p query.Pattern) int {
	n := 0
	for i, b := range c.Bits {
		if b > 0 && p.Has(i) {
			n++
		}
	}
	return n
}

// Equal reports whether two configurations assign identical bits.
func (c Config) Equal(o Config) bool {
	if len(c.Bits) != len(o.Bits) {
		return false
	}
	for i := range c.Bits {
		if c.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (c Config) Clone() Config {
	return NewConfig(c.Bits...)
}

// String renders like "IC[5,2,3]".
func (c Config) String() string {
	var b strings.Builder
	b.WriteString("IC[")
	for i, bits := range c.Bits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", bits)
	}
	b.WriteByte(']')
	return b.String()
}

// layout precomputes each attribute's field position inside the bucket id.
// Attribute 0 occupies the most significant field, matching the paper's
// worked example where t.A1,t.A2,t.A3 = 00111,11,010 concatenate to
// 0011111010 (bucket 250).
type layout struct {
	shift []uint   // left shift of attribute i's field
	mask  []uint64 // in-place mask of attribute i's field (0 when no bits)
	total int
}

func newLayout(c Config) layout {
	if c.TotalBits() > MaxTotalBits {
		// Callers validate first; a wider layout would shift past the
		// uint64 bucket id and silently alias every tuple into bucket 0.
		panic(fmt.Sprintf("bitindex: layout over %d bits exceeds the %d-bit bucket id", c.TotalBits(), MaxTotalBits))
	}
	l := layout{shift: make([]uint, len(c.Bits)), mask: make([]uint64, len(c.Bits)), total: c.TotalBits()}
	pos := l.total
	for i, b := range c.Bits {
		pos -= int(b)
		l.shift[i] = uint(pos)
		if b > 0 {
			l.mask[i] = ((uint64(1) << uint(b)) - 1) << uint(pos)
		}
	}
	return l
}

// fieldOf places the low bits of hash h into attribute i's field.
func (l layout) fieldOf(i int, h uint64, bits uint8) uint64 {
	if bits == 0 {
		return 0
	}
	return (h & ((1 << uint(bits)) - 1)) << l.shift[i]
}

// patternMask returns the union of field masks of the attributes in p.
func (l layout) patternMask(p query.Pattern) uint64 {
	var m uint64
	for i := range l.mask {
		if p.Has(i) {
			m |= l.mask[i]
		}
	}
	return m
}

// Balance summarizes how evenly an index's tuples spread over its occupied
// buckets — the paper's stated goal for a good index key map is "no bucket
// stores more tuples than any other".
type Balance struct {
	// Occupied is the number of non-empty buckets; Tuples the stored count.
	Occupied int
	Tuples   int
	// MaxBucket is the largest bucket's size; Mean the average over
	// occupied buckets.
	MaxBucket int
	Mean      float64
	// Imbalance is MaxBucket / Mean (1.0 = perfectly even); 0 when empty.
	Imbalance float64
}
