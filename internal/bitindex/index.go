package bitindex

import (
	"fmt"

	"amri/internal/query"
	"amri/internal/tuple"
)

// Stats reports the work one index operation performed, in the units the
// cost model charges: hash computations (C_h each), buckets probed, tuples
// scanned (C_c each), and — sparse directories only — directory entries
// examined during a masked iteration.
type Stats struct {
	Hashes   int
	Buckets  int
	Tuples   int
	DirScans int
	// KeyOps counts auxiliary key entries created or removed — zero for
	// the bit-address index (tuples live in the buckets themselves), one
	// per access module per tuple for the multi-hash-index baseline. Key
	// maintenance is the CPU burden the paper's Section I-A highlights.
	KeyOps int
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Hashes += o.Hashes
	s.Buckets += o.Buckets
	s.Tuples += o.Tuples
	s.DirScans += o.DirScans
	s.KeyOps += o.KeyOps
}

// DefaultDenseLimit is the largest total bit width for which the directory
// is materialized as a flat array; wider configurations use a sparse map.
// 2^18 bucket slots cost ~6 MiB of slice headers, a sensible default cap.
const DefaultDenseLimit = 18

// Option configures index construction.
type Option func(*options)

type options struct {
	denseLimit int
}

// WithDenseLimit overrides the dense/sparse directory crossover (in total
// bits). A limit of 0 forces the sparse directory for any configuration.
func WithDenseLimit(bits int) Option {
	return func(o *options) { o.denseLimit = bits }
}

// Index is a bit-address index: it stores tuples directly in buckets
// addressed by the configuration's attribute-field concatenation. It is the
// state's storage, not an auxiliary structure — there are no per-tuple key
// links to maintain (the contrast with the multi-hash-index design).
type Index struct {
	cfg        Config
	lay        layout
	hasher     Hasher
	attrMap    []int
	opts       options
	dir        directory
	count      int
	tupleBytes int

	// mig is the in-progress incremental migration, nil when none.
	mig *migration

	wildFields []wildField // scratch for searches

	// hashVal/hashOK memoize per-attribute hash computations within one
	// operation that consults both migration directories, so an attribute
	// hashed for the old layout is not hashed (or charged) again for the
	// new one. Reset via resetHashMemo at the start of each such operation.
	hashVal []uint64
	hashOK  []bool
}

type wildField struct {
	shift uint
	bits  uint8
}

// New builds an empty index. attrMap[i] gives the tuple attribute position
// that IC field i reads (the state's JAS ordering); hasher may be nil for
// DefaultHasher.
func New(cfg Config, attrMap []int, hasher Hasher, opts ...Option) (*Index, error) {
	if err := cfg.Validate(len(attrMap)); err != nil {
		return nil, err
	}
	if hasher == nil {
		hasher = DefaultHasher
	}
	o := options{denseLimit: DefaultDenseLimit}
	for _, fn := range opts {
		fn(&o)
	}
	ix := &Index{
		cfg:     cfg.Clone(),
		lay:     newLayout(cfg),
		hasher:  hasher,
		attrMap: append([]int(nil), attrMap...),
		opts:    o,
	}
	ix.dir = newDirectory(ix.cfg, o.denseLimit)
	ix.hashVal = make([]uint64, len(ix.attrMap))
	ix.hashOK = make([]bool, len(ix.attrMap))
	return ix, nil
}

// Config returns a copy of the active index configuration.
func (ix *Index) Config() Config { return ix.cfg.Clone() }

// Len returns the number of stored tuples.
func (ix *Index) Len() int { return ix.count }

// Dense reports whether the directory is the flat-array variant.
func (ix *Index) Dense() bool { _, ok := ix.dir.(*denseDir); return ok }

// BucketID computes the bucket id the tuple maps to under the current
// configuration, along with the number of hash computations performed
// (one per indexed attribute).
func (ix *Index) BucketID(t *tuple.Tuple) (uint64, int) {
	var id uint64
	hashes := 0
	for i, bits := range ix.cfg.Bits {
		if bits == 0 {
			continue
		}
		h := ix.hasher(i, t.Attrs[ix.attrMap[i]])
		id |= ix.lay.fieldOf(i, h, bits)
		hashes++
	}
	return id, hashes
}

// Insert stores the tuple, returning maintenance stats (hash computations).
func (ix *Index) Insert(t *tuple.Tuple) Stats {
	id, hashes := ix.BucketID(t)
	ix.dir.put(id, t)
	ix.count++
	ix.tupleBytes += t.MemBytes()
	return Stats{Hashes: hashes}
}

// Delete removes a previously inserted tuple (pointer identity), returning
// stats and whether it was found. Used by window expiry. During an
// incremental migration the tuple may still live in the old directory,
// which is tried first (expiring tuples are the oldest ones).
func (ix *Index) Delete(t *tuple.Tuple) (Stats, bool) {
	if ix.mig != nil {
		return ix.deleteMigrating(t)
	}
	var st Stats
	id, hashes := ix.BucketID(t)
	st.Hashes += hashes
	ok := ix.dir.remove(id, t)
	if ok {
		ix.count--
		ix.tupleBytes -= t.MemBytes()
	}
	return st, ok
}

// Search visits every tuple stored in the buckets the access pattern
// addresses. vals[i] supplies the search value for IC field i and is read
// only when p constrains attribute i. The visit callback returns false to
// stop early. Visited tuples are bucket candidates: the caller still
// applies the join predicates (a bucket can contain non-matching tuples
// whenever an attribute has fewer bits than its value space).
//
//amrivet:hotpath bucket-span scan, the innermost per-probe loop
func (ix *Index) Search(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) Stats {
	// During an incremental migration not-yet-moved tuples live in the old
	// directory: a dual-directory search probes both, hashing each
	// constrained attribute only once.
	if ix.mig != nil {
		return ix.searchMigrating(p, vals, visit)
	}
	var st Stats
	var base uint64
	ix.wildFields = ix.wildFields[:0]
	wildBits := 0
	for i, bits := range ix.cfg.Bits {
		if bits == 0 {
			continue
		}
		if p.Has(i) {
			h := ix.hasher(i, vals[i])
			base |= ix.lay.fieldOf(i, h, bits)
			st.Hashes++
		} else {
			ix.wildFields = append(ix.wildFields, wildField{shift: ix.lay.shift[i], bits: bits})
			wildBits += int(bits)
		}
	}

	enumerate := true
	if _, sparse := ix.dir.(*sparseDir); sparse {
		// Masked iteration beats id enumeration once the wildcard span
		// exceeds the number of occupied buckets.
		if wildBits >= 63 || (1<<uint(wildBits)) > uint64(ix.dir.occupied()) {
			enumerate = false
		}
	}

	if enumerate {
		span := uint64(1) << uint(wildBits)
		for c := uint64(0); c < span; c++ {
			id := base | ix.spread(c)
			st.Buckets++
			if !scanBucket(ix.dir.bucket(id), &st, visit) {
				return st
			}
		}
		return st
	}

	mask := ix.lay.patternMask(p)
	want := base & mask
	ix.dir.forEach(func(id uint64, b []*tuple.Tuple) bool {
		st.DirScans++
		if id&mask != want {
			return true
		}
		st.Buckets++
		return scanBucket(b, &st, visit)
	})
	return st
}

func scanBucket(b []*tuple.Tuple, st *Stats, visit func(*tuple.Tuple) bool) bool {
	for _, t := range b {
		st.Tuples++
		if !visit(t) {
			return false
		}
	}
	return true
}

// spread distributes the wildcard counter's bits into the wildcard fields
// recorded by the preceding Search setup.
func (ix *Index) spread(c uint64) uint64 {
	var id uint64
	for _, f := range ix.wildFields {
		id |= (c & ((1 << uint(f.bits)) - 1)) << f.shift
		c >>= uint(f.bits)
	}
	return id
}

// resetHashMemo prepares the per-operation hash memo (allocated in New)
// used by the dual-directory (migrating) operations.
func (ix *Index) resetHashMemo() {
	for i := range ix.hashOK {
		ix.hashOK[i] = false
	}
}

// memoHash returns hasher(i, v), computing and charging it at most once per
// operation. The hash of an attribute value does not depend on the index
// configuration — only the field placement does — so an operation that
// consults both migration directories must pay C_h once per attribute, not
// once per directory.
func (ix *Index) memoHash(i int, v tuple.Value, st *Stats) uint64 {
	if !ix.hashOK[i] {
		ix.hashVal[i] = ix.hasher(i, v)
		ix.hashOK[i] = true
		st.Hashes++
	}
	return ix.hashVal[i]
}

// bucketIDUnder computes the bucket id of t under an arbitrary
// configuration, drawing hashes from the operation's memo.
func (ix *Index) bucketIDUnder(cfg Config, lay layout, t *tuple.Tuple, st *Stats) uint64 {
	var id uint64
	for i, bits := range cfg.Bits {
		if bits == 0 {
			continue
		}
		h := ix.memoHash(i, t.Attrs[ix.attrMap[i]], st)
		id |= lay.fieldOf(i, h, bits)
	}
	return id
}

// searchDir probes one directory under the given configuration, drawing
// hash computations from the operation's memo. It returns false when the
// visitor stopped early.
func (ix *Index) searchDir(dir directory, cfg Config, lay layout, p query.Pattern, vals []tuple.Value, st *Stats, visit func(*tuple.Tuple) bool) bool {
	var base uint64
	ix.wildFields = ix.wildFields[:0]
	wildBits := 0
	for i, bits := range cfg.Bits {
		if bits == 0 {
			continue
		}
		if p.Has(i) {
			h := ix.memoHash(i, vals[i], st)
			base |= lay.fieldOf(i, h, bits)
		} else {
			ix.wildFields = append(ix.wildFields, wildField{shift: lay.shift[i], bits: bits})
			wildBits += int(bits)
		}
	}
	enumerate := true
	if _, sparse := dir.(*sparseDir); sparse {
		if wildBits >= 63 || (1<<uint(wildBits)) > uint64(dir.occupied()) {
			enumerate = false
		}
	}
	if enumerate {
		span := uint64(1) << uint(wildBits)
		for c := uint64(0); c < span; c++ {
			id := base | ix.spread(c)
			st.Buckets++
			if !scanBucket(dir.bucket(id), st, visit) {
				return false
			}
		}
		return true
	}
	mask := lay.patternMask(p)
	want := base & mask
	ok := true
	dir.forEach(func(id uint64, b []*tuple.Tuple) bool {
		st.DirScans++
		if id&mask != want {
			return true
		}
		st.Buckets++
		if !scanBucket(b, st, visit) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Scan visits every stored tuple (the full-scan access path), including
// tuples still waiting in a migration's old directory.
func (ix *Index) Scan(visit func(*tuple.Tuple) bool) Stats {
	var st Stats
	stopped := false
	if ix.mig != nil {
		ix.mig.oldDir.forEach(func(_ uint64, b []*tuple.Tuple) bool {
			st.Buckets++
			if !scanBucket(b, &st, visit) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return st
	}
	ix.dir.forEach(func(_ uint64, b []*tuple.Tuple) bool {
		st.Buckets++
		return scanBucket(b, &st, visit)
	})
	return st
}

// Migrate rebuilds the index under a new configuration, relocating every
// stored tuple (the paper's BI₁→BI₂ adaptation). It returns the stats of
// the rebuild: one put per tuple, with the hash computations that implies.
func (ix *Index) Migrate(newCfg Config) (Stats, error) {
	if err := newCfg.Validate(len(ix.attrMap)); err != nil {
		return Stats{}, err
	}
	// Finish any incremental migration first so no tuple is stranded.
	var pre Stats
	for ix.mig != nil {
		st, done := ix.MigrateStep(1 << 16)
		pre.Add(st)
		if done {
			break
		}
	}
	var all []*tuple.Tuple
	ix.dir.forEach(func(_ uint64, b []*tuple.Tuple) bool {
		all = append(all, b...)
		return true
	})
	ix.cfg = newCfg.Clone()
	ix.lay = newLayout(ix.cfg)
	ix.dir = newDirectory(ix.cfg, ix.opts.denseLimit)
	st := pre
	for _, t := range all {
		id, hashes := ix.BucketID(t)
		ix.dir.put(id, t)
		st.Hashes += hashes
		st.Tuples++
	}
	return st, nil
}

// MemBytes returns the simulated resident size: directory overhead plus the
// stored tuples themselves (the index is the state's storage). An in-flight
// migration's old directory is included.
func (ix *Index) MemBytes() int {
	m := 128 + ix.dir.memBytes() + ix.tupleBytes
	if ix.mig != nil {
		m += ix.mig.oldDir.memBytes()
	}
	return m
}

// OccupiedBuckets returns the number of non-empty buckets.
func (ix *Index) OccupiedBuckets() int { return ix.dir.occupied() }

// String summarizes the index for logs.
func (ix *Index) String() string {
	kind := "sparse"
	if ix.Dense() {
		kind = "dense"
	}
	return fmt.Sprintf("BitIndex{%v, %s, %d tuples, %d occupied}", ix.cfg, kind, ix.count, ix.dir.occupied())
}

// BucketBalance measures the current tuple distribution over occupied
// buckets. Value skew concentrates equal keys in equal buckets — no hash
// can spread identical values — so imbalance under skew is a property of
// the data, not the index; this measurement is how the experiments show it.
func (ix *Index) BucketBalance() Balance {
	b := Balance{Tuples: ix.count}
	ix.dir.forEach(func(_ uint64, bucket []*tuple.Tuple) bool {
		b.Occupied++
		if len(bucket) > b.MaxBucket {
			b.MaxBucket = len(bucket)
		}
		return true
	})
	if ix.mig != nil {
		ix.mig.oldDir.forEach(func(_ uint64, bucket []*tuple.Tuple) bool {
			b.Occupied++
			if len(bucket) > b.MaxBucket {
				b.MaxBucket = len(bucket)
			}
			return true
		})
	}
	if b.Occupied > 0 {
		b.Mean = float64(b.Tuples) / float64(b.Occupied)
		b.Imbalance = float64(b.MaxBucket) / b.Mean
	}
	return b
}
