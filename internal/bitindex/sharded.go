package bitindex

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"amri/internal/query"
	"amri/internal/tuple"
)

// This file implements the concurrent variant of the bit-address index: a
// ShardedIndex splits the bucket-id space by the HIGH bits of the bucket id
// into 2^s lock-striped sub-directories ("shards"), so inserts, deletes and
// wildcard fan-out searches that touch disjoint shards proceed concurrently.
// The IC semantics of the flat Index are preserved exactly: the bucket id of
// a tuple is computed identically, a shard merely stores the id's low
// ("local") bits in its own directory, and Stats are merged per shard so the
// cost accounting matches the flat index probe for probe (hash computations
// are charged once per attribute per operation, never once per shard).
//
// Concurrency contract (see DESIGN.md §10 for the lock order):
//
//   - every operation holds mu for reading for its full duration, plus the
//     per-shard locks of the shards it touches;
//   - configuration changes (StartMigration, MigrateStep, AbortMigration,
//     Migrate) hold mu exclusively, each for a bounded amount of work —
//     an incremental migration never rebuilds the whole index under one
//     critical section, so retuning never stops the world for more than
//     one bounded step;
//   - search results are always exact: a probe overlapping a migration sees
//     every stored tuple exactly once, because the steps that move tuples
//     between the old and new directories exclude concurrent probes.

// MaxShardBits caps the shard count at 2^8 = 256 sub-directories.
const MaxShardBits = 8

// shard is one lock-striped slice of the live bucket directory. Its
// directory is addressed by the local (low) bits of the bucket id.
type shard struct {
	mu  sync.RWMutex
	dir directory
	// Pad to a full cache line: shard headers sit in one contiguous array
	// and their stripe locks are taken from every probe worker at once, so
	// an unpadded neighbour's lock traffic would invalidate this line.
	_ [64 - 24 - 16]byte
}

// migShard is one slice of a migration's old directory. It is deliberately
// a distinct type from shard: the lock order "old shard before live shard"
// (MigrateStep holds a migShard lock while inserting into destination
// shards) is then a cross-class edge the lockorder analyzer can check.
type migShard struct {
	mu      sync.RWMutex
	dir     directory
	pending []uint64 // old-local bucket ids not yet drained
}

// epoch is a point-in-time snapshot of one directory generation's geometry
// (the live one, or a migration's old one): the configuration, its layout,
// and how the bucket id splits into shard-selecting high bits and
// directory-local low bits. Epochs are read under mu and passed by value so
// helpers need no further locking.
type epoch struct {
	cfg       Config
	lay       layout
	localBits uint // bucket-id bits stored inside a shard directory
	n         int  // active shard count, 1 << min(shardBits, TotalBits)
}

func newEpoch(cfg Config, shardBits uint) epoch {
	tb := uint(cfg.TotalBits())
	eff := shardBits
	if eff > tb {
		eff = tb
	}
	return epoch{cfg: cfg, lay: newLayout(cfg), localBits: tb - eff, n: 1 << eff}
}

// shardOf returns the shard index the bucket id routes to.
func (e epoch) shardOf(id uint64) int { return int(id >> e.localBits) }

// localOf returns the bucket id within its shard's directory.
func (e epoch) localOf(id uint64) uint64 { return id & e.localMask() }

// localMask masks the directory-local bits of a bucket id.
func (e epoch) localMask() uint64 {
	if e.localBits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << e.localBits) - 1
}

// shardedMigration tracks an in-progress incremental migration of a
// ShardedIndex. Its fields are written only under the index's exclusive
// lock; left is additionally decremented by concurrent deletes (which hold
// the lock for reading) and is therefore atomic.
type shardedMigration struct {
	old    epoch
	shards []migShard
	cursor int          // round-robin drain position, advanced per drained shard
	left   atomic.Int64 // tuples not yet moved out of the old shards
}

// ShardedIndex is a goroutine-safe bit-address index: the directory is
// lock-striped over the high bits of the bucket id. It provides the same
// operations and the same Stats accounting as Index; see the file comment
// for the concurrency contract.
type ShardedIndex struct {
	hasher    Hasher
	attrMap   []int
	opts      options
	shardBits uint

	// mu guards the configuration epoch and the in-flight migration.
	mu   sync.RWMutex
	live epoch
	// gen identifies the live epoch; drawn from the process-wide epochGen
	// counter so generations are unique ACROSS indexes — workers share one
	// SearchScratch over every operator's index, and the spread-table cache
	// keys on (pattern, gen) alone. Read under mu (any mode).
	gen uint64
	mig *shardedMigration

	shards []shard

	count      atomic.Int64
	tupleBytes atomic.Int64
}

// NewSharded builds an empty sharded index with the given number of
// lock-striped shards (a power of two in [1, 256]). attrMap and hasher have
// the same meaning as in New.
func NewSharded(cfg Config, attrMap []int, hasher Hasher, shards int, opts ...Option) (*ShardedIndex, error) {
	if shards <= 0 || shards > 1<<MaxShardBits || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("bitindex: shard count %d must be a power of two in [1, %d]", shards, 1<<MaxShardBits)
	}
	if err := cfg.Validate(len(attrMap)); err != nil {
		return nil, err
	}
	if hasher == nil {
		hasher = DefaultHasher
	}
	o := options{denseLimit: DefaultDenseLimit}
	for _, fn := range opts {
		fn(&o)
	}
	ix := &ShardedIndex{
		hasher:    hasher,
		attrMap:   append([]int(nil), attrMap...),
		opts:      o,
		shardBits: uint(bits.TrailingZeros(uint(shards))),
		shards:    make([]shard, shards),
	}
	ix.live = newEpoch(cfg.Clone(), ix.shardBits)
	ix.gen = epochGen.Add(1)
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.Lock()
		sh.dir = newDirectoryBits(int(ix.live.localBits), o.denseLimit)
		sh.mu.Unlock()
	}
	return ix, nil
}

// ShardCount returns the number of lock stripes the index was built with.
func (ix *ShardedIndex) ShardCount() int { return len(ix.shards) }

// Config returns a copy of the active index configuration.
func (ix *ShardedIndex) Config() Config {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live.cfg.Clone()
}

// Len returns the number of stored tuples.
func (ix *ShardedIndex) Len() int { return int(ix.count.Load()) }

// Migrating reports whether an incremental migration is in progress.
func (ix *ShardedIndex) Migrating() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.mig != nil
}

// hashMemo memoizes per-attribute hash computations within one operation,
// so an attribute consulted under both migration epochs is hashed — and
// charged — once. It lives on the caller's stack: the sharded index keeps
// no per-operation scratch on the receiver, which is what makes concurrent
// probes safe.
type hashMemo struct {
	val [query.MaxAttrs]uint64
	ok  [query.MaxAttrs]bool
}

func memoizedHash(h Hasher, hm *hashMemo, i int, v tuple.Value, st *Stats) uint64 {
	if !hm.ok[i] {
		hm.val[i] = h(i, v)
		hm.ok[i] = true
		st.Hashes++
	}
	return hm.val[i]
}

// shardBucketID computes the bucket id of t under one epoch, charging one
// hash per indexed attribute (single-epoch operations need no memo).
func shardBucketID(h Hasher, attrMap []int, e epoch, t *tuple.Tuple, st *Stats) uint64 {
	var id uint64
	for i, b := range e.cfg.Bits {
		if b == 0 {
			continue
		}
		hv := h(i, t.Attrs[attrMap[i]])
		id |= e.lay.fieldOf(i, hv, b)
		st.Hashes++
	}
	return id
}

// memoBucketID is shardBucketID drawing from an operation-scoped memo, for
// operations that compute ids under both migration epochs.
func memoBucketID(h Hasher, attrMap []int, e epoch, hm *hashMemo, t *tuple.Tuple, st *Stats) uint64 {
	var id uint64
	for i, b := range e.cfg.Bits {
		if b == 0 {
			continue
		}
		hv := memoizedHash(h, hm, i, t.Attrs[attrMap[i]], st)
		id |= e.lay.fieldOf(i, hv, b)
	}
	return id
}

// Insert stores the tuple, returning maintenance stats. During a migration
// inserts go to the new (live) directories, exactly as in the flat index.
//
//amrivet:hotpath per-arrival insert on the concurrent index
func (ix *ShardedIndex) Insert(t *tuple.Tuple) Stats {
	var st Stats
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id := shardBucketID(ix.hasher, ix.attrMap, ix.live, t, &st)
	sh := &ix.shards[ix.live.shardOf(id)]
	//amrivet:lockhold stripe lock nests inside the epoch read lock by design: ix.mu only pins the directory geometry, the stripe serializes one bucket span (lock DAG, DESIGN.md §10)
	sh.mu.Lock()
	sh.dir.put(ix.live.localOf(id), t)
	sh.mu.Unlock()
	ix.count.Add(1)
	ix.tupleBytes.Add(int64(t.MemBytes()))
	return st
}

// Delete removes a previously inserted tuple (pointer identity). During a
// migration the old directory is tried first (expiring tuples are the
// oldest ones); both bucket ids draw from one hash memo so each attribute
// is charged a single hash.
func (ix *ShardedIndex) Delete(t *tuple.Tuple) (Stats, bool) {
	var st Stats
	var hm hashMemo
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if m := ix.mig; m != nil {
		oldID := memoBucketID(ix.hasher, ix.attrMap, m.old, &hm, t, &st)
		os := &m.shards[m.old.shardOf(oldID)]
		os.mu.Lock()
		ok := os.dir.remove(m.old.localOf(oldID), t)
		os.mu.Unlock()
		if ok {
			m.left.Add(-1)
			ix.count.Add(-1)
			ix.tupleBytes.Add(-int64(t.MemBytes()))
			return st, true
		}
	}
	id := memoBucketID(ix.hasher, ix.attrMap, ix.live, &hm, t, &st)
	sh := &ix.shards[ix.live.shardOf(id)]
	sh.mu.Lock()
	ok := sh.dir.remove(ix.live.localOf(id), t)
	sh.mu.Unlock()
	if ok {
		ix.count.Add(-1)
		ix.tupleBytes.Add(-int64(t.MemBytes()))
	}
	return st, ok
}

// shardPlan is the per-epoch execution plan of one search: the constrained
// bits of the full bucket id, the pattern's field mask, and the wildcard
// fields clipped to the shard-local bits. Wildcard bits above the local
// boundary select shards instead and are handled by the candidate-shard
// filter. Plans live on the caller's stack.
type shardPlan struct {
	base     uint64
	mask     uint64
	wild     [query.MaxAttrs]wildField
	nWild    int
	wildBits int // wildcard bits inside a shard's local id
}

func buildShardPlan(e epoch, h Hasher, hm *hashMemo, p query.Pattern, vals []tuple.Value, st *Stats, pl *shardPlan) {
	pl.base, pl.mask = 0, 0
	pl.nWild, pl.wildBits = 0, 0
	for i, b := range e.cfg.Bits {
		if b == 0 {
			continue
		}
		if p.Has(i) {
			hv := memoizedHash(h, hm, i, vals[i], st)
			pl.base |= e.lay.fieldOf(i, hv, b)
			pl.mask |= e.lay.mask[i]
			continue
		}
		shift := e.lay.shift[i]
		lo := int(e.localBits) - int(shift)
		if lo > int(b) {
			lo = int(b)
		}
		if lo > 0 {
			pl.wild[pl.nWild] = wildField{shift: shift, bits: uint8(lo)}
			pl.nWild++
			pl.wildBits += lo
		}
	}
}

// spread distributes the wildcard counter's bits into the plan's local
// wildcard fields (the sharded twin of Index.spread).
func (pl *shardPlan) spread(c uint64) uint64 {
	var id uint64
	for i := 0; i < pl.nWild; i++ {
		f := pl.wild[i]
		id |= (c & ((1 << uint(f.bits)) - 1)) << f.shift
		c >>= uint(f.bits)
	}
	return id
}

// probeShardDir scans one shard's directory under an already-held shard
// lock. The enumerate-versus-masked-iteration decision is made per shard
// against that shard's occupancy — a sparse shard with a wide wildcard span
// iterates its occupied buckets instead of enumerating ids, just like the
// flat index decides against its whole directory. Returns false when the
// visitor stopped early.
func probeShardDir(d directory, e epoch, pl *shardPlan, st *Stats, visit func(*tuple.Tuple) bool) bool {
	localBase := pl.base & e.localMask()
	enumerate := true
	if _, sparse := d.(*sparseDir); sparse {
		if pl.wildBits >= 63 || (1<<uint(pl.wildBits)) > uint64(d.occupied()) {
			enumerate = false
		}
	}
	if enumerate {
		span := uint64(1) << uint(pl.wildBits)
		for c := uint64(0); c < span; c++ {
			id := localBase | pl.spread(c)
			st.Buckets++
			if !scanBucket(d.bucket(id), st, visit) {
				return false
			}
		}
		return true
	}
	lmask := pl.mask & e.localMask()
	want := localBase & lmask
	ok := true
	d.forEach(func(id uint64, b []*tuple.Tuple) bool {
		st.DirScans++
		if id&lmask != want {
			return true
		}
		st.Buckets++
		if !scanBucket(b, st, visit) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Search visits every tuple stored in the buckets the access pattern
// addresses, fanning out over the shards whose high bits are consistent
// with the constrained attributes. Per-shard counters are merged into the
// returned Stats; hash computations are charged once per constrained
// attribute for the whole operation, even mid-migration when both the old
// and the new directories are probed.
//
//amrivet:hotpath concurrent bucket-span scan with per-shard fan-out
func (ix *ShardedIndex) Search(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) Stats {
	var st Stats
	var hm hashMemo
	var pl shardPlan
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	// During an incremental migration not-yet-moved tuples live in the old
	// shards: probe them first, with the old epoch's geometry.
	if m := ix.mig; m != nil {
		buildShardPlan(m.old, ix.hasher, &hm, p, vals, &st, &pl)
		hiMask := pl.mask &^ m.old.localMask()
		hiWant := pl.base & hiMask
		for k := 0; k < m.old.n; k++ {
			if (uint64(k)<<m.old.localBits)&hiMask != hiWant {
				continue
			}
			os := &m.shards[k]
			//amrivet:lockhold old-shard read lock nests inside the epoch read lock by design: probes scan a draining migration's slices one stripe at a time (lock DAG, DESIGN.md §10)
			os.mu.RLock()
			cont := probeShardDir(os.dir, m.old, &pl, &st, visit)
			os.mu.RUnlock()
			if !cont {
				return st
			}
		}
	}
	buildShardPlan(ix.live, ix.hasher, &hm, p, vals, &st, &pl)
	hiMask := pl.mask &^ ix.live.localMask()
	hiWant := pl.base & hiMask
	for k := 0; k < ix.live.n; k++ {
		if (uint64(k)<<ix.live.localBits)&hiMask != hiWant {
			continue
		}
		sh := &ix.shards[k]
		//amrivet:lockhold stripe read lock nests inside the epoch read lock by design: concurrent probes of disjoint stripes proceed in parallel (lock DAG, DESIGN.md §10)
		sh.mu.RLock()
		cont := probeShardDir(sh.dir, ix.live, &pl, &st, visit)
		sh.mu.RUnlock()
		if !cont {
			return st
		}
	}
	return st
}

// StartMigration begins an incremental migration to newCfg: the live shard
// directories become the migration's old shards and fresh (empty) live
// directories are installed under the new configuration, which immediately
// serves inserts and searches. Stored tuples drain via MigrateStep. The
// critical section moves directory POINTERS only — no tuple is rehashed
// here, so starting a migration is O(occupied buckets), not O(tuples).
func (ix *ShardedIndex) StartMigration(newCfg Config) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.mig != nil {
		return fmt.Errorf("bitindex: migration already in progress")
	}
	if err := newCfg.Validate(len(ix.attrMap)); err != nil {
		return err
	}
	if newCfg.Equal(ix.live.cfg) {
		return fmt.Errorf("bitindex: migration to identical configuration")
	}
	old := ix.live
	m := &shardedMigration{old: old, shards: make([]migShard, old.n)}
	total := int64(0)
	for k := 0; k < old.n; k++ {
		sh := &ix.shards[k]
		sh.mu.Lock()
		d := sh.dir
		sh.dir = nil
		sh.mu.Unlock()
		var pending []uint64
		cnt := 0
		d.forEach(func(id uint64, b []*tuple.Tuple) bool {
			pending = append(pending, id)
			cnt += len(b)
			return true
		})
		ms := &m.shards[k]
		ms.mu.Lock()
		ms.dir = d
		ms.pending = pending
		ms.mu.Unlock()
		total += int64(cnt)
	}
	m.left.Store(total)
	ix.live = newEpoch(newCfg.Clone(), ix.shardBits)
	ix.gen = epochGen.Add(1)
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.Lock()
		sh.dir = newDirectoryBits(int(ix.live.localBits), ix.opts.denseLimit)
		sh.mu.Unlock()
	}
	ix.mig = m
	return nil
}

// MigrateStep relocates up to n tuples from the old shards into the live
// ones, returning the work done and whether the migration completed. The
// drain is shard-local: it works through one old shard at a time (resuming
// where the previous call stopped, rotating round-robin as shards drain),
// and each step's critical section is bounded by n — concurrent probes
// interleave between steps, so retuning never stops the world for longer
// than one bounded step. Calling it with no migration in progress is a
// no-op reporting done.
func (ix *ShardedIndex) MigrateStep(n int) (st Stats, done bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	m := ix.mig
	if m == nil {
		return st, true
	}
	idle := 0 // consecutive drained shards seen without moving a tuple
	for n > 0 && m.left.Load() > 0 && idle <= len(m.shards) {
		os := &m.shards[m.cursor]
		moved := 0
		os.mu.Lock()
		for n > 0 && len(os.pending) > 0 {
			id := os.pending[len(os.pending)-1]
			bucket := os.dir.bucket(id)
			if len(bucket) == 0 {
				os.pending = os.pending[:len(os.pending)-1]
				continue
			}
			// Move from the bucket's tail so removal is O(1).
			t := bucket[len(bucket)-1]
			os.dir.remove(id, t)
			newID := shardBucketID(ix.hasher, ix.attrMap, ix.live, t, &st)
			dst := &ix.shards[ix.live.shardOf(newID)]
			dst.mu.Lock()
			dst.dir.put(ix.live.localOf(newID), t)
			dst.mu.Unlock()
			st.Tuples++
			m.left.Add(-1)
			moved++
			n--
		}
		drained := len(os.pending) == 0
		os.mu.Unlock()
		if moved == 0 {
			idle++
		} else {
			idle = 0
		}
		if drained {
			m.cursor++
			if m.cursor >= len(m.shards) {
				m.cursor = 0
			}
		}
	}
	if m.left.Load() <= 0 {
		ix.mig = nil
		return st, true
	}
	return st, false
}

// AbortMigration rolls back an in-progress incremental migration: the old
// shard directories become authoritative again and every tuple that already
// reached the new directories — moved by MigrateStep or inserted since
// StartMigration — is re-inserted under the old configuration. Reports
// false when no migration is running.
func (ix *ShardedIndex) AbortMigration() (Stats, bool) {
	var st Stats
	ix.mu.Lock()
	defer ix.mu.Unlock()
	m := ix.mig
	if m == nil {
		return st, false
	}
	var moved []*tuple.Tuple
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.Lock()
		sh.dir.forEach(func(_ uint64, b []*tuple.Tuple) bool {
			moved = append(moved, b...)
			return true
		})
		sh.dir = nil
		sh.mu.Unlock()
	}
	ix.live = m.old
	ix.gen = epochGen.Add(1)
	for k := 0; k < ix.live.n; k++ {
		ms := &m.shards[k]
		ms.mu.Lock()
		d := ms.dir
		ms.mu.Unlock()
		sh := &ix.shards[k]
		sh.mu.Lock()
		sh.dir = d
		sh.mu.Unlock()
	}
	ix.mig = nil
	for _, t := range moved {
		id := shardBucketID(ix.hasher, ix.attrMap, ix.live, t, &st)
		sh := &ix.shards[ix.live.shardOf(id)]
		sh.mu.Lock()
		sh.dir.put(ix.live.localOf(id), t)
		sh.mu.Unlock()
		st.Tuples++
	}
	return st, true
}

// Migrate rebuilds the index under a new configuration all at once (the
// paper's BI₁→BI₂ adaptation), finishing any incremental migration first so
// no tuple is stranded.
func (ix *ShardedIndex) Migrate(newCfg Config) (Stats, error) {
	if err := newCfg.Validate(len(ix.attrMap)); err != nil {
		return Stats{}, err
	}
	var st Stats
	for {
		mst, done := ix.MigrateStep(1 << 16)
		st.Add(mst)
		if done {
			break
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var all []*tuple.Tuple
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.Lock()
		sh.dir.forEach(func(_ uint64, b []*tuple.Tuple) bool {
			all = append(all, b...)
			return true
		})
		sh.dir = nil
		sh.mu.Unlock()
	}
	ix.live = newEpoch(newCfg.Clone(), ix.shardBits)
	ix.gen = epochGen.Add(1)
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.Lock()
		sh.dir = newDirectoryBits(int(ix.live.localBits), ix.opts.denseLimit)
		sh.mu.Unlock()
	}
	for _, t := range all {
		id := shardBucketID(ix.hasher, ix.attrMap, ix.live, t, &st)
		sh := &ix.shards[ix.live.shardOf(id)]
		sh.mu.Lock()
		sh.dir.put(ix.live.localOf(id), t)
		sh.mu.Unlock()
		st.Tuples++
	}
	return st, nil
}

// MemBytes returns the simulated resident size: the per-shard directory
// overhead plus the stored tuples, including an in-flight migration's old
// directories — the same accounting as the flat index.
func (ix *ShardedIndex) MemBytes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	total := 128
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.RLock()
		total += sh.dir.memBytes()
		sh.mu.RUnlock()
	}
	if m := ix.mig; m != nil {
		for k := 0; k < m.old.n; k++ {
			ms := &m.shards[k]
			ms.mu.RLock()
			total += ms.dir.memBytes()
			ms.mu.RUnlock()
		}
	}
	return total + int(ix.tupleBytes.Load())
}

// OccupiedBuckets returns the number of non-empty buckets across all
// shards (including a migration's old shards).
func (ix *ShardedIndex) OccupiedBuckets() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	occ := 0
	for k := 0; k < ix.live.n; k++ {
		sh := &ix.shards[k]
		sh.mu.RLock()
		occ += sh.dir.occupied()
		sh.mu.RUnlock()
	}
	if m := ix.mig; m != nil {
		for k := 0; k < m.old.n; k++ {
			ms := &m.shards[k]
			ms.mu.RLock()
			occ += ms.dir.occupied()
			ms.mu.RUnlock()
		}
	}
	return occ
}

// String summarizes the index for logs.
func (ix *ShardedIndex) String() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return fmt.Sprintf("ShardedBitIndex{%v, %d shards, %d tuples}",
		ix.live.cfg, len(ix.shards), ix.count.Load())
}

// epochGen issues process-wide unique epoch generations — see ShardedIndex.gen.
var epochGen atomic.Uint64
