package bitindex

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"amri/internal/query"
	"amri/internal/tuple"
)

func mustNew(t *testing.T, cfg Config, attrMap []int, h Hasher, opts ...Option) *Index {
	t.Helper()
	ix, err := New(cfg, attrMap, h, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestConfigBasics(t *testing.T) {
	c := NewConfig(5, 2, 3)
	if c.TotalBits() != 10 {
		t.Fatalf("TotalBits = %d", c.TotalBits())
	}
	if c.NumBuckets() != 1024 {
		t.Fatalf("NumBuckets = %d", c.NumBuckets())
	}
	if c.IndexedAttrs() != 3 {
		t.Fatalf("IndexedAttrs = %d", c.IndexedAttrs())
	}
	if got := c.BitsFor(query.PatternOf(0, 2)); got != 8 {
		t.Fatalf("BitsFor(<A,*,C>) = %d, want 8", got)
	}
	if got := c.IndexedIn(query.PatternOf(0, 2)); got != 2 {
		t.Fatalf("IndexedIn = %d, want 2", got)
	}
	if c.String() != "IC[5,2,3]" {
		t.Fatalf("String = %q", c.String())
	}
	if !c.Equal(NewConfig(5, 2, 3)) || c.Equal(NewConfig(5, 2, 2)) || c.Equal(NewConfig(5, 2)) {
		t.Fatal("Equal is wrong")
	}
}

func TestConfigZeroBitsAttr(t *testing.T) {
	c := NewConfig(4, 0, 4)
	if c.IndexedAttrs() != 2 {
		t.Fatalf("IndexedAttrs = %d, want 2", c.IndexedAttrs())
	}
	if got := c.IndexedIn(query.PatternOf(1)); got != 0 {
		t.Fatalf("IndexedIn(<*,B,*>) = %d, want 0 (B unindexed)", got)
	}
	if got := c.BitsFor(query.PatternOf(0, 1)); got != 4 {
		t.Fatalf("BitsFor = %d, want 4", got)
	}
}

func TestUniformConfig(t *testing.T) {
	c := Uniform(3, 10)
	if c.TotalBits() != 10 {
		t.Fatalf("TotalBits = %d", c.TotalBits())
	}
	// 10 over 3: 4,3,3.
	if c.Bits[0] != 4 || c.Bits[1] != 3 || c.Bits[2] != 3 {
		t.Fatalf("Uniform = %v", c.Bits)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig(4, 4).Validate(3); err == nil {
		t.Error("wrong attr count should fail")
	}
	bits := make([]uint8, 2)
	bits[0], bits[1] = 40, 40
	if err := (Config{Bits: bits}).Validate(2); err == nil {
		t.Error("80 bits should exceed MaxTotalBits")
	}
	if err := NewConfig(4, 4, 4).Validate(3); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestPaperSection3Example reproduces the worked example: IC with 5 bits
// for A1, 2 for A2, 3 for A3; tuple values 00111, 11, 010 land in bucket
// 0011111010 = 250; search request sr1 (A1=00111, A3=010, A2 wild) scans
// buckets 226, 234, 242, 250.
func TestPaperSection3Example(t *testing.T) {
	cfg := NewConfig(5, 2, 3)
	ix := mustNew(t, cfg, []int{0, 1, 2}, IdentityHasher)

	tp := tuple.New(0, 1, 0, []tuple.Value{0b00111, 0b11, 0b010})
	id, hashes := ix.BucketID(tp)
	if id != 250 {
		t.Fatalf("bucket id = %d, want 250", id)
	}
	if hashes != 3 {
		t.Fatalf("hashes = %d, want 3", hashes)
	}
	ix.Insert(tp)

	// sr1: priority code and location id constrained, package id wild.
	var visited []*tuple.Tuple
	probed := map[uint64]bool{}
	st := ix.Search(query.PatternOf(0, 2), []tuple.Value{0b00111, 0, 0b010}, func(x *tuple.Tuple) bool {
		visited = append(visited, x)
		return true
	})
	if st.Buckets != 4 {
		t.Fatalf("buckets probed = %d, want 4 (wildcard span of A2's 2 bits)", st.Buckets)
	}
	if st.Hashes != 2 {
		t.Fatalf("hashes = %d, want 2", st.Hashes)
	}
	if len(visited) != 1 || visited[0] != tp {
		t.Fatalf("visited = %v", visited)
	}
	_ = probed

	// Verify the exact bucket ids by planting markers in each.
	for _, want := range []uint64{226, 234, 242, 250} {
		a2 := (want >> 3) & 0b11
		mk := tuple.New(0, 2, 0, []tuple.Value{0b00111, a2, 0b010})
		got, _ := ix.BucketID(mk)
		if got != want {
			t.Errorf("A2=%b lands in bucket %d, want %d", a2, got, want)
		}
	}
}

func TestSearchFullPatternSingleBucket(t *testing.T) {
	cfg := NewConfig(3, 3, 3)
	ix := mustNew(t, cfg, []int{0, 1, 2}, nil)
	tp := tuple.New(0, 1, 0, []tuple.Value{11, 22, 33})
	ix.Insert(tp)
	st := ix.Search(query.FullPattern(3), []tuple.Value{11, 22, 33}, func(x *tuple.Tuple) bool { return true })
	if st.Buckets != 1 {
		t.Fatalf("full pattern should probe exactly 1 bucket, got %d", st.Buckets)
	}
	if st.Tuples != 1 {
		t.Fatalf("tuples = %d, want 1", st.Tuples)
	}
}

func TestSearchFindsAllCandidates(t *testing.T) {
	cfg := NewConfig(4, 4)
	ix := mustNew(t, cfg, []int{0, 1}, nil)
	// Insert tuples sharing attribute 0 = 7 with varying attribute 1.
	var want int
	for i := 0; i < 50; i++ {
		v0 := tuple.Value(i % 5)
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{v0, tuple.Value(i)})
		ix.Insert(tp)
		if v0 == 3 {
			want++
		}
	}
	got := 0
	ix.Search(query.PatternOf(0), []tuple.Value{3, 0}, func(x *tuple.Tuple) bool {
		if x.Attrs[0] == 3 {
			got++
		}
		return true
	})
	if got != want {
		t.Fatalf("found %d candidates with attr0=3, want %d", got, want)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	ix := mustNew(t, NewConfig(2), []int{0}, nil)
	for i := 0; i < 10; i++ {
		ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{1}))
	}
	n := 0
	ix.Search(query.PatternOf(0), []tuple.Value{1}, func(x *tuple.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestDeleteAndLen(t *testing.T) {
	ix := mustNew(t, NewConfig(4, 4), []int{0, 1}, nil)
	t1 := tuple.New(0, 1, 0, []tuple.Value{5, 6})
	t2 := tuple.New(0, 2, 0, []tuple.Value{5, 6}) // same bucket
	ix.Insert(t1)
	ix.Insert(t2)
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if _, ok := ix.Delete(t1); !ok {
		t.Fatal("delete of stored tuple failed")
	}
	if _, ok := ix.Delete(t1); ok {
		t.Fatal("double delete succeeded")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
	// t2 must still be findable.
	found := false
	ix.Search(query.FullPattern(2), []tuple.Value{5, 6}, func(x *tuple.Tuple) bool {
		found = found || x == t2
		return true
	})
	if !found {
		t.Fatal("surviving bucket-mate lost by delete")
	}
}

func TestMigrateRelocatesEverything(t *testing.T) {
	ix := mustNew(t, NewConfig(6, 0, 0), []int{0, 1, 2}, nil)
	var tuples []*tuple.Tuple
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 200; i++ {
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64N(64)), tuple.Value(rng.Uint64N(64)), tuple.Value(rng.Uint64N(64))})
		tuples = append(tuples, tp)
		ix.Insert(tp)
	}
	newCfg := NewConfig(2, 2, 2)
	st, err := ix.Migrate(newCfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 200 {
		t.Fatalf("migrated %d tuples, want 200", st.Tuples)
	}
	if st.Hashes != 200*3 {
		t.Fatalf("migration hashes = %d, want 600", st.Hashes)
	}
	if !ix.Config().Equal(newCfg) {
		t.Fatalf("config not updated: %v", ix.Config())
	}
	if ix.Len() != 200 {
		t.Fatalf("Len after migrate = %d", ix.Len())
	}
	// Every tuple must be findable under the new configuration.
	for _, tp := range tuples {
		found := false
		ix.Search(query.FullPattern(3), tp.Attrs, func(x *tuple.Tuple) bool {
			if x == tp {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("tuple %v lost by migration", tp)
		}
	}
}

func TestMigrateRejectsBadConfig(t *testing.T) {
	ix := mustNew(t, NewConfig(4, 4), []int{0, 1}, nil)
	if _, err := ix.Migrate(NewConfig(4)); err == nil {
		t.Fatal("migrate to wrong-arity config should fail")
	}
}

func TestDenseSparseSelection(t *testing.T) {
	dense := mustNew(t, NewConfig(8, 8), []int{0, 1}, nil)
	if !dense.Dense() {
		t.Fatal("16-bit config should be dense by default")
	}
	sparse := mustNew(t, NewConfig(16, 16), []int{0, 1}, nil)
	if sparse.Dense() {
		t.Fatal("32-bit config should be sparse by default")
	}
	forced := mustNew(t, NewConfig(8, 8), []int{0, 1}, nil, WithDenseLimit(0))
	if forced.Dense() {
		t.Fatal("WithDenseLimit(0) should force sparse")
	}
}

func TestScan(t *testing.T) {
	ix := mustNew(t, NewConfig(4, 4), []int{0, 1}, nil)
	for i := 0; i < 25; i++ {
		ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(i), tuple.Value(i * 2)}))
	}
	n := 0
	st := ix.Scan(func(x *tuple.Tuple) bool { n++; return true })
	if n != 25 || st.Tuples != 25 {
		t.Fatalf("Scan visited %d (stats %d), want 25", n, st.Tuples)
	}
}

func TestMemBytesAccounting(t *testing.T) {
	ix := mustNew(t, NewConfig(4, 4), []int{0, 1}, nil)
	m0 := ix.MemBytes()
	tp := tuple.New(0, 1, 0, []tuple.Value{1, 2})
	tp.PayloadBytes = 1000
	ix.Insert(tp)
	m1 := ix.MemBytes()
	if m1-m0 < 1000 {
		t.Fatalf("insert of 1000-byte payload grew memory by %d", m1-m0)
	}
	ix.Delete(tp)
	if got := ix.MemBytes(); got != m0 {
		t.Fatalf("delete did not release memory: %d != %d", got, m0)
	}
}

func TestSixtyFourBitConfig(t *testing.T) {
	// The paper's 64-bit IC: representable only with the sparse directory.
	cfg := NewConfig(22, 21, 21)
	ix := mustNew(t, cfg, []int{0, 1, 2}, nil)
	if ix.Dense() {
		t.Fatal("64-bit config must be sparse")
	}
	rng := rand.New(rand.NewPCG(2, 2))
	var sample *tuple.Tuple
	for i := 0; i < 500; i++ {
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64()), tuple.Value(rng.Uint64()), tuple.Value(rng.Uint64())})
		ix.Insert(tp)
		if i == 250 {
			sample = tp
		}
	}
	// A one-attribute search has a 2^42 wildcard span: must fall back to
	// masked iteration rather than enumerating ids.
	found := false
	st := ix.Search(query.PatternOf(0), []tuple.Value{sample.Attrs[0], 0, 0}, func(x *tuple.Tuple) bool {
		found = found || x == sample
		return true
	})
	if !found {
		t.Fatal("sample not found under 64-bit config")
	}
	if st.DirScans == 0 {
		t.Fatal("wide wildcard search should use masked iteration")
	}
}

// Property: dense and sparse directories return identical candidate sets
// for the same inserts and searches.
func TestDenseSparseEquivalence(t *testing.T) {
	type op struct {
		V0, V1, V2 uint8
	}
	f := func(inserts []op, pat uint8, s0, s1, s2 uint8) bool {
		cfg := NewConfig(3, 2, 3)
		am := []int{0, 1, 2}
		dense, _ := New(cfg, am, nil)
		sparse, _ := New(cfg, am, nil, WithDenseLimit(0))
		for i, o := range inserts {
			tp := tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(o.V0), tuple.Value(o.V1), tuple.Value(o.V2)})
			dense.Insert(tp)
			sparse.Insert(tp)
		}
		p := query.Pattern(pat) & query.FullPattern(3)
		vals := []tuple.Value{tuple.Value(s0), tuple.Value(s1), tuple.Value(s2)}
		collect := func(ix *Index) []uint64 {
			var seqs []uint64
			ix.Search(p, vals, func(x *tuple.Tuple) bool {
				seqs = append(seqs, x.Seq)
				return true
			})
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			return seqs
		}
		a, b := collect(dense), collect(sparse)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every inserted tuple is findable via any access pattern when
// searched with its own attribute values (bucket candidates always include
// the exact-match tuple).
func TestInsertedAlwaysFindable(t *testing.T) {
	f := func(vals [][3]uint16, pat uint8) bool {
		if len(vals) == 0 {
			return true
		}
		cfg := NewConfig(4, 4, 4)
		ix, _ := New(cfg, []int{0, 1, 2}, nil)
		var tuples []*tuple.Tuple
		for i, v := range vals {
			tp := tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(v[0]), tuple.Value(v[1]), tuple.Value(v[2])})
			tuples = append(tuples, tp)
			ix.Insert(tp)
		}
		p := query.Pattern(pat) & query.FullPattern(3)
		target := tuples[len(tuples)/2]
		found := false
		ix.Search(p, target.Attrs, func(x *tuple.Tuple) bool {
			if x == target {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of buckets probed by a search is exactly
// 2^(TotalBits - BitsFor(p)) on a dense directory.
func TestBucketFanOutMatchesFormula(t *testing.T) {
	f := func(pat uint8) bool {
		cfg := NewConfig(3, 1, 2)
		ix, _ := New(cfg, []int{0, 1, 2}, nil)
		ix.Insert(tuple.New(0, 0, 0, []tuple.Value{1, 2, 3}))
		p := query.Pattern(pat) & query.FullPattern(3)
		st := ix.Search(p, []tuple.Value{9, 9, 9}, func(*tuple.Tuple) bool { return true })
		want := 1 << uint(cfg.TotalBits()-cfg.BitsFor(p))
		return st.Buckets == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketBalance(t *testing.T) {
	ix := mustNew(t, NewConfig(6, 0, 0), []int{0, 1, 2}, nil)
	if b := ix.BucketBalance(); b.Occupied != 0 || b.Imbalance != 0 {
		t.Fatalf("empty index balance = %+v", b)
	}
	// Uniform values: near-even spread.
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 4096; i++ {
		ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64()), 0, 0}))
	}
	uniform := ix.BucketBalance()
	if uniform.Tuples != 4096 || uniform.Occupied == 0 {
		t.Fatalf("balance = %+v", uniform)
	}
	if uniform.Imbalance > 3 {
		t.Fatalf("uniform data should spread well: %+v", uniform)
	}

	// Heavy value skew: one hot value dominates one bucket, and no hash
	// can help — imbalance must be clearly worse.
	skewed := mustNew(t, NewConfig(6, 0, 0), []int{0, 1, 2}, nil)
	for i := 0; i < 4096; i++ {
		v := tuple.Value(rng.Uint64())
		if i%2 == 0 {
			v = 42
		}
		skewed.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{v, 0, 0}))
	}
	sb := skewed.BucketBalance()
	if sb.Imbalance <= uniform.Imbalance*3 {
		t.Fatalf("skewed imbalance %.1f not clearly worse than uniform %.1f",
			sb.Imbalance, uniform.Imbalance)
	}
	if sb.MaxBucket < 2048 {
		t.Fatalf("hot bucket should hold the hot half: %+v", sb)
	}
}
