package bitindex

import (
	"fmt"

	"amri/internal/query"
	"amri/internal/tuple"
)

// Incremental migration: the paper's BI₁→BI₂ adaptation relocates every
// stored tuple at once, which stalls a loaded state for a full window's
// worth of work. An incremental migration keeps both directories live and
// moves tuples in bounded steps:
//
//   - inserts go to the new directory;
//   - deletes try the old directory first, then the new;
//   - searches probe both directories (the old one only while it still
//     holds tuples);
//   - MigrateStep moves up to n tuples per call until the old directory
//     drains.
//
// The trade-off is a bounded search overhead during the transition (two
// bucket spans instead of one) in exchange for never spending more than the
// step budget of maintenance time in one tick — ablated by
// BenchmarkMigrationAblation.

// migration tracks an in-progress incremental migration.
type migration struct {
	oldCfg Config
	oldLay layout
	oldDir directory
	// pending lists buckets not yet drained (ids into oldDir).
	pending []uint64
}

// Migrating reports whether an incremental migration is in progress.
func (ix *Index) Migrating() bool { return ix.mig != nil }

// StartMigration begins an incremental migration to newCfg. It fails if a
// migration is already running or the configuration is invalid. The new
// configuration becomes active immediately for inserts and searches; stored
// tuples drain via MigrateStep.
func (ix *Index) StartMigration(newCfg Config) error {
	if ix.mig != nil {
		return fmt.Errorf("bitindex: migration already in progress")
	}
	if err := newCfg.Validate(len(ix.attrMap)); err != nil {
		return err
	}
	if newCfg.Equal(ix.cfg) {
		return fmt.Errorf("bitindex: migration to identical configuration")
	}
	m := &migration{oldCfg: ix.cfg, oldLay: ix.lay, oldDir: ix.dir}
	m.oldDir.forEach(func(id uint64, _ []*tuple.Tuple) bool {
		m.pending = append(m.pending, id)
		return true
	})
	ix.cfg = newCfg.Clone()
	ix.lay = newLayout(ix.cfg)
	ix.dir = newDirectory(ix.cfg, ix.opts.denseLimit)
	ix.mig = m
	return nil
}

// MigrateStep relocates up to n tuples from the old directory into the new
// one, returning the work done and whether the migration completed. Calling
// it with no migration in progress is a no-op reporting done.
func (ix *Index) MigrateStep(n int) (st Stats, done bool) {
	m := ix.mig
	if m == nil {
		return Stats{}, true
	}
	for n > 0 && len(m.pending) > 0 {
		id := m.pending[len(m.pending)-1]
		bucket := m.oldDir.bucket(id)
		if len(bucket) == 0 {
			m.pending = m.pending[:len(m.pending)-1]
			continue
		}
		// Move from the bucket's tail so removal is O(1).
		t := bucket[len(bucket)-1]
		m.oldDir.remove(id, t)
		newID, hashes := ix.BucketID(t)
		ix.dir.put(newID, t)
		st.Hashes += hashes
		st.Tuples++
		n--
	}
	if len(m.pending) == 0 {
		ix.mig = nil
		return st, true
	}
	return st, false
}

// AbortMigration rolls back an in-progress incremental migration: every
// tuple that already reached the new directory — moved by MigrateStep or
// inserted since StartMigration — is re-inserted into the old directory
// under the old configuration, which becomes authoritative again. This is
// the fault-tolerance path: a migration that dies mid-step must leave the
// index exactly as if it had never started (modulo the wasted work, which
// the returned stats price). Reports false when no migration is running.
func (ix *Index) AbortMigration() (Stats, bool) {
	m := ix.mig
	if m == nil {
		return Stats{}, false
	}
	var moved []*tuple.Tuple
	ix.dir.forEach(func(_ uint64, b []*tuple.Tuple) bool {
		moved = append(moved, b...)
		return true
	})
	ix.cfg = m.oldCfg
	ix.lay = m.oldLay
	ix.dir = m.oldDir
	ix.mig = nil
	var st Stats
	for _, t := range moved {
		id, hashes := ix.BucketID(t)
		ix.dir.put(id, t)
		st.Hashes += hashes
		st.Tuples++
	}
	return st, true
}

// deleteMigrating removes t while a migration is in flight: the old
// directory is tried first (expiring tuples are the oldest ones), then the
// new one. Both bucket ids draw from one hash memo, so each attribute is
// hashed — and charged — exactly once even though two layouts are consulted.
func (ix *Index) deleteMigrating(t *tuple.Tuple) (Stats, bool) {
	var st Stats
	ix.resetHashMemo()
	m := ix.mig
	oldID := ix.bucketIDUnder(m.oldCfg, m.oldLay, t, &st)
	if m.oldDir.remove(oldID, t) {
		ix.count--
		ix.tupleBytes -= t.MemBytes()
		return st, true
	}
	newID := ix.bucketIDUnder(ix.cfg, ix.lay, t, &st)
	if ix.dir.remove(newID, t) {
		ix.count--
		ix.tupleBytes -= t.MemBytes()
		return st, true
	}
	return st, false
}

// searchMigrating probes the old directory (with its own layout) and then
// the new one, stopping early if the visitor does. Hash computations are
// memoized across the two passes: a constrained attribute indexed under
// both configurations contributes a single C_h, never two.
func (ix *Index) searchMigrating(p query.Pattern, vals []tuple.Value, visit func(*tuple.Tuple) bool) Stats {
	var st Stats
	ix.resetHashMemo()
	m := ix.mig
	if !ix.searchDir(m.oldDir, m.oldCfg, m.oldLay, p, vals, &st, visit) {
		return st
	}
	ix.searchDir(ix.dir, ix.cfg, ix.lay, p, vals, &st, visit)
	return st
}
