package bitindex

import (
	"math/rand/v2"
	"testing"

	"amri/internal/query"
	"amri/internal/tuple"
)

func benchIndex(b *testing.B, cfg Config, n int) (*Index, []*tuple.Tuple) {
	b.Helper()
	ix, err := New(cfg, []int{0, 1, 2}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	tuples := make([]*tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64()), tuple.Value(rng.Uint64()), tuple.Value(rng.Uint64())})
	}
	return ix, tuples
}

func BenchmarkInsert(b *testing.B) {
	ix, tuples := benchIndex(b, NewConfig(4, 4, 4), 1)
	proto := tuples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(proto)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	ix, tuples := benchIndex(b, NewConfig(4, 4, 4), 1)
	proto := tuples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(proto)
		ix.Delete(proto)
	}
}

func benchSearch(b *testing.B, cfg Config, p query.Pattern) {
	ix, tuples := benchIndex(b, cfg, 4096)
	for _, t := range tuples {
		ix.Insert(t)
	}
	vals := []tuple.Value{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(p, vals, func(*tuple.Tuple) bool { return true })
	}
}

func BenchmarkSearchFullPattern(b *testing.B) {
	benchSearch(b, NewConfig(4, 4, 4), query.FullPattern(3))
}

func BenchmarkSearchOneAttr(b *testing.B) {
	benchSearch(b, NewConfig(4, 4, 4), query.PatternOf(0))
}

func BenchmarkSearchOneAttrSparse64(b *testing.B) {
	benchSearch(b, NewConfig(22, 21, 21), query.PatternOf(0))
}

func BenchmarkMigrate(b *testing.B) {
	cfgs := []Config{NewConfig(6, 3, 3), NewConfig(3, 3, 6)}
	ix, tuples := benchIndex(b, cfgs[0], 4096)
	for _, t := range tuples {
		ix.Insert(t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Migrate(cfgs[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}
