package bitindex

import "amri/internal/tuple"

// Hasher maps a join attribute value to the 64-bit hash whose low bits
// address the attribute's bucket-id field. The attribute position is part
// of the input so equal values in different attributes decorrelate.
type Hasher func(attr int, v tuple.Value) uint64

// DefaultHasher is a splitmix64-style finalizer salted by the attribute
// position: cheap, stateless and well mixed in the low bits, which is what
// the field extraction uses.
func DefaultHasher(attr int, v tuple.Value) uint64 {
	x := v + 0x9e3779b97f4a7c15*uint64(attr+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// IdentityHasher uses the attribute value directly. The paper's Section III
// example assumes this (values 00111, 11, 010 appear verbatim in the bucket
// id); it is also useful for tests that need full control of placement.
func IdentityHasher(_ int, v tuple.Value) uint64 { return v }
