package bitindex

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"amri/internal/query"
	"amri/internal/tuple"
)

func populated(t *testing.T, n int) (*Index, []*tuple.Tuple) {
	t.Helper()
	ix, err := New(NewConfig(6, 0, 0), []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	var tuples []*tuple.Tuple
	for i := 0; i < n; i++ {
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(rng.Uint64N(64)), tuple.Value(rng.Uint64N(64)), tuple.Value(rng.Uint64N(64))})
		tuples = append(tuples, tp)
		ix.Insert(tp)
	}
	return ix, tuples
}

func TestStartMigrationValidation(t *testing.T) {
	ix, _ := populated(t, 10)
	if err := ix.StartMigration(NewConfig(6, 0, 0)); err == nil {
		t.Error("identical config should be rejected")
	}
	if err := ix.StartMigration(NewConfig(4)); err == nil {
		t.Error("wrong arity should be rejected")
	}
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if !ix.Migrating() {
		t.Fatal("migration should be in progress")
	}
	if err := ix.StartMigration(NewConfig(1, 1, 1)); err == nil {
		t.Error("second concurrent migration should be rejected")
	}
}

func TestMigrateStepDrains(t *testing.T) {
	ix, _ := populated(t, 100)
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	moved := 0
	steps := 0
	for {
		st, done := ix.MigrateStep(7)
		moved += st.Tuples
		steps++
		if done {
			break
		}
		if st.Tuples != 7 {
			t.Fatalf("step moved %d, want 7", st.Tuples)
		}
	}
	if moved != 100 {
		t.Fatalf("moved %d total, want 100", moved)
	}
	if ix.Migrating() {
		t.Fatal("migration should be complete")
	}
	if steps < 100/7 {
		t.Fatalf("only %d steps", steps)
	}
	// No-op after completion.
	if st, done := ix.MigrateStep(10); !done || st.Tuples != 0 {
		t.Fatal("MigrateStep after completion must be a no-op")
	}
}

// TestSearchDuringMigration: every stored tuple stays findable at every
// point of the migration, and Len never changes.
func TestSearchDuringMigration(t *testing.T) {
	ix, tuples := populated(t, 200)
	if err := ix.StartMigration(NewConfig(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	checkAll := func(stage string) {
		if ix.Len() != len(tuples) {
			t.Fatalf("%s: Len = %d, want %d", stage, ix.Len(), len(tuples))
		}
		for _, want := range tuples {
			found := false
			ix.Search(query.FullPattern(3), want.Attrs, func(x *tuple.Tuple) bool {
				if x == want {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("%s: tuple %v unfindable", stage, want)
			}
		}
	}
	checkAll("just started")
	ix.MigrateStep(50)
	checkAll("quarter migrated")
	ix.MigrateStep(100)
	checkAll("three quarters migrated")
	ix.MigrateStep(1000)
	checkAll("complete")
}

func TestInsertDuringMigrationGoesToNewConfig(t *testing.T) {
	ix, _ := populated(t, 50)
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	fresh := tuple.New(0, 999, 0, []tuple.Value{1, 2, 3})
	ix.Insert(fresh)
	// Complete the migration; the fresh tuple must not be moved again.
	st := Stats{}
	for {
		s, done := ix.MigrateStep(1 << 10)
		st.Add(s)
		if done {
			break
		}
	}
	if st.Tuples != 50 {
		t.Fatalf("migration moved %d tuples, want only the 50 old ones", st.Tuples)
	}
	found := false
	ix.Search(query.FullPattern(3), fresh.Attrs, func(x *tuple.Tuple) bool {
		found = found || x == fresh
		return true
	})
	if !found {
		t.Fatal("fresh tuple lost")
	}
}

func TestDeleteDuringMigration(t *testing.T) {
	ix, tuples := populated(t, 80)
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	ix.MigrateStep(40)
	// Delete a mix of moved and unmoved tuples.
	for i := 0; i < 20; i++ {
		if _, ok := ix.Delete(tuples[i*4]); !ok {
			t.Fatalf("delete of tuple %d failed mid-migration", i*4)
		}
	}
	if ix.Len() != 60 {
		t.Fatalf("Len = %d, want 60", ix.Len())
	}
	ix.MigrateStep(1 << 10)
	if ix.Len() != 60 {
		t.Fatalf("Len after drain = %d, want 60", ix.Len())
	}
}

func TestStopTheWorldMigrateFinishesIncremental(t *testing.T) {
	ix, tuples := populated(t, 60)
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	ix.MigrateStep(10)
	// A full Migrate while incremental is in flight must drain everything
	// and land every tuple in the final configuration.
	if _, err := ix.Migrate(NewConfig(3, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if ix.Migrating() {
		t.Fatal("no migration should remain")
	}
	if !ix.Config().Equal(NewConfig(3, 3, 0)) {
		t.Fatalf("config = %v", ix.Config())
	}
	for _, want := range tuples {
		found := false
		ix.Search(query.FullPattern(3), want.Attrs, func(x *tuple.Tuple) bool {
			if x == want {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("tuple %v lost", want)
		}
	}
}

func TestMemBytesIncludesOldDirectory(t *testing.T) {
	ix, _ := populated(t, 100)
	before := ix.MemBytes()
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	during := ix.MemBytes()
	if during <= before {
		t.Fatalf("migration should cost memory: %d vs %d", during, before)
	}
	ix.MigrateStep(1 << 10)
	after := ix.MemBytes()
	if after >= during {
		t.Fatalf("completing the migration should release the old directory: %d vs %d", after, during)
	}
}

// Property: at any migration progress, a search by any pattern over a
// random tuple's own attributes finds it.
func TestMigrationFindabilityProperty(t *testing.T) {
	f := func(seed uint64, stepPct uint8, pat uint8) bool {
		ix, err := New(NewConfig(5, 1, 0), []int{0, 1, 2}, nil)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, seed))
		var tuples []*tuple.Tuple
		for i := 0; i < 64; i++ {
			tp := tuple.New(0, uint64(i), 0, []tuple.Value{
				tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32))})
			tuples = append(tuples, tp)
			ix.Insert(tp)
		}
		if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
			return false
		}
		ix.MigrateStep(int(stepPct) % 65)
		target := tuples[seed%uint64(len(tuples))]
		p := query.Pattern(pat) & query.FullPattern(3)
		found := false
		ix.Search(p, target.Attrs, func(x *tuple.Tuple) bool {
			if x == target {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortMigrationRestoresOldDirectory: a fault mid-MigrateStep must
// leave the old directory authoritative — same configuration, same Len,
// every tuple findable, as if the migration never started.
func TestAbortMigrationRestoresOldDirectory(t *testing.T) {
	ix, tuples := populated(t, 120)
	oldCfg := ix.Config()
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	// Partially migrate and insert fresh tuples under the new config —
	// the abort must fold both back into the old directory.
	ix.MigrateStep(40)
	fresh := tuple.New(0, 5000, 0, []tuple.Value{7, 8, 9})
	ix.Insert(fresh)
	tuples = append(tuples, fresh)

	st, ok := ix.AbortMigration()
	if !ok {
		t.Fatal("abort of an in-flight migration reported nothing to abort")
	}
	if st.Tuples != 41 {
		t.Fatalf("abort relocated %d tuples, want the 40 moved + 1 fresh", st.Tuples)
	}
	if ix.Migrating() {
		t.Fatal("no migration should remain after abort")
	}
	if !ix.Config().Equal(oldCfg) {
		t.Fatalf("config = %v, want the pre-migration %v", ix.Config(), oldCfg)
	}
	if ix.Len() != len(tuples) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(tuples))
	}
	for _, want := range tuples {
		found := false
		ix.Search(query.FullPattern(3), want.Attrs, func(x *tuple.Tuple) bool {
			if x == want {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("tuple %v unfindable after abort", want)
		}
	}
	// The restored index must keep working: delete and re-insert.
	if _, ok := ix.Delete(tuples[3]); !ok {
		t.Fatal("delete failed after abort")
	}
	if ix.Len() != len(tuples)-1 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
}

func TestAbortMigrationNoOpWhenIdle(t *testing.T) {
	ix, _ := populated(t, 10)
	if st, ok := ix.AbortMigration(); ok || st.Tuples != 0 {
		t.Fatal("abort with no migration in flight must be a no-op")
	}
}

// TestAbortThenRestartMigration: after a rollback the index must accept a
// fresh migration and drain it to completion.
func TestAbortThenRestartMigration(t *testing.T) {
	ix, tuples := populated(t, 60)
	if err := ix.StartMigration(NewConfig(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	ix.MigrateStep(20)
	if _, ok := ix.AbortMigration(); !ok {
		t.Fatal("abort failed")
	}
	if err := ix.StartMigration(NewConfig(1, 2, 3)); err != nil {
		t.Fatalf("restart after abort: %v", err)
	}
	for {
		if _, done := ix.MigrateStep(16); done {
			break
		}
	}
	if !ix.Config().Equal(NewConfig(1, 2, 3)) {
		t.Fatalf("config = %v", ix.Config())
	}
	for _, want := range tuples {
		found := false
		ix.Search(query.FullPattern(3), want.Attrs, func(x *tuple.Tuple) bool {
			if x == want {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("tuple %v lost across abort+remigrate", want)
		}
	}
}

// TestMidMigrationStatsNoDoubleHash pins exact hash accounting while both
// directories are live: an attribute constrained by the pattern is hashed
// once per probe — its value does not depend on the configuration, so
// consulting the old AND the new layout must still charge a single C_h.
// The same invariant holds for deletes, which compute two bucket ids, and
// for the sharded index. A regression that hashes per directory doubles
// the probe cost the tuner feeds into the paper's Crq model.
func TestMidMigrationStatsNoDoubleHash(t *testing.T) {
	build := func() *Index {
		ix := mustNew(t, NewConfig(4, 4, 4), []int{0, 1, 2}, nil)
		for i := 0; i < 40; i++ {
			ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
				tuple.Value(i % 5), tuple.Value(i % 3), tuple.Value(i % 7),
			}))
		}
		if err := ix.StartMigration(NewConfig(6, 6, 0)); err != nil {
			t.Fatal(err)
		}
		ix.MigrateStep(15) // leave both directories populated
		return ix
	}

	vals := []tuple.Value{2, 1, 3}
	cases := []struct {
		p          query.Pattern
		wantHashes int
	}{
		// Attrs 0 and 1 are indexed under both configurations: one hash
		// each, never two.
		{query.PatternOf(0, 1), 2},
		// Attr 2 is indexed only under the old configuration: it is hashed
		// for the old probe and skipped (0 bits) by the new one.
		{query.PatternOf(0, 2), 2},
		{query.FullPattern(3), 3},
		{query.PatternOf(2), 1},
	}
	for _, c := range cases {
		ix := build()
		if !ix.Migrating() {
			t.Fatal("migration finished prematurely; shrink the step")
		}
		st := ix.Search(c.p, vals, func(*tuple.Tuple) bool { return true })
		if st.Hashes != c.wantHashes {
			t.Errorf("search %v: Hashes = %d, want %d", c.p, st.Hashes, c.wantHashes)
		}
	}

	// Deletes compute the tuple's bucket id under both layouts from three
	// attribute hashes — the memo must dedupe them too.
	ix := build()
	victim := tuple.New(0, 1000, 0, []tuple.Value{1, 1, 1})
	ix.Insert(victim)
	st, ok := ix.Delete(victim)
	if !ok {
		t.Fatal("delete failed")
	}
	if st.Hashes != 3 {
		t.Errorf("delete mid-migration: Hashes = %d, want 3", st.Hashes)
	}

	// Sharded twin of the same invariant.
	sx := mustNewSharded(t, NewConfig(4, 4, 4), []int{0, 1, 2}, nil, 8)
	for i := 0; i < 40; i++ {
		sx.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(i % 5), tuple.Value(i % 3), tuple.Value(i % 7),
		}))
	}
	if err := sx.StartMigration(NewConfig(6, 6, 0)); err != nil {
		t.Fatal(err)
	}
	sx.MigrateStep(15)
	if !sx.Migrating() {
		t.Fatal("sharded migration finished prematurely")
	}
	for _, c := range cases {
		st := sx.Search(c.p, vals, func(*tuple.Tuple) bool { return true })
		if st.Hashes != c.wantHashes {
			t.Errorf("sharded search %v: Hashes = %d, want %d", c.p, st.Hashes, c.wantHashes)
		}
	}
	svict := tuple.New(0, 1001, 0, []tuple.Value{1, 1, 1})
	sx.Insert(svict)
	sst, ok := sx.Delete(svict)
	if !ok {
		t.Fatal("sharded delete failed")
	}
	if sst.Hashes != 3 {
		t.Errorf("sharded delete mid-migration: Hashes = %d, want 3", sst.Hashes)
	}
}
