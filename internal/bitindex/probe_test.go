package bitindex

import (
	"math/rand/v2"
	"sort"
	"testing"

	"amri/internal/query"
	"amri/internal/tuple"
)

// matcherSeqs runs SearchMatch and returns the matched Seqs sorted, plus
// the stats.
func matcherSeqs(t *testing.T, ix interface {
	SearchMatch(query.Pattern, []tuple.Value, *Matcher, *SearchScratch, []*tuple.Tuple) (Stats, []*tuple.Tuple)
}, p query.Pattern, vals []tuple.Value, m *Matcher, ss *SearchScratch) ([]uint64, Stats) {
	t.Helper()
	st, out := ix.SearchMatch(p, vals, m, ss, nil)
	seqs := make([]uint64, 0, len(out))
	for _, x := range out {
		seqs = append(seqs, x.Seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, st
}

// visitSeqs runs the visit-based Search with the same filter applied in the
// callback — the reference SearchMatch must reproduce exactly.
func visitSeqs(ix interface {
	Search(query.Pattern, []tuple.Value, func(*tuple.Tuple) bool) Stats
}, p query.Pattern, vals []tuple.Value, m *Matcher) ([]uint64, Stats) {
	var seqs []uint64
	st := ix.Search(p, vals, func(x *tuple.Tuple) bool {
		if matchTuple(m, x) {
			seqs = append(seqs, x.Seq)
		}
		return true
	})
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, st
}

// TestSearchMatchEquivalence drives a flat Index and ShardedIndexes at
// several stripe counts through random inserts/deletes and asserts that
// SearchMatch returns exactly the tuples the visit-based Search + filter
// accepts, with identical Stats, across patterns, matcher settings, a
// mid-stream incremental migration, and both dense and sparse directories.
func TestSearchMatchEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name       string
		denseLimit int
	}{
		{"dense", DefaultDenseLimit},
		{"sparse", 0}, // force sparse directories everywhere
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(3, uint64(tc.denseLimit)))
			cfg := NewConfig(4, 3, 3)
			attrMap := []int{0, 1, 2}
			plain := mustNew(t, cfg, attrMap, nil, WithDenseLimit(tc.denseLimit))
			shardeds := map[int]*ShardedIndex{}
			for _, s := range []int{1, 4, 16} {
				shardeds[s] = mustNewSharded(t, cfg, attrMap, nil, s, WithDenseLimit(tc.denseLimit))
			}
			patterns := []query.Pattern{
				query.PatternOf(0), query.PatternOf(2), query.PatternOf(0, 1),
				query.PatternOf(1, 2), query.FullPattern(3),
			}
			var ss SearchScratch
			arrival := uint64(1)
			insert := func(n int) {
				for i := 0; i < n; i++ {
					tp := tuple.New(0, rng.Uint64(), int64(rng.Uint64N(64)), []tuple.Value{
						tuple.Value(rng.Uint64N(16)), tuple.Value(rng.Uint64N(16)), tuple.Value(rng.Uint64N(16)),
					})
					tp.Arrival = arrival
					arrival++
					plain.Insert(tp)
					for _, sx := range shardeds {
						sx.Insert(tp)
					}
				}
			}
			check := func(step string) {
				t.Helper()
				vals := []tuple.Value{
					tuple.Value(rng.Uint64N(16)), tuple.Value(rng.Uint64N(16)), tuple.Value(rng.Uint64N(16)),
				}
				matchers := []*Matcher{
					{}, // no filter
					{Driver: arrival / 2, MinTS: 20},
					{NEq: 1, EqAttr: [query.MaxAttrs]int{1}, EqVal: [query.MaxAttrs]tuple.Value{vals[1]}},
					{Driver: arrival, MinTS: 5, NEq: 2,
						EqAttr: [query.MaxAttrs]int{0, 2},
						EqVal:  [query.MaxAttrs]tuple.Value{vals[0], vals[2]}},
				}
				for _, p := range patterns {
					for mi, m := range matchers {
						wantSeqs, wantSt := visitSeqs(plain, p, vals, m)
						gotSeqs, gotSt := matcherSeqs(t, plain, p, vals, m, &ss)
						if !sameSeqs(wantSeqs, gotSeqs) {
							t.Fatalf("%s: flat matcher=%d pattern=%v: %v, want %v", step, mi, p, gotSeqs, wantSeqs)
						}
						if gotSt != wantSt {
							t.Fatalf("%s: flat matcher=%d pattern=%v: stats %+v, want %+v", step, mi, p, gotSt, wantSt)
						}
						for s, sx := range shardeds {
							refSeqs, refSt := visitSeqs(sx, p, vals, m)
							shSeqs, shSt := matcherSeqs(t, sx, p, vals, m, &ss)
							if !sameSeqs(refSeqs, shSeqs) {
								t.Fatalf("%s: shards=%d matcher=%d pattern=%v: %v, want %v", step, s, mi, p, shSeqs, refSeqs)
							}
							if shSt != refSt {
								t.Fatalf("%s: shards=%d matcher=%d pattern=%v: stats %+v, want %+v", step, s, mi, p, shSt, refSt)
							}
							// The sharded match set must also agree with the
							// flat index (same stored tuples).
							if !sameSeqs(wantSeqs, shSeqs) {
								t.Fatalf("%s: shards=%d matcher=%d pattern=%v: %v, want flat %v", step, s, mi, p, shSeqs, wantSeqs)
							}
						}
					}
				}
			}

			insert(300)
			check("loaded")

			// Mid-incremental-migration: start a migration on every sharded
			// index, advance it partially, and require equivalence while both
			// directories hold tuples.
			next := NewConfig(2, 2, 6)
			for s, sx := range shardeds {
				if err := sx.StartMigration(next); err != nil {
					t.Fatalf("shards=%d: StartMigration: %v", s, err)
				}
				sx.MigrateStep(40)
				if !sx.Migrating() {
					t.Fatalf("shards=%d: migration finished too early for the test", s)
				}
			}
			if _, err := plain.Migrate(next); err != nil {
				t.Fatal(err)
			}
			// Mid-drain, candidate supersets legitimately differ between a
			// fully-migrated flat index and a partially drained sharded one
			// (the two geometries admit different hash false positives), so
			// only the SearchMatch-vs-Search equality within each index is
			// asserted — match sets and Stats both exact.
			vals := []tuple.Value{3, 5, 7}
			m := &Matcher{Driver: arrival, MinTS: 10}
			for _, p := range patterns {
				for s, sx := range shardeds {
					refSeqs, refSt := visitSeqs(sx, p, vals, m)
					shSeqs, shSt := matcherSeqs(t, sx, p, vals, m, &ss)
					if !sameSeqs(refSeqs, shSeqs) {
						t.Fatalf("mid-migration: shards=%d pattern=%v: %v, want %v", s, p, shSeqs, refSeqs)
					}
					if shSt != refSt {
						t.Fatalf("mid-migration: shards=%d pattern=%v: stats %+v, want %+v", s, p, shSt, refSt)
					}
				}
			}
			for _, sx := range shardeds {
				for {
					if _, done := sx.MigrateStep(64); done {
						break
					}
				}
			}
			insert(100)
			check("post-migration")
		})
	}
}

// TestDenseDirOccupancyBitmap pins the occupancy bitmap against the slice
// state through put/remove cycles.
func TestDenseDirOccupancyBitmap(t *testing.T) {
	d := newDirectoryBits(8, DefaultDenseLimit).(*denseDir)
	tps := make([]*tuple.Tuple, 6)
	for i := range tps {
		tps[i] = tuple.New(0, uint64(i), 0, []tuple.Value{1})
	}
	d.put(5, tps[0])
	d.put(5, tps[1])
	d.put(200, tps[2])
	for id := uint64(0); id < 256; id++ {
		want := len(d.buckets[id]) > 0
		if d.has(id) != want {
			t.Fatalf("after puts: has(%d) = %v, want %v", id, d.has(id), want)
		}
	}
	d.remove(5, tps[0])
	if !d.has(5) {
		t.Fatal("bucket 5 still holds a tuple, bitmap cleared early")
	}
	d.remove(5, tps[1])
	if d.has(5) {
		t.Fatal("bucket 5 empty, bitmap still set")
	}
	if !d.has(200) {
		t.Fatal("bucket 200 lost its bit")
	}
	d.remove(200, tps[2])
	for id := uint64(0); id < 256; id++ {
		if d.has(id) {
			t.Fatalf("drained directory: has(%d) = true", id)
		}
	}
}
