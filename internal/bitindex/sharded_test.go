package bitindex

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"amri/internal/query"
	"amri/internal/tuple"
)

func mustNewSharded(t *testing.T, cfg Config, attrMap []int, h Hasher, shards int, opts ...Option) *ShardedIndex {
	t.Helper()
	ix, err := NewSharded(cfg, attrMap, h, shards, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewShardedValidates(t *testing.T) {
	cfg := NewConfig(4, 4)
	for _, bad := range []int{0, -1, 3, 5, 6, 512} {
		if _, err := NewSharded(cfg, []int{0, 1}, nil, bad); err == nil {
			t.Errorf("shard count %d accepted", bad)
		}
	}
	for _, good := range []int{1, 2, 4, 8, 256} {
		if _, err := NewSharded(cfg, []int{0, 1}, nil, good); err != nil {
			t.Errorf("shard count %d rejected: %v", good, err)
		}
	}
	if _, err := NewSharded(NewConfig(40, 40), []int{0, 1}, nil, 4); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestShardedPaperExample reruns the §III worked example on a sharded
// index: identical bucket accounting (4 buckets for the wildcard span, 2
// hashes) regardless of how many shards the directory is striped over.
func TestShardedPaperExample(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		cfg := NewConfig(5, 2, 3)
		ix := mustNewSharded(t, cfg, []int{0, 1, 2}, IdentityHasher, shards)
		tp := tuple.New(0, 1, 0, []tuple.Value{0b00111, 0b11, 0b010})
		ix.Insert(tp)
		var visited []*tuple.Tuple
		st := ix.Search(query.PatternOf(0, 2), []tuple.Value{0b00111, 0, 0b010}, func(x *tuple.Tuple) bool {
			visited = append(visited, x)
			return true
		})
		if st.Buckets != 4 {
			t.Errorf("shards=%d: buckets = %d, want 4", shards, st.Buckets)
		}
		if st.Hashes != 2 {
			t.Errorf("shards=%d: hashes = %d, want 2", shards, st.Hashes)
		}
		if len(visited) != 1 || visited[0] != tp {
			t.Errorf("shards=%d: visited = %v", shards, visited)
		}
	}
}

func collectSeqs(st *Stats, ix interface {
	Search(query.Pattern, []tuple.Value, func(*tuple.Tuple) bool) Stats
}, p query.Pattern, vals []tuple.Value) []uint64 {
	var seqs []uint64
	got := ix.Search(p, vals, func(x *tuple.Tuple) bool {
		seqs = append(seqs, x.Seq)
		return true
	})
	if st != nil {
		*st = got
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

func sameSeqs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedMatchesPlain drives a plain Index and ShardedIndexes at
// several stripe counts through the same random operation sequence —
// inserts, deletes, searches, a mid-stream incremental migration with
// partial steps, an abort, and a full Migrate — asserting identical match
// sets and identical Stats at every probe. Dense directories on both sides
// make the bucket accounting exactly comparable: every probe enumerates
// the same wildcard span whether it is striped or not.
func TestShardedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	cfgA := NewConfig(4, 3, 3) // 10 bits
	cfgB := NewConfig(2, 5, 0) // 7 bits, attr 2 unindexed
	attrMap := []int{0, 1, 2}

	plain := mustNew(t, cfgA, attrMap, nil)
	shardeds := map[int]*ShardedIndex{}
	for _, s := range []int{1, 4, 16} {
		shardeds[s] = mustNewSharded(t, cfgA, attrMap, nil, s)
	}

	var live []*tuple.Tuple
	patterns := []query.Pattern{
		query.PatternOf(0), query.PatternOf(1), query.PatternOf(2),
		query.PatternOf(0, 1), query.PatternOf(0, 2), query.PatternOf(1, 2),
		query.FullPattern(3),
	}

	check := func(step string) {
		t.Helper()
		if plain.Len() == 0 && len(live) != 0 {
			t.Fatalf("%s: bookkeeping bug in test", step)
		}
		vals := []tuple.Value{
			tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)),
		}
		for _, p := range patterns {
			var pst Stats
			want := collectSeqs(&pst, plain, p, vals)
			for s, sx := range shardeds {
				var sst Stats
				got := collectSeqs(&sst, sx, p, vals)
				if !sameSeqs(want, got) {
					t.Fatalf("%s: shards=%d pattern=%v: matches %v, want %v", step, s, p, got, want)
				}
				if sst != pst {
					t.Fatalf("%s: shards=%d pattern=%v: stats %+v, want %+v", step, s, p, sst, pst)
				}
			}
		}
	}

	apply := func(op func(interface {
		Insert(*tuple.Tuple) Stats
		Delete(*tuple.Tuple) (Stats, bool)
	})) {
		op(plain)
		for _, sx := range shardeds {
			op(sx)
		}
	}

	mutate := func(n int) {
		for i := 0; i < n; i++ {
			if len(live) > 0 && rng.Uint64N(4) == 0 {
				j := int(rng.Uint64N(uint64(len(live))))
				victim := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				apply(func(ix interface {
					Insert(*tuple.Tuple) Stats
					Delete(*tuple.Tuple) (Stats, bool)
				}) {
					if _, ok := ix.Delete(victim); !ok {
						t.Fatalf("delete of live tuple failed")
					}
				})
				continue
			}
			tp := tuple.New(0, rng.Uint64(), 0, []tuple.Value{
				tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)),
			})
			live = append(live, tp)
			apply(func(ix interface {
				Insert(*tuple.Tuple) Stats
				Delete(*tuple.Tuple) (Stats, bool)
			}) {
				ix.Insert(tp)
			})
		}
	}

	// checkVerified compares predicate-verified matches only: mid-drain the
	// two implementations relocate different tuples first, so the raw
	// candidate supersets may differ while the true matches must not.
	checkVerified := func(step string) {
		t.Helper()
		vals := []tuple.Value{
			tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)), tuple.Value(rng.Uint64N(32)),
		}
		verify := func(p query.Pattern, x *tuple.Tuple) bool {
			for i := 0; i < 3; i++ {
				if p.Has(i) && x.Attrs[i] != vals[i] {
					return false
				}
			}
			return true
		}
		for _, p := range patterns {
			var want []uint64
			plain.Search(p, vals, func(x *tuple.Tuple) bool {
				if verify(p, x) {
					want = append(want, x.Seq)
				}
				return true
			})
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for s, sx := range shardeds {
				var got []uint64
				sx.Search(p, vals, func(x *tuple.Tuple) bool {
					if verify(p, x) {
						got = append(got, x.Seq)
					}
					return true
				})
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if !sameSeqs(want, got) {
					t.Fatalf("%s: shards=%d pattern=%v: verified matches %v, want %v", step, s, p, got, want)
				}
			}
		}
	}

	mutate(300)
	check("warm")

	// Incremental migration to cfgB, probed while partially drained.
	if err := plain.StartMigration(cfgB); err != nil {
		t.Fatal(err)
	}
	for _, sx := range shardeds {
		if err := sx.StartMigration(cfgB); err != nil {
			t.Fatal(err)
		}
	}
	check("migration started")
	mutate(60)
	check("mid-migration mutations")
	plain.MigrateStep(100)
	for _, sx := range shardeds {
		sx.MigrateStep(100)
	}
	checkVerified("partial drain")

	// Abort: both sides must land back on cfgA with identical contents.
	if _, ok := plain.AbortMigration(); !ok {
		t.Fatal("plain abort failed")
	}
	for _, sx := range shardeds {
		if _, ok := sx.AbortMigration(); !ok {
			t.Fatal("sharded abort failed")
		}
		if !sx.Config().Equal(cfgA) {
			t.Fatalf("post-abort config = %v, want %v", sx.Config(), cfgA)
		}
	}
	check("aborted")

	// Full migrate to cfgB and drain-to-completion equivalence.
	if _, err := plain.Migrate(cfgB); err != nil {
		t.Fatal(err)
	}
	for s, sx := range shardeds {
		if _, err := sx.Migrate(cfgB); err != nil {
			t.Fatal(err)
		}
		if sx.Migrating() {
			t.Fatalf("shards=%d still migrating after Migrate", s)
		}
		if sx.Len() != plain.Len() {
			t.Fatalf("shards=%d Len = %d, want %d", s, sx.Len(), plain.Len())
		}
	}
	check("full migrate")
	mutate(100)
	check("post-migrate mutations")
}

// TestShardedIncrementalDrain pins the shard-local drain mechanics:
// bounded steps report not-done until the old shards empty, Len is
// preserved throughout, and mid-drain searches see every tuple exactly
// once.
func TestShardedIncrementalDrain(t *testing.T) {
	cfg := NewConfig(5, 5)
	ix := mustNewSharded(t, cfg, []int{0, 1}, nil, 8)
	const n = 200
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(i % 13), tuple.Value(i % 7),
		}))
	}
	if err := ix.StartMigration(NewConfig(2, 8)); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		st, done := ix.MigrateStep(16)
		steps++
		if st.Tuples > 16 {
			t.Fatalf("step moved %d tuples, budget 16", st.Tuples)
		}
		if ix.Len() != n {
			t.Fatalf("Len = %d mid-drain, want %d", ix.Len(), n)
		}
		// A full wildcard scan must see each tuple exactly once, no matter
		// how the population is split across old and new shards.
		count := 0
		for k := range seen {
			delete(seen, k)
		}
		ix.Search(query.Pattern(0), nil, func(x *tuple.Tuple) bool {
			if seen[x.Seq] {
				t.Fatalf("tuple %d visited twice mid-drain", x.Seq)
			}
			seen[x.Seq] = true
			count++
			return true
		})
		if count != n {
			t.Fatalf("mid-drain scan saw %d tuples, want %d", count, n)
		}
		if done {
			break
		}
	}
	if got := (n + 15) / 16; steps < got {
		t.Fatalf("drained in %d steps, expected at least %d", steps, got)
	}
	if ix.Migrating() {
		t.Fatal("still migrating after done")
	}
}

// TestShardedConcurrentOps exercises concurrent inserts, searches, deletes
// and an interleaved migration lifecycle; run under -race this is the
// shard-safety gate. Every writer owns a disjoint key range so the final
// count is deterministic.
func TestShardedConcurrentOps(t *testing.T) {
	cfg := NewConfig(6, 6)
	ix := mustNewSharded(t, cfg, []int{0, 1}, nil, 8)
	const (
		writers = 4
		perW    = 150
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tuples := make([]*tuple.Tuple, 0, perW)
			for i := 0; i < perW; i++ {
				tp := tuple.New(w, uint64(w*perW+i), 0, []tuple.Value{
					tuple.Value(i % 9), tuple.Value(w),
				})
				tuples = append(tuples, tp)
				ix.Insert(tp)
				if i%3 == 0 {
					ix.Search(query.PatternOf(1), []tuple.Value{0, tuple.Value(w)}, func(x *tuple.Tuple) bool { return true })
				}
			}
			for _, tp := range tuples[:perW/2] {
				if _, ok := ix.Delete(tp); !ok {
					t.Errorf("concurrent delete lost tuple %d", tp.Seq)
				}
			}
		}(w)
	}
	// Migration churn interleaved with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfgs := []Config{NewConfig(3, 9), NewConfig(8, 4), NewConfig(6, 6)}
		for i, c := range cfgs {
			if err := ix.StartMigration(c); err != nil {
				continue
			}
			for j := 0; j < 4; j++ {
				if _, done := ix.MigrateStep(32); done {
					break
				}
			}
			if i%2 == 0 {
				ix.AbortMigration()
			}
		}
	}()
	wg.Wait()
	for {
		if _, done := ix.MigrateStep(1 << 16); done {
			break
		}
	}
	want := writers * perW / 2
	if ix.Len() != want {
		t.Fatalf("Len = %d after concurrent run, want %d", ix.Len(), want)
	}
	count := 0
	ix.Search(query.Pattern(0), nil, func(x *tuple.Tuple) bool { count++; return true })
	if count != want {
		t.Fatalf("full scan saw %d, want %d", count, want)
	}
}

// TestShardedSparseShards forces the sparse directory path (wide local id
// space) and checks the per-shard enumerate-versus-masked-scan decision
// still yields exact results.
func TestShardedSparseShards(t *testing.T) {
	cfg := NewConfig(20, 20) // 40 bits: sparse shards at any stripe count
	ix := mustNewSharded(t, cfg, []int{0, 1}, nil, 4)
	var want []uint64
	for i := 0; i < 500; i++ {
		tp := tuple.New(0, uint64(i), 0, []tuple.Value{
			tuple.Value(i % 11), tuple.Value(i),
		})
		ix.Insert(tp)
		if i%11 == 4 {
			want = append(want, uint64(i))
		}
	}
	var got []uint64
	st := ix.Search(query.PatternOf(0), []tuple.Value{4, 0}, func(x *tuple.Tuple) bool {
		if x.Attrs[0] == 4 {
			got = append(got, x.Seq)
		}
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !sameSeqs(want, got) {
		t.Fatalf("sparse search matches = %v, want %v", got, want)
	}
	if st.DirScans == 0 {
		t.Fatal("expected masked directory scans on a 20-bit wildcard span")
	}
	if st.Hashes != 1 {
		t.Fatalf("hashes = %d, want 1", st.Hashes)
	}
}

// TestShardedEarlyStop verifies visitor early-exit crosses shard
// boundaries: once the visitor returns false no further shard is probed.
func TestShardedEarlyStop(t *testing.T) {
	ix := mustNewSharded(t, NewConfig(4), []int{0}, nil, 8)
	for i := 0; i < 64; i++ {
		ix.Insert(tuple.New(0, uint64(i), 0, []tuple.Value{tuple.Value(i % 16)}))
	}
	n := 0
	ix.Search(query.Pattern(0), nil, func(x *tuple.Tuple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}
