package bitindex

import (
	"amri/internal/query"
	"amri/internal/tuple"
)

// This file implements the match-collecting probe fast path. Search visits
// candidates through a per-tuple callback, which the hot probe loop pays
// for twice: an indirect call per candidate and a closure environment the
// caller must allocate or keep live. SearchMatch instead takes a Matcher —
// the standard stream-join candidate filter (exactly-once driver stamp,
// event-time window, join-attribute equality) — and applies it inline while
// scanning, appending survivors to a caller-owned slice. Stats accounting
// is identical to Search, entry for entry: both paths charge the same
// hashes, enumerate the same bucket ids and scan the same candidates, so
// the cost model and its tests see no difference.

// Matcher is the inline candidate filter of one probe. Zero Driver disables
// the driver-stamp and window tests (a probe with no driver context); the
// equality conditions always apply.
type Matcher struct {
	// Driver is the driving tuple's arrival stamp: candidates with
	// Arrival >= Driver are rejected (exactly-once — only the newest
	// member of a result drives it).
	Driver uint64
	// MinTS is the driver's event-time window floor: candidates with
	// TS <= MinTS are rejected.
	MinTS int64
	// The first NEq entries of EqAttr/EqVal are the equality conditions:
	// a candidate must satisfy Attrs[EqAttr[k]] == EqVal[k] for all k.
	NEq    int
	EqAttr [query.MaxAttrs]int
	EqVal  [query.MaxAttrs]tuple.Value
}

// SearchScratch carries per-caller reusable buffers for SearchMatch, so a
// probe worker re-probing shard after shard (or probe after probe) never
// reallocates its enumeration scratch. It also caches spread tables: the
// wildcard enumeration spread(0..span) depends only on the pattern and the
// live epoch's geometry — not on the probe's values — so across the
// thousands of probes between retunes it is the same table, and recomputing
// it per probe was measurable (bit-interleaving per id on the hot path).
type SearchScratch struct {
	ids  []uint64
	tabs []spreadTab
}

// spreadTab is one cached wildcard spread table: the enumeration for one
// pattern under one epoch generation. Generations are process-wide unique
// (epochGen), so a (pat, gen) pair can never mean two different geometries
// even though one scratch serves every operator's index.
type spreadTab struct {
	pat query.Pattern
	gen uint64
	tbl []uint64
}

// spreadTable returns spread(c) for c in [0, span) under the plan, cached
// per (pattern, epoch generation). gen must be read under the index lock
// the caller already holds. A full cache is flushed wholesale: entries with
// dead generations are the common overflow cause (retunes), and a flush
// costs one rebuild per live pattern.
func (ss *SearchScratch) spreadTable(pat query.Pattern, gen uint64, pl *shardPlan, span uint64) []uint64 {
	for i := range ss.tabs {
		if ss.tabs[i].pat == pat && ss.tabs[i].gen == gen {
			return ss.tabs[i].tbl
		}
	}
	//amrivet:ignore[hotalloc] cache-miss build path: one allocation per (pattern, epoch), amortized to zero over the thousands of probes between retunes
	tbl := make([]uint64, span)
	for c := uint64(0); c < span; c++ {
		tbl[c] = pl.spread(c)
	}
	if len(ss.tabs) >= maxSpreadTabs {
		ss.tabs = ss.tabs[:0]
	}
	ss.tabs = append(ss.tabs, spreadTab{pat: pat, gen: gen, tbl: tbl})
	return tbl
}

// maxSharedSpan caps the wildcard span SearchMatch materializes into the
// scratch id list for reuse across shards; wider spans enumerate per shard
// (the flat-index behaviour) to bound scratch memory.
const maxSharedSpan = 1 << 16

// maxCachedSpan bounds the spans worth caching in a SearchScratch spread
// table (32 KiB per table); maxSpreadTabs bounds how many distinct patterns
// one scratch holds before new ones stop being cached (workloads have a
// handful of live patterns — an overflow means churn, not working set).
const (
	maxCachedSpan = 1 << 12
	maxSpreadTabs = 64
)

// scanBucketMatch is scanBucket with the Matcher applied inline: same
// Stats.Tuples accounting (every candidate is charged, bulk-added up
// front), no per-candidate indirect call. The single-equality case — the
// overwhelmingly common probe shape, one join predicate per hop — gets its
// own loop with the condition hoisted into locals; the general loop serves
// the rest.
func scanBucketMatch(b []*tuple.Tuple, st *Stats, m *Matcher, out []*tuple.Tuple) []*tuple.Tuple {
	st.Tuples += len(b)
	drv, minTS := m.Driver, m.MinTS
	if drv != 0 {
		switch m.NEq {
		case 1:
			a0, v0 := m.EqAttr[0], m.EqVal[0]
			for _, x := range b {
				if x.Arrival >= drv || x.TS <= minTS || x.Attrs[a0] != v0 {
					continue
				}
				out = append(out, x) //amrivet:ignore[hotalloc] appends into the caller's receiver-attached scratch, returned for reslice-reuse
			}
			return out
		case 2:
			a0, v0 := m.EqAttr[0], m.EqVal[0]
			a1, v1 := m.EqAttr[1], m.EqVal[1]
			for _, x := range b {
				if x.Arrival >= drv || x.TS <= minTS || x.Attrs[a0] != v0 || x.Attrs[a1] != v1 {
					continue
				}
				out = append(out, x) //amrivet:ignore[hotalloc] appends into the caller's receiver-attached scratch, returned for reslice-reuse
			}
			return out
		}
	}
	neq := m.NEq
	for _, x := range b {
		if drv != 0 && (x.Arrival >= drv || x.TS <= minTS) {
			continue
		}
		ok := true
		for k := 0; k < neq; k++ {
			if x.Attrs[m.EqAttr[k]] != m.EqVal[k] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, x) //amrivet:ignore[hotalloc] appends into the caller's receiver-attached scratch, returned for reslice-reuse
		}
	}
	return out
}

// matchTuple applies the Matcher to one candidate (the slow-path twin of
// scanBucketMatch's inline filter, for the visit-based migration fallback).
func matchTuple(m *Matcher, x *tuple.Tuple) bool {
	if m.Driver != 0 && (x.Arrival >= m.Driver || x.TS <= m.MinTS) {
		return false
	}
	for k := 0; k < m.NEq; k++ {
		if x.Attrs[m.EqAttr[k]] != m.EqVal[k] {
			return false
		}
	}
	return true
}

// SearchMatch is Search with the candidate filter applied inline: it scans
// the buckets the access pattern addresses, appends the tuples accepted by
// the Matcher to out, and returns the (Search-identical) work stats plus
// the extended slice. out's backing array is reused; pass out[:0] of a
// caller-owned scratch slice.
//
//amrivet:hotpath match-collecting bucket-span scan, the innermost per-probe loop
func (ix *Index) SearchMatch(p query.Pattern, vals []tuple.Value, m *Matcher, _ *SearchScratch, out []*tuple.Tuple) (Stats, []*tuple.Tuple) {
	if ix.mig != nil {
		return ix.searchMatchMigrating(p, vals, m, out)
	}
	var st Stats
	var base uint64
	ix.wildFields = ix.wildFields[:0]
	wildBits := 0
	for i, bits := range ix.cfg.Bits {
		if bits == 0 {
			continue
		}
		if p.Has(i) {
			h := ix.hasher(i, vals[i])
			base |= ix.lay.fieldOf(i, h, bits)
			st.Hashes++
		} else {
			ix.wildFields = append(ix.wildFields, wildField{shift: ix.lay.shift[i], bits: bits})
			wildBits += int(bits)
		}
	}

	dd, dense := ix.dir.(*denseDir)
	enumerate := true
	if !dense {
		if wildBits >= 63 || (1<<uint(wildBits)) > uint64(ix.dir.occupied()) {
			enumerate = false
		}
	}

	if enumerate {
		span := uint64(1) << uint(wildBits)
		if dense {
			for c := uint64(0); c < span; c++ {
				id := base | ix.spread(c)
				st.Buckets++
				if !dd.has(id) {
					continue
				}
				out = scanBucketMatch(dd.buckets[id], &st, m, out)
			}
			return st, out
		}
		for c := uint64(0); c < span; c++ {
			id := base | ix.spread(c)
			st.Buckets++
			out = scanBucketMatch(ix.dir.bucket(id), &st, m, out)
		}
		return st, out
	}

	mst, out := searchMatchMasked(ix.dir, ix.lay.patternMask(p), base, m, out)
	st.DirScans += mst.DirScans
	st.Buckets += mst.Buckets
	st.Tuples += mst.Tuples
	return st, out
}

// searchMatchMigrating serves SearchMatch's rare dual-directory migration
// window through the visit-based path. It lives in its own function so the
// closure's captures are boxed only when a migration is actually in flight —
// inlined into SearchMatch they forced `out` onto the heap on every probe.
func (ix *Index) searchMatchMigrating(p query.Pattern, vals []tuple.Value, m *Matcher, out []*tuple.Tuple) (Stats, []*tuple.Tuple) {
	st := ix.searchMigrating(p, vals, func(x *tuple.Tuple) bool {
		if matchTuple(m, x) {
			out = append(out, x)
		}
		return true
	})
	return st, out
}

// searchMatchMasked is the full-directory masked scan shared by the flat and
// sharded non-enumerating fallbacks (wildcard span wider than the occupied
// slot count). Separated for the same escape reason as searchMatchMigrating:
// the forEach closure boxes what it captures, so it must capture locals of a
// cold function, not the hot probe loop's accumulators.
func searchMatchMasked(d directory, mask, base uint64, m *Matcher, out []*tuple.Tuple) (Stats, []*tuple.Tuple) {
	var st Stats
	want := base & mask
	d.forEach(func(id uint64, b []*tuple.Tuple) bool {
		st.DirScans++
		if id&mask != want {
			return true
		}
		st.Buckets++
		out = scanBucketMatch(b, &st, m, out)
		return true
	})
	return st, out
}

// probeShardDirMatch is probeShardDir with the Matcher applied inline. ids,
// when non-nil, is the epoch's pre-enumerated local bucket-id list (base
// bits included) — the enumeration is identical for every shard of one
// epoch, so the caller computes it once and each shard only tests occupancy
// and scans. A nil ids enumerates per shard (migration's old epoch, or a
// span too wide to materialize). Stats accounting matches probeShardDir
// entry for entry.
func probeShardDirMatch(d directory, e epoch, pl *shardPlan, ids []uint64, st *Stats, m *Matcher, out []*tuple.Tuple) []*tuple.Tuple {
	enumerate := true
	if _, sparse := d.(*sparseDir); sparse {
		if pl.wildBits >= 63 || (1<<uint(pl.wildBits)) > uint64(d.occupied()) {
			enumerate = false
		}
	}
	if enumerate {
		if dd, dense := d.(*denseDir); dense {
			if ids != nil {
				for _, id := range ids {
					st.Buckets++
					if !dd.has(id) {
						continue
					}
					out = scanBucketMatch(dd.buckets[id], st, m, out)
				}
				return out
			}
			localBase := pl.base & e.localMask()
			span := uint64(1) << uint(pl.wildBits)
			for c := uint64(0); c < span; c++ {
				id := localBase | pl.spread(c)
				st.Buckets++
				if !dd.has(id) {
					continue
				}
				out = scanBucketMatch(dd.buckets[id], st, m, out)
			}
			return out
		}
		if ids != nil {
			for _, id := range ids {
				st.Buckets++
				out = scanBucketMatch(d.bucket(id), st, m, out)
			}
			return out
		}
		localBase := pl.base & e.localMask()
		span := uint64(1) << uint(pl.wildBits)
		for c := uint64(0); c < span; c++ {
			id := localBase | pl.spread(c)
			st.Buckets++
			out = scanBucketMatch(d.bucket(id), st, m, out)
		}
		return out
	}
	lmask := pl.mask & e.localMask()
	mst, out := searchMatchMasked(d, lmask, pl.base&e.localMask(), m, out)
	st.DirScans += mst.DirScans
	st.Buckets += mst.Buckets
	st.Tuples += mst.Tuples
	return out
}

// SearchMatch is the sharded twin of Index.SearchMatch: identical Stats
// accounting to ShardedIndex.Search, with the candidate filter inline and
// the wildcard enumeration computed once per epoch instead of once per
// shard (every shard of an epoch enumerates the same local ids — only the
// high shard-selecting bits differ, and those pick which shards are
// visited, not which local buckets).
//
//amrivet:hotpath concurrent match-collecting scan with per-shard fan-out
func (ix *ShardedIndex) SearchMatch(p query.Pattern, vals []tuple.Value, m *Matcher, ss *SearchScratch, out []*tuple.Tuple) (Stats, []*tuple.Tuple) {
	var st Stats
	var hm hashMemo
	var pl shardPlan
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if mg := ix.mig; mg != nil {
		// Old shards first, per-shard enumeration (the old epoch's geometry
		// is transient; not worth a shared id list).
		buildShardPlan(mg.old, ix.hasher, &hm, p, vals, &st, &pl)
		hiMask := pl.mask &^ mg.old.localMask()
		hiWant := pl.base & hiMask
		for k := 0; k < mg.old.n; k++ {
			if (uint64(k)<<mg.old.localBits)&hiMask != hiWant {
				continue
			}
			os := &mg.shards[k]
			//amrivet:lockhold old-shard read lock nests inside the epoch read lock by design (lock DAG, DESIGN.md §10)
			os.mu.RLock()
			//amrivet:lockhold old-shard read lock nests inside the epoch read lock by design: probes scan a draining migration's slices one stripe at a time (lock DAG, DESIGN.md §10)
			out = probeShardDirMatch(os.dir, mg.old, &pl, nil, &st, m, out)
			os.mu.RUnlock()
		}
	}
	buildShardPlan(ix.live, ix.hasher, &hm, p, vals, &st, &pl)
	var ids []uint64
	if span := uint64(1) << uint(pl.wildBits); pl.wildBits < 63 && span <= maxSharedSpan && ss != nil {
		localBase := pl.base & ix.live.localMask()
		ids = ss.ids[:0]
		if span <= maxCachedSpan {
			//amrivet:lockhold spread-table lookup under the epoch read lock: gen is only stable while mu is held, and the build path amortizes to zero across the epoch
			for _, s := range ss.spreadTable(p, ix.gen, &pl, span) {
				//amrivet:ignore[hotalloc,lockhold] append into the worker's SearchScratch id list (receiver-attached via ss), resliced across probes
				ids = append(ids, localBase|s)
			}
		} else {
			for c := uint64(0); c < span; c++ {
				//amrivet:ignore[hotalloc,lockhold] append into the worker's SearchScratch id list (receiver-attached via ss), resliced across probes
				ids = append(ids, localBase|pl.spread(c))
			}
		}
		ss.ids = ids
	}
	hiMask := pl.mask &^ ix.live.localMask()
	hiWant := pl.base & hiMask
	for k := 0; k < ix.live.n; k++ {
		if (uint64(k)<<ix.live.localBits)&hiMask != hiWant {
			continue
		}
		sh := &ix.shards[k]
		//amrivet:lockhold stripe read lock nests inside the epoch read lock by design (lock DAG, DESIGN.md §10)
		sh.mu.RLock()
		//amrivet:lockhold stripe read lock nests inside the epoch read lock by design: concurrent probes of disjoint stripes proceed in parallel (lock DAG, DESIGN.md §10)
		out = probeShardDirMatch(sh.dir, ix.live, &pl, ids, &st, m, out)
		sh.mu.RUnlock()
	}
	return st, out
}

// ShardOf returns the live-epoch shard the tuple's bucket id routes to —
// the partition key for shard-affine batched inserts. The hash work is not
// charged to any Stats: partition routing is dispatch bookkeeping, and the
// insert itself pays the modeled maintenance cost.
func (ix *ShardedIndex) ShardOf(t *tuple.Tuple) int {
	var st Stats
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id := shardBucketID(ix.hasher, ix.attrMap, ix.live, t, &st)
	return ix.live.shardOf(id)
}
