package hh

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkLossyObserve(b *testing.B) {
	c, _ := NewLossyCounter[uint32](0.01)
	rng := rand.New(rand.NewPCG(1, 1))
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = rng.Uint32N(1 << 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(keys[i%len(keys)])
	}
}

func BenchmarkHHHObserve(b *testing.B) {
	c, _ := NewHierarchicalCounter(0.01, benchHierarchy(), RollupHighestCount, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = rng.Uint32N(1 << 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(keys[i%len(keys)])
	}
}

func BenchmarkHHHResult(b *testing.B) {
	c, _ := NewHierarchicalCounter(0.01, benchHierarchy(), RollupHighestCount, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 50000; i++ {
		c.Observe(rng.Uint32N(1 << 7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.Result(0.05); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkMisraGriesObserve(b *testing.B) {
	m, _ := NewMisraGries[uint32](64)
	rng := rand.New(rand.NewPCG(1, 1))
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = rng.Uint32N(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(keys[i%len(keys)])
	}
}

func benchHierarchy() Hierarchy[uint32] {
	return maskHierarchy(7)
}
