package hh

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMisraGriesValidation(t *testing.T) {
	if _, err := NewMisraGries[int](1); err == nil {
		t.Fatal("k=1 should fail")
	}
	if _, err := NewMisraGries[int](2); err != nil {
		t.Fatal(err)
	}
}

func TestMisraGriesCounterBound(t *testing.T) {
	m, _ := NewMisraGries[int](10)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 10000; i++ {
		m.Observe(int(rng.Uint64N(1000)))
		if m.Len() >= 10 {
			t.Fatalf("tracked %d keys, bound is k-1=9", m.Len())
		}
	}
}

func TestMisraGriesMajority(t *testing.T) {
	// k=2 is the classic majority-element algorithm.
	m, _ := NewMisraGries[string](2)
	seq := []string{"a", "b", "a", "c", "a", "d", "a", "a"}
	for _, s := range seq {
		m.Observe(s)
	}
	if _, ok := m.Count("a"); !ok {
		t.Fatal("majority element lost")
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	// Any key with frequency > 1/k must survive; undercount <= n/k.
	const k = 20
	m, _ := NewMisraGries[int](k)
	rng := rand.New(rand.NewPCG(2, 2))
	exact := map[int]uint64{}
	const n = 50000
	for i := 0; i < n; i++ {
		var key int
		if rng.Float64() < 0.3 {
			key = -1 // heavy: 30% >> 1/20
		} else {
			key = int(rng.Uint64N(10000))
		}
		exact[key]++
		m.Observe(key)
	}
	c, ok := m.Count(-1)
	if !ok {
		t.Fatal("heavy key lost")
	}
	if exact[-1]-c > n/k {
		t.Fatalf("undercount %d exceeds n/k = %d", exact[-1]-c, n/k)
	}
	// The heavy key must be reported at any reasonable threshold.
	found := false
	for _, r := range m.Result(0.2) {
		if r.Key == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("heavy key not reported")
	}
}

func TestMisraGriesReset(t *testing.T) {
	m, _ := NewMisraGries[int](5)
	for i := 0; i < 100; i++ {
		m.Observe(i % 3)
	}
	m.Reset()
	if m.N() != 0 || m.Len() != 0 {
		t.Fatal("Reset incomplete")
	}
	if m.Result(0.1) != nil {
		t.Fatal("Result after reset should be nil")
	}
}

// Property: tracked counts never exceed true counts (MG only undercounts).
func TestMisraGriesNeverOvercounts(t *testing.T) {
	f := func(seq []uint8, k8 uint8) bool {
		k := int(k8%10) + 2
		m, _ := NewMisraGries[uint8](k)
		exact := map[uint8]uint64{}
		for _, s := range seq {
			exact[s]++
			m.Observe(s)
		}
		for key, c := range exact {
			if got, ok := m.Count(key); ok && got > c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: undercount bounded by n/k for every tracked key.
func TestMisraGriesUndercountBound(t *testing.T) {
	f := func(seq []uint8, k8 uint8) bool {
		if len(seq) == 0 {
			return true
		}
		k := int(k8%8) + 2
		m, _ := NewMisraGries[uint8](k)
		exact := map[uint8]uint64{}
		for _, s := range seq {
			exact[s]++
			m.Observe(s)
		}
		bound := uint64(len(seq))/uint64(k) + 1
		for key, c := range exact {
			got, _ := m.Count(key)
			if c > got && c-got > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
