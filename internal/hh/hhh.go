package hh

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Rollup selects how a hierarchical counter combines an evicted node's count
// into an ancestor, mirroring the paper's two CDIA combination methods.
type Rollup int

const (
	// RollupRandom picks a parent uniformly at random (the paper's
	// "random combination").
	RollupRandom Rollup = iota
	// RollupHighestCount picks the tracked parent with the largest count
	// so far (the paper's "highest count combination"): that parent has
	// the best chance of clearing the threshold at final-results time.
	RollupHighestCount
)

// String implements fmt.Stringer.
func (r Rollup) String() string {
	switch r {
	case RollupRandom:
		return "random"
	case RollupHighestCount:
		return "highest-count"
	default:
		return fmt.Sprintf("Rollup(%d)", int(r))
	}
}

// Hierarchy describes the lattice a HierarchicalCounter aggregates over.
// For access patterns the keys are query.Pattern bitmasks, but the counter
// is generic: anything with a parent relation forming a DAG with a single
// top works.
type Hierarchy[K comparable] struct {
	// Parents appends the lattice parents of k (one generalization step
	// up) to dst and returns it. The top of the lattice has no parents.
	Parents func(k K, dst []K) []K
	// Ancestor reports whether a generalizes b (a ≺ b, reflexive). Used
	// to find leaves: a tracked node is a leaf when no other tracked node
	// is a proper descendant of it.
	Ancestor func(a, b K) bool
	// Level returns the depth of k (top = 0, one more per specialization).
	Level func(k K) int
	// Order returns a stable sort key; compression and rollup walk nodes
	// in a deterministic order so runs are reproducible.
	Order func(k K) uint64
}

// HierarchicalCounter implements hierarchical heavy hitters with lossy-
// counting error bounds: observation and segment bookkeeping follow
// Manku–Motwani, but instead of deleting an infrequent node at compression
// time, its count is combined into a lattice parent, so the statistics of
// removed nodes are retained in generalized form (the property CDIA relies
// on to out-tune CSRIA).
type HierarchicalCounter[K comparable] struct {
	epsilon float64
	width   uint64
	n       uint64
	hier    Hierarchy[K]
	rollup  Rollup
	rng     *rand.Rand
	entries map[K]*lcEntry

	parentBuf  []K // scratch for chooseParent's lattice parents
	levelBuf   []K // scratch for sweep's per-level key list
	trackedBuf []K // scratch for chooseParent's tracked-parent subset
}

// NewHierarchicalCounter returns a counter over the given hierarchy with
// error rate ε ∈ (0,1). The seed fixes the random rollup choices so every
// run is reproducible; it is ignored for RollupHighestCount.
func NewHierarchicalCounter[K comparable](epsilon float64, hier Hierarchy[K], rollup Rollup, seed uint64) (*HierarchicalCounter[K], error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("hh: epsilon must be in (0,1), got %g", epsilon)
	}
	if hier.Parents == nil || hier.Ancestor == nil || hier.Level == nil || hier.Order == nil {
		return nil, fmt.Errorf("hh: hierarchy must define Parents, Ancestor, Level and Order")
	}
	return &HierarchicalCounter[K]{
		epsilon: epsilon,
		width:   uint64(math.Ceil(1 / epsilon)),
		hier:    hier,
		rollup:  rollup,
		rng:     rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		entries: make(map[K]*lcEntry),
	}, nil
}

// Epsilon returns the configured error rate.
func (c *HierarchicalCounter[K]) Epsilon() float64 { return c.epsilon }

// N returns the number of items observed.
func (c *HierarchicalCounter[K]) N() uint64 { return c.n }

// Len returns the number of nodes currently tracked.
func (c *HierarchicalCounter[K]) Len() int { return len(c.entries) }

// SegmentID returns the 1-based id of the segment the next item falls into.
func (c *HierarchicalCounter[K]) SegmentID() uint64 { return c.n/c.width + 1 }

// Observe records one occurrence of key k, compressing at segment
// boundaries. Returns true when a compression pass ran.
func (c *HierarchicalCounter[K]) Observe(k K) bool {
	sid := c.SegmentID()
	if e, ok := c.entries[k]; ok {
		e.count++
	} else {
		// One entry per newly tracked node; the table is bounded at
		// O((1/ε)·log(ε·n)) entries by the lossy-counting eviction.
		c.entries[k] = &lcEntry{count: 1, delta: sid - 1} //amrivet:ignore[hotalloc] bounded lossy-counting table, amortized by compression
	}
	c.n++
	if c.n%c.width == 0 {
		c.Compress()
		return true
	}
	return false
}

// Count returns the tracked count and undercount bound for k.
func (c *HierarchicalCounter[K]) Count(k K) (count, delta uint64, ok bool) {
	e, found := c.entries[k]
	if !found {
		return 0, 0, false
	}
	return e.count, e.delta, true
}

// sweep walks entries strictly one lattice level at a time, deepest first.
// Every entry for which keep returns false is combined into a parent chosen
// by the rollup strategy and removed; parents (including ones created by the
// rollup) are visited when their own level is reached, so promoted counts
// cascade upward within a single sweep. Entries that are kept are passed to
// report. The lattice top is never rolled — it has nowhere to go.
func (c *HierarchicalCounter[K]) sweep(entries map[K]*lcEntry, sid uint64, keep func(*lcEntry) bool, deterministic bool, report func(K, *lcEntry)) {
	maxLevel := 0
	for k := range entries {
		if l := c.hier.Level(k); l > maxLevel {
			maxLevel = l
		}
	}
	for lvl := maxLevel; lvl >= 0; lvl-- {
		c.levelBuf = c.levelBuf[:0]
		for k := range entries {
			if c.hier.Level(k) == lvl {
				c.levelBuf = append(c.levelBuf, k)
			}
		}
		atLevel := c.levelBuf
		sort.Slice(atLevel, func(i, j int) bool { return c.hier.Order(atLevel[i]) < c.hier.Order(atLevel[j]) })
		for _, k := range atLevel {
			e := entries[k]
			if keep(e) {
				if report != nil {
					report(k, e)
				}
				continue
			}
			parent, hasParent := c.chooseParent(entries, k, sid, deterministic)
			if !hasParent {
				// The lattice top: left tracked (its statistics are
				// irreplaceable) but never reported as a heavy hitter.
				continue
			}
			entries[parent].count += e.count
			delete(entries, k)
		}
	}
}

// chooseParent picks the parent the evicted node's count is combined into,
// honoring the configured rollup strategy. Preference is given to parents
// already tracked; when none is tracked, a fresh parent entry is created
// with Δ = s_id − 1 per the paper. ok=false means k is the lattice top.
func (c *HierarchicalCounter[K]) chooseParent(entries map[K]*lcEntry, k K, sid uint64, deterministic bool) (K, bool) {
	c.parentBuf = c.hier.Parents(k, c.parentBuf[:0])
	parents := c.parentBuf
	var zero K
	if len(parents) == 0 {
		return zero, false
	}
	sort.Slice(parents, func(i, j int) bool { return c.hier.Order(parents[i]) < c.hier.Order(parents[j]) })

	c.trackedBuf = c.trackedBuf[:0]
	for _, p := range parents {
		if _, ok := entries[p]; ok {
			c.trackedBuf = append(c.trackedBuf, p)
		}
	}
	tracked := c.trackedBuf
	pick := func(cands []K) K {
		switch {
		case len(cands) == 1:
			return cands[0]
		case c.rollup == RollupHighestCount:
			best := cands[0]
			bestCount := uint64(0)
			if e, ok := entries[best]; ok {
				bestCount = e.count
			}
			for _, p := range cands[1:] {
				var cnt uint64
				if e, ok := entries[p]; ok {
					cnt = e.count
				}
				if cnt > bestCount {
					best, bestCount = p, cnt
				}
			}
			return best
		case deterministic:
			return cands[0]
		default:
			return cands[c.rng.IntN(len(cands))]
		}
	}
	var chosen K
	if len(tracked) > 0 {
		chosen = pick(tracked)
	} else {
		chosen = pick(parents)
		// Fresh parent entries are bounded by the same lossy-counting table
		// cap as Observe's insertions.
		entries[chosen] = &lcEntry{count: 0, delta: sid - 1} //amrivet:ignore[hotalloc] bounded lossy-counting table, amortized by compression
	}
	return chosen, true
}

// Compress performs the CDIA compression step: every tracked node whose
// count+Δ no longer reaches the completed segment id has its count combined
// into a lattice parent and is removed. The paper describes the pass over
// leaf nodes; processing whole levels deepest-first subsumes that (each leaf
// pass is one step of the cascade) and matches the compress phase of the
// underlying hierarchical-heavy-hitter algorithm [Cormode et al.]. The
// lattice top is never evicted — it has nowhere to roll up to — which keeps
// the full-scan statistic intact.
func (c *HierarchicalCounter[K]) Compress() {
	sid := c.n / c.width
	c.sweep(c.entries, sid, func(e *lcEntry) bool { return e.count+e.delta > sid }, false, nil)
}

// Result computes the final answer for threshold θ: working on a copy of
// the table (assessment keeps running on the live one), nodes are visited
// deepest level first; any node whose count+Δ misses the bar (θ−ε)·n is
// combined into a parent, and survivors are reported sorted by descending
// count. Rollup choices during Result are deterministic (first parent in
// Order) so that reported answers do not perturb the RNG stream.
func (c *HierarchicalCounter[K]) Result(theta float64) []Counted[K] {
	if c.n == 0 {
		return nil
	}
	bar := (theta - c.epsilon) * float64(c.n)
	sid := c.n/c.width + 1

	work := make(map[K]*lcEntry, len(c.entries))
	for k, e := range c.entries {
		work[k] = &lcEntry{count: e.count, delta: e.delta}
	}
	var out []Counted[K]
	c.sweep(work, sid,
		func(e *lcEntry) bool { return float64(e.count+e.delta) >= bar },
		true,
		func(k K, e *lcEntry) { out = append(out, Counted[K]{Key: k, Count: e.count, Delta: e.delta}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return c.hier.Order(out[i].Key) < c.hier.Order(out[j].Key)
	})
	return out
}

// Entries returns a snapshot of everything currently tracked, deepest level
// first then by Order.
func (c *HierarchicalCounter[K]) Entries() []Counted[K] {
	out := make([]Counted[K], 0, len(c.entries))
	for k, e := range c.entries {
		out = append(out, Counted[K]{Key: k, Count: e.count, Delta: e.delta})
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := c.hier.Level(out[i].Key), c.hier.Level(out[j].Key)
		if li != lj {
			return li > lj
		}
		return c.hier.Order(out[i].Key) < c.hier.Order(out[j].Key)
	})
	return out
}

// MemBytes returns the simulated resident size of the counter.
func (c *HierarchicalCounter[K]) MemBytes() int {
	const perEntry = 64
	return 128 + perEntry*len(c.entries)
}

// Reset clears all state, keeping configuration and RNG position.
//
//amrivet:coldpath per-window maintenance: runs once per assessment window, not per probe; the fresh map is the reset
func (c *HierarchicalCounter[K]) Reset() {
	c.n = 0
	c.entries = make(map[K]*lcEntry)
}
