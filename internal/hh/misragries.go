package hh

import (
	"fmt"
	"sort"
)

// MisraGries implements the first deterministic heavy-hitter algorithm
// (Misra & Gries, "Finding repeated elements" — the paper's reference [25]
// and the ancestor of lossy counting): k-1 counters, decrement-all on
// overflow. Any key with true frequency above 1/k is guaranteed to be
// tracked; counts undercount by at most n/k. It is included for
// completeness of the sampling substrate — CSRIA itself follows the
// Manku–Motwani refinement (LossyCounter), which adds the ε error-rate
// guarantee the paper's Section IV-C2 states.
type MisraGries[K comparable] struct {
	k        int
	n        uint64
	counters map[K]uint64
}

// NewMisraGries returns a summary with k-1 counters: every key with
// frequency > 1/k survives.
func NewMisraGries[K comparable](k int) (*MisraGries[K], error) {
	if k < 2 {
		return nil, fmt.Errorf("hh: MisraGries needs k >= 2, got %d", k)
	}
	return &MisraGries[K]{k: k, counters: make(map[K]uint64)}, nil
}

// Observe records one occurrence.
func (m *MisraGries[K]) Observe(key K) {
	m.n++
	if _, ok := m.counters[key]; ok {
		m.counters[key]++
		return
	}
	if len(m.counters) < m.k-1 {
		m.counters[key] = 1
		return
	}
	// Decrement every counter; drop the ones that hit zero. This is the
	// classic "cancel k distinct elements" step.
	for c, v := range m.counters {
		if v == 1 {
			delete(m.counters, c)
		} else {
			m.counters[c] = v - 1
		}
	}
}

// N returns the number of observations.
func (m *MisraGries[K]) N() uint64 { return m.n }

// Len returns the number of tracked keys (< k).
func (m *MisraGries[K]) Len() int { return len(m.counters) }

// Count returns the tracked (under)count for key.
func (m *MisraGries[K]) Count(key K) (uint64, bool) {
	c, ok := m.counters[key]
	return c, ok
}

// Result returns the tracked keys with estimated frequency at least theta,
// sorted by descending count. The undercount bound is n/k, so a key with
// true frequency >= theta + 1/k is always reported.
func (m *MisraGries[K]) Result(theta float64) []Counted[K] {
	if m.n == 0 {
		return nil
	}
	bar := theta * float64(m.n)
	maxErr := m.n / uint64(m.k)
	var out []Counted[K]
	for key, c := range m.counters {
		if float64(c)+float64(maxErr) >= bar {
			out = append(out, Counted[K]{Key: key, Count: c, Delta: maxErr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Reset clears all state.
func (m *MisraGries[K]) Reset() {
	m.n = 0
	m.counters = make(map[K]uint64)
}
