package hh

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// maskHierarchy is the subset lattice over n-bit masks: exactly the shape
// internal/assess uses for access patterns, defined locally to keep hh free
// of upward dependencies.
func maskHierarchy(n int) Hierarchy[uint32] {
	return Hierarchy[uint32]{
		Parents: func(k uint32, dst []uint32) []uint32 {
			for m := k; m != 0; m &= m - 1 {
				dst = append(dst, k&^(m&-m))
			}
			return dst
		},
		Ancestor: func(a, b uint32) bool { return a&b == a },
		Level:    func(k uint32) int { return bits.OnesCount32(k) },
		Order:    func(k uint32) uint64 { return uint64(k) },
	}
}

func TestNewHierarchicalCounterValidation(t *testing.T) {
	h := maskHierarchy(3)
	if _, err := NewHierarchicalCounter[uint32](0, h, RollupRandom, 1); err == nil {
		t.Error("epsilon 0 should be rejected")
	}
	if _, err := NewHierarchicalCounter[uint32](0.1, Hierarchy[uint32]{}, RollupRandom, 1); err == nil {
		t.Error("incomplete hierarchy should be rejected")
	}
	if _, err := NewHierarchicalCounter(0.1, h, RollupHighestCount, 1); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestRollupString(t *testing.T) {
	if RollupRandom.String() != "random" || RollupHighestCount.String() != "highest-count" {
		t.Fatal("Rollup names drifted")
	}
	if Rollup(9).String() == "" {
		t.Fatal("unknown rollup should still render")
	}
}

// Count conservation: compression combines counts instead of deleting them,
// so the total tracked count always equals the number of observations.
func TestHHHCountConservation(t *testing.T) {
	for _, roll := range []Rollup{RollupRandom, RollupHighestCount} {
		c, _ := NewHierarchicalCounter(0.1, maskHierarchy(4), roll, 42)
		rng := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < 3000; i++ {
			c.Observe(rng.Uint32N(16))
		}
		var total uint64
		for _, e := range c.Entries() {
			total += e.Count
		}
		if total != c.N() {
			t.Errorf("%v: tracked total %d != observed %d", roll, total, c.N())
		}
	}
}

func TestHHHEvictionRollsIntoParent(t *testing.T) {
	// width = 1/0.25 = 4. Observe three copies of 0b11 and one of 0b111:
	// at the boundary 0b111 (count 1, delta 0) is the only leaf below the
	// bar; its count must move into a parent (one bit removed), not vanish.
	c, _ := NewHierarchicalCounter(0.25, maskHierarchy(3), RollupHighestCount, 1)
	c.Observe(0b011)
	c.Observe(0b011)
	c.Observe(0b011)
	c.Observe(0b111) // triggers compression
	if _, _, ok := c.Count(0b111); ok {
		t.Fatal("infrequent leaf should be evicted")
	}
	// Highest-count parent of 0b111 among tracked is 0b011 (count 3).
	cnt, _, ok := c.Count(0b011)
	if !ok || cnt != 4 {
		t.Fatalf("parent count = %d (ok=%v), want 4", cnt, ok)
	}
}

func TestHHHTopNeverEvicted(t *testing.T) {
	c, _ := NewHierarchicalCounter(0.5, maskHierarchy(3), RollupRandom, 1)
	c.Observe(0) // the top (full scan) pattern
	c.Observe(0b1)
	if _, _, ok := c.Count(0); !ok {
		t.Fatal("lattice top was evicted; its count has nowhere to go")
	}
}

func TestHHHResultPromotesSubThresholdCounts(t *testing.T) {
	// The Table II mechanism in miniature: two sibling patterns each below
	// threshold share a parent; CDIA-style Result must surface the parent
	// with their combined weight.
	c, _ := NewHierarchicalCounter(0.001, maskHierarchy(3), RollupHighestCount, 1)
	// 100 observations: 30x <A,B,*>=0b011, 30x <A,*,C>=0b101, 40x <A,*,*>.
	for i := 0; i < 30; i++ {
		c.Observe(0b011)
	}
	for i := 0; i < 30; i++ {
		c.Observe(0b101)
	}
	for i := 0; i < 40; i++ {
		c.Observe(0b001)
	}
	// theta=0.5: no single pattern reaches 50%, but A=0b001 generalizes
	// 0b011 and 0b101 → all 100 observations land on it bottom-up.
	res := c.Result(0.5)
	if len(res) != 1 {
		t.Fatalf("Result = %v, want exactly the promoted ancestor", res)
	}
	if res[0].Key != 0b001 {
		t.Fatalf("promoted key = %b, want 001 (A)", res[0].Key)
	}
	if res[0].Count != 100 {
		t.Fatalf("promoted count = %d, want 100", res[0].Count)
	}
}

func TestHHHResultDoesNotMutateLiveTable(t *testing.T) {
	c, _ := NewHierarchicalCounter(0.01, maskHierarchy(3), RollupRandom, 1)
	for i := 0; i < 100; i++ {
		c.Observe(uint32(i % 8))
	}
	before := c.Entries()
	_ = c.Result(0.3)
	after := c.Entries()
	if len(before) != len(after) {
		t.Fatalf("Result changed live table: %d -> %d entries", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("entry %d changed: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestHHHResultFindsAllHeavyPatterns(t *testing.T) {
	// Guarantee: any pattern with true frequency >= theta is reported
	// (possibly via itself, since its own count can only grow by rollups).
	const eps = 0.01
	const theta = 0.2
	c, _ := NewHierarchicalCounter(eps, maskHierarchy(4), RollupHighestCount, 9)
	rng := rand.New(rand.NewPCG(5, 5))
	exact := map[uint32]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		var k uint32
		if rng.Float64() < 0.4 {
			k = 0b0011 // heavy
		} else {
			k = rng.Uint32N(16)
		}
		exact[k]++
		c.Observe(k)
	}
	res := c.Result(theta)
	found := map[uint32]bool{}
	for _, r := range res {
		found[r.Key] = true
	}
	for k, cnt := range exact {
		if float64(cnt)/float64(n) >= theta && !found[k] {
			t.Errorf("heavy pattern %04b (freq %.3f) not reported: %v", k, float64(cnt)/float64(n), res)
		}
	}
}

func TestHHHRandomRollupIsSeeded(t *testing.T) {
	run := func(seed uint64) []Counted[uint32] {
		c, _ := NewHierarchicalCounter(0.02, maskHierarchy(4), RollupRandom, seed)
		rng := rand.New(rand.NewPCG(11, 11))
		for i := 0; i < 5000; i++ {
			c.Observe(rng.Uint32N(16))
		}
		return c.Entries()
	}
	a, b := run(1), run(1)
	if len(a) != len(b) {
		t.Fatalf("same seed, different table sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHHHMemoryStaysBounded(t *testing.T) {
	const eps = 0.01
	const width = 16 // lattice height h
	c, _ := NewHierarchicalCounter(eps, maskHierarchy(width), RollupHighestCount, 3)
	rng := rand.New(rand.NewPCG(8, 8))
	const n = 100000
	peak, distinct := 0, map[uint32]bool{}
	for i := 0; i < n; i++ {
		k := rng.Uint32N(1 << width)
		distinct[k] = true
		c.Observe(k)
		if c.Len() > peak {
			peak = c.Len()
		}
	}
	// The analytical bound is (h/eps)*log(eps*n) entries; what matters for
	// the experiments is that the table stays orders of magnitude below the
	// number of distinct keys seen. Pin an empirical regression bound well
	// under both.
	if peak > len(distinct)/10 {
		t.Fatalf("peak tracked entries %d not far below %d distinct keys", peak, len(distinct))
	}
	if bound := (width / eps) * 12; float64(peak) > bound {
		t.Fatalf("peak tracked entries %d exceeds analytical bound %.0f", peak, bound)
	}
}

// Property: conservation holds for any observation sequence and rollup.
func TestHHHConservationProperty(t *testing.T) {
	f := func(seq []uint8, rollupBit bool) bool {
		roll := RollupRandom
		if rollupBit {
			roll = RollupHighestCount
		}
		c, _ := NewHierarchicalCounter(0.2, maskHierarchy(5), roll, 17)
		for _, s := range seq {
			c.Observe(uint32(s) & 0x1f)
		}
		var total uint64
		for _, e := range c.Entries() {
			total += e.Count
		}
		return total == c.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Result keys are mutually incomparable or at least never report
// a key twice, and every reported count is positive.
func TestHHHResultSane(t *testing.T) {
	f := func(seq []uint8) bool {
		c, _ := NewHierarchicalCounter(0.1, maskHierarchy(5), RollupHighestCount, 23)
		for _, s := range seq {
			c.Observe(uint32(s) & 0x1f)
		}
		res := c.Result(0.25)
		seen := map[uint32]bool{}
		for _, r := range res {
			if seen[r.Key] || r.Count == 0 {
				return false
			}
			seen[r.Key] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
