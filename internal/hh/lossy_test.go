package hh

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewLossyCounterValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 1.5} {
		if _, err := NewLossyCounter[int](eps); err == nil {
			t.Errorf("epsilon %g should be rejected", eps)
		}
	}
	c, err := NewLossyCounter[int](0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epsilon() != 0.1 {
		t.Fatalf("Epsilon = %g", c.Epsilon())
	}
	if c.width != 10 {
		t.Fatalf("width = %d, want 10", c.width)
	}
}

func TestLossyObserveAndCount(t *testing.T) {
	c, _ := NewLossyCounter[string](0.25) // width 4
	c.Observe("a")
	c.Observe("a")
	c.Observe("b")
	if cnt, delta, ok := c.Count("a"); !ok || cnt != 2 || delta != 0 {
		t.Fatalf("a: count=%d delta=%d ok=%v", cnt, delta, ok)
	}
	if _, _, ok := c.Count("z"); ok {
		t.Fatal("untracked key reported as tracked")
	}
	if c.N() != 3 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestLossySegmentEviction(t *testing.T) {
	c, _ := NewLossyCounter[int](0.25) // width 4: compress after items 4, 8, ...
	// Segment 1: one singleton and one repeated key.
	c.Observe(1)
	c.Observe(1)
	c.Observe(1)
	compressed := c.Observe(2) // 4th item triggers compression, sid=1
	if !compressed {
		t.Fatal("4th observation should compress")
	}
	// Key 2 entered in segment 1 with delta 0 and count 1: 1+0 <= 1 → evicted.
	if _, _, ok := c.Count(2); ok {
		t.Fatal("singleton should be evicted at segment boundary")
	}
	// Key 1 has count 3 > 1 → survives.
	if _, _, ok := c.Count(1); !ok {
		t.Fatal("frequent key evicted")
	}
}

// TestLossyCompressMidSegmentUsesCeiling pins the eviction segment id at
// ⌈n/w⌉: an on-demand Compress in the middle of a segment must evict
// against the segment currently in progress, not the last completed one.
// With ⌊n/w⌋ the singleton below survives and the table overshoots its
// bound for any caller that compresses between boundaries to shed memory
// on demand.
func TestLossyCompressMidSegmentUsesCeiling(t *testing.T) {
	c, _ := NewLossyCounter[int](0.25) // width 4
	// Segment 1 is all heavy key; the 4th observation auto-compresses.
	for i := 0; i < 4; i++ {
		c.Observe(1)
	}
	// Mid-segment 2: a singleton enters with count 1, delta = 1.
	c.Observe(99)
	// Current segment id is ⌈5/4⌉ = 2 and 1+1 ≤ 2, so an on-demand
	// compress evicts it; the floor id ⌊5/4⌋ = 1 would have kept it.
	c.Compress()
	if _, _, ok := c.Count(99); ok {
		t.Fatal("mid-segment compress kept an entry the current segment id evicts")
	}
	if _, _, ok := c.Count(1); !ok {
		t.Fatal("heavy key must survive compression")
	}
	// At an exact boundary floor and ceiling agree: re-observing up to n=8
	// must evict a fresh boundary singleton exactly as before the fix.
	c.Observe(1)
	c.Observe(1)
	c.Observe(7) // n=8: auto-compress with sid 2; 7 has count 1, delta 1
	if _, _, ok := c.Count(7); ok {
		t.Fatal("boundary eviction changed: singleton survived the n=8 compress")
	}
}

func TestLossyDeltaForLateArrivals(t *testing.T) {
	c, _ := NewLossyCounter[int](0.25) // width 4
	for i := 0; i < 8; i++ {
		c.Observe(1)
	}
	// Now in segment 3 (n=8). A new key should carry delta = sid-1 = 2.
	c.Observe(42)
	if _, delta, ok := c.Count(42); !ok || delta != 2 {
		t.Fatalf("late arrival delta = %d, want 2", delta)
	}
}

func TestLossyResultGuarantees(t *testing.T) {
	// Random stream; verify the two lossy-counting guarantees against
	// exact counts for several thresholds.
	const eps = 0.01
	const theta = 0.05
	const n = 20000
	rng := rand.New(rand.NewPCG(7, 7))
	c, _ := NewLossyCounter[int](eps)
	exact := map[int]int{}
	for i := 0; i < n; i++ {
		// Zipf-ish skew: low keys much more likely.
		k := int(math.Floor(math.Pow(rng.Float64(), 3) * 50))
		exact[k]++
		c.Observe(k)
	}
	reported := map[int]uint64{}
	for _, r := range c.Result(theta) {
		reported[r.Key] = r.Count
	}
	for k, cnt := range exact {
		f := float64(cnt) / float64(n)
		if f >= theta {
			if _, ok := reported[k]; !ok {
				t.Errorf("key %d with freq %.4f >= theta not reported", k, f)
			}
		}
		if f < theta-eps {
			if _, ok := reported[k]; ok {
				t.Errorf("key %d with freq %.4f < theta-eps reported", k, f)
			}
		}
	}
	// Reported counts undercount the truth by at most eps*n.
	for k, cnt := range reported {
		if uint64(exact[k]) < cnt {
			t.Errorf("key %d overcounted: reported %d, exact %d", k, cnt, exact[k])
		}
		if float64(exact[k])-float64(cnt) > eps*n+1 {
			t.Errorf("key %d undercounted beyond bound: reported %d, exact %d", k, cnt, exact[k])
		}
	}
}

func TestLossyMemoryBound(t *testing.T) {
	// Tracked entries must stay O((1/eps) * log(eps*n)).
	const eps = 0.005
	c, _ := NewLossyCounter[uint32](eps)
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 200000
	for i := 0; i < n; i++ {
		c.Observe(rng.Uint32N(1 << 20)) // huge key space
	}
	bound := int((1/eps)*math.Log(eps*float64(n))) + int(1/eps)
	if c.Len() > bound {
		t.Fatalf("tracked %d entries, bound %d", c.Len(), bound)
	}
}

func TestLossyEntriesSorted(t *testing.T) {
	c, _ := NewLossyCounter[int](0.5)
	for i, reps := range []int{5, 2, 9} {
		for j := 0; j < reps; j++ {
			c.Observe(i)
		}
	}
	es := c.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Count > es[i-1].Count {
			t.Fatalf("Entries not sorted: %v", es)
		}
	}
}

func TestLossyReset(t *testing.T) {
	c, _ := NewLossyCounter[int](0.1)
	for i := 0; i < 50; i++ {
		c.Observe(i % 3)
	}
	c.Reset()
	if c.N() != 0 || c.Len() != 0 {
		t.Fatalf("Reset left N=%d Len=%d", c.N(), c.Len())
	}
	if got := c.Result(0.5); got != nil {
		t.Fatalf("Result after reset = %v", got)
	}
}

func TestLossyMemBytesGrows(t *testing.T) {
	c, _ := NewLossyCounter[int](0.001)
	m0 := c.MemBytes()
	for i := 0; i < 100; i++ {
		c.Observe(i)
	}
	if c.MemBytes() <= m0 {
		t.Fatal("MemBytes should grow with tracked entries")
	}
}

func TestCountedFreq(t *testing.T) {
	c := Counted[int]{Key: 1, Count: 25}
	if f := c.Freq(100); f != 0.25 {
		t.Fatalf("Freq = %g", f)
	}
	if f := c.Freq(0); f != 0 {
		t.Fatalf("Freq(0) = %g, want 0", f)
	}
}

// Property: a key observed more than eps*n times in total is always still
// tracked (lossy counting never loses a key whose count exceeds the error
// bound).
func TestLossyNeverDropsHeavyKeys(t *testing.T) {
	f := func(seed uint64, heavyEvery uint8) bool {
		every := int(heavyEvery%5) + 2 // heavy key arrives every 2..6 items
		c, _ := NewLossyCounter[uint32](0.05)
		rng := rand.New(rand.NewPCG(seed, seed))
		const heavy = uint32(0xffffffff)
		for i := 0; i < 5000; i++ {
			if i%every == 0 {
				c.Observe(heavy)
			} else {
				c.Observe(rng.Uint32N(1 << 16))
			}
		}
		_, _, ok := c.Count(heavy)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
