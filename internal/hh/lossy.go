// Package hh provides the stream-sampling algorithms the paper's assessment
// methods are built on: lossy counting (Manku–Motwani, VLDB 2002) used by
// CSRIA, and hierarchical heavy hitters (Cormode et al., VLDB 2003) used by
// CDIA. Both are implemented as reusable generic libraries so the assessors
// in internal/assess stay thin.
package hh

import (
	"fmt"
	"math"
	"sort"
)

// Counted pairs a key with its estimated count and the maximum undercount
// Delta it may carry (the count recorded is guaranteed to be within Delta of
// the true count from below).
type Counted[K comparable] struct {
	Key   K
	Count uint64
	Delta uint64
}

// Freq returns the estimated frequency of the key given n observed items.
func (c Counted[K]) Freq(n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(c.Count) / float64(n)
}

// LossyCounter approximates per-key frequencies over an unbounded stream
// with bounded memory, following Manku–Motwani lossy counting:
//
//   - the stream is processed in segments of w = ⌈1/ε⌉ items;
//   - a key first seen in segment s enters with count 1 and Δ = s−1;
//   - at every segment boundary, entries with count+Δ ≤ s are evicted;
//   - the answer for threshold θ is every key with count ≥ (θ−ε)·n.
//
// Guarantees: every key with true frequency ≥ θ is reported; no key with
// true frequency < θ−ε is reported; reported counts undercount the truth by
// at most ε·n. Memory is O((1/ε)·log(ε·n)) entries.
type LossyCounter[K comparable] struct {
	epsilon float64
	width   uint64 // segment width ⌈1/ε⌉
	n       uint64 // items observed so far
	entries map[K]*lcEntry
}

type lcEntry struct {
	count uint64
	delta uint64
}

// NewLossyCounter returns a counter with the given error rate ε ∈ (0, 1).
func NewLossyCounter[K comparable](epsilon float64) (*LossyCounter[K], error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("hh: epsilon must be in (0,1), got %g", epsilon)
	}
	return &LossyCounter[K]{
		epsilon: epsilon,
		width:   uint64(math.Ceil(1 / epsilon)),
		entries: make(map[K]*lcEntry),
	}, nil
}

// Epsilon returns the configured error rate.
func (c *LossyCounter[K]) Epsilon() float64 { return c.epsilon }

// N returns the number of items observed.
func (c *LossyCounter[K]) N() uint64 { return c.n }

// Len returns the number of keys currently tracked.
func (c *LossyCounter[K]) Len() int { return len(c.entries) }

// SegmentID returns the current segment id: the number of the segment the
// next item falls into, 1-based (the paper's s_id = ⌈n/w⌉ bookkeeping).
func (c *LossyCounter[K]) SegmentID() uint64 { return c.n/c.width + 1 }

// Observe records one occurrence of key k, compressing automatically at
// segment boundaries. It returns true when a compression pass ran.
func (c *LossyCounter[K]) Observe(k K) bool {
	sid := c.SegmentID()
	if e, ok := c.entries[k]; ok {
		e.count++
	} else {
		// One entry per newly tracked key; the table is bounded at
		// O((1/ε)·log(ε·n)) entries by the lossy-counting eviction.
		c.entries[k] = &lcEntry{count: 1, delta: sid - 1} //amrivet:ignore[hotalloc] bounded lossy-counting table, amortized by compression
	}
	c.n++
	if c.n%c.width == 0 {
		c.Compress()
		return true
	}
	return false
}

// Count returns the tracked count and undercount bound for k, or ok=false
// if k is not currently tracked (its true count is then at most the current
// segment id).
func (c *LossyCounter[K]) Count(k K) (count, delta uint64, ok bool) {
	e, found := c.entries[k]
	if !found {
		return 0, 0, false
	}
	return e.count, e.delta, true
}

// Compress evicts every entry whose count plus undercount bound no longer
// reaches the current segment id ⌈n/w⌉. Called automatically at segment
// boundaries; exposed for tests and for callers that shrink on demand.
// The segment id must round UP: mid-segment, ⌊n/w⌋ names the previous
// segment, and evicting against it retains entries whose undercount bound
// already allows eviction — the table then exceeds its O((1/ε)·log(ε·n))
// bound for callers that compress on demand. At exact boundaries (the
// automatic path) floor and ceiling agree, so this changes nothing there.
func (c *LossyCounter[K]) Compress() {
	sid := (c.n + c.width - 1) / c.width // current segment id, ⌈n/w⌉
	for k, e := range c.entries {
		if e.count+e.delta <= sid {
			delete(c.entries, k)
		}
	}
}

// Result returns every key whose estimated frequency clears the threshold
// test f·n ≥ (θ−ε)·n, sorted by descending count (ties broken
// deterministically is the caller's concern; ordering of equal counts is
// unspecified but stable within one call). The live table is not modified.
func (c *LossyCounter[K]) Result(theta float64) []Counted[K] {
	if c.n == 0 {
		return nil
	}
	bar := (theta - c.epsilon) * float64(c.n)
	var out []Counted[K]
	for k, e := range c.entries {
		if float64(e.count) >= bar {
			out = append(out, Counted[K]{Key: k, Count: e.count, Delta: e.delta})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Entries returns a snapshot of everything currently tracked, sorted by
// descending count. Used by assessors that post-process (e.g. SRIA reports
// all entries, not only heavy hitters).
func (c *LossyCounter[K]) Entries() []Counted[K] {
	out := make([]Counted[K], 0, len(c.entries))
	for k, e := range c.entries {
		out = append(out, Counted[K]{Key: k, Count: e.count, Delta: e.delta})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// MemBytes returns the simulated resident size of the counter: map entry
// overhead plus key and counters per tracked entry.
func (c *LossyCounter[K]) MemBytes() int {
	const perEntry = 64 // map bucket share + entry struct + key
	return 96 + perEntry*len(c.entries)
}

// Reset clears all state, keeping the configuration.
//
//amrivet:coldpath per-window maintenance: runs once per assessment window, not per probe; the fresh map is the reset
func (c *LossyCounter[K]) Reset() {
	c.n = 0
	c.entries = make(map[K]*lcEntry)
}
