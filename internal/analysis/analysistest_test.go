package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each analyzer has a package under
// testdata/src/<name>/ whose lines carry `// want "regex"` comments naming
// the diagnostics the analyzer must produce at exactly that line. The
// harness fails on any unmatched expectation (missed true positive) and on
// any unexpected diagnostic (false positive), so a fixture is a complete
// specification of the analyzer's behaviour over its code.

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantQuoteRE = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one `// want` clause.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseExpectations scans the fixture sources for want comments.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quotes := wantQuoteRE.FindAllStringSubmatch(m[1], -1)
			if len(quotes) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted pattern", path, i+1)
			}
			for _, q := range quotes {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return wants
}

// moduleRoot locates the repo root (where go.mod lives) so `go list` can
// resolve fixture imports of both stdlib and amri packages.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// runFixture loads testdata/src/<name> and checks the analyzer's
// diagnostics against the want expectations, returning the diagnostics.
func runFixture(t *testing.T, a *Analyzer, name string) []Diagnostic {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(moduleRoot(t), dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run(pkg, []*Analyzer{a})
	wants := parseExpectations(t, dir)

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && sameFile(w.file, d.Pos.Filename) && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	return diags
}

func sameFile(a, b string) bool {
	aa, _ := filepath.Abs(a)
	bb, _ := filepath.Abs(b)
	return aa == bb
}

// position is a convenience for asserting exact columns in analyzer tests.
func position(d Diagnostic) string {
	return fmt.Sprintf("%d:%d", d.Pos.Line, d.Pos.Column)
}
