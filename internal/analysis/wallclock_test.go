package analysis

import "testing"

func TestWallClockFixture(t *testing.T) {
	diags := runFixture(t, WallClock, "wallclock")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
	// The harness matches at line granularity; pin the first finding's
	// exact position (the time.Now() call in stamp) down to the column.
	if got, want := position(diags[0]), "8:9"; got != want {
		t.Errorf("first wallclock diagnostic at %s, want %s", got, want)
	}
}
