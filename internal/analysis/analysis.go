// Package analysis is amrivet's static-analysis framework: a small,
// dependency-free (standard library only) harness for project-specific
// analyzers that machine-check the invariants AMRI's concurrent pipeline
// relies on — lock discipline around shared index state, the 64-bit IC
// budget, wall-clock hygiene in hot paths, seeded determinism, and
// consistent atomic access.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf) so analyzers read familiarly, but
// it is built only on go/ast, go/types, go/importer and the `go list`
// command, keeping the module free of external dependencies.
//
// # Suppressing a finding
//
// A diagnostic can be silenced with an ignore directive on the same line or
// the line directly above it:
//
//	//amrivet:ignore <reason>
//
// The reason is mandatory; a bare directive is itself reported. Directives
// may name specific analyzers ("//amrivet:ignore[wallclock] benchmark
// harness timing") to keep the other gates active on that line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked package
// via the Pass and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Diagnostic is one finding, positioned at a concrete file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style "file:line:col: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags   *[]Diagnostic
	ignores map[string]map[int]ignoreDirective
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignored(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignored(pos token.Position) bool {
	lines, ok := p.ignores[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.covers(p.Analyzer.Name) {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //amrivet:ignore comment.
type ignoreDirective struct {
	analyzers []string // empty means all analyzers
	reason    string
}

func (d ignoreDirective) covers(analyzer string) bool {
	if d.reason == "" {
		return false // malformed directives suppress nothing
	}
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

var ignoreRE = regexp.MustCompile(`^//\s*amrivet:ignore(?:\[([\w,\s-]+)\])?\s*(.*)$`)

// parseIgnores scans a file's comments for amrivet:ignore directives,
// keyed by line number. Malformed directives (no reason) are reported as
// diagnostics so the suppression mechanism cannot rot silently.
func parseIgnores(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) map[string]map[int]ignoreDirective {
	out := make(map[string]map[int]ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := ignoreDirective{reason: strings.TrimSpace(m[2])}
				if m[1] != "" {
					for _, name := range strings.Split(m[1], ",") {
						d.analyzers = append(d.analyzers, strings.TrimSpace(name))
					}
				}
				pos := fset.Position(c.Pos())
				if d.reason == "" {
					report(Diagnostic{
						Analyzer: "amrivet",
						Pos:      pos,
						Message:  "amrivet:ignore directive is missing a reason",
					})
					continue
				}
				lines, ok := out[pos.Filename]
				if !ok {
					lines = make(map[int]ignoreDirective)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = d
			}
		}
	}
	return out
}

// Run executes the analyzers over the package, returning the surviving
// (non-suppressed) diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := parseIgnores(pkg.Fset, pkg.Files, func(d Diagnostic) { diags = append(diags, d) })
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.Path,
			Info:     pkg.Info,
			diags:    &diags,
			ignores:  ignores,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// Analyzers returns amrivet's full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MutexGuard,
		BitBudget,
		WallClock,
		DetRand,
		AtomicMix,
	}
}

// isPkgFunc reports whether obj is the package-level function path.name.
func isPkgFunc(obj types.Object, path, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// namedType unwraps pointers and aliases to the underlying named type, if
// any.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// path.name.
func isNamed(t types.Type, path, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}
