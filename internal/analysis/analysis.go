// Package analysis is amrivet's static-analysis framework: a small,
// dependency-free (standard library only) harness for project-specific
// analyzers that machine-check the invariants AMRI's concurrent pipeline
// relies on — lock discipline around shared index state, the 64-bit IC
// budget, wall-clock hygiene in hot paths, seeded determinism, and
// consistent atomic access.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf) so analyzers read familiarly, but
// it is built only on go/ast, go/types, go/importer and the `go list`
// command, keeping the module free of external dependencies.
//
// # Suppressing a finding
//
// A diagnostic can be silenced with an ignore directive on the same line or
// the line directly above it:
//
//	//amrivet:ignore <reason>
//
// The reason is mandatory; a bare directive is itself reported. Directives
// may name specific analyzers ("//amrivet:ignore[wallclock] benchmark
// harness timing") to keep the other gates active on that line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"amri/internal/analysis/callgraph"
	"amri/internal/analysis/facts"
)

// Analyzer is one static check. Run inspects a single type-checked package
// via the Pass and reports findings through pass.Reportf; packages are
// visited in dependency order, so facts exported while analyzing an import
// are visible (via Pass.Facts) when its dependents are analyzed. Finish,
// when set, runs once after every package, with the whole-session view —
// merged facts and the cross-package call graph — for interprocedural
// checks that no single package can decide (lock-order cycles, hot-path
// reachability).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the per-package phase of the check.
	Run func(*Pass)
	// Finish, optional, executes the whole-program phase.
	Finish func(*Session)
}

// Diagnostic is one finding, positioned at a concrete file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style "file:line:col: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info
	// Facts holds this package's imported facts (from its dependency
	// cone) and receives the facts it exports.
	Facts *facts.Store

	diags   *[]Diagnostic
	ignores map[string]map[int]ignoreDirective
}

// ExportFact attaches a fact to obj on behalf of this package.
func (p *Pass) ExportFact(obj types.Object, f facts.Fact) {
	p.Facts.Export(p.PkgPath, facts.ObjectID(obj), f)
}

// Session is the whole-program view an Analyzer's Finish phase runs over.
type Session struct {
	// Packages are the analyzed packages, in dependency order.
	Packages []*Package
	// Facts is the union of every package's exported facts.
	Facts *facts.Store
	// Graph is the cross-package call-graph approximation.
	Graph *callgraph.Graph

	current *Analyzer
	diags   *[]Diagnostic
	ignores map[string]map[int]ignoreDirective
}

// Reportf records a session-level diagnostic at a resolved position,
// honouring ignore directives exactly like Pass.Reportf.
func (s *Session) Reportf(pos token.Position, format string, args ...any) {
	if ignoredAt(s.ignores, s.current.Name, pos) {
		return
	}
	*s.diags = append(*s.diags, Diagnostic{
		Analyzer: s.current.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if ignoredAt(p.ignores, p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoredAt reports whether a directive on the diagnostic's line or the
// line above suppresses the analyzer.
func ignoredAt(ignores map[string]map[int]ignoreDirective, analyzer string, pos token.Position) bool {
	lines, ok := ignores[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.covers(analyzer) {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //amrivet:ignore comment.
type ignoreDirective struct {
	analyzers []string // empty means all analyzers
	reason    string
}

func (d ignoreDirective) covers(analyzer string) bool {
	if d.reason == "" {
		return false // malformed directives suppress nothing
	}
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

var (
	ignoreRE = regexp.MustCompile(`^//\s*amrivet:ignore(?:\[([\w,\s-]+)\])?\s*(.*)$`)
	// amrivet:lockhold <reason> is sugar for amrivet:ignore[lockhold]: it
	// accepts one deliberate costly-under-lock operation, with the reason
	// documenting why the hold is sound.
	lockholdRE = regexp.MustCompile(`^//\s*amrivet:lockhold\s*(.*)$`)
)

// parseIgnores scans a file's comments for amrivet:ignore and
// amrivet:lockhold directives, keyed by line number. Malformed directives
// (no reason) are reported as diagnostics so the suppression mechanism
// cannot rot silently.
func parseIgnores(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) map[string]map[int]ignoreDirective {
	out := make(map[string]map[int]ignoreDirective)
	record := func(c *ast.Comment, d ignoreDirective, what string) {
		pos := fset.Position(c.Pos())
		if d.reason == "" {
			report(Diagnostic{
				Analyzer: "amrivet",
				Pos:      pos,
				Message:  fmt.Sprintf("amrivet:%s directive is missing a reason", what),
			})
			return
		}
		lines, ok := out[pos.Filename]
		if !ok {
			lines = make(map[int]ignoreDirective)
			out[pos.Filename] = lines
		}
		lines[pos.Line] = d
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := ignoreRE.FindStringSubmatch(c.Text); m != nil {
					d := ignoreDirective{reason: strings.TrimSpace(m[2])}
					if m[1] != "" {
						for _, name := range strings.Split(m[1], ",") {
							d.analyzers = append(d.analyzers, strings.TrimSpace(name))
						}
					}
					record(c, d, "ignore")
					continue
				}
				if m := lockholdRE.FindStringSubmatch(c.Text); m != nil {
					record(c, ignoreDirective{
						analyzers: []string{"lockhold"},
						reason:    strings.TrimSpace(m[1]),
					}, "lockhold")
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over one package (the fixture-test entry
// point), returning the surviving (non-suppressed) diagnostics sorted by
// position. It is RunAll over a single-package session.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAll([]*Package{pkg}, analyzers)
	return diags
}

// RunOptions tunes a RunAllWith session.
type RunOptions struct {
	// Workers bounds how many import-independent packages are analyzed
	// concurrently. Values below 2 run the session serially. Output is
	// byte-identical either way: diagnostics merge in dependency order
	// and sort on (position, analyzer, message).
	Workers int
	// Timing, when set, receives each package's analysis wall time. It is
	// called serially, in dependency order.
	Timing func(pkgPath string, d time.Duration)
	// EncodedFacts, when non-nil, receives each package's encoded
	// transitive fact cone (keyed by import path).
	EncodedFacts map[string][]byte
}

// RunAll executes the analyzers over every package in dependency order —
// facts exported while analyzing an import are serialized per package and
// decoded into each dependent's store, mirroring how export data flows —
// then builds the cross-package call graph and runs each analyzer's Finish
// phase over the whole session. Diagnostics come back sorted by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAllWith(pkgs, analyzers, RunOptions{})
}

// pkgResult is one package's analysis output: its diagnostics, its encoded
// transitive fact cone, and its wall time.
type pkgResult struct {
	diags []Diagnostic
	blob  []byte
	dur   time.Duration
	err   error
}

// RunAllWith is RunAll with options: topo-levelled parallelism across
// import-independent packages and per-package timing. Packages at the same
// dependency depth share no fact edges, so they analyze concurrently; each
// level is a barrier, which keeps every import's fact blob complete before
// any dependent decodes it. The Finish phase stays serial — it runs over
// the merged whole-program session.
func RunAllWith(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var diags []Diagnostic
	ordered := topoOrder(pkgs)

	// Parse ignore directives for every package up front; Finish-phase
	// reporting needs the global map, and the per-package workers read it
	// concurrently, so it must be complete (and immutable) first.
	allIgnores := make(map[string]map[int]ignoreDirective)
	for _, pkg := range ordered {
		ignores := parseIgnores(pkg.Fset, pkg.Files, func(d Diagnostic) { diags = append(diags, d) })
		for file, lines := range ignores {
			allIgnores[file] = lines
		}
	}
	reportUnknownDirectiveNames(ordered, allIgnores, func(d Diagnostic) { diags = append(diags, d) })

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	// Per-package phase, one dependency level at a time: decode the
	// dependency cone's facts, run the analyzers, encode this package's
	// (now transitive) fact set. Within a level no package imports
	// another, so the encoded map is read-only while workers run.
	encoded := make(map[string][]byte)
	results := make(map[string]*pkgResult, len(ordered))
	for _, level := range topoLevels(ordered) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		sem := make(chan struct{}, workers)
		for _, pkg := range level {
			wg.Add(1)
			sem <- struct{}{}
			go func(pkg *Package) {
				defer wg.Done()
				defer func() { <-sem }()
				start := time.Now()
				res := analyzeOnePackage(pkg, analyzers, encoded, allIgnores)
				res.dur = time.Since(start)
				mu.Lock()
				results[pkg.Path] = res
				mu.Unlock()
			}(pkg)
		}
		wg.Wait()
		for _, pkg := range level {
			res := results[pkg.Path]
			if res.err != nil {
				return nil, res.err
			}
			encoded[pkg.Path] = res.blob
		}
	}

	// Merge in dependency order so output is independent of scheduling.
	sessionFacts := facts.NewStore()
	for _, pkg := range ordered {
		res := results[pkg.Path]
		diags = append(diags, res.diags...)
		if err := sessionFacts.Decode(res.blob); err != nil {
			return nil, fmt.Errorf("analysis: merging facts of %s: %v", pkg.Path, err)
		}
		if opts.Timing != nil {
			opts.Timing(pkg.Path, res.dur)
		}
		if opts.EncodedFacts != nil {
			opts.EncodedFacts[pkg.Path] = res.blob
		}
	}

	// Whole-program phase.
	builder := callgraph.NewBuilder()
	for _, pkg := range ordered {
		builder.AddPackage(pkg.Fset, pkg.Files, pkg.Info, pkg.Types)
	}
	session := &Session{
		Packages: ordered,
		Facts:    sessionFacts,
		Graph:    builder.Graph(),
		diags:    &diags,
		ignores:  allIgnores,
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		session.current = a
		a.Finish(session)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// analyzeOnePackage runs every analyzer's per-package phase over pkg: its
// imports' fact blobs decode into a private store, the analyzers run, and
// the store — now the package's transitive fact cone — encodes for the
// packages above it.
func analyzeOnePackage(pkg *Package, analyzers []*Analyzer, encoded map[string][]byte, ignores map[string]map[int]ignoreDirective) *pkgResult {
	res := &pkgResult{}
	store := facts.NewStore()
	for _, imp := range pkg.Imports {
		if blob, ok := encoded[imp]; ok {
			if err := store.Decode(blob); err != nil {
				res.err = fmt.Errorf("analysis: importing facts of %s into %s: %v", imp, pkg.Path, err)
				return res
			}
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.Path,
			Info:     pkg.Info,
			Facts:    store,
			diags:    &res.diags,
			ignores:  ignores,
		}
		a.Run(pass)
	}
	blob, err := store.Encode()
	if err != nil {
		res.err = fmt.Errorf("analysis: encoding facts of %s: %v", pkg.Path, err)
		return res
	}
	res.blob = blob
	return res
}

// topoLevels groups dependency-ordered packages by depth: a package's
// level is one past its deepest in-set import, so packages within a level
// never import each other.
func topoLevels(ordered []*Package) [][]*Package {
	level := make(map[string]int, len(ordered))
	var levels [][]*Package
	for _, p := range ordered {
		l := 0
		for _, imp := range p.Imports {
			if il, ok := level[imp]; ok && il+1 > l {
				l = il + 1
			}
		}
		level[p.Path] = l
		for len(levels) <= l {
			levels = append(levels, nil)
		}
		levels[l] = append(levels[l], p)
	}
	return levels
}

// topoOrder sorts packages dependencies-first (imports before importers);
// ties and unrelated packages keep their input (path-sorted) order.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var out []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return // cycle (impossible in Go) or done
		}
		state[p.Path] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// knownAnalyzerNames is every analyzer name an ignore directive may
// legitimately reference.
func knownAnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// reportUnknownDirectiveNames flags //amrivet:ignore[...] directives that
// reference analyzers which do not exist: such a directive suppresses
// nothing today and silently rots when an analyzer is renamed.
func reportUnknownDirectiveNames(pkgs []*Package, ignores map[string]map[int]ignoreDirective, report func(Diagnostic)) {
	known := knownAnalyzerNames()
	for _, pkg := range pkgs {
		for file, lines := range ignores {
			if !fileBelongsTo(pkg, file) {
				continue
			}
			for line, d := range lines {
				for _, name := range d.analyzers {
					if !known[name] {
						report(Diagnostic{
							Analyzer: "amrivet",
							Pos:      token.Position{Filename: file, Line: line, Column: 1},
							Message: fmt.Sprintf(
								"amrivet:ignore names unknown analyzer %q (known: %s)",
								name, strings.Join(analyzerNameList(), ", ")),
						})
					}
				}
			}
		}
	}
}

func fileBelongsTo(pkg *Package, file string) bool {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename == file {
			return true
		}
	}
	return false
}

func analyzerNameList() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Analyzers returns amrivet's full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MutexGuard,
		BitBudget,
		WallClock,
		DetRand,
		AtomicMix,
		LockOrder,
		ChanProtocol,
		HotAlloc,
		ErrDrop,
		LockHold,
		CritEscape,
		WaitLeak,
		FalseShare,
		MapOrder,
		BarrierFlush,
		WALOrder,
		AtomicProto,
	}
}

// isPkgFunc reports whether obj is the package-level function path.name.
func isPkgFunc(obj types.Object, path, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// namedType unwraps pointers and aliases to the underlying named type, if
// any.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// path.name.
func isNamed(t types.Type, path, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}
