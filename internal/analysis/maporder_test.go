package analysis

import (
	"strings"
	"testing"
)

func TestMapOrderFixture(t *testing.T) {
	diags := runFixture(t, MapOrder, "maporder")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
	// Injected-bug smoke case: the unsorted map range feeding the digest
	// produces exactly one finding.
	digest := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "digest write") {
			digest++
		}
	}
	if digest != 1 {
		t.Fatalf("digest smoke case: want exactly 1 finding, got %d", digest)
	}
}
