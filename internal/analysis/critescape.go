package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
)

// CritEscape flags values that escape a critical section by reference: a
// slice, map, pointer or channel read out of lock-guarded state while the
// lock is held, then returned or stored somewhere the lock no longer
// protects. This is the static root of the "probes hold the operator lock
// for reading" problem — the tempting fix for a long read-side hold is to
// grab an internal reference under the lock and use it after Unlock, which
// trades a visible hold for an invisible data race.
//
// The analysis is intraprocedural and runs the lockorder may-held dataflow
// alongside a taint lattice: while lock class C (acquired through owner
// expression o.mu) is held, an assignment that reads a reference-typed
// selector/index chain rooted at o taints the destination local with C.
// Escapes reported:
//
//   - returning a tainted local, or returning an owner-rooted reference
//     directly (the deferred-unlock form: the alias outlives the section)
//   - storing a tainted local into a non-local, non-owner destination
//     (package variable, field of another object)
//   - sending a tainted local on a channel
//
// Call results are deliberately not tainted (a method called under a lock
// that returns a fresh copy is the sanctioned idiom), and type parameters
// are treated as non-reference (generic containers hand elements out by
// value). Re-assigning a tainted local from a clean source clears its
// taint. Suppress a deliberate hand-off with //amrivet:ignore[critescape].
var CritEscape = &Analyzer{
	Name: "critescape",
	Doc:  "reports lock-guarded state escaping a critical section by reference (returned or stored for use after unlock)",
	Run:  runCritEscape,
}

// escState is the combined lattice: the may-held lock set plus the taint
// map local object ID → lock class whose guarded state it aliases.
type escState struct {
	held   lockSet
	taints map[string]string
}

func copyEscState(in escState) escState {
	out := escState{held: copyLockSet(in.held), taints: make(map[string]string, len(in.taints))}
	for k, v := range in.taints {
		out.taints[k] = v
	}
	return out
}

func runCritEscape(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		checkCritEscapeFunc(pass, fd)
	})
}

func checkCritEscapeFunc(pass *Pass, fd *ast.FuncDecl) {
	owners := lockOwnersOf(pass, fd)
	if len(owners) == 0 {
		return
	}
	g := cfg.Build(fd.Body)
	flow := cfg.Flow[escState]{
		Entry:  escState{held: lockSet{}, taints: map[string]string{}},
		Bottom: func() escState { return escState{held: lockSet{}, taints: map[string]string{}} },
		Join: func(a, b escState) escState {
			out := copyEscState(a)
			for k := range b.held {
				out.held[k] = true
			}
			for k, v := range b.taints {
				out.taints[k] = v
			}
			return out
		},
		Equal: func(a, b escState) bool {
			if len(a.held) != len(b.held) || len(a.taints) != len(b.taints) {
				return false
			}
			for k := range a.held {
				if !b.held[k] {
					return false
				}
			}
			for k, v := range a.taints {
				if b.taints[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in escState) escState {
			out := copyEscState(in)
			for _, s := range b.Stmts {
				escTransferStmt(pass, s, owners, out, nil)
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	for _, b := range g.Blocks {
		state := copyEscState(res.In[b])
		for _, s := range b.Stmts {
			escTransferStmt(pass, s, owners, state, func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			})
		}
	}
}

// lockOwnersOf maps each lock class acquired in fd to the objects its
// acquisitions are rooted at (the o of o.mu.Lock()).
func lockOwnersOf(pass *Pass, fd *ast.FuncDecl) map[string]map[types.Object]bool {
	owners := make(map[string]map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			class := mutexClass(pass, sel.X)
			if class == "" {
				return true
			}
			if obj := rootObject(pass, sel.X); obj != nil {
				if owners[class] == nil {
					owners[class] = make(map[types.Object]bool)
				}
				owners[class][obj] = true
			}
		}
		return true
	})
	return owners
}

// rootObject resolves the base identifier of a selector/index chain.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		default:
			return nil
		}
	}
}

// guardClassOf returns the held lock class whose owner roots e, when e is a
// reference-typed selector/index chain into guarded state — "" otherwise.
// A bare owner identifier does not count: passing o itself around is not an
// escape of o's guarded internals.
func guardClassOf(pass *Pass, e ast.Expr, owners map[string]map[types.Object]bool, held lockSet) string {
	if _, isIdent := e.(*ast.Ident); isIdent {
		return ""
	}
	if !isRefType(exprType(pass, e)) {
		return ""
	}
	obj := rootObject(pass, e)
	if obj == nil {
		return ""
	}
	for class := range held {
		if owners[class][obj] {
			return class
		}
	}
	return ""
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isRefType reports whether t aliases underlying storage when copied.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isParam := t.(*types.TypeParam); isParam {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// taintKeyOf returns the taint-map key for a local identifier target.
func taintKeyOf(pass *Pass, e ast.Expr) (string, types.Object) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", nil
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
		return facts.ObjectID(obj), obj
	}
	return "", nil
}

// taintOf returns the lock class e carries: either a tainted local or a
// direct owner-rooted reference under a held lock.
func taintOf(pass *Pass, e ast.Expr, owners map[string]map[types.Object]bool, st escState) string {
	if key, _ := taintKeyOf(pass, e); key != "" {
		if class, ok := st.taints[key]; ok {
			return class
		}
	}
	return guardClassOf(pass, e, owners, st.held)
}

// escTransferStmt applies one statement's lock, taint and escape effects;
// when report is non-nil, escapes are diagnosed.
func escTransferStmt(pass *Pass, s ast.Stmt, owners map[string]map[types.Object]bool, st escState, report func(pos token.Pos, format string, args ...any)) {
	// Lock effects first: an acquire at the top of the statement guards the
	// reads inside it (the common `mu.Lock()` statement stands alone, so
	// ordering within a statement is immaterial in practice).
	for _, op := range lockOpsOf(pass, s) {
		switch {
		case op.acquire:
			st.held[op.class] = true
		case op.release:
			delete(st.held, op.class)
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0] // multi-value: taint every target alike
				}
				if rhs == nil {
					continue
				}
				class := taintOf(pass, rhs, owners, st)
				if key, _ := taintKeyOf(pass, lhs); key != "" {
					if class != "" {
						st.taints[key] = class
					} else {
						delete(st.taints, key)
					}
					continue
				}
				if class == "" {
					continue
				}
				// Storing into the owner's own state keeps the reference
				// inside the section; anything else leaks it.
				if lhsObj := rootObject(pass, x.Lhs[i]); lhsObj != nil && owners[class][lhsObj] {
					continue
				}
				if report != nil {
					report(x.Pos(),
						"reference to state guarded by %s stored outside the critical section (aliases the guarded %s after unlock)",
						shortLock(class), refKind(exprType(pass, rhs)))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				class := taintOf(pass, r, owners, st)
				if class == "" {
					continue
				}
				if report != nil {
					report(r.Pos(),
						"reference to state guarded by %s escapes the critical section via return (caller aliases the guarded %s after unlock); return a copy instead",
						shortLock(class), refKind(exprType(pass, r)))
				}
			}
		case *ast.SendStmt:
			class := taintOf(pass, x.Value, owners, st)
			if class == "" {
				return true
			}
			if report != nil {
				report(x.Arrow,
					"reference to state guarded by %s escapes the critical section via channel send",
					shortLock(class))
			}
		}
		return true
	})
}

// refKind names a reference type's flavour for diagnostics.
func refKind(t types.Type) string {
	if t == nil {
		return "storage"
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice storage"
	case *types.Map:
		return "map storage"
	case *types.Pointer:
		return "pointee"
	case *types.Chan:
		return "channel"
	}
	return "storage"
}
