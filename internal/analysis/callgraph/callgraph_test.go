package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const graphSrc = `package p

type Doer interface{ Do() }

type A struct{}

func (a *A) Do() { helper() }

type B struct{}

func (b B) Do() {}

func helper() {}

func Run(d Doer) { d.Do() }

func Top() {
	a := &A{}
	Run(a)
}
`

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", graphSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var conf types.Config
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	b.AddPackage(fset, []*ast.File{f}, info, pkg)
	return b.Graph()
}

func hasCallee(g *Graph, caller, callee string) bool {
	for _, c := range g.Callees(caller) {
		if c == callee {
			return true
		}
	}
	return false
}

func TestStaticAndInterfaceEdges(t *testing.T) {
	g := buildTestGraph(t)

	if n := g.Nodes["example.com/p.Top"]; n == nil || n.Decl == nil {
		t.Fatal("Top missing from the graph or lacks its declaration")
	}
	if !hasCallee(g, "example.com/p.Top", "example.com/p.Run") {
		t.Errorf("static edge Top -> Run missing; callees: %v", g.Callees("example.com/p.Top"))
	}
	// The call through Doer.Do resolves by type-set: both implementations
	// gain an edge, concrete receivers included.
	for _, impl := range []string{"example.com/p.(A).Do", "example.com/p.(B).Do"} {
		if !hasCallee(g, "example.com/p.Run", impl) {
			t.Errorf("interface edge Run -> %s missing; callees: %v", impl, g.Callees("example.com/p.Run"))
		}
	}
	if !hasCallee(g, "example.com/p.(A).Do", "example.com/p.helper") {
		t.Errorf("edge (A).Do -> helper missing; callees: %v", g.Callees("example.com/p.(A).Do"))
	}
	if sites := g.CallSites("example.com/p.Top", "example.com/p.Run"); len(sites) != 1 {
		t.Errorf("got %d call sites for Top -> Run, want 1", len(sites))
	}
}

const funcValueSrc = `package q

func target() {}

type holder struct{ fn func() }

func store() *holder { return &holder{fn: target} }

func invoke(h *holder) { h.fn() }
`

// TestFunctionValueDispatchUnmodelled pins the graph's documented blind
// spot: storing a function in a field is a reference, not a call, and
// invoking it through the function value resolves to no declaration —
// neither site produces an edge to target. Analyzers built on the graph
// (lockorder, lockhold) inherit this: orderings that exist only inside a
// stored closure cannot produce phantom cycles, and costs behind a
// function value are invisible. The lockorder fixture's closure.go is the
// analyzer-level twin of this assertion.
func TestFunctionValueDispatchUnmodelled(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", funcValueSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var conf types.Config
	pkg, err := conf.Check("example.com/q", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	b.AddPackage(fset, []*ast.File{f}, info, pkg)
	g := b.Graph()

	if n := g.Nodes["example.com/q.target"]; n == nil {
		t.Fatal("target missing from the graph")
	}
	if hasCallee(g, "example.com/q.store", "example.com/q.target") {
		t.Errorf("store -> target edge exists: a stored function reference must not count as a call; callees: %v",
			g.Callees("example.com/q.store"))
	}
	if hasCallee(g, "example.com/q.invoke", "example.com/q.target") {
		t.Errorf("invoke -> target edge exists: function-value dispatch must stay unmodelled; callees: %v",
			g.Callees("example.com/q.invoke"))
	}
	if reach := g.Reachable([]string{"example.com/q.invoke"}, nil); reach["example.com/q.target"] {
		t.Error("target reachable from invoke through a function value")
	}
}

func TestReachableWithStopBoundary(t *testing.T) {
	g := buildTestGraph(t)

	all := g.Reachable([]string{"example.com/p.Top"}, nil)
	for _, want := range []string{
		"example.com/p.Top", "example.com/p.Run",
		"example.com/p.(A).Do", "example.com/p.(B).Do", "example.com/p.helper",
	} {
		if !all[want] {
			t.Errorf("unrestricted reachability misses %s", want)
		}
	}

	// A stop boundary at (A).Do keeps the boundary itself in the set but
	// does not expand through it: helper becomes unreachable.
	stopped := g.Reachable([]string{"example.com/p.Top"}, func(id string) bool {
		return id == "example.com/p.(A).Do"
	})
	if !stopped["example.com/p.(A).Do"] {
		t.Error("stop boundary itself should be reachable")
	}
	if stopped["example.com/p.helper"] {
		t.Error("traversal crossed the stop boundary into helper")
	}
}
