// Package callgraph builds a lightweight whole-program call-graph
// approximation over the packages amrivet loads: static calls (package
// functions and methods with concrete receivers) plus interface method
// calls resolved by type-set — a call through interface I's method M gains
// an edge to T.M for every named type T in the loaded corpus whose method
// set implements I. Calls through plain function values are not modelled
// (no edges), which errs toward missing edges: reachability-based
// analyzers (hotalloc) under-approximate and lock-order propagation never
// invents impossible nesting.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amri/internal/analysis/facts"
)

// Node is one function in the graph.
type Node struct {
	// ID is the facts.ObjectID of the function.
	ID string
	// Func is the type-checked object.
	Func *types.Func
	// Decl is the function's syntax when its defining package was
	// loaded from source; nil otherwise.
	Decl *ast.FuncDecl
	// Fset positions Decl.
	Fset *token.FileSet
}

// Edge is one call site.
type Edge struct {
	CallerID string
	CalleeID string
	// Pos is the call site's position.
	Pos token.Position
}

// Graph is the finalized call graph.
type Graph struct {
	// Nodes maps function ID → node for every function declared in the
	// loaded packages.
	Nodes map[string]*Node
	// edges maps caller ID → callee ID set.
	edges map[string]map[string][]token.Position
}

// Callees returns the IDs this function calls, sorted.
func (g *Graph) Callees(id string) []string {
	m := g.edges[id]
	out := make([]string, 0, len(m))
	for callee := range m {
		out = append(out, callee)
	}
	sort.Strings(out)
	return out
}

// CallSites returns the positions at which caller calls callee.
func (g *Graph) CallSites(caller, callee string) []token.Position {
	return g.edges[caller][callee]
}

// Reachable returns the set of function IDs reachable from the roots,
// including the roots themselves. The stop predicate, when non-nil, prunes
// traversal: a function for which stop returns true is included in the
// result but its callees are not followed (hotalloc's coldpath boundary).
func (g *Graph) Reachable(roots []string, stop func(id string) bool) map[string]bool {
	seen := make(map[string]bool)
	var work []string
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		if stop != nil && stop(id) {
			continue
		}
		for callee := range g.edges[id] {
			if !seen[callee] {
				seen[callee] = true
				work = append(work, callee)
			}
		}
	}
	return seen
}

// ifaceCall is an unresolved call through an interface method.
type ifaceCall struct {
	callerID string
	iface    *types.Interface
	method   string
	// pkg is the interface method's package, needed to resolve
	// unexported method names during lookup.
	pkg *types.Package
	pos token.Position
}

// Builder accumulates packages, then finalizes the graph.
type Builder struct {
	nodes      map[string]*Node
	edges      map[string]map[string][]token.Position
	ifaceCalls []ifaceCall
	// named collects every named type seen, for type-set resolution.
	named []*types.Named
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		nodes: make(map[string]*Node),
		edges: make(map[string]map[string][]token.Position),
	}
}

// AddPackage scans one type-checked package's syntax: function
// declarations become nodes, call expressions become edges (or pending
// interface calls), and every defined named type joins the resolution
// corpus. FuncLit bodies are attributed to their enclosing declaration.
func (b *Builder) AddPackage(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) {
	// Collect named types for the type-set.
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if n, ok := tn.Type().(*types.Named); ok {
				b.named = append(b.named, n)
			}
		}
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := facts.ObjectID(obj)
			b.nodes[id] = &Node{ID: id, Func: obj, Decl: fd, Fset: fset}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				b.addCall(fset, info, id, call)
				return true
			})
		}
	}
}

// addCall records one call expression from caller.
func (b *Builder) addCall(fset *token.FileSet, info *types.Info, callerID string, call *ast.CallExpr) {
	pos := fset.Position(call.Pos())
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			b.edge(callerID, facts.ObjectID(fn), pos)
		}
	case *ast.SelectorExpr:
		sel := info.Selections[fun]
		if sel == nil {
			// Qualified call pkg.F.
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				b.edge(callerID, facts.ObjectID(fn), pos)
			}
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return // field of func type: unmodelled function value
		}
		recv := sel.Recv()
		if types.IsInterface(recv) {
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				b.ifaceCalls = append(b.ifaceCalls, ifaceCall{
					callerID: callerID, iface: iface, method: fn.Name(), pkg: fn.Pkg(), pos: pos,
				})
			}
			return
		}
		b.edge(callerID, facts.ObjectID(fn), pos)
	}
}

func (b *Builder) edge(caller, callee string, pos token.Position) {
	if callee == "" {
		return
	}
	m, ok := b.edges[caller]
	if !ok {
		m = make(map[string][]token.Position)
		b.edges[caller] = m
	}
	m[callee] = append(m[callee], pos)
}

// Graph resolves pending interface calls against the accumulated type-set
// and returns the finished graph.
func (b *Builder) Graph() *Graph {
	for _, ic := range b.ifaceCalls {
		for _, n := range b.named {
			if types.IsInterface(n) {
				continue
			}
			impl := types.Implements(n, ic.iface) || types.Implements(types.NewPointer(n), ic.iface)
			if !impl {
				continue
			}
			// Find the concrete method the dynamic dispatch would reach.
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, ic.pkg, ic.method)
			if fn, ok := obj.(*types.Func); ok {
				b.edge(ic.callerID, facts.ObjectID(fn), ic.pos)
			}
		}
	}
	b.ifaceCalls = nil
	return &Graph{Nodes: b.nodes, edges: b.edges}
}
