package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirectives drives the suppression machinery over the ignore
// fixture: same-line and line-above directives suppress, a directive
// naming a different analyzer does not, and a bare directive (no reason)
// is itself a finding.
func TestIgnoreDirectives(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(moduleRoot(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{WallClock})

	var missingReason, wallclock int
	for _, d := range diags {
		switch d.Analyzer {
		case "amrivet":
			if !strings.Contains(d.Message, "missing a reason") {
				t.Errorf("unexpected framework diagnostic: %s", d)
			}
			missingReason++
		case "wallclock":
			wallclock++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if missingReason != 1 {
		t.Errorf("got %d missing-reason findings, want 1", missingReason)
	}
	// wrongScope (directive names detrand) and bareDirective (malformed)
	// must still be reported; the two well-formed suppressions must not.
	if wallclock != 2 {
		t.Errorf("got %d surviving wallclock findings, want 2 (wrongScope, bareDirective)", wallclock)
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestLoadModulePackage exercises the go-list-backed loader end to end on
// a real module package.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "amri/internal/bitindex")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Config") == nil {
		t.Fatal("bitindex.Config not found in the type-checked package")
	}
	if len(pkg.Files) == 0 || pkg.Info == nil {
		t.Fatal("loader returned no syntax or type info")
	}
}

// TestAnalyzersRegistered pins the suite contents: CI's gate is only as
// strong as the analyzers actually wired in.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{
		"mutexguard", "bitbudget", "wallclock", "detrand", "atomicmix",
		"lockorder", "chanprotocol", "hotalloc", "errdrop",
		"lockhold", "critescape", "waitleak", "falseshare",
		"maporder", "barrierflush", "walorder", "atomicproto",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
