package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"amri/internal/analysis/facts"
)

// MutexGuard enforces the pipeline's lock discipline around shared state
// such as the per-operator AdaptiveIndex: a struct field that sits in a
// mutex's guarded group must only be touched while that mutex is held.
//
// A field is considered guarded by a mutex when either
//
//   - it is declared in the same contiguous field group as (i.e. no blank
//     line between it and) a preceding sync.Mutex / sync.RWMutex field —
//     the standard Go "mu protects what follows" layout convention — or
//   - its doc or line comment says "guarded by <name>".
//
// An access is accepted when the enclosing function lexically calls
// <base>.<mutex>.Lock() (or RLock()) on the same base expression before
// the access — directly, or through a lock helper: a method that acquires
// its receiver's mutex and returns still holding it exports an
// AcquiresMutexFact, and a call to it counts as a lock acquisition at the
// call site, across package boundaries. Bases that are local variables
// freshly built from a composite literal are exempt (construction precedes
// sharing), as are receiver accesses in a method whose name ends in
// "Locked" — the standard Go marker that the caller must already hold the
// receiver's mutex. This is a lexical approximation, not a happens-before proof:
// it will not catch a Lock on one branch guarding an access on another,
// but it reliably flags the dangerous default — touching guarded state
// with no lock call in sight.
//
// The analyzer also flags methods and functions that take a lock-bearing
// struct by value: the copy's mutex starts unlocked and guards nothing.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc:  "reports accesses to mutex-guarded struct fields outside a Lock/Unlock span, and lock-bearing structs passed by value",
	Run:  runMutexGuard,
}

// AcquiresMutexFact marks a function that returns holding its receiver's
// mutex (a lock helper): it contains a Lock/RLock of the named mutex field
// and no matching release.
type AcquiresMutexFact struct {
	Mutex string `json:"mutex"`
}

// FactName implements facts.Fact.
func (*AcquiresMutexFact) FactName() string { return "amrivet.acquiresmutex" }

func init() { facts.Register(&AcquiresMutexFact{}) }

var guardedByRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

// guardedField records which mutex field guards a struct field,
// keyed by the field object's declaration position (stable across generic
// instantiation).
type guardedField struct {
	structName string
	fieldName  string
	mutex      string
}

func runMutexGuard(pass *Pass) {
	guarded := collectGuardedFields(pass)
	// Export lock-helper facts first so same-package callers (and, via the
	// encoded store, dependent packages) can credit calls to them.
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		if mutex := lockHelperMutex(pass, fd); mutex != "" {
			pass.ExportFact(obj, &AcquiresMutexFact{Mutex: mutex})
		}
	})
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockByValue(pass, fd)
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
}

// lockHelperMutex reports the receiver mutex field a method acquires and
// never releases — the "lock and return held" helper shape — or "".
func lockHelperMutex(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil {
		return ""
	}
	locked := make(map[string]bool)
	released := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok || !(isNamed(tv.Type, "sync", "Mutex") || isNamed(tv.Type, "sync", "RWMutex")) {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			locked[inner.Sel.Name] = true
		case "Unlock", "RUnlock":
			released[inner.Sel.Name] = true
		}
		return true
	})
	for name := range locked {
		if !released[name] {
			return name
		}
	}
	return ""
}

// collectGuardedFields scans struct declarations for mutex-guarded field
// groups.
func collectGuardedFields(pass *Pass) map[token.Pos]guardedField {
	guarded := make(map[token.Pos]guardedField)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			currentMutex := ""
			prevLine := -1
			for _, field := range st.Fields.List {
				start := field.Pos()
				if field.Doc != nil {
					start = field.Doc.Pos()
				}
				line := pass.Fset.Position(start).Line
				if prevLine >= 0 && line > prevLine+1 {
					currentMutex = "" // a blank line ends the guarded group
				}
				end := field.End()
				if field.Comment != nil {
					end = field.Comment.End()
				}
				prevLine = pass.Fset.Position(end).Line

				if name, ok := mutexFieldName(pass, field); ok {
					currentMutex = name
					continue
				}
				mutex := currentMutex
				if m := guardedByRE.FindStringSubmatch(fieldCommentText(field)); m != nil {
					mutex = m[1]
				}
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj.Pos()] = guardedField{
							structName: ts.Name.Name,
							fieldName:  name.Name,
							mutex:      mutex,
						}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// mutexFieldName reports whether the struct field is a sync.Mutex or
// sync.RWMutex (by value or pointer) and returns its name.
func mutexFieldName(pass *Pass, field *ast.Field) (string, bool) {
	var t types.Type
	if tv, ok := pass.Info.Types[field.Type]; ok {
		t = tv.Type
	}
	if t == nil || !(isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")) {
		return "", false
	}
	if len(field.Names) > 0 {
		return field.Names[0].Name, true
	}
	// Embedded: the implicit field name is the type name.
	return namedType(t).Obj().Name(), true
}

func fieldCommentText(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// lockCall is one <base>.<mutex>.Lock() / .RLock() observed in a function.
type lockCall struct {
	base  string
	mutex string
	pos   token.Pos
}

func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[token.Pos]guardedField) {
	if len(guarded) == 0 {
		return
	}
	var locks []lockCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			// A call to a lock helper (exported AcquiresMutexFact) counts
			// as acquiring its receiver's mutex on this base.
			if fn := calleeFunc(pass, call); fn != nil {
				var af AcquiresMutexFact
				if pass.Facts.Lookup(facts.ObjectID(fn), &af) {
					locks = append(locks, lockCall{
						base:  types.ExprString(sel.X),
						mutex: af.Mutex,
						pos:   call.Pos(),
					})
				}
			}
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			// Direct lock on a mutex-typed variable: record with no base.
			locks = append(locks, lockCall{base: "", mutex: types.ExprString(sel.X), pos: call.Pos()})
			return true
		}
		locks = append(locks, lockCall{
			base:  types.ExprString(inner.X),
			mutex: inner.Sel.Name,
			pos:   call.Pos(),
		})
		return true
	})
	fresh := freshLocals(pass, fd)
	// A method named *Locked documents that its caller already holds the
	// receiver's mutex: receiver-based accesses inside it are accepted.
	recvHeld := ""
	if fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") &&
		len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvHeld = fd.Recv.List[0].Names[0].Name
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		g, ok := guarded[selection.Obj().Pos()]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if recvHeld != "" && base == recvHeld {
			return true // caller holds the receiver's mutex by contract
		}
		if ident, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[ident]; obj != nil && fresh[obj] {
				return true // freshly constructed local: not yet shared
			}
		}
		for _, l := range locks {
			if l.pos < sel.Pos() && l.mutex == g.mutex && (l.base == base || l.base == "") {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %q but accessed without a preceding %s.%s.Lock() in this function",
			g.structName, g.fieldName, g.mutex, base, g.mutex)
		return true
	})
}

// freshLocals returns the set of local variables assigned from a composite
// literal (or its address) inside fd — values under construction that are
// not yet visible to other goroutines.
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			ident, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := pass.Info.Defs[ident]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// checkLockByValue flags receivers and parameters whose type carries a
// sync.Mutex / sync.RWMutex by value: the callee operates on a copy whose
// zeroed mutex guards nothing.
func checkLockByValue(pass *Pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, what string) {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			return
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return
		}
		if path := lockPath(tv.Type, nil); path != nil {
			pass.Reportf(field.Pos(), "%s passes lock by value: %s contains %s",
				what, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), strings.Join(path, "."))
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			check(f, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			check(f, "parameter")
		}
	}
}

// lockPath returns the field path to an embedded lock inside t, or nil.
func lockPath(t types.Type, seen []*types.Named) []string {
	if isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex") ||
		isNamed(t, "sync", "WaitGroup") || isNamed(t, "sync", "Once") || isNamed(t, "sync", "Cond") {
		return []string{namedType(t).Obj().Name()}
	}
	if n := namedType(t); n != nil {
		for _, s := range seen {
			if s == n {
				return nil
			}
		}
		seen = append(seen, n)
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if _, isPtr := f.Type().(*types.Pointer); isPtr {
			continue
		}
		if sub := lockPath(f.Type(), seen); sub != nil {
			return append([]string{f.Name()}, sub...)
		}
	}
	return nil
}
