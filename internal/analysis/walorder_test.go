package analysis

import (
	"strings"
	"testing"
)

func TestWALOrderFixture(t *testing.T) {
	diags := runFixture(t, WALOrder, "walorder")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
	// Injected-bug smoke case: the WAL append moved after its channel-send
	// ack produces exactly one finding.
	acks := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "(channel send) before its WAL append") {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("ack-before-append smoke case: want exactly 1 finding, got %d", acks)
	}
}
