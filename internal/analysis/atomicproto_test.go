package analysis

import (
	"strings"
	"testing"
)

func TestAtomicProtoFixture(t *testing.T) {
	diags := runFixture(t, AtomicProto, "atomicproto")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
	// Injected-bug smoke case: the reordered handshake load produces
	// exactly one asymmetry finding.
	handshakes := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "asymmetric handshake") {
			handshakes++
		}
	}
	if handshakes != 1 {
		t.Fatalf("reordered-handshake smoke case: want exactly 1 finding, got %d", handshakes)
	}
}
