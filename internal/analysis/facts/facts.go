// Package facts is the cross-package fact store behind amrivet's
// interprocedural analyzers, mirroring the shape of go/analysis Facts: an
// analyzer running over one package may attach serializable facts to that
// package's objects (functions, methods, struct fields), and analyzers
// running later over dependent packages import those facts and build on
// them — e.g. mutexguard learns that (*Directory).swap acquires mu while
// analyzing bitindex, and uses that knowledge when checking pipeline.
//
// Facts are keyed by a stable textual object ID (see ObjectID) rather than
// by *types.Object pointers so a package's fact set survives encoding: the
// driver serializes each analyzed package's facts to JSON and decodes them
// into the store of every dependent, exactly like export data flows through
// `go list -export`.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is one serializable datum attached to an object. Implementations
// must be pointer types with JSON-encodable exported fields, and must be
// registered via Register before use.
type Fact interface {
	// FactName identifies the fact type in encoded form; it must be
	// unique across all registered facts.
	FactName() string
}

// registry maps fact names to prototypes for decoding.
var registry = make(map[string]reflect.Type)

// Register records a fact prototype so encoded packages mentioning it can
// be decoded. It panics on duplicate names (a programming error).
func Register(proto Fact) {
	name := proto.FactName()
	t := reflect.TypeOf(proto)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("facts: prototype %s is not a pointer type", name))
	}
	if prev, ok := registry[name]; ok && prev != t.Elem() {
		panic(fmt.Sprintf("facts: duplicate fact name %q", name))
	}
	registry[name] = t.Elem()
}

// ObjectID returns a stable, package-qualified identifier for obj:
//
//	pkgpath.Name                    package-level func/var/type/const
//	pkgpath.(Recv).Method           method (pointer receivers stripped)
//	pkgpath.Struct.Field            struct field (via FieldID)
//	pkgpath.local.Name              anything scoped inside a function
//
// The ID is stable across loads of the same source, which is what lets a
// fact exported while analyzing one package be found by its importers.
func ObjectID(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fmt.Sprintf("%s.(%s).%s", pkg, recvName(sig.Recv().Type()), fn.Name())
		}
		return pkg + "." + fn.Name()
	}
	// Fields and locals have a non-package parent scope; mark them so two
	// same-named locals in different functions do not collide with a
	// package-level object. (Collisions between sibling locals are
	// acceptable at the granularity facts are used: lock and channel
	// classes.)
	if v, ok := obj.(*types.Var); ok && !isPackageLevel(v) {
		return pkg + ".local." + v.Name()
	}
	return pkg + "." + obj.Name()
}

// FieldID returns the identifier for field fieldName of the named struct
// type owner (as ObjectID would, but computable from a types.Selection's
// receiver where the *types.Var alone does not reveal its struct).
func FieldID(owner *types.Named, fieldName string) string {
	obj := owner.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name() + "." + fieldName
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	default:
		return strings.ReplaceAll(t.String(), " ", "")
	}
}

func isPackageLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// entry is one stored fact instance.
type entry struct {
	pkg  string // exporting package path
	fact Fact
}

// Store holds facts for one analysis session. The zero value is not ready;
// use NewStore.
type Store struct {
	// byObject maps object ID → fact name → entry.
	byObject map[string]map[string]entry
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{byObject: make(map[string]map[string]entry)}
}

// Export attaches a fact to the object identified by objID on behalf of
// pkgPath. Exporting a second fact of the same type to the same object
// overwrites the first.
func (s *Store) Export(pkgPath, objID string, f Fact) {
	if _, ok := registry[f.FactName()]; !ok {
		panic(fmt.Sprintf("facts: exporting unregistered fact %q", f.FactName()))
	}
	m, ok := s.byObject[objID]
	if !ok {
		m = make(map[string]entry)
		s.byObject[objID] = m
	}
	m[f.FactName()] = entry{pkg: pkgPath, fact: f}
}

// Lookup copies the fact of ptr's type attached to objID into ptr,
// reporting whether one was found. ptr must be a registered pointer-typed
// Fact, as in go/analysis' ImportObjectFact.
func (s *Store) Lookup(objID string, ptr Fact) bool {
	m, ok := s.byObject[objID]
	if !ok {
		return false
	}
	e, ok := m[ptr.FactName()]
	if !ok {
		return false
	}
	rv := reflect.ValueOf(ptr).Elem()
	rv.Set(reflect.ValueOf(e.fact).Elem())
	return true
}

// Objects returns the IDs of every object carrying a fact named name,
// sorted for deterministic iteration.
func (s *Store) Objects(name string) []string {
	var ids []string
	for id, m := range s.byObject {
		if _, ok := m[name]; ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Merge copies every fact from other into s.
func (s *Store) Merge(other *Store) {
	for id, m := range other.byObject {
		for _, e := range m {
			s.Export(e.pkg, id, e.fact)
		}
	}
}

// encodedFact is the serialized form of one fact.
type encodedFact struct {
	Object string          `json:"object"`
	Pkg    string          `json:"pkg"`
	Name   string          `json:"name"`
	Data   json.RawMessage `json:"data"`
}

// Encode serializes the store's complete fact set — including facts merged
// in from dependencies, so importing one blob transitively imports the
// whole dependency cone, as go/analysis does.
func (s *Store) Encode() ([]byte, error) {
	var out []encodedFact
	for id, m := range s.byObject {
		for name, e := range m {
			data, err := json.Marshal(e.fact)
			if err != nil {
				return nil, fmt.Errorf("facts: encoding %s on %s: %v", name, id, err)
			}
			out = append(out, encodedFact{Object: id, Pkg: e.pkg, Name: name, Data: data})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Name < out[j].Name
	})
	return json.Marshal(out)
}

// Decode merges an encoded fact set into the store. Facts of unregistered
// types are an error: an analyzer that consumes a fact must have
// registered it.
func (s *Store) Decode(data []byte) error {
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("facts: decoding store: %v", err)
	}
	for _, ef := range in {
		t, ok := registry[ef.Name]
		if !ok {
			return fmt.Errorf("facts: decoded unregistered fact type %q", ef.Name)
		}
		ptr := reflect.New(t)
		if err := json.Unmarshal(ef.Data, ptr.Interface()); err != nil {
			return fmt.Errorf("facts: decoding %s on %s: %v", ef.Name, ef.Object, err)
		}
		s.Export(ef.Pkg, ef.Object, ptr.Interface().(Fact))
	}
	return nil
}
