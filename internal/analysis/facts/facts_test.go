package facts

import (
	"go/token"
	"go/types"
	"strings"
	"testing"
)

type flowFact struct{ Value string }

func (*flowFact) FactName() string { return "facts.test.flow" }

type otherFact struct{ N int }

func (*otherFact) FactName() string { return "facts.test.other" }

func init() {
	Register(&flowFact{})
	Register(&otherFact{})
}

func TestObjectIDForms(t *testing.T) {
	pkg := types.NewPackage("example.com/p", "p")

	fn := types.NewFunc(token.NoPos, pkg, "F", types.NewSignatureType(nil, nil, nil, nil, nil, false))
	if got := ObjectID(fn); got != "example.com/p.F" {
		t.Errorf("package func: got %q", got)
	}

	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "T", nil), types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
	method := types.NewFunc(token.NoPos, pkg, "M", types.NewSignatureType(recv, nil, nil, nil, nil, false))
	if got := ObjectID(method); got != "example.com/p.(T).M" {
		t.Errorf("method (pointer receiver stripped): got %q", got)
	}

	if got := FieldID(named, "mu"); got != "example.com/p.T.mu" {
		t.Errorf("field: got %q", got)
	}

	pkgVar := types.NewVar(token.NoPos, pkg, "G", types.Typ[types.Int])
	pkg.Scope().Insert(pkgVar)
	if got := ObjectID(pkgVar); got != "example.com/p.G" {
		t.Errorf("package var: got %q", got)
	}

	local := types.NewVar(token.NoPos, pkg, "x", types.Typ[types.Int])
	if got := ObjectID(local); got != "example.com/p.local.x" {
		t.Errorf("local var: got %q", got)
	}

	if got := ObjectID(nil); got != "" {
		t.Errorf("nil object: got %q", got)
	}
}

func TestExportLookupRoundTrip(t *testing.T) {
	s := NewStore()
	s.Export("p", "p.F", &flowFact{Value: "a"})

	var got flowFact
	if !s.Lookup("p.F", &got) || got.Value != "a" {
		t.Fatalf("Lookup after Export: ok with %+v", got)
	}
	// Re-exporting the same fact type overwrites.
	s.Export("p", "p.F", &flowFact{Value: "b"})
	if !s.Lookup("p.F", &got) || got.Value != "b" {
		t.Errorf("Lookup after overwrite: %+v", got)
	}
	if s.Lookup("p.Missing", &got) {
		t.Error("Lookup succeeded for an object with no facts")
	}
	var wrong otherFact
	if s.Lookup("p.F", &wrong) {
		t.Error("Lookup succeeded for a fact type never exported on the object")
	}
}

func TestObjectsSorted(t *testing.T) {
	s := NewStore()
	s.Export("p", "p.B", &flowFact{})
	s.Export("p", "p.A", &flowFact{})
	s.Export("p", "p.C", &otherFact{})
	got := s.Objects("facts.test.flow")
	if len(got) != 2 || got[0] != "p.A" || got[1] != "p.B" {
		t.Errorf("Objects = %v, want [p.A p.B]", got)
	}
}

// Encoding a store that already merged a dependency's facts must carry the
// whole cone: decoding one blob transitively imports everything upstream,
// the property RunAll's per-package import step relies on.
func TestEncodeDecodeTransitiveCone(t *testing.T) {
	dep := NewStore()
	dep.Export("example.com/dep", "example.com/dep.F", &flowFact{Value: "from-dep"})
	blob1, err := dep.Encode()
	if err != nil {
		t.Fatal(err)
	}

	mid := NewStore()
	if err := mid.Decode(blob1); err != nil {
		t.Fatal(err)
	}
	mid.Export("example.com/mid", "example.com/mid.G", &flowFact{Value: "from-mid"})
	blob2, err := mid.Encode()
	if err != nil {
		t.Fatal(err)
	}

	top := NewStore()
	if err := top.Decode(blob2); err != nil {
		t.Fatal(err)
	}
	var got flowFact
	if !top.Lookup("example.com/dep.F", &got) || got.Value != "from-dep" {
		t.Errorf("dep fact lost through two encode/decode hops: %+v", got)
	}
	if !top.Lookup("example.com/mid.G", &got) || got.Value != "from-mid" {
		t.Errorf("mid fact lost through encode/decode: %+v", got)
	}
}

func TestDecodeUnregisteredFactIsError(t *testing.T) {
	s := NewStore()
	err := s.Decode([]byte(`[{"object":"p.F","pkg":"p","name":"facts.test.unregistered","data":{}}]`))
	if err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("Decode of unregistered fact: err = %v", err)
	}
}

func TestMerge(t *testing.T) {
	a := NewStore()
	a.Export("p1", "p1.F", &flowFact{Value: "one"})
	b := NewStore()
	b.Export("p2", "p2.G", &otherFact{N: 2})

	a.Merge(b)
	var f flowFact
	var o otherFact
	if !a.Lookup("p1.F", &f) || f.Value != "one" {
		t.Errorf("own fact lost after Merge: %+v", f)
	}
	if !a.Lookup("p2.G", &o) || o.N != 2 {
		t.Errorf("merged fact missing: %+v", o)
	}
}
