package analysis

import (
	"go/token"
	"testing"

	"amri/internal/analysis/facts"
)

type crossFlowFact struct{ From string }

func (*crossFlowFact) FactName() string { return "amrivet.test.crossflow" }

func init() { facts.Register(&crossFlowFact{}) }

// RunAll must visit packages dependencies-first and decode each import's
// encoded fact blob into the dependent's store: a fact exported while
// analyzing bitindex is visible when core (which imports it) is analyzed,
// and again in the merged session store during the Finish phase.
func TestRunAllFactsFlowAcrossPackages(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/bitindex", "./internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}

	probe := &Analyzer{
		Name: "crossflowprobe",
		Doc:  "test-only: verifies facts flow along the import DAG",
		Run: func(p *Pass) {
			switch p.PkgPath {
			case "amri/internal/bitindex":
				obj := p.Pkg.Scope().Lookup("New")
				if obj == nil {
					t.Error("bitindex.New not found")
					return
				}
				p.ExportFact(obj, &crossFlowFact{From: p.PkgPath})
			case "amri/internal/core":
				var f crossFlowFact
				if p.Facts.Lookup("amri/internal/bitindex.New", &f) && f.From == "amri/internal/bitindex" {
					p.Reportf(p.Files[0].Pos(), "fact received in dependent")
				}
			}
		},
		Finish: func(s *Session) {
			var f crossFlowFact
			if s.Facts.Lookup("amri/internal/bitindex.New", &f) {
				s.Reportf(token.Position{Filename: "session", Line: 1, Column: 1}, "fact in session store")
			}
		},
	}

	diags, err := RunAll(pkgs, []*Analyzer{probe})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	var inDependent, inSession bool
	for _, d := range diags {
		switch d.Message {
		case "fact received in dependent":
			inDependent = true
		case "fact in session store":
			inSession = true
		}
	}
	if !inDependent {
		t.Error("fact exported while analyzing bitindex was not visible while analyzing core")
	}
	if !inSession {
		t.Error("fact missing from the merged session store in the Finish phase")
	}
}
