package analysis

import "testing"

func TestHotAllocFixture(t *testing.T) {
	diags := runFixture(t, HotAlloc, "hotalloc")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
