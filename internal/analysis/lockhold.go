package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
)

// LockHold keeps critical sections that guard the probe hot path cheap.
// Shahvarani & Jacobsen's multicore stream-join result is blunt: concurrent
// index access only pays when critical sections are short and
// allocation-free. This analyzer proves where we violate that. Per package,
// the lockorder may-held dataflow is rerun and every statement executed
// with a lock held is scanned for costly operations:
//
//   - heap allocations (make, new, &composite{}, append to a non-receiver
//     slice — the same constructs hotalloc tracks)
//   - channel sends and receives (scheduler round-trips under a lock)
//   - map writes (growth can allocate and rehash mid-section)
//   - I/O and sleeps (fmt/os/io/log/bufio calls, time.Sleep)
//   - blocking waits (sync.WaitGroup.Wait, sync.Cond.Wait)
//   - nested lock acquisitions (each inner class extends the outer hold)
//
// Each function also exports the costly-op kinds its own body performs
// unconditionally; the whole-program phase propagates those through the
// call graph (stopping at amrivet:coldpath boundaries, like hotalloc), so a
// call made while holding a lock is charged with everything its transitive
// callees do. Findings are reported only inside functions reachable from an
// //amrivet:hotpath root — cold-side sections may hold locks across
// whatever they like.
//
// A deliberate hold is accepted with a dedicated directive on the line (or
// the line above):
//
//	//amrivet:lockhold <reason>
//
// The reason is mandatory and should say why the hold is sound (e.g. "flat
// index demands exclusivity by contract"). Operations inside function
// literals are not attributed to the enclosing function, and deferred calls
// run at return, outside the section bodies analyzed here.
var LockHold = &Analyzer{
	Name:   "lockhold",
	Doc:    "reports costly operations (allocation, channel ops, I/O, nested locks) performed while holding a lock on the hot path",
	Run:    runLockHold,
	Finish: finishLockHold,
}

// Costly-op kinds, also the vocabulary of LockHoldFact.Costs.
const (
	costAlloc  = "allocation"
	costChan   = "channel operation"
	costMap    = "map write"
	costIO     = "I/O"
	costWait   = "blocking wait"
	costNested = "nested lock acquisition"
)

// HeldOp is one costly operation observed while at least one lock is held.
type HeldOp struct {
	Kind   string   `json:"kind"`
	Detail string   `json:"detail"`
	Held   []string `json:"held"`
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Col    int      `json:"col"`
}

// LockHoldFact is one function's contribution: the costly ops it performs
// under its own locks, the calls it makes under locks, and the cost kinds
// its body performs regardless of lock state (inherited by callers that
// hold locks across a call to it).
type LockHoldFact struct {
	Ops   []HeldOp   `json:"ops"`
	Calls []HeldCall `json:"calls"`
	Costs []string   `json:"costs"`
}

// FactName implements facts.Fact.
func (*LockHoldFact) FactName() string { return "amrivet.lockhold" }

func init() { facts.Register(&LockHoldFact{}) }

func runLockHold(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		// Export hotpath/coldpath facts here as well as in hotalloc, so the
		// analyzer is self-contained when run alone (identical facts
		// overwrite harmlessly). Reason-less directives are reported once,
		// by hotalloc, not twice.
		exportPathDirectivesQuiet(pass, fd)
		fact := analyzeLockHoldFunc(pass, fd)
		if len(fact.Ops) == 0 && len(fact.Calls) == 0 && len(fact.Costs) == 0 {
			return
		}
		pass.ExportFact(obj, fact)
	})
}

// costOp is one costly operation found inside a single statement.
type costOp struct {
	kind   string
	detail string
	pos    token.Pos
}

// analyzeLockHoldFunc reruns the may-held lock dataflow over fd and records
// every costly operation and call executed with a non-empty held set, plus
// the function's unconditional cost summary.
func analyzeLockHoldFunc(pass *Pass, fd *ast.FuncDecl) *LockHoldFact {
	g := cfg.Build(fd.Body)
	flow := cfg.Flow[lockSet]{
		Entry:  lockSet{},
		Bottom: func() lockSet { return lockSet{} },
		Join: func(a, b lockSet) lockSet {
			out := copyLockSet(a)
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b lockSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in lockSet) lockSet {
			out := copyLockSet(in)
			for _, s := range b.Stmts {
				for _, op := range lockOpsOf(pass, s) {
					switch {
					case op.acquire:
						out[op.class] = true
					case op.release:
						delete(out, op.class)
					}
				}
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	fact := &LockHoldFact{}
	recv := receiverObject(pass, fd)
	for _, b := range g.Blocks {
		held := copyLockSet(res.In[b])
		for _, s := range b.Stmts {
			if len(held) > 0 {
				for _, op := range costlyOpsOf(pass, s, recv) {
					pos := pass.Fset.Position(op.pos)
					fact.Ops = append(fact.Ops, HeldOp{
						Kind: op.kind, Detail: op.detail, Held: sortedClasses(held),
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
					})
				}
			}
			for _, op := range lockOpsOf(pass, s) {
				pos := pass.Fset.Position(op.pos)
				switch {
				case op.acquire:
					if len(held) > 0 && !held[op.class] {
						fact.Ops = append(fact.Ops, HeldOp{
							Kind: costNested, Detail: shortLock(op.class), Held: sortedClasses(held),
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
						})
					}
					held[op.class] = true
				case op.release:
					delete(held, op.class)
				case op.call:
					if len(held) == 0 {
						continue
					}
					fact.Calls = append(fact.Calls, HeldCall{
						Callee: op.class, Held: sortedClasses(held),
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
					})
				}
			}
		}
	}
	fact.Costs = costSummaryOf(pass, fd, recv)
	return fact
}

// sortedClasses renders a held set for facts and messages.
func sortedClasses(held lockSet) []string {
	out := make([]string, 0, len(held))
	for c := range held {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// costlyOpsOf scans one statement (not descending into function literals,
// not counting deferred calls — those run at return) for the costly
// operations lockhold charges to a critical section. Lock operations are
// handled separately by the caller.
func costlyOpsOf(pass *Pass, s ast.Stmt, recv types.Object) []costOp {
	var ops []costOp
	if _, isDefer := s.(*ast.DeferStmt); isDefer {
		return nil
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			ops = append(ops, costOp{kind: costChan, detail: "send", pos: x.Arrow})
		case *ast.UnaryExpr:
			switch x.Op {
			case token.ARROW:
				ops = append(ops, costOp{kind: costChan, detail: "receive", pos: x.Pos()})
			case token.AND:
				if _, ok := x.X.(*ast.CompositeLit); ok {
					ops = append(ops, costOp{kind: costAlloc, detail: "address of composite literal", pos: x.Pos()})
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := pass.Info.Types[ix.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						ops = append(ops, costOp{kind: costMap, detail: "map assignment", pos: ix.Pos()})
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						ops = append(ops, costOp{kind: costAlloc, detail: "make", pos: x.Pos()})
					case "new":
						ops = append(ops, costOp{kind: costAlloc, detail: "new", pos: x.Pos()})
					case "append":
						if len(x.Args) > 0 && !isReceiverScratch(pass, x.Args[0], recv) {
							ops = append(ops, costOp{kind: costAlloc, detail: "append to non-receiver slice", pos: x.Pos()})
						}
					}
					return true
				}
			}
			if kind, detail := blockingCallKind(pass, x); kind != "" {
				ops = append(ops, costOp{kind: kind, detail: detail, pos: x.Pos()})
			}
		}
		return true
	})
	return ops
}

// ioPackages are stdlib packages whose calls count as I/O under a lock.
var ioPackages = map[string]bool{
	"fmt": true, "os": true, "io": true, "log": true, "bufio": true, "net": true,
}

// blockingCallKind classifies a call as I/O or a blocking wait, if it is
// one of the well-known stdlib forms.
func blockingCallKind(pass *Pass, call *ast.CallExpr) (kind, detail string) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	path := fn.Pkg().Path()
	if ioPackages[path] {
		return costIO, path + "." + fn.Name()
	}
	if path == "time" && fn.Name() == "Sleep" {
		return costIO, "time.Sleep"
	}
	if path == "sync" && fn.Name() == "Wait" {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if tv, ok := pass.Info.Types[sel.X]; ok &&
				(isNamed(tv.Type, "sync", "WaitGroup") || isNamed(tv.Type, "sync", "Cond")) {
				return costWait, types.ExprString(sel.X) + ".Wait"
			}
		}
	}
	return "", ""
}

// costSummaryOf computes the cost kinds fd's body performs unconditionally
// (under its own locks or not): callers holding a lock across a call to fd
// inherit these.
func costSummaryOf(pass *Pass, fd *ast.FuncDecl, recv types.Object) []string {
	kinds := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			for _, op := range costlyOpsOf(pass, s, recv) {
				kinds[op.kind] = true
			}
			for _, op := range lockOpsOf(pass, s) {
				if op.acquire {
					kinds[costNested] = true
				}
			}
			// costlyOpsOf/lockOpsOf already recurse through the statement;
			// stop here so nested statements are not double-counted (the
			// kinds set dedups anyway, but avoid the quadratic walk).
			return false
		}
		return true
	})
	var out []string
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// finishLockHold restricts reporting to the hot cone, propagates cost
// summaries through the call graph, and reports direct ops plus held calls
// whose callees transitively do costly work.
func finishLockHold(s *Session) {
	roots := s.Facts.Objects((&HotPathFact{}).FactName())
	if len(roots) == 0 {
		return
	}
	isCold := func(id string) bool {
		var cold ColdPathFact
		return s.Facts.Lookup(id, &cold)
	}
	hot := s.Graph.Reachable(roots, isCold)

	// Transitive cost kinds per function, to a fixpoint over call edges.
	// Coldpath boundaries contribute nothing — a hold that only reaches
	// deliberate slow-path work is that boundary's problem, not the lock's.
	trans := make(map[string]map[string]bool)
	factOf := make(map[string]*LockHoldFact)
	for _, id := range s.Facts.Objects((&LockHoldFact{}).FactName()) {
		var f LockHoldFact
		if !s.Facts.Lookup(id, &f) {
			continue
		}
		ff := f
		factOf[id] = &ff
		if isCold(id) {
			continue
		}
		set := make(map[string]bool)
		for _, k := range f.Costs {
			set[k] = true
		}
		trans[id] = set
	}
	ids := make([]string, 0, len(s.Graph.Nodes))
	for id := range s.Graph.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if isCold(id) {
				continue
			}
			for _, callee := range s.Graph.Callees(id) {
				if isCold(callee) {
					continue
				}
				for k := range trans[callee] {
					if !trans[id][k] {
						if trans[id] == nil {
							trans[id] = make(map[string]bool)
						}
						trans[id][k] = true
						changed = true
					}
				}
			}
		}
	}

	var hotIDs []string
	for id := range factOf {
		if hot[id] && !isCold(id) {
			hotIDs = append(hotIDs, id)
		}
	}
	sort.Strings(hotIDs)
	for _, id := range hotIDs {
		f := factOf[id]
		for _, op := range f.Ops {
			s.Reportf(token.Position{Filename: op.File, Line: op.Line, Column: op.Col},
				"%s (%s) while holding %s in %s, which guards hot-path code; shrink the critical section or accept with amrivet:lockhold <reason>",
				op.Kind, op.Detail, shortHeld(op.Held), shortLock(id))
		}
		for _, hc := range f.Calls {
			var kinds []string
			for k := range trans[hc.Callee] {
				kinds = append(kinds, k)
			}
			if len(kinds) == 0 {
				continue
			}
			sort.Strings(kinds)
			s.Reportf(token.Position{Filename: hc.File, Line: hc.Line, Column: hc.Col},
				"call to %s while holding %s in %s: the callee transitively performs %s under the lock; shrink the critical section or accept with amrivet:lockhold <reason>",
				shortLock(hc.Callee), shortHeld(hc.Held), shortLock(id), strings.Join(kinds, ", "))
		}
	}
}

// shortHeld renders a held set compactly for diagnostics.
func shortHeld(held []string) string {
	short := make([]string, len(held))
	for i, h := range held {
		short[i] = shortLock(h)
	}
	return strings.Join(short, ", ")
}
