package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"amri/internal/analysis/facts"
)

// Hot-path annotations. Two doc-comment directives parameterize the
// interprocedural analyzers:
//
//	//amrivet:hotpath <reason>
//
// marks a function as a probe hot-path root: hotalloc reports heap
// allocations in every function reachable from it through the call graph.
//
//	//amrivet:coldpath <reason>
//
// marks a function as a deliberate boundary: traversal stops there (its
// body and callees are exempt). Both require a reason, like amrivet:ignore.

var (
	hotpathRE  = regexp.MustCompile(`^//\s*amrivet:hotpath\s*(.*)$`)
	coldpathRE = regexp.MustCompile(`^//\s*amrivet:coldpath\s*(.*)$`)
)

// HotPathFact marks a function as a hot-path root for reachability.
type HotPathFact struct {
	Reason string `json:"reason"`
}

// FactName implements facts.Fact.
func (*HotPathFact) FactName() string { return "amrivet.hotpath" }

// ColdPathFact marks a function as a hot-path traversal boundary.
type ColdPathFact struct {
	Reason string `json:"reason"`
}

// FactName implements facts.Fact.
func (*ColdPathFact) FactName() string { return "amrivet.coldpath" }

func init() {
	facts.Register(&HotPathFact{})
	facts.Register(&ColdPathFact{})
}

// exportPathDirectives scans fd's doc comment for hotpath/coldpath
// directives and exports the matching facts. A directive without a reason
// is reported (mirroring amrivet:ignore's mandatory-reason rule).
func exportPathDirectives(pass *Pass, fd *ast.FuncDecl) {
	exportPathDirectivesImpl(pass, fd, true)
}

// exportPathDirectivesQuiet exports the facts without reporting malformed
// directives — for analyzers that consume hotpath facts alongside hotalloc
// (which owns the missing-reason diagnostic) but must also be
// self-contained when run alone.
func exportPathDirectivesQuiet(pass *Pass, fd *ast.FuncDecl) {
	exportPathDirectivesImpl(pass, fd, false)
}

func exportPathDirectivesImpl(pass *Pass, fd *ast.FuncDecl, report bool) {
	if fd.Doc == nil {
		return
	}
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	for _, c := range fd.Doc.List {
		if m := hotpathRE.FindStringSubmatch(c.Text); m != nil {
			reason := strings.TrimSpace(m[1])
			if reason == "" {
				if report {
					pass.Reportf(c.Pos(), "amrivet:hotpath directive is missing a reason")
				}
				continue
			}
			pass.ExportFact(obj, &HotPathFact{Reason: reason})
		}
		if m := coldpathRE.FindStringSubmatch(c.Text); m != nil {
			reason := strings.TrimSpace(m[1])
			if reason == "" {
				if report {
					pass.Reportf(c.Pos(), "amrivet:coldpath directive is missing a reason")
				}
				continue
			}
			pass.ExportFact(obj, &ColdPathFact{Reason: reason})
		}
	}
}

// forEachFuncDecl applies fn to every function declaration with a body.
func forEachFuncDecl(pass *Pass, fn func(fd *ast.FuncDecl, obj *types.Func)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn(fd, obj)
		}
	}
}
