package analysis

import "testing"

func TestAtomicMixFixture(t *testing.T) {
	diags := runFixture(t, AtomicMix, "atomicmix")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
