package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amri/internal/analysis/facts"
)

// WaitLeak is the static twin of pipeline/leak_test.go: it reports
// goroutines spawned on paths where a blocking receive or Wait is not
// matched by any cancel/close edge, so the goroutine can never be released.
//
// The per-package phase records, for every function: the goroutines it
// spawns (named callees of `go f()` / `go o.m()`, plus the direct callees
// and channel operations of spawned function literals), its blocking
// channel receives, range-over-channel loops and sync.WaitGroup.Wait calls
// (with positions), and — as potential release edges — every send, close
// and WaitGroup.Done it performs anywhere, including inside function
// literals (a closer goroutine is itself usually a literal).
//
// The whole-program phase walks the call graph from every spawn root and
// reports each blocking site whose channel class has no send and no close
// anywhere in the program (for Wait: no Done on that WaitGroup class). A
// select statement blocks forever only if every receive case is
// counterpart-free and there is no default clause, which approximates "the
// blocking receive is post-dominated by a cancel/close edge" without a
// post-dominator pass: a select that also watches a cancellable channel
// has its release edge in the other case.
//
// Channels identified only dynamically (call results, elements of
// collections) are not classified and never reported; function values are
// unmodelled, so spawn roots through stored closures are missed — the same
// deliberate under-approximation as the call graph itself.
var WaitLeak = &Analyzer{
	Name:   "waitleak",
	Doc:    "reports goroutines whose blocking receive/Wait has no matching send, close or Done anywhere in the program",
	Run:    runWaitLeak,
	Finish: finishWaitLeak,
}

// GoSpawnFact lists the goroutine entry points a function spawns.
type GoSpawnFact struct {
	Roots []string `json:"roots"`
}

// FactName implements facts.Fact.
func (*GoSpawnFact) FactName() string { return "amrivet.gospawn" }

// BlockSite is one potentially-forever-blocking operation.
type BlockSite struct {
	Kind  string `json:"kind"` // "receive", "range", "wait"
	Class string `json:"class"`
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
}

// SelectSite is one select statement's receive cases, reported only when
// every case is counterpart-free.
type SelectSite struct {
	Classes    []string `json:"classes"`
	HasDefault bool     `json:"hasDefault"`
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Col        int      `json:"col"`
}

// ChanUseFact is one function's blocking sites and release edges. Spawned
// and SpawnedSelects hold the blocking sites of goroutine literals declared
// in this function — those run on a fresh goroutine even though the call
// graph attributes the body to the enclosing declaration.
type ChanUseFact struct {
	Blocking       []BlockSite  `json:"blocking"`
	Selects        []SelectSite `json:"selects"`
	Spawned        []BlockSite  `json:"spawned"`
	SpawnedSelects []SelectSite `json:"spawnedSelects"`
	Sends          []string     `json:"sends"`
	Closes         []string     `json:"closes"`
	Dones          []string     `json:"dones"`
}

// FactName implements facts.Fact.
func (*ChanUseFact) FactName() string { return "amrivet.chanuse" }

func init() {
	facts.Register(&GoSpawnFact{})
	facts.Register(&ChanUseFact{})
}

func runWaitLeak(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		if roots := collectSpawnRoots(pass, fd); len(roots) > 0 {
			pass.ExportFact(obj, &GoSpawnFact{Roots: roots})
		}
		fact := collectChanUses(pass, fd)
		if len(fact.Blocking) == 0 && len(fact.Selects) == 0 && len(fact.Spawned) == 0 &&
			len(fact.SpawnedSelects) == 0 && len(fact.Sends) == 0 && len(fact.Closes) == 0 &&
			len(fact.Dones) == 0 {
			return
		}
		pass.ExportFact(obj, fact)
	})
}

// collectSpawnRoots finds the goroutine entry points fd spawns: named
// callees of go statements, and the direct callees of spawned literals.
func collectSpawnRoots(pass *Pass, fd *ast.FuncDecl) []string {
	seen := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if fn := calleeFunc(pass, call); fn != nil {
						seen[facts.ObjectID(fn)] = true
					}
				}
				return true
			})
			return true
		}
		if fn := calleeFunc(pass, g.Call); fn != nil {
			seen[facts.ObjectID(fn)] = true
		}
		return true
	})
	var out []string
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// wgClass identifies a sync.WaitGroup expression like mutexClass does for
// mutexes: fields by declaring struct, variables by object ID.
func wgClass(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || !isNamed(tv.Type, "sync", "WaitGroup") {
		return ""
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			return facts.ObjectID(obj)
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if owner := namedType(sel.Recv()); owner != nil {
				return facts.FieldID(owner, x.Sel.Name)
			}
		}
		if obj := pass.Info.Uses[x.Sel]; obj != nil {
			return facts.ObjectID(obj)
		}
	}
	return ""
}

// collectChanUses gathers fd's blocking sites and release edges. Release
// edges (sends, closes, Dones) are collected everywhere including function
// literals; blocking sites only outside literals, except literals spawned
// by a go statement, whose blocking sites land in Spawned.
func collectChanUses(pass *Pass, fd *ast.FuncDecl) *ChanUseFact {
	fact := &ChanUseFact{
		Blocking:       []BlockSite{},
		Spawned:        []BlockSite{},
		Selects:        []SelectSite{},
		SpawnedSelects: []SelectSite{},
	}
	sends := make(map[string]bool)
	closes := make(map[string]bool)
	dones := make(map[string]bool)

	// Release edges: whole body, literals included.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if class := chanClass(pass, x.Chan); class != "" {
				sends[class] = true
			}
		case *ast.CallExpr:
			if isBuiltinClose(pass, x) {
				if class := chanClass(pass, x.Args[0]); class != "" {
					closes[class] = true
				}
				return true
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if class := wgClass(pass, sel.X); class != "" {
					dones[class] = true
				}
			}
		}
		return true
	})

	spawnedLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawnedLits[lit] = true
			}
		}
		return true
	})

	var collectBlocking func(root ast.Node, into *[]BlockSite, selects *[]SelectSite)
	collectBlocking = func(root ast.Node, into *[]BlockSite, selects *[]SelectSite) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if x == root {
					return true
				}
				if spawnedLits[x] {
					collectBlocking(x, &fact.Spawned, &fact.SpawnedSelects)
				}
				return false
			case *ast.SelectStmt:
				site := SelectSite{}
				pos := pass.Fset.Position(x.Pos())
				site.File, site.Line, site.Col = pos.Filename, pos.Line, pos.Column
				for _, clause := range x.Body.List {
					cc, ok := clause.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm == nil {
						site.HasDefault = true
						continue
					}
					switch comm := cc.Comm.(type) {
					case *ast.ExprStmt:
						if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							site.Classes = append(site.Classes, chanClass(pass, u.X))
						}
					case *ast.AssignStmt:
						if len(comm.Rhs) == 1 {
							if u, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
								site.Classes = append(site.Classes, chanClass(pass, u.X))
							}
						}
					case *ast.SendStmt:
						// A send case releases when some receiver exists;
						// treat it like a receive on the same class for the
						// all-cases-dead test.
						site.Classes = append(site.Classes, chanClass(pass, comm.Chan))
					}
				}
				*selects = append(*selects, site)
				return false // cases handled above; don't double-count receives
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if class := chanClass(pass, x.X); class != "" {
						p := pass.Fset.Position(x.Pos())
						*into = append(*into, BlockSite{Kind: "receive", Class: class,
							File: p.Filename, Line: p.Line, Col: p.Column})
					}
				}
			case *ast.RangeStmt:
				if class := chanClass(pass, x.X); class != "" {
					p := pass.Fset.Position(x.Pos())
					*into = append(*into, BlockSite{Kind: "range", Class: class,
						File: p.Filename, Line: p.Line, Col: p.Column})
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					if class := wgClass(pass, sel.X); class != "" {
						p := pass.Fset.Position(x.Pos())
						*into = append(*into, BlockSite{Kind: "wait", Class: class,
							File: p.Filename, Line: p.Line, Col: p.Column})
					}
				}
			}
			return true
		})
	}
	collectBlocking(fd.Body, &fact.Blocking, &fact.Selects)

	for class := range sends {
		fact.Sends = append(fact.Sends, class)
	}
	for class := range closes {
		fact.Closes = append(fact.Closes, class)
	}
	for class := range dones {
		fact.Dones = append(fact.Dones, class)
	}
	sort.Strings(fact.Sends)
	sort.Strings(fact.Closes)
	sort.Strings(fact.Dones)
	return fact
}

// finishWaitLeak assembles the program-wide release-edge sets, walks the
// call graph from every spawn root, and reports counterpart-free blocking
// sites reachable on a spawned goroutine.
func finishWaitLeak(s *Session) {
	released := make(map[string]bool) // chan classes with a send or close
	doned := make(map[string]bool)    // wg classes with a Done
	factOf := make(map[string]*ChanUseFact)
	for _, id := range s.Facts.Objects((&ChanUseFact{}).FactName()) {
		var f ChanUseFact
		if !s.Facts.Lookup(id, &f) {
			continue
		}
		ff := f
		factOf[id] = &ff
		for _, c := range f.Sends {
			released[c] = true
		}
		for _, c := range f.Closes {
			released[c] = true
		}
		for _, c := range f.Dones {
			doned[c] = true
		}
	}

	var roots []string
	rootSeen := make(map[string]bool)
	for _, id := range s.Facts.Objects((&GoSpawnFact{}).FactName()) {
		var f GoSpawnFact
		if !s.Facts.Lookup(id, &f) {
			continue
		}
		for _, r := range f.Roots {
			if !rootSeen[r] {
				rootSeen[r] = true
				roots = append(roots, r)
			}
		}
	}
	sort.Strings(roots)

	dead := func(site BlockSite) bool {
		if site.Kind == "wait" {
			return !doned[site.Class]
		}
		return !released[site.Class]
	}
	report := func(site BlockSite, where string) {
		verb, counterpart := "blocking receive on", "send or close"
		switch site.Kind {
		case "range":
			verb = "range over"
		case "wait":
			verb, counterpart = "Wait on", "Done"
		}
		s.Reportf(token.Position{Filename: site.File, Line: site.Line, Column: site.Col},
			"%s %s in %s has no matching %s anywhere in the program: the spawned goroutine blocks forever (goroutine leak)",
			verb, shortLock(site.Class), where, counterpart)
	}
	deadSelect := func(sel SelectSite) bool {
		if sel.HasDefault || len(sel.Classes) == 0 {
			return false
		}
		for _, c := range sel.Classes {
			if c == "" || released[c] {
				return false
			}
		}
		return true
	}
	reportSelect := func(sel SelectSite, where string) {
		s.Reportf(token.Position{Filename: sel.File, Line: sel.Line, Column: sel.Col},
			"select in %s has no case with a matching send or close anywhere in the program and no default: the spawned goroutine blocks forever (goroutine leak)",
			where)
	}

	var ids []string
	for id := range factOf {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	reported := make(map[string]bool)
	once := func(file string, line, col int) bool {
		key := fmt.Sprintf("%s:%d:%d", file, line, col)
		if reported[key] {
			return false
		}
		reported[key] = true
		return true
	}

	// Blocking sites directly inside spawned literals leak regardless of
	// reachability: the literal is the goroutine.
	for _, id := range ids {
		f := factOf[id]
		for _, site := range f.Spawned {
			if dead(site) && once(site.File, site.Line, site.Col) {
				report(site, "goroutine spawned by "+shortLock(id))
			}
		}
		for _, sel := range f.SpawnedSelects {
			if deadSelect(sel) && once(sel.File, sel.Line, sel.Col) {
				reportSelect(sel, "goroutine spawned by "+shortLock(id))
			}
		}
	}

	// Blocking sites in functions reachable from a spawn root.
	reach := s.Graph.Reachable(roots, nil)
	for _, id := range ids {
		if !reach[id] {
			continue
		}
		f := factOf[id]
		for _, site := range f.Blocking {
			if dead(site) && once(site.File, site.Line, site.Col) {
				report(site, shortLock(id)+" (reachable from a go statement)")
			}
		}
		for _, sel := range f.Selects {
			if deadSelect(sel) && once(sel.File, sel.Line, sel.Col) {
				reportSelect(sel, shortLock(id)+" (reachable from a go statement)")
			}
		}
	}
}
