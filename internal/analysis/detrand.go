package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detRandExemptPackages may draw from any randomness source: sim and
// stream own the workload generators and seed their own sources; the
// analyzer's concern is everything downstream of them.
var detRandExemptPackages = map[string]bool{
	"sim":    true,
	"stream": true,
}

// detRandConstructors are the sanctioned math/rand entry points: they
// return an explicit source the caller must seed, which is exactly what
// reproducibility requires.
var detRandConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

// DetRand forbids the global math/rand (and math/rand/v2) source outside
// sim/stream. Every run in this repo is keyed by a seed — the benchmark
// figures, the engine-vs-pipeline equivalence tests and the trace replays
// all assume that a fixed seed reproduces the same byte-identical
// workload. One rand.IntN from the process-global source breaks that
// silently: the source is seeded randomly at startup and shared across
// goroutines, so results stop being a function of the seed.
//
// internal/fault — the pipeline's seeded chaos injector — is allowed its
// "randomness" without an exemption entry because it takes the strictest
// sanctioned path: it never imports math/rand at all. Every fault decision
// is a splitmix64 hash of (plan seed, fault kind, actor, per-actor event
// counter), so it is green here by construction and stays reproducible
// even across goroutine interleavings, which a shared seeded *rand.Rand
// would not be. Prefer that pattern (see the fixture's hashDecide) for any
// future per-event probabilistic decision made from concurrent goroutines.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "reports use of the global math/rand source outside sim/stream; use rand.New with the run's seed",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if isDetRandExempt(pass) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[ident]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are the sanctioned path
			}
			if detRandConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(ident.Pos(),
				"%s.%s draws from the process-global source and breaks seeded reproducibility; use rand.New with the run's seed",
				path, fn.Name())
			return true
		})
	}
}

func isDetRandExempt(pass *Pass) bool {
	if detRandExemptPackages[pass.Pkg.Name()] {
		return true
	}
	segs := strings.Split(pass.PkgPath, "/")
	return detRandExemptPackages[segs[len(segs)-1]]
}
