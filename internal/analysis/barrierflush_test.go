package analysis

import (
	"strings"
	"testing"
)

func TestBarrierFlushFixture(t *testing.T) {
	diags := runFixture(t, BarrierFlush, "barrierflush")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
	// Injected-bug smoke case: the pre-barrier scratch read produces
	// exactly one direct-read finding.
	direct := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "scratch.ndec is written by a goroutine") {
			direct++
		}
	}
	if direct != 1 {
		t.Fatalf("early-read smoke case: want exactly 1 finding, got %d", direct)
	}
}
