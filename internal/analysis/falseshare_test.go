package analysis

import "testing"

func TestFalseShareFixture(t *testing.T) {
	diags := runFixture(t, FalseShare, "falseshare")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
