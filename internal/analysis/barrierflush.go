package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
	"amri/internal/analysis/valueflow"
)

// BarrierFlush enforces the flushWorkers discipline: a field written by a
// goroutine spawned in this function (a worker's scratch, an operator's
// serve-loop state) may only be read back after a happens-before barrier —
// a sync.WaitGroup.Wait call, or a call to a function annotated
//
//	//amrivet:barrier <reason>
//
// (the dispatcher's park-join, exported as a BarrierFact). Reading such a
// field before the barrier is a data race even when it happens to work on
// one machine. The analysis is flow-sensitive: a go statement adds the
// spawned function's transitive field-write set (valueflow.FieldAccessFact,
// composed through the facts store across packages) to the dirty set, a
// barrier clears it, and a read — direct, or transitively through a call —
// of a dirty field before the next barrier is reported.
//
// Mutex-guarded accesses are exempt (the lock, not the barrier,
// synchronizes them — see valueflow's guardedOwners), and atomics never
// enter write sets (they mutate through method calls). The companion
// canonical-merge check flags ranging over a map field a spawned goroutine
// wrote while appending the elements to a slice: the merge order then
// depends on map iteration, which breaks digest-identical runs — the
// multiset must be collected and sorted (or the keys iterated in a fixed
// order) instead.
var BarrierFlush = &Analyzer{
	Name: "barrierflush",
	Doc:  "reports goroutine-written scratch fields read before a happens-before barrier (WaitGroup.Wait or an amrivet:barrier function), and unsorted map-range merges of them",
	Run:  runBarrierFlush,
}

// BarrierFact marks a function as a happens-before barrier: returning from
// it orders every prior spawned write before subsequent reads.
type BarrierFact struct {
	Reason string `json:"reason"`
}

// FactName implements facts.Fact.
func (*BarrierFact) FactName() string { return "amrivet.barrier" }

var barrierRE = regexp.MustCompile(`^//\s*amrivet:barrier\s*(.*)$`)

func init() { facts.Register(&BarrierFact{}) }

func runBarrierFlush(pass *Pass) {
	// Directive pass first so same-package barrier calls resolve.
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		if fd.Doc == nil {
			return
		}
		for _, c := range fd.Doc.List {
			if m := barrierRE.FindStringSubmatch(c.Text); m != nil {
				reason := strings.TrimSpace(m[1])
				if reason == "" {
					pass.Reportf(c.Pos(), "amrivet:barrier directive is missing a reason")
					continue
				}
				pass.ExportFact(obj, &BarrierFact{Reason: reason})
			}
		}
	})

	fam := valueflow.CollectFieldAccess(valueflow.Package{
		Fset:    pass.Fset,
		Files:   pass.Files,
		Pkg:     pass.Pkg,
		PkgPath: pass.PkgPath,
		Info:    pass.Info,
		Facts:   pass.Facts,
	})
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		checkBarrierFunc(pass, fd, fam)
	})
}

// accessOf resolves a callee's transitive field accesses: same-package map
// first, then the imported facts store.
func accessOf(pass *Pass, fam map[*types.Func]*valueflow.FieldAccessFact, fn *types.Func) *valueflow.FieldAccessFact {
	if f, ok := fam[fn]; ok {
		return f
	}
	var f valueflow.FieldAccessFact
	if pass.Facts.Lookup(facts.ObjectID(fn), &f) {
		return &f
	}
	return nil
}

// spawnedWrites collects the transitive field-write set of a go
// statement's target: a static callee's summary, or a function literal's
// direct writes plus the summaries of everything it calls.
func spawnedWrites(pass *Pass, fam map[*types.Func]*valueflow.FieldAccessFact, call *ast.CallExpr) []string {
	set := make(map[string]bool)
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		_, writes, callees := valueflow.BodyFieldAccess(pass.Info, lit)
		for _, w := range writes {
			set[w] = true
		}
		for _, fn := range callees {
			if f := accessOf(pass, fam, fn); f != nil {
				for _, w := range f.Writes {
					set[w] = true
				}
			}
		}
	} else if fn := valueflow.StaticCallee(pass.Info, call); fn != nil {
		if f := accessOf(pass, fam, fn); f != nil {
			for _, w := range f.Writes {
				set[w] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// isBarrierCall reports whether the call establishes a happens-before
// barrier: sync.WaitGroup.Wait or an amrivet:barrier-annotated function.
func isBarrierCall(pass *Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
		if s := pass.Info.Selections[sel]; s != nil && isNamed(s.Recv(), "sync", "WaitGroup") {
			return true
		}
	}
	if fn := valueflow.StaticCallee(pass.Info, call); fn != nil {
		var f BarrierFact
		if pass.Facts.Lookup(facts.ObjectID(fn), &f) {
			return true
		}
	}
	return false
}

// dirtySet is the lattice: may-dirty field IDs (union join).
type dirtySet map[string]bool

func copyDirty(in dirtySet) dirtySet {
	out := make(dirtySet, len(in))
	for k := range in {
		out[k] = true
	}
	return out
}

func checkBarrierFunc(pass *Pass, fd *ast.FuncDecl, fam map[*types.Func]*valueflow.FieldAccessFact) {
	// Only functions that spawn goroutines carry a barrier obligation.
	spawns := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
		}
		return true
	})
	if !spawns {
		return
	}

	g := cfg.Build(fd.Body)
	flow := cfg.Flow[dirtySet]{
		Entry:  dirtySet{},
		Bottom: func() dirtySet { return dirtySet{} },
		Join: func(a, b dirtySet) dirtySet {
			out := copyDirty(a)
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b dirtySet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in dirtySet) dirtySet {
			out := copyDirty(in)
			for _, s := range b.Stmts {
				barrierTransferStmt(pass, s, fam, out, false)
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	// Everything any spawned goroutine may write, for the merge check.
	universe := make(dirtySet)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if gs, ok := n.(*ast.GoStmt); ok {
			for _, w := range spawnedWrites(pass, fam, gs.Call) {
				universe[w] = true
			}
		}
		return true
	})

	for _, b := range g.Blocks {
		st := copyDirty(res.In[b])
		for _, s := range b.Stmts {
			barrierTransferStmt(pass, s, fam, st, true)
		}
	}
	checkMergeLoops(pass, fd, universe)
}

// barrierTransferStmt applies one statement's spawn/barrier effects; with
// report set, pre-barrier reads of dirty fields are diagnosed.
func barrierTransferStmt(pass *Pass, s ast.Stmt, fam map[*types.Func]*valueflow.FieldAccessFact, st dirtySet, report bool) {
	// Reads are checked against the state BEFORE this statement's own
	// spawn takes effect (the spawn's arguments are evaluated first).
	if report {
		reportDirtyReads(pass, s, fam, st)
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, w := range spawnedWrites(pass, fam, x.Call) {
				st[w] = true
			}
			return false // the spawned call itself is not a read here
		case *ast.CallExpr:
			if isBarrierCall(pass, x) {
				for k := range st {
					delete(st, k)
				}
			}
		}
		return true
	})
}

// reportDirtyReads diagnoses reads of dirty fields in one statement:
// direct selector reads, and calls whose transitive read set intersects
// the dirty set.
func reportDirtyReads(pass *Pass, s ast.Stmt, fam map[*types.Func]*valueflow.FieldAccessFact, st dirtySet) {
	if len(st) == 0 {
		return
	}
	if gs, ok := s.(*ast.GoStmt); ok {
		_ = gs
		return // a sibling goroutine's own accesses are its business
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectorExpr:
			sel := pass.Info.Selections[x]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			owner := namedType(sel.Recv())
			if owner == nil {
				return true
			}
			id := facts.FieldID(owner, x.Sel.Name)
			if st[id] {
				pass.Reportf(x.Pos(),
					"%s is written by a goroutine spawned above and read here before any barrier (WaitGroup.Wait or an amrivet:barrier call)",
					shortLock(id))
			}
		case *ast.CallExpr:
			fn := valueflow.StaticCallee(pass.Info, x)
			if fn == nil {
				return true
			}
			if isBarrierCall(pass, x) {
				return true
			}
			f := accessOf(pass, fam, fn)
			if f == nil {
				return true
			}
			for _, r := range f.Reads {
				if st[r] {
					pass.Reportf(x.Pos(),
						"call to %s reads %s, written by a goroutine spawned above, before any barrier (WaitGroup.Wait or an amrivet:barrier call)",
						fn.Name(), shortLock(r))
					break
				}
			}
		}
		return true
	})
}

// checkMergeLoops flags non-canonical merges: ranging over a map field a
// spawned goroutine wrote while appending its elements to a slice — the
// accumulated order then follows map iteration, which differs run to run.
func checkMergeLoops(pass *Pass, fd *ast.FuncDecl, universe dirtySet) {
	if len(universe) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := exprType(pass, rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		sel, ok := ast.Unparen(rs.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		owner := namedType(s.Recv())
		if owner == nil || !universe[facts.FieldID(owner, sel.Sel.Name)] {
			return true
		}
		// The body must accumulate by append for the order to matter.
		appends := false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					appends = true
				}
			}
			return true
		})
		if appends {
			pass.Reportf(rs.Pos(),
				"merge loop ranges over goroutine-written map field %s and appends its elements: the merged order follows map iteration and differs run to run; sort the keys (or the result) for a canonical merge",
				shortLock(facts.FieldID(namedType(s.Recv()), sel.Sel.Name)))
		}
		return true
	})
}
