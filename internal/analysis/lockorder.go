package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
)

// LockOrder builds a global mutex acquisition-order graph and reports
// cycles. Per package, a flow-sensitive pass computes the may-held lock set
// at every statement (CFG forward analysis, union join: "some path reaches
// here with mu held") and exports, per function, the locks it acquires, the
// held→acquired orderings it establishes, and the calls it makes while
// holding locks. The whole-program phase propagates acquisitions through
// the call graph to a fixpoint — a call made under a lock contributes an
// ordering edge to every lock the callee's transitive closure acquires —
// then reports every edge on a cycle of the resulting order graph, plus
// self-edges (acquiring a lock that may already be held: self-deadlock for
// Go's non-reentrant mutexes).
//
// Lock identity is the mutex's declaration — field mu of type T is one lock
// class regardless of instance — so two instances of one struct locked in
// inconsistent order are reported. RLock is treated like Lock: reader-
// writer interleavings deadlock the same way. Locks taken inside function
// literals are attributed to nothing (a closure's body does not run at its
// definition site); calls through function values are likewise unmodelled.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "reports inconsistent mutex acquisition orders (deadlock cycles) across the whole program",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// LockEdge is one observed ordering: After acquired while Before was held.
type LockEdge struct {
	Before string `json:"before"`
	After  string `json:"after"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
}

// HeldCall is one call made while holding locks.
type HeldCall struct {
	Callee string   `json:"callee"`
	Held   []string `json:"held"`
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Col    int      `json:"col"`
}

// LockOrderFact is one function's contribution to the global order graph.
type LockOrderFact struct {
	Acquires []string   `json:"acquires"`
	Edges    []LockEdge `json:"edges"`
	Calls    []HeldCall `json:"calls"`
}

// FactName implements facts.Fact.
func (*LockOrderFact) FactName() string { return "amrivet.lockorder" }

func init() { facts.Register(&LockOrderFact{}) }

// lockSet is the may-held lattice value: lock class → held.
type lockSet map[string]bool

func copyLockSet(in lockSet) lockSet {
	out := make(lockSet, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// lockOp is one Lock/Unlock recognized inside a statement, or a call.
type lockOp struct {
	class   string // lock class for acquire/release, callee ID for calls
	acquire bool
	release bool
	call    bool
	pos     token.Pos
}

func runLockOrder(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		fact := analyzeLockOrderFunc(pass, fd)
		if len(fact.Acquires) == 0 && len(fact.Edges) == 0 && len(fact.Calls) == 0 {
			return
		}
		pass.ExportFact(obj, fact)
	})
}

// analyzeLockOrderFunc runs the held-lock dataflow over one function and
// assembles its fact.
func analyzeLockOrderFunc(pass *Pass, fd *ast.FuncDecl) *LockOrderFact {
	g := cfg.Build(fd.Body)
	flow := cfg.Flow[lockSet]{
		Entry:  lockSet{},
		Bottom: func() lockSet { return lockSet{} },
		Join: func(a, b lockSet) lockSet {
			out := copyLockSet(a)
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b lockSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in lockSet) lockSet {
			out := copyLockSet(in)
			for _, s := range b.Stmts {
				for _, op := range lockOpsOf(pass, s) {
					switch {
					case op.acquire:
						out[op.class] = true
					case op.release:
						delete(out, op.class)
					}
				}
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	fact := &LockOrderFact{}
	acquired := make(map[string]bool)
	edgeSeen := make(map[string]bool)
	for _, b := range g.Blocks {
		held := copyLockSet(res.In[b])
		for _, s := range b.Stmts {
			for _, op := range lockOpsOf(pass, s) {
				pos := pass.Fset.Position(op.pos)
				switch {
				case op.acquire:
					acquired[op.class] = true
					for h := range held {
						key := h + "\x00" + op.class
						if !edgeSeen[key] {
							edgeSeen[key] = true
							fact.Edges = append(fact.Edges, LockEdge{
								Before: h, After: op.class,
								File: pos.Filename, Line: pos.Line, Col: pos.Column,
							})
						}
					}
					held[op.class] = true
				case op.release:
					delete(held, op.class)
				case op.call:
					if len(held) == 0 {
						continue
					}
					var hs []string
					for h := range held {
						hs = append(hs, h)
					}
					sort.Strings(hs)
					fact.Calls = append(fact.Calls, HeldCall{
						Callee: op.class, Held: hs,
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
					})
				}
			}
		}
	}
	for c := range acquired {
		fact.Acquires = append(fact.Acquires, c)
	}
	sort.Strings(fact.Acquires)
	sort.Slice(fact.Edges, func(i, j int) bool {
		if fact.Edges[i].Line != fact.Edges[j].Line {
			return fact.Edges[i].Line < fact.Edges[j].Line
		}
		return fact.Edges[i].Before < fact.Edges[j].Before
	})
	return fact
}

// lockOpsOf extracts the lock operations and calls of one statement in
// source order, not descending into function literals.
func lockOpsOf(pass *Pass, s ast.Stmt) []lockOp {
	var ops []lockOp
	deferred := make(map[ast.Node]bool)
	if d, ok := s.(*ast.DeferStmt); ok {
		// A deferred Unlock releases at return, not here: the lock stays
		// held for the rest of the function. A deferred Lock (perverse) is
		// likewise not an acquisition at this point.
		deferred[d.Call] = true
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			// Plain ident call f(...).
			if id, ok := call.Fun.(*ast.Ident); ok {
				if fn, ok := pass.Info.Uses[id].(*types.Func); ok {
					ops = append(ops, lockOp{class: facts.ObjectID(fn), call: true, pos: call.Pos()})
				}
			}
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if class := mutexClass(pass, sel.X); class != "" {
				ops = append(ops, lockOp{class: class, acquire: true, pos: call.Pos()})
				return true
			}
		case "Unlock", "RUnlock":
			if class := mutexClass(pass, sel.X); class != "" {
				ops = append(ops, lockOp{class: class, release: true, pos: call.Pos()})
				return true
			}
		}
		// Method or qualified call.
		if selection := pass.Info.Selections[sel]; selection != nil {
			if fn, ok := selection.Obj().(*types.Func); ok {
				ops = append(ops, lockOp{class: facts.ObjectID(fn), call: true, pos: call.Pos()})
			}
		} else if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
			ops = append(ops, lockOp{class: facts.ObjectID(fn), call: true, pos: call.Pos()})
		}
		return true
	})
	return ops
}

// mutexClass returns the lock class of e when e is a sync.Mutex/RWMutex
// expression: fields are identified by their declaring struct (one class
// per field, all instances), variables by their object ID.
func mutexClass(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || !(isNamed(tv.Type, "sync", "Mutex") || isNamed(tv.Type, "sync", "RWMutex")) {
		return ""
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			return facts.ObjectID(obj)
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if owner := namedType(sel.Recv()); owner != nil {
				return facts.FieldID(owner, x.Sel.Name)
			}
		}
		if obj := pass.Info.Uses[x.Sel]; obj != nil {
			return facts.ObjectID(obj) // package-qualified var
		}
	}
	return ""
}

// finishLockOrder assembles the global order graph and reports cycles.
func finishLockOrder(s *Session) {
	// Transitive acquisitions per function, to a fixpoint over call edges.
	acquires := make(map[string]map[string]bool)
	factOf := make(map[string]*LockOrderFact)
	for _, id := range s.Facts.Objects((&LockOrderFact{}).FactName()) {
		var f LockOrderFact
		if !s.Facts.Lookup(id, &f) {
			continue
		}
		ff := f
		factOf[id] = &ff
		set := make(map[string]bool)
		for _, c := range f.Acquires {
			set[c] = true
		}
		acquires[id] = set
	}
	ids := make([]string, 0, len(s.Graph.Nodes))
	for id := range s.Graph.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			for _, callee := range s.Graph.Callees(id) {
				for c := range acquires[callee] {
					if !acquires[id][c] {
						if acquires[id] == nil {
							acquires[id] = make(map[string]bool)
						}
						acquires[id][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Global edge set: direct orderings plus call-derived ones.
	type edgeKey struct{ before, after string }
	edges := make(map[edgeKey]token.Position)
	addEdge := func(before, after string, pos token.Position) {
		k := edgeKey{before, after}
		if _, ok := edges[k]; !ok {
			edges[k] = pos
		}
	}
	var factIDs []string
	for id := range factOf {
		factIDs = append(factIDs, id)
	}
	sort.Strings(factIDs)
	for _, id := range factIDs {
		f := factOf[id]
		for _, e := range f.Edges {
			addEdge(e.Before, e.After, token.Position{Filename: e.File, Line: e.Line, Column: e.Col})
		}
		for _, hc := range f.Calls {
			var acq []string
			for c := range acquires[hc.Callee] {
				acq = append(acq, c)
			}
			sort.Strings(acq)
			for _, h := range hc.Held {
				for _, a := range acq {
					addEdge(h, a, token.Position{Filename: hc.File, Line: hc.Line, Column: hc.Col})
				}
			}
		}
	}

	// Self-edges: acquiring a lock that may already be held.
	var keys []edgeKey
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].before != keys[j].before {
			return keys[i].before < keys[j].before
		}
		return keys[i].after < keys[j].after
	})
	succ := make(map[string][]string)
	for _, k := range keys {
		if k.before == k.after {
			s.Reportf(edges[k],
				"lock %s acquired while it may already be held; sync mutexes are not reentrant (self-deadlock)",
				shortLock(k.before))
			continue
		}
		succ[k.before] = append(succ[k.before], k.after)
	}

	// Cycles: every edge inside a strongly connected component of ≥2 locks.
	comp := sccOf(succ)
	for _, k := range keys {
		if k.before == k.after {
			continue
		}
		cb, ca := comp[k.before], comp[k.after]
		if cb != "" && cb == ca {
			s.Reportf(edges[k],
				"lock-order cycle: %s acquired while holding %s, but the reverse order also occurs (cycle through %s)",
				shortLock(k.after), shortLock(k.before), shortCycle(comp, cb))
		}
	}
}

// sccOf computes strongly connected components of the lock graph and maps
// each node in a component of size ≥ 2 to a canonical component ID (its
// smallest member); nodes in trivial components map to "".
func sccOf(succ map[string][]string) map[string]string {
	var nodes []string
	seen := make(map[string]bool)
	for n, outs := range succ {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, o := range outs {
			if !seen[o] {
				seen[o] = true
				nodes = append(nodes, o)
			}
		}
	}
	sort.Strings(nodes)

	// Kosaraju: order by finish time, then traverse the transpose.
	var order []string
	visited := make(map[string]bool)
	var dfs1 func(n string)
	dfs1 = func(n string) {
		visited[n] = true
		for _, o := range succ[n] {
			if !visited[o] {
				dfs1(o)
			}
		}
		order = append(order, n)
	}
	for _, n := range nodes {
		if !visited[n] {
			dfs1(n)
		}
	}
	pred := make(map[string][]string)
	for n, outs := range succ {
		for _, o := range outs {
			pred[o] = append(pred[o], n)
		}
	}
	comp := make(map[string]string)
	assigned := make(map[string]bool)
	var members []string
	var dfs2 func(n string)
	dfs2 = func(n string) {
		assigned[n] = true
		members = append(members, n)
		for _, p := range pred[n] {
			if !assigned[p] {
				dfs2(p)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if assigned[n] {
			continue
		}
		members = nil
		dfs2(n)
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		for _, m := range members {
			comp[m] = members[0]
		}
	}
	return comp
}

// shortLock renders a lock class for diagnostics: the last two path
// segments of the object ID.
func shortLock(class string) string {
	parts := strings.Split(class, "/")
	return parts[len(parts)-1]
}

// shortCycle names a component by its canonical member.
func shortCycle(comp map[string]string, id string) string {
	var members []string
	for m, c := range comp {
		if c == id {
			members = append(members, shortLock(m))
		}
	}
	sort.Strings(members)
	return fmt.Sprintf("{%s}", strings.Join(members, ", "))
}
