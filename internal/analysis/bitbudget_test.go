package analysis

import "testing"

func TestBitBudgetFixture(t *testing.T) {
	diags := runFixture(t, BitBudget, "bitbudget")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
