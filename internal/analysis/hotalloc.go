package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amri/internal/analysis/facts"
)

// HotAlloc keeps the probe hot path allocation-free. Functions annotated
// with an //amrivet:hotpath doc directive (Index.Search, AdaptiveIndex.
// Search, STeM.Probe, the operator probe loop) are reachability roots: the
// whole-program phase walks the call graph from them and reports every
// heap-allocating construct — make, new, &composite{} and slice-growing
// append — in any reachable function. An //amrivet:coldpath directive cuts
// traversal at deliberate slow-path boundaries (tuning, compression).
//
// The sanctioned alternative is receiver-attached scratch storage: append
// whose destination is a field reached from the method's receiver (e.g.
// ix.wildFields = append(ix.wildFields[:0], ...)) amortizes to zero
// allocations and is not reported. Allocations inside function literals
// are not attributed to the enclosing function (closures are not modelled
// in the call graph), and map writes — which may allocate on growth — are
// accepted as unavoidable for the counter structures.
var HotAlloc = &Analyzer{
	Name:   "hotalloc",
	Doc:    "reports heap allocations in functions reachable from amrivet:hotpath roots",
	Run:    runHotAlloc,
	Finish: finishHotAlloc,
}

// AllocSite is one allocating construct.
type AllocSite struct {
	What string `json:"what"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// AllocFact lists a function's allocation sites.
type AllocFact struct {
	Sites []AllocSite `json:"sites"`
}

// FactName implements facts.Fact.
func (*AllocFact) FactName() string { return "amrivet.allocs" }

func init() { facts.Register(&AllocFact{}) }

func runHotAlloc(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		exportPathDirectives(pass, fd)
		sites := collectAllocSites(pass, fd)
		if len(sites) > 0 {
			pass.ExportFact(obj, &AllocFact{Sites: sites})
		}
	})
}

// collectAllocSites walks fd's body (not descending into function
// literals) for heap-allocating constructs.
func collectAllocSites(pass *Pass, fd *ast.FuncDecl) []AllocSite {
	recv := receiverObject(pass, fd)
	var sites []AllocSite
	add := func(pos token.Pos, what string) {
		p := pass.Fset.Position(pos)
		sites = append(sites, AllocSite{What: what, File: p.Filename, Line: p.Line, Col: p.Column})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			id, ok := x.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make":
				add(x.Pos(), "make")
			case "new":
				add(x.Pos(), "new")
			case "append":
				if len(x.Args) > 0 && !isReceiverScratch(pass, x.Args[0], recv) {
					add(x.Pos(), "append to non-receiver slice")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					add(x.Pos(), "address of composite literal")
				}
			}
		}
		return true
	})
	return sites
}

// receiverObject returns fd's receiver variable, if any.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Info.Defs[fd.Recv.List[0].Names[0]]
}

// isReceiverScratch reports whether e is (a slice of) a field chain rooted
// at the method's receiver — the reusable-scratch idiom hotalloc permits.
func isReceiverScratch(pass *Pass, e ast.Expr, recv types.Object) bool {
	if recv == nil {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return pass.Info.Uses[x] == recv
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// finishHotAlloc walks the call graph from hotpath roots, stopping at
// coldpath boundaries, and reports the allocation sites of every function
// on the hot path.
func finishHotAlloc(s *Session) {
	roots := s.Facts.Objects((&HotPathFact{}).FactName())
	if len(roots) == 0 {
		return
	}
	isCold := func(id string) bool {
		var cold ColdPathFact
		return s.Facts.Lookup(id, &cold)
	}
	reachable := s.Graph.Reachable(roots, isCold)
	var ids []string
	for id := range reachable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if isCold(id) {
			continue
		}
		var af AllocFact
		if !s.Facts.Lookup(id, &af) {
			continue
		}
		for _, site := range af.Sites {
			s.Reportf(token.Position{Filename: site.File, Line: site.Line, Column: site.Col},
				"%s in %s, which is on the probe hot path (reachable from an amrivet:hotpath root); use receiver-attached scratch storage or mark a boundary with amrivet:coldpath",
				site.What, shortLock(id))
		}
	}
}
