package analysis

import "testing"

func TestChanProtocolFixture(t *testing.T) {
	diags := runFixture(t, ChanProtocol, "chanprotocol")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
