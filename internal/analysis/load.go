package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports are the package's direct import paths, used to order
	// packages dependencies-first so facts flow along the import DAG.
	Imports []string
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns and returns
// the decoded package records. -export materializes compiled export data
// (in the build cache) for every dependency, which is what lets the loader
// type-check each target package in isolation without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves every import from
// the export data `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load loads, parses and type-checks the packages matched by the patterns
// (relative to dir; default "./..."), in the style of go/packages but
// using only the standard library plus the `go` command. Test files are
// not loaded: amrivet gates production sources, and test-only constructs
// (global rand in fixtures, timing in benchmarks) are legitimate there.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Imports = t.Imports
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	typesPkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: typesPkg,
		Info:  info,
	}, nil
}

// LoadDir parses and type-checks the .go files of a single directory as
// one package — the fixture loader behind the analyzer tests. It applies
// the same file selection `go list` would: _test.go variants are skipped,
// and build constraints (//go:build lines and GOOS/GOARCH filename
// suffixes) are evaluated against the default build context. Imports are
// resolved by running `go list -export` over the files' import paths, so
// fixtures may import both the standard library and this module's own
// packages. moduleDir anchors the `go` command (fixtures live outside the
// module's package graph under testdata/).
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, e.Name()); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	pkgPath := "amrivet/fixture/" + filepath.Base(dir)
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	typesPkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, typeErrs[0])
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return &Package{
		Path:    pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   typesPkg,
		Info:    info,
		Imports: imports,
	}, nil
}
