package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"amri/internal/analysis/facts"
)

// ErrDrop reports silently discarded error returns from this module's own
// functions: a call in statement position (including go and defer) whose
// callee returns an error throws the value away with no record of the
// decision. Explicitly assigning the error — even to _ — is accepted: the
// drop is then visible in review and greppable.
//
// The check is interprocedural in both directions. A function whose error
// result is provably always nil (every return supplies a nil literal, or
// forwards another never-failing function) exports a NeverFailsFact, and
// discarding its result is fine — callers across package boundaries
// inherit that via the facts store. Only module-internal callees are
// checked: the standard library's error-returning conveniences
// (fmt.Println, buffer writes) are conventionally discarded and flagging
// them would drown the signal.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "reports discarded error returns from module-internal calls, modulo provably never-failing callees",
	Run:  runErrDrop,
}

// NeverFailsFact marks a function whose error results are always nil.
type NeverFailsFact struct{}

// FactName implements facts.Fact.
func (*NeverFailsFact) FactName() string { return "amrivet.neverfails" }

func init() { facts.Register(&NeverFailsFact{}) }

func runErrDrop(pass *Pass) {
	type funcInfo struct {
		fd  *ast.FuncDecl
		obj *types.Func
	}
	var fns []funcInfo
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		fns = append(fns, funcInfo{fd, obj})
	})

	// Fixpoint: a function never fails if every return supplies nil (or a
	// never-failing call) at each error position; wrappers of wrappers
	// converge in a few rounds.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			id := facts.ObjectID(fi.obj)
			var nf NeverFailsFact
			if pass.Facts.Lookup(id, &nf) {
				continue
			}
			if neverFails(pass, fi.fd, fi.obj) {
				pass.ExportFact(fi.obj, &NeverFailsFact{})
				changed = true
			}
		}
	}

	for _, fi := range fns {
		checkErrDropFunc(pass, fi.fd)
	}
}

// errorPositions returns the indices of fn's results with type error.
func errorPositions(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// neverFails reports whether every return of fd provides a provably-nil
// error at each error result position. Functions with naked returns or
// result-count mismatches (multi-value forwarding of a possibly-failing
// call) do not qualify.
func neverFails(pass *Pass, fd *ast.FuncDecl, obj *types.Func) bool {
	errPos := errorPositions(obj)
	if len(errPos) == 0 {
		return false // nothing to assert; the fact would be noise
	}
	sig := obj.Type().(*types.Signature)
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		if len(ret.Results) == 0 {
			ok = false // naked return: named results of unknown value
			return true
		}
		if len(ret.Results) != sig.Results().Len() {
			// Single-call multi-value forwarding: return g().
			if len(ret.Results) == 1 {
				if call, isCall := ret.Results[0].(*ast.CallExpr); isCall {
					if fn := calleeFunc(pass, call); fn != nil {
						var nf NeverFailsFact
						if pass.Facts.Lookup(facts.ObjectID(fn), &nf) {
							return true
						}
					}
				}
			}
			ok = false
			return true
		}
		for _, i := range errPos {
			if !provablyNilError(pass, ret.Results[i]) {
				ok = false
				return true
			}
		}
		return true
	})
	return ok
}

// provablyNilError reports whether e is the nil literal or a call to a
// never-failing function's sole error result.
func provablyNilError(pass *Pass, e ast.Expr) bool {
	if id, isIdent := e.(*ast.Ident); isIdent && id.Name == "nil" {
		return true
	}
	if call, isCall := e.(*ast.CallExpr); isCall {
		if fn := calleeFunc(pass, call); fn != nil {
			var nf NeverFailsFact
			return pass.Facts.Lookup(facts.ObjectID(fn), &nf)
		}
	}
	return false
}

// checkErrDropFunc flags statement-position calls discarding errors.
func checkErrDropFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var how string
		switch s := n.(type) {
		case *ast.ExprStmt:
			if c, isCall := s.X.(*ast.CallExpr); isCall {
				call, how = c, "call"
			}
		case *ast.GoStmt:
			call, how = s.Call, "go statement"
		case *ast.DeferStmt:
			call, how = s.Call, "deferred call"
		}
		if call == nil {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || len(errorPositions(fn)) == 0 {
			return true
		}
		if !moduleInternal(fn) {
			return true
		}
		var nf NeverFailsFact
		if pass.Facts.Lookup(facts.ObjectID(fn), &nf) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s discards the error returned by %s; assign it (_ = ... for a deliberate drop)",
			how, callName(call, fn))
		return true
	})
}

// moduleInternal reports whether fn belongs to this module (or an analyzer
// fixture, which loads under a synthetic amrivet/fixture path).
func moduleInternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return strings.HasPrefix(pkg.Path(), "amri/") || pkg.Path() == "amri" ||
		strings.HasPrefix(pkg.Path(), "amrivet/fixture")
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr, fn *types.Func) string {
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		return types.ExprString(sel.X) + "." + fn.Name()
	}
	return fn.Name()
}
