package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"amri/internal/analysis/facts"
)

// AtomicProto checks the two lock-free protocols the dispatcher relies on,
// whole-program across packages.
//
// Dekker handshake symmetry: the park/push protocol works because each
// side stores its own flag before loading the other's — push stores
// pending then loads waiting, park stores waiting then loads pending. If
// either side loads first, both can observe the pre-store state and a
// wakeup is lost. The analyzer collects each function's atomic field
// operations in syntax order (AtomicOpsFact); when one function
// establishes a store-A-then-load-B edge over two fields of one struct,
// any other function that touches the mirror pair (stores B, loads A) must
// order the store first — a function whose every load of A precedes its
// every store of B is reported.
//
// Republish-on-restore: when a plain field is published through an
// atomic.Pointer (p.Store(x.field) — the adaptive index's epoch pointer),
// every later assignment to that field must re-Store the pointer, or
// readers keep dereferencing the stale epoch. Assignments established and
// consumed through the facts store, so restore paths in other packages are
// covered.
var AtomicProto = &Analyzer{
	Name:   "atomicproto",
	Doc:    "reports asymmetric Dekker-handshake orderings on atomic field pairs and atomic.Pointer fields not republished after their source is reassigned",
	Run:    runAtomicProto,
	Finish: finishAtomicProto,
}

// AtomicOp is one atomic operation on a struct field, in syntax order.
type AtomicOp struct {
	Owner string `json:"owner"` // owning struct, e.g. "pkg.deque"
	Field string `json:"field"` // full field ID, e.g. "pkg.deque.pending"
	Kind  string `json:"kind"`  // "load" or "store"
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
}

// AtomicRepublish is an atomic.Pointer Store whose argument is a plain
// field of the same object: the pointer publishes that field.
type AtomicRepublish struct {
	Pointer string `json:"pointer"` // field ID of the atomic.Pointer
	Source  string `json:"source"`  // field ID of the published field
}

// AtomicAssign is a plain assignment to a pointer-typed field, with the
// atomic.Pointer fields of the same object Store-d later in the function.
type AtomicAssign struct {
	Field       string   `json:"field"`
	LaterStores []string `json:"later_stores,omitempty"`
	File        string   `json:"file"`
	Line        int      `json:"line"`
	Col         int      `json:"col"`
}

// AtomicOpsFact summarizes one function's atomic-protocol surface.
type AtomicOpsFact struct {
	Func        string            `json:"func"`
	Ops         []AtomicOp        `json:"ops,omitempty"`
	Republishes []AtomicRepublish `json:"republishes,omitempty"`
	Assigns     []AtomicAssign    `json:"assigns,omitempty"`
}

// FactName implements facts.Fact.
func (*AtomicOpsFact) FactName() string { return "amrivet.atomicproto" }

func init() { facts.Register(&AtomicOpsFact{}) }

func runAtomicProto(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		fact := collectAtomicOps(pass, fd)
		if len(fact.Ops) > 0 || len(fact.Republishes) > 0 || len(fact.Assigns) > 0 {
			fact.Func = obj.Name()
			pass.ExportFact(obj, fact)
		}
	})
}

// atomicEvent is the per-function working form, before positions and
// later-store resolution are baked into the fact.
type atomicEvent struct {
	op      AtomicOp
	root    types.Object // base object of the field chain, if an identifier
	ptrRecv bool         // the operation's receiver is an atomic.Pointer
	arg     ast.Expr     // Store argument, when there is exactly one
}

func collectAtomicOps(pass *Pass, fd *ast.FuncDecl) *AtomicOpsFact {
	fact := &AtomicOpsFact{}
	var events []atomicEvent
	type pendingAssign struct {
		assign AtomicAssign
		root   types.Object
		index  int // events seen before this assignment
	}
	var assigns []pendingAssign

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if ev, ok := classifyAtomicCall(pass, x); ok {
				events = append(events, ev)
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range x.Lhs {
				owner, field, root := fieldChainOf(pass, lhs)
				if owner == "" || root == nil {
					continue
				}
				t := exprType(pass, lhs)
				if t == nil {
					continue
				}
				if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
					continue
				}
				p := pass.Fset.Position(lhs.Pos())
				assigns = append(assigns, pendingAssign{
					assign: AtomicAssign{Field: field, File: p.Filename, Line: p.Line, Col: p.Column},
					root:   root,
					index:  len(events),
				})
			}
		}
		return true
	})

	for _, ev := range events {
		fact.Ops = append(fact.Ops, ev.op)
		if ev.ptrRecv && atomicWrites(ev.op.Kind) && ev.arg != nil && ev.root != nil {
			_, src, argRoot := fieldChainOf(pass, ev.arg)
			if src != "" && argRoot == ev.root {
				fact.Republishes = append(fact.Republishes, AtomicRepublish{Pointer: ev.op.Field, Source: src})
			}
		}
	}
	for _, pa := range assigns {
		for _, ev := range events[pa.index:] {
			if ev.ptrRecv && atomicWrites(ev.op.Kind) && ev.root == pa.root {
				pa.assign.LaterStores = append(pa.assign.LaterStores, ev.op.Field)
			}
		}
		fact.Assigns = append(fact.Assigns, pa.assign)
	}
	return fact
}

// classifyAtomicCall recognizes an atomic operation on a struct field:
// method form (x.f.Store(v), including atomic.Pointer) or function form
// (atomic.StoreInt64(&x.f, v)).
func classifyAtomicCall(pass *Pass, call *ast.CallExpr) (atomicEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return atomicEvent{}, false
	}
	if s := pass.Info.Selections[sel]; s != nil {
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return atomicEvent{}, false
		}
		owner, field, root := fieldChainOf(pass, sel.X)
		if owner == "" {
			return atomicEvent{}, false
		}
		ev := atomicEvent{root: root}
		ev.op = atomicOpAt(pass, call.Pos(), owner, field, atomicKindOf(fn.Name()))
		recv := namedType(s.Recv())
		ev.ptrRecv = recv != nil && recv.Obj().Pkg() != nil &&
			recv.Obj().Pkg().Path() == "sync/atomic" && recv.Obj().Name() == "Pointer"
		if len(call.Args) == 1 {
			ev.arg = call.Args[0]
		}
		return ev, ev.op.Kind != ""
	}
	// Function form: atomic.LoadInt64(&x.f) / atomic.StoreInt64(&x.f, v).
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		if len(call.Args) == 0 {
			return atomicEvent{}, false
		}
		ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			return atomicEvent{}, false
		}
		owner, field, root := fieldChainOf(pass, ue.X)
		if owner == "" {
			return atomicEvent{}, false
		}
		ev := atomicEvent{root: root}
		ev.op = atomicOpAt(pass, call.Pos(), owner, field, atomicKindOf(fn.Name()))
		return ev, ev.op.Kind != ""
	}
	return atomicEvent{}, false
}

func atomicOpAt(pass *Pass, pos token.Pos, owner, field, kind string) AtomicOp {
	p := pass.Fset.Position(pos)
	return AtomicOp{Owner: owner, Field: field, Kind: kind, File: p.Filename, Line: p.Line, Col: p.Column}
}

// atomicKindOf maps a sync/atomic method or function name to one of
// "load", "store", or "rmw". Read-modify-writes (Add, Swap, CAS, Or, And)
// are kept apart from plain stores: a counter increment is not a
// handshake-flag publication, so only true stores create handshake edges,
// while any write satisfies the republish check.
func atomicKindOf(name string) string {
	if strings.HasPrefix(name, "Load") {
		return "load"
	}
	if strings.HasPrefix(name, "Store") {
		return "store"
	}
	for _, p := range []string{"Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, p) {
			return "rmw"
		}
	}
	return ""
}

// atomicWrites reports whether an op kind mutates the value.
func atomicWrites(kind string) bool { return kind == "store" || kind == "rmw" }

// fieldChainOf resolves a selector chain x.a.b to its owning struct
// ("pkg.T" of x's type), the full field ID ("pkg.T.a.b"), and the base
// object (x), or empty strings when e is not a field chain.
func fieldChainOf(pass *Pass, e ast.Expr) (owner, field string, root types.Object) {
	var names []string
	cur := ast.Unparen(e)
	var ownerNamed *types.Named
	for {
		sel, ok := cur.(*ast.SelectorExpr)
		if !ok {
			break
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return "", "", nil
		}
		names = append([]string{sel.Sel.Name}, names...)
		ownerNamed = namedType(s.Recv())
		cur = ast.Unparen(sel.X)
	}
	if len(names) == 0 || ownerNamed == nil {
		return "", "", nil
	}
	owner = facts.FieldID(ownerNamed, "")
	owner = strings.TrimSuffix(owner, ".")
	field = facts.FieldID(ownerNamed, strings.Join(names, "."))
	if id, ok := cur.(*ast.Ident); ok {
		root = identObject(pass, id)
	}
	return owner, field, root
}

// finishAtomicProto runs the whole-program pairing checks over the
// exported AtomicOpsFacts.
func finishAtomicProto(s *Session) {
	ids := s.Facts.Objects((&AtomicOpsFact{}).FactName())
	type funcOps struct {
		id   string
		fact AtomicOpsFact
	}
	var fns []funcOps
	for _, id := range ids {
		var f AtomicOpsFact
		if s.Facts.Lookup(id, &f) {
			fns = append(fns, funcOps{id: id, fact: f})
		}
	}

	// Handshake symmetry.
	type edge struct{ A, B string }
	edgesOf := func(f *AtomicOpsFact) map[edge]bool {
		out := map[edge]bool{}
		for i, a := range f.Ops {
			if a.Kind != "store" {
				continue
			}
			for _, b := range f.Ops[i+1:] {
				if b.Kind == "load" && b.Owner == a.Owner && b.Field != a.Field {
					out[edge{A: a.Field, B: b.Field}] = true
				}
			}
		}
		return out
	}
	reported := map[string]bool{}
	for _, f := range fns {
		for e := range edgesOf(&f.fact) {
			for _, g := range fns {
				if g.id == f.id {
					continue
				}
				var storesB, loadsA []int
				for i, op := range g.fact.Ops {
					if op.Field == e.B && op.Kind == "store" {
						storesB = append(storesB, i)
					}
					if op.Field == e.A && op.Kind == "load" {
						loadsA = append(loadsA, i)
					}
				}
				if len(storesB) == 0 || len(loadsA) == 0 {
					continue
				}
				ordered := false
				for _, si := range storesB {
					if si < loadsA[len(loadsA)-1] {
						ordered = true
						break
					}
				}
				if ordered {
					continue
				}
				key := g.id + "\x00" + e.A + "\x00" + e.B
				if reported[key] {
					continue
				}
				reported[key] = true
				op := g.fact.Ops[loadsA[0]]
				s.Reportf(token.Position{Filename: op.File, Line: op.Line, Column: op.Col},
					"asymmetric handshake: %s stores %s before loading %s, but %s loads %s before storing %s; store your own flag before loading the other side's or both can pass simultaneously",
					f.fact.Func, shortLock(e.A), shortLock(e.B), g.fact.Func, shortLock(e.A), shortLock(e.B))
			}
		}
	}

	// Republish-on-restore.
	published := map[string][]string{} // source field ID -> pointer field IDs
	seenPub := map[AtomicRepublish]bool{}
	for _, f := range fns {
		for _, r := range f.fact.Republishes {
			if seenPub[r] {
				continue
			}
			seenPub[r] = true
			published[r.Source] = append(published[r.Source], r.Pointer)
		}
	}
	for _, f := range fns {
		for _, a := range f.fact.Assigns {
			for _, ptr := range published[a.Field] {
				stored := false
				for _, ls := range a.LaterStores {
					if ls == ptr {
						stored = true
						break
					}
				}
				if stored {
					continue
				}
				s.Reportf(token.Position{Filename: a.File, Line: a.Line, Column: a.Col},
					"%s is published to readers through atomic pointer %s, but this assignment does not re-Store it; readers keep dereferencing the stale value",
					shortLock(a.Field), shortLock(ptr))
			}
		}
	}
}
