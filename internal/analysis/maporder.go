package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"amri/internal/analysis/facts"
	"amri/internal/analysis/valueflow"
)

// MapOrder enforces the determinism discipline behind AMRI's
// digest-identical parallel runs: a value derived from ranging over a map
// iterates in a nondeterministic order, so feeding it into an
// order-sensitive sink — a WAL append, a cumulative digest write, emitted
// output — makes two runs of the same input diverge. The sanctioned fix is
// an intervening sort: collect the keys, sort them, iterate the slice.
//
// Built on the valueflow engine: taint seeds at map ranges, propagates
// through value-preserving moves (assignment, conversion, append,
// indexing, string concatenation) and across function and package
// boundaries via FlowFact summaries, and is cleared by the sort family
// (sort.Sort/Slice/Strings/Ints/... and slices.Sort*). Commutative numeric
// aggregation (sum += v, h ^= v — the shard digests' XOR fold) never
// carries taint: order-independent folds are the other sanctioned idiom.
//
// Built-in sinks: methods named AppendWAL; Write/WriteString on a
// hash.Hash-shaped receiver (has Sum and BlockSize); the fmt.Fprint and
// fmt.Print families (emitted output order is observable). A project
// function can be declared a sink with a doc directive:
//
//	//amrivet:ordersink <reason>
//
// which exports an OrderSinkFact: every argument of every call to it is
// then order-sensitive, transitively through the facts store.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "reports map-range-derived values flowing into order-sensitive sinks (WAL appends, digest writes, emitted output) without an intervening sort",
	Run:  runMapOrder,
}

// OrderSinkFact marks a function's parameters as order-sensitive sinks.
type OrderSinkFact struct {
	Reason string `json:"reason"`
}

// FactName implements facts.Fact.
func (*OrderSinkFact) FactName() string { return "amrivet.ordersink" }

var ordersinkRE = regexp.MustCompile(`^//\s*amrivet:ordersink\s*(.*)$`)

func init() { facts.Register(&OrderSinkFact{}) }

func runMapOrder(pass *Pass) {
	// Export ordersink directives first so same-package calls resolve.
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		if fd.Doc == nil {
			return
		}
		for _, c := range fd.Doc.List {
			if m := ordersinkRE.FindStringSubmatch(c.Text); m != nil {
				reason := strings.TrimSpace(m[1])
				if reason == "" {
					pass.Reportf(c.Pos(), "amrivet:ordersink directive is missing a reason")
					continue
				}
				pass.ExportFact(obj, &OrderSinkFact{Reason: reason})
			}
		}
	})

	spec := valueflow.Spec{
		TaintsRange: func(x ast.Expr, t types.Type) bool {
			_, isMap := t.Underlying().(*types.Map)
			return isMap
		},
		Sink:      func(call *ast.CallExpr) (string, []int) { return mapOrderSink(pass, call) },
		Sanitizes: func(call *ast.CallExpr) []int { return sortSanitizer(pass, call) },
	}
	findings := valueflow.AnalyzePackage(valueflow.Package{
		Fset:    pass.Fset,
		Files:   pass.Files,
		Pkg:     pass.Pkg,
		PkgPath: pass.PkgPath,
		Info:    pass.Info,
		Facts:   pass.Facts,
	}, spec)
	for _, f := range findings {
		if f.Via != "" {
			pass.Reportf(f.Pos, "map-range-derived value reaches %s via call to %s without an intervening sort; iterate sorted keys instead", f.Sink, f.Via)
			continue
		}
		pass.Reportf(f.Pos, "map-range-derived value flows into %s without an intervening sort; iterate sorted keys instead", f.Sink)
	}
}

// allArgs returns every argument index of a call.
func allArgs(call *ast.CallExpr) []int {
	idxs := make([]int, len(call.Args))
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}

// mapOrderSink classifies the built-in order-sensitive sinks.
func mapOrderSink(pass *Pass, call *ast.CallExpr) (string, []int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return orderSinkFactOf(pass, call)
	}
	// Method sinks.
	if s := pass.Info.Selections[sel]; s != nil {
		switch sel.Sel.Name {
		case "AppendWAL":
			return "a WAL append", allArgs(call)
		case "Write", "WriteString":
			if isHashShaped(s.Recv()) {
				return "a digest write", allArgs(call)
			}
		}
		return orderSinkFactOf(pass, call)
	}
	// Package-qualified sinks: the fmt output family.
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			idxs := allArgs(call)
			if len(idxs) > 0 {
				return "emitted output", idxs[1:] // skip the writer
			}
		case "Print", "Printf", "Println":
			return "emitted output", allArgs(call)
		}
	}
	return orderSinkFactOf(pass, call)
}

// orderSinkFactOf resolves amrivet:ordersink-annotated callees.
func orderSinkFactOf(pass *Pass, call *ast.CallExpr) (string, []int) {
	fn := valueflow.StaticCallee(pass.Info, call)
	if fn == nil {
		return "", nil
	}
	var f OrderSinkFact
	if pass.Facts.Lookup(facts.ObjectID(fn), &f) {
		return "order-sensitive sink " + fn.Name() + " (" + f.Reason + ")", allArgs(call)
	}
	return "", nil
}

// isHashShaped reports whether t's method set looks like hash.Hash (Sum
// and BlockSize), without importing the hash package.
func isHashShaped(t types.Type) bool {
	for _, name := range []string{"Sum", "BlockSize"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// sortSanitizer recognizes the sort family: a call that establishes a
// canonical order on its first argument clears that argument's taint.
func sortSanitizer(pass *Pass, call *ast.CallExpr) []int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return []int{0}
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return []int{0}
		}
	}
	return nil
}
