package analysis

import "testing"

func TestWaitLeakFixture(t *testing.T) {
	diags := runFixture(t, WaitLeak, "waitleak")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
