package analysis

import "testing"

func TestMutexGuardFixture(t *testing.T) {
	diags := runFixture(t, MutexGuard, "mutexguard")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
