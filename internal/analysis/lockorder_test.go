package analysis

import (
	"strings"
	"testing"
)

func TestLockOrderFixture(t *testing.T) {
	diags := runFixture(t, LockOrder, "lockorder")
	var cycles, selfLocks int
	for _, d := range diags {
		if strings.Contains(d.Message, "lock-order cycle") {
			cycles++
		}
		if strings.Contains(d.Message, "may already be held") {
			selfLocks++
		}
	}
	if cycles != 2 {
		t.Errorf("got %d cycle findings, want 2 (one per inverted edge)", cycles)
	}
	if selfLocks != 1 {
		t.Errorf("got %d self-deadlock findings, want 1", selfLocks)
	}
}
