package analysis

import (
	"go/ast"
	"strings"
)

// hotPathPackages are the inner-loop packages where wall-clock reads are
// banned: their work is charged in simulated cost units and rendered by
// internal/metrics, and a stray time.Now() both distorts microbenchmarks
// and (worse) tempts time-dependent behaviour into deterministic replays.
// Matching is by final path segment and by package name so fixture and
// vendor layouts are treated identically.
var hotPathPackages = map[string]bool{
	"bitindex": true,
	"assess":   true,
	"hh":       true,
	"stem":     true,
}

// WallClock forbids wall-clock reads (time.Now, time.Since) inside the
// hot-path packages. Timing belongs to the drivers (cmd/, bench, pipeline)
// and flows through internal/metrics; the data structures themselves must
// stay wall-clock-free so seeded runs are bit-for-bit reproducible.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "reports time.Now/time.Since calls inside hot-path packages (bitindex, assess, hh, stem)",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) {
	if !isHotPathPackage(pass) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			for _, banned := range []string{"Now", "Since", "Until"} {
				if isPkgFunc(obj, "time", banned) {
					pass.Reportf(call.Pos(),
						"time.%s in hot-path package %s: wall-clock timing must flow through internal/metrics at the driver layer",
						banned, pass.Pkg.Name())
				}
			}
			return true
		})
	}
}

func isHotPathPackage(pass *Pass) bool {
	if hotPathPackages[pass.Pkg.Name()] {
		return true
	}
	segs := strings.Split(pass.PkgPath, "/")
	return hotPathPackages[segs[len(segs)-1]]
}
