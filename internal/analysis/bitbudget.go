package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"amri/internal/analysis/facts"
)

// bitindexPath is the package owning the IC bit-budget invariant.
const bitindexPath = "amri/internal/bitindex"

// BitBudget enforces the Σ bits ≤ 64 index-configuration invariant at its
// construction sites. Bucket ids are uint64: a shift amount derived from an
// IC's bit assignment that has not been bounded against
// bitindex.MaxTotalBits can silently overflow the id space (a shift by ≥ 64
// of a uint64 is 0 in Go, collapsing every tuple into bucket 0).
//
// Two rules:
//
//  1. A function that reads IC bit widths (Config.Bits, TotalBits, BitsFor)
//     and performs a variable-width shift must also bound the width in the
//     same function: a comparison against 63/64/MaxTotalBits or a
//     Config.Validate call.
//  2. A bitindex.Config composite literal built outside the bitindex
//     package must be validated in the same function — NewConfig/Uniform
//     plus Validate are the sanctioned construction paths.
//
// A function that guards — directly or by calling another guarding
// function, in this package or an imported one — exports a
// ValidatesBudgetFact, so delegating the bound to a helper keeps callers
// in the clear across package boundaries.
var BitBudget = &Analyzer{
	Name: "bitbudget",
	Doc:  "reports IC bit-width arithmetic and Config construction sites that skip the 64-bit budget check",
	Run:  runBitBudget,
}

// ValidatesBudgetFact marks a function that bounds the IC bit budget:
// calls Config.Validate, compares against MaxTotalBits, or delegates to
// another function carrying this fact.
type ValidatesBudgetFact struct{}

// FactName implements facts.Fact.
func (*ValidatesBudgetFact) FactName() string { return "amrivet.validatesbudget" }

func init() { facts.Register(&ValidatesBudgetFact{}) }

// bitBudgetInfo is one function's collected budget-relevant constructs.
type bitBudgetInfo struct {
	obj       *types.Func
	usesBits  bool
	hasGuard  bool
	varShifts []*ast.BinaryExpr
	cfgLits   []*ast.CompositeLit
	callees   []*types.Func
}

func runBitBudget(pass *Pass) {
	var infos []*bitBudgetInfo
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		info := collectBitBudget(pass, fd)
		info.obj = obj
		infos = append(infos, info)
	})

	// Fixpoint: a call to any ValidatesBudgetFact carrier (imported, or
	// exported by an earlier round over this package) counts as a guard.
	for _, info := range infos {
		if info.hasGuard {
			pass.ExportFact(info.obj, &ValidatesBudgetFact{})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			if info.hasGuard {
				continue
			}
			for _, callee := range info.callees {
				var vf ValidatesBudgetFact
				if pass.Facts.Lookup(facts.ObjectID(callee), &vf) {
					info.hasGuard = true
					pass.ExportFact(info.obj, &ValidatesBudgetFact{})
					changed = true
					break
				}
			}
		}
	}

	for _, info := range infos {
		if info.usesBits && !info.hasGuard {
			for _, sh := range info.varShifts {
				pass.Reportf(sh.OpPos,
					"variable shift in a function reading IC bit widths without a MaxTotalBits bound; compare against bitindex.MaxTotalBits or call Config.Validate")
			}
		}
		if !info.hasGuard {
			for _, lit := range info.cfgLits {
				pass.Reportf(lit.Pos(),
					"bitindex.Config constructed outside package bitindex without a Validate call in this function")
			}
		}
	}
}

func collectBitBudget(pass *Pass, fd *ast.FuncDecl) *bitBudgetInfo {
	info := &bitBudgetInfo{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if isConfigBitsAccess(pass, e) {
				info.usesBits = true
			}
		case *ast.CallExpr:
			if name := calleeName(e); name == "TotalBits" || name == "BitsFor" {
				if isConfigMethodCall(pass, e) {
					info.usesBits = true
				}
			} else if name == "Validate" {
				info.hasGuard = true
			}
			if fn := calleeFunc(pass, e); fn != nil {
				info.callees = append(info.callees, fn)
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.SHL, token.SHR:
				if !isConstExpr(pass, e.Y) {
					info.varShifts = append(info.varShifts, e)
				}
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if isBudgetBound(pass, e.X) || isBudgetBound(pass, e.Y) {
					info.hasGuard = true
				}
			}
		case *ast.CompositeLit:
			// The zero Config (empty literal) is trivially within budget;
			// only literals that assign bits need validation.
			if tv, ok := pass.Info.Types[e]; ok && len(e.Elts) > 0 &&
				isNamed(tv.Type, bitindexPath, "Config") && pass.PkgPath != bitindexPath {
				info.cfgLits = append(info.cfgLits, e)
			}
		}
		return true
	})
	return info
}

// isConfigBitsAccess reports whether sel reads the Bits field of
// bitindex.Config (or of Config inside the bitindex package itself).
func isConfigBitsAccess(pass *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Bits" {
		return false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return false
	}
	return isConfigType(pass, selection.Recv())
}

// isConfigMethodCall reports whether call's receiver is bitindex.Config.
func isConfigMethodCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil {
		return false
	}
	return isConfigType(pass, selection.Recv())
}

// isConfigType matches bitindex.Config both from importers (full path) and
// inside any package named bitindex (fixtures load under a synthetic path).
func isConfigType(pass *Pass, t types.Type) bool {
	if isNamed(t, bitindexPath, "Config") {
		return true
	}
	n := namedType(t)
	return n != nil && n.Obj().Name() == "Config" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "bitindex"
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// isBudgetBound reports whether e is a budget bound: the constant 63 or 64,
// or a reference to MaxTotalBits.
func isBudgetBound(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok && (v == 63 || v == 64) {
			return true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "MaxTotalBits"
	case *ast.SelectorExpr:
		return x.Sel.Name == "MaxTotalBits"
	}
	return false
}
