package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
)

// ChanProtocol enforces the channel ownership protocol: a channel is closed
// exactly once, by its owner, and never sent on afterwards. A CFG forward
// must-analysis (intersection join) tracks the channels definitely closed
// on every path to each statement, so a close inside one branch does not
// poison the other; only operations on a channel that is closed on all
// incoming paths are reported:
//
//   - close of a definitely-closed channel (double close: panics)
//   - send on a definitely-closed channel (panics)
//   - close of a channel received as a parameter (the callee does not own
//     it; Go convention is that only the sender/owner closes) — exported as
//     a ClosesChanFact so callers inherit the close interprocedurally: a
//     send after calling a helper that closes the channel is also reported.
//
// Re-making a channel (x = make(chan T)) clears its closed state. Channels
// captured by function literals and function-valued fields are unmodelled.
var ChanProtocol = &Analyzer{
	Name: "chanprotocol",
	Doc:  "reports double close, send-after-close and close-by-non-owner channel protocol violations",
	Run:  runChanProtocol,
}

// ClosesChanFact marks a function that closes one or more of its channel
// parameters, identified by parameter index.
type ClosesChanFact struct {
	Params []int `json:"params"`
}

// FactName implements facts.Fact.
func (*ClosesChanFact) FactName() string { return "amrivet.closeschan" }

func init() { facts.Register(&ClosesChanFact{}) }

// chanState is the must-closed lattice: channel class → definitely closed.
// The bottomMark entry distinguishes "no information yet" (the initial
// value of unvisited blocks, absorbing in the intersection join) from the
// empty set "definitely nothing closed".
type chanState map[string]bool

const bottomMark = "\x00bottom"

func copyChanState(in chanState) chanState {
	out := make(chanState, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func runChanProtocol(pass *Pass) {
	// First pass: export ClosesChanFact for every function closing a
	// parameter, so same-package callers see the facts below.
	type funcInfo struct {
		fd  *ast.FuncDecl
		obj *types.Func
	}
	var fns []funcInfo
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		fns = append(fns, funcInfo{fd, obj})
		params := closedParams(pass, fd)
		if len(params) > 0 {
			pass.ExportFact(obj, &ClosesChanFact{Params: params})
		}
	})
	for _, fi := range fns {
		checkChanProtocolFunc(pass, fi.fd)
	}
}

// closedParams returns the indices of fd's parameters that the body closes.
func closedParams(pass *Pass, fd *ast.FuncDecl) []int {
	paramIndex := paramIndexOf(pass, fd)
	seen := make(map[int]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinClose(pass, call) {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if i, ok := paramIndex[obj]; ok {
					seen[i] = true
				}
			}
		}
		return true
	})
	var out []int
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// paramIndexOf maps fd's parameter objects to their positional index.
func paramIndexOf(pass *Pass, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	i := 0
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

func isBuiltinClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func checkChanProtocolFunc(pass *Pass, fd *ast.FuncDecl) {
	g := cfg.Build(fd.Body)
	flow := cfg.Flow[chanState]{
		Entry:  chanState{},
		Bottom: func() chanState { return chanState{bottomMark: true} },
		Join: func(a, b chanState) chanState {
			if a[bottomMark] {
				return copyChanState(b)
			}
			if b[bottomMark] {
				return copyChanState(a)
			}
			out := chanState{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b chanState) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in chanState) chanState {
			out := copyChanState(in)
			delete(out, bottomMark)
			for _, s := range b.Stmts {
				chanTransferStmt(pass, s, out, nil)
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	paramIndex := paramIndexOf(pass, fd)
	for _, b := range g.Blocks {
		state := copyChanState(res.In[b])
		delete(state, bottomMark)
		for _, s := range b.Stmts {
			chanTransferStmt(pass, s, state, func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			})
		}
	}

	// Close-by-non-owner is flow-insensitive: any close of a parameter.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinClose(pass, call) {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			if _, isParam := paramIndex[obj]; isParam {
				pass.Reportf(call.Pos(),
					"close of channel parameter %s: channels should be closed by their owning sender, not by callees",
					id.Name)
			}
		}
		return true
	})
}

// chanTransferStmt applies one statement's channel effects to state; when
// report is non-nil, protocol violations are diagnosed against the state
// holding before the operation.
func chanTransferStmt(pass *Pass, s ast.Stmt, state chanState, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			class := chanClass(pass, x.Chan)
			if class != "" && state[class] && report != nil {
				report(x.Arrow, "send on %s, which is closed on every path reaching this statement", chanExprName(x.Chan))
			}
		case *ast.AssignStmt:
			// Any assignment to a tracked channel resets its state (a fresh
			// make, or a value of unknown provenance).
			for _, lhs := range x.Lhs {
				if class := chanClass(pass, lhs); class != "" {
					delete(state, class)
				}
			}
		case *ast.CallExpr:
			if isBuiltinClose(pass, x) {
				class := chanClass(pass, x.Args[0])
				if class == "" {
					return true
				}
				if state[class] && report != nil {
					report(x.Pos(), "double close of %s: already closed on every path reaching this statement", chanExprName(x.Args[0]))
				}
				state[class] = true
				return true
			}
			// A call to a function that closes one of its channel
			// parameters closes the corresponding argument here.
			if fn := calleeFunc(pass, x); fn != nil {
				var cf ClosesChanFact
				if pass.Facts.Lookup(facts.ObjectID(fn), &cf) {
					for _, idx := range cf.Params {
						if idx < len(x.Args) {
							if class := chanClass(pass, x.Args[idx]); class != "" {
								state[class] = true
							}
						}
					}
				}
			}
		}
		return true
	})
}

// chanClass identifies a channel-typed expression by its variable: locals
// and parameters by object ID, fields by their declaring struct field.
func chanClass(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return ""
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return ""
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			return facts.ObjectID(obj)
		}
		if obj := pass.Info.Defs[x]; obj != nil {
			return facts.ObjectID(obj)
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if owner := namedType(sel.Recv()); owner != nil {
				return facts.FieldID(owner, x.Sel.Name)
			}
		}
		if obj := pass.Info.Uses[x.Sel]; obj != nil {
			return facts.ObjectID(obj)
		}
	}
	return ""
}

func chanExprName(e ast.Expr) string {
	return types.ExprString(e)
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
