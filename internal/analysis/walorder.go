package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
	"amri/internal/analysis/valueflow"
)

// WALOrder enforces the durability protocol around CheckpointStore: the
// WAL append happens before the change is acknowledged, the store is
// Synced before a checkpoint is published, and file-backed stores publish
// by write-temp → fsync → rename. Each violation is a crash window where
// an observer saw state the log cannot reproduce.
//
// Three checks:
//
//  1. Unsynced checkpoint: a forward may-analysis tracks whether a WAL
//     append can still be buffered (AppendWAL sets it, Sync on the same
//     store shape clears it); SaveCheckpoint in that state publishes a
//     cursor that may outrun the durable log. Helper functions compose
//     through WALFact summaries: a callee that may leave appends unsynced
//     taints the caller, one that syncs on every path clears it.
//
//  2. Ack before append: within one statement list, a channel send (or a
//     call annotated //amrivet:ack <reason>) followed by the WAL append
//     that records the acknowledged change — a crash between the two loses
//     state the client was told is durable.
//
//  3. Rename with unsynced writes: os.Rename while a written *os.File has
//     not been Synced publishes a name whose contents may still be in the
//     page cache (the write-temp → fsync → rename discipline).
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc:  "reports durability-protocol violations: checkpoints published over unsynced WAL appends, acks sent before their append, renames of unsynced files",
	Run:  runWALOrder,
}

// WALFact summarizes a function's effect on WAL durability state.
type WALFact struct {
	// MayUnsynced: some path returns with an unsynced append pending.
	MayUnsynced bool `json:"may_unsynced,omitempty"`
	// AllSyncs: every path syncs the store before returning.
	AllSyncs bool `json:"all_syncs,omitempty"`
	// Appends: the function (transitively) appends to a WAL.
	Appends bool `json:"appends,omitempty"`
}

// FactName implements facts.Fact.
func (*WALFact) FactName() string { return "amrivet.walorder" }

// AckFact marks a function as an acknowledgement point: callers must have
// appended (and synced) the change it acknowledges before calling it.
type AckFact struct {
	Reason string `json:"reason"`
}

// FactName implements facts.Fact.
func (*AckFact) FactName() string { return "amrivet.ack" }

var ackRE = regexp.MustCompile(`^//\s*amrivet:ack\s*(.*)$`)

func init() {
	facts.Register(&WALFact{})
	facts.Register(&AckFact{})
}

func runWALOrder(pass *Pass) {
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		if fd.Doc == nil {
			return
		}
		for _, c := range fd.Doc.List {
			if m := ackRE.FindStringSubmatch(c.Text); m != nil {
				reason := strings.TrimSpace(m[1])
				if reason == "" {
					pass.Reportf(c.Pos(), "amrivet:ack directive is missing a reason")
					continue
				}
				pass.ExportFact(obj, &AckFact{Reason: reason})
			}
		}
	})

	// Two summary rounds so same-package helpers resolve regardless of
	// declaration order, then a reporting round.
	for round := 0; round < 2; round++ {
		forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
			analyzeWALFunc(pass, fd, obj, false)
		})
	}
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		analyzeWALFunc(pass, fd, obj, true)
		checkAckOrder(pass, fd)
	})
}

// walState is the forward lattice: may (OR-join) — an unsynced append can
// be pending; all (AND-join) — every path has synced since the last
// append; files — written-but-unsynced *os.File locals.
type walState struct {
	may   bool
	all   bool
	files map[types.Object]bool
}

func copyWAL(in walState) walState {
	out := walState{may: in.may, all: in.all, files: make(map[types.Object]bool, len(in.files))}
	for k := range in.files {
		out.files[k] = true
	}
	return out
}

func analyzeWALFunc(pass *Pass, fd *ast.FuncDecl, obj *types.Func, report bool) {
	g := cfg.Build(fd.Body)
	flow := cfg.Flow[walState]{
		Entry:  walState{files: map[types.Object]bool{}},
		Bottom: func() walState { return walState{files: map[types.Object]bool{}} },
		Join: func(a, b walState) walState {
			out := copyWAL(a)
			out.may = a.may || b.may
			out.all = a.all && b.all
			for k := range b.files {
				out.files[k] = true
			}
			return out
		},
		Equal: func(a, b walState) bool {
			if a.may != b.may || a.all != b.all || len(a.files) != len(b.files) {
				return false
			}
			for k := range a.files {
				if !b.files[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in walState) walState {
			out := copyWAL(in)
			for _, s := range b.Stmts {
				walTransferStmt(pass, s, &out, false)
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	if report {
		for _, b := range g.Blocks {
			st := copyWAL(res.In[b])
			for _, s := range b.Stmts {
				walTransferStmt(pass, s, &st, true)
			}
		}
		return
	}

	exit := res.In[g.Exit]
	appends := walFuncAppends(pass, fd)
	if exit.may || exit.all || appends {
		pass.ExportFact(obj, &WALFact{MayUnsynced: exit.may, AllSyncs: exit.all, Appends: appends})
	}
}

// walFuncAppends reports whether fd (transitively, through facts) appends
// to a WAL on any path.
func walFuncAppends(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isAppendWALCall(pass, call) {
			found = true
		} else if fn := valueflow.StaticCallee(pass.Info, call); fn != nil {
			var f WALFact
			if pass.Facts.Lookup(facts.ObjectID(fn), &f) && f.Appends {
				found = true
			}
		}
		return true
	})
	return found
}

// walTransferStmt applies one statement's durability effects to st; with
// report set, violations are diagnosed. Deferred and go'd calls are
// skipped: their effects are not ordered at their textual position.
func walTransferStmt(pass *Pass, s ast.Stmt, st *walState, report bool) {
	switch s.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			walTransferCall(pass, x, st, report)
		}
		return true
	})
}

func walTransferCall(pass *Pass, call *ast.CallExpr, st *walState, report bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		walCalleeEffect(pass, call, st)
		return
	}
	if s := pass.Info.Selections[sel]; s != nil {
		recv := s.Recv()
		switch sel.Sel.Name {
		case "AppendWAL":
			st.may = true
			st.all = false
			return
		case "Sync":
			if isNamed(recv, "os", "File") {
				if obj := identObject(pass, sel.X); obj != nil {
					delete(st.files, obj)
				}
				return
			}
			if hasMethodNamed(recv, "AppendWAL") {
				st.may = false
				st.all = true
			}
			return
		case "SaveCheckpoint":
			if report && st.may {
				pass.Reportf(call.Pos(), "checkpoint published while a WAL append may be unsynced; Sync the store before SaveCheckpoint")
			}
			return
		case "Write", "WriteString", "WriteAt", "Truncate":
			if isNamed(recv, "os", "File") {
				if obj := identObject(pass, sel.X); obj != nil {
					st.files[obj] = true
				}
				return
			}
		}
		walCalleeEffect(pass, call, st)
		return
	}
	// Package-qualified: os.Rename publishes the temp file.
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		if fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
			if report && len(st.files) > 0 {
				names := make([]string, 0, len(st.files))
				for obj := range st.files {
					names = append(names, obj.Name())
				}
				sort.Strings(names)
				pass.Reportf(call.Pos(), "os.Rename while %s has unsynced writes; fsync before rename (write-temp, fsync, rename)", strings.Join(names, ", "))
			}
			return
		}
	}
	walCalleeEffect(pass, call, st)
}

// walCalleeEffect applies a callee's WALFact summary to the caller state.
func walCalleeEffect(pass *Pass, call *ast.CallExpr, st *walState) {
	fn := valueflow.StaticCallee(pass.Info, call)
	if fn == nil {
		return
	}
	var f WALFact
	if !pass.Facts.Lookup(facts.ObjectID(fn), &f) {
		return
	}
	if f.MayUnsynced {
		st.may = true
		st.all = false
	} else if f.AllSyncs {
		st.may = false
		st.all = true
	}
}

// checkAckOrder flags acknowledgements that precede their WAL append
// within one statement list: a channel send, or a call to an
// amrivet:ack-annotated function, with an append later in the same list.
func checkAckOrder(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			list = x.List
		case *ast.CaseClause:
			list = x.Body
		case *ast.CommClause:
			list = x.Body
		default:
			return true
		}
		for i, s := range list {
			kind, pos := ackPoint(pass, s)
			if kind == "" {
				continue
			}
			for _, later := range list[i+1:] {
				if stmtAppends(pass, later) {
					pass.Reportf(pos, "state change is acknowledged (%s) before its WAL append; a crash after the ack loses acknowledged state — append and Sync first", kind)
					break
				}
			}
		}
		return true
	})
}

// ackPoint classifies a statement as an acknowledgement: a direct channel
// send, or a call to an amrivet:ack-annotated function.
func ackPoint(pass *Pass, s ast.Stmt) (string, token.Pos) {
	switch x := s.(type) {
	case *ast.SendStmt:
		return "channel send", x.Pos()
	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		if !ok {
			return "", 0
		}
		fn := valueflow.StaticCallee(pass.Info, call)
		if fn == nil {
			return "", 0
		}
		var f AckFact
		if pass.Facts.Lookup(facts.ObjectID(fn), &f) {
			return "call to " + fn.Name(), call.Pos()
		}
	}
	return "", 0
}

// stmtAppends reports whether the statement (outside nested functions and
// go statements) performs a WAL append, directly or through a summary.
func stmtAppends(pass *Pass, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isAppendWALCall(pass, x) {
				found = true
			} else if fn := valueflow.StaticCallee(pass.Info, x); fn != nil {
				var f WALFact
				if pass.Facts.Lookup(facts.ObjectID(fn), &f) && f.Appends {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isAppendWALCall reports a direct method call named AppendWAL.
func isAppendWALCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AppendWAL" {
		return false
	}
	return pass.Info.Selections[sel] != nil
}

// hasMethodNamed reports whether t's method set includes name.
func hasMethodNamed(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// identObject resolves a plain identifier receiver to its object.
func identObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
