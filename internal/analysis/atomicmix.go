package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix reports variables and struct fields that are accessed both
// through sync/atomic operations and through plain loads/stores in the
// same package. Mixing the two is a data race even when each individual
// access "looks" safe: the plain access is invisible to the race the
// atomic was added to fix. The modern fix is the typed atomics
// (atomic.Uint64 et al.), which make plain access unrepresentable — this
// analyzer exists to keep the old-style mix from creeping back in.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "reports fields accessed both via sync/atomic and via plain loads/stores",
	Run:  runAtomicMix,
}

// atomicOpPrefixes match the sync/atomic function families that take a
// pointer to the shared word.
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

func runAtomicMix(pass *Pass) {
	// First pass: find every object whose address is passed to a
	// sync/atomic operation, and remember the exact operand nodes so the
	// second pass does not count them as plain accesses.
	atomicObjs := make(map[types.Object]token.Pos)
	operand := make(map[ast.Node]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			if !hasAtomicOpPrefix(obj.Name()) {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := resolveAccessObj(pass, addr.X)
			if target == nil {
				return true
			}
			if _, seen := atomicObjs[target]; !seen {
				atomicObjs[target] = call.Pos()
			}
			operand[addr.X] = true
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	// Second pass: any other access to those objects is a plain
	// load/store racing the atomics.
	for _, file := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if operand[n] {
				return false // the &x inside the atomic call itself
			}
			switch e := n.(type) {
			case *ast.KeyValueExpr:
				// Composite-literal keys resolve to field objects but are
				// initialization, not shared access; only walk the value.
				ast.Inspect(e.Value, visit)
				return false
			case *ast.SelectorExpr:
				if sel := pass.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
					if first, ok := atomicObjs[sel.Obj()]; ok {
						pass.Reportf(e.Sel.Pos(),
							"%s is accessed atomically (first at %s) but read/written plainly here; use sync/atomic (or a typed atomic) everywhere",
							sel.Obj().Name(), pass.Fset.Position(first))
					}
					ast.Inspect(e.X, visit)
					return false
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[e]; obj != nil {
					if first, ok := atomicObjs[obj]; ok {
						pass.Reportf(e.Pos(),
							"%s is accessed atomically (first at %s) but read/written plainly here; use sync/atomic (or a typed atomic) everywhere",
							obj.Name(), pass.Fset.Position(first))
					}
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

func hasAtomicOpPrefix(name string) bool {
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// resolveAccessObj maps an addressable expression to the variable or field
// object it denotes, or nil for expressions (map index, function results)
// the analyzer does not track.
func resolveAccessObj(pass *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		return resolveAccessObj(pass, x.X)
	}
	return nil
}
