// Field-access summaries: the second interprocedural facet of the
// value-flow layer. For every function, CollectFieldAccess computes the
// set of struct fields it may read and write — directly or through any
// statically-resolvable callee — keyed by facts.FieldID (owner struct +
// field name, object-insensitive). barrierflush uses these to decide which
// worker-scratch fields a spawned goroutine may dirty and which reads in
// the spawning function observe them before a happens-before barrier.
//
// Accesses performed while the accessing function holds a lock on the
// owner (it calls owner.mu.Lock()/RLock() somewhere in its body) are
// excluded: mutex-guarded state is synchronized by the lock, not the
// barrier, and is mutexguard/lockhold territory. Atomic fields never
// appear in write sets because atomics are mutated through method calls
// (Store/Add), not plain assignments — which is exactly the synchronized/
// unsynchronized split the barrier discipline cares about.
package valueflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amri/internal/analysis/facts"
)

// FieldAccessFact lists the struct fields a function may read or write,
// transitively through its static callees, as facts.FieldIDs.
type FieldAccessFact struct {
	Writes []string `json:"writes,omitempty"`
	Reads  []string `json:"reads,omitempty"`
}

// FactName implements facts.Fact.
func (*FieldAccessFact) FactName() string { return "amrivet.fieldaccess" }

// CollectFieldAccess computes transitive field-access summaries for every
// function in the package (fixpoint over same-package calls, imported
// facts for cross-package callees), exports them, and returns the map.
func CollectFieldAccess(p Package) map[*types.Func]*FieldAccessFact {
	type direct struct {
		fd      *ast.FuncDecl
		writes  map[string]bool
		reads   map[string]bool
		callees []*types.Func
	}
	directs := make(map[*types.Func]*direct)
	var order []*types.Func
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			d := &direct{fd: fd, writes: make(map[string]bool), reads: make(map[string]bool)}
			reads, writes, callees := directFieldAccess(p.Info, fd.Body, true)
			for _, r := range reads {
				d.reads[r] = true
			}
			for _, w := range writes {
				d.writes[w] = true
			}
			d.callees = callees
			directs[obj] = d
			order = append(order, obj)
		}
	}

	// Transitive closure: seed with direct sets, fold in callee sets to a
	// fixpoint (same-package callees evolve; imported ones are stable).
	trans := make(map[*types.Func]*FieldAccessFact, len(order))
	sets := make(map[*types.Func][2]map[string]bool, len(order))
	for _, fn := range order {
		d := directs[fn]
		r := make(map[string]bool, len(d.reads))
		w := make(map[string]bool, len(d.writes))
		for k := range d.reads {
			r[k] = true
		}
		for k := range d.writes {
			w[k] = true
		}
		sets[fn] = [2]map[string]bool{r, w}
	}
	lookupImported := func(fn *types.Func) *FieldAccessFact {
		var f FieldAccessFact
		if p.Facts.Lookup(facts.ObjectID(fn), &f) {
			return &f
		}
		return nil
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, fn := range order {
			rw := sets[fn]
			for _, callee := range directs[fn].callees {
				if crw, ok := sets[callee]; ok {
					for k := range crw[0] {
						if !rw[0][k] {
							rw[0][k] = true
							changed = true
						}
					}
					for k := range crw[1] {
						if !rw[1][k] {
							rw[1][k] = true
							changed = true
						}
					}
					continue
				}
				if f := lookupImported(callee); f != nil {
					for _, k := range f.Reads {
						if !rw[0][k] {
							rw[0][k] = true
							changed = true
						}
					}
					for _, k := range f.Writes {
						if !rw[1][k] {
							rw[1][k] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range order {
		rw := sets[fn]
		f := &FieldAccessFact{Reads: sortedKeys(rw[0]), Writes: sortedKeys(rw[1])}
		trans[fn] = f
		if len(f.Reads) > 0 || len(f.Writes) > 0 {
			p.Facts.Export(p.PkgPath, facts.ObjectID(fn), f)
		}
	}
	return trans
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BodyFieldAccess exposes the direct (non-transitive) field accesses of an
// arbitrary body — barrierflush uses it on spawned function literals —
// plus the static callees invoked inside it.
func BodyFieldAccess(info *types.Info, body ast.Node) (reads, writes []string, callees []*types.Func) {
	return directFieldAccess(info, body, false)
}

// directFieldAccess walks one body collecting field reads/writes and
// static callees. With skipFuncLits set, function literals are opaque
// (their accesses happen when the closure runs, possibly on another
// goroutine — barrierflush attributes them at the go statement instead).
func directFieldAccess(info *types.Info, body ast.Node, skipFuncLits bool) (reads, writes []string, callees []*types.Func) {
	guarded := guardedOwners(info, body)
	readSet := make(map[string]bool)
	writeSet := make(map[string]bool)
	seenCallee := make(map[*types.Func]bool)
	writeTargets := make(map[ast.Expr]bool)

	fieldID := func(e ast.Expr) (string, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return "", false
		}
		owner := namedOf(s.Recv())
		if owner == nil || guarded[owner.Obj()] {
			return "", false
		}
		return facts.FieldID(owner, sel.Sel.Name), true
	}
	// unwrapTarget peels index/slice/star wrappers off an assignment
	// target so `sc.obs[i] = v` counts as a write to field obs.
	unwrapTarget := func(e ast.Expr) ast.Expr {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return e
			}
		}
	}
	markWrite := func(e ast.Expr, alsoRead bool) {
		t := unwrapTarget(e)
		if id, ok := fieldID(t); ok {
			writeSet[id] = true
			if alsoRead {
				readSet[id] = true
			}
		}
		if !alsoRead {
			writeTargets[t] = true
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if skipFuncLits && n != body {
				return false
			}
		case *ast.AssignStmt:
			alsoRead := x.Tok != token.ASSIGN && x.Tok != token.DEFINE
			for _, lhs := range x.Lhs {
				markWrite(lhs, alsoRead)
			}
		case *ast.IncDecStmt:
			markWrite(x.X, true)
		case *ast.CallExpr:
			if fn := StaticCallee(info, x); fn != nil && !seenCallee[fn] {
				seenCallee[fn] = true
				callees = append(callees, fn)
			}
		case *ast.SelectorExpr:
			// A plain-assign target is a pure write; everything else
			// resolving to a field is a read.
			if writeTargets[ast.Expr(x)] {
				return true
			}
			if id, ok := fieldID(x); ok {
				readSet[id] = true
			}
		}
		return true
	})
	sort.Slice(callees, func(i, j int) bool {
		return facts.ObjectID(callees[i]) < facts.ObjectID(callees[j])
	})
	return sortedKeys(readSet), sortedKeys(writeSet), callees
}

// guardedOwners returns the named types whose mutex the body locks
// (x.mu.Lock() with mu a field of owner O): accesses to O's fields inside
// this body are lock-synchronized, not barrier-synchronized.
func guardedOwners(info *types.Info, body ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[inner]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if owner := namedOf(s.Recv()); owner != nil {
			out[owner.Obj()] = true
		}
		return true
	})
	return out
}

// namedOf unwraps pointers/aliases to the named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
