// Package valueflow is amrivet's interprocedural value-flow (taint) layer:
// a reusable engine that tracks how values propagate from sources (map
// ranges, for maporder) through value-preserving moves — assignment,
// conversion, append, indexing, ranging, string concatenation — into
// order-sensitive sinks, across function and package boundaries.
//
// It generalizes critescape's local taint lattice: each function is
// analyzed over its CFG with a bitmask lattice (bit 0 = "derived from a
// source", bit i+1 = "derived from parameter i"), and the parameter bits
// become a reusable summary recorded as a facts.Fact (FlowFact): which
// parameters flow to which results, which results are tainted by an
// internal source, and which parameters reach a sink inside the callee.
// Callers consult callee summaries at every call site, so a source→sink
// flow is found even when the source and the sink live in different
// functions — or different packages, since FlowFact rides the same
// encoded-facts channel as every other amrivet fact.
//
// Deliberate imprecision, chosen to match the invariants the maporder
// analyzer enforces:
//
//   - Arithmetic between numeric operands drops taint (sum += v is the
//     sanctioned commutative aggregation); string concatenation keeps it.
//   - Comparisons drop taint (branching on map data is not an ordering
//     hazard the sinks observe).
//   - A call with no summary propagates the union of its argument taints
//     to its results (strconv.Itoa(k) stays tainted); Spec.Sanitizes
//     overrides this for the sort family.
//   - Container taint is field-insensitive: a tainted struct taints its
//     fields, writing a tainted element taints the container's root local.
//   - Function literals are opaque (consistent with the call graph).
package valueflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amri/internal/analysis/cfg"
	"amri/internal/analysis/facts"
)

// srcBit marks "derived from a source"; parameter i owns bit i+1.
const srcBit = uint64(1)

// maxParams caps how many parameters fit in the bitmask lattice.
const maxParams = 62

// Spec parameterizes one taint analysis.
type Spec struct {
	// TaintsRange reports whether ranging over x (of type t) seeds source
	// taint on the iteration variables (maporder: t is a map).
	TaintsRange func(x ast.Expr, t types.Type) bool
	// Sink classifies a call as an order-sensitive sink: a non-empty
	// description plus the indices of the order-sensitive arguments.
	Sink func(call *ast.CallExpr) (string, []int)
	// Sanitizes returns the indices of arguments whose taint the call
	// clears (sort.Slice and friends clear argument 0).
	Sanitizes func(call *ast.CallExpr) []int
}

// Finding is one source→sink flow.
type Finding struct {
	// Pos is the sink (or the call that transitively reaches it).
	Pos token.Pos
	// Sink describes the sink ("WAL append", "digest write", ...).
	Sink string
	// Via names the callee the flow passes through when the sink is
	// inside another function; empty for a direct sink.
	Via string
}

// ParamSink records that a function forwards one of its parameters into a
// sink (directly or transitively).
type ParamSink struct {
	Param int    `json:"param"`
	Sink  string `json:"sink"`
}

// FlowFact is a function's value-flow summary. Parameter numbering counts
// the receiver as parameter 0 for methods.
type FlowFact struct {
	// TaintedResults lists result indices carrying source taint.
	TaintedResults []int `json:"tainted_results,omitempty"`
	// ParamFlows lists [param, result] value-preserving flows.
	ParamFlows [][2]int `json:"param_flows,omitempty"`
	// ParamSinks lists parameters that reach a sink inside the function.
	ParamSinks []ParamSink `json:"param_sinks,omitempty"`
}

// FactName implements facts.Fact.
func (*FlowFact) FactName() string { return "amrivet.valueflow" }

func init() {
	facts.Register(&FlowFact{})
	facts.Register(&FieldAccessFact{})
}

// Package bundles the per-package inputs the engine needs (mirroring
// analysis.Pass without importing it, which would cycle).
type Package struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	PkgPath string
	Info    *types.Info
	Facts   *facts.Store
}

// AnalyzePackage runs the taint engine over every function of the package
// to a summary fixpoint (so same-package call chains converge regardless
// of declaration order), exports each function's FlowFact, and returns the
// source→sink findings.
func AnalyzePackage(p Package, spec Spec) []Finding {
	e := &engine{p: p, spec: spec, summaries: make(map[*types.Func]*FlowFact)}
	var fns []*ast.FuncDecl
	var objs []*types.Func
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fd)
			objs = append(objs, obj)
		}
	}
	// Summary fixpoint: monotone (sets only grow), so a handful of rounds
	// converge; the cap bounds pathological mutual recursion.
	for round := 0; round < 8; round++ {
		changed := false
		for i, fd := range fns {
			sum := e.analyzeFunc(fd, objs[i], nil)
			if !equalFlowFacts(e.summaries[objs[i]], sum) {
				e.summaries[objs[i]] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var findings []Finding
	for i, fd := range fns {
		e.analyzeFunc(fd, objs[i], func(f Finding) { findings = append(findings, f) })
		if sum := e.summaries[objs[i]]; sum != nil && !sum.empty() {
			p.Facts.Export(p.PkgPath, facts.ObjectID(objs[i]), sum)
		}
	}
	return findings
}

func (f *FlowFact) empty() bool {
	return f == nil || (len(f.TaintedResults) == 0 && len(f.ParamFlows) == 0 && len(f.ParamSinks) == 0)
}

func equalFlowFacts(a, b *FlowFact) bool {
	if a == nil || b == nil {
		return a.empty() && b.empty()
	}
	return fmt.Sprint(a.TaintedResults) == fmt.Sprint(b.TaintedResults) &&
		fmt.Sprint(a.ParamFlows) == fmt.Sprint(b.ParamFlows) &&
		fmt.Sprint(a.ParamSinks) == fmt.Sprint(b.ParamSinks)
}

// engine is one AnalyzePackage run's shared state.
type engine struct {
	p         Package
	spec      Spec
	summaries map[*types.Func]*FlowFact
}

// summaryOf resolves a callee's summary: same-package fixpoint state
// first, then the imported facts store.
func (e *engine) summaryOf(fn *types.Func) *FlowFact {
	if s, ok := e.summaries[fn]; ok {
		return s
	}
	var f FlowFact
	if e.p.Facts.Lookup(facts.ObjectID(fn), &f) {
		return &f
	}
	return nil
}

// taintState is the lattice value: local object → taint bitmask.
type taintState map[types.Object]uint64

func copyTaint(in taintState) taintState {
	out := make(taintState, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// funcAnalysis carries one function's analysis.
type funcAnalysis struct {
	e       *engine
	fd      *ast.FuncDecl
	params  []*types.Var // receiver first for methods
	results []*types.Var
	rangeX  map[ast.Expr]*ast.RangeStmt
	// summary accumulators (report phase only).
	taintedResults map[int]bool
	paramFlows     map[[2]int]bool
	paramSinks     map[ParamSink]bool
	report         func(Finding)
}

// analyzeFunc runs the dataflow over fd; with report nil it only computes
// the state fixpoint (phase 1 of the package-level summary fixpoint), with
// report set it re-walks the blocks emitting findings and the summary.
func (e *engine) analyzeFunc(fd *ast.FuncDecl, obj *types.Func, report func(Finding)) *FlowFact {
	fa := &funcAnalysis{
		e:              e,
		fd:             fd,
		rangeX:         make(map[ast.Expr]*ast.RangeStmt),
		taintedResults: make(map[int]bool),
		paramFlows:     make(map[[2]int]bool),
		paramSinks:     make(map[ParamSink]bool),
	}
	sig := obj.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		fa.params = append(fa.params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		fa.params = append(fa.params, sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		fa.results = append(fa.results, sig.Results().At(i))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			fa.rangeX[rs.X] = rs
		}
		return true
	})

	entry := make(taintState)
	for i, p := range fa.params {
		if i < maxParams {
			entry[p] = srcBit << (i + 1)
		}
	}
	g := cfg.Build(fd.Body)
	flow := cfg.Flow[taintState]{
		Entry:  entry,
		Bottom: func() taintState { return taintState{} },
		Join: func(a, b taintState) taintState {
			out := copyTaint(a)
			for k, v := range b {
				out[k] |= v
			}
			return out
		},
		Equal: func(a, b taintState) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in taintState) taintState {
			out := copyTaint(in)
			for _, s := range b.Stmts {
				fa.transferStmt(s, out)
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	fa.report = report
	for _, b := range g.Blocks {
		st := copyTaint(res.In[b])
		for _, s := range b.Stmts {
			fa.transferStmt(s, st)
		}
	}
	return fa.summary()
}

func (fa *funcAnalysis) summary() *FlowFact {
	out := &FlowFact{}
	for r := range fa.taintedResults {
		out.TaintedResults = append(out.TaintedResults, r)
	}
	sort.Ints(out.TaintedResults)
	for pf := range fa.paramFlows {
		out.ParamFlows = append(out.ParamFlows, pf)
	}
	sort.Slice(out.ParamFlows, func(i, j int) bool {
		a, b := out.ParamFlows[i], out.ParamFlows[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	for ps := range fa.paramSinks {
		out.ParamSinks = append(out.ParamSinks, ps)
	}
	sort.Slice(out.ParamSinks, func(i, j int) bool {
		a, b := out.ParamSinks[i], out.ParamSinks[j]
		if a.Param != b.Param {
			return a.Param < b.Param
		}
		return a.Sink < b.Sink
	})
	return out
}

// transferStmt applies one statement's taint effects to st, reporting
// findings and accumulating the summary when fa.report is set.
func (fa *funcAnalysis) transferStmt(s ast.Stmt, st taintState) {
	// The CFG lowers `for k, v := range X` to an ExprStmt{X} in the loop
	// head; recover the RangeStmt to seed the iteration variables.
	if es, ok := s.(*ast.ExprStmt); ok {
		if rs, ok := fa.rangeX[es.X]; ok {
			fa.seedRange(rs, st)
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fa.processCall(x, st)
		case *ast.AssignStmt:
			fa.transferAssign(x, st)
		case *ast.ReturnStmt:
			fa.transferReturn(x, st)
		}
		return true
	})
}

// seedRange taints the key/value variables of a range loop: a map range
// seeds source taint on both (iteration order picks them); a tainted
// container passes its taint to the values it yields.
func (fa *funcAnalysis) seedRange(rs *ast.RangeStmt, st taintState) {
	ct := fa.evalTaint(rs.X, st)
	t := fa.typeOf(rs.X)
	if t == nil {
		return
	}
	var kt, vt uint64
	switch t.Underlying().(type) {
	case *types.Map:
		bits := ct
		if fa.e.spec.TaintsRange != nil && fa.e.spec.TaintsRange(rs.X, t) {
			bits |= srcBit
		}
		kt, vt = bits, bits
	case *types.Slice, *types.Array:
		vt = ct // indices are deterministic, elements carry the taint
	case *types.Chan, *types.Basic:
		kt = ct
	}
	fa.setIdent(rs.Key, kt, st)
	fa.setIdent(rs.Value, vt, st)
}

func (fa *funcAnalysis) setIdent(e ast.Expr, bits uint64, st taintState) {
	if e == nil {
		return
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := fa.objOf(id)
	if obj == nil {
		return
	}
	if bits == 0 {
		delete(st, obj)
	} else {
		st[obj] = bits
	}
}

func (fa *funcAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := fa.e.p.Info.Defs[id]; obj != nil {
		return obj
	}
	return fa.e.p.Info.Uses[id]
}

func (fa *funcAnalysis) typeOf(e ast.Expr) types.Type {
	if tv, ok := fa.e.p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// evalTaint computes the taint bits an expression carries. Pure: no
// reporting, no state mutation.
func (fa *funcAnalysis) evalTaint(e ast.Expr, st taintState) uint64 {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := fa.objOf(x); obj != nil {
			return st[obj]
		}
	case *ast.SelectorExpr:
		// Package-qualified names carry no local taint; field selection
		// inherits the container's (field-insensitive).
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := fa.e.p.Info.Uses[id].(*types.PkgName); isPkg {
				return 0
			}
		}
		return fa.evalTaint(x.X, st)
	case *ast.IndexExpr:
		return fa.evalTaint(x.X, st) | fa.evalTaint(x.Index, st)
	case *ast.IndexListExpr:
		return fa.evalTaint(x.X, st)
	case *ast.SliceExpr:
		return fa.evalTaint(x.X, st)
	case *ast.StarExpr:
		return fa.evalTaint(x.X, st)
	case *ast.ParenExpr:
		return fa.evalTaint(x.X, st)
	case *ast.TypeAssertExpr:
		return fa.evalTaint(x.X, st)
	case *ast.UnaryExpr:
		return fa.evalTaint(x.X, st)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			return 0 // comparisons: order taint does not survive into booleans
		}
		if isNumeric(fa.typeOf(x.X)) && isNumeric(fa.typeOf(x.Y)) {
			return 0 // commutative numeric aggregation is sanctioned
		}
		return fa.evalTaint(x.X, st) | fa.evalTaint(x.Y, st)
	case *ast.CompositeLit:
		var bits uint64
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				bits |= fa.evalTaint(kv.Value, st)
				continue
			}
			bits |= fa.evalTaint(elt, st)
		}
		return bits
	case *ast.CallExpr:
		return fa.callResultTaint(x, st)
	}
	return 0
}

// calleeOf resolves a call's static callee, nil for builtins, conversions
// and dynamic function values.
func (fa *funcAnalysis) calleeOf(call *ast.CallExpr) *types.Func {
	return StaticCallee(fa.e.p.Info, call)
}

// StaticCallee resolves a call expression to its static *types.Func
// (package function, method, or interface method), nil otherwise.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// callArgs returns the call's effective argument expressions with the
// receiver prepended for method calls, aligning indices with FlowFact's
// parameter numbering.
func (fa *funcAnalysis) callArgs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := fa.e.p.Info.Selections[sel]; s != nil {
			args := make([]ast.Expr, 0, len(call.Args)+1)
			args = append(args, sel.X)
			return append(args, call.Args...)
		}
	}
	return call.Args
}

// paramIndexOf maps an effective argument index to the callee's parameter
// index, folding variadic overflow onto the last parameter.
func paramIndexOf(fn *types.Func, arg int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return arg
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if arg >= n {
		return n - 1
	}
	return arg
}

// callResultTaint computes the taint of a call's results: conversions and
// value-preserving builtins pass taint through; callees with summaries
// apply their recorded flows; summary-less callees default to propagating
// the union of their argument taints.
func (fa *funcAnalysis) callResultTaint(call *ast.CallExpr, st taintState) uint64 {
	if tv, ok := fa.e.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return fa.evalTaint(call.Args[0], st)
		}
		return 0
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fa.e.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "min", "max":
				var bits uint64
				for _, a := range call.Args {
					bits |= fa.evalTaint(a, st)
				}
				return bits
			default:
				return 0 // len, cap, make, new, delete, ...
			}
		}
	}
	argUnion := func() uint64 {
		var bits uint64
		for _, a := range fa.callArgs(call) {
			bits |= fa.evalTaint(a, st)
		}
		return bits
	}
	fn := fa.calleeOf(call)
	if fn == nil {
		return argUnion()
	}
	sum := fa.e.summaryOf(fn)
	if sum == nil {
		return argUnion()
	}
	var bits uint64
	if len(sum.TaintedResults) > 0 {
		bits |= srcBit
	}
	if len(sum.ParamFlows) > 0 {
		args := fa.callArgs(call)
		argBits := make(map[int]uint64)
		for i, a := range args {
			argBits[paramIndexOf(fn, i)] |= fa.evalTaint(a, st)
		}
		for _, pf := range sum.ParamFlows {
			bits |= argBits[pf[0]]
		}
	}
	return bits
}

// processCall applies a call's side effects: sanitizer clearing, direct
// sink checks, and transitive sink checks through the callee's summary.
func (fa *funcAnalysis) processCall(call *ast.CallExpr, st taintState) {
	spec := fa.e.spec
	if spec.Sanitizes != nil {
		for _, idx := range spec.Sanitizes(call) {
			if idx < len(call.Args) {
				if root := rootObjOf(fa.e.p.Info, call.Args[idx]); root != nil {
					delete(st, root)
				}
			}
		}
	}
	emit := func(bits uint64, desc, via string, pos token.Pos) {
		if bits&srcBit != 0 && fa.report != nil {
			fa.report(Finding{Pos: pos, Sink: desc, Via: via})
		}
		for i := 1; i < maxParams; i++ {
			if bits&(srcBit<<uint(i)) != 0 {
				fa.paramSinks[ParamSink{Param: i - 1, Sink: desc}] = true
			}
		}
	}
	if spec.Sink != nil {
		if desc, idxs := spec.Sink(call); desc != "" {
			for _, idx := range idxs {
				if idx < len(call.Args) {
					emit(fa.evalTaint(call.Args[idx], st), desc, "", call.Args[idx].Pos())
				}
			}
			return
		}
	}
	fn := fa.calleeOf(call)
	if fn == nil {
		return
	}
	sum := fa.e.summaryOf(fn)
	if sum == nil || len(sum.ParamSinks) == 0 {
		return
	}
	args := fa.callArgs(call)
	argBits := make(map[int]uint64)
	for i, a := range args {
		argBits[paramIndexOf(fn, i)] |= fa.evalTaint(a, st)
	}
	for _, ps := range sum.ParamSinks {
		emit(argBits[ps.Param], ps.Sink, fn.Name(), call.Pos())
	}
}

// rootObjOf resolves the base local of a selector/index chain (the object
// whose taint a container write or sanitizer affects).
func rootObjOf(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			// Unwrap single-argument conversions: sort.Sort(byKey(s))
			// sanitizes s itself.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// localVar reports whether obj is a function-scoped variable (taintable).
func localVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
}

func (fa *funcAnalysis) transferAssign(x *ast.AssignStmt, st taintState) {
	// Compound assignment: numeric folds (sum += v, h ^= v) are the
	// sanctioned commutative aggregation and drop taint; string += keeps
	// it (concatenation order is observable).
	if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if isNumeric(fa.typeOf(x.Lhs[0])) {
				return
			}
			bits := fa.evalTaint(x.Lhs[0], st) | fa.evalTaint(x.Rhs[0], st)
			fa.assignTo(x.Lhs[0], bits, st)
		}
		return
	}
	for i, lhs := range x.Lhs {
		var rhs ast.Expr
		if len(x.Rhs) == len(x.Lhs) {
			rhs = x.Rhs[i]
		} else if len(x.Rhs) == 1 {
			rhs = x.Rhs[0] // multi-value: every target gets the union
		}
		if rhs == nil {
			continue
		}
		fa.assignTo(lhs, fa.evalTaint(rhs, st), st)
	}
}

// assignTo writes taint bits into an assignment target: a local ident is
// set (or cleared), a container store unions into the container's root.
func (fa *funcAnalysis) assignTo(lhs ast.Expr, bits uint64, st taintState) {
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := fa.objOf(id); obj != nil && localVar(obj) {
			if bits == 0 {
				delete(st, obj)
			} else {
				st[obj] = bits
			}
		}
		return
	}
	if bits == 0 {
		return
	}
	if root := rootObjOf(fa.e.p.Info, lhs); root != nil && localVar(root) {
		st[root] |= bits
	}
}

func (fa *funcAnalysis) transferReturn(x *ast.ReturnStmt, st taintState) {
	record := func(j int, bits uint64) {
		if bits&srcBit != 0 {
			fa.taintedResults[j] = true
		}
		for i := 1; i < maxParams; i++ {
			if bits&(srcBit<<uint(i)) != 0 {
				fa.paramFlows[[2]int{i - 1, j}] = true
			}
		}
	}
	if len(x.Results) == 0 {
		// Bare return with named results.
		for j, r := range fa.results {
			if r.Name() != "" {
				record(j, st[r])
			}
		}
		return
	}
	for j, r := range x.Results {
		record(j, fa.evalTaint(r, st))
	}
}
