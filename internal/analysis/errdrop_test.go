package analysis

import "testing"

func TestErrDropFixture(t *testing.T) {
	diags := runFixture(t, ErrDrop, "errdrop")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
