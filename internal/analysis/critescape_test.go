package analysis

import "testing"

func TestCritEscapeFixture(t *testing.T) {
	diags := runFixture(t, CritEscape, "critescape")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
