package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSource(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// LoadDir must apply the same file selection `go list` applies to a
// production build: _test.go variants and files excluded by build
// constraints (//go:build lines or GOOS/GOARCH filename suffixes) are not
// part of the analyzed package. The skipped files here carry type errors,
// so accidentally including any of them fails the load outright.
func TestLoadDirSkipsTestAndConstrainedFiles(t *testing.T) {
	dir := t.TempDir()
	writeSource(t, dir, "keep.go", "package fx\n\nfunc Keep() int { return 1 }\n")
	writeSource(t, dir, "keep_test.go", "package fx\n\nfunc broken() int { return \"not an int\" }\n")
	writeSource(t, dir, "tagged.go", "//go:build amrivetneverenabled\n\npackage fx\n\nfunc alsoBroken() int { return \"no\" }\n")
	writeSource(t, dir, "broken_plan9.go", "package fx\n\nfunc plan9Broken() int { return \"no\" }\n")

	pkg, err := LoadDir(moduleRoot(t), dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("got %d files, want 1 (only keep.go)", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("Keep") == nil {
		t.Error("Keep not in package scope")
	}
	for _, name := range []string{"broken", "alsoBroken", "plan9Broken"} {
		if pkg.Types.Scope().Lookup(name) != nil {
			t.Errorf("%s leaked into the package scope from an excluded file", name)
		}
	}
}

// A package that fails type-checking must come back as an error carrying
// the first type error, never as a panic or a half-checked package.
func TestLoadDirTypeCheckFailureIsError(t *testing.T) {
	dir := t.TempDir()
	writeSource(t, dir, "bad.go", "package fx\n\nfunc F() int { return \"nope\" }\n")

	pkg, err := LoadDir(moduleRoot(t), dir)
	if err == nil {
		t.Fatalf("LoadDir succeeded on a type-broken package: %v", pkg)
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q does not mention type-checking", err)
	}
}

func TestLoadDirEmptyDirIsError(t *testing.T) {
	if _, err := LoadDir(moduleRoot(t), t.TempDir()); err == nil {
		t.Fatal("LoadDir succeeded on a directory with no .go files")
	}
}

// Load over a real module package must populate the fields RunAll depends
// on, in particular Imports (which orders the fact flow).
func TestLoadPopulatesImports(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/hh")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "amri/internal/hh" {
		t.Errorf("Path = %q, want amri/internal/hh", pkg.Path)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatal("Load returned an incompletely populated package")
	}
	hasSort := false
	for _, imp := range pkg.Imports {
		if imp == "sort" {
			hasSort = true
		}
	}
	if !hasSort {
		t.Errorf("Imports %v does not include %q", pkg.Imports, "sort")
	}
}

func TestLoadBadPatternIsError(t *testing.T) {
	if _, err := Load(moduleRoot(t), "./does/not/exist"); err == nil {
		t.Fatal("Load succeeded on a nonexistent package pattern")
	}
}
