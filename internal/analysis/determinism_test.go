package analysis

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// renderDiags flattens diagnostics to the byte form the driver prints, so
// two runs can be compared with bytes.Equal rather than a structural walk.
func renderDiags(diags []Diagnostic) []byte {
	var buf bytes.Buffer
	for _, d := range diags {
		fmt.Fprintln(&buf, d)
	}
	return buf.Bytes()
}

// TestRunDeterminism pins the suite's output contract: repeated runs and
// parallel runs over the same packages produce byte-identical diagnostics
// and byte-identical encoded fact blobs. Everything downstream — the
// -json baseline format, CI fact caching, diffable lint logs — assumes
// this holds.
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes a whole package tree")
	}
	pkgs, err := Load(moduleRoot(t), "amri/internal/...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := Analyzers()

	run := func(workers int) ([]byte, map[string][]byte) {
		opts := RunOptions{Workers: workers, EncodedFacts: make(map[string][]byte)}
		diags, err := RunAllWith(pkgs, analyzers, opts)
		if err != nil {
			t.Fatal(err)
		}
		return renderDiags(diags), opts.EncodedFacts
	}

	serialDiags, serialFacts := run(1)
	againDiags, againFacts := run(1)
	parallelDiags, parallelFacts := run(runtime.NumCPU())

	if !bytes.Equal(serialDiags, againDiags) {
		t.Errorf("two serial runs rendered different diagnostics:\nfirst:\n%s\nsecond:\n%s", serialDiags, againDiags)
	}
	if !bytes.Equal(serialDiags, parallelDiags) {
		t.Errorf("parallel run rendered different diagnostics from serial:\nserial:\n%s\nparallel:\n%s", serialDiags, parallelDiags)
	}
	compareFacts(t, "serial vs repeat", serialFacts, againFacts)
	compareFacts(t, "serial vs parallel", serialFacts, parallelFacts)
}

func compareFacts(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: %d vs %d fact blobs", label, len(a), len(b))
	}
	for path, blob := range a {
		other, ok := b[path]
		if !ok {
			t.Errorf("%s: package %s has a fact blob in one run only", label, path)
			continue
		}
		if !bytes.Equal(blob, other) {
			t.Errorf("%s: fact blob for %s differs (%d vs %d bytes)", label, path, len(blob), len(other))
		}
	}
}
