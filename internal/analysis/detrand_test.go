package analysis

import "testing"

func TestDetRandFixture(t *testing.T) {
	diags := runFixture(t, DetRand, "detrand")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
