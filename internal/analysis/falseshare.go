package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"amri/internal/analysis/facts"
)

// FalseShare finds cache-line false sharing before the profiler does:
// contended fields — sync.Mutex/RWMutex and sync/atomic types — packed
// into the same 64-byte cache line of one struct but written from distinct
// goroutine contexts, and slices/arrays whose element type contains a
// contended field without being padded to a cache-line multiple (adjacent
// elements then share lines: the shard-header problem).
//
// Layout is computed with the gc/amd64 size rules and a 64-byte line — the
// reference geometry the benchmarks run on; other platforms differ only in
// being more or less forgiving of the same layout. A goroutine context is
// a spawn root: a function started by a go statement (or a spawned
// function literal, which is its own context). A function's contexts are
// the spawn roots that reach it through the call graph, plus the implicit
// caller context when it is also callable from un-spawned code. Two fields
// only false-share if distinct contexts write them concurrently, so:
//
//   - fields written by exactly the same set of functions are exempt (they
//     move together under one writer at a time)
//   - a pair is reported only when its writers span two different contexts
//
// Struct-typed fields are not descended into for the same-line rule — a
// wrapper struct padded to 64 bytes is precisely the sanctioned fix — but
// slice/array element types are searched recursively for the padding rule.
// Suppress a deliberate layout with //amrivet:ignore[falseshare].
var FalseShare = &Analyzer{
	Name:   "falseshare",
	Doc:    "reports contended fields sharing a cache line across goroutine contexts, and unpadded slices of contended structs",
	Run:    runFalseShare,
	Finish: finishFalseShare,
}

// cacheLineSize is the reference cache-line geometry (gc/amd64).
const cacheLineSize = 64

// falseShareSizes computes field offsets under the reference platform.
var falseShareSizes = types.SizesFor("gc", "amd64")

func runFalseShare(pass *Pass) {
	// Spawn roots feed the goroutine-context analysis; exporting them here
	// (as well as in waitleak) keeps the analyzer self-contained when run
	// alone. Identical facts overwrite harmlessly.
	forEachFuncDecl(pass, func(fd *ast.FuncDecl, obj *types.Func) {
		if roots := collectSpawnRoots(pass, fd); len(roots) > 0 {
			pass.ExportFact(obj, &GoSpawnFact{Roots: roots})
		}
	})
}

// isContendedType reports whether t itself is a synchronization type whose
// memory is written on every operation.
func isContendedType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
	case "sync/atomic":
		return true
	}
	return false
}

// isContendedField treats direct sync/atomic fields and arrays of them as
// contended; struct wrappers are deliberately opaque (padding idiom).
func isContendedField(t types.Type) bool {
	if isContendedType(t) {
		return true
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isContendedField(arr.Elem())
	}
	return false
}

// containsContended searches t recursively (structs, arrays) for a
// contended type — the slice-element padding rule.
func containsContended(t types.Type) bool {
	if isContendedType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsContended(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsContended(u.Elem())
	}
	return false
}

// atomicWriteMethods are the mutating methods of sync and sync/atomic
// types; Load/RLocker and TryLock failures read, everything else writes.
var atomicWriteMethods = map[string]bool{
	"Add": true, "Store": true, "Swap": true, "CompareAndSwap": true,
	"Or": true, "And": true,
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

// fieldWrite is one write to a contended field.
type fieldWrite struct {
	field  string // facts.FieldID
	writer string // function ID, possibly with a $go suffix for spawned literals
}

// contendedFieldID returns the FieldID when e is a FieldVal selector of a
// contended field.
func contendedFieldID(info *types.Info, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !isContendedField(v.Type()) {
		return ""
	}
	owner := namedType(selection.Recv())
	if owner == nil {
		return ""
	}
	return facts.FieldID(owner, sel.Sel.Name)
}

// collectFieldWrites walks one function body attributing contended-field
// writes to writerID; spawned literals become their own writer context.
func collectFieldWrites(fset *token.FileSet, info *types.Info, body ast.Node, writerID string, out *[]fieldWrite) {
	spawned := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		}
		return true
	})
	var walk func(node ast.Node, writer string)
	walk = func(node ast.Node, writer string) {
		ast.Inspect(node, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if x == node {
					return true
				}
				w := writer
				if spawned[x] {
					w = fmt.Sprintf("%s$go%d", writerID, fset.Position(x.Pos()).Line)
				}
				walk(x.Body, w)
				return false
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || !atomicWriteMethods[sel.Sel.Name] {
					return true
				}
				if id := contendedFieldID(info, sel.X); id != "" {
					*out = append(*out, fieldWrite{field: id, writer: writer})
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id := contendedFieldID(info, lhs); id != "" {
						*out = append(*out, fieldWrite{field: id, writer: writer})
					}
				}
			}
			return true
		})
	}
	walk(body, writerID)
}

// structLayout is one named struct's contended-field layout.
type structLayout struct {
	name   string
	fields []layoutField
}

type layoutField struct {
	name      string
	id        string
	offset    int64
	size      int64
	contended bool
	pos       token.Position
}

// finishFalseShare computes layouts, writer contexts and the two rules.
func finishFalseShare(s *Session) {
	// Field writes per function, from every loaded package.
	var writes []fieldWrite
	for _, pkg := range s.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				collectFieldWrites(pkg.Fset, pkg.Info, fd.Body, facts.ObjectID(obj), &writes)
			}
		}
	}
	writersOf := make(map[string]map[string]bool) // fieldID -> writer funcs
	for _, w := range writes {
		if writersOf[w.field] == nil {
			writersOf[w.field] = make(map[string]bool)
		}
		writersOf[w.field][w.writer] = true
	}

	ctxOf := goroutineContexts(s, writersOf)

	// Rule 1: same cache line, distinct writer contexts.
	for _, pkg := range s.Packages {
		for _, layout := range structLayouts(pkg) {
			reportSharedLines(s, layout, writersOf, ctxOf)
		}
	}

	// Rule 2: slices/arrays of contended element types not padded to a
	// cache-line multiple.
	for _, pkg := range s.Packages {
		reportUnpaddedElems(s, pkg)
	}
}

// goroutineContexts maps each writer function to the spawn roots that can
// run it. Spawned-literal writers (the $go forms) are their own context.
func goroutineContexts(s *Session, writersOf map[string]map[string]bool) map[string]map[string]bool {
	var roots []string
	rootSeen := make(map[string]bool)
	for _, id := range s.Facts.Objects((&GoSpawnFact{}).FactName()) {
		var f GoSpawnFact
		if !s.Facts.Lookup(id, &f) {
			continue
		}
		for _, r := range f.Roots {
			if !rootSeen[r] {
				rootSeen[r] = true
				roots = append(roots, r)
			}
		}
	}
	sort.Strings(roots)

	inAnyCone := make(map[string]bool)
	cones := make(map[string]map[string]bool, len(roots))
	for _, r := range roots {
		cone := s.Graph.Reachable([]string{r}, nil)
		cones[r] = cone
		for f := range cone {
			inAnyCone[f] = true
		}
	}
	// Reverse edges, to detect functions also callable from un-spawned code.
	callersOf := make(map[string][]string)
	for id := range s.Graph.Nodes {
		for _, callee := range s.Graph.Callees(id) {
			callersOf[callee] = append(callersOf[callee], id)
		}
	}

	out := make(map[string]map[string]bool)
	for _, byWriter := range writersOf {
		for w := range byWriter {
			if out[w] != nil {
				continue
			}
			ctx := make(map[string]bool)
			if i := strings.Index(w, "$go"); i >= 0 {
				ctx[w] = true // a spawned literal is its own goroutine
				out[w] = ctx
				continue
			}
			for _, r := range roots {
				if cones[r][w] {
					ctx[r] = true
				}
			}
			if len(ctx) == 0 {
				ctx["caller"] = true
			} else {
				callerReachable := len(callersOf[w]) == 0
				for _, c := range callersOf[w] {
					if !inAnyCone[c] {
						callerReachable = true
					}
				}
				if callerReachable {
					ctx["caller"] = true
				}
			}
			out[w] = ctx
		}
	}
	return out
}

// containsTypeParam reports whether t's layout depends on a type
// parameter; generic code has no concrete layout to check.
func containsTypeParam(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsTypeParam(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsTypeParam(u.Elem())
	}
	return false
}

// structLayouts computes the layouts of pkg's package-level named structs.
func structLayouts(pkg *Package) []structLayout {
	var out []structLayout
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		// Generic structs have no concrete layout until instantiated; the
		// sizes oracle rejects type-parameter fields outright.
		if named.TypeParams().Len() > 0 {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		vars := make([]*types.Var, st.NumFields())
		for i := range vars {
			vars[i] = st.Field(i)
		}
		offsets := falseShareSizes.Offsetsof(vars)
		layout := structLayout{name: facts.ObjectID(tn)}
		for i, v := range vars {
			layout.fields = append(layout.fields, layoutField{
				name:      v.Name(),
				id:        facts.FieldID(named, v.Name()),
				offset:    offsets[i],
				size:      falseShareSizes.Sizeof(v.Type()),
				contended: isContendedField(v.Type()),
				pos:       pkg.Fset.Position(v.Pos()),
			})
		}
		out = append(out, layout)
	}
	return out
}

// reportSharedLines applies rule 1 to one struct: contended fields in the
// same cache line written from distinct goroutine contexts. One diagnostic
// per offending cache line, at the second field of the first bad pair.
func reportSharedLines(s *Session, layout structLayout, writersOf, ctxOf map[string]map[string]bool) {
	byLine := make(map[int64][]layoutField)
	for _, f := range layout.fields {
		if !f.contended {
			continue
		}
		if len(writersOf[f.id]) == 0 {
			continue // never written in the loaded corpus
		}
		byLine[f.offset/cacheLineSize] = append(byLine[f.offset/cacheLineSize], f)
	}
	var lines []int64
	for l := range byLine {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		group := byLine[l]
		if len(group) < 2 {
			continue
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if sameWriterSet(writersOf[a.id], writersOf[b.id]) {
					continue // updated in lockstep by the same code
				}
				ra, rb, ok := distinctContexts(writersOf[a.id], writersOf[b.id], ctxOf)
				if !ok {
					continue
				}
				s.Reportf(b.pos,
					"contended fields %s (offset %d) and %s (offset %d) of %s share a %d-byte cache line but are written from distinct goroutine contexts (%s vs %s); pad or regroup so concurrent writers do not invalidate each other's line",
					a.name, a.offset, b.name, b.offset, shortLock(layout.name), cacheLineSize,
					shortCtx(ra), shortCtx(rb))
				return // one finding per struct is enough to force the fix
			}
		}
	}
}

func sameWriterSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// distinctContexts finds goroutine contexts r1 ≠ r2 with r1 writing via a
// writer of field a and r2 via a writer of field b.
func distinctContexts(wa, wb map[string]bool, ctxOf map[string]map[string]bool) (string, string, bool) {
	var ras, rbs []string
	for w := range wa {
		for r := range ctxOf[w] {
			ras = append(ras, r)
		}
	}
	for w := range wb {
		for r := range ctxOf[w] {
			rbs = append(rbs, r)
		}
	}
	sort.Strings(ras)
	sort.Strings(rbs)
	for _, ra := range ras {
		for _, rb := range rbs {
			if ra != rb {
				return ra, rb, true
			}
		}
	}
	return "", "", false
}

func shortCtx(r string) string {
	if r == "caller" {
		return "caller"
	}
	return shortLock(r)
}

// reportUnpaddedElems applies rule 2 to one package: make/composite
// allocations of slices or arrays whose element type contains a contended
// field and is not a cache-line multiple.
func reportUnpaddedElems(s *Session, pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var t types.Type
			var pos token.Pos
			switch x := n.(type) {
			case *ast.CallExpr:
				id, ok := x.Fun.(*ast.Ident)
				if !ok || id.Name != "make" || len(x.Args) == 0 {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if tv, ok := pkg.Info.Types[x.Args[0]]; ok {
					t = tv.Type
				}
				pos = x.Pos()
			case *ast.CompositeLit:
				if tv, ok := pkg.Info.Types[x]; ok {
					t = tv.Type
				}
				pos = x.Pos()
			default:
				return true
			}
			if t == nil {
				return true
			}
			var elem types.Type
			switch u := t.Underlying().(type) {
			case *types.Slice:
				elem = u.Elem()
			case *types.Array:
				if u.Len() < 2 {
					return true
				}
				elem = u.Elem()
			default:
				return true
			}
			if !containsContended(elem) || containsTypeParam(elem) {
				return true
			}
			size := falseShareSizes.Sizeof(elem)
			if size <= 0 || size%cacheLineSize == 0 {
				return true
			}
			s.Reportf(pkg.Fset.Position(pos),
				"slice/array elements of type %s are %d bytes and contain contended (sync/atomic) state; adjacent elements share a %d-byte cache line — pad the element type to a cache-line multiple",
				elem.String(), size, cacheLineSize)
			return true
		})
	}
}
