package analysis

import "testing"

func TestLockHoldFixture(t *testing.T) {
	diags := runFixture(t, LockHold, "lockhold")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics: the analyzer catches nothing")
	}
}
