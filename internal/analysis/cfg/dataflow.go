package cfg

// Worklist dataflow over a Graph. The framework is generic over the
// lattice value T: an analysis supplies the boundary value, the join, an
// equality test (for the fixpoint check) and the block transfer function.
// Forward propagates entry→exit (e.g. "which locks are held here"),
// Backward exit→entry (e.g. liveness). Both run the classic round-robin
// worklist to a fixpoint; termination is the analysis' responsibility (the
// transfer/join pair must be monotone over a finite lattice, which all of
// amrivet's uses are — finite sets of locks and channels).

// Flow describes one dataflow problem over lattice values of type T.
type Flow[T any] struct {
	// Entry is the boundary value at the entry block (Forward) or exit
	// block (Backward).
	Entry T
	// Bottom produces the initial value for every other block — the
	// lattice bottom (e.g. the full set for a must-analysis with
	// intersection join, the empty set for a may-analysis with union).
	Bottom func() T
	// Join combines two incoming values. It must not mutate its inputs.
	Join func(a, b T) T
	// Equal reports lattice-value equality; the fixpoint stops when no
	// block's input changes.
	Equal func(a, b T) bool
	// Transfer computes a block's output value from its input. It must
	// not mutate in.
	Transfer func(b *Block, in T) T
}

// Result carries the per-block fixpoint values of one dataflow run.
type Result[T any] struct {
	// In is the value at block entry (in execution order, regardless of
	// analysis direction).
	In map[*Block]T
	// Out is the value at block exit.
	Out map[*Block]T
}

// Forward runs the problem over g in execution order and returns the
// per-block fixpoint.
func Forward[T any](g *Graph, f Flow[T]) Result[T] {
	return run(g, f, false)
}

// Backward runs the problem against execution order: Transfer sees the
// value flowing in from a block's successors and produces the value its
// predecessors observe. In the returned Result, In is still the value at
// block entry in execution order (the analysis' output for a backward
// problem) and Out the value at block exit (its input).
func Backward[T any](g *Graph, f Flow[T]) Result[T] {
	return run(g, f, true)
}

func run[T any](g *Graph, f Flow[T], backward bool) Result[T] {
	res := Result[T]{In: make(map[*Block]T), Out: make(map[*Block]T)}
	boundary := g.Entry
	if backward {
		boundary = g.Exit
	}
	// sources(b) are the blocks whose values flow into b; sink(b) is
	// where b's transferred value lands.
	sources := func(b *Block) []*Block {
		if backward {
			return b.Succs
		}
		return b.Preds
	}
	input := func(b *Block) T {
		srcs := sources(b)
		if b == boundary {
			// The boundary keeps its value; joins cover the (rare) case
			// of a back-edge into it.
			v := f.Entry
			for _, s := range srcs {
				v = f.Join(v, out(res, s, backward))
			}
			return v
		}
		if len(srcs) == 0 {
			return f.Bottom()
		}
		v := out(res, srcs[0], backward)
		for _, s := range srcs[1:] {
			v = f.Join(v, out(res, s, backward))
		}
		return v
	}

	for _, b := range g.Blocks {
		setIn(res, b, backward, f.Bottom())
		setOut(res, b, backward, f.Bottom())
	}
	setIn(res, boundary, backward, f.Entry)

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make(map[*Block]bool, len(work))
	for _, b := range work {
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		in := input(b)
		setIn(res, b, backward, in)
		o := f.Transfer(b, in)
		if f.Equal(o, out(res, b, backward)) {
			continue
		}
		setOut(res, b, backward, o)
		var next []*Block
		if backward {
			next = b.Preds
		} else {
			next = b.Succs
		}
		for _, s := range next {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// out / setIn / setOut hide the direction flip: for a backward problem the
// "input" of a block in analysis order is its Out in execution order.
func out[T any](res Result[T], b *Block, backward bool) T {
	if backward {
		return res.In[b]
	}
	return res.Out[b]
}

func setIn[T any](res Result[T], b *Block, backward bool, v T) {
	if backward {
		res.Out[b] = v
	} else {
		res.In[b] = v
	}
}

func setOut[T any](res Result[T], b *Block, backward bool, v T) {
	if backward {
		res.In[b] = v
	} else {
		res.Out[b] = v
	}
}
