package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns its CFG.
func parseBody(t *testing.T, body string) (*token.FileSet, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return fset, Build(fd.Body)
}

// reachableLines collects source lines of statements reachable from entry.
func reachableLines(fset *token.FileSet, g *Graph) []int {
	seen := make(map[*Block]bool)
	var lines []int
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Stmts {
			lines = append(lines, fset.Position(s.Pos()).Line)
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	sort.Ints(lines)
	return lines
}

func TestStraightLine(t *testing.T) {
	_, g := parseBody(t, "x := 1\ny := 2\n_ = x + y")
	if len(g.Entry.Stmts) != 3 {
		t.Fatalf("entry has %d stmts, want 3", len(g.Entry.Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should flow straight to exit")
	}
}

func TestIfElseJoins(t *testing.T) {
	_, g := parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	// entry(cond) → then, else; both → after → exit.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2", len(g.Entry.Succs))
	}
	after := g.Entry.Succs[0].Succs[0]
	if len(after.Preds) != 2 {
		t.Fatalf("join block has %d preds, want 2", len(after.Preds))
	}
}

func TestIfWithoutElseHasFallEdge(t *testing.T) {
	_, g := parseBody(t, `
x := 0
if x > 0 {
	x = 1
}
_ = x`)
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2 (then + fallthrough)", len(g.Entry.Succs))
	}
}

func TestForLoopBackEdge(t *testing.T) {
	_, g := parseBody(t, `
for i := 0; i < 10; i++ {
	_ = i
}`)
	// Some block must have a back-edge to a block with a smaller index.
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("for loop produced no back-edge")
	}
}

func TestReturnCutsFlow(t *testing.T) {
	fset, g := parseBody(t, `
x := 1
if x > 0 {
	return
}
_ = x`)
	// Both the return and the trailing statement are reachable, and the
	// return's block flows to exit only.
	lines := reachableLines(fset, g)
	if len(lines) == 0 {
		t.Fatal("no reachable statements")
	}
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if r, ok := s.(*ast.ReturnStmt); ok {
				_ = r
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Fatalf("return block succs = %v, want [exit]", b.Succs)
				}
			}
		}
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	_, g := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 30
}
_ = x`)
	// The case-1 block must have an edge into the case-2 block
	// (fallthrough), and the head must not bypass the switch (default
	// present).
	var c1, c2 *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if lit := exprString(as.Rhs[0]); lit == "10" {
					c1 = b
				} else if lit == "20" {
					c2 = b
				}
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatal("case blocks not found")
	}
	found := false
	for _, s := range c1.Succs {
		if s == c2 {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge missing")
	}
}

func exprString(e ast.Expr) string {
	if b, ok := e.(*ast.BasicLit); ok {
		return b.Value
	}
	return ""
}

// TestForwardMayAnalysis runs a may-"lock held" style forward problem:
// union join over string sets, Lock adds, Unlock removes.
func TestForwardMayAnalysis(t *testing.T) {
	fset, g := parseBody(t, `
lock()
if cond() {
	unlock()
}
probe()`)
	_ = fset
	type set = map[string]bool
	flow := Flow[set]{
		Entry:  set{},
		Bottom: func() set { return set{} },
		Join: func(a, b set) set {
			out := set{}
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b set) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in set) set {
			out := flowCopy(in)
			for _, s := range b.Stmts {
				es, ok := s.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "lock":
						out["mu"] = true
					case "unlock":
						delete(out, "mu")
					}
				}
			}
			return out
		},
	}
	res := Forward(g, flow)
	// At probe(), mu may or may not be held depending on the branch: a
	// may-analysis reports it held (union).
	probeBlock := findCallBlock(g, "probe")
	if probeBlock == nil {
		t.Fatal("probe block not found")
	}
	if !res.In[probeBlock]["mu"] {
		t.Fatalf("may-analysis should report mu possibly held at probe; in=%v", res.In[probeBlock])
	}
}

// TestForwardMustAnalysis flips the join to intersection: mu is NOT
// definitely held at probe since one path released it.
func TestForwardMustAnalysis(t *testing.T) {
	_, g := parseBody(t, `
lock()
if cond() {
	unlock()
}
probe()`)
	type set = map[string]bool
	full := func() set { return set{"mu": true, "__bottom": true} }
	flow := Flow[set]{
		Entry:  set{},
		Bottom: full,
		Join: func(a, b set) set {
			if a["__bottom"] {
				return flowCopy(b)
			}
			if b["__bottom"] {
				return flowCopy(a)
			}
			out := set{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b set) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in set) set {
			out := flowCopy(in)
			delete(out, "__bottom")
			for _, s := range b.Stmts {
				es, ok := s.(*ast.ExprStmt)
				if !ok {
					continue
				}
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "lock":
							out["mu"] = true
						case "unlock":
							delete(out, "mu")
						}
					}
				}
			}
			return out
		},
	}
	res := Forward(g, flow)
	probeBlock := findCallBlock(g, "probe")
	if probeBlock == nil {
		t.Fatal("probe block not found")
	}
	if res.In[probeBlock]["mu"] {
		t.Fatal("must-analysis should NOT report mu definitely held at probe")
	}
}

// TestBackwardLiveness runs a liveness-style backward problem over simple
// ident uses and definitions.
func TestBackwardLiveness(t *testing.T) {
	_, g := parseBody(t, `
x := 1
y := 2
_ = y
return`)
	type set = map[string]bool
	flow := Flow[set]{
		Entry:  set{},
		Bottom: func() set { return set{} },
		Join: func(a, b set) set {
			out := flowCopy(a)
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b set) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in set) set {
			out := flowCopy(in)
			// Walk statements in reverse: kill defs, gen uses.
			for i := len(b.Stmts) - 1; i >= 0; i-- {
				switch s := b.Stmts[i].(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							delete(out, id.Name)
						}
					}
					for _, rhs := range s.Rhs {
						ast.Inspect(rhs, func(n ast.Node) bool {
							if id, ok := n.(*ast.Ident); ok && !strings.Contains("0123456789", id.Name) {
								out[id.Name] = true
							}
							return true
						})
					}
				}
			}
			return out
		},
	}
	res := Backward(g, flow)
	// y is live at entry-out of its defining block? After "y := 2" y is
	// used; x is never used, so x must not be live anywhere after its def.
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					if res.Out[b]["x"] {
						t.Fatal("x should be dead after its definition block")
					}
				}
			}
		}
	}
}

func flowCopy(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func findCallBlock(g *Graph, name string) *Block {
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					return b
				}
			}
		}
	}
	return nil
}

func TestSelectAndRange(t *testing.T) {
	_, g := parseBody(t, `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}
for range []int{1, 2} {
	_ = ch
}`)
	if len(g.Blocks) < 5 {
		t.Fatalf("expected a multi-block graph, got %d blocks", len(g.Blocks))
	}
	// Every block must be connected: no successor list pointing at a
	// block missing from Blocks.
	known := make(map[*Block]bool)
	for _, b := range g.Blocks {
		known[b] = true
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !known[s] {
				t.Fatal("edge to unknown block")
			}
		}
	}
}
