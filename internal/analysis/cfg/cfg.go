// Package cfg builds per-function control-flow graphs over go/ast and runs
// forward/backward worklist dataflow over them. It is the intraprocedural
// backbone of amrivet's flow-sensitive analyzers (lockorder's held-lock
// sets, chanprotocol's closed-channel states): a statement-level CFG is
// precise enough to distinguish "the lock is released on this branch" from
// "the lock is held on every path to this acquisition", which a purely
// lexical walk cannot.
//
// The graph is deliberately statement-granular: each Block holds a run of
// statements with no internal control transfer, and expressions are not
// split (short-circuit && / || does not fork blocks). Panics and calls to
// runtime-terminating functions are not modelled — a statement after a
// call that always panics is treated as reachable, which errs toward
// reporting, the right direction for a linter.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is a maximal straight-line run of statements.
type Block struct {
	// Index is the block's position in Graph.Blocks (entry is 0).
	Index int
	// Stmts are the block's statements in execution order. Branch
	// statements (return, break, continue, goto) appear as the final
	// statement of their block.
	Stmts []ast.Stmt
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Preds are the inverse of Succs, filled by Build.
	Preds []*Block
}

// Graph is one function's control-flow graph.
type Graph struct {
	// Blocks lists every block, entry first. The exit block is a
	// distinguished empty block every terminating path reaches.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// builder carries the state of one Build run.
type builder struct {
	g *Graph
	// cur is the block under construction; nil after a terminator.
	cur *Block
	// breakTo / continueTo map loop & switch scopes to their targets.
	breaks    []*branchTarget
	continues []*branchTarget
	// labels maps label names to their blocks for goto resolution;
	// gotos are patched at the end.
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel is the name of the LabeledStmt wrapping the statement
	// about to be lowered, so labeled break/continue find their scope.
	pendingLabel string
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG for a function body. A nil body yields a graph
// with only entry and exit.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*Block)}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{}
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall off the end of the function.
	b.edgeTo(b.g.Exit)
	// Resolve gotos now every label has a block.
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			addEdge(pg.from, target)
		} else {
			addEdge(pg.from, b.g.Exit) // unresolvable: treat as exit
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// edgeTo links the current block to target; a nil current block (dead
// code after a terminator) is a no-op.
func (b *builder) edgeTo(target *Block) {
	if b.cur != nil {
		addEdge(b.cur, target)
	}
}

// startBlock begins a fresh current block and returns it.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

func (b *builder) add(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable statement (after return/branch): give it its own
		// block so dataflow still visits it, with no predecessors.
		b.startBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(&ast.ExprStmt{X: st.Cond})
		condBlock := b.cur
		after := b.newBlock()

		thenBlock := b.startBlock()
		if condBlock != nil {
			addEdge(condBlock, thenBlock)
		}
		b.stmtList(st.Body.List)
		b.edgeTo(after)

		if st.Else != nil {
			elseBlock := b.startBlock()
			if condBlock != nil {
				addEdge(condBlock, elseBlock)
			}
			b.stmt(st.Else)
			b.edgeTo(after)
		} else if condBlock != nil {
			addEdge(condBlock, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.edgeTo(head)
		b.cur = head
		if st.Cond != nil {
			b.add(&ast.ExprStmt{X: st.Cond})
		}
		after := b.newBlock()
		if st.Cond != nil {
			addEdge(head, after) // condition false
		}
		body := b.startBlock()
		addEdge(head, body)
		b.pushLoop(b.takeLabel(), after, head)
		b.stmtList(st.Body.List)
		b.popLoop()
		if st.Post != nil {
			b.add(st.Post)
		}
		b.edgeTo(head)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edgeTo(head)
		b.cur = head
		b.add(&ast.ExprStmt{X: st.X})
		after := b.newBlock()
		addEdge(head, after) // range exhausted
		body := b.startBlock()
		addEdge(head, body)
		b.pushLoop(b.takeLabel(), after, head)
		b.stmtList(st.Body.List)
		b.popLoop()
		b.edgeTo(head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(st)

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.startBlock()
		}
		after := b.newBlock()
		hasDefault := false
		b.pushBreak(b.takeLabel(), after)
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			caseBlock := b.startBlock()
			addEdge(head, caseBlock)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(after)
		}
		_ = hasDefault // a select with no default still always takes a case
		b.popBreak()
		b.cur = after

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edgeTo(target)
		b.cur = target
		b.labels[st.Label.Name] = target
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch st.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breaks, st.Label); t != nil {
				b.edgeTo(t)
			} else {
				b.edgeTo(b.g.Exit)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(b.continues, st.Label); t != nil {
				b.edgeTo(t)
			} else {
				b.edgeTo(b.g.Exit)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil && st.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchStmt via edge to the next case block.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.g.Exit)
		b.cur = nil

	default:
		// Straight-line statement (incl. go/defer/send/assign/expr/decl).
		b.add(s)
	}
}

// switchStmt lowers expression and type switches: the head flows to every
// case (and past the switch when no default exists); fallthrough chains a
// case into the next one.
func (b *builder) switchStmt(s ast.Stmt) {
	var init ast.Stmt
	var tag ast.Expr
	var body *ast.BlockStmt
	label := b.takeLabel()
	switch st := s.(type) {
	case *ast.SwitchStmt:
		init, tag, body = st.Init, st.Tag, st.Body
	case *ast.TypeSwitchStmt:
		init, body = st.Init, st.Body
		b.stmtIfNotNil(st.Assign)
	}
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(&ast.ExprStmt{X: tag})
	}
	head := b.cur
	if head == nil {
		head = b.startBlock()
	}
	after := b.newBlock()
	b.pushBreak(label, after)

	hasDefault := false
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
		caseBlocks = append(caseBlocks, b.newBlock())
	}
	for i, cc := range clauses {
		addEdge(head, caseBlocks[i])
		b.cur = caseBlocks[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(caseBlocks) {
			b.edgeTo(caseBlocks[i+1])
			b.cur = nil
		} else {
			b.edgeTo(after)
		}
	}
	if !hasDefault {
		addEdge(head, after)
	}
	b.popBreak()
	b.cur = after
}

func (b *builder) stmtIfNotNil(s ast.Stmt) {
	if s != nil {
		b.add(s)
	}
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// takeLabel consumes the label of the enclosing LabeledStmt, if the
// statement being lowered is its direct body.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushLoop(name string, breakTo, continueTo *Block) {
	b.breaks = append(b.breaks, &branchTarget{label: name, block: breakTo})
	b.continues = append(b.continues, &branchTarget{label: name, block: continueTo})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(name string, to *Block) {
	b.breaks = append(b.breaks, &branchTarget{label: name, block: to})
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *builder) findTarget(stack []*branchTarget, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return stack[len(stack)-1].block
}
