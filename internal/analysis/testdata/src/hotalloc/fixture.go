// Package hotalloc exercises hot-path allocation tracking: the Search
// method is an amrivet:hotpath root, everything it (transitively) calls is
// on the hot path, and a coldpath directive fences off the deliberate
// slow path.
package hotalloc

// Index carries receiver-attached scratch storage, the sanctioned
// allocation-free pattern.
type Index struct {
	scratch []int
	n       int
}

// Search is the probe entry point.
//
//amrivet:hotpath fixture probe root
func (ix *Index) Search(keys []int) int {
	ix.scratch = ix.scratch[:0]
	for _, k := range keys {
		ix.scratch = append(ix.scratch, k) // receiver scratch: not reported
	}
	return ix.helper(keys)
}

// helper is reachable from Search and allocates three ways.
func (ix *Index) helper(keys []int) int {
	buf := make([]int, 0, len(keys)) // want `make in `
	for _, k := range keys {
		buf = append(buf, k) // want `append to non-receiver slice`
	}
	box := &Index{n: 1} // want `address of composite literal`
	_ = box
	ix.acknowledged()
	return len(buf) + ix.tune()
}

// acknowledged allocates, but the finding is suppressed in-line.
func (ix *Index) acknowledged() *Index {
	return &Index{n: 2} //amrivet:ignore[hotalloc] fixture: one-off sentinel, measured as negligible
}

// tune is the deliberate slow path: allocations behind the boundary are
// exempt, as are any functions it calls.
//
//amrivet:coldpath fixture tuning boundary
func (ix *Index) tune() int {
	big := make([]int, 1024) // not reported: behind the coldpath boundary
	return len(big) + cold()
}

func cold() int {
	return len(make([]int, 8)) // not reported: only reachable through tune
}

// offPath allocates freely: it is not reachable from any hotpath root.
func offPath() []int {
	return make([]int, 8)
}
