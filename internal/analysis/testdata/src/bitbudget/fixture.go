// Package bitbudget is the analyzer fixture: `// want` comments name the
// diagnostics the analyzer must report at exactly those lines.
package bitbudget

import "amri/internal/bitindex"

// bucketCount reads IC bit widths and shifts by them with no bound: a
// 65-bit configuration would collapse the id space to bucket 0.
func bucketCount(c bitindex.Config) uint64 {
	total := 0
	for _, b := range c.Bits {
		total += int(b)
	}
	return 1 << uint(total) // want `variable shift in a function reading IC bit widths without a MaxTotalBits bound`
}

// bucketCountGuarded bounds the width first.
func bucketCountGuarded(c bitindex.Config) uint64 {
	total := c.TotalBits()
	if total >= bitindex.MaxTotalBits {
		return 0
	}
	return 1 << uint(total)
}

// bucketCountValidated delegates the bound to Config.Validate.
func bucketCountValidated(c bitindex.Config, n int) uint64 {
	if err := c.Validate(n); err != nil {
		return 0
	}
	return 1 << uint(c.TotalBits())
}

// rawConfig hand-builds a Config and never validates it.
func rawConfig() bitindex.Config {
	return bitindex.Config{Bits: []uint8{40, 30}} // want `bitindex\.Config constructed outside package bitindex without a Validate call`
}

// checkedConfig validates in the same function: accepted.
func checkedConfig(n int) (bitindex.Config, error) {
	c := bitindex.Config{Bits: []uint8{4, 4}}
	if err := c.Validate(n); err != nil {
		return bitindex.Config{}, err
	}
	return c, nil
}

// delegatedGuard leaves the bound to a helper: the helper's
// ValidatesBudgetFact (computed by the in-package fixpoint even though the
// helper is declared later in the file) keeps this function in the clear.
func delegatedGuard(c bitindex.Config, n int) uint64 {
	if !helperValidates(c, n) {
		return 0
	}
	return 1 << uint(c.TotalBits())
}

// helperValidates carries the Validate call delegatedGuard relies on.
func helperValidates(c bitindex.Config, n int) bool {
	return c.Validate(n) == nil
}

// zeroConfig is trivially within budget: the empty literal needs no check.
func zeroConfig() bitindex.Config { return bitindex.Config{} }

// plainShift involves no IC bits: out of scope.
func plainShift(n int) int { return 1 << uint(n) }
