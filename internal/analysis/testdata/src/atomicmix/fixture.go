// Package atomicmix is the analyzer fixture: `// want` comments name the
// diagnostics the analyzer must report at exactly those lines.
package atomicmix

import "sync/atomic"

type counter struct {
	n    uint64
	safe atomic.Uint64
	m    uint64
}

func (c *counter) incr() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) racyRead() uint64 {
	return c.n // want `n is accessed atomically .* but read/written plainly here`
}

func (c *counter) racyWrite() {
	c.n = 0 // want `n is accessed atomically .* but read/written plainly here`
}

// typedOK uses the typed atomic, which makes a plain access
// unrepresentable — the recommended fix.
func (c *counter) typedOK() uint64 {
	c.safe.Add(1)
	return c.safe.Load()
}

// allAtomic touches m only through sync/atomic: consistent, accepted.
func (c *counter) allAtomic() uint64 {
	atomic.AddUint64(&c.m, 1)
	return atomic.LoadUint64(&c.m)
}

// Composite-literal initialization happens before the value is shared and
// is not a racy plain store.
func fresh() *counter {
	return &counter{n: 0}
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobal() int64 {
	return global // want `global is accessed atomically .* but read/written plainly here`
}
