// Package maporder exercises map-iteration-order taint: values derived
// from ranging over a map flowing into order-sensitive sinks (WAL appends,
// digest writes, emitted output) without an intervening sort.
package maporder

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// wal is a CheckpointStore-shaped sink.
type wal struct{ records [][]byte }

func (w *wal) AppendWAL(rec []byte) error {
	w.records = append(w.records, rec)
	return nil
}

// DigestCounts is the injected-bug smoke case: an unsorted map range
// feeding the digest — run-to-run the write order differs, so the digest
// differs. Exactly one finding.
func DigestCounts(counts map[string]uint64) []byte {
	h := fnv.New64a()
	for k := range counts {
		h.Write([]byte(k)) // want `map-range-derived value flows into a digest write`
	}
	return h.Sum(nil)
}

// DigestSorted is the sanctioned fix: collect, sort, iterate the slice.
func DigestSorted(counts map[string]uint64) []byte {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}

// AppendState replays map-ordered state into the WAL: the record sequence
// differs between runs, so recovery diverges.
func AppendState(w *wal, state map[int][]byte) {
	for _, rec := range state {
		w.AppendWAL(rec) // want `map-range-derived value flows into a WAL append`
	}
}

// XorFold is the sanctioned commutative aggregation: a numeric fold is
// order-independent, so no taint survives into the digest.
func XorFold(counts map[string]uint64) []byte {
	var acc uint64
	for _, v := range counts {
		acc ^= v
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", acc)
	return h.Sum(nil)
}

// emitRecord forwards its argument into the WAL: callers with map-ordered
// arguments are the real sink, found through the FlowFact summary.
func emitRecord(w *wal, rec []byte) {
	w.AppendWAL(rec)
}

// AppendViaHelper reaches the WAL through emitRecord: the interprocedural
// case the value-flow layer exists for.
func AppendViaHelper(w *wal, state map[int][]byte) {
	for _, rec := range state {
		emitRecord(w, rec) // want `reaches a WAL append via call to emitRecord`
	}
}

// unsortedKeys returns map keys in iteration order: the taint rides the
// summary's TaintedResults back to every caller.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// PrintSummary emits values selected by a tainted helper result.
func PrintSummary(m map[string]int) {
	for _, k := range unsortedKeys(m) {
		fmt.Fprintln(os.Stdout, k) // want `map-range-derived value flows into emitted output`
	}
}

// PrintSorted sorts the helper's result first: the sanitizer clears the
// summary-carried taint.
func PrintSorted(m map[string]int) {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(os.Stdout, k)
	}
}

// canonMerge is a project-specific order-sensitive sink, declared with the
// directive sugar.
//
//amrivet:ordersink the merge evolves adaptive state in call order
func canonMerge(vals []uint64) {}

// MergeStats feeds map-ordered values into the annotated sink.
func MergeStats(stats map[int]uint64) {
	for _, v := range stats {
		canonMerge([]uint64{v}) // want `order-sensitive sink canonMerge`
	}
}

// Suppressed records a deliberate exception with the standard directive.
func Suppressed(w *wal, state map[int][]byte) {
	for _, rec := range state {
		//amrivet:ignore[maporder] records are idempotent single-key puts; replay order is immaterial here
		w.AppendWAL(rec)
	}
}
