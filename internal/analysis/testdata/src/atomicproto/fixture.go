// Package atomicproto exercises the lock-free protocol checks: Dekker
// handshake symmetry and atomic.Pointer republish-on-restore.
package atomicproto

import "sync/atomic"

// gate is the push/park handshake pair.
type gate struct {
	pending atomic.Int64
	waiting atomic.Int32
}

// push is the publish side: store pending, then load waiting.
func (g *gate) push() bool {
	g.pending.Store(1)
	return g.waiting.Load() == 1
}

// parkOK mirrors it: store waiting, then re-check pending. Clean.
func (g *gate) parkOK() bool {
	g.waiting.Store(1)
	if g.pending.Load() > 0 {
		g.waiting.Store(0)
		return false
	}
	return true
}

// parkBroken is the injected-bug smoke case: the pending re-check moved
// before the waiting store, so push can miss the parked worker while
// parkBroken misses the pending item. Exactly one finding.
func (g *gate) parkBroken() bool {
	if g.pending.Load() > 0 { // want `asymmetric handshake: push stores atomicproto.gate.pending before loading atomicproto.gate.waiting, but parkBroken loads atomicproto.gate.pending before storing atomicproto.gate.waiting`
		return false
	}
	g.waiting.Store(1)
	return true
}

// epoch is the published payload.
type epoch struct{ n int }

// holder publishes its current epoch through an atomic pointer.
type holder struct {
	cur atomic.Pointer[epoch]
	ix  *epoch
}

// install establishes the protocol: assign, then republish.
func (h *holder) install(e *epoch) {
	h.ix = e
	h.cur.Store(h.ix)
}

// restoreBad swaps the field without republishing: readers of cur keep
// dereferencing the pre-restore epoch.
func (h *holder) restoreBad(e *epoch) {
	h.ix = e // want `holder.ix is published to readers through atomic pointer atomicproto.holder.cur, but this assignment does not re-Store it`
}

// restoreOK republishes after the swap: clean.
func (h *holder) restoreOK(e *epoch) {
	h.ix = e
	h.cur.Store(h.ix)
}

// Suppressed records a deliberate exception with the standard directive.
func (h *holder) suppressedRestore(e *epoch) {
	//amrivet:ignore[atomicproto] single-goroutine setup path; no reader exists yet
	h.ix = e
}
