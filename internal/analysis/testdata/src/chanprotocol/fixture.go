// Package chanprotocol exercises the channel ownership protocol: close
// exactly once, close only what you own, never send after close. The
// analysis is a must-closed dataflow — a close on one branch does not
// poison the join — plus interprocedural close propagation through
// ClosesChanFact.
package chanprotocol

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `double close of ch`
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch`
}

// branchClose documents the must-analysis choice: the channel is closed on
// only one of two paths, so neither the send nor the second close is a
// definite violation and the analyzer stays silent.
func branchClose(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
	}
	ch <- 1
	close(ch)
}

// bothBranchesClose closes on every path, so the send after the join is a
// definite violation.
func bothBranchesClose(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
	} else {
		close(ch)
	}
	ch <- 1 // want `send on ch`
}

// closeParam is a callee closing a channel it does not own.
func closeParam(ch chan int) {
	close(ch) // want `close of channel parameter ch`
}

// callerInherits sees the close performed inside closeParam via its
// exported fact: the send afterwards is reported interprocedurally.
func callerInherits() {
	ch := make(chan int, 1)
	closeParam(ch)
	ch <- 1 // want `send on ch`
}

// remade resets the closed state: a fresh make is a fresh channel.
func remade() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// suppressedCloser is the sanctioned exception: a helper documented to
// close its argument, with the finding acknowledged in-line. The close
// still exports a ClosesChanFact for callers.
func suppressedCloser(ch chan int) {
	//amrivet:ignore[chanprotocol] fixture: closer helper, ownership transferred by contract
	close(ch)
}

// receiveAfterClose is fine: receiving from a closed channel drains it and
// then yields zero values, a defined and common pattern.
func receiveAfterClose() int {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	return <-ch
}
